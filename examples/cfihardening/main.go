// CFI hardening case study (paper §5): harden the MbedTLS-like workload
// with CFI policies from both analyses, serve requests, and report how much
// tighter the optimistic memory view is.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/workload"
)

func main() {
	app := workload.MbedTLS()
	mod, err := app.Module()
	if err != nil {
		log.Fatal(err)
	}

	sys := core.Analyze(mod, invariant.All())
	h := sys.Harden()

	fmt.Println("== CFI case study: mbedtls-like workload ==")
	fmt.Printf("address-taken functions: %d\n", h.Fallback.AddressTaken)
	fmt.Printf("indirect callsites: %d\n", len(h.Fallback.Sites))
	fmt.Printf("fallback policy:   avg %.2f targets/callsite (max %d)\n",
		h.Fallback.AvgTargets(), h.Fallback.MaxTargets())
	fmt.Printf("optimistic policy: avg %.2f targets/callsite (max %d)\n",
		h.Optimistic.AvgTargets(), h.Optimistic.MaxTargets())

	fmt.Println("\nper-callsite policies (fallback -> optimistic):")
	for _, site := range h.Fallback.Sites {
		fmt.Printf("  #%-4d %2d -> %2d  %v\n", site,
			len(h.Fallback.Targets[site]), len(h.Optimistic.Targets[site]),
			h.Optimistic.Targets[site])
	}

	// Serve 1000 requests under the hardened configuration, as in the
	// paper's MbedTLS benchmark.
	e := h.NewExecution(false)
	tr := e.Run("main", app.Requests(1000, 42))
	if tr.Err != nil {
		log.Fatalf("hardened run failed: %v", tr.Err)
	}
	exec, total := tr.BranchCoverage()
	fmt.Printf("\nserved 1000 requests: %d steps, %d CFI lookups, %d monitor checks\n",
		tr.Steps, e.Runtime.CFILookups, e.Runtime.ChecksPerformed)
	fmt.Printf("branch coverage %d/%d; monitor checks per memory op: %.2f%%\n",
		exec, total, 100*float64(e.Runtime.ChecksPerformed)/float64(tr.MemOps))
	if e.Switcher.Switched() {
		fmt.Println("unexpected: memory view switched!")
	} else {
		fmt.Println("no likely-invariant violations: the tight optimistic CFI policy was enforced throughout")
	}
}
