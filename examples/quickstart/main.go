// Quickstart: compile a MiniC program, run the IGO pointer analysis, and
// compare the optimistic and fallback points-to results.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/invariant"
)

// The paper's Figure 2 example extended with an imprecision source: the
// helper scrub() performs arbitrary pointer arithmetic on a pointer that
// may (statically) also address the config struct.
const src = `
struct config {
  int* log_path;
  fn on_reload;
}

config global_cfg;
int scratch[32];
int reload_count;

int do_reload(int* x) {
  reload_count = reload_count + 1;
  return reload_count;
}

void scrub(char* buf, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(buf + i) = 0;
    i = i + 1;
  }
}

int main() {
  char* p;
  int n;
  global_cfg.on_reload = &do_reload;
  global_cfg.log_path = scratch;
  p = scratch;
  n = input();
  if (n % 7 == 9) {    // statically opaque, never true at runtime
    p = &global_cfg;
  }
  scrub(p, n % 32);
  return global_cfg.on_reload(global_cfg.log_path);
}
`

func main() {
	// Stage 1+2 (paper Figure 4): run the analysis twice — without and with
	// likely invariants — producing the fallback and optimistic collections.
	sys, err := core.AnalyzeSource("quickstart", src, invariant.All())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Kaleidoscope quickstart ==")
	fmt.Printf("likely invariants assumed: %d\n", len(sys.Invariants()))
	for _, rec := range sys.Invariants() {
		fmt.Printf("  [%s] %s\n", rec.Kind, rec.Desc)
	}

	// Points-to precision: compare set sizes over the shared population.
	var fbTotal, optTotal int
	for _, p := range sys.Population() {
		fbTotal += sys.Fallback.SizeOf(p)
		optTotal += sys.Optimistic.SizeOf(p)
	}
	fmt.Printf("total points-to set size: fallback %d, optimistic %d\n", fbTotal, optTotal)

	// CFI policies for the single indirect callsite.
	h := sys.Harden()
	for _, site := range h.Fallback.Sites {
		fmt.Printf("callsite #%d targets: fallback %v, optimistic %v\n",
			site, h.Fallback.Targets[site], h.Optimistic.Targets[site])
	}

	// Stage 3: run under monitors. The dead branch never fires, so the
	// optimistic memory view holds for the whole execution.
	e := h.NewExecution(false)
	tr := e.Run("main", []int64{5})
	if tr.Err != nil {
		log.Fatalf("execution: %v", tr.Err)
	}
	fmt.Printf("program result: %d (steps %d, monitor checks %d)\n",
		tr.Result, tr.Steps, e.Runtime.ChecksPerformed)
	fmt.Printf("memory view switched: %v\n", e.Switcher.Switched())
}
