// Introspection example (paper §4.1): instrument the baseline pointer
// analysis of a PWC-heavy workload, collect growth and type-diversity
// alerts, and backtrack derived constraints to their primitive origins —
// the methodology the paper used to choose its likely-invariant policies.
package main

import (
	"fmt"
	"log"

	"repro/internal/introspect"
	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/workload"
)

func main() {
	app := workload.LibPNG()
	mod, err := app.Module()
	if err != nil {
		log.Fatal(err)
	}

	fw := introspect.New()
	// Thresholds scaled to the synthetic workloads (the paper used 100–1000
	// and 10–50 for production codebases).
	fw.GrowthThreshold = 6
	fw.TypeThreshold = 4

	a := pointsto.New(mod, invariant.Config{})
	a.SetTracer(fw)
	r := a.Solve()

	fmt.Println("== Pointer-analysis introspection: libpng-like workload ==")
	fmt.Print(fw.Report())

	fmt.Println("\nwhere did imprecision come from?")
	for _, alert := range fw.Alerts() {
		if !alert.Derived || len(alert.Origin) == 0 {
			continue
		}
		fmt.Printf("  %s grew to %d via derived constraint #%d; origin chain: ", alert.Node, alert.Total, alert.Site)
		for i, site := range alert.Origin {
			if i > 0 {
				fmt.Print(" <- ")
			}
			in := mod.InstrByID(site)
			if in != nil {
				fmt.Printf("#%d %q", site, in)
			} else {
				fmt.Printf("#%d", site)
			}
		}
		fmt.Println()
	}

	st := r.Stats()
	fmt.Printf("\nsolver: %d iterations, %d copy edges (%d derived), %d field collapses, %d PWCs\n",
		st.Iterations, st.CopyEdges, st.DerivedEdges, st.FieldCollapses, st.PWCs)
	fmt.Println("the PWC and collapse counts above are exactly the signals that")
	fmt.Println("motivated the paper's PA/PWC/Ctx likely-invariant policies")
}
