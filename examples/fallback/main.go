// Fallback example: force a likely-invariant violation at runtime and show
// the secure memory-view switch preserving soundness (paper §3 and §5).
//
// The program's arithmetic pointer really does address a struct object when
// the first input is non-zero — violating the PA likely invariant. The
// monitor fires before the offending store, switches to the fallback view,
// and the (data-only-corrupted) indirect call proceeds under the fallback
// CFI policy: imprecise, but sound.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/invariant"
)

const src = `
struct dispatcher { fn handler; int* state; }
dispatcher disp;
int buff[16];

int normal_op(int* x) { return 1; }
int rare_op(int* x) { return 2; }

void patch(char* region, fn op, int off) {
  *(region + off) = op;
}

int main() {
  char* region;
  fn op;
  disp.handler = &normal_op;
  op = &rare_op;
  region = buff;
  if (input()) {
    region = &disp;   // live branch: the invariant CAN be violated
  }
  patch(region, op, input());
  return disp.handler(null);
}
`

func run(h *core.Hardened, label string, inputs []int64) {
	e := h.NewExecution(false)
	tr := e.Run("main", inputs)
	fmt.Printf("\n-- %s (inputs %v) --\n", label, inputs)
	if tr.Err != nil {
		fmt.Printf("execution fault: %v\n", tr.Err)
		return
	}
	fmt.Printf("result: %d\n", tr.Result)
	if e.Switcher.Switched() {
		fmt.Println("memory view: FALLBACK (switched through the secure gate)")
		for _, v := range e.Switcher.Violations() {
			fmt.Printf("  violation: %s\n", v)
		}
	} else {
		fmt.Println("memory view: optimistic (no violations)")
	}
}

func main() {
	sys, err := core.AnalyzeSource("fallback-demo", src, invariant.All())
	if err != nil {
		log.Fatal(err)
	}
	h := sys.Harden()

	fmt.Println("== Invariant-guided memory views: forced fallback ==")
	fmt.Printf("assumed invariants: %d\n", len(sys.Invariants()))
	for _, rec := range sys.Invariants() {
		fmt.Printf("  [%s] %s\n", rec.Kind, rec.Desc)
	}
	site := h.Fallback.Sites[0]
	fmt.Printf("indirect callsite #%d: optimistic %v | fallback %v\n",
		site, h.Optimistic.Targets[site], h.Fallback.Targets[site])

	// Clean run: pointer stays on the array; optimistic view holds.
	run(h, "clean run", []int64{0, 3})

	// Violating run: the pointer addresses the dispatcher struct; the PA
	// monitor fires before the store, the view switches, and the hijacked
	// handler executes under the fallback policy (sound, less precise).
	run(h, "violating run", []int64{1, 0})
}
