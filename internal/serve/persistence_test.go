package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// postRaw is post without the JSON decode: byte-identity tests compare the
// exact response bodies a client would see.
func postRaw(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func waitWarm(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.WaitWarm(ctx); err != nil {
		t.Fatalf("warm-load did not finish: %v", err)
	}
}

func recordFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.rec"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestRestartWarmCache is the tentpole acceptance test at the serve layer:
// solve on daemon A with a cache dir, restart as daemon B on the same dir,
// and every endpoint must answer byte-identically from the warm-loaded
// snapshot — /analyze additionally flipping to cached=true without a solve.
func TestRestartWarmCache(t *testing.T) {
	dir := t.TempDir()
	queries := []struct {
		path string
		body map[string]any
	}{
		{"/analyze", map[string]any{"source": demoSource}},
		{"/pointsto", map[string]any{"source": demoSource, "fn": "pick"}},
		{"/pointsto", map[string]any{"source": demoSource, "fn": "main", "reg": "%t1"}},
		{"/cfi-targets", map[string]any{"source": demoSource}},
		{"/invariants", map[string]any{"source": demoSource}},
	}

	a, tsA := newTestServer(t, Config{CacheDir: dir})
	waitWarm(t, a)
	want := make([][]byte, len(queries))
	for i, q := range queries {
		status, raw := postRaw(t, tsA, q.path, q.body)
		if status != http.StatusOK {
			t.Fatalf("daemon A %s: status %d: %s", q.path, status, raw)
		}
		// Re-query so every recorded body is the cached form (/analyze's
		// first answer says cached=false; the warm restart must match the
		// cached=true form).
		_, want[i] = postRaw(t, tsA, q.path, q.body)
	}
	if len(recordFiles(t, dir)) == 0 {
		t.Fatal("daemon A persisted no records")
	}
	tsA.Close()

	b, tsB := newTestServer(t, Config{CacheDir: dir})
	waitWarm(t, b)
	status, ready := get(t, tsB, "/readyz")
	if status != http.StatusOK || ready["ready"] != true {
		t.Fatalf("/readyz after warm-load: %d %v", status, ready)
	}
	if ready["warm_loaded"].(float64) < 1 {
		t.Fatalf("nothing warm-loaded: %v", ready)
	}
	for i, q := range queries {
		status, raw := postRaw(t, tsB, q.path, q.body)
		if status != http.StatusOK {
			t.Fatalf("daemon B %s: status %d: %s", q.path, status, raw)
		}
		if !bytes.Equal(raw, want[i]) {
			t.Errorf("daemon B %s diverged after restart:\n got %s\nwant %s", q.path, raw, want[i])
		}
	}
	if got := counter(b, "core/analyses"); got != 0 {
		t.Errorf("daemon B solved %d times, want 0 (warm cache)", got)
	}
	status, body, _ := post(t, tsB, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusOK || body["cached"] != true {
		t.Errorf("warm restart not cached: %d %v", status, body)
	}
}

// TestCorruptRecordQuarantinedAndResolved damages a persisted record on
// disk between daemon generations: the restarted daemon must quarantine it
// during warm-load (counter + /readyz), then answer the same submission by
// transparently re-solving — byte-identical to the original fresh solve,
// never a decode of damaged bytes.
func TestCorruptRecordQuarantinedAndResolved(t *testing.T) {
	dir := t.TempDir()
	a, tsA := newTestServer(t, Config{CacheDir: dir})
	waitWarm(t, a)
	status, fresh := postRaw(t, tsA, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusOK {
		t.Fatalf("fresh solve: %d %s", status, fresh)
	}
	tsA.Close()

	files := recordFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("record files = %v, want 1", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	b, tsB := newTestServer(t, Config{CacheDir: dir})
	waitWarm(t, b)
	if got := counter(b, "persist/corrupt-quarantined"); got != 1 {
		t.Fatalf("persist/corrupt-quarantined = %d, want 1", got)
	}
	_, ready := get(t, tsB, "/readyz")
	if ready["warm_quarantined"].(float64) != 1 {
		t.Fatalf("/readyz warm_quarantined = %v, want 1", ready)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(quarantined) != 1 {
		t.Fatalf("quarantine dir = %v, want the damaged record", quarantined)
	}
	status, resolved := postRaw(t, tsB, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusOK {
		t.Fatalf("re-solve after quarantine: %d %s", status, resolved)
	}
	if !bytes.Equal(resolved, fresh) {
		t.Errorf("re-solve diverged from original fresh solve:\n got %s\nwant %s", resolved, fresh)
	}
	if got := counter(b, "core/analyses"); got == 0 {
		t.Error("daemon B answered without re-solving the quarantined program")
	}
}

// TestRecordKeyMismatchQuarantined covers semantic corruption: a record
// whose frame verifies but whose payload describes a different program than
// its key claims must be quarantined at warm-load, not installed.
func TestRecordKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	a, tsA := newTestServer(t, Config{CacheDir: dir})
	waitWarm(t, a)
	if status, raw := postRaw(t, tsA, "/analyze", map[string]any{"source": demoSource}); status != http.StatusOK {
		t.Fatalf("solve: %d %s", status, raw)
	}
	tsA.Close()

	// Re-key the (intact) record under a different program hash.
	files := recordFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("record files = %v", files)
	}
	otherKey := hashSource("int other; int main() { return other; }") + ".Kaleidoscope.rec"
	if err := os.Rename(files[0], filepath.Join(dir, otherKey)); err != nil {
		t.Fatal(err)
	}

	b, _ := newTestServer(t, Config{CacheDir: dir})
	waitWarm(t, b)
	if got := counter(b, "persist/corrupt-quarantined"); got != 1 {
		t.Fatalf("persist/corrupt-quarantined = %d, want 1", got)
	}
	if got := b.warmLoaded.Load(); got != 0 {
		t.Fatalf("mismatched record installed: warm_loaded = %d", got)
	}
}

// TestEvictionDeletesDiskRecords: FIFO program eviction must delete the
// victim's disk records too, so a restart cannot resurrect an entry the
// cache bound already dropped.
func TestEvictionDeletesDiskRecords(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CacheDir: dir, MaxPrograms: 1})
	waitWarm(t, s)
	status, first, _ := post(t, ts, "/analyze", map[string]any{"source": variantSource(0)})
	if status != http.StatusOK {
		t.Fatalf("first solve: %d %v", status, first)
	}
	status, second, _ := post(t, ts, "/analyze", map[string]any{"source": variantSource(1)})
	if status != http.StatusOK {
		t.Fatalf("second solve: %d %v", status, second)
	}
	files := recordFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("records after eviction = %v, want only the survivor", files)
	}
	wantKey := second["program"].(string) + "." + second["config"].(string) + ".rec"
	if filepath.Base(files[0]) != wantKey {
		t.Errorf("surviving record = %s, want %s", filepath.Base(files[0]), wantKey)
	}
}

// TestWarmLoadBounded: a restart into a smaller MaxPrograms must warm-load
// only the newest programs and delete the overflow records — the same FIFO
// outcome the live daemon would have reached.
func TestWarmLoadBounded(t *testing.T) {
	dir := t.TempDir()
	a, tsA := newTestServer(t, Config{CacheDir: dir})
	waitWarm(t, a)
	hashes := make([]string, 3)
	for i := 0; i < 3; i++ {
		status, body, _ := post(t, tsA, "/analyze", map[string]any{"source": variantSource(i), "config": "baseline"})
		if status != http.StatusOK {
			t.Fatalf("solve %d: %d %v", i, status, body)
		}
		hashes[i] = body["program"].(string)
	}
	tsA.Close()
	// Pin distinct mtimes so the store's oldest-first order is exactly the
	// solve order regardless of filesystem timestamp granularity.
	base := time.Now().Add(-time.Hour)
	for i, h := range hashes {
		path := filepath.Join(dir, h+".Baseline.rec")
		when := base.Add(time.Duration(i) * time.Second)
		if err := os.Chtimes(path, when, when); err != nil {
			t.Fatal(err)
		}
	}

	b, tsB := newTestServer(t, Config{CacheDir: dir, MaxPrograms: 2})
	waitWarm(t, b)
	if got := counter(b, "persist/warm-evicted"); got != 1 {
		t.Fatalf("persist/warm-evicted = %d, want 1", got)
	}
	if files := recordFiles(t, dir); len(files) != 2 {
		t.Fatalf("records after bounded warm-load = %v, want 2", files)
	}
	// Query the warm survivors before the evicted program: submitting the
	// evicted program re-inserts it and FIFO-evicts a survivor, which is
	// exactly the coherence this test must not confuse itself with.
	for _, q := range []struct {
		i          int
		wantCached bool
	}{{1, true}, {2, true}, {0, false}} {
		status, body, _ := post(t, tsB, "/analyze", map[string]any{"source": variantSource(q.i), "config": "baseline"})
		if status != http.StatusOK || body["cached"] != q.wantCached {
			t.Errorf("program %d after bounded warm-load: status %d cached=%v, want cached=%v",
				q.i, status, body["cached"], q.wantCached)
		}
	}
}

// TestWriteFailDirtyFlushedAtDrain: an injected persist/write-fail must not
// fail the request — the entry is served from memory, marked dirty, and the
// shutdown flush lands it on disk for the next generation.
func TestWriteFailDirtyFlushedAtDrain(t *testing.T) {
	dir := t.TempDir()
	plan := faultinject.Explicit(faultinject.PersistWriteFail)
	s, ts := newTestServer(t, Config{CacheDir: dir, Faults: plan})
	waitWarm(t, s)
	status, body, _ := post(t, ts, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusOK {
		t.Fatalf("solve under write-fail: %d %v (a disk fault must not fail the request)", status, body)
	}
	if got := counter(s, "persist/save-failures"); got != 1 {
		t.Fatalf("persist/save-failures = %d, want 1", got)
	}
	if files := recordFiles(t, dir); len(files) != 0 {
		t.Fatalf("failed save left records: %v", files)
	}
	// The entry still serves from memory.
	if status, body, _ := post(t, ts, "/analyze", map[string]any{"source": demoSource}); status != http.StatusOK || body["cached"] != true {
		t.Fatalf("dirty entry not served from memory: %d %v", status, body)
	}
	flushed, failed := s.FlushDirty()
	if flushed != 1 || failed != 0 {
		t.Fatalf("FlushDirty = (%d, %d), want (1, 0)", flushed, failed)
	}
	if files := recordFiles(t, dir); len(files) != 1 {
		t.Fatalf("flush landed %d records, want 1", len(files))
	}

	b, tsB := newTestServer(t, Config{CacheDir: dir})
	waitWarm(t, b)
	if status, body, _ := post(t, tsB, "/analyze", map[string]any{"source": demoSource}); status != http.StatusOK || body["cached"] != true {
		t.Errorf("flushed record did not warm the next generation: %d %v", status, body)
	}
}

// TestDrainRefusesNewWorkCompletesInFlight pins the drain ordering at the
// serve layer: a request already holding its admission slot when drain
// begins completes normally, while new POST work gets the typed 503 and
// /readyz flips to 503 draining (GET endpoints keep answering).
func TestDrainRefusesNewWorkCompletesInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	s.testHoldSolve = func() {
		close(started)
		<-release
	}
	type result struct {
		status int
		body   map[string]any
	}
	done := make(chan result, 1)
	go func() {
		status, body, _ := post(t, ts, "/analyze", map[string]any{"source": demoSource})
		done <- result{status, body}
	}()
	<-started
	s.BeginDrain()

	status, body, hdr := post(t, ts, "/analyze", map[string]any{"source": variantSource(1)})
	if status != http.StatusServiceUnavailable || body["kind"] != "draining" {
		t.Fatalf("new work during drain: %d %v, want 503 draining", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 has no Retry-After hint")
	}
	if status, ready := get(t, ts, "/readyz"); status != http.StatusServiceUnavailable || ready["state"] != "draining" {
		t.Fatalf("/readyz during drain: %d %v", status, ready)
	}
	if status, _ := get(t, ts, "/healthz"); status != http.StatusOK {
		t.Error("/healthz must stay 200 during drain (liveness != readiness)")
	}

	close(release)
	r := <-done
	if r.status != http.StatusOK || r.body["cached"] != false {
		t.Fatalf("in-flight request during drain: %d %v, want 200", r.status, r.body)
	}
}

// TestTracezEvictedTraceTyped404: asking /tracez for a trace id that was
// recorded but has since been evicted from the flight recorder must be a
// typed 404 JSON error, not a 500 or an empty export.
func TestTracezEvictedTraceTyped404(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRecent: 1, TraceSlowest: 1})
	var ids []string
	for i := 0; i < 6; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if id := resp.Header.Get(TraceHeader); id != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) != 6 {
		t.Fatalf("collected %d trace ids, want 6", len(ids))
	}
	// With a 1-deep ring and a 1-deep slowest shortlist at least one early
	// id must be gone by now.
	evicted := ""
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/tracez?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			evicted = id
			var body map[string]any
			if err := json.Unmarshal(raw, &body); err != nil {
				t.Fatalf("evicted-trace 404 body is not JSON: %q", raw)
			}
			if body["kind"] != "not-found" {
				t.Fatalf("evicted-trace error kind = %v, want not-found", body["kind"])
			}
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace %s: unexpected status %d: %s", id, resp.StatusCode, raw)
		}
	}
	if evicted == "" {
		t.Fatal("no trace was evicted after overflowing the recorder")
	}
}
