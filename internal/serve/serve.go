// Package serve is the analysis-as-a-service layer behind cmd/kscope-serve:
// a long-running HTTP/JSON daemon that accepts MiniC programs and answers
// points-to, CFI-target, and invariant queries on demand instead of per
// batch invocation.
//
// The request lifecycle is admission → content-hash cache → single-flight
// solve → budgeted analysis → response:
//
//   - A bounded admission semaphore (Config.MaxInflight) caps concurrent
//     solves; a request that cannot get a slot within Config.QueueTimeout is
//     shed with a typed 503 and a Retry-After hint.
//   - Submissions are identified by the SHA-256 of their source; together
//     with the invariant configuration that hash keys the analysis cache, so
//     a repeated submission (whatever its claimed name) is answered without
//     a second solve, and identical concurrent submissions coalesce into one
//     solve through the single-flight runner.Cache underneath.
//   - Every solve runs under the per-stage step budget and wall-clock
//     timeout of the server; an exhausted budget is a typed 503
//     (kind "budget"), never a partial result (pointsto.ErrSolveAborted).
//
// Overload degrades the way the memview Switcher degrades a hardened
// execution: the server starts on its optimistic view (requests queue
// politely for a slot) and a shed request switches it to the fallback view,
// where uncached work is rejected immediately while already-solved programs
// keep answering from the cache. Unlike the Switcher's one-way gate the
// service switch is reversible — the next admitted request switches back —
// because an overloaded server, unlike a violated invariant, heals.
// Transitions count into "serve/switch/degraded" and
// "serve/switch/recovered"; /healthz reports the current view.
//
// With Config.CacheDir set the daemon is additionally crash-safe: every
// solved analysis is projected into a result snapshot (see snapshot.go) and
// spilled through internal/persist's checksummed atomic-write store, a
// restart warm-loads those records before /readyz reports ready, and any
// record that fails verification is quarantined and transparently
// re-solved — a damaged disk can cost a daemon warmth, never correctness.
// Shutdown is symmetric: BeginDrain flips /readyz to 503 and refuses new
// POST work with a typed "draining" error while in-flight requests finish,
// then FlushDirty retries any record whose earlier save failed.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/invariant"
	"repro/internal/persist"
	"repro/internal/pointsto"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config configures a Server. The zero value gets sensible defaults from
// New (documented per field).
type Config struct {
	// Metrics receives the serve/* instruments and is attached to every
	// analysis. nil creates a private registry (exposed via /metricsz).
	Metrics *telemetry.Registry

	// MaxBodyBytes caps a request body; beyond it the request is refused
	// with 413. Default 1 MiB.
	MaxBodyBytes int64

	// MaxInflight bounds concurrently admitted solves. Default GOMAXPROCS.
	MaxInflight int

	// QueueTimeout is how long an admission-blocked request waits for a
	// slot before being shed with 503. Default 2s. In the degraded view the
	// wait is skipped entirely.
	QueueTimeout time.Duration

	// SolveSteps bounds each solver stage of an admitted analysis
	// (pointsto.Budget.MaxSteps); 0 = unlimited. Exhaustion is a typed 503.
	SolveSteps int64

	// SolveTimeout bounds an admitted analysis' wall clock; 0 = unlimited.
	// Expiry surfaces exactly like budget exhaustion (typed 503).
	SolveTimeout time.Duration

	// MaxPrograms caps distinct cached programs; inserting beyond it evicts
	// the oldest submission (and its solved analyses). Default 128.
	MaxPrograms int

	// RetryAfter is the hint sent with every 503 (Retry-After header and
	// retry_after_ms field). Default 1s.
	RetryAfter time.Duration

	// Parallel > 0 solves every admitted analysis with the parallel wave
	// strategy at that many workers. 0 (the default) solves sequentially
	// unless a request opts in (submission field "parallel"), which uses
	// GOMAXPROCS workers. Either way the fixpoint is byte-identical to the
	// sequential solvers, so cached entries are shared freely between
	// parallel and sequential requests.
	Parallel int

	// Intern hash-conses points-to sets during every admitted solve
	// (pointsto.SetIntern): equal sets share one canonical storage block
	// with copy-on-write promotion, cutting resident memory for large
	// programs. Like Parallel it is a pure execution hint — results are
	// byte-identical — so cached entries are shared freely with
	// non-interned requests; a request can also opt in per submission with
	// the "intern" field.
	Intern bool

	// Faults optionally arms fault injection on the analysis pipeline
	// (CachePoison, SolverBudget), for chaos-testing the daemon.
	Faults *faultinject.Plan

	// AccessLog, when non-nil, receives one JSON line per finished request
	// (time, trace id, method, route, status, latency). Writes are
	// serialized by the server, so any io.Writer works.
	AccessLog io.Writer

	// TraceRecent and TraceSlowest size the flight recorder behind /tracez:
	// the last TraceRecent finished request traces stay browsable, and of
	// the traces aging out of that ring the TraceSlowest slowest are kept
	// anyway. Defaults 64 and 8.
	TraceRecent  int
	TraceSlowest int

	// DisableTracing turns off per-request traces and the flight recorder.
	// Spans then record into the registry (bounded by its span cap), the
	// X-Kscope-Trace header is not emitted, and /tracez serves an empty
	// index. Analysis responses are byte-identical either way — tracing is
	// a pure observer, which TestTracingByteIdentity asserts.
	DisableTracing bool

	// CacheDir, when non-empty, backs the analysis cache with the
	// crash-safe persistent store (internal/persist): every solved analysis
	// is projected to its result snapshot and spilled to disk keyed by
	// content hash + config; a restarted daemon warm-loads the store
	// (bounded by MaxPrograms, FIFO-coherent with live eviction) before
	// /readyz reports ready; and a record that fails its checksum or
	// cross-checks is quarantined and transparently re-solved. Empty (the
	// default) keeps the daemon memory-only. Open failures are recorded in
	// PersistError — the daemon still comes up, memory-only.
	CacheDir string
}

// TraceHeader is the request/response header carrying the trace identity: a
// request may supply its own (ValidTraceID) and every traced response echoes
// the id under which the request's trace is retained.
const TraceHeader = "X-Kscope-Trace"

// solvedKey identifies one completed analysis in the content-hash cache.
type solvedKey struct {
	hash string // SHA-256 of the submitted source
	cfg  string // invariant configuration name
}

// Server is the analysis-as-a-service daemon. Create with New; it
// implements http.Handler. Safe for concurrent use.
type Server struct {
	cfg     Config
	metrics *telemetry.Registry
	cache   *runner.Cache             // single-flight (program, config) → *core.System
	flight  *telemetry.FlightRecorder // retained request traces (nil = tracing disabled)
	sem     chan struct{}             // admission slots
	mux     *http.ServeMux
	start   time.Time
	logMu   sync.Mutex // serializes AccessLog writes

	// degraded is the service view: false = optimistic (queue for a slot),
	// true = fallback (shed uncached work immediately). See package doc.
	degraded atomic.Bool

	// store is the crash-safe persistent layer (nil = memory-only daemon);
	// persistErr records why Config.CacheDir could not be opened.
	store      *persist.Store
	persistErr error

	// state is the readiness machine: warming (loading the persistent
	// store) → ready → draining (shutting down, no new work). /readyz
	// reports it; POST endpoints refuse with a typed 503 while draining.
	state           atomic.Int32
	warmDone        chan struct{} // closed when the warm-load pass finishes
	warmTotal       atomic.Int64
	warmLoaded      atomic.Int64
	warmQuarantined atomic.Int64

	mu      sync.Mutex
	apps    map[string]*workload.App    // content hash → synthesized program
	order   []string                    // insertion order, for eviction
	results map[solvedKey]*servedResult // completed solves servable without admission
	dirty   map[solvedKey]bool          // results whose disk save failed (retried at drain)

	// testHoldSolve, when set by a test, runs while the request holds its
	// admission slot, letting tests pin the server at capacity.
	testHoldSolve func()
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.New()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 2 * time.Second
	}
	if cfg.MaxPrograms <= 0 {
		cfg.MaxPrograms = 128
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		cache:    runner.NewCache(cfg.Metrics),
		sem:      make(chan struct{}, cfg.MaxInflight),
		start:    time.Now(),
		apps:     map[string]*workload.App{},
		results:  map[solvedKey]*servedResult{},
		dirty:    map[solvedKey]bool{},
		warmDone: make(chan struct{}),
	}
	if !cfg.DisableTracing {
		s.flight = telemetry.NewFlightRecorder(cfg.TraceRecent, cfg.TraceSlowest)
	}
	s.cache.SetBudget(pointsto.Budget{MaxSteps: cfg.SolveSteps})
	if cfg.Faults != nil {
		cfg.Faults.SetMetrics(cfg.Metrics)
		s.cache.SetFaults(cfg.Faults)
	}
	s.mux = http.NewServeMux()
	for _, rt := range Routes() {
		s.mux.HandleFunc(rt.Path, s.instrumented(rt))
	}
	if cfg.CacheDir != "" {
		st, err := persist.Open(cfg.CacheDir, cfg.Metrics)
		if err != nil {
			s.persistErr = err
			s.metrics.Counter("persist/open-failures").Inc()
		} else {
			s.store = st
			if cfg.Faults != nil {
				st.SetFaults(cfg.Faults)
			}
		}
	}
	if s.store != nil {
		s.state.Store(stateWarming)
		go s.warmLoad()
	} else {
		s.state.Store(stateReady)
		close(s.warmDone)
	}
	return s
}

// PersistError reports why the persistent store configured by CacheDir
// could not be opened (nil when it opened, or when none was configured).
// The daemon degrades to memory-only on open failure; callers that want
// fail-fast semantics (cmd/kscope-serve does) check this after New.
func (s *Server) PersistError() error { return s.persistErr }

// Route describes one registered endpoint. docs/API.md documents exactly
// this table; TestAPIDocCoversRoutes diffs the two.
type Route struct {
	Method  string
	Path    string
	Summary string
}

// Routes returns every endpoint the server registers, in documentation
// order.
func Routes() []Route {
	return []Route{
		{"POST", "/analyze", "compile + analyze a MiniC program, return the analysis summary"},
		{"POST", "/pointsto", "points-to set of one register under both memory views"},
		{"POST", "/cfi-targets", "permitted indirect-call targets per callsite, both views"},
		{"POST", "/invariants", "likely invariants assumed by the optimistic analysis"},
		{"GET", "/healthz", "liveness, service view, admission and cache occupancy"},
		{"GET", "/readyz", "readiness: 503 while warm-loading the persistent store or draining for shutdown"},
		{"GET", "/metricsz", "telemetry snapshot (counters, gauges, timers, histograms)"},
		{"GET", "/tracez", "recent and slowest request traces; ?id= exports one as Chrome trace JSON"},
	}
}

// ServeHTTP dispatches to the registered routes; unknown paths get a JSON
// 404 so every response the daemon emits is machine-readable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		s.writeError(w, &apiError{Status: http.StatusNotFound, Kind: "not-found",
			Msg: fmt.Sprintf("no such endpoint %s (see docs/API.md)", r.URL.Path)})
		return
	}
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the server's telemetry registry (the /metricsz source).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// Degraded reports whether the service is on its fallback view.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// handler is the signature shared by all endpoint handlers: a nil return
// means the handler already wrote its (successful) response.
type handler func(w http.ResponseWriter, r *http.Request) *apiError

// instrumented wires one route's method check, request counter, latency
// histogram, per-request trace, and access-log line around its handler.
// When tracing is enabled it opens a telemetry.Trace per request (honoring a
// client-supplied X-Kscope-Trace id, emitting the effective id back on the
// same header), carries it through the request context so every span the
// pipeline opens attaches to it, and files the finished trace into the
// flight recorder for /tracez.
func (s *Server) instrumented(rt Route) http.HandlerFunc {
	var h handler
	switch rt.Path {
	case "/analyze":
		h = s.handleAnalyze
	case "/pointsto":
		h = s.handlePointsTo
	case "/cfi-targets":
		h = s.handleCFITargets
	case "/invariants":
		h = s.handleInvariants
	case "/healthz":
		h = s.handleHealthz
	case "/readyz":
		h = s.handleReadyz
	case "/metricsz":
		h = s.handleMetricsz
	case "/tracez":
		h = s.handleTracez
	default:
		panic("serve: route with no handler: " + rt.Path)
	}
	latency := s.metrics.Histogram("serve/latency-ns" + rt.Path)
	requests := s.metrics.Counter("serve/requests" + rt.Path)
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		start := time.Now()
		var tr *telemetry.Trace
		if s.flight != nil {
			tr = telemetry.NewTrace(r.Header.Get(TraceHeader), "serve"+rt.Path)
			w.Header().Set(TraceHeader, tr.ID())
			ctx := telemetry.WithTrace(r.Context(), tr)
			r = r.WithContext(telemetry.WithSpan(ctx, tr.Root()))
		}
		sw := &statusWriter{ResponseWriter: w}
		if r.Method != rt.Method {
			sw.Header().Set("Allow", rt.Method)
			s.writeError(sw, &apiError{Status: http.StatusMethodNotAllowed, Kind: "method",
				Msg: fmt.Sprintf("%s requires %s", rt.Path, rt.Method)})
		} else if rt.Method == http.MethodPost && s.state.Load() == stateDraining {
			// Every POST route submits analysis work; a draining daemon
			// refuses it with a typed, retryable 503 while the GET routes
			// keep serving (so operators can still inspect the shutdown).
			s.writeError(sw, &apiError{Status: http.StatusServiceUnavailable, Kind: "draining",
				Msg:        "daemon is draining for shutdown; not accepting new analysis requests",
				RetryAfter: s.cfg.RetryAfter})
		} else if apiErr := h(sw, r); apiErr != nil {
			s.writeError(sw, apiErr)
		}
		lat := time.Since(start)
		latency.Observe(lat.Nanoseconds())
		if tr != nil {
			tr.Annotate("status", strconv.Itoa(sw.Status()))
			s.flight.Record(tr)
		}
		s.logAccess(tr, r.Method, rt.Path, sw.Status(), lat)
	}
}

// statusWriter captures the status a handler writes, for the trace
// annotation and the access log. An unset status means an implicit 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Status returns the response status (200 if the handler never set one).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// accessEntry is one JSON line of the access log.
type accessEntry struct {
	Time      string  `json:"time"`
	Trace     string  `json:"trace,omitempty"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	LatencyMS float64 `json:"latency_ms"`
}

// logAccess emits one access-log line (no-op without Config.AccessLog).
// Lines are written whole under a lock so concurrent requests never
// interleave mid-line.
func (s *Server) logAccess(tr *telemetry.Trace, method, path string, status int, lat time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(accessEntry{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Trace:     tr.ID(),
		Method:    method,
		Path:      path,
		Status:    status,
		LatencyMS: float64(lat) / float64(time.Millisecond),
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// apiError is a typed error response; every non-2xx the daemon emits is one.
type apiError struct {
	Status     int           // HTTP status code
	Kind       string        // validation | oversized | method | not-found | overloaded | budget | draining | internal
	Msg        string        // human-readable detail
	RetryAfter time.Duration // >0 adds the Retry-After header + retry_after_ms field
}

// errorBody is the JSON wire form of an apiError.
type errorBody struct {
	Error        string `json:"error"`
	Kind         string `json:"kind"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, e *apiError) {
	s.metrics.Counter("serve/errors/" + e.Kind).Inc()
	if e.RetryAfter > 0 {
		secs := int64((e.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, e.Status, errorBody{Error: e.Msg, Kind: e.Kind, RetryAfterMS: int64(e.RetryAfter / time.Millisecond)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // a failed write means the client is gone; nothing to do
}

// decode parses a JSON request body under the body-size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) *apiError {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &apiError{Status: http.StatusRequestEntityTooLarge, Kind: "oversized",
				Msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return &apiError{Status: http.StatusBadRequest, Kind: "validation",
			Msg: "malformed request body: " + err.Error()}
	}
	return nil
}

// parseConfig maps the wire config name to an invariant.Config. Empty
// selects the full Kaleidoscope configuration.
func parseConfig(name string) (invariant.Config, error) {
	switch strings.ToLower(name) {
	case "", "all", "kaleidoscope":
		return invariant.All(), nil
	case "baseline", "none":
		return invariant.Config{}, nil
	case "ctx":
		return invariant.Config{Ctx: true}, nil
	case "pa":
		return invariant.Config{PA: true}, nil
	case "pwc":
		return invariant.Config{PWC: true}, nil
	case "ctx-pa":
		return invariant.Config{Ctx: true, PA: true}, nil
	case "ctx-pwc":
		return invariant.Config{Ctx: true, PWC: true}, nil
	case "pa-pwc":
		return invariant.Config{PA: true, PWC: true}, nil
	}
	return invariant.Config{}, fmt.Errorf("unknown config %q (want baseline|ctx|pa|pwc|ctx-pa|ctx-pwc|pa-pwc|all)", name)
}

// admit acquires an admission slot, waiting up to QueueTimeout on the
// optimistic view and not at all on the fallback view. The returned release
// must be called exactly once. A shed request switches the service to the
// fallback view; an admitted one switches it back.
func (s *Server) admit(ctx context.Context) (release func(), apiErr *apiError) {
	admitted := func() func() {
		s.metrics.Counter("serve/admission/admitted").Inc()
		s.metrics.Gauge("serve/inflight").Set(int64(len(s.sem)))
		if s.degraded.CompareAndSwap(true, false) {
			s.metrics.Counter("serve/switch/recovered").Inc()
		}
		return func() {
			<-s.sem
			s.metrics.Gauge("serve/inflight").Set(int64(len(s.sem)))
		}
	}
	select {
	case s.sem <- struct{}{}:
		return admitted(), nil
	default:
	}
	if !s.degraded.Load() {
		// Optimistic view: queue politely for a slot.
		wait := time.NewTimer(s.cfg.QueueTimeout)
		defer wait.Stop()
		select {
		case s.sem <- struct{}{}:
			return admitted(), nil
		case <-ctx.Done():
			return nil, s.overloaded("request cancelled while queued for a solve slot")
		case <-wait.C:
		}
	} else {
		s.metrics.Counter("serve/admission/fast-shed").Inc()
	}
	// Shed: switch (idempotently) to the fallback view.
	s.metrics.Counter("serve/admission/rejected").Inc()
	if s.degraded.CompareAndSwap(false, true) {
		s.metrics.Counter("serve/switch/degraded").Inc()
	}
	return nil, s.overloaded(fmt.Sprintf("all %d solve slots busy", s.cfg.MaxInflight))
}

func (s *Server) overloaded(msg string) *apiError {
	return &apiError{Status: http.StatusServiceUnavailable, Kind: "overloaded",
		Msg: msg, RetryAfter: s.cfg.RetryAfter}
}
