package serve

// The result snapshot is the load-bearing abstraction of the persistence
// layer: instead of answering queries from the live *core.System (whose
// solver state — constraint graphs, union-find, interned bitsets — is
// neither serializable nor worth serializing), every solved analysis is
// projected ONCE into a resultSnapshot holding the complete query surface
// any endpoint can ever ask: the /analyze summary, every non-empty
// points-to set under both views, every CFI site's target sets, and the
// invariant inventory. All four analysis handlers answer exclusively from
// snapshots, so a snapshot warm-loaded from disk after a restart is
// byte-identical on the wire to the freshly solved one it was projected
// from — there is only one rendering path.

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"repro/internal/cfi"
	"repro/internal/core"
	"repro/internal/pointsto"
)

// resultSnapshot is the full query surface of one solved (program, config)
// pair as plain data. It is the payload of a persisted record, so changing
// its JSON shape is a disk-format change: bump persistFormat alongside.
type resultSnapshot struct {
	Objects          int               `json:"objects"`
	ConstraintNodes  int               `json:"constraint_nodes"`
	SolverIterations int               `json:"solver_iterations"`
	MonitorSites     int               `json:"monitor_sites"`
	ICallSites       []int             `json:"icall_sites"`
	Regs             []regSnapshot     `json:"regs"`
	CFISites         []cfiSite         `json:"cfi_sites"`
	Invariants       []invariantRecord `json:"invariants"`
}

// regSnapshot is one top-level pointer's canonical points-to sets under both
// memory views. Reg "" is fn's return-value node, mirroring the wire query.
type regSnapshot struct {
	Fn         string   `json:"fn"`
	Reg        string   `json:"reg,omitempty"`
	Optimistic []string `json:"optimistic"`
	Fallback   []string `json:"fallback"`
}

// servedResult is a snapshot plus the lookup indexes the handlers use; the
// indexes are rebuilt on construction (never serialized).
type servedResult struct {
	snap  *resultSnapshot
	regs  map[PtrKeyLite]*regSnapshot
	sites map[int]*cfiSite
}

// PtrKeyLite keys the register index: (function, register), "" = return.
type PtrKeyLite struct{ Fn, Reg string }

func newServedResult(snap *resultSnapshot) *servedResult {
	r := &servedResult{
		snap:  snap,
		regs:  make(map[PtrKeyLite]*regSnapshot, len(snap.Regs)),
		sites: make(map[int]*cfiSite, len(snap.CFISites)),
	}
	for i := range snap.Regs {
		rg := &snap.Regs[i]
		r.regs[PtrKeyLite{rg.Fn, rg.Reg}] = rg
	}
	for i := range snap.CFISites {
		site := &snap.CFISites[i]
		r.sites[site.Site] = site
	}
	return r
}

// pointsTo returns both views' label sets for (fn, reg). Unknown pointers
// and pointers with empty sets render identically (empty, non-nil — the
// wire's `[]`), exactly as querying the live result did.
func (r *servedResult) pointsTo(fn, reg string) (optimistic, fallback []string) {
	if rg := r.regs[PtrKeyLite{fn, reg}]; rg != nil {
		return nonNil(rg.Optimistic), nonNil(rg.Fallback)
	}
	return []string{}, []string{}
}

// site returns the CFI snapshot of one callsite (nil = no indirect call
// there, the handler's 400).
func (r *servedResult) site(id int) *cfiSite { return r.sites[id] }

// project renders a solved System into its snapshot. Everything is read
// through the Result's canonical accessors, so inline, bit-vector, interned,
// and parallel-solved representations all project identically.
func project(sys *core.System) *resultSnapshot {
	opt, fb := sys.Optimistic, sys.Fallback
	snap := &resultSnapshot{
		Objects:          len(opt.Objects()),
		ConstraintNodes:  opt.NodeCount(),
		SolverIterations: opt.Stats().Iterations,
		MonitorSites:     opt.Stats().MonitorSites,
		ICallSites:       opt.ICallSites(),
		Invariants:       []invariantRecord{},
	}
	for _, rec := range sys.Invariants() {
		snap.Invariants = append(snap.Invariants, invariantRecord{
			Kind: rec.Kind.String(), Site: rec.Site, Desc: rec.Desc,
		})
	}
	for _, p := range unionPointers(opt, fb) {
		snap.Regs = append(snap.Regs, regSnapshot{
			Fn:         p.Fn,
			Reg:        p.Reg,
			Optimistic: labelsOf(refsOf(opt, p)),
			Fallback:   labelsOf(refsOf(fb, p)),
		})
	}
	po, pf := cfi.PolicyFrom(opt), cfi.PolicyFrom(fb)
	for _, site := range po.Sites {
		snap.CFISites = append(snap.CFISites, cfiSite{
			Site:       site,
			Optimistic: nonNil(po.Targets[site]),
			Fallback:   nonNil(pf.Targets[site]),
		})
	}
	return snap
}

// unionPointers merges both views' non-empty top-level pointers (the
// optimistic population is usually a subset, but only usually), sorted.
func unionPointers(opt, fb *pointsto.Result) []pointsto.PtrRef {
	seen := map[pointsto.PtrRef]bool{}
	var out []pointsto.PtrRef
	for _, view := range []*pointsto.Result{opt, fb} {
		for _, p := range view.TopLevelPointers() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Reg < out[j].Reg
	})
	return out
}

func refsOf(r *pointsto.Result, p pointsto.PtrRef) []pointsto.ObjRef {
	if p.Reg == "" {
		return r.ReturnPointsTo(p.Fn)
	}
	return r.PointsTo(p.Fn, p.Reg)
}

func labelsOf(refs []pointsto.ObjRef) []string {
	out := make([]string, 0, len(refs))
	for _, ref := range refs {
		out = append(out, ref.String())
	}
	return out
}

// persistRecord is the JSON payload a stored record frames: the program
// source (so a warm-loaded program can compile and solve further configs),
// the resolved configuration name, and the snapshot. Source and config are
// deliberately redundant with the record key — warm-load cross-checks both,
// and a mismatch (a frame that verifies but describes a different program)
// is quarantined exactly like a checksum failure.
type persistRecord struct {
	Source   string          `json:"source"`
	Config   string          `json:"config"`
	Snapshot *resultSnapshot `json:"snapshot"`
}

// persistKey renders a solvedKey as its record key: <sha256-hex>.<config>.
func persistKey(k solvedKey) string { return k.hash + "." + k.cfg }

// splitPersistKey is persistKey's inverse; ok is false for keys the daemon
// did not write (stray files in the store directory).
func splitPersistKey(key string) (k solvedKey, ok bool) {
	const hashLen = sha256.Size * 2
	if len(key) < hashLen+2 || key[hashLen] != '.' {
		return solvedKey{}, false
	}
	hash, cfg := key[:hashLen], key[hashLen+1:]
	if _, err := hex.DecodeString(hash); err != nil {
		return solvedKey{}, false
	}
	if !knownConfigName(cfg) {
		return solvedKey{}, false
	}
	return solvedKey{hash: hash, cfg: cfg}, true
}

// knownConfigName reports whether name is a resolved invariant-configuration
// label (the cfg half of a solvedKey) — derived from parseConfig so the two
// vocabularies cannot drift.
func knownConfigName(name string) bool {
	for _, wire := range []string{"baseline", "ctx", "pa", "pwc", "ctx-pa", "ctx-pwc", "pa-pwc", "all"} {
		cfg, err := parseConfig(wire)
		if err == nil && cfg.Name() == name {
			return true
		}
	}
	return false
}
