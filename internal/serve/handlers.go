package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// submission is the request body shared by every analysis endpoint.
type submission struct {
	// Name is a client-side label echoed in responses; it does not affect
	// the program's cache identity.
	Name string `json:"name,omitempty"`
	// Source is the MiniC program text (required).
	Source string `json:"source"`
	// Config selects the invariant configuration: baseline, ctx, pa, pwc,
	// ctx-pa, ctx-pwc, pa-pwc, all. Empty means all (full Kaleidoscope).
	Config string `json:"config,omitempty"`
	// Parallel opts this request's solve into the parallel wave strategy
	// (GOMAXPROCS workers unless the server sets its own count). A pure
	// execution hint: the result is byte-identical to a sequential solve,
	// so it shares the analysis cache either way.
	Parallel bool `json:"parallel,omitempty"`
	// Intern opts this request's solve into hash-consed set interning
	// (copy-on-write shared points-to sets). A pure memory/allocation
	// hint: the result is byte-identical either way, so it shares the
	// analysis cache with non-interned requests.
	Intern bool `json:"intern,omitempty"`
}

// analyzeResponse summarizes one analysis.
type analyzeResponse struct {
	Program          string `json:"program"` // SHA-256 content hash of the source
	Name             string `json:"name,omitempty"`
	Config           string `json:"config"`
	Cached           bool   `json:"cached"` // served without a new solve
	Objects          int    `json:"objects"`
	ConstraintNodes  int    `json:"constraint_nodes"`
	SolverIterations int    `json:"solver_iterations"`
	Invariants       int    `json:"invariants"`
	MonitorSites     int    `json:"monitor_sites"`
	ICallSites       int    `json:"icall_sites"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) *apiError {
	var req submission
	if apiErr := s.decode(w, r, &req); apiErr != nil {
		return apiErr
	}
	a, apiErr := s.system(r.Context(), req)
	if apiErr != nil {
		return apiErr
	}
	snap := a.Res.snap
	writeJSON(w, http.StatusOK, analyzeResponse{
		Program:          a.Hash,
		Name:             req.Name,
		Config:           a.Cfg.Name(),
		Cached:           a.Cached,
		Objects:          snap.Objects,
		ConstraintNodes:  snap.ConstraintNodes,
		SolverIterations: snap.SolverIterations,
		Invariants:       len(snap.Invariants),
		MonitorSites:     snap.MonitorSites,
		ICallSites:       len(snap.ICallSites),
	})
	return nil
}

// pointstoRequest asks for one register's points-to set. Reg "" names the
// function's return-value node.
type pointstoRequest struct {
	submission
	Fn  string `json:"fn"`
	Reg string `json:"reg,omitempty"`
}

type pointstoResponse struct {
	Program    string   `json:"program"`
	Config     string   `json:"config"`
	Fn         string   `json:"fn"`
	Reg        string   `json:"reg,omitempty"`
	Optimistic []string `json:"optimistic"` // object labels, precise while invariants hold
	Fallback   []string `json:"fallback"`   // object labels, sound always
}

func (s *Server) handlePointsTo(w http.ResponseWriter, r *http.Request) *apiError {
	var req pointstoRequest
	if apiErr := s.decode(w, r, &req); apiErr != nil {
		return apiErr
	}
	if req.Fn == "" {
		return &apiError{Status: http.StatusBadRequest, Kind: "validation",
			Msg: "missing required field: fn"}
	}
	a, apiErr := s.system(r.Context(), req.submission)
	if apiErr != nil {
		return apiErr
	}
	opt, fb := a.Res.pointsTo(req.Fn, req.Reg)
	writeJSON(w, http.StatusOK, pointstoResponse{
		Program:    a.Hash,
		Config:     a.Cfg.Name(),
		Fn:         req.Fn,
		Reg:        req.Reg,
		Optimistic: opt,
		Fallback:   fb,
	})
	return nil
}

// cfiTargetsRequest asks for CFI target sets; Site nil means every indirect
// callsite in the program.
type cfiTargetsRequest struct {
	submission
	Site *int `json:"site,omitempty"`
}

type cfiSite struct {
	Site       int      `json:"site"`
	Optimistic []string `json:"optimistic"`
	Fallback   []string `json:"fallback"`
}

type cfiTargetsResponse struct {
	Program string    `json:"program"`
	Config  string    `json:"config"`
	Sites   []cfiSite `json:"sites"`
}

func (s *Server) handleCFITargets(w http.ResponseWriter, r *http.Request) *apiError {
	var req cfiTargetsRequest
	if apiErr := s.decode(w, r, &req); apiErr != nil {
		return apiErr
	}
	a, apiErr := s.system(r.Context(), req.submission)
	if apiErr != nil {
		return apiErr
	}
	snap := a.Res.snap
	sites := snap.CFISites
	if req.Site != nil {
		site := a.Res.site(*req.Site)
		if site == nil {
			return &apiError{Status: http.StatusBadRequest, Kind: "validation",
				Msg: "no indirect callsite at instruction #" + strconv.Itoa(*req.Site)}
		}
		sites = []cfiSite{*site}
	}
	resp := cfiTargetsResponse{Program: a.Hash, Config: a.Cfg.Name(), Sites: []cfiSite{}}
	for _, site := range sites {
		resp.Sites = append(resp.Sites, cfiSite{
			Site:       site.Site,
			Optimistic: nonNil(site.Optimistic),
			Fallback:   nonNil(site.Fallback),
		})
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

type invariantRecord struct {
	Kind string `json:"kind"`
	Site int    `json:"site"`
	Desc string `json:"desc"`
}

type invariantsResponse struct {
	Program      string            `json:"program"`
	Config       string            `json:"config"`
	Invariants   []invariantRecord `json:"invariants"`
	MonitorSites int               `json:"monitor_sites"`
}

func (s *Server) handleInvariants(w http.ResponseWriter, r *http.Request) *apiError {
	var req submission
	if apiErr := s.decode(w, r, &req); apiErr != nil {
		return apiErr
	}
	a, apiErr := s.system(r.Context(), req)
	if apiErr != nil {
		return apiErr
	}
	snap := a.Res.snap
	resp := invariantsResponse{
		Program:      a.Hash,
		Config:       a.Cfg.Name(),
		Invariants:   append([]invariantRecord{}, snap.Invariants...),
		MonitorSites: snap.MonitorSites,
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// healthResponse is the /healthz body. View and Status carry the service's
// degradation state (see the package comment).
type healthResponse struct {
	Status           string `json:"status"` // "ok" | "degraded"
	View             string `json:"view"`   // "optimistic" | "fallback"
	UptimeMS         int64  `json:"uptime_ms"`
	Inflight         int    `json:"inflight"`
	Capacity         int    `json:"capacity"`
	CachedPrograms   int    `json:"cached_programs"`
	DegradedSwitches int64  `json:"degraded_switches"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) *apiError {
	s.mu.Lock()
	programs := len(s.apps)
	s.mu.Unlock()
	status, view := "ok", "optimistic"
	if s.degraded.Load() {
		status, view = "degraded", "fallback"
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:           status,
		View:             view,
		UptimeMS:         time.Since(s.start).Milliseconds(),
		Inflight:         len(s.sem),
		Capacity:         s.cfg.MaxInflight,
		CachedPrograms:   programs,
		DegradedSwitches: s.metrics.Counter("serve/switch/degraded").Value(),
	})
	return nil
}

// readyResponse is the /readyz body — deliberately distinct from /healthz:
// health is liveness ("the process serves"), readiness is "new analysis
// work is welcome here", false while the persistent store warm-loads at
// startup and again once shutdown drain begins.
type readyResponse struct {
	Ready           bool   `json:"ready"`
	State           string `json:"state"`            // "warming" | "ready" | "draining"
	WarmTotal       int64  `json:"warm_total"`       // records the startup scan planned to load
	WarmLoaded      int64  `json:"warm_loaded"`      // records installed into the cache
	WarmQuarantined int64  `json:"warm_quarantined"` // records quarantined during warm-load
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) *apiError {
	st := s.state.Load()
	resp := readyResponse{
		Ready:           st == stateReady,
		State:           stateName(st),
		WarmTotal:       s.warmTotal.Load(),
		WarmLoaded:      s.warmLoaded.Load(),
		WarmQuarantined: s.warmQuarantined.Load(),
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
	return nil
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) *apiError {
	// The registry's span log is capped at the source (telemetry.SetSpanCap,
	// drops counted in telemetry/spans/dropped), so serving the snapshot
	// whole is safe by construction — no per-endpoint stripping needed.
	snap := s.metrics.Snapshot()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(snap.Prometheus())
		return nil
	}
	writeJSON(w, http.StatusOK, snap)
	return nil
}

// handleTracez serves the flight recorder: with no query, the index of
// retained request traces (recent ring + slowest shortlist); with ?id=, one
// retained trace as Chrome trace-event JSON, loadable in Perfetto.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) *apiError {
	if id := r.URL.Query().Get("id"); id != "" {
		if s.flight == nil {
			return &apiError{Status: http.StatusNotFound, Kind: "not-found",
				Msg: "tracing is disabled on this daemon"}
		}
		e, found := s.flight.Lookup(id)
		if !found {
			return &apiError{Status: http.StatusNotFound, Kind: "not-found",
				Msg: fmt.Sprintf("no retained trace %q (evicted from the flight recorder, or never recorded)", id)}
		}
		data, err := e.ChromeTrace()
		if err != nil {
			return &apiError{Status: http.StatusInternalServerError, Kind: "internal",
				Msg: "trace export failed: " + err.Error()}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return nil
	}
	if s.flight == nil {
		writeJSON(w, http.StatusOK, telemetry.FlightIndex{
			Recent: []telemetry.TraceSummary{}, Slowest: []telemetry.TraceSummary{}})
		return nil
	}
	writeJSON(w, http.StatusOK, s.flight.Index())
	return nil
}

func nonNil(ss []string) []string {
	if ss == nil {
		return []string{}
	}
	return ss
}
