package serve

// docs/API.md claims to document every registered route. Enforce it both
// ways: every Route() entry must have a "### METHOD /path" heading in the
// doc, and every such heading must name a registered route — so the doc can
// neither lag behind a new endpoint nor describe a removed one.

import (
	"fmt"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
)

var apiHeading = regexp.MustCompile(`(?m)^### (GET|POST|PUT|DELETE|PATCH) (/\S+)\s*$`)

func TestAPIDocCoversEveryRoute(t *testing.T) {
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range apiHeading.FindAllStringSubmatch(string(raw), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	registered := map[string]bool{}
	for _, rt := range Routes() {
		registered[rt.Method+" "+rt.Path] = true
	}
	for key := range registered {
		if !documented[key] {
			t.Errorf("route %q is registered but has no '### %s' heading in docs/API.md", key, key)
		}
	}
	for key := range documented {
		if !registered[key] {
			t.Errorf("docs/API.md documents %q but the server does not register it", key)
		}
	}
	if len(documented) == 0 {
		t.Fatal("no '### METHOD /path' headings found in docs/API.md")
	}
	// The observability surface is part of the contract, not an accident of
	// the parity loop: /tracez must stay registered and documented.
	if !registered["GET /tracez"] {
		t.Error("GET /tracez is not registered")
	}
	if !documented["GET /tracez"] {
		t.Error("GET /tracez is not documented in docs/API.md")
	}
}

// TestEveryRouteResponds drives each documented route with its documented
// method and requires a non-404: the route table, the mux, and the doc
// describe the same living surface.
func TestEveryRouteResponds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, rt := range Routes() {
		var (
			resp *http.Response
			err  error
		)
		switch rt.Method {
		case http.MethodGet:
			resp, err = http.Get(ts.URL + rt.Path)
		case http.MethodPost:
			body := fmt.Sprintf(`{"source":%q}`, demoSource)
			if rt.Path == "/pointsto" {
				body = fmt.Sprintf(`{"source":%q,"fn":"main"}`, demoSource)
			}
			resp, err = http.Post(ts.URL+rt.Path, "application/json", strings.NewReader(body))
		default:
			t.Fatalf("route %s %s uses a method this test does not drive", rt.Method, rt.Path)
		}
		if err != nil {
			t.Fatalf("%s %s: %v", rt.Method, rt.Path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s %s: status %d, want 200 — route table, mux, and doc disagree", rt.Method, rt.Path, resp.StatusCode)
		}
		if rt.Summary == "" {
			t.Errorf("%s %s has no summary", rt.Method, rt.Path)
		}
	}
}
