package serve

// Persistence wiring: how solved snapshots reach the crash-safe store and
// how a restarted daemon gets them back.
//
// Warm-load runs once, in the background, between New and readiness. It
// reconstructs the dead daemon's cache in its original FIFO order (the
// store's Keys() are mtime-ordered, so record order mirrors solve order),
// bounded by MaxPrograms exactly like the live cache: overflow records are
// the ones eviction would already have deleted, so they are deleted now —
// disk and memory never disagree about what is cached. Every way a record
// can be bad (unreadable frame, checksum mismatch, payload that does not
// decode, payload that disagrees with its own key) converges on the same
// outcome: quarantine + cache miss + fresh solve on first query.

import (
	"context"
	"encoding/json"
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/persist"
	"repro/internal/telemetry"
)

// Readiness states (Server.state).
const (
	stateWarming int32 = iota
	stateReady
	stateDraining
)

func stateName(st int32) string {
	switch st {
	case stateWarming:
		return "warming"
	case stateDraining:
		return "draining"
	default:
		return "ready"
	}
}

// Ready reports whether the daemon accepts new analysis work (the /readyz
// predicate): warm-load finished and drain has not begun.
func (s *Server) Ready() bool { return s.state.Load() == stateReady }

// State returns the readiness state name: "warming", "ready", "draining".
func (s *Server) State() string { return stateName(s.state.Load()) }

// BeginDrain moves the daemon into the draining state: /readyz turns 503,
// new POST work is refused with a typed "draining" error, GET endpoints
// keep serving. Idempotent; it does not wait for in-flight requests (that
// is http.Server.Shutdown's job) and it interrupts a still-running
// warm-load at the next record boundary.
func (s *Server) BeginDrain() {
	if s.state.Swap(stateDraining) != stateDraining {
		s.metrics.Counter("serve/drain/begun").Inc()
	}
}

// WaitWarm blocks until the warm-load pass finishes (immediately on a
// memory-only daemon) or ctx expires.
func (s *Server) WaitWarm(ctx context.Context) error {
	select {
	case <-s.warmDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// warmLoad replays the persistent store into the in-memory cache. Runs in
// its own goroutine; everything it touches is lock-protected or atomic.
func (s *Server) warmLoad() {
	defer close(s.warmDone)
	// Draining can begin mid-warm; never clobber that back to ready.
	defer s.state.CompareAndSwap(stateWarming, stateReady)
	_, _, finish := telemetry.StartSpanCtx(context.Background(), s.metrics, "serve/warm-load")
	defer finish()
	keys, err := s.store.Keys()
	if err != nil {
		s.metrics.Counter("persist/warm-scan-failures").Inc()
		return
	}
	// Group records by program, preserving the store's oldest-first order.
	var progOrder []string
	byProg := map[string][]string{}
	for _, key := range keys {
		k, ok := splitPersistKey(key)
		if !ok {
			// A stray file this daemon never wrote; leave it alone.
			s.metrics.Counter("persist/warm-skipped").Inc()
			continue
		}
		if byProg[k.hash] == nil {
			progOrder = append(progOrder, k.hash)
		}
		byProg[k.hash] = append(byProg[k.hash], key)
	}
	// Bound the warm set like the live cache. Overflow programs are the
	// oldest — the ones FIFO eviction would have deleted had the previous
	// daemon kept running — so delete their records rather than skip them:
	// disk stays coherent with the cache being rebuilt.
	if excess := len(progOrder) - s.cfg.MaxPrograms; excess > 0 {
		for _, hash := range progOrder[:excess] {
			for _, key := range byProg[hash] {
				s.store.Delete(key)
				s.metrics.Counter("persist/warm-evicted").Inc()
			}
		}
		progOrder = progOrder[excess:]
	}
	total := 0
	for _, hash := range progOrder {
		total += len(byProg[hash])
	}
	s.warmTotal.Store(int64(total))
	for _, hash := range progOrder {
		for _, key := range byProg[hash] {
			if s.state.Load() == stateDraining {
				return
			}
			s.warmOne(hash, key)
		}
	}
}

// warmOne loads one record, cross-checks it against its key, and installs
// its snapshot. Every failure degrades to a miss (fresh solve on first
// query); failures that implicate the record itself also quarantine it.
func (s *Server) warmOne(hash, key string) {
	k, _ := splitPersistKey(key)
	payload, err := s.store.Load(key)
	if err != nil {
		// The store already quarantined and counted a corrupt frame;
		// ErrNotExist (a raced delete) and I/O errors are plain misses.
		var ce *persist.CorruptEntryError
		if errors.As(err, &ce) {
			s.warmQuarantined.Add(1)
		}
		return
	}
	var rec persistRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Snapshot == nil {
		s.quarantineWarm(key, "record payload does not decode to a result snapshot")
		return
	}
	if hashSource(rec.Source) != k.hash || rec.Config != k.cfg {
		// The frame verified but describes a different analysis than its
		// key claims — semantic corruption, same treatment as bit rot.
		s.quarantineWarm(key, "record content disagrees with its key")
		return
	}
	s.lookupProgram(k.hash, rec.Source)
	res := newServedResult(rec.Snapshot)
	s.mu.Lock()
	if s.results[k] == nil { // a concurrent fresh solve wins ties
		s.results[k] = res
		s.warmLoaded.Add(1)
		s.metrics.Counter("persist/warm-loaded").Inc()
	}
	s.mu.Unlock()
}

func (s *Server) quarantineWarm(key, reason string) {
	s.store.Quarantine(key, reason)
	s.warmQuarantined.Add(1)
}

// result returns the installed snapshot for key, if any — the cheap-lookup
// fast path that stays servable on the fallback view and while draining
// completes in-flight work.
func (s *Server) result(k solvedKey) *servedResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results[k]
}

// storeResult projects sys into its snapshot, installs it (first
// projection wins; coalesced solvers project identical snapshots anyway),
// and spills the record to the persistent store when one is attached.
func (s *Server) storeResult(k solvedKey, sys *core.System) *servedResult {
	if res := s.result(k); res != nil {
		return res
	}
	res := newServedResult(project(sys)) // outside s.mu: projection walks the whole result
	s.mu.Lock()
	if prev := s.results[k]; prev != nil {
		s.mu.Unlock()
		return prev
	}
	s.results[k] = res
	s.mu.Unlock()
	if s.store != nil {
		s.saveRecord(k, res)
	}
	// From here every answer for this key comes from the snapshot; the live
	// System is scaffolding. Drop it from the solve cache, keeping the
	// Baseline entry that further configurations of this program share as
	// their fallback.
	s.cache.Compact(progName(k.hash), invariant.Config{}.Name())
	return res
}

// saveRecord writes one record to the store. A failed save marks the entry
// dirty — still served from memory, retried by FlushDirty at drain — so a
// transient disk fault costs durability of one entry until shutdown, never
// availability.
func (s *Server) saveRecord(k solvedKey, res *servedResult) error {
	s.mu.Lock()
	app := s.apps[k.hash]
	s.mu.Unlock()
	if app == nil {
		return nil // program evicted while the solve finished; nothing to persist
	}
	payload, err := json.Marshal(persistRecord{Source: app.Source, Config: k.cfg, Snapshot: res.snap})
	if err == nil {
		err = s.store.Save(persistKey(k), payload)
	}
	s.mu.Lock()
	if err != nil {
		if s.results[k] != nil {
			s.dirty[k] = true
		}
	} else {
		delete(s.dirty, k)
	}
	s.mu.Unlock()
	return err
}

// FlushDirty retries the disk save of every result whose earlier save
// failed. The daemon calls it after the HTTP server has drained, so
// nothing solved in the final generation is lost to a transient write
// error. Returns how many entries were flushed and how many still failed.
func (s *Server) FlushDirty() (flushed, failed int) {
	if s.store == nil {
		return 0, 0
	}
	s.mu.Lock()
	keys := make([]solvedKey, 0, len(s.dirty))
	for k := range s.dirty {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].hash != keys[j].hash {
			return keys[i].hash < keys[j].hash
		}
		return keys[i].cfg < keys[j].cfg
	})
	for _, k := range keys {
		res := s.result(k)
		if res == nil {
			continue // evicted since; its record went with it
		}
		if s.saveRecord(k, res) != nil {
			failed++
			s.metrics.Counter("serve/drain/flush-failures").Inc()
			continue
		}
		flushed++
		s.metrics.Counter("serve/drain/flushed").Inc()
	}
	return flushed, failed
}
