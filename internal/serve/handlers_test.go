package serve

// Edge-case coverage for the HTTP surface: oversized bodies, malformed
// JSON, programs that do not compile, unknown configs/fields/paths/methods,
// and request-shape validation — every failure must be a typed JSON error
// with the documented status code.

import (
	"net/http"
	"strings"
	"testing"
)

func TestOversizedBodyRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	big := strings.Repeat("int g;\n", 200)
	status, body, _ := post(t, ts, "/analyze", map[string]any{"source": big})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413: %v", status, body)
	}
	if body["kind"] != "oversized" {
		t.Fatalf("error kind %v, want oversized", body["kind"])
	}
	if got := counter(s, "serve/errors/oversized"); got != 1 {
		t.Fatalf("serve/errors/oversized = %d, want 1", got)
	}
}

func TestMalformedJSONRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "/analyze",
		map[string]any{"source": demoSource, "sourcecode": "typo"})
	if status != http.StatusBadRequest || body["kind"] != "validation" {
		t.Fatalf("unknown field: status %d kind %v, want 400/validation", status, body["kind"])
	}
}

func TestMalformedMiniCRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "/analyze",
		map[string]any{"name": "broken", "source": "int main( { return ; }"})
	if status != http.StatusBadRequest || body["kind"] != "validation" {
		t.Fatalf("malformed MiniC: status %d kind %v, want 400/validation", status, body["kind"])
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "does not compile") {
		t.Fatalf("compile error not surfaced: %v", body["error"])
	}
	if got := counter(s, "serve/errors/compile"); got != 1 {
		t.Fatalf("serve/errors/compile = %d, want 1", got)
	}
	// A broken program must not consume a solve slot or an analysis.
	if got := counter(s, "core/analyses"); got != 0 {
		t.Fatalf("broken program ran %d analyses", got)
	}
	if got := counter(s, "serve/admission/admitted"); got != 0 {
		t.Fatalf("broken program was admitted %d times", got)
	}
}

func TestMissingSourceRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "/analyze", map[string]any{"name": "empty"})
	if status != http.StatusBadRequest || body["kind"] != "validation" {
		t.Fatalf("missing source: status %d kind %v", status, body["kind"])
	}
}

func TestUnknownConfigRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "/analyze",
		map[string]any{"source": demoSource, "config": "turbo"})
	if status != http.StatusBadRequest || body["kind"] != "validation" {
		t.Fatalf("unknown config: status %d kind %v", status, body["kind"])
	}
}

func TestPointsToRequiresFn(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "/pointsto", map[string]any{"source": demoSource})
	if status != http.StatusBadRequest || body["kind"] != "validation" {
		t.Fatalf("missing fn: status %d kind %v", status, body["kind"])
	}
}

func TestCFITargetsUnknownSiteRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "/cfi-targets",
		map[string]any{"source": demoSource, "site": 999999})
	if status != http.StatusBadRequest || body["kind"] != "validation" {
		t.Fatalf("unknown site: status %d kind %v", status, body["kind"])
	}
}

func TestWrongMethodGets405(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /analyze: status %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != "POST" {
		t.Fatalf("Allow header = %q, want POST", resp.Header.Get("Allow"))
	}
	status, body, _ := post(t, ts, "/healthz", map[string]any{})
	if status != http.StatusMethodNotAllowed || body["kind"] != "method" {
		t.Fatalf("POST /healthz: status %d kind %v, want 405/method", status, body["kind"])
	}
}

func TestUnknownPathGetsJSON404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts, "/slice")
	if status != http.StatusNotFound || body["kind"] != "not-found" {
		t.Fatalf("unknown path: status %d kind %v, want 404/not-found", status, body["kind"])
	}
}

// TestProgramEviction fills the content-hash cache past its cap and checks
// the oldest program is forgotten across both cache layers, then
// re-admitted as a fresh solve.
func TestProgramEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxPrograms: 2})
	for i := 0; i < 3; i++ {
		if status, body, _ := post(t, ts, "/analyze",
			map[string]any{"source": variantSource(i), "config": "baseline"}); status != 200 {
			t.Fatalf("submission %d: %d %v", i, status, body)
		}
	}
	if got := counter(s, "serve/cache/programs-evicted"); got != 1 {
		t.Fatalf("programs evicted = %d, want 1", got)
	}
	if got := counter(s, "runner/cache/evictions"); got != 1 {
		t.Fatalf("runner entries evicted = %d, want 1", got)
	}
	// The evicted program re-solves rather than hitting the cache.
	solves := counter(s, "core/analyses")
	status, body, _ := post(t, ts, "/analyze",
		map[string]any{"source": variantSource(0), "config": "baseline"})
	if status != 200 || body["cached"] != false {
		t.Fatalf("evicted program: status %d cached=%v, want 200/false", status, body["cached"])
	}
	if got := counter(s, "core/analyses"); got != solves+1 {
		t.Fatalf("evicted program did not re-solve (%d -> %d)", solves, got)
	}
}
