package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/minic"
	"repro/internal/telemetry"
)

// demoSource is a small valid MiniC program with an indirect call, likely
// invariants under the full configuration, and a pointer-returning function
// (for the return-value query path).
const demoSource = `
struct ops { fn handler; int* data; }
ops table;
int buf[16];
int g;
int hello(int* x) { return 42; }
int bye(int* x) { return 7; }
int* pick() { return &g; }
void scrub(char* p, int n) {
  int i;
  i = 0;
  while (i < n) { *(p + i) = 0; i = i + 1; }
}
int main() {
  char* p;
  int* q;
  table.handler = &hello;
  if (input() % 2 == 0) { table.handler = &bye; }
  p = buf;
  q = pick();
  scrub(p, input() % 16);
  return table.handler(buf) + *q;
}
`

// variantSource returns a distinct-but-valid program per index, for tests
// that need several uncached submissions.
func variantSource(i int) string {
	return fmt.Sprintf("int pad%d;\n%s", i, demoSource)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.New()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the status, decoded body, and headers.
func post(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("POST %s: non-JSON response %q: %v", path, raw, err)
	}
	return resp.StatusCode, out, resp.Header
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("GET %s: non-JSON response %q: %v", path, raw, err)
	}
	return resp.StatusCode, out
}

func counter(s *Server, name string) int64 { return s.Metrics().Counter(name).Value() }

// TestRepeatedSubmissionServedFromCache is the content-hash cache
// acceptance test: the second identical submission must be answered without
// a second solve, visible through the cache-hit counter and the analysis
// counter, and must report cached=true even under a different client name.
func TestRepeatedSubmissionServedFromCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := map[string]any{"name": "first", "source": demoSource, "config": "baseline"}
	status, body, _ := post(t, ts, "/analyze", req)
	if status != http.StatusOK {
		t.Fatalf("first submission: status %d: %v", status, body)
	}
	if body["cached"] != false {
		t.Fatalf("first submission claims cached: %v", body)
	}
	solves := counter(s, "core/analyses")
	if solves != 1 {
		t.Fatalf("first submission ran %d analyses, want 1", solves)
	}

	req["name"] = "renamed" // identity is the content hash, not the name
	status, body, _ = post(t, ts, "/analyze", req)
	if status != http.StatusOK || body["cached"] != true {
		t.Fatalf("repeat submission: status %d cached=%v", status, body["cached"])
	}
	if got := counter(s, "serve/cache/hits"); got != 1 {
		t.Fatalf("serve/cache/hits = %d, want 1", got)
	}
	if got := counter(s, "core/analyses"); got != solves {
		t.Fatalf("repeat submission re-solved: core/analyses %d -> %d", solves, got)
	}
}

// TestConcurrentIdenticalSubmissionsCoalesce fires identical submissions
// from many goroutines at once; however they interleave, the single-flight
// layer must run exactly one analysis.
func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 8})
	const clients = 12
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	statuses := make([]int, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer done.Done()
			start.Wait()
			statuses[c], _, _ = post(t, ts, "/pointsto",
				map[string]any{"source": demoSource, "config": "baseline", "fn": "main", "reg": "%t1"})
		}(c)
	}
	start.Done()
	done.Wait()
	for c, status := range statuses {
		if status != http.StatusOK {
			t.Fatalf("client %d got status %d", c, status)
		}
	}
	if got := counter(s, "core/analyses"); got != 1 {
		t.Fatalf("%d identical submissions ran %d analyses, want 1", clients, got)
	}
	if got := counter(s, "runner/cache/misses"); got != 1 {
		t.Fatalf("runner cache misses = %d, want 1 (single flight)", got)
	}
}

// TestBudgetExhaustedTypedError: a solve that blows its step budget must
// surface as a typed 503 with Retry-After — never a partial result.
func TestBudgetExhaustedTypedError(t *testing.T) {
	s, ts := newTestServer(t, Config{SolveSteps: 1, RetryAfter: 1500 * time.Millisecond})
	status, body, hdr := post(t, ts, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("budgeted solve: status %d, want 503: %v", status, body)
	}
	if body["kind"] != "budget" {
		t.Fatalf("error kind %v, want budget", body["kind"])
	}
	if hdr.Get("Retry-After") != "2" { // 1500ms rounds up to 2s
		t.Fatalf("Retry-After = %q, want 2", hdr.Get("Retry-After"))
	}
	if ms, _ := body["retry_after_ms"].(float64); ms != 1500 {
		t.Fatalf("retry_after_ms = %v, want 1500", body["retry_after_ms"])
	}
	if got := counter(s, "serve/errors/budget"); got != 1 {
		t.Fatalf("serve/errors/budget = %d, want 1", got)
	}
	// The abort is never cached: the entry was invalidated, not poisoned.
	if got := counter(s, "runner/cache/invalidations"); got == 0 {
		t.Fatal("aborted solve did not invalidate its cache entry")
	}
}

// TestOverloadSwitchesToFallbackView pins the server at capacity and walks
// the full degradation arc: shed with 503 → fallback view (fast shed,
// cached queries still answered) → recovery on the next admitted request.
func TestOverloadSwitchesToFallbackView(t *testing.T) {
	holding := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxInflight: 1, QueueTimeout: 5 * time.Millisecond})

	// Warm one program into the cache so the fallback view has something
	// cheap to serve, then install the hold hook and occupy the only slot.
	if status, body, _ := post(t, ts, "/analyze",
		map[string]any{"source": variantSource(0), "config": "baseline"}); status != 200 {
		t.Fatalf("warmup failed: %d %v", status, body)
	}
	var once sync.Once
	s.mu.Lock()
	s.testHoldSolve = func() {
		once.Do(func() {
			close(holding)
			<-release
		})
	}
	s.mu.Unlock()
	firstDone := make(chan int)
	go func() {
		status, _, _ := post(t, ts, "/analyze", map[string]any{"source": variantSource(1)})
		firstDone <- status
	}()
	<-holding

	// Uncached work is shed once the queue times out; the shed switches the
	// service to the fallback view.
	status, body, hdr := post(t, ts, "/analyze", map[string]any{"source": variantSource(2)})
	if status != http.StatusServiceUnavailable || body["kind"] != "overloaded" {
		t.Fatalf("overload: status %d kind %v, want 503/overloaded", status, body["kind"])
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("overload response missing Retry-After")
	}
	if _, health := get2(t, ts, "/healthz"); health["view"] != "fallback" || health["status"] != "degraded" {
		t.Fatalf("healthz after shed: %v, want fallback/degraded", health)
	}

	// Fallback view: uncached work is shed immediately, cached queries and
	// health endpoints still answer.
	if status, _, _ := post(t, ts, "/analyze", map[string]any{"source": variantSource(3)}); status != 503 {
		t.Fatalf("fast shed: status %d, want 503", status)
	}
	if got := counter(s, "serve/admission/fast-shed"); got != 1 {
		t.Fatalf("serve/admission/fast-shed = %d, want 1", got)
	}
	if status, body, _ := post(t, ts, "/analyze",
		map[string]any{"source": variantSource(0), "config": "baseline"}); status != 200 || body["cached"] != true {
		t.Fatalf("cached query on fallback view: status %d cached=%v, want 200/true", status, body["cached"])
	}

	// Release the held solve; the next admitted request recovers the
	// optimistic view.
	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("held request finished with %d", status)
	}
	if status, _, _ := post(t, ts, "/analyze", map[string]any{"source": variantSource(4)}); status != 200 {
		t.Fatalf("post-recovery solve failed: %d", status)
	}
	if _, health := get2(t, ts, "/healthz"); health["view"] != "optimistic" || health["status"] != "ok" {
		t.Fatalf("healthz after recovery: %v, want optimistic/ok", health)
	}
	if d, r := counter(s, "serve/switch/degraded"), counter(s, "serve/switch/recovered"); d != 1 || r != 1 {
		t.Fatalf("switch counters degraded=%d recovered=%d, want 1/1", d, r)
	}
}

// get2 is get with the map returned second (ergonomics for healthz checks).
func get2(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	return get(t, ts, path)
}

// TestPointsToBothViews checks the query surface: register and return-value
// lookups under both memory views, with the optimistic set no larger than
// the fallback set.
func TestPointsToBothViews(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "/pointsto",
		map[string]any{"source": demoSource, "fn": "pick"}) // reg omitted = return value
	if status != http.StatusOK {
		t.Fatalf("return-value query: status %d: %v", status, body)
	}
	opt, _ := body["optimistic"].([]any)
	fb, _ := body["fallback"].([]any)
	if len(opt) == 0 || len(fb) == 0 {
		t.Fatalf("pick() return sets empty: optimistic=%v fallback=%v", opt, fb)
	}
	if len(opt) > len(fb) {
		t.Fatalf("optimistic set (%d) larger than fallback (%d)", len(opt), len(fb))
	}
}

// TestCFITargetsAndInvariants exercises the remaining two query endpoints
// on a program with an indirect call.
func TestCFITargetsAndInvariants(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "/cfi-targets", map[string]any{"source": demoSource})
	if status != http.StatusOK {
		t.Fatalf("/cfi-targets: status %d: %v", status, body)
	}
	sites, _ := body["sites"].([]any)
	if len(sites) == 0 {
		t.Fatal("no indirect callsites reported for a program with one")
	}
	site0 := sites[0].(map[string]any)
	if opt, _ := site0["optimistic"].([]any); len(opt) == 0 {
		t.Fatalf("callsite has no permitted targets: %v", site0)
	}

	status, body, _ = post(t, ts, "/invariants", map[string]any{"source": demoSource, "config": "all"})
	if status != http.StatusOK {
		t.Fatalf("/invariants: status %d: %v", status, body)
	}
	if _, isList := body["invariants"].([]any); !isList {
		t.Fatalf("invariants field missing or not a list: %v", body)
	}
}

// TestHealthzAndMetricsz checks both observation endpoints' shapes, and that
// the registry span log /metricsz serves is bounded at the source rather than
// stripped per endpoint. Tracing is disabled so request spans land in the
// registry (with tracing on they divert to per-request traces).
func TestHealthzAndMetricsz(t *testing.T) {
	metrics := telemetry.New()
	metrics.SetSpanCap(4)
	_, ts := newTestServer(t, Config{MaxInflight: 3, Metrics: metrics, DisableTracing: true})
	status, health := get(t, ts, "/healthz")
	if status != http.StatusOK || health["status"] != "ok" || health["view"] != "optimistic" {
		t.Fatalf("healthz: %d %v", status, health)
	}
	if cap, _ := health["capacity"].(float64); cap != 3 {
		t.Fatalf("capacity = %v, want 3", health["capacity"])
	}
	// Several uncached solves emit far more than 4 spans total.
	for i := 0; i < 3; i++ {
		post(t, ts, "/analyze", map[string]any{"source": variantSource(i), "config": "baseline"})
	}
	status, snap := get(t, ts, "/metricsz")
	if status != http.StatusOK {
		t.Fatalf("metricsz: %d", status)
	}
	counters, _ := snap["counters"].(map[string]any)
	if counters["serve/requests/analyze"] == nil || counters["core/analyses"] == nil {
		t.Fatalf("metricsz missing serve/core counters: %v", counters)
	}
	spans, _ := snap["spans"].([]any)
	if len(spans) > 4 {
		t.Fatalf("span log exceeds its cap: %d spans kept, cap 4", len(spans))
	}
	if dropped, _ := counters["telemetry/spans/dropped"].(float64); dropped <= 0 {
		t.Fatalf("telemetry/spans/dropped = %v, want > 0 (cap 4 with multiple solves)", counters["telemetry/spans/dropped"])
	}
}

// TestLoadgenProgramsCompile keeps the load generator's submission mix
// valid MiniC — a loadgen that mostly collects 400s measures nothing.
func TestLoadgenProgramsCompile(t *testing.T) {
	for _, prog := range loadPrograms {
		if _, err := minic.Compile(prog.name, prog.source); err != nil {
			t.Errorf("loadgen program %q does not compile: %v", prog.name, err)
		}
	}
	if _, err := minic.Compile("demo", demoSource); err != nil {
		t.Errorf("test program does not compile: %v", err)
	}
}

// TestRunLoadAgainstServer runs a short real load through the generator and
// checks the report's accounting and SLO gate plumbing.
func TestRunLoadAgainstServer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rep, err := RunLoad(context.Background(), LoadOpts{
		Target:      ts.URL,
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK == 0 {
		t.Fatalf("loadgen made no successful requests: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen hit %d hard errors: %+v", rep.Errors, rep)
	}
	if rep.Requests != rep.OK+rep.Rejected+rep.Errors {
		t.Fatalf("request accounting does not add up: %+v", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible percentiles p50=%v p99=%v", rep.P50, rep.P99)
	}
	if v := rep.SLOViolations(SLO{MaxP99: time.Nanosecond}); len(v) == 0 {
		t.Fatal("1ns p99 SLO did not trip")
	}
	if v := rep.SLOViolations(SLO{MaxP50: time.Hour, MaxP99: time.Hour}); len(v) != 0 {
		t.Fatalf("generous SLO tripped: %v", v)
	}
	if !strings.Contains(rep.Text(), "latency: p50=") {
		t.Fatalf("report text missing latency line:\n%s", rep.Text())
	}
	// The slow-request shortlist ties SLO violations to trace evidence: every
	// entry must carry the trace id the (tracing-enabled) daemon issued, and
	// the report text must point at /tracez.
	if len(rep.Slowest) == 0 {
		t.Fatalf("report retained no slow requests: %+v", rep)
	}
	for i, sr := range rep.Slowest {
		if sr.TraceID == "" {
			t.Fatalf("slowest[%d] has no trace id: %+v", i, sr)
		}
		if !telemetry.ValidTraceID(sr.TraceID) {
			t.Fatalf("slowest[%d] trace id %q is not a valid trace id", i, sr.TraceID)
		}
		if i > 0 && sr.Latency > rep.Slowest[i-1].Latency {
			t.Fatalf("slowest list not latency-descending at %d: %+v", i, rep.Slowest)
		}
	}
	if !strings.Contains(rep.Text(), "trace=") || !strings.Contains(rep.Text(), "/tracez?id=") {
		t.Fatalf("report text missing slow-request trace pointers:\n%s", rep.Text())
	}
}

// TestParallelOptInRoundTrip covers the per-request parallel opt-in: a
// submission carrying "parallel": true solves with the parallel wave
// strategy (counted in serve/solve/parallel and visible in /metricsz), its
// responses are byte-identical to a sequential server's, and the cached
// entry it leaves behind answers sequential resubmissions without a solve.
func TestParallelOptInRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	seqS, seqTS := newTestServer(t, Config{})

	status, body, _ := post(t, ts, "/analyze", map[string]any{"source": demoSource, "parallel": true})
	if status != http.StatusOK {
		t.Fatalf("parallel submission: status %d: %v", status, body)
	}
	if got := counter(s, "serve/solve/parallel"); got != 1 {
		t.Fatalf("serve/solve/parallel = %d, want 1", got)
	}
	seqStatus, seqBody, _ := post(t, seqTS, "/analyze", map[string]any{"source": demoSource})
	if seqStatus != http.StatusOK {
		t.Fatalf("sequential submission: status %d: %v", seqStatus, seqBody)
	}
	if counter(seqS, "serve/solve/parallel") != 0 {
		t.Fatal("sequential server counted a parallel solve")
	}
	// solver_iterations measures solver effort, which differs by strategy;
	// every artifact field must match exactly.
	delete(body, "solver_iterations")
	delete(seqBody, "solver_iterations")
	if fmt.Sprint(body) != fmt.Sprint(seqBody) {
		t.Fatalf("parallel analysis diverges from sequential:\n%v\nvs\n%v", body, seqBody)
	}
	for _, q := range []struct {
		path string
		req  map[string]any
	}{
		{"/pointsto", map[string]any{"source": demoSource, "fn": "pick", "parallel": true}},
		{"/cfi-targets", map[string]any{"source": demoSource, "parallel": true}},
	} {
		seqReq := map[string]any{}
		for k, v := range q.req {
			if k != "parallel" {
				seqReq[k] = v
			}
		}
		_, par, _ := post(t, ts, q.path, q.req)
		_, seq, _ := post(t, seqTS, q.path, seqReq)
		if fmt.Sprint(par) != fmt.Sprint(seq) {
			t.Fatalf("%s: parallel response diverges from sequential:\n%v\nvs\n%v", q.path, par, seq)
		}
	}

	// The parallel-computed entry is a normal cache entry: a sequential
	// resubmission is served from it without a new solve or a new parallel
	// count.
	status, body, _ = post(t, ts, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusOK || body["cached"] != true {
		t.Fatalf("sequential resubmission not served from cache: %d %v", status, body)
	}
	if got := counter(s, "serve/solve/parallel"); got != 1 {
		t.Fatalf("cached resubmission bumped serve/solve/parallel to %d", got)
	}

	// The counter is part of the /metricsz surface.
	status, metrics := get(t, ts, "/metricsz")
	if status != http.StatusOK {
		t.Fatalf("/metricsz: status %d", status)
	}
	counters, _ := metrics["counters"].(map[string]any)
	if v, _ := counters["serve/solve/parallel"].(float64); v != 1 {
		t.Fatalf("/metricsz serve/solve/parallel = %v, want 1", counters["serve/solve/parallel"])
	}
}

// TestParallelServerDefaultCounts: a server started with Config.Parallel
// (the -parallel-solve flag) solves every uncached submission in parallel
// without the request asking.
func TestParallelServerDefaultCounts(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallel: 2})
	if status, body, _ := post(t, ts, "/analyze", map[string]any{"source": demoSource}); status != http.StatusOK {
		t.Fatalf("status %d: %v", status, body)
	}
	if got := counter(s, "serve/solve/parallel"); got != 1 {
		t.Fatalf("serve/solve/parallel = %d, want 1", got)
	}
}

// TestParallelBudgetAbortNotCached is the serve-layer regression for budget
// aborts raised at a parallel level barrier: the request fails with the same
// typed 503 kind "budget" as a sequential abort, the cache entry is
// invalidated (never a resumable half-solve left behind), and the program
// stays resubmittable.
func TestParallelBudgetAbortNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{SolveSteps: 1, Parallel: 4})
	status, body, _ := post(t, ts, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusServiceUnavailable || body["kind"] != "budget" {
		t.Fatalf("parallel budgeted solve: status %d kind %v, want 503/budget", status, body["kind"])
	}
	if got := counter(s, "runner/cache/invalidations"); got == 0 {
		t.Fatal("aborted parallel solve did not invalidate its cache entry")
	}
	if got := s.cache.Len(); got != 0 {
		t.Fatalf("aborted parallel solve left %d cache entries", got)
	}
	// A resubmission is admitted again (not answered from a poisoned entry)
	// and fails the same typed way while the budget stays in force.
	status, body, _ = post(t, ts, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusServiceUnavailable || body["kind"] != "budget" {
		t.Fatalf("resubmission after abort: status %d kind %v, want 503/budget", status, body["kind"])
	}
}

// TestInternOptInRoundTrip covers the per-request intern opt-in: a
// submission carrying "intern": true hash-conses its solve's points-to sets
// (counted in serve/solve/intern), its responses are byte-identical to a
// plain server's, and the cached entry it leaves behind answers plain
// resubmissions without a solve — interning is invisible to everything but
// the memory profile.
func TestInternOptInRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	plainS, plainTS := newTestServer(t, Config{})

	status, body, _ := post(t, ts, "/analyze", map[string]any{"source": demoSource, "intern": true})
	if status != http.StatusOK {
		t.Fatalf("interned submission: status %d: %v", status, body)
	}
	if got := counter(s, "serve/solve/intern"); got != 1 {
		t.Fatalf("serve/solve/intern = %d, want 1", got)
	}
	plainStatus, plainBody, _ := post(t, plainTS, "/analyze", map[string]any{"source": demoSource})
	if plainStatus != http.StatusOK {
		t.Fatalf("plain submission: status %d: %v", plainStatus, plainBody)
	}
	if counter(plainS, "serve/solve/intern") != 0 {
		t.Fatal("plain server counted an interned solve")
	}
	if fmt.Sprint(body) != fmt.Sprint(plainBody) {
		t.Fatalf("interned analysis diverges from plain:\n%v\nvs\n%v", body, plainBody)
	}
	for _, q := range []struct {
		path string
		req  map[string]any
	}{
		{"/pointsto", map[string]any{"source": demoSource, "fn": "pick", "intern": true}},
		{"/cfi-targets", map[string]any{"source": demoSource, "intern": true}},
	} {
		plainReq := map[string]any{}
		for k, v := range q.req {
			if k != "intern" {
				plainReq[k] = v
			}
		}
		_, in, _ := post(t, ts, q.path, q.req)
		_, pl, _ := post(t, plainTS, q.path, plainReq)
		if fmt.Sprint(in) != fmt.Sprint(pl) {
			t.Fatalf("%s: interned response diverges from plain:\n%v\nvs\n%v", q.path, in, pl)
		}
	}

	// The intern-computed entry is a normal cache entry: a plain
	// resubmission is served from it without a new solve or intern count.
	status, body, _ = post(t, ts, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusOK || body["cached"] != true {
		t.Fatalf("plain resubmission not served from cache: %d %v", status, body)
	}
	if got := counter(s, "serve/solve/intern"); got != 1 {
		t.Fatalf("cached resubmission bumped serve/solve/intern to %d", got)
	}
}

// TestInternServerDefaultCounts: a server started with Config.Intern (the
// -intern flag) hash-conses every uncached solve without the request asking.
// (The demo program's points-to sets all fit the inline representation, so
// the pool sees no traffic here; pool instrumentation reaching a registry is
// pinned by pointsto.TestInternTelemetry and the runner cache test.)
func TestInternServerDefaultCounts(t *testing.T) {
	s, ts := newTestServer(t, Config{Intern: true})
	status, body, _ := post(t, ts, "/analyze", map[string]any{"source": demoSource})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, body)
	}
	if got := counter(s, "serve/solve/intern"); got != 1 {
		t.Fatalf("serve/solve/intern = %d, want 1", got)
	}
}
