package serve

// Request-tracing tests: header round-trip, flight-recorder retention, the
// /tracez endpoints, parallel-solver span attachment, access logs, and the
// byte-identity guarantee (tracing must never change analysis output).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// rawPost sends a JSON body with optional extra headers and returns the raw
// response bytes plus headers (no JSON decoding — for byte-identity checks
// and Chrome-trace exports).
func rawPost(t *testing.T, url string, body map[string]any, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

func rawGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestTraceRoundTrip is the tentpole acceptance test: a request's trace id
// round-trips through the X-Kscope-Trace header, the flight recorder retains
// the trace, and /tracez?id= exports it as Chrome trace JSON carrying the
// solver's spans and the request's annotations.
func TestTraceRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Client-supplied id is honored and echoed.
	status, _, hdr := rawPost(t, ts.URL+"/analyze",
		map[string]any{"source": demoSource, "config": "all"},
		map[string]string{TraceHeader: "my-trace-1"})
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d", status)
	}
	if got := hdr.Get(TraceHeader); got != "my-trace-1" {
		t.Fatalf("trace header echo = %q, want %q", got, "my-trace-1")
	}

	// Without a client id the daemon mints one.
	status, _, hdr2 := rawPost(t, ts.URL+"/analyze",
		map[string]any{"source": demoSource, "config": "all"}, nil)
	if status != http.StatusOK {
		t.Fatalf("second analyze: status %d", status)
	}
	minted := hdr2.Get(TraceHeader)
	if minted == "" || !telemetry.ValidTraceID(minted) {
		t.Fatalf("daemon minted invalid trace id %q", minted)
	}

	// The index lists both traces, newest first.
	status, idxRaw := rawGet(t, ts.URL+"/tracez")
	if status != http.StatusOK {
		t.Fatalf("tracez index: status %d", status)
	}
	var idx telemetry.FlightIndex
	if err := json.Unmarshal(idxRaw, &idx); err != nil {
		t.Fatalf("tracez index not JSON: %v\n%s", err, idxRaw)
	}
	if len(idx.Recent) < 2 {
		t.Fatalf("flight index retained %d traces, want >= 2", len(idx.Recent))
	}
	found := map[string]bool{}
	for _, s := range idx.Recent {
		found[s.ID] = true
	}
	if !found["my-trace-1"] || !found[minted] {
		t.Fatalf("flight index missing request traces: %+v", idx.Recent)
	}

	// The first (uncached) trace exports as Chrome trace JSON with the solve
	// pipeline's spans and the request annotations.
	status, chrome := rawGet(t, ts.URL+"/tracez?id=my-trace-1")
	if status != http.StatusOK {
		t.Fatalf("tracez export: status %d: %s", status, chrome)
	}
	var export map[string]any
	if err := json.Unmarshal(chrome, &export); err != nil {
		t.Fatalf("Chrome trace not JSON: %v", err)
	}
	if _, hasEvents := export["traceEvents"]; !hasEvents {
		t.Fatalf("Chrome trace missing traceEvents:\n%s", chrome)
	}
	body := string(chrome)
	for _, want := range []string{
		"serve/solve", "core/analyze", // request + analysis phases
		`"cache"`, `"miss"`, // annotations
		`"program"`, `"status"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Chrome trace missing %s:\n%s", want, body)
		}
	}

	// The second request hit the content cache; its trace says so.
	status, chrome2 := rawGet(t, ts.URL+"/tracez?id="+minted)
	if status != http.StatusOK {
		t.Fatalf("second tracez export: status %d", status)
	}
	if !strings.Contains(string(chrome2), `"hit"`) {
		t.Fatalf("cached request's trace not annotated cache=hit:\n%s", chrome2)
	}

	// Unknown ids 404.
	if status, _ := rawGet(t, ts.URL+"/tracez?id=never-recorded"); status != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d, want 404", status)
	}
}

// TestParallelTraceAttachment proves parallel wave solves attach their round
// spans to the request trace without forcing a sequential fallback. (The
// ^TestParallel name keeps it in the make race-parallel run.)
func TestParallelTraceAttachment(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallel: 2})
	status, _, hdr := rawPost(t, ts.URL+"/analyze",
		map[string]any{"source": demoSource, "config": "all"}, nil)
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d", status)
	}
	if got := counter(s, "serve/solve/parallel"); got != 1 {
		t.Fatalf("serve/solve/parallel = %d, want 1 (tracing must not force sequential)", got)
	}
	status, chrome := rawGet(t, ts.URL+"/tracez?id="+hdr.Get(TraceHeader))
	if status != http.StatusOK {
		t.Fatalf("tracez export: status %d", status)
	}
	body := string(chrome)
	if !strings.Contains(body, "pointsto/round/parallel") {
		t.Fatalf("trace missing parallel wave spans:\n%s", body)
	}
	if !strings.Contains(body, `"parallel_workers"`) {
		t.Fatalf("trace missing parallel_workers annotation:\n%s", body)
	}
}

// TestTracingByteIdentity pins the observability contract: a tracing daemon
// and a tracing-disabled daemon produce byte-identical response bodies on
// every analysis endpoint. Trace ids live in headers only.
func TestTracingByteIdentity(t *testing.T) {
	_, traced := newTestServer(t, Config{})
	_, plain := newTestServer(t, Config{DisableTracing: true})
	requests := []struct {
		path string
		body map[string]any
	}{
		{"/analyze", map[string]any{"source": demoSource, "config": "all"}},
		{"/pointsto", map[string]any{"source": demoSource, "config": "all", "fn": "main", "reg": "q"}},
		{"/cfi-targets", map[string]any{"source": demoSource, "config": "all"}},
		{"/invariants", map[string]any{"source": demoSource, "config": "all"}},
	}
	for _, rq := range requests {
		st1, b1, h1 := rawPost(t, traced.URL+rq.path, rq.body, nil)
		st2, b2, h2 := rawPost(t, plain.URL+rq.path, rq.body, nil)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("%s: status traced=%d plain=%d", rq.path, st1, st2)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: tracing changed the response body\ntraced: %s\nplain:  %s", rq.path, b1, b2)
		}
		if h1.Get(TraceHeader) == "" {
			t.Errorf("%s: tracing daemon issued no trace header", rq.path)
		}
		if h2.Get(TraceHeader) != "" {
			t.Errorf("%s: tracing-disabled daemon issued a trace header %q", rq.path, h2.Get(TraceHeader))
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the access log writes from
// handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLogLines checks the JSON-lines access log: one line per request
// carrying the trace id from the response header.
func TestAccessLogLines(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{AccessLog: &buf})
	status, _, hdr := rawPost(t, ts.URL+"/analyze",
		map[string]any{"source": demoSource, "config": "baseline"}, nil)
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d", status)
	}
	rawGet(t, ts.URL+"/healthz")

	// The log line lands after the response body is flushed; poll briefly.
	var lines []string
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		lines = nil
		for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if l != "" {
				lines = append(lines, l)
			}
		}
		if len(lines) >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(lines) < 2 {
		t.Fatalf("access log has %d lines, want >= 2:\n%s", len(lines), buf.String())
	}
	var entry struct {
		Time      string  `json:"time"`
		Trace     string  `json:"trace"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		LatencyMS float64 `json:"latency_ms"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("access log line not JSON: %v\n%s", err, lines[0])
	}
	if entry.Method != "POST" || entry.Path != "/analyze" || entry.Status != http.StatusOK {
		t.Fatalf("access log entry fields wrong: %+v", entry)
	}
	if entry.Trace != hdr.Get(TraceHeader) {
		t.Fatalf("access log trace %q != response header %q", entry.Trace, hdr.Get(TraceHeader))
	}
	if entry.Time == "" || entry.LatencyMS < 0 {
		t.Fatalf("access log entry missing time/latency: %+v", entry)
	}
}

// TestTracezDisabled pins the degraded shape: with tracing off the index is
// an empty (but well-formed) document and every id lookup 404s.
func TestTracezDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableTracing: true})
	post(t, ts, "/analyze", map[string]any{"source": demoSource, "config": "baseline"})
	status, idx := get(t, ts, "/tracez")
	if status != http.StatusOK {
		t.Fatalf("tracez index: status %d", status)
	}
	if recent, ok := idx["recent"].([]any); !ok || len(recent) != 0 {
		t.Fatalf("disabled tracez index not empty: %v", idx)
	}
	if status, _ := rawGet(t, ts.URL+"/tracez?id=anything"); status != http.StatusNotFound {
		t.Fatalf("disabled tracez lookup: status %d, want 404", status)
	}
}
