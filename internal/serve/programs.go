package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"

	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// hashSource returns the content identity of a submission: the hex SHA-256
// of the source text. The client-supplied name is deliberately excluded —
// two submissions with the same bytes are the same program, whatever they
// are called, so renamed resubmissions still hit the cache.
func hashSource(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// progName is the canonical analysis-cache identity of a content hash (the
// workload.App name the runner.Cache keys on).
func progName(hash string) string { return "prog-" + hash[:16] }

// lookupProgram returns the synthesized workload for the hash, inserting
// (and evicting, FIFO, past MaxPrograms) as needed. The bool reports
// whether the program was already present.
func (s *Server) lookupProgram(hash, src string) (*workload.App, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if app := s.apps[hash]; app != nil {
		return app, true
	}
	if len(s.apps) >= s.cfg.MaxPrograms {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.apps, victim)
		for k := range s.results {
			if k.hash == victim {
				delete(s.results, k)
				delete(s.dirty, k)
				if s.store != nil {
					// Disk eviction rides along with memory eviction, so a
					// restart can never resurrect an entry the FIFO dropped.
					s.store.Delete(persistKey(k))
				}
			}
		}
		s.cache.Forget(progName(victim))
		s.metrics.Counter("serve/cache/programs-evicted").Inc()
	}
	app := &workload.App{Name: progName(hash), Source: src}
	s.apps[hash] = app
	s.order = append(s.order, hash)
	s.metrics.Gauge("serve/cache/programs").Set(int64(len(s.apps)))
	return app, false
}

// analysis is a served analysis plus its cache provenance.
type analysis struct {
	Res    *servedResult
	Hash   string
	Cfg    invariant.Config
	Cached bool // answered from the content-hash cache, no new solve
}

// system resolves a submission to its result snapshot: content-hash lookup
// (already-solved pairs — including warm-loaded ones — answer without
// admission or a solve), then the budgeted single-flight solve and
// projection. Every failure maps to a typed apiError:
// 400 for programs that do not compile or configs that do not parse,
// 503 kind "overloaded" for shed requests, 503 kind "budget" for solver
// budget/timeout exhaustion, 500 for anything else (e.g. injected faults).
func (s *Server) system(ctx context.Context, req submission) (*analysis, *apiError) {
	tr := telemetry.TraceFrom(ctx) // nil without tracing; every method no-ops
	name, src := req.Name, req.Source
	if src == "" {
		return nil, &apiError{Status: http.StatusBadRequest, Kind: "validation",
			Msg: "missing required field: source"}
	}
	cfg, err := parseConfig(req.Config)
	if err != nil {
		return nil, &apiError{Status: http.StatusBadRequest, Kind: "validation", Msg: err.Error()}
	}
	hash := hashSource(src)
	tr.Annotate("program", hash[:16])
	tr.Annotate("config", cfg.Name())
	app, _ := s.lookupProgram(hash, src)
	// Compile before admission: a malformed program must cost a parse, not
	// a solve slot. The module is memoized inside the App, so this is free
	// for every request after the first.
	if _, err := app.Module(); err != nil {
		s.metrics.Counter("serve/errors/compile").Inc()
		return nil, &apiError{Status: http.StatusBadRequest, Kind: "validation",
			Msg: fmt.Sprintf("program %q does not compile: %v", name, err)}
	}
	key := solvedKey{hash: hash, cfg: cfg.Name()}
	if res := s.result(key); res != nil {
		s.metrics.Counter("serve/cache/hits").Inc()
		tr.Annotate("cache", "hit")
		tr.Annotate("solver_iterations", strconv.Itoa(res.snap.SolverIterations))
		if s.cfg.SolveSteps > 0 {
			tr.Annotate("budget_steps", strconv.FormatInt(s.cfg.SolveSteps, 10))
		}
		return &analysis{Res: res, Hash: hash, Cfg: cfg, Cached: true}, nil
	}
	s.metrics.Counter("serve/cache/misses").Inc()
	tr.Annotate("cache", "miss")
	// The admission span makes queueing visible per request: a trace
	// whose serve/admission span dominates was slow because the daemon
	// was at capacity, not because its solve was expensive.
	admitCtx, _, finishAdmit := telemetry.StartSpanCtx(ctx, s.metrics, "serve/admission")
	release, apiErr := s.admit(admitCtx)
	finishAdmit()
	if apiErr != nil {
		tr.Annotate("admission", "shed")
		return nil, apiErr
	}
	tr.Annotate("admission", "admitted")
	defer release()
	s.mu.Lock()
	hold := s.testHoldSolve
	s.mu.Unlock()
	if hold != nil {
		hold()
	}
	if s.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SolveTimeout)
		defer cancel()
	}
	// Parallel solving is a pure execution hint — the fixpoint is
	// byte-identical to a sequential solve — so it rides alongside the cache
	// key rather than inside it: a parallel-computed analysis answers
	// sequential requests and vice versa.
	workers := s.cfg.Parallel
	if req.Parallel && workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 0 {
		s.metrics.Counter("serve/solve/parallel").Inc()
		tr.Annotate("parallel_workers", strconv.Itoa(workers))
	}
	// So does set interning: byte-identical fixpoints, so the knob is
	// invisible to the cache key and only changes how much the solve
	// allocates.
	intern := s.cfg.Intern || req.Intern
	if intern {
		s.metrics.Counter("serve/solve/intern").Inc()
		tr.Annotate("intern", "on")
	}
	// serve/solve wraps the whole cache resolution: a flight leader's trace
	// nests core/analyze and the solver phases under it, a coalesced waiter
	// nests runner/cache/wait, and a content-cache hit closes it near
	// instantly — three shapes that tell three different latency stories.
	solveCtx, _, finishSolve := telemetry.StartSpanCtx(ctx, s.metrics, "serve/solve")
	sys, err := s.cache.SystemCtxOpts(solveCtx, app, cfg, runner.ComputeOpts{Parallel: workers, Intern: intern})
	finishSolve()
	if err != nil {
		if errors.Is(err, pointsto.ErrSolveAborted) {
			tr.Annotate("budget", "exhausted")
			return nil, &apiError{Status: http.StatusServiceUnavailable, Kind: "budget",
				Msg:        fmt.Sprintf("analysis exceeded its solve budget and was aborted (no partial result): %v", err),
				RetryAfter: s.cfg.RetryAfter}
		}
		return nil, &apiError{Status: http.StatusInternalServerError, Kind: "internal",
			Msg: fmt.Sprintf("analysis failed: %v", err)}
	}
	res := s.storeResult(key, sys)
	// Budget spent, in the solver's own currency (constraint iterations of
	// the optimistic stage); with a step budget configured the pair shows
	// how close this program runs to the ceiling.
	tr.Annotate("solver_iterations", strconv.Itoa(res.snap.SolverIterations))
	if s.cfg.SolveSteps > 0 {
		tr.Annotate("budget_steps", strconv.FormatInt(s.cfg.SolveSteps, 10))
	}
	return &analysis{Res: res, Hash: hash, Cfg: cfg, Cached: false}, nil
}
