package serve

// The load generator drives concurrent client sessions against a running
// kscope-serve daemon and reports latency percentiles from the same
// telemetry histograms the server side uses, so client-observed p50/p99 and
// server-side /metricsz speak one vocabulary. An SLO gate turns the report
// into an exit code (cmd/kscope-serve -loadgen).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// LoadOpts configures one load run.
type LoadOpts struct {
	// Target is the daemon's base URL, e.g. "http://127.0.0.1:8350".
	Target string
	// Concurrency is the number of concurrent client sessions. Default 8.
	Concurrency int
	// Duration is how long to keep the sessions running. Default 2s.
	Duration time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Metrics receives the loadgen/* histograms; nil uses a private
	// registry.
	Metrics *telemetry.Registry
}

// SLO is the latency/error gate of a load run. Zero fields are unchecked.
type SLO struct {
	MaxP50       time.Duration
	MaxP99       time.Duration
	MaxErrorRate float64 // hard errors / requests; 503 sheds are not errors
}

// EndpointStat is one endpoint's client-observed latency distribution.
type EndpointStat struct {
	Requests int64         `json:"requests"`
	P50      time.Duration `json:"p50_ns"`
	P90      time.Duration `json:"p90_ns"`
	P99      time.Duration `json:"p99_ns"`
	Max      time.Duration `json:"max_ns"`
}

// SlowRequest identifies one of the slowest requests of a load run by the
// trace id the daemon issued for it, so an SLO violation points straight at
// /tracez?id=<trace> evidence instead of an anonymous percentile.
type SlowRequest struct {
	Endpoint string        `json:"endpoint"`
	Status   int           `json:"status"` // 0 = transport error
	Latency  time.Duration `json:"latency_ns"`
	TraceID  string        `json:"trace_id,omitempty"` // empty if the daemon is not tracing
}

// slowestK bounds the slow-request shortlist a load run retains.
const slowestK = 5

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Elapsed   time.Duration           `json:"elapsed_ns"`
	Requests  int64                   `json:"requests"`
	OK        int64                   `json:"ok"`       // 2xx
	Rejected  int64                   `json:"rejected"` // 503 (admission shed or solve budget)
	Errors    int64                   `json:"errors"`   // everything else, transport errors included
	P50       time.Duration           `json:"p50_ns"`
	P90       time.Duration           `json:"p90_ns"`
	P99       time.Duration           `json:"p99_ns"`
	Max       time.Duration           `json:"max_ns"`
	Endpoints map[string]EndpointStat `json:"endpoints"`
	Slowest   []SlowRequest           `json:"slowest,omitempty"` // latency-descending
}

// loadPrograms are the submission mix: small MiniC programs with indirect
// calls (so /cfi-targets and /invariants have substance). The first program
// dominates the mix, so most requests exercise the content-hash cache the
// way production clients re-querying one deployed binary would.
var loadPrograms = []struct{ name, source string }{
	{"dispatch", `
struct ops { fn handler; int* data; }
ops table;
int buf[16];
int hello(int* x) { return 42; }
int bye(int* x) { return 7; }
void scrub(char* p, int n) {
  int i;
  i = 0;
  while (i < n) { *(p + i) = 0; i = i + 1; }
}
int main() {
  char* p;
  table.handler = &hello;
  if (input() % 2 == 0) { table.handler = &bye; }
  p = buf;
  scrub(p, input() % 16);
  return table.handler(buf);
}
`},
	{"callbacks", `
struct node { int* payload; fn cb; }
node slots[4];
int a; int b;
int first(int* x) { return 1; }
int second(int* x) { return 2; }
int main() {
  int i;
  slots[0].cb = &first;
  slots[1].cb = &second;
  slots[0].payload = &a;
  slots[1].payload = &b;
  i = input() % 2;
  return slots[i].cb(slots[i].payload);
}
`},
	{"swap", `
int x; int y;
void swap(int** p, int** q) {
  int* t;
  t = *p;
  *p = *q;
  *q = t;
}
int main() {
  int* a; int* b;
  a = &x;
  b = &y;
  swap(&a, &b);
  return *a + *b;
}
`},
}

// loadConfigs is the configuration mix.
var loadConfigs = []string{"all", "baseline", "pa-pwc"}

// RunLoad drives Concurrency sessions against Target for Duration and
// returns the aggregated report. The context cancels the run early;
// transport-level failures are counted, not fatal, so a daemon dying
// mid-run yields a report with errors rather than no report.
func RunLoad(ctx context.Context, o LoadOpts) (*LoadReport, error) {
	if o.Target == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	metrics := o.Metrics
	if metrics == nil {
		metrics = telemetry.New()
	}
	var requests, ok, rejected, errs atomic.Int64
	deadline := time.Now().Add(o.Duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	// Slow-request shortlist: the K highest latencies across all sessions,
	// with the trace ids the daemon issued for them.
	var (
		slowMu  sync.Mutex
		slowest []SlowRequest
	)
	noteSlow := func(sr SlowRequest) {
		slowMu.Lock()
		defer slowMu.Unlock()
		i := sort.Search(len(slowest), func(i int) bool { return slowest[i].Latency < sr.Latency })
		if i >= slowestK {
			return
		}
		slowest = append(slowest, SlowRequest{})
		copy(slowest[i+1:], slowest[i:])
		slowest[i] = sr
		if len(slowest) > slowestK {
			slowest = slowest[:slowestK]
		}
	}

	session := func(worker int) {
		target := strings.TrimSuffix(o.Target, "/")
		all := metrics.Histogram("loadgen/latency-ns/all")
		n := 0
		for time.Now().Before(deadline) && runCtx.Err() == nil {
			prog := loadPrograms[pick(worker, n, 7, len(loadPrograms))]
			cfg := loadConfigs[pick(worker, n, 11, len(loadConfigs))]
			endpoint, body := nextRequest(worker, n, prog.name, prog.source, cfg)
			start := time.Now()
			status, traceID, err := postJSON(runCtx, o.Client, target+endpoint, body)
			if err != nil && runCtx.Err() != nil {
				// The run's deadline cut this request off mid-flight; that is
				// the generator stopping, not the daemon failing.
				break
			}
			lat := time.Since(start)
			all.Observe(lat.Nanoseconds())
			metrics.Histogram("loadgen/latency-ns" + endpoint).Observe(lat.Nanoseconds())
			metrics.Counter("loadgen/requests" + endpoint).Inc()
			requests.Add(1)
			noteSlow(SlowRequest{Endpoint: endpoint, Status: status, Latency: lat, TraceID: traceID})
			switch {
			case err != nil:
				errs.Add(1)
				metrics.Counter("loadgen/transport-errors").Inc()
			case status >= 200 && status < 300:
				ok.Add(1)
			case status == http.StatusServiceUnavailable:
				rejected.Add(1)
			default:
				errs.Add(1)
				metrics.Counter(fmt.Sprintf("loadgen/status/%d", status)).Inc()
			}
			n++
		}
	}
	started := time.Now()
	done := make(chan struct{})
	for w := 0; w < o.Concurrency; w++ {
		go func(w int) { session(w); done <- struct{}{} }(w)
	}
	for w := 0; w < o.Concurrency; w++ {
		<-done
	}
	elapsed := time.Since(started)

	snap := metrics.Snapshot()
	rep := &LoadReport{
		Elapsed:   elapsed,
		Requests:  requests.Load(),
		OK:        ok.Load(),
		Rejected:  rejected.Load(),
		Errors:    errs.Load(),
		Endpoints: map[string]EndpointStat{},
	}
	if h, found := snap.Histograms["loadgen/latency-ns/all"]; found {
		rep.P50, rep.P90, rep.P99, rep.Max =
			time.Duration(h.P50), time.Duration(h.P90), time.Duration(h.P99), time.Duration(h.Max)
	}
	for name, h := range snap.Histograms {
		endpoint, isEndpoint := strings.CutPrefix(name, "loadgen/latency-ns/")
		if !isEndpoint || endpoint == "all" {
			continue
		}
		rep.Endpoints["/"+endpoint] = EndpointStat{
			Requests: h.Count,
			P50:      time.Duration(h.P50),
			P90:      time.Duration(h.P90),
			P99:      time.Duration(h.P99),
			Max:      time.Duration(h.Max),
		}
	}
	slowMu.Lock()
	rep.Slowest = slowest
	slowMu.Unlock()
	return rep, nil
}

// pick deterministically mixes worker and sequence number into an index, so
// the request mix is reproducible without a shared RNG.
func pick(worker, n, stride, mod int) int {
	return ((worker+1)*stride + n) % mod
}

// nextRequest rotates through the four analysis endpoints.
func nextRequest(worker, n int, name, source, cfg string) (endpoint string, body map[string]any) {
	body = map[string]any{"name": name, "source": source, "config": cfg}
	switch (worker + n) % 4 {
	case 0:
		return "/analyze", body
	case 1:
		body["fn"] = "main"
		return "/pointsto", body
	case 2:
		return "/cfi-targets", body
	default:
		return "/invariants", body
	}
}

// postJSON performs one request and returns the status plus the trace id the
// daemon assigned to it (the X-Kscope-Trace response header; empty when the
// daemon is not tracing).
func postJSON(ctx context.Context, client *http.Client, url string, body map[string]any) (int, string, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get(TraceHeader), nil
}

// SLOViolations checks the report against the gate and returns one line per
// violated objective (empty = the run passes).
func (r *LoadReport) SLOViolations(slo SLO) []string {
	var out []string
	if slo.MaxP50 > 0 && r.P50 > slo.MaxP50 {
		out = append(out, fmt.Sprintf("p50 %v exceeds SLO %v", r.P50, slo.MaxP50))
	}
	if slo.MaxP99 > 0 && r.P99 > slo.MaxP99 {
		out = append(out, fmt.Sprintf("p99 %v exceeds SLO %v", r.P99, slo.MaxP99))
	}
	if slo.MaxErrorRate >= 0 && r.Requests > 0 {
		rate := float64(r.Errors) / float64(r.Requests)
		if rate > slo.MaxErrorRate {
			out = append(out, fmt.Sprintf("error rate %.4f exceeds SLO %.4f (%d/%d)",
				rate, slo.MaxErrorRate, r.Errors, r.Requests))
		}
	}
	return out
}

// Text renders the report for terminals.
func (r *LoadReport) Text() string {
	var b strings.Builder
	rps := float64(0)
	if r.Elapsed > 0 {
		rps = float64(r.Requests) / r.Elapsed.Seconds()
	}
	fmt.Fprintf(&b, "loadgen: %d requests in %v (%.0f req/s): %d ok, %d rejected (503), %d errors\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), rps, r.OK, r.Rejected, r.Errors)
	fmt.Fprintf(&b, "latency: p50=%v p90=%v p99=%v max=%v\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	endpoints := make([]string, 0, len(r.Endpoints))
	for e := range r.Endpoints {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		s := r.Endpoints[e]
		fmt.Fprintf(&b, "  %-14s n=%-6d p50=%-10v p99=%-10v max=%v\n",
			e, s.Requests, s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond),
			s.Max.Round(time.Microsecond))
	}
	if len(r.Slowest) > 0 {
		fmt.Fprintf(&b, "slowest requests (inspect with GET /tracez?id=<trace>):\n")
		for _, sr := range r.Slowest {
			trace := sr.TraceID
			if trace == "" {
				trace = "-"
			}
			fmt.Fprintf(&b, "  %-14s status=%-3d latency=%-10v trace=%s\n",
				sr.Endpoint, sr.Status, sr.Latency.Round(time.Microsecond), trace)
		}
	}
	return b.String()
}
