package telemetry

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A nil registry, an empty watch list, or a nil callback must all disable the
// watchdog entirely, and Stop on the resulting nil must be safe.
func TestWatchdogNilConfigurations(t *testing.T) {
	r := New()
	if w := NewWatchdog(nil, time.Millisecond, time.Millisecond, []string{"x"}, func(Stall) {}); w != nil {
		t.Error("nil registry produced a watchdog")
	}
	if w := NewWatchdog(r, time.Millisecond, time.Millisecond, nil, func(Stall) {}); w != nil {
		t.Error("empty watch list produced a watchdog")
	}
	if w := NewWatchdog(r, time.Millisecond, time.Millisecond, []string{"x"}, nil); w != nil {
		t.Error("nil callback produced a watchdog")
	}
	var w *Watchdog
	w.Stop() // must not panic
}

// With flat watched instruments the watchdog fires exactly once per stall.
func TestWatchdogFiresOnStall(t *testing.T) {
	r := New()
	r.Counter("solver/pops").Add(10)
	stalls := make(chan Stall, 8)
	w := NewWatchdog(r, time.Millisecond, 5*time.Millisecond,
		[]string{"solver/pops"}, func(s Stall) { stalls <- s })
	defer w.Stop()
	select {
	case s := <-stalls:
		if s.Quiet < 5*time.Millisecond {
			t.Errorf("stall reported after only %s quiet", s.Quiet)
		}
		if s.Watched["solver/pops"] != 10 {
			t.Errorf("watched snapshot = %v, want solver/pops=10", s.Watched)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a flat instrument")
	}
	// One stall, one report: no re-fire while still quiet.
	select {
	case <-stalls:
		t.Error("watchdog fired twice for the same stall")
	case <-time.After(50 * time.Millisecond):
	}
}

// Progress on any watched instrument holds the watchdog off, and after a
// reported stall resumed progress re-arms it for the next one.
func TestWatchdogRearmsAfterProgress(t *testing.T) {
	r := New()
	var fired atomic.Int64
	stalls := make(chan Stall, 8)
	w := NewWatchdog(r, time.Millisecond, 10*time.Millisecond,
		[]string{"solver/pops"}, func(s Stall) { fired.Add(1); stalls <- s })
	defer w.Stop()

	// Keep making progress for a while: no stall may be reported.
	deadline := time.Now().Add(40 * time.Millisecond)
	for time.Now().Before(deadline) {
		r.Counter("solver/pops").Inc()
		time.Sleep(2 * time.Millisecond)
	}
	if n := fired.Load(); n != 0 {
		t.Fatalf("watchdog fired %d times while progressing", n)
	}

	// First stall.
	select {
	case <-stalls:
	case <-time.After(2 * time.Second):
		t.Fatal("no stall after progress ceased")
	}
	// Progress re-arms; the next quiet window is a fresh stall.
	r.Counter("solver/pops").Inc()
	select {
	case <-stalls:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not re-arm after progress")
	}
}

// sample aggregates counter value plus timer and histogram observation counts
// under one name, so "progress" is any new event.
func TestWatchdogSampleAggregates(t *testing.T) {
	r := New()
	if got := sample(r, "x"); got != 0 {
		t.Fatalf("empty sample = %d", got)
	}
	r.Counter("x").Add(3)
	r.Timer("x").Start()()
	r.Histogram("x").Observe(99)
	if got := sample(r, "x"); got != 5 {
		t.Errorf("sample = %d, want 5 (3 counter + 1 timer obs + 1 histogram obs)", got)
	}
}

// Stall.Text renders the quiet window and every watched/gauge value.
func TestStallText(t *testing.T) {
	s := Stall{
		Quiet:   1500 * time.Millisecond,
		Watched: map[string]int64{"solver/pops": 42},
		Gauges:  map[string]int64{"worklist/depth": 7},
	}
	text := s.Text()
	for _, want := range []string{"no progress for 1.5s", "solver/pops=42", "worklist/depth=7"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
}
