package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceSpanAttachment is the sink-inheritance contract: spans opened
// under a context carrying a trace — and their descendants, opened through
// the registry's own StartSpan with a traced parent — land in the trace, and
// the registry's global span log stays empty.
func TestTraceSpanAttachment(t *testing.T) {
	r := New()
	tr := NewTrace("req-1", "serve/analyze")
	ctx := WithSpan(WithTrace(context.Background(), tr), tr.Root())

	ctx, solve, finishSolve := StartSpanCtx(ctx, r, "serve/solve")
	if solve == nil {
		t.Fatal("StartSpanCtx returned nil span with a trace in context")
	}
	// The layer below knows nothing about traces: it parents to the span it
	// was handed, via the registry. Sink inheritance must still divert it.
	child, finishChild := r.StartSpan("pointsto/round", solve)
	if child == nil {
		t.Fatal("registry StartSpan with traced parent returned nil span")
	}
	finishChild()
	finishSolve()

	// And the ctx path one level deeper.
	_, _, finishGrand := StartSpanCtx(ctx, r, "pointsto/prep")
	finishGrand()

	if got := len(r.Snapshot().Spans); got != 0 {
		t.Fatalf("registry retained %d spans; all belong to the trace", got)
	}
	tr.Finish()
	e := tr.Export()
	byName := map[string]SpanRecord{}
	for _, s := range e.Spans {
		byName[s.Name] = s
	}
	for _, want := range []string{"serve/solve", "pointsto/round", "pointsto/prep"} {
		if _, found := byName[want]; !found {
			t.Fatalf("trace missing span %q: %+v", want, e.Spans)
		}
	}
	if byName["pointsto/round"].Parent != byName["serve/solve"].ID {
		t.Fatalf("child span not parented to serve/solve: %+v", e.Spans)
	}
	if byName["serve/solve"].Parent != tr.Root().id {
		t.Fatalf("serve/solve not parented to the trace root: %+v", e.Spans)
	}
	if e.ID != "req-1" || e.DurMS < 0 {
		t.Fatalf("export identity wrong: %+v", e)
	}
}

// TestTraceIDValidation pins which wire ids are honored and which are
// replaced by a generated one.
func TestTraceIDValidation(t *testing.T) {
	valid := []string{"a", "my-trace-1", "ABC_def-123", strings.Repeat("x", 64)}
	for _, id := range valid {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
		if got := NewTrace(id, "n").ID(); got != id {
			t.Errorf("NewTrace(%q) replaced the id with %q", id, got)
		}
	}
	invalid := []string{"", "has space", "semi;colon", "sla/sh", strings.Repeat("x", 65), "nul\x00"}
	for _, id := range invalid {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
		got := NewTrace(id, "n").ID()
		if got == id || !ValidTraceID(got) {
			t.Errorf("NewTrace(%q) kept/generated a bad id %q", id, got)
		}
	}
	// Generated ids are distinct.
	if a, b := NewTrace("", "n").ID(), NewTrace("", "n").ID(); a == b {
		t.Fatalf("two generated trace ids collide: %q", a)
	}
}

// TestRegistrySpanCap replaces the old serve-layer stripping: the registry
// itself bounds its span log, counting what it refuses.
func TestRegistrySpanCap(t *testing.T) {
	r := New()
	r.SetSpanCap(3)
	epoch := time.Now()
	for i := 0; i < 5; i++ {
		r.RecordSpan(fmt.Sprintf("s%d", i), nil, epoch, time.Millisecond)
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("span log kept %d spans, cap 3", len(snap.Spans))
	}
	// Keep-first: the retained prefix is where the process's life began.
	for i, s := range snap.Spans {
		if want := fmt.Sprintf("s%d", i); s.Name != want {
			t.Fatalf("span[%d] = %q, want %q (keep-first)", i, s.Name, want)
		}
	}
	if got := snap.Counters["telemetry/spans/dropped"]; got != 2 {
		t.Fatalf("telemetry/spans/dropped = %d, want 2", got)
	}
}

// TestTraceSpanCap bounds one trace's span log the same way.
func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("", "hammer")
	for i := 0; i < DefaultTraceSpanCap+10; i++ {
		_, fin := tr.StartSpan("s", nil)
		fin()
	}
	tr.Finish()
	e := tr.Export()
	if len(e.Spans) != DefaultTraceSpanCap {
		t.Fatalf("trace kept %d spans, cap %d", len(e.Spans), DefaultTraceSpanCap)
	}
	// 11, not 10: the root span records at Finish, after the cap filled.
	if e.SpansDropped != 11 {
		t.Fatalf("SpansDropped = %d, want 11", e.SpansDropped)
	}
}

// recordTrace pushes a finished trace of roughly the given duration through
// the recorder by back-dating its start.
func recordTrace(f *FlightRecorder, id string, dur time.Duration) {
	tr := NewTrace(id, "t")
	tr.start = tr.start.Add(-dur)
	tr.root.start = tr.start
	f.Record(tr)
}

// TestFlightRecorderRing pins the retention policy: last N stay in the ring,
// the slowest of the ring-evicted survive in the shortlist, everything else
// is counted as dropped.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(2, 2)
	recordTrace(f, "slow", 200*time.Millisecond)
	// Distinct, increasing durations so the drop among ring evictions
	// (slow, fast0, fast1) is deterministic: fast0, the fastest.
	for i := 0; i < 4; i++ {
		recordTrace(f, fmt.Sprintf("fast%d", i), time.Duration(i+1)*10*time.Millisecond)
	}
	idx := f.Index()
	if len(idx.Recent) != 2 || idx.Recent[0].ID != "fast3" || idx.Recent[1].ID != "fast2" {
		t.Fatalf("recent ring wrong (want fast3, fast2 newest-first): %+v", idx.Recent)
	}
	if len(idx.Slowest) != 2 || idx.Slowest[0].ID != "slow" || idx.Slowest[1].ID != "fast1" {
		t.Fatalf("slowest shortlist did not retain the slow evictions: %+v", idx.Slowest)
	}
	if idx.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (three evicted, two kept)", idx.Dropped)
	}
	// Lookup resolves both lists.
	if _, found := f.Lookup("slow"); !found {
		t.Fatal("Lookup missed the slowest-shortlist trace")
	}
	if _, found := f.Lookup("fast3"); !found {
		t.Fatal("Lookup missed a recent-ring trace")
	}
	if _, found := f.Lookup("fast0"); found {
		t.Fatal("Lookup resurrected a dropped trace")
	}
}

// TestParallelTraceHammer hammers traces, spans, and the flight recorder
// from many goroutines — the -race gate for the whole tracing layer (the
// ^TestParallel name keeps it in make race-parallel).
func TestParallelTraceHammer(t *testing.T) {
	const workers, perWorker = 8, 50
	r := New()
	f := NewFlightRecorder(16, 4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr := NewTrace(fmt.Sprintf("w%d-%d", w, i), "hammer")
				ctx := WithSpan(WithTrace(context.Background(), tr), tr.Root())
				ctx, s, fin := StartSpanCtx(ctx, r, "outer")
				var inner sync.WaitGroup
				for j := 0; j < 4; j++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						_, _, finJ := StartSpanCtx(ctx, r, "inner")
						tr.Annotate("k", "v")
						finJ()
					}()
				}
				inner.Wait()
				_ = s
				fin()
				f.Record(tr)
			}
		}(w)
	}
	wg.Wait()
	idx := f.Index()
	if len(idx.Recent) != 16 || len(idx.Slowest) != 4 {
		t.Fatalf("retention after hammer: %d recent, %d slowest", len(idx.Recent), len(idx.Slowest))
	}
	total := int64(workers * perWorker)
	if got := int64(len(idx.Recent)+len(idx.Slowest)) + idx.Dropped; got != total {
		t.Fatalf("trace accounting: kept+dropped = %d, want %d", got, total)
	}
	if got := len(r.Snapshot().Spans); got != 0 {
		t.Fatalf("registry absorbed %d spans that belong to traces", got)
	}
	for _, s := range idx.Recent {
		if s.Spans != 6 { // root + outer + 4 inner
			t.Fatalf("trace %s retained %d spans, want 6", s.ID, s.Spans)
		}
	}
}

// TestPrometheus checks the text exposition: one line set per instrument
// kind, names mangled under the kscope_ prefix.
func TestPrometheus(t *testing.T) {
	r := New()
	r.Counter("serve/requests/analyze").Inc()
	r.Counter("serve/requests/analyze").Inc()
	r.Gauge("serve/cache/programs").Set(7)
	stop := r.Timer("core/analyze").Start()
	stop()
	for i := 1; i <= 100; i++ {
		r.Histogram("serve/latency-ns").Observe(int64(i))
	}
	out := string(r.Snapshot().Prometheus())
	for _, want := range []string{
		"# TYPE kscope_serve_requests_analyze counter\nkscope_serve_requests_analyze 2\n",
		"# TYPE kscope_serve_cache_programs gauge\nkscope_serve_cache_programs 7\n",
		"# TYPE kscope_core_analyze_total_ms counter\n",
		"kscope_core_analyze_calls 1\n",
		"# TYPE kscope_serve_latency_ns summary\n",
		`kscope_serve_latency_ns{quantile="0.5"} `,
		`kscope_serve_latency_ns{quantile="0.99"} `,
		"kscope_serve_latency_ns_sum 5050\n",
		"kscope_serve_latency_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "/") || strings.Contains(out, "-ns ") && !strings.Contains(out, "_ns") {
		t.Errorf("exposition leaks unmangled names:\n%s", out)
	}
}

// TestLoadSnapshotURL loads a baseline from a live /metricsz-shaped endpoint
// and from a file path, and surfaces HTTP failures as errors.
func TestLoadSnapshotURL(t *testing.T) {
	r := New()
	r.Counter("serve/cache/misses").Inc()
	payload, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, rq *http.Request) {
		if rq.URL.Path == "/boom" {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write(payload)
	}))
	defer ts.Close()

	snap, err := LoadSnapshot(ts.URL + "/metricsz")
	if err != nil {
		t.Fatalf("LoadSnapshot(url): %v", err)
	}
	if snap.Counters["serve/cache/misses"] != 1 {
		t.Fatalf("URL-loaded snapshot wrong: %+v", snap.Counters)
	}
	if _, err := LoadSnapshot(ts.URL + "/boom"); err == nil {
		t.Fatal("LoadSnapshot swallowed an HTTP 500")
	}
	if _, err := LoadSnapshot("/nonexistent/baseline.json"); err == nil {
		t.Fatal("LoadSnapshot swallowed a missing file")
	}
}
