package telemetry

import (
	"testing"
)

// TestHistogramPercentiles checks bucketed percentile estimates: reported
// quantiles are bucket upper bounds, never below the true quantile's bucket
// and clamped to the exact max.
func TestHistogramPercentiles(t *testing.T) {
	r := New()
	h := r.Histogram("sizes")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.stat()
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Fatalf("stat = %+v, want count 100 sum 5050 max 100", s)
	}
	if s.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
	// True p50 is 50 (bucket [32,63] -> upper 63); p99 is 99 (bucket
	// [64,127] -> clamped to max 100).
	if s.P50 < 50 || s.P50 > 63 {
		t.Errorf("p50 = %d, want in [50,63]", s.P50)
	}
	if s.P90 < 90 || s.P90 > 100 {
		t.Errorf("p90 = %d, want in [90,100]", s.P90)
	}
	if s.P99 != 100 {
		t.Errorf("p99 = %d, want clamped to max 100", s.P99)
	}
}

// TestHistogramEdgeValues covers zero, negative (clamped), and single-sample
// distributions.
func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	s := h.stat()
	if s.Count != 2 || s.Sum != 0 || s.Max != 0 {
		t.Errorf("stat = %+v, want two zero samples", s)
	}
	if s.P50 != 0 || s.P99 != 0 {
		t.Errorf("percentiles = %d/%d, want 0/0", s.P50, s.P99)
	}

	var one Histogram
	one.Observe(1 << 40)
	s = one.stat()
	if s.P50 != 1<<40 || s.P99 != 1<<40 || s.Max != 1<<40 {
		t.Errorf("single-sample stat = %+v, want all quantiles = max", s)
	}
}

// TestHistogramNilSafety checks the nil-instrument contract.
func TestHistogramNilSafety(t *testing.T) {
	var r *Registry
	h := r.Histogram("h")
	if h != nil {
		t.Error("nil registry should hand out a nil histogram")
	}
	h.Observe(42)
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("nil histogram should read 0")
	}
	if s := h.stat(); s.Count != 0 {
		t.Errorf("nil histogram stat = %+v, want zero", s)
	}
}

// TestHistogramInterning verifies repeated lookups return the same
// instrument and that it lands in snapshots.
func TestHistogramInterning(t *testing.T) {
	r := New()
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram not interned")
	}
	r.Histogram("x").Observe(9)
	if got := r.Snapshot().Histograms["x"]; got.Count != 1 || got.Max != 9 {
		t.Errorf("snapshot histogram = %+v, want count 1 max 9", got)
	}
}

// TestBucketUpper pins the bucket bounds the percentile math relies on.
func TestBucketUpper(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: 1<<63 - 1}
	for bucket, want := range cases {
		if got := bucketUpper(bucket); got != want {
			t.Errorf("bucketUpper(%d) = %d, want %d", bucket, got, want)
		}
	}
}
