package telemetry

import (
	"strings"
	"testing"
	"time"
)

func snapshotPair() (Snapshot, Snapshot) {
	oldR := New()
	oldR.Counter("pops").Add(100)
	oldR.Counter("hits").Add(50)
	oldR.Gauge("nodes").Set(10)
	oldR.Timer("solve").Observe(100 * time.Millisecond)
	oldR.Histogram("lat").Observe(64)

	newR := New()
	newR.Counter("pops").Add(150) // +50% — a regression when watched
	newR.Counter("hits").Add(51)  // +2% — within threshold
	newR.Counter("fresh").Add(7)  // not in old snapshot
	newR.Gauge("nodes").Set(12)
	newR.Timer("solve").Observe(101 * time.Millisecond)
	newR.Histogram("lat").Observe(64)
	return oldR.Snapshot(), newR.Snapshot()
}

// TestCompareSnapshotsRegression checks watched counters past the threshold
// regress, within-threshold and unwatched growth does not, and instruments
// new to the current snapshot never regress (no baseline).
func TestCompareSnapshotsRegression(t *testing.T) {
	oldS, newS := snapshotPair()
	c := CompareSnapshots(oldS, newS, []string{"pops", "hits", "fresh"}, 0.10)
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "pops" {
		t.Fatalf("regressions = %+v, want exactly [pops]", regs)
	}
	byName := map[string]Delta{}
	for _, d := range c.Deltas {
		if d.Kind == "counter" {
			byName[d.Name] = d
		}
	}
	if !byName["hits"].Watched || byName["hits"].Regressed {
		t.Errorf("hits = %+v, want watched but not regressed", byName["hits"])
	}
	if byName["fresh"].Regressed {
		t.Errorf("fresh has no baseline and must not regress: %+v", byName["fresh"])
	}
	if byName["pops"].Ratio() != 1.5 {
		t.Errorf("pops ratio = %v, want 1.5", byName["pops"].Ratio())
	}
}

// TestCompareSnapshotsUnwatched checks nothing regresses without a watch
// list, whatever the growth.
func TestCompareSnapshotsUnwatched(t *testing.T) {
	oldS, newS := snapshotPair()
	if regs := CompareSnapshots(oldS, newS, nil, 0.0).Regressions(); len(regs) != 0 {
		t.Errorf("unwatched comparison regressed: %+v", regs)
	}
}

// TestComparisonText checks the rendering covers every kind and flags the
// regression.
func TestComparisonText(t *testing.T) {
	oldS, newS := snapshotPair()
	text := CompareSnapshots(oldS, newS, []string{"pops"}, 0.10).Text()
	for _, want := range []string{
		"metrics comparison", "counter", "gauge", "timer", "histogram",
		"pops", "REGRESSION", "1 watched instrument(s) regressed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q in:\n%s", want, text)
		}
	}
	clean := CompareSnapshots(oldS, newS, []string{"hits"}, 0.10).Text()
	if !strings.Contains(clean, "no watched instrument regressed") {
		t.Errorf("clean comparison missing verdict:\n%s", clean)
	}
}

// TestWatchdogStallAndRearm drives a registry through stall → progress →
// stall and checks the watchdog fires once per stall with a diagnosis.
func TestWatchdogStallAndRearm(t *testing.T) {
	r := New()
	r.Gauge("depth").Set(17)
	stalls := make(chan Stall, 8)
	wd := NewWatchdog(r, 2*time.Millisecond, 20*time.Millisecond,
		[]string{"progress"}, func(s Stall) { stalls <- s })
	defer wd.Stop()

	// Phase 1: no progress at all — expect a stall report.
	var first Stall
	select {
	case first = <-stalls:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a flat counter")
	}
	if first.Quiet < 20*time.Millisecond {
		t.Errorf("stall quiet = %v, want >= window", first.Quiet)
	}
	if first.Gauges["depth"] != 17 {
		t.Errorf("stall gauges = %v, want depth=17", first.Gauges)
	}
	if !strings.Contains(first.Text(), "no progress") {
		t.Errorf("stall text = %q", first.Text())
	}

	// Phase 2: make progress for a while — the armed stall must clear and
	// not re-fire while the counter moves.
	deadline := time.Now().Add(60 * time.Millisecond)
	for time.Now().Before(deadline) {
		r.Counter("progress").Inc()
		time.Sleep(time.Millisecond)
	}
	select {
	case s := <-stalls:
		t.Fatalf("watchdog fired during progress: %+v", s)
	default:
	}

	// Phase 3: go quiet again — expect exactly one more report.
	select {
	case <-stalls:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not re-arm after progress")
	}
}

// TestWatchdogNil checks the inert forms: nil registry, empty watch list.
func TestWatchdogNil(t *testing.T) {
	var r *Registry
	if wd := NewWatchdog(r, time.Millisecond, time.Millisecond, []string{"x"}, func(Stall) {}); wd != nil {
		t.Error("nil registry should yield a nil watchdog")
	}
	if wd := NewWatchdog(New(), time.Millisecond, time.Millisecond, nil, func(Stall) {}); wd != nil {
		t.Error("empty watch list should yield a nil watchdog")
	}
	var wd *Watchdog
	wd.Stop() // must not panic
}
