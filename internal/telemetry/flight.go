package telemetry

// The flight recorder is the retention policy behind /tracez: every finished
// request trace passes through it, the last N stay browsable, and of the
// traces that age out of that ring the slowest K are kept anyway — the
// interesting traces are almost always the slow ones, and they are exactly
// the ones a fixed ring would have evicted by the time anyone looks.

import (
	"sort"
	"sync"
	"time"
)

// Default flight-recorder retention.
const (
	DefaultFlightRecent  = 64
	DefaultFlightSlowest = 8
)

// FlightRecorder retains finished traces: a ring of the most recent plus a
// duration-ordered shortlist of the slowest traces evicted from that ring
// (a trace is in one list or the other, never both). Evictions that qualify
// for neither are counted, not kept. Safe for concurrent use; all methods
// are safe on a nil recorder.
type FlightRecorder struct {
	mu        sync.Mutex
	recentCap int
	slowCap   int
	recent    []TraceExport // oldest first
	slowest   []TraceExport // duration-descending
	dropped   int64
}

// NewFlightRecorder builds a recorder retaining the last `recent` finished
// traces and the `slowest` slowest evicted ones (non-positive values take
// the defaults).
func NewFlightRecorder(recent, slowest int) *FlightRecorder {
	if recent <= 0 {
		recent = DefaultFlightRecent
	}
	if slowest <= 0 {
		slowest = DefaultFlightSlowest
	}
	return &FlightRecorder{recentCap: recent, slowCap: slowest}
}

// Record finishes t and retains its export. Safe on a nil recorder or trace.
func (f *FlightRecorder) Record(t *Trace) {
	if f == nil || t == nil {
		return
	}
	t.Finish()
	e := t.Export()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recent = append(f.recent, e)
	if len(f.recent) > f.recentCap {
		evicted := f.recent[0]
		f.recent = append(f.recent[:0], f.recent[1:]...)
		f.keepSlowest(evicted)
	}
}

// keepSlowest inserts a ring-evicted trace into the slowest shortlist,
// dropping the fastest overflow (counted in dropped). Callers hold f.mu.
func (f *FlightRecorder) keepSlowest(e TraceExport) {
	i := sort.Search(len(f.slowest), func(i int) bool {
		return f.slowest[i].DurMS < e.DurMS
	})
	f.slowest = append(f.slowest, TraceExport{})
	copy(f.slowest[i+1:], f.slowest[i:])
	f.slowest[i] = e
	if len(f.slowest) > f.slowCap {
		f.slowest = f.slowest[:f.slowCap]
		f.dropped++
	}
}

// Lookup returns the retained trace with the given id (recent ring first,
// then the slowest shortlist).
func (f *FlightRecorder) Lookup(id string) (TraceExport, bool) {
	if f == nil {
		return TraceExport{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Newest first: a reused id (clients may replay a header) resolves to
	// its latest occurrence.
	for i := len(f.recent) - 1; i >= 0; i-- {
		if f.recent[i].ID == id {
			return f.recent[i], true
		}
	}
	for _, e := range f.slowest {
		if e.ID == id {
			return e, true
		}
	}
	return TraceExport{}, false
}

// TraceSummary is one retained trace in the /tracez index.
type TraceSummary struct {
	ID           string            `json:"id"`
	Name         string            `json:"name"`
	Start        time.Time         `json:"start"`
	DurMS        float64           `json:"dur_ms"`
	Spans        int               `json:"spans"`
	SpansDropped int64             `json:"spans_dropped,omitempty"`
	Annotations  map[string]string `json:"annotations,omitempty"`
}

// FlightIndex is the /tracez index body.
type FlightIndex struct {
	Recent  []TraceSummary `json:"recent"`  // newest first
	Slowest []TraceSummary `json:"slowest"` // slowest first
	Dropped int64          `json:"dropped"` // evicted traces retained nowhere
}

// Index summarizes the recorder's current contents.
func (f *FlightRecorder) Index() FlightIndex {
	idx := FlightIndex{Recent: []TraceSummary{}, Slowest: []TraceSummary{}}
	if f == nil {
		return idx
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := len(f.recent) - 1; i >= 0; i-- {
		idx.Recent = append(idx.Recent, summarize(f.recent[i]))
	}
	for _, e := range f.slowest {
		idx.Slowest = append(idx.Slowest, summarize(e))
	}
	idx.Dropped = f.dropped
	return idx
}

func summarize(e TraceExport) TraceSummary {
	return TraceSummary{
		ID:           e.ID,
		Name:         e.Name,
		Start:        e.Start,
		DurMS:        e.DurMS,
		Spans:        len(e.Spans),
		SpansDropped: e.SpansDropped,
		Annotations:  e.Annotations,
	}
}
