package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of a Histogram: bucket i holds values v
// with bits.Len64(v) == i, i.e. bucket 0 is exactly {0} and bucket i>0 spans
// [2^(i-1), 2^i). 65 buckets cover the whole non-negative int64 range.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of non-negative integer samples
// (set sizes, depths, nanosecond latencies). Observations are two atomic adds
// plus an atomic max, so hot paths can record per-event values; exact values
// are folded into power-of-two buckets, from which snapshots derive
// approximate percentiles (reported as the bucket's inclusive upper bound,
// clamped to the exact observed maximum).
type Histogram struct {
	count   int64
	sum     int64
	max     int64
	buckets [histBuckets]int64
}

// Observe records one sample. Negative values are clamped to 0. Safe on a
// nil Histogram and for concurrent writers.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	atomic.AddInt64(&h.buckets[bits.Len64(uint64(v))], 1)
	for {
		cur := atomic.LoadInt64(&h.max)
		if v <= cur || atomic.CompareAndSwapInt64(&h.max, cur, v) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.count)
}

// Max returns the largest observed sample (0 for a nil Histogram).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.max)
}

// bucketUpper is bucket i's inclusive upper bound.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return int64(^uint64(0) >> 1) // math.MaxInt64
	}
	return int64(1)<<i - 1
}

// HistStat is one histogram's exported state: totals plus approximate
// percentiles (bucket upper bounds, clamped to the exact max).
type HistStat struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// stat snapshots the histogram. Concurrent writers may land between the
// bucket reads; the result is a consistent-enough point-in-time view for
// reporting (totals and buckets can be off by in-flight observations).
func (h *Histogram) stat() HistStat {
	var s HistStat
	if h == nil {
		return s
	}
	s.Count = atomic.LoadInt64(&h.count)
	s.Sum = atomic.LoadInt64(&h.sum)
	s.Max = atomic.LoadInt64(&h.max)
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = atomic.LoadInt64(&h.buckets[i])
		total += counts[i]
	}
	quantile := func(q float64) int64 {
		need := int64(q*float64(total) + 0.5)
		if need < 1 {
			need = 1
		}
		var cum int64
		for i, c := range counts {
			cum += c
			if cum >= need {
				u := bucketUpper(i)
				if u > s.Max {
					u = s.Max
				}
				return u
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	return s
}
