package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stall is the diagnosis a Watchdog delivers when every watched instrument
// has been flat for the configured window.
type Stall struct {
	Quiet   time.Duration    // how long the watched values have been flat
	Watched map[string]int64 // last observed value per watched instrument
	Gauges  map[string]int64 // full gauge state at stall time (depths, sizes)
}

// Text renders the diagnosis as a single stderr-friendly paragraph.
func (s Stall) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: no progress for %s\n", s.Quiet.Round(time.Millisecond))
	describe := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		names := keysOf(m)
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", n, m[n]))
		}
		fmt.Fprintf(&b, "  %s: %s\n", title, strings.Join(parts, " "))
	}
	describe("watched", s.Watched)
	describe("gauges", s.Gauges)
	return b.String()
}

// Watchdog samples a registry on an interval and reports a stall when none
// of the watched instruments changes for a full window — the solver is
// spinning (or wedged) without making progress. It fires once per stall and
// re-arms as soon as progress resumes. The solver's live counters
// (pointsto/progress/*) are the intended watch set; any counter, timer
// count, or histogram count name works.
type Watchdog struct {
	stop chan struct{}
	done chan struct{}
}

// NewWatchdog starts the sampler goroutine. interval is how often to sample
// (clamped to at least 1ms), window is how long the watched values must stay
// flat before onStall fires. A nil registry (or empty watch list) returns a
// nil Watchdog, whose Stop is a no-op.
func NewWatchdog(r *Registry, interval, window time.Duration, watch []string, onStall func(Stall)) *Watchdog {
	if r == nil || len(watch) == 0 || onStall == nil {
		return nil
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	w := &Watchdog{stop: make(chan struct{}), done: make(chan struct{})}
	go w.run(r, interval, window, watch, onStall)
	return w
}

// Stop terminates the sampler and waits for it to exit. Safe on nil.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	close(w.stop)
	<-w.done
}

// sample reads the progress value of one watched name: a counter, plus the
// observation counts of a same-named timer or histogram, so "progress" means
// any new event under that name.
func sample(r *Registry, name string) int64 {
	return r.Counter(name).Value() + r.Timer(name).Count() + r.Histogram(name).Count()
}

func (w *Watchdog) run(r *Registry, interval, window time.Duration, watch []string, onStall func(Stall)) {
	defer close(w.done)
	last := make(map[string]int64, len(watch))
	for _, name := range watch {
		last[name] = sample(r, name)
	}
	lastProgress := time.Now()
	fired := false
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
		}
		progressed := false
		for _, name := range watch {
			if v := sample(r, name); v != last[name] {
				last[name] = v
				progressed = true
			}
		}
		if progressed {
			lastProgress = time.Now()
			fired = false
			continue
		}
		if quiet := time.Since(lastProgress); !fired && quiet >= window {
			fired = true
			watched := make(map[string]int64, len(last))
			for name, v := range last {
				watched[name] = v
			}
			onStall(Stall{Quiet: quiet, Watched: watched, Gauges: r.Snapshot().Gauges})
		}
	}
}
