package telemetry

// Request-scoped tracing. A Trace is a private span tree with an identity:
// the spans of one request attach to the request's trace instead of the
// process-global Registry, so a single slow submission can be replayed
// offline without digging it out of a process-wide span log. Attachment is
// structural, not lexical — a Trace implements the same span sink the
// Registry does, and child spans inherit their parent's sink — so the
// pipeline's existing StartSpan(name, parent) call sites (core stages,
// solver rounds, pool jobs) flow into a trace whenever their parent chain
// roots in one, without knowing traces exist.
//
// The context carries two things: the active *Trace (WithTrace/TraceFrom)
// and the current parent *Span (WithSpan/SpanFrom). StartSpanCtx is the
// bridge for the layers in between: it opens a span on the trace when one is
// present, on the registry otherwise, and returns a derived context in which
// the new span is the parent of whatever opens next.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceSpanCap bounds the spans one trace retains (keep-first, drops
// counted). A request whose solve emits more rounds than this keeps its
// prefix — enough to see where the time went — rather than an unbounded log.
const DefaultTraceSpanCap = 4096

// Trace is one request's span tree. Create with NewTrace, carry through the
// work via WithTrace, then Finish and Export (a FlightRecorder does both).
// All methods are safe for concurrent use and safe on a nil *Trace.
type Trace struct {
	id    string
	name  string
	start time.Time
	root  *Span

	spanID int64 // atomic; per-trace span ids start at 1 for the root

	mu       sync.Mutex
	spans    []SpanRecord
	dropped  int64
	annoKeys []string // insertion order, for deterministic export
	annos    map[string]string
	finished bool
	dur      time.Duration
}

// NewTrace opens a trace. A valid id (see ValidTraceID) is honored — that is
// how a client-supplied X-Kscope-Trace header becomes the trace's identity —
// anything else, including "", is replaced by a generated id. The trace's
// root span is open from creation until Finish.
func NewTrace(id, name string) *Trace {
	if !ValidTraceID(id) {
		id = newTraceID()
	}
	t := &Trace{
		id:    id,
		name:  name,
		start: time.Now(),
		annos: map[string]string{},
	}
	t.root = &Span{sink: t, id: t.nextSpanID(), name: name, start: t.start}
	return t
}

// ID returns the trace identity ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the trace's root span — the parent handle that pulls
// descendant spans into the trace. Nil on a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a span inside the trace; a nil parent parents to the
// trace's root. Same contract as Registry.StartSpan. Safe on a nil trace.
func (t *Trace) StartSpan(name string, parent *Span) (*Span, func()) {
	if t == nil {
		return nil, func() {}
	}
	if parent == nil {
		parent = t.root
	}
	s := &Span{
		sink:   t,
		id:     t.nextSpanID(),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
		worker: atomic.LoadInt32(&parent.worker),
	}
	return s, s.finish
}

// Annotate attaches one key/value fact to the trace (admission outcome,
// cache hit/miss, budget spent). Last write per key wins; key order of the
// export is first-write order. Safe on a nil trace.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, seen := t.annos[key]; !seen {
		t.annoKeys = append(t.annoKeys, key)
	}
	t.annos[key] = value
	t.mu.Unlock()
}

// Finish closes the root span and freezes the trace's duration. Idempotent;
// safe on a nil trace. Spans may still arrive from stragglers after Finish
// (they are retained, cap permitting) — the duration does not move.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.finish()
	t.mu.Lock()
	if !t.finished {
		t.finished = true
		t.dur = time.Since(t.start)
	}
	t.mu.Unlock()
}

// SpansDropped returns how many spans the per-trace cap discarded.
func (t *Trace) SpansDropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// spanSink implementation: spans opened under this trace record here.
func (t *Trace) nextSpanID() int64    { return atomic.AddInt64(&t.spanID, 1) }
func (t *Trace) spanEpoch() time.Time { return t.start }
func (t *Trace) recordSpan(rec SpanRecord) {
	t.mu.Lock()
	if len(t.spans) >= DefaultTraceSpanCap {
		t.dropped++
	} else {
		t.spans = append(t.spans, rec)
	}
	t.mu.Unlock()
}

// TraceExport is the immutable exported form of a finished trace — what the
// flight recorder retains and /tracez serves.
type TraceExport struct {
	ID           string            `json:"id"`
	Name         string            `json:"name"`
	Start        time.Time         `json:"start"`
	DurMS        float64           `json:"dur_ms"`
	Annotations  map[string]string `json:"annotations,omitempty"`
	Spans        []SpanRecord      `json:"spans"`
	SpansDropped int64             `json:"spans_dropped,omitempty"`
}

// Export copies the trace's current state, spans sorted by start time then
// id (the same order Snapshot uses). An unfinished trace exports its
// duration so far.
func (t *Trace) Export() TraceExport {
	if t == nil {
		return TraceExport{}
	}
	t.mu.Lock()
	e := TraceExport{
		ID:           t.id,
		Name:         t.name,
		Start:        t.start,
		Spans:        append([]SpanRecord(nil), t.spans...),
		SpansDropped: t.dropped,
	}
	if len(t.annoKeys) > 0 {
		e.Annotations = make(map[string]string, len(t.annoKeys))
		for _, k := range t.annoKeys {
			e.Annotations[k] = t.annos[k]
		}
	}
	dur := t.dur
	if !t.finished {
		dur = time.Since(t.start)
	}
	t.mu.Unlock()
	e.DurMS = float64(dur) / float64(time.Millisecond)
	sort.Slice(e.Spans, func(i, j int) bool {
		if e.Spans[i].Start != e.Spans[j].Start {
			return e.Spans[i].Start < e.Spans[j].Start
		}
		return e.Spans[i].ID < e.Spans[j].ID
	})
	return e
}

// ChromeTrace renders the exported trace as Chrome trace-event JSON — the
// same format Snapshot.ChromeTrace emits, loadable in Perfetto — with the
// trace id as the process name and the annotations on a metadata event.
func (e TraceExport) ChromeTrace() ([]byte, error) {
	events := []traceEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "kscope trace " + e.ID},
	}}
	if len(e.Annotations) > 0 {
		args := make(map[string]any, len(e.Annotations))
		for k, v := range e.Annotations {
			args[k] = v
		}
		events = append(events, traceEvent{
			Name: "annotations", Ph: "M", PID: 1, TID: 0, Args: args,
		})
	}
	return marshalChrome(appendSpanEvents(events, e.Spans))
}

// ValidTraceID reports whether id is acceptable as a wire trace identity:
// 1–64 characters of [A-Za-z0-9_-]. Anything else is replaced at NewTrace,
// so a hostile header cannot pollute logs or /tracez lookups.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// fallbackTraceID serializes trace ids if crypto/rand is unusable.
var fallbackTraceID int64

func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "t" + strconv.FormatInt(atomic.AddInt64(&fallbackTraceID, 1), 16)
	}
	return hex.EncodeToString(b[:])
}

// Context plumbing. Both keys are private; the only way in or out is the
// functions below, so the stored types are always right.
type (
	traceCtxKey struct{}
	spanCtxKey  struct{}
)

// WithTrace returns a context carrying t as the active trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's active trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// WithSpan returns a context in which s is the current parent span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the context's current parent span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpanCtx opens a span wherever the context says it belongs: on the
// active trace when one is present (parented to the context's current span,
// else the trace root), otherwise on the registry exactly like
// Registry.StartSpan. The returned context carries the new span as the
// current parent, so nested StartSpanCtx calls build the tree without
// threading handles explicitly. With neither a trace nor a registry the span
// is nil and the finish a no-op.
func StartSpanCtx(ctx context.Context, r *Registry, name string) (context.Context, *Span, func()) {
	parent := SpanFrom(ctx)
	var (
		s   *Span
		fin func()
	)
	if tr := TraceFrom(ctx); tr != nil {
		s, fin = tr.StartSpan(name, parent)
	} else {
		s, fin = r.StartSpan(name, parent)
	}
	if s != nil {
		ctx = WithSpan(ctx, s)
	}
	return ctx, s, fin
}
