package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanHierarchy builds a small tree and checks the recorded parent
// links, worker inheritance, and snapshot ordering.
func TestSpanHierarchy(t *testing.T) {
	r := New()
	root, finRoot := r.StartSpan("root", nil)
	root.SetWorker(3)
	child, finChild := r.StartSpan("child", root)
	_, finGrand := r.StartSpan("grandchild", child)
	finGrand()
	finChild()
	finRoot()

	spans := r.Snapshot().Spans
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root id %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %d, want child id %d", byName["grandchild"].Parent, byName["child"].ID)
	}
	for _, name := range []string{"root", "child", "grandchild"} {
		if byName[name].Worker != 3 {
			t.Errorf("%s worker = %d, want inherited 3", name, byName[name].Worker)
		}
	}
	// Snapshot sorts by start time: root opened first.
	if spans[0].Name != "root" {
		t.Errorf("first span by start = %q, want root", spans[0].Name)
	}
}

// TestSpanDoubleFinish checks a finish func is idempotent.
func TestSpanDoubleFinish(t *testing.T) {
	r := New()
	_, fin := r.StartSpan("once", nil)
	fin()
	fin()
	if n := len(r.Snapshot().Spans); n != 1 {
		t.Errorf("got %d records after double finish, want 1", n)
	}
}

// TestSpanNilSafety checks the nil-registry contract for spans: nil handles
// everywhere, nothing recorded, nothing panics.
func TestSpanNilSafety(t *testing.T) {
	var r *Registry
	sp, fin := r.StartSpan("x", nil)
	if sp != nil {
		t.Error("nil registry should hand out a nil span")
	}
	sp.SetWorker(5)
	child, finChild := r.StartSpan("y", sp)
	child.SetWorker(1)
	finChild()
	fin()
	if r.RecordSpan("z", nil, time.Now(), time.Second) != nil {
		t.Error("nil registry RecordSpan should return nil")
	}
	if n := len(r.Snapshot().Spans); n != 0 {
		t.Errorf("nil registry recorded %d spans", n)
	}
}

// TestRecordSpan checks the retroactive form lands with the given interval
// and is usable as a parent.
func TestRecordSpan(t *testing.T) {
	r := New()
	start := time.Now()
	parent := r.RecordSpan("build", nil, start, 7*time.Millisecond)
	_, fin := r.StartSpan("solve", parent)
	fin()
	spans := r.Snapshot().Spans
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["build"].Dur != 7*time.Millisecond {
		t.Errorf("build dur = %v, want 7ms", byName["build"].Dur)
	}
	if byName["solve"].Parent != byName["build"].ID {
		t.Errorf("solve parent = %d, want build id", byName["solve"].Parent)
	}
}

// TestChromeTrace checks the trace export is valid Chrome trace-event JSON:
// an object with a traceEvents array of complete events carrying name, ph,
// ts, dur, pid, and tid.
func TestChromeTrace(t *testing.T) {
	r := New()
	root, finRoot := r.StartSpan("phase/outer", nil)
	root.SetWorker(2)
	_, finIn := r.StartSpan("phase/inner", root)
	time.Sleep(time.Millisecond)
	finIn()
	finRoot()

	data, err := r.Snapshot().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "M" {
			continue
		}
		complete++
		if ph != "X" {
			t.Errorf("event ph = %q, want X", ph)
		}
		for _, key := range []string{"name", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event missing %q: %v", key, ev)
			}
		}
	}
	if complete != 2 {
		t.Errorf("got %d complete events, want 2", complete)
	}
}

// TestSpanTreeText checks the -metrics text rendering aggregates same-named
// siblings under their parent with counts.
func TestSpanTreeText(t *testing.T) {
	r := New()
	root, finRoot := r.StartSpan("artifact", nil)
	for i := 0; i < 3; i++ {
		_, fin := r.StartSpan("job", root)
		fin()
	}
	finRoot()
	text := r.Snapshot().Text()
	if !strings.Contains(text, "spans:") {
		t.Fatalf("Text() missing spans section:\n%s", text)
	}
	if !strings.Contains(text, "artifact") || !strings.Contains(text, "over 3 span(s)") {
		t.Errorf("span tree does not aggregate 3 jobs under artifact:\n%s", text)
	}
	if strings.Index(text, "artifact") > strings.Index(text, "job") {
		t.Errorf("child rendered before parent:\n%s", text)
	}
}

// TestSpanHistogramRace hammers the new Span and Histogram instruments from
// many goroutines, with concurrent snapshots, and checks exact counts
// (run under -race in `make race`).
func TestSpanHistogramRace(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent, finParent := r.StartSpan("worker", nil)
			parent.SetWorker(w)
			for i := 0; i < perWorker; i++ {
				r.Histogram("h").Observe(int64(i))
				_, fin := r.StartSpan("op", parent)
				fin()
			}
			finParent()
		}(w)
	}
	// Concurrent reader: snapshots while writers are live.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot().Text()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := len(r.Snapshot().Spans); got != workers*(perWorker+1) {
		t.Errorf("span records = %d, want %d", got, workers*(perWorker+1))
	}
}
