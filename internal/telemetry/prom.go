package telemetry

// Prometheus text exposition (format version 0.0.4) of a Snapshot, served
// by kscope-serve's /metricsz?format=prom so standard scrapers can collect
// the daemon without speaking the JSON snapshot.

import (
	"fmt"
	"sort"
	"strings"
)

// Prometheus renders the snapshot in the Prometheus text exposition format.
// Instrument names are mangled to the metric charset (every byte outside
// [a-zA-Z0-9_] becomes "_") under a "kscope_" prefix. Counters and gauges
// export directly; timers become a pair of counters (<name>_total_ms,
// <name>_calls); histograms become summaries (p50/p90/p99 quantiles plus
// <name>_sum and <name>_count). Lines are sorted by original instrument
// name, so successive scrapes diff cleanly. Spans are not exported — they
// are /tracez's job.
func (s Snapshot) Prometheus() []byte {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m, m, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s_total_ms counter\n%s_total_ms %g\n", m, m, t.TotalMS)
		fmt.Fprintf(&b, "# TYPE %s_calls counter\n%s_calls %d\n", m, m, t.Count)
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", m)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %d\n", m, h.P50)
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %d\n", m, h.P90)
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %d\n", m, h.P99)
		fmt.Fprintf(&b, "%s_sum %d\n", m, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}
	return []byte(b.String())
}

// promName mangles an instrument name ("serve/latency-ns/analyze") into the
// Prometheus metric charset ("kscope_serve_latency_ns_analyze").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("kscope_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := keysOf(m)
	sort.Strings(keys)
	return keys
}
