package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWriters hammers one registry from many goroutines and checks
// the exact totals: instruments must be safe for concurrent use and lose no
// updates (run under -race in `make race`).
func TestConcurrentWriters(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Counter("c2").Add(2)
				r.Gauge("g").SetMax(int64(w*perWorker + i))
				r.Timer("t").Observe(time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter c = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("c2").Value(); got != 2*workers*perWorker {
		t.Errorf("counter c2 = %d, want %d", got, 2*workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge g = %d, want %d", got, workers*perWorker-1)
	}
	if got := r.Timer("t").Count(); got != workers*perWorker {
		t.Errorf("timer t count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Timer("t").Total(); got < workers*perWorker*time.Microsecond {
		t.Errorf("timer t total = %v, too small", got)
	}
}

// TestRegistryInterning verifies repeated lookups return the same
// instrument.
func TestRegistryInterning(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not interned")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge not interned")
	}
	if r.Timer("x") != r.Timer("x") {
		t.Error("Timer not interned")
	}
}

// TestNilSafety checks the nil-registry contract: a nil *Registry hands out
// nil instruments whose methods are all no-ops, so instrumented code needs
// no conditionals.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if r.Counter("c").Value() != 0 {
		t.Error("nil counter should read 0")
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").SetMax(9)
	if r.Gauge("g").Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	r.Timer("t").Observe(time.Second)
	stop := r.Timer("t").Start()
	stop()
	if r.Timer("t").Count() != 0 || r.Timer("t").Total() != 0 {
		t.Error("nil timer should read 0")
	}
}

// TestSnapshotText checks the text exporter's shape and sorting.
func TestSnapshotText(t *testing.T) {
	r := New()
	r.Counter("b/second").Add(2)
	r.Counter("a/first").Add(1)
	r.Gauge("nodes").Set(42)
	r.Timer("solve").Observe(1500 * time.Millisecond)
	text := r.Snapshot().Text()
	for _, want := range []string{
		"telemetry snapshot",
		"counters:", "a/first", "b/second",
		"gauges:", "nodes",
		"timers:", "solve",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q in:\n%s", want, text)
		}
	}
	if strings.Index(text, "a/first") > strings.Index(text, "b/second") {
		t.Error("counters not sorted")
	}
}

// TestSnapshotJSON round-trips the JSON exporter.
func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Timer("t").Observe(2 * time.Second)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["c"] != 3 {
		t.Errorf("counter c = %d, want 3", snap.Counters["c"])
	}
	if ts := snap.Timers["t"]; ts.Count != 1 || ts.TotalMS < 1999 {
		t.Errorf("timer t = %+v, want count 1, ~2000ms", ts)
	}
	if _, err := (&Registry{}).Snapshot().JSON(); err != nil {
		t.Errorf("empty snapshot JSON: %v", err)
	}
}

// TestTimerStart checks the closure form accumulates elapsed time.
func TestTimerStart(t *testing.T) {
	r := New()
	stop := r.Timer("t").Start()
	time.Sleep(time.Millisecond)
	stop()
	if r.Timer("t").Count() != 1 {
		t.Errorf("count = %d, want 1", r.Timer("t").Count())
	}
	if r.Timer("t").Total() < time.Millisecond {
		t.Errorf("total = %v, want >= 1ms", r.Timer("t").Total())
	}
}
