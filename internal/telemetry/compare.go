package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// LoadSnapshot reads a Snapshot either from a file previously written by
// kscope-bench -metrics-json, or — when the argument starts with http:// or
// https:// — from a live /metricsz endpoint, so one -compare-metrics flag
// gates against recorded baselines and running daemons alike.
func LoadSnapshot(pathOrURL string) (Snapshot, error) {
	var (
		data []byte
		err  error
	)
	if strings.HasPrefix(pathOrURL, "http://") || strings.HasPrefix(pathOrURL, "https://") {
		client := &http.Client{Timeout: 10 * time.Second}
		resp, getErr := client.Get(pathOrURL)
		if getErr != nil {
			return Snapshot{}, getErr
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return Snapshot{}, fmt.Errorf("%s: status %d", pathOrURL, resp.StatusCode)
		}
		data, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	} else {
		data, err = os.ReadFile(pathOrURL)
	}
	if err != nil {
		return Snapshot{}, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", pathOrURL, err)
	}
	return snap, nil
}

// Delta is one instrument's change between two snapshots. Value semantics
// per kind: counters and gauges compare their integer value, timers their
// total milliseconds, histograms their p99. Old or New is 0 when the
// instrument exists in only one snapshot.
type Delta struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"` // "counter" | "gauge" | "timer" | "histogram"
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Watched   bool    `json:"watched,omitempty"`
	Regressed bool    `json:"regressed,omitempty"`
}

// Ratio returns New/Old (0 when Old is 0).
func (d Delta) Ratio() float64 {
	if d.Old == 0 {
		return 0
	}
	return d.New / d.Old
}

// Comparison is the per-instrument diff of two snapshots, sorted by kind
// then name.
type Comparison struct {
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
}

// CompareSnapshots diffs cur against old. Instruments whose name is in
// watch are regression-checked: a watched instrument regresses when its new
// value exceeds its old value by more than threshold (a fraction: 0.10 =
// 10%). Watched instruments absent from the old snapshot never regress —
// there is no baseline to compare against.
func CompareSnapshots(old, cur Snapshot, watch []string, threshold float64) Comparison {
	watched := make(map[string]bool, len(watch))
	for _, name := range watch {
		watched[name] = true
	}
	c := Comparison{Threshold: threshold}
	add := func(kind, name string, oldV, newV float64) {
		d := Delta{Name: name, Kind: kind, Old: oldV, New: newV, Watched: watched[name]}
		d.Regressed = d.Watched && oldV > 0 && newV > oldV*(1+threshold)
		c.Deltas = append(c.Deltas, d)
	}
	counterNames := unionKeys(keysOf(old.Counters), keysOf(cur.Counters))
	for _, name := range counterNames {
		add("counter", name, float64(old.Counters[name]), float64(cur.Counters[name]))
	}
	for _, name := range unionKeys(keysOf(old.Gauges), keysOf(cur.Gauges)) {
		add("gauge", name, float64(old.Gauges[name]), float64(cur.Gauges[name]))
	}
	for _, name := range unionKeys(keysOf(old.Timers), keysOf(cur.Timers)) {
		add("timer", name, old.Timers[name].TotalMS, cur.Timers[name].TotalMS)
	}
	for _, name := range unionKeys(keysOf(old.Histograms), keysOf(cur.Histograms)) {
		add("histogram", name, float64(old.Histograms[name].P99), float64(cur.Histograms[name].P99))
	}
	sort.Slice(c.Deltas, func(i, j int) bool {
		if c.Deltas[i].Kind != c.Deltas[j].Kind {
			return c.Deltas[i].Kind < c.Deltas[j].Kind
		}
		return c.Deltas[i].Name < c.Deltas[j].Name
	})
	return c
}

// Regressions returns the watched deltas that exceeded the threshold.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Text renders the comparison as an aligned table, flagging watched and
// regressed instruments, with a one-line verdict at the end.
func (c Comparison) Text() string {
	var b strings.Builder
	b.WriteString("metrics comparison (old -> new)\n")
	width := 0
	for _, d := range c.Deltas {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSION"
		} else if d.Watched {
			mark = "  watched"
		}
		change := "    -"
		if d.Old != 0 {
			change = fmt.Sprintf("%+.1f%%", (d.Ratio()-1)*100)
		}
		fmt.Fprintf(&b, "  %-9s %-*s %14.3f -> %14.3f  %s%s\n",
			d.Kind, width, d.Name, d.Old, d.New, change, mark)
	}
	if regs := c.Regressions(); len(regs) > 0 {
		fmt.Fprintf(&b, "%d watched instrument(s) regressed past %.0f%%\n",
			len(regs), c.Threshold*100)
	} else {
		b.WriteString("no watched instrument regressed\n")
	}
	return b.String()
}

// unionKeys merges key slices, dropping duplicates.
func unionKeys(sets ...[]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, keys := range sets {
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}
