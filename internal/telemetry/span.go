package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// spanSink is where a finished span lands: the process-global Registry or a
// request-scoped Trace. A child span inherits its parent's sink, so an
// entire subtree records wherever its root was opened — solver and runner
// spans flow into a request trace without those packages knowing traces
// exist, because the parent handle they already thread through carries the
// destination.
type spanSink interface {
	nextSpanID() int64
	spanEpoch() time.Time
	recordSpan(SpanRecord)
}

func (r *Registry) nextSpanID() int64    { return atomic.AddInt64(&r.spanID, 1) }
func (r *Registry) spanEpoch() time.Time { return r.epoch }

// Span is one in-flight interval of the pipeline (an artifact render, an
// analysis stage, a solver phase, an interpreter run). Spans nest through an
// explicit parent handle rather than goroutine-local state, so a child span
// may start on a different worker goroutine than its parent — the norm under
// the runner.Map pool. A nil *Span is a valid handle: it is what a nil
// Registry hands out, it is accepted as a parent, and all its methods no-op.
type Span struct {
	sink   spanSink
	id     int64
	parent int64
	name   string
	start  time.Time
	worker int32
	done   int32
}

// SpanRecord is one finished span in a Snapshot. Start is relative to the
// sink's creation, so exported traces are stable across machines.
type SpanRecord struct {
	ID     int64         `json:"id"`
	Parent int64         `json:"parent,omitempty"` // 0 = root
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Worker int           `json:"worker"`
}

// spanSinkFor resolves where a new span records: a non-nil parent's own sink
// wins (so children follow their parent into a Trace), then the registry;
// with neither, the span is not recorded at all.
func spanSinkFor(r *Registry, parent *Span) spanSink {
	if parent != nil && parent.sink != nil {
		return parent.sink
	}
	if r == nil {
		return nil
	}
	return r
}

// StartSpan opens a span under parent (nil parent = root) and returns the
// handle plus the finish func that records it. The handle may be passed to
// other goroutines as the parent of child spans; the finish func must be
// called exactly once (later calls no-op). A nil registry returns a nil span
// and a no-op finish — unless the parent carries its own sink (it belongs to
// a Trace), in which case the child records there.
func (r *Registry) StartSpan(name string, parent *Span) (*Span, func()) {
	sink := spanSinkFor(r, parent)
	if sink == nil {
		return nil, func() {}
	}
	s := &Span{
		sink:  sink,
		id:    sink.nextSpanID(),
		name:  name,
		start: time.Now(),
	}
	if parent != nil {
		s.parent = parent.id
		s.worker = atomic.LoadInt32(&parent.worker)
	}
	return s, s.finish
}

// SetWorker tags the span with a worker-pool lane. Children started after
// the call inherit it; the Chrome trace export maps it to the event's tid so
// Perfetto renders one row per worker. Safe on a nil Span.
func (s *Span) SetWorker(id int) {
	if s != nil {
		atomic.StoreInt32(&s.worker, int32(id))
	}
}

// finish records the completed span into its sink.
func (s *Span) finish() {
	if s == nil || !atomic.CompareAndSwapInt32(&s.done, 0, 1) {
		return
	}
	s.sink.recordSpan(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.Sub(s.sink.spanEpoch()),
		Dur:    time.Since(s.start),
		Worker: int(atomic.LoadInt32(&s.worker)),
	})
}

// RecordSpan appends an already-measured interval as a finished span — the
// retroactive form of StartSpan for phases whose timing was captured before
// a registry was attached (e.g. constraint-graph construction inside
// pointsto.New). It returns a handle usable as a parent. Like StartSpan, the
// record follows a sink-bearing parent into its Trace; with a nil registry
// and no such parent it returns nil and records nothing.
func (r *Registry) RecordSpan(name string, parent *Span, start time.Time, d time.Duration) *Span {
	sink := spanSinkFor(r, parent)
	if sink == nil {
		return nil
	}
	s := &Span{sink: sink, id: sink.nextSpanID(), name: name, done: 1}
	var worker int32
	if parent != nil {
		s.parent = parent.id
		worker = atomic.LoadInt32(&parent.worker)
		s.worker = worker
	}
	sink.recordSpan(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   name,
		Start:  start.Sub(sink.spanEpoch()),
		Dur:    d,
		Worker: int(worker),
	})
	return s
}

// recordSpan appends one finished record, dropping past the retention cap
// (counted in "telemetry/spans/dropped") so a snapshot is bounded no matter
// how long the registry lives — a long-running daemon keeps the first
// spanCap spans as a sample instead of growing without bound.
func (r *Registry) recordSpan(rec SpanRecord) {
	r.spanMu.Lock()
	if r.spanCap > 0 && len(r.spans) >= r.spanCap {
		r.spanMu.Unlock()
		r.Counter("telemetry/spans/dropped").Inc()
		return
	}
	r.spans = append(r.spans, rec)
	r.spanMu.Unlock()
}

// traceEvent is one Chrome trace-event object ("X" complete events plus "M"
// metadata), the format Perfetto and chrome://tracing load directly.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// appendSpanEvents converts spans to complete ("X") events; the worker id
// becomes the thread lane.
func appendSpanEvents(events []traceEvent, spans []SpanRecord) []traceEvent {
	for _, sp := range spans {
		events = append(events, traceEvent{
			Name: sp.Name,
			Cat:  "kscope",
			Ph:   "X",
			TS:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			PID:  1,
			TID:  sp.Worker,
			Args: map[string]any{"id": sp.ID, "parent": sp.Parent},
		})
	}
	return events
}

// marshalChrome wraps events in the object form ({"traceEvents": [...]}).
func marshalChrome(events []traceEvent) ([]byte, error) {
	return json.MarshalIndent(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}, "", " ")
}

// ChromeTrace renders the snapshot's spans as Chrome trace-event JSON
// (object form, {"traceEvents": [...]}), viewable in Perfetto. Each span
// becomes one complete ("X") event; the worker id becomes the thread lane.
func (s Snapshot) ChromeTrace() ([]byte, error) {
	events := []traceEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "kscope"},
	}}
	return marshalChrome(appendSpanEvents(events, s.Spans))
}

// spanTree renders the snapshot's spans as an aggregated text tree: children
// group under their parent's slot by name, each line reporting how many
// spans of that name ran there and their total wall time. Aggregation keeps
// the tree readable when one phase (an interpreter run, a pool job) executes
// hundreds of times.
func (s Snapshot) spanTree(b *strings.Builder) {
	if len(s.Spans) == 0 {
		return
	}
	byID := make(map[int64]SpanRecord, len(s.Spans))
	for _, sp := range s.Spans {
		byID[sp.ID] = sp
	}
	children := map[int64][]SpanRecord{}
	for _, sp := range s.Spans {
		parent := sp.Parent
		if _, ok := byID[parent]; !ok {
			parent = 0 // orphaned (parent never finished): show as root
		}
		children[parent] = append(children[parent], sp)
	}
	b.WriteString("spans:\n")
	var walk func(parents []int64, depth int)
	walk = func(parents []int64, depth int) {
		group := map[string][]SpanRecord{}
		var order []string
		for _, p := range parents {
			for _, sp := range children[p] {
				if _, seen := group[sp.Name]; !seen {
					order = append(order, sp.Name)
				}
				group[sp.Name] = append(group[sp.Name], sp)
			}
		}
		// Order sibling groups by earliest start so the tree reads in
		// pipeline order (records arrive in finish order, so scan for the
		// minimum).
		minStart := func(g []SpanRecord) time.Duration {
			m := g[0].Start
			for _, sp := range g[1:] {
				if sp.Start < m {
					m = sp.Start
				}
			}
			return m
		}
		sort.SliceStable(order, func(i, j int) bool {
			return minStart(group[order[i]]) < minStart(group[order[j]])
		})
		for _, name := range order {
			g := group[name]
			var total time.Duration
			ids := make([]int64, len(g))
			for i, sp := range g {
				total += sp.Dur
				ids[i] = sp.ID
			}
			width := 44 - 2*depth
			if width < len(name) {
				width = len(name)
			}
			fmt.Fprintf(b, "  %s%-*s %10.3fms over %d span(s)\n",
				strings.Repeat("  ", depth), width, name,
				float64(total)/float64(time.Millisecond), len(g))
			// Children of every span in the group aggregate one level down.
			walk(ids, depth+1)
		}
	}
	walk([]int64{0}, 0)
}
