package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Span is one in-flight interval of the pipeline (an artifact render, an
// analysis stage, a solver phase, an interpreter run). Spans nest through an
// explicit parent handle rather than goroutine-local state, so a child span
// may start on a different worker goroutine than its parent — the norm under
// the runner.Map pool. A nil *Span is a valid handle: it is what a nil
// Registry hands out, it is accepted as a parent, and all its methods no-op.
type Span struct {
	r      *Registry
	id     int64
	parent int64
	name   string
	start  time.Time
	worker int32
	done   int32
}

// SpanRecord is one finished span in a Snapshot. Start is relative to the
// registry's creation, so exported traces are stable across machines.
type SpanRecord struct {
	ID     int64         `json:"id"`
	Parent int64         `json:"parent,omitempty"` // 0 = root
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Worker int           `json:"worker"`
}

// StartSpan opens a span under parent (nil parent = root) and returns the
// handle plus the finish func that records it. The handle may be passed to
// other goroutines as the parent of child spans; the finish func must be
// called exactly once (later calls no-op). A nil registry returns a nil span
// and a no-op finish, so call sites pay a nil check only.
func (r *Registry) StartSpan(name string, parent *Span) (*Span, func()) {
	if r == nil {
		return nil, func() {}
	}
	s := &Span{
		r:     r,
		id:    atomic.AddInt64(&r.spanID, 1),
		name:  name,
		start: time.Now(),
	}
	if parent != nil {
		s.parent = parent.id
		s.worker = atomic.LoadInt32(&parent.worker)
	}
	return s, s.finish
}

// SetWorker tags the span with a worker-pool lane. Children started after
// the call inherit it; the Chrome trace export maps it to the event's tid so
// Perfetto renders one row per worker. Safe on a nil Span.
func (s *Span) SetWorker(id int) {
	if s != nil {
		atomic.StoreInt32(&s.worker, int32(id))
	}
}

// finish records the completed span into the registry.
func (s *Span) finish() {
	if s == nil || !atomic.CompareAndSwapInt32(&s.done, 0, 1) {
		return
	}
	s.r.recordSpan(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.Sub(s.r.epoch),
		Dur:    time.Since(s.start),
		Worker: int(atomic.LoadInt32(&s.worker)),
	})
}

// RecordSpan appends an already-measured interval as a finished span — the
// retroactive form of StartSpan for phases whose timing was captured before
// a registry was attached (e.g. constraint-graph construction inside
// pointsto.New). It returns a handle usable as a parent. A nil registry
// returns nil and records nothing.
func (r *Registry) RecordSpan(name string, parent *Span, start time.Time, d time.Duration) *Span {
	if r == nil {
		return nil
	}
	s := &Span{r: r, id: atomic.AddInt64(&r.spanID, 1), name: name, done: 1}
	var worker int32
	if parent != nil {
		s.parent = parent.id
		worker = atomic.LoadInt32(&parent.worker)
		s.worker = worker
	}
	r.recordSpan(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   name,
		Start:  start.Sub(r.epoch),
		Dur:    d,
		Worker: int(worker),
	})
	return s
}

// recordSpan appends one finished record.
func (r *Registry) recordSpan(rec SpanRecord) {
	r.spanMu.Lock()
	r.spans = append(r.spans, rec)
	r.spanMu.Unlock()
}

// traceEvent is one Chrome trace-event object ("X" complete events plus "M"
// metadata), the format Perfetto and chrome://tracing load directly.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the snapshot's spans as Chrome trace-event JSON
// (object form, {"traceEvents": [...]}), viewable in Perfetto. Each span
// becomes one complete ("X") event; the worker id becomes the thread lane.
func (s Snapshot) ChromeTrace() ([]byte, error) {
	events := []traceEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "kscope"},
	}}
	for _, sp := range s.Spans {
		events = append(events, traceEvent{
			Name: sp.Name,
			Cat:  "kscope",
			Ph:   "X",
			TS:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			PID:  1,
			TID:  sp.Worker,
			Args: map[string]any{"id": sp.ID, "parent": sp.Parent},
		})
	}
	return json.MarshalIndent(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}, "", " ")
}

// spanTree renders the snapshot's spans as an aggregated text tree: children
// group under their parent's slot by name, each line reporting how many
// spans of that name ran there and their total wall time. Aggregation keeps
// the tree readable when one phase (an interpreter run, a pool job) executes
// hundreds of times.
func (s Snapshot) spanTree(b *strings.Builder) {
	if len(s.Spans) == 0 {
		return
	}
	byID := make(map[int64]SpanRecord, len(s.Spans))
	for _, sp := range s.Spans {
		byID[sp.ID] = sp
	}
	children := map[int64][]SpanRecord{}
	for _, sp := range s.Spans {
		parent := sp.Parent
		if _, ok := byID[parent]; !ok {
			parent = 0 // orphaned (parent never finished): show as root
		}
		children[parent] = append(children[parent], sp)
	}
	b.WriteString("spans:\n")
	var walk func(parents []int64, depth int)
	walk = func(parents []int64, depth int) {
		group := map[string][]SpanRecord{}
		var order []string
		for _, p := range parents {
			for _, sp := range children[p] {
				if _, seen := group[sp.Name]; !seen {
					order = append(order, sp.Name)
				}
				group[sp.Name] = append(group[sp.Name], sp)
			}
		}
		// Order sibling groups by earliest start so the tree reads in
		// pipeline order (records arrive in finish order, so scan for the
		// minimum).
		minStart := func(g []SpanRecord) time.Duration {
			m := g[0].Start
			for _, sp := range g[1:] {
				if sp.Start < m {
					m = sp.Start
				}
			}
			return m
		}
		sort.SliceStable(order, func(i, j int) bool {
			return minStart(group[order[i]]) < minStart(group[order[j]])
		})
		for _, name := range order {
			g := group[name]
			var total time.Duration
			ids := make([]int64, len(g))
			for i, sp := range g {
				total += sp.Dur
				ids[i] = sp.ID
			}
			width := 44 - 2*depth
			if width < len(name) {
				width = len(name)
			}
			fmt.Fprintf(b, "  %s%-*s %10.3fms over %d span(s)\n",
				strings.Repeat("  ", depth), width, name,
				float64(total)/float64(time.Millisecond), len(g))
			// Children of every span in the group aggregate one level down.
			walk(ids, depth+1)
		}
	}
	walk([]int64{0}, 0)
}
