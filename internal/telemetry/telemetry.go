// Package telemetry is a lightweight metrics substrate for the analysis
// pipeline: named counters, gauges, and phase timers backed by sync/atomic,
// collected in a Registry and exported as aligned text or JSON snapshots.
//
// The solver (internal/pointsto), the IGO engine (internal/core), the
// monitored interpreter (internal/interp), and the batch runner
// (internal/runner) all report into a shared Registry when one is attached;
// with no registry attached every instrument degrades to a no-op. All
// instruments are safe for concurrent writers, so one Registry can aggregate
// across the worker pool of a parallel evaluation run.
//
// A nil *Registry is valid and inert: it hands out nil instruments whose
// methods do nothing, so call sites never need a nil check.
package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v int64 }

// Add increments the counter by n. Safe on a nil Counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		atomic.AddInt64(&c.v, n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is a last-or-peak value (graph sizes, pool widths).
type Gauge struct{ v int64 }

// Set stores n. Safe on a nil Gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		atomic.StoreInt64(&g.v, n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := atomic.LoadInt64(&g.v)
		if n <= cur || atomic.CompareAndSwapInt64(&g.v, cur, n) {
			return
		}
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// Timer accumulates wall time and an invocation count for one phase.
type Timer struct {
	ns    int64
	count int64
}

// Observe adds one measured duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	atomic.AddInt64(&t.ns, int64(d))
	atomic.AddInt64(&t.count, 1)
}

// Start begins a measurement and returns the function that stops it. A nil
// Timer returns a no-op stop without reading the clock.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&t.ns))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return atomic.LoadInt64(&t.count)
}

// Registry holds named instruments. Instruments are created on first use and
// live for the registry's lifetime; lookups after creation are read-locked.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram

	// Span state: a monotonically increasing id, the time origin every
	// exported span start is relative to, and the finished-span log, bounded
	// by spanCap (keep-first: the log is a sample of the process's early
	// life, drops are counted, and Snapshot stays safely sized forever).
	spanID  int64
	epoch   time.Time
	spanMu  sync.Mutex
	spans   []SpanRecord
	spanCap int
}

// DefaultSpanCap bounds a Registry's finished-span log. Generous enough
// that a full evaluation run (the 9-app × 8-config matrix) keeps every
// span, small enough that a long-lived daemon's /metricsz snapshot cannot
// grow without bound. Adjust per registry with SetSpanCap.
const DefaultSpanCap = 65536

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		timers:     map[string]*Timer{},
		histograms: map[string]*Histogram{},
		epoch:      time.Now(),
		spanCap:    DefaultSpanCap,
	}
}

// SetSpanCap replaces the finished-span retention cap (n <= 0 disables the
// bound). Spans recorded past the cap are dropped and counted in
// "telemetry/spans/dropped". Safe on a nil registry.
func (r *Registry) SetSpanCap(n int) {
	if r == nil {
		return
	}
	r.spanMu.Lock()
	r.spanCap = n
	r.spanMu.Unlock()
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (inert) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named phase timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (inert) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// TimerStat is one timer's exported state.
type TimerStat struct {
	Count   int64         `json:"count"`
	Total   time.Duration `json:"total_ns"`
	TotalMS float64       `json:"total_ms"`
}

// Snapshot is a point-in-time copy of every instrument, suitable for
// rendering or serialization after the measured run completes.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]int64     `json:"gauges,omitempty"`
	Timers     map[string]TimerStat `json:"timers,omitempty"`
	Histograms map[string]HistStat  `json:"histograms,omitempty"`
	Spans      []SpanRecord         `json:"spans,omitempty"`
}

// Snapshot copies the current instrument values. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Timers:     map[string]TimerStat{},
		Histograms: map[string]HistStat{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		total := t.Total()
		s.Timers[name] = TimerStat{
			Count:   t.Count(),
			Total:   total,
			TotalMS: float64(total) / float64(time.Millisecond),
		}
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.stat()
	}
	r.mu.RUnlock()
	r.spanMu.Lock()
	s.Spans = append([]SpanRecord(nil), r.spans...)
	r.spanMu.Unlock()
	sort.Slice(s.Spans, func(i, j int) bool {
		if s.Spans[i].Start != s.Spans[j].Start {
			return s.Spans[i].Start < s.Spans[j].Start
		}
		return s.Spans[i].ID < s.Spans[j].ID
	})
	return s
}

// Text renders the snapshot as aligned, name-sorted sections, one per
// instrument kind, followed by the aggregated span tree.
func (s Snapshot) Text() string {
	var b strings.Builder
	b.WriteString("telemetry snapshot\n")
	width := maxKeyWidth(keysOf(s.Counters), keysOf(s.Gauges), keysOf(s.Timers), keysOf(s.Histograms))
	section(&b, "counters", width, keysOf(s.Counters), func(name string) string {
		return fmt.Sprintf("%12d", s.Counters[name])
	})
	section(&b, "gauges", width, keysOf(s.Gauges), func(name string) string {
		return fmt.Sprintf("%12d", s.Gauges[name])
	})
	section(&b, "timers", width, keysOf(s.Timers), func(name string) string {
		t := s.Timers[name]
		return fmt.Sprintf("%12.3fms over %d call(s)", t.TotalMS, t.Count)
	})
	section(&b, "histograms", width, keysOf(s.Histograms), func(name string) string {
		h := s.Histograms[name]
		return fmt.Sprintf("n=%d p50=%d p90=%d p99=%d max=%d mean=%.1f",
			h.Count, h.P50, h.P90, h.P99, h.Max, h.Mean)
	})
	s.spanTree(&b)
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// section writes one titled, key-aligned block; empty sections are omitted.
// All sections of a snapshot share one key width so values line up across
// instrument kinds.
func section(b *strings.Builder, title string, width int, names []string, value func(name string) string) {
	if len(names) == 0 {
		return
	}
	b.WriteString(title + ":\n")
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(b, "  %-*s %s\n", width, name, value(name))
	}
}

// maxKeyWidth returns the longest name across the given key sets.
func maxKeyWidth(keySets ...[]string) int {
	width := 0
	for _, keys := range keySets {
		for _, name := range keys {
			if len(name) > width {
				width = len(name)
			}
		}
	}
	return width
}

// keysOf collects the keys of any string-keyed map.
func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
