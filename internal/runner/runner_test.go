package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/invariant"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestMapOrdering checks results land in submission order for every pool
// width, including widths above the job count.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		res := Map(20, workers, func(i int) (int, error) { return i * i, nil })
		if len(res) != 20 {
			t.Fatalf("workers=%d: got %d results", workers, len(res))
		}
		for i, r := range res {
			if r.Index != i || r.Value != i*i || r.Err != nil {
				t.Errorf("workers=%d: slot %d = %+v", workers, i, r)
			}
		}
	}
}

// TestMapEmpty checks n <= 0 is a no-op.
func TestMapEmpty(t *testing.T) {
	if res := Map(0, 4, func(i int) (int, error) { return 0, nil }); res != nil {
		t.Errorf("Map(0) = %v, want nil", res)
	}
}

// TestMapError checks job errors land on their own row only.
func TestMapError(t *testing.T) {
	sentinel := errors.New("boom")
	res := Map(5, 3, func(i int) (int, error) {
		if i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	for i, r := range res {
		if i == 2 {
			if !errors.Is(r.Err, sentinel) {
				t.Errorf("slot 2 err = %v, want sentinel", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Errorf("slot %d = %+v", i, r)
		}
	}
}

// TestMapPanicRecovery checks a panicking job becomes a PanicError row with
// a stack trace while its siblings complete normally.
func TestMapPanicRecovery(t *testing.T) {
	res := Map(4, 2, func(i int) (string, error) {
		if i == 1 {
			panic(fmt.Sprintf("job %d exploded", i))
		}
		return "ok", nil
	})
	var pe *PanicError
	if !errors.As(res[1].Err, &pe) {
		t.Fatalf("slot 1 err = %v, want PanicError", res[1].Err)
	}
	if !strings.Contains(pe.Error(), "job 1 exploded") {
		t.Errorf("PanicError message = %q", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	for _, i := range []int{0, 2, 3} {
		if res[i].Err != nil || res[i].Value != "ok" {
			t.Errorf("slot %d = %+v", i, res[i])
		}
	}
}

// TestMapPanicCounter checks recovered panics are counted in the
// runner/jobs-panicked counter and that job latencies land in the
// runner/job-latency-ns histogram, under both the serial and pooled paths.
func TestMapPanicCounter(t *testing.T) {
	for _, workers := range []int{1, 3} {
		reg := telemetry.New()
		res := MapTraced(6, workers, Trace{Metrics: reg, Label: "test/job"}, func(i int) (int, error) {
			if i%3 == 0 {
				panic("kaboom")
			}
			return i, nil
		})
		if got := reg.Counter("runner/jobs-panicked").Value(); got != 2 {
			t.Errorf("workers=%d: jobs-panicked = %d, want 2", workers, got)
		}
		if got := reg.Histogram("runner/job-latency-ns").Count(); got != 6 {
			t.Errorf("workers=%d: latency observations = %d, want 6", workers, got)
		}
		var pe *PanicError
		if !errors.As(res[0].Err, &pe) || res[1].Err != nil {
			t.Errorf("workers=%d: unexpected result errors %v / %v", workers, res[0].Err, res[1].Err)
		}
		// Every job ran under a span tagged with a worker lane below the
		// pool width.
		spans := reg.Snapshot().Spans
		if len(spans) != 6 {
			t.Fatalf("workers=%d: got %d spans, want 6", workers, len(spans))
		}
		for _, sp := range spans {
			if sp.Name != "test/job" {
				t.Errorf("span name = %q, want test/job", sp.Name)
			}
			if sp.Worker < 0 || sp.Worker >= workers {
				t.Errorf("span worker = %d, want in [0,%d)", sp.Worker, workers)
			}
		}
	}
}

// TestMapUntracedInert checks the plain Map path records nothing (the Trace
// zero value is inert).
func TestMapUntracedInert(t *testing.T) {
	res := Map(3, 2, func(i int) (int, error) { return i, nil })
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
}

// TestMapWorkerCap checks concurrency never exceeds the requested width.
func TestMapWorkerCap(t *testing.T) {
	const workers = 3
	var cur, peak int64
	var mu sync.Mutex
	Map(30, workers, func(i int) (int, error) {
		n := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		defer atomic.AddInt64(&cur, -1)
		return i, nil
	})
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", peak, workers)
	}
}

// TestCacheSingleFlight requests the same analysis from many goroutines and
// checks it is solved exactly once, everyone sharing the same *System.
func TestCacheSingleFlight(t *testing.T) {
	reg := telemetry.New()
	c := NewCache(reg)
	app := workload.ByName("tinydtls")
	res := Map(8, 8, func(i int) (any, error) {
		return c.System(app, invariant.All()), nil
	})
	for i := 1; i < len(res); i++ {
		if res[i].Value != res[0].Value {
			t.Fatal("concurrent requesters got different *System values")
		}
	}
	// All()-config entry plus the Baseline entry it recursed into.
	if got := c.Len(); got != 2 {
		t.Errorf("cache has %d entries, want 2", got)
	}
	if got := reg.Counter("runner/cache/misses").Value(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := reg.Counter("runner/cache/requests").Value(); got != 9 {
		t.Errorf("requests = %d, want 9 (8 callers + 1 fallback recursion)", got)
	}
	if got := reg.Counter("core/analyses").Value(); got != 2 {
		t.Errorf("core/analyses = %d, want 2 (baseline + optimistic)", got)
	}
}

// TestCacheSharesFallback checks the configuration-independent fallback
// result is pointer-shared between the Baseline entry and an invariant
// configuration's entry.
func TestCacheSharesFallback(t *testing.T) {
	c := NewCache(nil)
	app := workload.ByName("tinydtls")
	base := c.System(app, invariant.Config{})
	full := c.System(app, invariant.All())
	if base.Fallback != full.Fallback {
		t.Error("fallback result not shared across configurations")
	}
	if base.Optimistic != base.Fallback {
		t.Error("baseline optimistic view should alias its fallback")
	}
	if full.Optimistic == full.Fallback {
		t.Error("invariant config should have a distinct optimistic result")
	}
}
