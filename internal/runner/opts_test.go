package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/invariant"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Input contract: n <= 0 returns nil without ever calling fn; workers is
// clamped into [1, n].
func TestMapInputValidation(t *testing.T) {
	var calls int64
	count := func(i int) (int, error) { atomic.AddInt64(&calls, 1); return i, nil }
	for _, n := range []int{0, -1, -100} {
		for _, workers := range []int{-4, 0, 1, 8} {
			if got := Map(n, workers, count); got != nil {
				t.Errorf("Map(%d, %d) = %v, want nil", n, workers, got)
			}
		}
	}
	if calls != 0 {
		t.Fatalf("fn called %d times for empty batches", calls)
	}
	// workers far above n must clamp, not spawn idle goroutines that fight
	// over three jobs; results stay index-complete either way.
	out := Map(3, 64, count)
	if len(out) != 3 || calls != 3 {
		t.Fatalf("Map(3, 64): len=%d calls=%d", len(out), calls)
	}
	for i, r := range out {
		if r.Index != i || r.Value != i || r.Err != nil {
			t.Fatalf("slot %d = %+v", i, r)
		}
	}
}

// A job exceeding Opts.Timeout reports a typed *TimeoutError in its own slot
// while the rest of the batch completes normally.
func TestMapOptsTimeout(t *testing.T) {
	reg := telemetry.New()
	block := make(chan struct{})
	defer close(block)
	out := MapOpts(4, 2, Opts{Trace: Trace{Metrics: reg}, Timeout: 30 * time.Millisecond}, func(i int) (int, error) {
		if i == 1 {
			<-block // holds well past the timeout
		}
		return i * 10, nil
	})
	var te *TimeoutError
	if !errors.As(out[1].Err, &te) {
		t.Fatalf("job 1 err = %v, want *TimeoutError", out[1].Err)
	}
	if te.Index != 1 || te.Timeout != 30*time.Millisecond {
		t.Errorf("TimeoutError = %+v", te)
	}
	for _, i := range []int{0, 2, 3} {
		if out[i].Err != nil || out[i].Value != i*10 {
			t.Errorf("job %d = %+v, want clean result", i, out[i])
		}
	}
	if got := reg.Counter("runner/jobs-timed-out").Value(); got != 1 {
		t.Errorf("timed-out counter = %d, want 1", got)
	}
}

// Transient errors retry up to Opts.Retries times with backoff; the retried
// attempts are counted and the job ultimately succeeds.
func TestMapOptsRetriesTransient(t *testing.T) {
	reg := telemetry.New()
	var attempts [3]int64
	out := MapOpts(3, 2, Opts{Trace: Trace{Metrics: reg}, Retries: 3, Backoff: time.Microsecond}, func(i int) (int, error) {
		n := atomic.AddInt64(&attempts[i], 1)
		if i == 1 && n <= 2 {
			return 0, fmt.Errorf("flaky dependency: %w", ErrTransient)
		}
		return i, nil
	})
	if out[1].Err != nil || out[1].Value != 1 {
		t.Fatalf("job 1 = %+v, want recovery on third attempt", out[1])
	}
	if attempts[1] != 3 {
		t.Errorf("job 1 ran %d attempts, want 3", attempts[1])
	}
	if attempts[0] != 1 || attempts[2] != 1 {
		t.Errorf("clean jobs retried: %v", attempts)
	}
	if got := reg.Counter("runner/jobs-retried").Value(); got != 2 {
		t.Errorf("retried counter = %d, want 2", got)
	}
}

// Non-transient errors, panics, and timeouts are never retried.
func TestMapOptsNoRetryForPermanentFailures(t *testing.T) {
	var calls [3]int64
	block := make(chan struct{})
	defer close(block)
	out := MapOpts(3, 1, Opts{Retries: 5, Timeout: 30 * time.Millisecond}, func(i int) (int, error) {
		atomic.AddInt64(&calls[i], 1)
		switch i {
		case 0:
			return 0, errors.New("permanent misconfiguration")
		case 1:
			panic("corrupted state")
		default:
			<-block
			return 0, nil
		}
	})
	var pe *PanicError
	var te *TimeoutError
	if out[0].Err == nil || !errors.As(out[1].Err, &pe) || !errors.As(out[2].Err, &te) {
		t.Fatalf("errs = %v / %v / %v", out[0].Err, out[1].Err, out[2].Err)
	}
	for i := range calls {
		// Atomic load: the timed-out job's goroutine is still alive (parked
		// on block) when this assertion runs.
		if c := atomic.LoadInt64(&calls[i]); c != 1 {
			t.Errorf("job %d ran %d attempts, want exactly 1", i, c)
		}
	}
}

// After BreakerThreshold recovered panics the pool degrades to serial: no
// new parallel claims, and every remaining job runs one at a time, in index
// order, to completion.
func TestMapOptsBreakerDegradesToSerial(t *testing.T) {
	reg := telemetry.New()
	tripped := reg.Counter("runner/breaker-tripped")
	var concurrent, maxConcurrent int64
	var mu sync.Mutex
	var tailOrder []int
	out := MapOpts(8, 2, Opts{Trace: Trace{Metrics: reg}, BreakerThreshold: 1}, func(i int) (int, error) {
		switch {
		case i == 0:
			panic("worker corrupted")
		case i == 1:
			// Hold the second worker until the breaker has tripped, so the
			// remaining jobs deterministically run in degraded mode.
			for tripped.Value() == 0 {
				runtime.Gosched()
			}
			return i, nil
		default:
			cur := atomic.AddInt64(&concurrent, 1)
			for {
				old := atomic.LoadInt64(&maxConcurrent)
				if cur <= old || atomic.CompareAndSwapInt64(&maxConcurrent, old, cur) {
					break
				}
			}
			mu.Lock()
			tailOrder = append(tailOrder, i)
			mu.Unlock()
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&concurrent, -1)
			return i, nil
		}
	})
	var pe *PanicError
	if !errors.As(out[0].Err, &pe) {
		t.Fatalf("job 0 err = %v, want panic", out[0].Err)
	}
	for i := 1; i < 8; i++ {
		if out[i].Err != nil || out[i].Value != i {
			t.Fatalf("job %d = %+v, want clean result", i, out[i])
		}
	}
	if got := tripped.Value(); got != 1 {
		t.Errorf("breaker tripped %d times, want 1", got)
	}
	if maxConcurrent != 1 {
		t.Errorf("max concurrency after trip = %d, want 1 (serial degradation)", maxConcurrent)
	}
	if !sort.IntsAreSorted(tailOrder) || len(tailOrder) != 6 {
		t.Errorf("degraded tail ran out of order: %v", tailOrder)
	}
}

// An injected WorkerPanic fault surfaces as a *PanicError whose cause is the
// typed *faultinject.Injected (via Unwrap).
func TestMapOptsInjectedWorkerPanic(t *testing.T) {
	plan := faultinject.ExplicitAt(faultinject.WorkerPanic, 2)
	out := MapOpts(3, 1, Opts{Faults: plan}, func(i int) (int, error) { return i, nil })
	failures := 0
	for _, r := range out {
		if r.Err == nil {
			continue
		}
		failures++
		var inj *faultinject.Injected
		if !errors.As(r.Err, &inj) || inj.Site != faultinject.WorkerPanic {
			t.Fatalf("job %d err = %v, want injected worker panic", r.Index, r.Err)
		}
	}
	if failures != 1 {
		t.Fatalf("%d failed jobs, want exactly 1", failures)
	}
}

// A poisoned cache computation returns a typed error to its requesters,
// invalidates the entry, and the next request recomputes successfully.
func TestCacheErrorInvalidation(t *testing.T) {
	reg := telemetry.New()
	c := NewCache(reg)
	c.SetFaults(faultinject.Explicit(faultinject.CachePoison))
	app := workload.TinyDTLS()
	_, err := c.SystemCtx(context.Background(), app, invariant.Config{})
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != faultinject.CachePoison {
		t.Fatalf("poisoned compute err = %v, want injected cache poison", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry stayed cached: Len = %d", c.Len())
	}
	if got := reg.Counter("runner/cache/invalidations").Value(); got != 1 {
		t.Errorf("invalidations counter = %d, want 1", got)
	}
	sys, err := c.SystemCtx(context.Background(), app, invariant.Config{})
	if err != nil || sys == nil {
		t.Fatalf("retry after invalidation: sys=%v err=%v", sys, err)
	}
	if c.Len() != 1 {
		t.Errorf("Len after successful retry = %d, want 1", c.Len())
	}
}

// Concurrent requesters under a poisoned computation each get either the
// typed error (same flight as the poison) or a valid recomputed system —
// never a nil system with a nil error, and the cache ends up healthy.
func TestCacheConcurrentPoisonedFlight(t *testing.T) {
	c := NewCache(nil)
	c.SetFaults(faultinject.Explicit(faultinject.CachePoison))
	app := workload.TinyDTLS()
	var wg sync.WaitGroup
	var errs, oks int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, err := c.SystemCtx(context.Background(), app, invariant.All())
			switch {
			case err != nil && sys == nil:
				atomic.AddInt64(&errs, 1)
			case err == nil && sys != nil:
				atomic.AddInt64(&oks, 1)
			default:
				t.Errorf("inconsistent outcome: sys=%v err=%v", sys, err)
			}
		}()
	}
	wg.Wait()
	if errs == 0 {
		t.Error("poison fired but no requester saw the error")
	}
	if sys, err := c.SystemCtx(context.Background(), app, invariant.All()); err != nil || sys == nil {
		t.Fatalf("cache unhealthy after poisoned flight: sys=%v err=%v", sys, err)
	}
}

// A waiter whose context expires abandons the flight without disturbing it.
func TestCacheWaiterContextCancellation(t *testing.T) {
	c := NewCache(nil)
	app := workload.TinyDTLS()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Warm the entry first so the cancelled waiter hits the done path...
	if _, err := c.SystemCtx(context.Background(), app, invariant.Config{}); err != nil {
		t.Fatal(err)
	}
	// ...where a closed done channel wins even against a cancelled context
	// (select prefers the ready case deterministically here because both are
	// ready and we re-check): accept either outcome, but never a hang.
	sys, err := c.SystemCtx(ctx, app, invariant.Config{})
	if err == nil && sys == nil {
		t.Fatal("nil system with nil error")
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
