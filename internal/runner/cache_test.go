package runner

// Regression tests for the Cache error-entry invalidation contract: a
// failed computation's error is shared with exactly the waiters of the
// flight that produced it, the entry is removed before done is closed, and
// requests racing the invalidation either join the failed flight (and see
// the error) or start a fresh recompute (and see its outcome) — never a
// cached failure.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// testApp returns a small compiled workload for cache tests.
func testApp(t *testing.T) *workload.App {
	t.Helper()
	app := workload.Apps()[0]
	if _, err := app.Module(); err != nil {
		t.Fatalf("workload %s does not compile: %v", app.Name, err)
	}
	return app
}

// TestCacheErrorInvalidationConcurrentWaiters drives many concurrent
// requests for one key into a cache whose first computation is poisoned.
// Exactly one flight absorbs the injected fault; every goroutine that
// joined it receives the same typed error, every goroutine that arrived
// after the invalidation gets the successful recompute, and the error is
// never served from the cache again.
func TestCacheErrorInvalidationConcurrentWaiters(t *testing.T) {
	metrics := telemetry.New()
	plan := faultinject.Explicit(faultinject.CachePoison)
	plan.SetMetrics(metrics)
	c := NewCache(metrics)
	c.SetFaults(plan)
	app := testApp(t)
	cfg := invariant.Config{}

	const goroutines = 16
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			_, errs[g] = c.SystemCtx(context.Background(), app, cfg)
		}(g)
	}
	start.Done()
	done.Wait()

	var failed, succeeded int
	for g, err := range errs {
		switch {
		case err == nil:
			succeeded++
		default:
			failed++
			var inj *faultinject.Injected
			if !errors.As(err, &inj) || inj.Site != faultinject.CachePoison {
				t.Fatalf("goroutine %d: error is not the injected poison: %v", g, err)
			}
		}
	}
	if failed == 0 {
		t.Fatalf("injected CachePoison never surfaced (%d successes)", succeeded)
	}
	snap := metrics.Snapshot()
	if got := snap.Counters["runner/cache/invalidations"]; got != 1 {
		t.Fatalf("invalidations = %d, want 1 (one failed flight)", got)
	}

	// The failure must not be cached: a fresh request recomputes and
	// succeeds (the fault fires exactly once).
	sys, err := c.SystemCtx(context.Background(), app, cfg)
	if err != nil || sys == nil {
		t.Fatalf("post-invalidation request failed: %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after recovery, want 1", c.Len())
	}
	// Total computations: the poisoned flight plus exactly one recompute
	// (waiters that raced past the invalidation coalesced onto it).
	if got := metrics.Snapshot().Counters["runner/cache/misses"]; got != 2 {
		t.Fatalf("cache misses = %d, want 2 (poisoned flight + one recompute)", got)
	}
}

// TestCacheErrorInvalidationRecomputeRace stresses waiters racing a
// recompute across repeated poisoned rounds: each round arms a fresh
// poison, hammers the same key from many goroutines, and asserts every
// outcome is either the typed injection or a fully computed system — a
// cached failure or a nil system without an error would be a contract
// violation. Runs under -race via `make race`.
func TestCacheErrorInvalidationRecomputeRace(t *testing.T) {
	app := testApp(t)
	cfg := invariant.All()
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		metrics := telemetry.New()
		// Vary the firing hit so the poison lands on different flights
		// (baseline recursion makes several computes per round).
		plan := faultinject.ExplicitAt(faultinject.CachePoison, int64(round%3+1))
		plan.SetMetrics(metrics)
		c := NewCache(metrics)
		c.SetFaults(plan)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					sys, err := c.SystemCtx(context.Background(), app, cfg)
					if err == nil && sys == nil {
						t.Error("nil system without an error")
						return
					}
					if err != nil && !isInjected(err) {
						t.Errorf("unexpected error type: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		// After the dust settles the fault has fired; the key must be
		// recomputable and cacheable.
		if _, err := c.SystemCtx(context.Background(), app, cfg); err != nil {
			t.Fatalf("round %d: key not recomputable after poison: %v", round, err)
		}
	}
}

func isInjected(err error) bool {
	var inj *faultinject.Injected
	return errors.As(err, &inj)
}

// TestCacheForget covers the eviction path used by the service layer: all
// configurations of an app disappear, other apps stay, and the key is
// recomputable afterwards.
func TestCacheForget(t *testing.T) {
	metrics := telemetry.New()
	c := NewCache(metrics)
	a, b := workload.Apps()[0], workload.Apps()[1]
	ctx := context.Background()
	if _, err := c.SystemCtx(ctx, a, invariant.All()); err != nil { // caches Baseline + Kaleidoscope
		t.Fatal(err)
	}
	if _, err := c.SystemCtx(ctx, b, invariant.Config{}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.Len())
	}
	if n := c.Forget(a.Name); n != 2 {
		t.Fatalf("Forget(%s) removed %d entries, want 2", a.Name, n)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after Forget, want 1", c.Len())
	}
	if got := metrics.Snapshot().Counters["runner/cache/evictions"]; got != 2 {
		t.Fatalf("evictions counter = %d, want 2", got)
	}
	if _, err := c.SystemCtx(ctx, a, invariant.Config{}); err != nil {
		t.Fatalf("forgotten key not recomputable: %v", err)
	}
}

// TestCacheCompact covers the snapshot-frontend memory bound: compaction
// drops an app's solved configurations but keeps the Baseline entry, so a
// later request for a full configuration re-solves only the optimistic
// stage and shares the retained fallback.
func TestCacheCompact(t *testing.T) {
	metrics := telemetry.New()
	c := NewCache(metrics)
	a := workload.Apps()[0]
	ctx := context.Background()
	if _, err := c.SystemCtx(ctx, a, invariant.All()); err != nil { // caches Baseline + Kaleidoscope
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if n := c.Compact(a.Name, invariant.Config{}.Name()); n != 1 {
		t.Fatalf("Compact removed %d entries, want 1 (Baseline kept)", n)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after Compact, want 1", c.Len())
	}
	if got := metrics.Snapshot().Counters["runner/cache/compactions"]; got != 1 {
		t.Fatalf("compactions counter = %d, want 1", got)
	}
	analyses := metrics.Snapshot().Counters["core/analyses"]
	if _, err := c.SystemCtx(ctx, a, invariant.All()); err != nil {
		t.Fatalf("compacted key not recomputable: %v", err)
	}
	if got := metrics.Snapshot().Counters["core/analyses"]; got != analyses+1 {
		t.Fatalf("recompute ran %d analyses, want 1 (fallback shared from the kept Baseline)", got-analyses)
	}
	if n := c.Compact("no-such-app"); n != 0 {
		t.Fatalf("Compact of unknown app removed %d entries", n)
	}
}

// TestCacheBudgetAbort asserts SetBudget turns an oversized solve into a
// typed, uncached abort: waiters see ErrSolveAborted, the entry is
// invalidated, and lifting the budget lets the same key solve.
func TestCacheBudgetAbort(t *testing.T) {
	metrics := telemetry.New()
	c := NewCache(metrics)
	c.SetBudget(pointsto.Budget{MaxSteps: 1})
	app := testApp(t)
	_, err := c.SystemCtx(context.Background(), app, invariant.Config{})
	if !errors.Is(err, pointsto.ErrSolveAborted) {
		t.Fatalf("budgeted solve returned %v, want ErrSolveAborted", err)
	}
	if got := metrics.Snapshot().Counters["runner/cache/invalidations"]; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
	if c.Len() != 0 {
		t.Fatalf("aborted entry stayed cached (%d entries)", c.Len())
	}
	c.SetBudget(pointsto.Budget{})
	if _, err := c.SystemCtx(context.Background(), app, invariant.Config{}); err != nil {
		t.Fatalf("unbudgeted recompute failed: %v", err)
	}
}

// TestCacheParallelBudgetAbort is the parallel-solver leg of the budget
// contract: an abort raised at a level barrier of the parallel wave strategy
// must invalidate the entry exactly like a worklist-pop abort — typed error
// to the flight's waiters, nothing cached — and compose with Forget without
// leaving a resumable half-solve behind. Lifting the budget must then produce
// a System whose results are byte-identical to a sequential compute.
func TestCacheParallelBudgetAbort(t *testing.T) {
	metrics := telemetry.New()
	c := NewCache(metrics)
	c.SetParallel(8)
	c.SetBudget(pointsto.Budget{MaxSteps: 1})
	app := testApp(t)
	ctx := context.Background()
	_, err := c.SystemCtx(ctx, app, invariant.Config{})
	if !errors.Is(err, pointsto.ErrSolveAborted) {
		t.Fatalf("budgeted parallel solve returned %v, want ErrSolveAborted", err)
	}
	if got := metrics.Snapshot().Counters["runner/cache/invalidations"]; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
	if c.Len() != 0 {
		t.Fatalf("aborted parallel entry stayed cached (%d entries)", c.Len())
	}
	// Forget on the already-invalidated app must be a no-op — the abort may
	// not leave a ghost entry for eviction accounting to find.
	if n := c.Forget(app.Name); n != 0 {
		t.Fatalf("Forget after abort removed %d entries, want 0", n)
	}
	c.SetBudget(pointsto.Budget{})
	par, err := c.SystemCtx(ctx, app, invariant.All())
	if err != nil {
		t.Fatalf("unbudgeted parallel recompute failed: %v", err)
	}
	seq, err := NewCache(nil).SystemCtx(ctx, app, invariant.All())
	if err != nil {
		t.Fatal(err)
	}
	if resultDump(par.Optimistic) != resultDump(seq.Optimistic) ||
		resultDump(par.Fallback) != resultDump(seq.Fallback) {
		t.Fatal("parallel-computed System differs from sequential compute")
	}
}

// resultDump canonically renders the externally observable facts of a Result
// for byte comparison across solver strategies.
func resultDump(r *pointsto.Result) string {
	var b strings.Builder
	for _, p := range r.TopLevelPointers() {
		fmt.Fprintf(&b, "%s:%s ->", p.Fn, p.Reg)
		for _, ref := range r.PointsTo(p.Fn, p.Reg) {
			fmt.Fprintf(&b, " %s+%d", ref.Obj.Label(), ref.Slot)
		}
		b.WriteByte('\n')
	}
	for _, site := range r.ICallSites() {
		fmt.Fprintf(&b, "icall %d -> %v\n", site, r.CallTargets(site))
	}
	return b.String()
}

// TestCacheComputeOptsParallel covers the per-request opt-in: a request
// carrying ComputeOpts.Parallel solves parallel without flipping the
// cache-wide default, and its entry answers later sequential requests.
func TestCacheComputeOptsParallel(t *testing.T) {
	metrics := telemetry.New()
	c := NewCache(metrics)
	app := testApp(t)
	ctx := context.Background()
	sys, err := c.SystemCtxOpts(ctx, app, invariant.All(), ComputeOpts{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.SystemCtx(ctx, app, invariant.All())
	if err != nil {
		t.Fatal(err)
	}
	if again != sys {
		t.Fatal("sequential request did not share the parallel-computed entry")
	}
	if got := metrics.Snapshot().Counters["runner/cache/misses"]; got != 2 { // Baseline + All
		t.Fatalf("misses = %d, want 2", got)
	}
}

// TestCacheInternIsPureHint covers both interning entry points on the cache:
// the cache-wide SetIntern default and the per-request ComputeOpts.Intern
// opt-in. Interned solves must engage the pool (visible through the attached
// registry), render byte-identically to a plain cache's results, and leave
// ordinary entries behind that later non-interned requests share.
func TestCacheInternIsPureHint(t *testing.T) {
	app := testApp(t)
	ctx := context.Background()

	metrics := telemetry.New()
	c := NewCache(metrics)
	c.SetIntern(true)
	sys, err := c.SystemCtx(ctx, app, invariant.All())
	if err != nil {
		t.Fatal(err)
	}
	snap := metrics.Snapshot()
	if snap.Counters["pointsto/intern/misses"] == 0 {
		t.Fatalf("SetIntern(true) cache never engaged the pool: %v", snap.Counters)
	}

	plain, err := NewCache(nil).SystemCtx(ctx, app, invariant.All())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultDump(sys.Optimistic), resultDump(plain.Optimistic); got != want {
		t.Fatalf("interned analysis diverges from plain:\n%s\nvs\n%s", got, want)
	}

	// Per-request opt-in: no cache-wide default, one request asks. The entry
	// it computes is a normal entry, shared with plain requests.
	optMetrics := telemetry.New()
	oc := NewCache(optMetrics)
	optSys, err := oc.SystemCtxOpts(ctx, app, invariant.All(), ComputeOpts{Intern: true})
	if err != nil {
		t.Fatal(err)
	}
	if optMetrics.Snapshot().Counters["pointsto/intern/misses"] == 0 {
		t.Fatal("ComputeOpts.Intern request never engaged the pool")
	}
	again, err := oc.SystemCtx(ctx, app, invariant.All())
	if err != nil {
		t.Fatal(err)
	}
	if again != optSys {
		t.Fatal("plain request did not share the intern-computed entry")
	}
}
