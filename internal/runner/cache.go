package runner

import (
	"sync"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// cacheKey identifies one memoized analysis.
type cacheKey struct {
	app string
	cfg string
}

// cacheEntry is a single-flight slot: the first requester solves, concurrent
// requesters for the same key block on the same Once and share the result.
type cacheEntry struct {
	once sync.Once
	sys  *core.System
}

// Cache memoizes IGO analyses per (application, invariant configuration).
// One evaluation run needs the same analysis in several artifacts (Table 3,
// Figures 10–13, Tables 4–5, the §8 extension drivers); the cache makes each
// pair solve exactly once, and shares the configuration-independent fallback
// result across all configurations of an application, halving the remaining
// solver work. Safe for concurrent use from Map workers.
type Cache struct {
	metrics *telemetry.Registry
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

// NewCache returns an empty cache. The registry (may be nil) receives
// cache hit/miss counters and is attached to every analysis the cache runs.
func NewCache(metrics *telemetry.Registry) *Cache {
	return &Cache{metrics: metrics, entries: map[cacheKey]*cacheEntry{}}
}

// System returns the memoized analysis of app under cfg, computing it on
// first request. The fallback stage is taken from the memoized Baseline
// entry, so it is solved once per application no matter how many
// configurations are requested.
func (c *Cache) System(app *workload.App, cfg invariant.Config) *core.System {
	c.metrics.Counter("runner/cache/requests").Inc()
	e := c.entry(cacheKey{app: app.Name, cfg: cfg.Name()})
	e.once.Do(func() {
		c.metrics.Counter("runner/cache/misses").Inc()
		var fallback *pointsto.Result
		if cfg.Any() {
			// Recurse to the Baseline entry (a different key, so the nested
			// Once cannot deadlock) and reuse its solved fallback.
			fallback = c.System(app, invariant.Config{}).Fallback
		}
		e.sys = core.AnalyzeWithFallback(app.MustModule(), cfg, fallback, c.metrics)
	})
	return e.sys
}

// entry returns (creating if needed) the slot for key.
func (c *Cache) entry(key cacheKey) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	return e
}

// Len returns the number of memoized entries (test/diagnostic use).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
