package runner

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// cacheKey identifies one memoized analysis.
type cacheKey struct {
	app string
	cfg string
}

// cacheEntry is a single-flight slot: the first requester (the leader)
// solves and closes done; concurrent requesters block on done and share the
// outcome, error included.
type cacheEntry struct {
	done chan struct{}
	sys  *core.System
	err  error
}

// Cache memoizes IGO analyses per (application, invariant configuration).
// One evaluation run needs the same analysis in several artifacts (Table 3,
// Figures 10–13, Tables 4–5, the §8 extension drivers); the cache makes each
// pair solve exactly once, and shares the configuration-independent fallback
// result across all configurations of an application, halving the remaining
// solver work. Safe for concurrent use from Map workers.
//
// Failures are never cached: when a computation errors (cancelled, budget
// abort, injected fault), the waiters of that flight all receive the error,
// the entry is invalidated, and the next request recomputes from scratch
// (counter "runner/cache/invalidations").
//
// Error-entry invalidation ordering (load-bearing for concurrent waiters,
// see TestCacheErrorInvalidation*): the failing leader first removes the
// entry from the map, then closes done. Waiters of the failed flight hold a
// pointer to the dead entry, so they still observe the shared error after
// the close — invalidation is invisible to them. A request arriving after
// the removal (including one racing the close) finds no entry, becomes the
// leader of a fresh flight, and recomputes. The `c.entries[key] == e` guard
// makes the delete a no-op if such a recompute has already replaced the
// entry: a failing leader may only ever invalidate its *own* entry, never a
// newer flight's. Consequently an error is delivered to exactly the waiters
// of the flight that produced it, and at no point can a failed entry be
// observed by a request that did not join that flight.
type Cache struct {
	metrics  *telemetry.Registry
	faults   *faultinject.Plan // armed fault plan; fires CachePoison per compute
	budget   pointsto.Budget   // per-stage solver budget applied to every compute
	parallel int               // default parallel-solve worker count for every compute (0 = sequential)
	intern   bool              // default set-interning mode for every compute
	mu       sync.Mutex
	entries  map[cacheKey]*cacheEntry
}

// NewCache returns an empty cache. The registry (may be nil) receives
// cache hit/miss counters and is attached to every analysis the cache runs.
func NewCache(metrics *telemetry.Registry) *Cache {
	return &Cache{metrics: metrics, entries: map[cacheKey]*cacheEntry{}}
}

// SetFaults arms a fault-injection plan: the CachePoison site fires once per
// analysis computation and fails it with a typed error (which, per the
// invalidation contract, is returned to that flight's waiters and not
// cached). Must be set before the cache is used.
func (c *Cache) SetFaults(p *faultinject.Plan) { c.faults = p }

// SetBudget bounds every analysis this cache computes: each solver stage
// runs under the given per-stage budget, and an exhausted budget surfaces to
// the flight's waiters as a typed abort (errors.Is pointsto.ErrSolveAborted)
// — which, per the invalidation contract, is never cached. The service
// daemon uses this to keep one oversized submission from monopolizing the
// solve capacity. Must be set before the cache is used.
func (c *Cache) SetBudget(b pointsto.Budget) { c.budget = b }

// SetParallel makes every analysis this cache computes use the parallel wave
// solver with n workers (0, the default, solves sequentially). The parallel
// strategy reaches a byte-identical fixpoint, so cache keys are unaffected —
// a parallel-computed entry serves sequential requests and vice versa.
// Per-request opt-in goes through SystemCtxOpts instead. Must be set before
// the cache is used.
func (c *Cache) SetParallel(n int) { c.parallel = n }

// SetIntern makes every analysis this cache computes hash-cons its points-to
// sets in a per-analysis pool (pointsto.SetIntern). Interned solves are
// byte-identical to plain ones, so — exactly like SetParallel — cache keys
// are unaffected and entries are interchangeable across the knob; it is a
// pure memory/allocation hint. Per-request opt-in goes through
// SystemCtxOpts. Must be set before the cache is used.
func (c *Cache) SetIntern(on bool) { c.intern = on }

// Forget drops every memoized entry (all configurations) of the named
// application and reports how many entries were removed. In-flight
// computations are unaffected: a current leader still completes and
// publishes to its waiters through the entry pointer they already hold —
// the flight merely stops being findable, exactly like the error
// invalidation path. Content-addressed frontends (internal/serve) use this
// to evict a program's analyses when it falls out of their admission cache.
func (c *Cache) Forget(app string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key := range c.entries {
		if key.app == app {
			delete(c.entries, key)
			n++
		}
	}
	if n > 0 {
		c.metrics.Counter("runner/cache/evictions").Add(int64(n))
	}
	return n
}

// Compact drops every memoized entry of the named application except those
// whose configuration name is listed in keep, and reports how many entries
// were removed. Snapshot-serving frontends (internal/serve) call this after
// projecting a solved System into its wire snapshot: from then on every
// answer comes from the snapshot and the live System is scaffolding — while
// the Baseline entry keeps earning its residency as the shared fallback of
// every further configuration of the program. Keeping Baseline and dropping
// the rest bounds resident solver state on a long-lived daemon without
// giving up cross-config sharing. Like Forget, in-flight computations are
// unaffected: current waiters hold the entry pointer and still receive the
// leader's outcome; the flight merely stops being findable, so a request
// racing the compaction may recompute (byte-identical by construction)
// instead of coalescing. Removals count into "runner/cache/compactions".
func (c *Cache) Compact(app string, keep ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key := range c.entries {
		if key.app != app {
			continue
		}
		kept := false
		for _, k := range keep {
			if key.cfg == k {
				kept = true
				break
			}
		}
		if !kept {
			delete(c.entries, key)
			n++
		}
	}
	if n > 0 {
		c.metrics.Counter("runner/cache/compactions").Add(int64(n))
	}
	return n
}

// System returns the memoized analysis of app under cfg, computing it on
// first request. It panics on computation failure; error-aware callers
// (chaos harness, cancellable drivers) use SystemCtx.
func (c *Cache) System(app *workload.App, cfg invariant.Config) *core.System {
	sys, err := c.SystemCtx(context.Background(), app, cfg)
	if err != nil {
		panic(err)
	}
	return sys
}

// SystemCtx returns the memoized analysis of app under cfg, computing it on
// first request. The fallback stage is taken from the memoized Baseline
// entry, so it is solved once per application no matter how many
// configurations are requested. Concurrent requests for the same key share
// one computation; if it fails, all of them receive the error and the entry
// is invalidated so a later request retries.
func (c *Cache) SystemCtx(ctx context.Context, app *workload.App, cfg invariant.Config) (*core.System, error) {
	return c.SystemCtxOpts(ctx, app, cfg, ComputeOpts{})
}

// ComputeOpts carries per-request compute options. Only options that cannot
// change the resulting System may live here — the cache key does not include
// them, and whichever request becomes the flight leader applies its own.
type ComputeOpts struct {
	// Parallel > 0 solves with the parallel wave strategy at that many
	// workers, overriding the cache-wide SetParallel default. Byte-identical
	// results make this a pure execution hint.
	Parallel int
	// Intern hash-conses points-to sets during the solve (see
	// pointsto.SetIntern). Byte-identical results make this, too, a pure
	// execution hint; it cannot switch interning off when the cache-wide
	// SetIntern default is on.
	Intern bool
}

// SystemCtxOpts is SystemCtx with per-request compute options. A request
// joining an existing flight shares that flight's outcome regardless of its
// own options.
func (c *Cache) SystemCtxOpts(ctx context.Context, app *workload.App, cfg invariant.Config, opts ComputeOpts) (*core.System, error) {
	c.metrics.Counter("runner/cache/requests").Inc()
	key := cacheKey{app: app.Name, cfg: cfg.Name()}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{done: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()
		// Leader: compute; on error, invalidate (guarded, see the type
		// comment) and only then close done. Waiters hold e, so they read
		// the shared error regardless of the map state; future requests
		// never find the dead entry and recompute from scratch.
		c.metrics.Counter("runner/cache/misses").Inc()
		e.sys, e.err = c.compute(ctx, app, cfg, opts)
		if e.err != nil {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			c.metrics.Counter("runner/cache/invalidations").Inc()
		}
		close(e.done)
		return e.sys, e.err
	}
	c.mu.Unlock()
	// A waiter joining an existing flight spends its whole time blocked on
	// the leader; give the wait its own span so a traced request shows
	// "coalesced onto an in-flight solve" instead of an unexplained gap.
	_, _, finishWait := telemetry.StartSpanCtx(ctx, c.metrics, "runner/cache/wait")
	telemetry.TraceFrom(ctx).Annotate("solve", "coalesced")
	select {
	case <-e.done:
		finishWait()
		return e.sys, e.err
	case <-ctx.Done():
		finishWait()
		// This waiter gives up; the flight itself keeps running under the
		// leader's context and stays cached for others.
		return nil, fmt.Errorf("runner: cache wait for %s/%s: %w", key.app, key.cfg, ctx.Err())
	}
}

// compute runs one analysis, recursing to the Baseline entry (a different
// key, so the nested flight cannot deadlock) for the shared fallback result.
func (c *Cache) compute(ctx context.Context, app *workload.App, cfg invariant.Config, opts ComputeOpts) (*core.System, error) {
	if err := c.faults.Err(faultinject.CachePoison); err != nil {
		return nil, fmt.Errorf("runner: analysis of %s/%s failed: %w", app.Name, cfg.Name(), err)
	}
	var fallback *pointsto.Result
	if cfg.Any() {
		base, err := c.SystemCtxOpts(ctx, app, invariant.Config{}, opts)
		if err != nil {
			return nil, err
		}
		fallback = base.Fallback
	}
	m, err := app.Module()
	if err != nil {
		return nil, fmt.Errorf("runner: workload %s: %w", app.Name, err)
	}
	parallel := opts.Parallel
	if parallel == 0 {
		parallel = c.parallel
	}
	return core.AnalyzeCtx(ctx, m, cfg, core.AnalyzeOpts{
		Fallback: fallback,
		Metrics:  c.metrics,
		Budget:   c.budget,
		Faults:   c.faults,
		Parallel: parallel,
		Intern:   opts.Intern || c.intern,
	})
}

// Len returns the number of memoized entries (test/diagnostic use).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
