// Package runner is the concurrent batch driver behind the evaluation
// pipeline: a worker-pool Map that fans independent jobs (the app ×
// invariant-configuration matrix of §7) across GOMAXPROCS goroutines with
// deterministic result ordering and per-job panic recovery, plus a
// memoized, single-flight analysis Cache so every (application,
// configuration) pair is solved at most once per evaluation run.
//
// Determinism contract: Map assigns job i's outcome to result slot i
// regardless of completion order, and every job in this repository is a pure
// function of its inputs, so a run at -parallel 8 renders byte-identical
// tables and figures to a run at -parallel 1 (asserted by tests).
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Result is one job's outcome, delivered in submission order.
type Result[T any] struct {
	Index   int
	Value   T
	Err     error // non-nil if the job returned an error or panicked
	Elapsed time.Duration
}

// PanicError wraps a recovered job panic so one crashing workload reports an
// error row instead of killing the whole batch.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// Trace is the optional observability hookup of a Map call. With a nil
// Metrics registry every field is inert and the pool behaves exactly like
// the untraced Map. With a registry attached, each job records its latency
// into the "runner/job-latency-ns" histogram, recovered panics count into
// "runner/jobs-panicked", and every job runs under a span (named Label,
// parented to Parent) tagged with its worker lane.
type Trace struct {
	Metrics *telemetry.Registry
	Parent  *telemetry.Span // parent of each per-job span (may be nil)
	Label   string          // per-job span name; "" defaults to "runner/job"
}

// Map runs fn(0..n-1) across a pool of `workers` goroutines (GOMAXPROCS if
// workers <= 0) and returns the results indexed by job number. Jobs are
// claimed from a shared atomic cursor, so workers stay busy regardless of
// per-job cost skew; a panicking job is recovered into its Result.
func Map[T any](n, workers int, fn func(i int) (T, error)) []Result[T] {
	return MapTraced(n, workers, Trace{}, fn)
}

// MapTraced is Map with telemetry: job spans, a latency histogram, and a
// panic counter (see Trace). The determinism contract is unchanged — tracing
// observes job execution, it never reorders or alters it.
func MapTraced[T any](n, workers int, tr Trace, fn func(i int) (T, error)) []Result[T] {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if tr.Label == "" {
		tr.Label = "runner/job"
	}
	// Instrument lookups happen once per Map call, not per job; with no
	// registry these are all nil (inert) instruments.
	latency := tr.Metrics.Histogram("runner/job-latency-ns")
	panicked := tr.Metrics.Counter("runner/jobs-panicked")
	out := make([]Result[T], n)
	if workers == 1 {
		// Serial fast path: no goroutine or scheduling overhead, identical
		// semantics (this is the -parallel 1 reference the byte-identity
		// tests compare against).
		for i := 0; i < n; i++ {
			out[i] = runJob(i, 0, tr, latency, panicked, fn)
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				out[i] = runJob(i, w, tr, latency, panicked, fn)
			}
		}(w)
	}
	wg.Wait()
	return out
}

// runJob executes one job with panic recovery, timing, and telemetry.
func runJob[T any](i, worker int, tr Trace, latency *telemetry.Histogram, panicked *telemetry.Counter, fn func(i int) (T, error)) (res Result[T]) {
	res.Index = i
	sp, finish := tr.Metrics.StartSpan(tr.Label, tr.Parent)
	sp.SetWorker(worker)
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		latency.Observe(res.Elapsed.Nanoseconds())
		finish()
		if p := recover(); p != nil {
			panicked.Inc()
			res.Err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	res.Value, res.Err = fn(i)
	return res
}
