// Package runner is the concurrent batch driver behind the evaluation
// pipeline: a worker-pool Map that fans independent jobs (the app ×
// invariant-configuration matrix of §7) across GOMAXPROCS goroutines with
// deterministic result ordering and per-job panic recovery, plus a
// memoized, single-flight analysis Cache so every (application,
// configuration) pair is solved at most once per evaluation run.
//
// Determinism contract: Map assigns job i's outcome to result slot i
// regardless of completion order, and every job in this repository is a pure
// function of its inputs, so a run at -parallel 8 renders byte-identical
// tables and figures to a run at -parallel 1 (asserted by tests).
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Result is one job's outcome, delivered in submission order.
type Result[T any] struct {
	Index   int
	Value   T
	Err     error // non-nil if the job returned an error or panicked
	Elapsed time.Duration
}

// PanicError wraps a recovered job panic so one crashing workload reports an
// error row instead of killing the whole batch.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// Map runs fn(0..n-1) across a pool of `workers` goroutines (GOMAXPROCS if
// workers <= 0) and returns the results indexed by job number. Jobs are
// claimed from a shared atomic cursor, so workers stay busy regardless of
// per-job cost skew; a panicking job is recovered into its Result.
func Map[T any](n, workers int, fn func(i int) (T, error)) []Result[T] {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]Result[T], n)
	if workers == 1 {
		// Serial fast path: no goroutine or scheduling overhead, identical
		// semantics (this is the -parallel 1 reference the byte-identity
		// tests compare against).
		for i := 0; i < n; i++ {
			out[i] = runJob(i, fn)
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				out[i] = runJob(i, fn)
			}
		}()
	}
	wg.Wait()
	return out
}

// runJob executes one job with panic recovery and timing.
func runJob[T any](i int, fn func(i int) (T, error)) (res Result[T]) {
	res.Index = i
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			res.Err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	res.Value, res.Err = fn(i)
	return res
}
