// Package runner is the concurrent batch driver behind the evaluation
// pipeline: a worker-pool Map that fans independent jobs (the app ×
// invariant-configuration matrix of §7) across GOMAXPROCS goroutines with
// deterministic result ordering and per-job panic recovery, plus a
// memoized, single-flight analysis Cache so every (application,
// configuration) pair is solved at most once per evaluation run.
//
// Determinism contract: Map assigns job i's outcome to result slot i
// regardless of completion order, and every job in this repository is a pure
// function of its inputs, so a run at -parallel 8 renders byte-identical
// tables and figures to a run at -parallel 1 (asserted by tests).
//
// Degradation contract (MapOpts): a job may fail by error, panic, or
// timeout; each failure lands in its own Result as a typed error
// (*PanicError, *TimeoutError) and never takes down the batch. Transient
// errors can be retried with exponential backoff, and a circuit breaker can
// degrade the pool to serial execution after repeated panics — every job
// still runs, results stay index-ordered.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Result is one job's outcome, delivered in submission order.
type Result[T any] struct {
	Index   int
	Value   T
	Err     error // non-nil if the job returned an error, panicked, or timed out
	Elapsed time.Duration
}

// PanicError wraps a recovered job panic so one crashing workload reports an
// error row instead of killing the whole batch.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// Unwrap exposes a panic value that was itself an error (e.g. an injected
// fault), so errors.Is/As see through the recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// TimeoutError reports a job that exceeded its per-job Opts.Timeout. The
// job's goroutine may still be running; its eventual outcome is discarded.
type TimeoutError struct {
	Index   int
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("job %d timed out after %v", e.Index, e.Timeout)
}

// ErrTransient marks an error as retryable under the default transiency
// predicate: jobs wrap (or return) it to request a bounded retry.
var ErrTransient = errors.New("runner: transient job failure")

// Trace is the optional observability hookup of a Map call. With a nil
// Metrics registry every field is inert and the pool behaves exactly like
// the untraced Map. With a registry attached, each job records its latency
// into the "runner/job-latency-ns" histogram, recovered panics count into
// "runner/jobs-panicked", and every job runs under a span (named Label,
// parented to Parent) tagged with its worker lane.
type Trace struct {
	Metrics *telemetry.Registry
	Parent  *telemetry.Span // parent of each per-job span (may be nil)
	Label   string          // per-job span name; "" defaults to "runner/job"
}

// Opts configures one MapOpts call. The zero value behaves exactly like the
// plain Map: no tracing, no timeout, no retries, no breaker.
type Opts struct {
	Trace Trace

	// Timeout bounds each job's wall-clock time; 0 disables. A timed-out
	// job's Result carries a *TimeoutError. The job goroutine is not killed
	// (Go cannot), but its late outcome is discarded.
	Timeout time.Duration

	// Retries is the number of extra attempts granted to a job whose error
	// is transient (per IsTransient). Panics and timeouts never retry.
	Retries int

	// Backoff is the sleep before the first retry, doubled on each further
	// retry. 0 retries immediately.
	Backoff time.Duration

	// IsTransient classifies retryable errors; nil means
	// errors.Is(err, ErrTransient).
	IsTransient func(error) bool

	// BreakerThreshold trips the circuit breaker after this many recovered
	// panics: in-flight jobs finish, the pool's workers stand down, and the
	// remaining jobs run serially (counter "runner/breaker-tripped"). 0
	// disables the breaker.
	BreakerThreshold int

	// Faults optionally arms fault injection: the WorkerPanic site fires at
	// job start, inside the recovered region.
	Faults *faultinject.Plan
}

// instruments are the pool's telemetry handles, resolved once per Map call,
// not per job; with no registry they are all nil (inert) instruments.
type instruments struct {
	latency  *telemetry.Histogram // runner/job-latency-ns
	panicked *telemetry.Counter   // runner/jobs-panicked
	timedOut *telemetry.Counter   // runner/jobs-timed-out
	retried  *telemetry.Counter   // runner/jobs-retried
	tripped  *telemetry.Counter   // runner/breaker-tripped
}

// breaker is the shared panic-count state of one MapOpts call.
type breaker struct {
	panics  int64
	tripped atomic.Bool
}

// Map runs fn(0..n-1) across a pool of `workers` goroutines and returns the
// results indexed by job number. Jobs are claimed from a shared atomic
// cursor, so workers stay busy regardless of per-job cost skew; a panicking
// job is recovered into its Result.
//
// Input contract (explicit, tested): n <= 0 returns nil without calling fn
// or spawning any goroutine; workers <= 0 means GOMAXPROCS; workers > n is
// clamped to n; workers == 1 runs serially on the calling goroutine.
func Map[T any](n, workers int, fn func(i int) (T, error)) []Result[T] {
	return MapOpts(n, workers, Opts{}, fn)
}

// MapTraced is Map with telemetry: job spans, a latency histogram, and a
// panic counter (see Trace). The determinism contract is unchanged — tracing
// observes job execution, it never reorders or alters it.
func MapTraced[T any](n, workers int, tr Trace, fn func(i int) (T, error)) []Result[T] {
	return MapOpts(n, workers, Opts{Trace: tr}, fn)
}

// MapOpts is Map with the full degradation toolkit: per-job timeouts,
// bounded retry with backoff for transient errors, a panic circuit breaker,
// and fault injection. See Opts. Results remain index-ordered and complete:
// every job gets exactly one Result whatever fails around it.
func MapOpts[T any](n, workers int, o Opts, fn func(i int) (T, error)) []Result[T] {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if o.Trace.Label == "" {
		o.Trace.Label = "runner/job"
	}
	if o.IsTransient == nil {
		o.IsTransient = func(err error) bool { return errors.Is(err, ErrTransient) }
	}
	ins := instruments{
		latency:  o.Trace.Metrics.Histogram("runner/job-latency-ns"),
		panicked: o.Trace.Metrics.Counter("runner/jobs-panicked"),
		timedOut: o.Trace.Metrics.Counter("runner/jobs-timed-out"),
		retried:  o.Trace.Metrics.Counter("runner/jobs-retried"),
		tripped:  o.Trace.Metrics.Counter("runner/breaker-tripped"),
	}
	out := make([]Result[T], n)
	br := &breaker{}
	if workers == 1 {
		// Serial fast path: no goroutine or scheduling overhead, identical
		// semantics (this is the -parallel 1 reference the byte-identity
		// tests compare against).
		for i := 0; i < n; i++ {
			out[i] = runJob(i, 0, o, ins, br, fn)
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Workers re-check the breaker before claiming each job, so a
			// trip stops new parallel claims but never abandons a claimed
			// job mid-run.
			for !br.tripped.Load() {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				out[i] = runJob(i, w, o, ins, br, fn)
			}
		}(w)
	}
	wg.Wait()
	// Degraded mode: the breaker tripped, the pool stood down, and whatever
	// the workers had not claimed yet runs serially here. The same cursor
	// continues, so no job is skipped or run twice.
	for br.tripped.Load() {
		i := int(atomic.AddInt64(&next, 1)) - 1
		if i >= n {
			break
		}
		out[i] = runJob(i, 0, o, ins, br, fn)
	}
	return out
}

// runJob executes one job — with panic recovery, optional timeout, and
// bounded retries for transient errors — under a span covering all attempts.
func runJob[T any](i, worker int, o Opts, ins instruments, br *breaker, fn func(i int) (T, error)) (res Result[T]) {
	res.Index = i
	sp, finish := o.Trace.Metrics.StartSpan(o.Trace.Label, o.Trace.Parent)
	sp.SetWorker(worker)
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		ins.latency.Observe(res.Elapsed.Nanoseconds())
		finish()
	}()
	for attempt := 0; ; attempt++ {
		res.Value, res.Err = callOnce(i, o, ins, br, fn)
		if res.Err == nil || attempt >= o.Retries || !retryable(res.Err, o) {
			return res
		}
		ins.retried.Inc()
		if o.Backoff > 0 {
			time.Sleep(o.Backoff << attempt)
		}
	}
}

// retryable allows retries only for transient plain errors: a panic left
// unknown state behind and a timeout already cost the full budget, so
// neither is retried.
func retryable(err error, o Opts) bool {
	var pe *PanicError
	var te *TimeoutError
	if errors.As(err, &pe) || errors.As(err, &te) {
		return false
	}
	return o.IsTransient(err)
}

// callOnce runs a single attempt, racing it against the per-job timeout when
// one is configured.
func callOnce[T any](i int, o Opts, ins instruments, br *breaker, fn func(i int) (T, error)) (T, error) {
	if o.Timeout <= 0 {
		return callRecover(i, o, ins, br, fn)
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := callRecover(i, o, ins, br, fn)
		ch <- outcome{v, err}
	}()
	timer := time.NewTimer(o.Timeout)
	defer timer.Stop()
	select {
	case oc := <-ch:
		return oc.v, oc.err
	case <-timer.C:
		ins.timedOut.Inc()
		var zero T
		return zero, &TimeoutError{Index: i, Timeout: o.Timeout}
	}
}

// callRecover runs fn(i) inside the recovered region, firing the WorkerPanic
// fault site first and feeding recovered panics to the circuit breaker.
func callRecover[T any](i int, o Opts, ins instruments, br *breaker, fn func(i int) (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			ins.panicked.Inc()
			if o.BreakerThreshold > 0 &&
				atomic.AddInt64(&br.panics, 1) >= int64(o.BreakerThreshold) &&
				br.tripped.CompareAndSwap(false, true) {
				ins.tripped.Inc()
			}
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	if e := o.Faults.Err(faultinject.WorkerPanic); e != nil {
		panic(e)
	}
	return fn(i)
}
