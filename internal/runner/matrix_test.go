package runner_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// matrixOpt keeps the full-matrix determinism test fast; the artifacts still
// cover every app, configuration, and driver path.
var matrixOpt = experiments.Options{Requests: 40, PerfRequests: 200, Runs: 2, FuzzIters: 40, Seed: 1}

// renderAll regenerates every deterministic artifact on one session, to
// populate the telemetry registry under test. Figure 13 is deliberately
// absent: its cells are wall-clock throughput and differ between any two
// runs, serial or not.
func renderAll(t *testing.T, parallel int, reg *telemetry.Registry) map[string]string {
	t.Helper()
	s := experiments.NewSession(matrixOpt, parallel, reg)
	data := s.AnalyzeAll()
	return map[string]string{
		"Figure1":    s.Figure1(),
		"Table2":     experiments.Table2(),
		"Table3":     experiments.Table3(data),
		"Figure10":   experiments.Figure10(data),
		"Figure11":   experiments.Figure11(data),
		"Figure12":   experiments.Figure12(data),
		"Table4":     s.Table4(),
		"Table5":     s.Table5(),
		"ExtDebloat": s.ExtDebloat(),
		"ExtGraded":  s.ExtGraded(),
	}
}

// The pipeline's determinism contract (parallel output byte-identical to the
// single-worker reference) lives in cmd/kscope-bench's golden-output test,
// which pins the full rendered artifact set against testdata/golden/ at
// -parallel 1, 4, and 8.

// TestSessionTelemetry checks a metered run exports the expected counter
// families from every layer the pipeline instruments.
func TestSessionTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation matrix")
	}
	reg := telemetry.New()
	renderAll(t, 4, reg)
	snap := reg.Snapshot()
	for _, key := range []string{
		"runner/cache/requests",
		"runner/cache/misses",
		"core/analyses",
		"pointsto/solves",
		"pointsto/worklist/pops",
		"interp/runs",
		"interp/monitor/ptradd",
		"interp/cfi/lookups",
	} {
		if snap.Counters[key] == 0 {
			t.Errorf("counter %s not populated (snapshot:\n%s)", key, snap.Text())
		}
	}
	// 9 apps × 8 configs, plus nothing else: every artifact reuses the cache.
	if got := snap.Counters["runner/cache/misses"]; got != 72 {
		t.Errorf("cache misses = %d, want 72 (9 apps x 8 configs)", got)
	}
	if len(snap.Timers) == 0 {
		t.Error("no phase timers recorded")
	}
}
