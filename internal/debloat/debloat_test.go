package debloat

import (
	"testing"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/minic"
	"repro/internal/workload"
)

// debloatSrc has a handler only reachable through an imprecise callgraph
// edge: the baseline analysis keeps dead_handler (the collapsed struct makes
// it a possible icall target), the optimistic analysis removes it. Function
// never_called is unreachable under both.
const debloatSrc = `
struct plugin { fn handler; int* data; }
plugin mod;
int buff[16];

int live_handler(int* x) { return 1; }
int dead_handler(int* x) { return 2; }
int never_called(int* x) { return 3; }

void smear(char* s, fn v) {
  int i;
  i = input();
  *(s + i) = v;
}

int main() {
  char* p;
  fn d;
  mod.handler = &live_handler;
  d = &dead_handler;
  p = buff;
  if (input() % 7 == 9) {
    p = &mod;
  }
  smear(p, d);
  return mod.handler(null);
}
`

func TestComputeSeparatesViews(t *testing.T) {
	m, err := minic.Compile("debloat", debloatSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.Analyze(m, invariant.All())
	rep := Compute(sys, "main")
	if !rep.Sound() {
		t.Fatal("optimistic keep set not a subset of fallback keep set")
	}
	inFall := map[string]bool{}
	for _, f := range rep.KeepFall {
		inFall[f] = true
	}
	inOpt := map[string]bool{}
	for _, f := range rep.KeepOpt {
		inOpt[f] = true
	}
	if !inFall["dead_handler"] {
		t.Error("fallback should keep dead_handler (imprecise callgraph)")
	}
	if inOpt["dead_handler"] {
		t.Error("optimistic analysis should debloat dead_handler")
	}
	if !inOpt["live_handler"] || !inOpt["main"] || !inOpt["smear"] {
		t.Errorf("optimistic keep set missing live code: %v", rep.KeepOpt)
	}
	if inFall["never_called"] || inOpt["never_called"] {
		t.Error("never_called kept by some view")
	}
	if rep.ReductionOptimistic() <= rep.ReductionFallback() {
		t.Errorf("optimistic reduction %.2f should exceed fallback %.2f",
			rep.ReductionOptimistic(), rep.ReductionFallback())
	}
}

// Every function that actually executes must be in the optimistic keep set
// on violation-free runs (dynamic debloating soundness, §8).
func TestDebloatDynamicSoundnessOnWorkloads(t *testing.T) {
	for _, app := range workload.Apps() {
		t.Run(app.Name, func(t *testing.T) {
			sys := core.Analyze(app.MustModule(), invariant.All())
			rep := Compute(sys, "main")
			if !rep.Sound() {
				t.Fatal("keep sets inconsistent")
			}
			keep := map[string]bool{}
			for _, f := range rep.KeepOpt {
				keep[f] = true
			}
			h := sys.Harden()
			e := h.NewExecution(true)
			tr := e.Run("main", app.Requests(40, 1))
			if tr.Err != nil {
				t.Fatalf("run: %v", tr.Err)
			}
			if e.Switcher.Switched() {
				t.Skip("invariant violated; dynamic restore applies instead")
			}
			// Observed icall targets must be kept code.
			for site, targets := range tr.ICallObserved {
				for fn := range targets {
					if !keep[fn] {
						t.Errorf("executed %s (icall #%d) was debloated optimistically", fn, site)
					}
				}
			}
		})
	}
}

// restoreSrc has a LIVE violating branch: when the first input is non-zero,
// the smear really does overwrite mod.handler with the debloated handler.
const restoreSrc = `
struct plugin { fn handler; int* data; }
plugin mod;
int buff[16];

int live_handler(int* x) { return 1; }
int dead_handler(int* x) { return 2; }

void smear(char* s, fn v, int off) {
  *(s + off) = v;
}

int main() {
  char* p;
  fn d;
  mod.handler = &live_handler;
  d = &dead_handler;
  p = buff;
  if (input()) {
    p = &mod;
  }
  smear(p, d, 0);
  return mod.handler(null);
}
`

// Violation-triggered restore (§8): after the memory-view switch, a function
// that only the fallback callgraph admits becomes callable again.
func TestDebloatRestoreOnViolation(t *testing.T) {
	m, err := minic.Compile("restore", restoreSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.Analyze(m, invariant.All())
	rep := Compute(sys, "main")
	optKeep := map[string]bool{}
	for _, f := range rep.KeepOpt {
		optKeep[f] = true
	}
	fallKeep := map[string]bool{}
	for _, f := range rep.KeepFall {
		fallKeep[f] = true
	}
	if optKeep["dead_handler"] {
		t.Fatal("dead_handler should be debloated optimistically")
	}
	if !fallKeep["dead_handler"] {
		t.Fatal("fallback must keep dead_handler")
	}

	h := sys.Harden()
	// Clean run: the debloated function never executes.
	e := h.NewExecution(false)
	tr := e.Run("main", []int64{0})
	if tr.Err != nil || tr.Result != 1 {
		t.Fatalf("clean run: err=%v result=%d", tr.Err, tr.Result)
	}
	// Violating run: the PA monitor fires before the overwrite, the view
	// switches, and the debloated handler's access is restored — the icall
	// to dead_handler succeeds under the fallback view.
	e2 := h.NewExecution(false)
	tr2 := e2.Run("main", []int64{1})
	if tr2.Err != nil {
		t.Fatalf("violating run: %v", tr2.Err)
	}
	if !e2.Switcher.Switched() {
		t.Fatal("no view switch on violating run")
	}
	if tr2.Result != 2 {
		t.Fatalf("result = %d, want 2 (restored dead_handler)", tr2.Result)
	}
}
