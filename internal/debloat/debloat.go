// Package debloat implements the software-debloating use case sketched in
// the paper's Discussion (§8): the points-to-derived callgraph determines
// which functions are reachable from an entry point, and everything else is
// removed (statically) or marked inaccessible (dynamically). A more precise
// analysis removes more code; Kaleidoscope's optimistic callgraph therefore
// debloats more aggressively than the fallback, and the memory-view switch
// doubles as the §8 "restore executable access" mechanism: functions
// re-admitted by the fallback view become callable again after a violation.
package debloat

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pointsto"
)

// Reachable computes the set of functions reachable from entry under the
// callgraph implied by a points-to result: direct callees plus, at each
// indirect callsite of a reachable function, the result's permitted targets.
func Reachable(r *pointsto.Result, entry string) map[string]bool {
	mod := r.Module()
	seen := map[string]bool{}
	work := []string{entry}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[name] {
			continue
		}
		f := mod.Func(name)
		if f == nil {
			continue
		}
		seen[name] = true
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			switch in := in.(type) {
			case *ir.Call:
				work = append(work, in.Callee)
			case *ir.ICall:
				work = append(work, r.CallTargets(ir.InstrID(in))...)
			}
		})
	}
	return seen
}

// Report compares the debloating decisions of the optimistic and fallback
// analyses for one program.
type Report struct {
	Entry       string
	Total       int // functions in the module
	KeepFall    []string
	KeepOpt     []string
	RemovedFall []string
	RemovedOpt  []string
}

// Compute builds the debloating report for a system.
func Compute(sys *core.System, entry string) *Report {
	rep := &Report{Entry: entry, Total: len(sys.Module.Funcs)}
	fall := Reachable(sys.Fallback, entry)
	opt := Reachable(sys.Optimistic, entry)
	for _, f := range sys.Module.Funcs {
		if fall[f.Name] {
			rep.KeepFall = append(rep.KeepFall, f.Name)
		} else {
			rep.RemovedFall = append(rep.RemovedFall, f.Name)
		}
		if opt[f.Name] {
			rep.KeepOpt = append(rep.KeepOpt, f.Name)
		} else {
			rep.RemovedOpt = append(rep.RemovedOpt, f.Name)
		}
	}
	sort.Strings(rep.KeepFall)
	sort.Strings(rep.KeepOpt)
	sort.Strings(rep.RemovedFall)
	sort.Strings(rep.RemovedOpt)
	return rep
}

// ReductionFallback returns the fraction of functions the fallback analysis
// debloats.
func (r *Report) ReductionFallback() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(len(r.RemovedFall)) / float64(r.Total)
}

// ReductionOptimistic returns the fraction the optimistic analysis debloats.
func (r *Report) ReductionOptimistic() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(len(r.RemovedOpt)) / float64(r.Total)
}

// Sound reports whether every function in keep-set coverage is consistent:
// the optimistic keep set must be a subset of the fallback keep set (more
// precision can only remove more).
func (r *Report) Sound() bool {
	keep := map[string]bool{}
	for _, f := range r.KeepFall {
		keep[f] = true
	}
	for _, f := range r.KeepOpt {
		if !keep[f] {
			return false
		}
	}
	return true
}
