package bitset

import (
	"sort"
	"testing"
)

// FuzzBitsetModel drives a Set and a map[int]bool reference model through
// the same operation stream and asserts they agree after every step. The
// value decoding is biased so streams routinely cross the inline↔bit-vector
// promotion boundary in both element count and element magnitude.
//
// Seed corpus: testdata/fuzz/FuzzBitsetModel/. Run continuously with
//
//	go test -run '^$' -fuzz '^FuzzBitsetModel$' ./internal/bitset
func FuzzBitsetModel(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte("\x00\x10\x00\x20\x00\x30\x00\x40\x00\x50\x04\x00\x05\x00"))
	f.Add([]byte{0x00, 0xff, 0x03, 0xfe, 0x04, 0x00, 0x01, 0xff, 0x07, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(0)
		b := New(0)
		model := map[int]bool{}
		modelB := map[int]bool{}
		// A deliberately tiny pool so op 8/9 streams also cross eviction:
		// interned sets regularly go stale and re-canonicalize mid-stream,
		// and every mutator below then runs against shared storage.
		pool := NewPool(4)
		// elem decodes a byte into a value that hovers around the
		// InlineThreshold cardinality range for small bytes and jumps past
		// the 64-bit word boundary for large ones, so promotion triggers on
		// both paths (count overflow and magnitude overflow are the same
		// path here, but sparse large values stress grow/promote sizing).
		elem := func(v byte) int {
			if v >= 0xf0 {
				return int(v) * 137 // up to ~34k: multi-word vectors
			}
			return int(v % 11) // dense small values around the threshold
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, v := data[i]%10, data[i+1]
			x := elem(v)
			switch op {
			case 0:
				if s.Add(x) == model[x] {
					t.Fatalf("Add(%d) changed=%v but model has=%v", x, !model[x], model[x])
				}
				model[x] = true
			case 1:
				if s.Remove(x) != model[x] {
					t.Fatalf("Remove(%d) disagrees with model", x)
				}
				delete(model, x)
			case 2:
				if s.Has(x) != model[x] {
					t.Fatalf("Has(%d) = %v, model %v", x, s.Has(x), model[x])
				}
			case 3:
				b.Add(x)
				modelB[x] = true
			case 4:
				s.UnionWith(b)
				for k := range modelB {
					model[k] = true
				}
			case 5:
				delta := New(0)
				n := s.UnionDelta(b, delta)
				fresh := 0
				for k := range modelB {
					if !model[k] {
						fresh++
						if !delta.Has(k) {
							t.Fatalf("UnionDelta missed new element %d", k)
						}
						model[k] = true
					}
				}
				if n != fresh || delta.Len() != fresh {
					t.Fatalf("UnionDelta reported %d new bits (delta len %d), model says %d",
						n, delta.Len(), fresh)
				}
			case 6:
				c := s.Clone()
				if !c.Equal(s) || !s.Equal(c) {
					t.Fatal("clone not equal to original")
				}
				c.Add(99991)
				if s.Has(99991) {
					t.Fatal("clone aliases original storage")
				}
			case 7:
				b.Clear()
				modelB = map[int]bool{}
			case 8:
				pool.Intern(s)
			case 9:
				pool.Intern(b)
				if b.Len() != len(modelB) {
					t.Fatalf("intern changed b: Len = %d, model %d", b.Len(), len(modelB))
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", s.Len(), len(model))
			}
		}
		// Final deep check: elements, order, Min/Max.
		want := make([]int, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Ints(want)
		got := s.Elements()
		if len(got) != len(want) {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Elements = %v, want %v", got, want)
			}
		}
		if len(want) > 0 && (s.Min() != want[0] || s.Max() != want[len(want)-1]) {
			t.Fatalf("Min/Max = %d/%d, want %d/%d", s.Min(), s.Max(), want[0], want[len(want)-1])
		}
		if len(want) == 0 && (s.Min() != -1 || s.Max() != -1) {
			t.Fatal("Min/Max of empty set should be -1")
		}
	})
}

// FuzzInternModel is the interning counterpart of FuzzBitsetModel: a small
// family of sets interleaves intern, mutate (forcing copy-on-write
// promotion), clone, and pool flushes against per-set map models, asserting
// after every step that no mutation ever leaks through shared storage and
// that the pointer-equality fast path never contradicts content equality.
//
// Run continuously with
//
//	go test -run '^$' -fuzz '^FuzzInternModel$' ./internal/bitset
func FuzzInternModel(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x10, 0x01, 0x23, 0x00, 0x31, 0x00, 0x04, 0x00})
	f.Add([]byte("\x00\x50\x06\x00\x10\x50\x16\x00\x23\x00\x07\x00\x26\x00"))
	f.Add([]byte{0x02, 0x40, 0x12, 0x40, 0x06, 0x00, 0x16, 0x00, 0x33, 0x00, 0x05, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		const slots = 4
		pool := NewPool(3) // tiny: streams routinely cross eviction
		sets := [slots]*Set{}
		models := [slots]map[int]bool{}
		for i := range sets {
			sets[i] = New(0)
			models[i] = map[int]bool{}
		}
		check := func() {
			for i := 0; i < slots; i++ {
				if sets[i].Len() != len(models[i]) {
					t.Fatalf("slot %d: Len = %d, model %d", i, sets[i].Len(), len(models[i]))
				}
				for _, x := range sets[i].Elements() {
					if !models[i][x] {
						t.Fatalf("slot %d: stray element %d", i, x)
					}
				}
				for j := 0; j < slots; j++ {
					same := len(models[i]) == len(models[j])
					if same {
						for k := range models[i] {
							if !models[j][k] {
								same = false
								break
							}
						}
					}
					if sets[i].SharesStorageWith(sets[j]) && !same {
						t.Fatalf("slots %d/%d share storage with unequal models", i, j)
					}
					if sets[i].Equal(sets[j]) != same {
						t.Fatalf("slots %d/%d: Equal = %v, models same = %v", i, j, !same, same)
					}
				}
			}
		}
		for i := 0; i+1 < len(data); i += 2 {
			hi, lo := int(data[i]>>4), data[i]&0x0f
			a, b := hi%slots, int(lo)%slots
			v := data[i+1]
			x := int(v % 19)
			if v >= 0xe0 {
				x = int(v) * 97 // multi-word magnitudes
			}
			switch int(lo>>2) + 4*(hi/slots) {
			case 0: // add
				sets[a].Add(x)
				models[a][x] = true
			case 1: // remove
				sets[a].Remove(x)
				delete(models[a], x)
			case 2: // intern
				pool.Intern(sets[a])
			case 3: // union b into a (often between two interned sharers)
				sets[a].UnionWith(sets[b])
				for k := range models[b] {
					models[a][k] = true
				}
			case 4: // clone b over a (clones of interned sets stay shared)
				sets[a] = sets[b].Clone()
				nm := make(map[int]bool, len(models[b]))
				for k := range models[b] {
					nm[k] = true
				}
				models[a] = nm
			case 5: // clear
				sets[a].Clear()
				models[a] = map[int]bool{}
			case 6: // flush: weak-release every canonical entry
				pool.Flush()
			case 7: // intern everything: maximal sharing pressure
				for j := range sets {
					pool.Intern(sets[j])
				}
			}
			check()
		}
		st := pool.Stats()
		if st.Entries < 0 || st.Evictions < 0 || st.Hits+st.SelfHits+st.Misses < 0 {
			t.Fatalf("implausible stats %+v", st)
		}
	})
}
