package bitset

import "testing"

func setOf(xs ...int) *Set {
	s := New(0)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// vecOf builds a vector-mode set regardless of cardinality.
func vecOf(xs ...int) *Set {
	s := New(wordBits)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestInternSharesEqualContent(t *testing.T) {
	p := NewPool(0)
	a := vecOf(1, 70, 200)
	b := vecOf(1, 70, 200)
	c := vecOf(1, 70, 201)
	p.Intern(a)
	p.Intern(b)
	p.Intern(c)
	if !a.Interned() || !b.Interned() || !c.Interned() {
		t.Fatal("vector sets should intern")
	}
	if !a.SharesStorageWith(b) || !b.SharesStorageWith(a) {
		t.Fatal("equal contents should share one canonical entry")
	}
	if a.SharesStorageWith(c) {
		t.Fatal("distinct contents must not share")
	}
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal wrong on interned sets")
	}
	st := p.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 misses / 1 hit / 2 entries", st)
	}
	if st.BytesShared <= 0 {
		t.Fatalf("BytesShared = %d, want > 0 after a hit", st.BytesShared)
	}
	// Re-interning an unchanged canonical set is a self-hit, not a rehash.
	p.Intern(a)
	if got := p.Stats().SelfHits; got != 1 {
		t.Fatalf("SelfHits = %d, want 1", got)
	}
}

func TestInternDifferentCapacitySameContent(t *testing.T) {
	p := NewPool(0)
	a := vecOf(3, 9)
	b := New(10 * wordBits) // long buffer, trailing zero words
	b.Add(3)
	b.Add(9)
	p.Intern(a)
	p.Intern(b)
	if !a.SharesStorageWith(b) {
		t.Fatal("trailing zero words must not defeat content hashing")
	}
}

func TestInternInlineSetsPassThrough(t *testing.T) {
	p := NewPool(0)
	s := setOf(1, 2, 3) // inline: below InlineThreshold
	if p.Intern(s) != s || s.Interned() {
		t.Fatal("inline sets must pass through Intern un-interned")
	}
	if got := p.Stats(); got.Misses+got.Hits+got.SelfHits != 0 {
		t.Fatalf("inline intern should not touch counters: %+v", got)
	}
}

// TestInlineToVectorToInterned walks one set through the full representation
// ladder: inline → promoted bit-vector → interned/shared → copy-on-write
// private again.
func TestInlineToVectorToInterned(t *testing.T) {
	p := NewPool(0)
	s := setOf(1, 2, 3, 4)
	p.Intern(s)
	if s.Interned() {
		t.Fatal("still inline; must not intern")
	}
	s.Add(5) // promotes inline → vector
	if s.inline() {
		t.Fatal("expected promotion to vector mode")
	}
	p.Intern(s)
	if !s.Interned() {
		t.Fatal("vector set should intern")
	}
	twin := vecOf(1, 2, 3, 4, 5)
	p.Intern(twin)
	if !twin.SharesStorageWith(s) {
		t.Fatal("promoted set content should hash-cons with an equal vector")
	}
	s.Add(6) // copy-on-write: s goes private, twin keeps canonical storage
	if s.Interned() {
		t.Fatal("mutation must un-share")
	}
	if twin.Has(6) || !twin.Interned() {
		t.Fatal("CoW leaked a write into the shared entry")
	}
	if got := p.Stats().Promotions; got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
}

// TestInternCopyOnWrite checks every mutator un-shares before its first real
// write and that no-op mutations stay free of promotions.
func TestInternCopyOnWrite(t *testing.T) {
	mutate := func(name string, f func(s *Set), wantPromote bool) {
		t.Run(name, func(t *testing.T) {
			p := NewPool(0)
			a := vecOf(1, 70, 200)
			b := vecOf(1, 70, 200)
			p.Intern(a)
			p.Intern(b)
			want := b.Elements()
			f(a)
			got := b.Elements()
			if len(got) != len(want) {
				t.Fatalf("sharer changed: %v -> %v", want, got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sharer changed: %v -> %v", want, got)
				}
			}
			if promoted := p.Stats().Promotions > 0; promoted != wantPromote {
				t.Fatalf("promotions=%d, wantPromote=%v", p.Stats().Promotions, wantPromote)
			}
			if wantPromote && a.Interned() {
				t.Fatal("mutated set still claims shared storage")
			}
		})
	}
	mutate("Add", func(s *Set) { s.Add(7) }, true)
	mutate("AddPresent", func(s *Set) { s.Add(70) }, false)
	mutate("Remove", func(s *Set) { s.Remove(70) }, true)
	mutate("RemoveAbsent", func(s *Set) { s.Remove(71) }, false)
	mutate("UnionWith", func(s *Set) { s.UnionWith(vecOf(5)) }, true)
	mutate("UnionWithSubset", func(s *Set) { s.UnionWith(vecOf(1, 70)) }, false)
	mutate("UnionDelta", func(s *Set) { s.UnionDelta(vecOf(5), nil) }, true)
	mutate("UnionDeltaSubset", func(s *Set) { s.UnionDelta(vecOf(1, 70), nil) }, false)
	mutate("DifferenceWith", func(s *Set) { s.DifferenceWith(vecOf(70)) }, true)
	mutate("DifferenceWithDisjoint", func(s *Set) { s.DifferenceWith(vecOf(8, 9)) }, false)
	mutate("IntersectWith", func(s *Set) { s.IntersectWith(vecOf(1, 70)) }, true)
	mutate("IntersectWithSuperset", func(s *Set) { s.IntersectWith(vecOf(1, 70, 200, 300)) }, false)
	mutate("Clear", func(s *Set) { s.Clear() }, true)
}

func TestInternSharedPairFastPaths(t *testing.T) {
	p := NewPool(0)
	a := vecOf(1, 70, 200)
	b := vecOf(1, 70, 200)
	p.Intern(a)
	p.Intern(b)
	if a.UnionWith(b) {
		t.Fatal("union with own canonical content reported a change")
	}
	if n := a.UnionDelta(b, nil); n != 0 {
		t.Fatalf("UnionDelta on shared pair = %d, want 0", n)
	}
	if !a.SubsetOf(b) || !a.Intersects(b) {
		t.Fatal("SubsetOf/Intersects fast paths wrong")
	}
	if d := a.Difference(b); !d.Empty() {
		t.Fatalf("Difference on shared pair = %v, want empty", d.Elements())
	}
	if a.Interned() != true || p.Stats().Promotions != 0 {
		t.Fatal("read-only fast paths must not promote")
	}
	a.DifferenceWith(b) // removes everything: equivalent to Clear
	if !a.Empty() || b.Empty() {
		t.Fatal("DifferenceWith shared pair should empty only the receiver")
	}
}

func TestInternElementsMemoized(t *testing.T) {
	p := NewPool(0)
	a := vecOf(1, 70, 200)
	b := vecOf(1, 70, 200)
	p.Intern(a)
	p.Intern(b)
	ea, eb := a.Elements(), b.Elements()
	if len(ea) == 0 || &ea[0] != &eb[0] {
		t.Fatal("sharers should return the same memoized element slice")
	}
	a.Add(7)
	if got := a.Elements(); &got[0] == &ea[0] {
		t.Fatal("private set after CoW must not reuse the canonical slice")
	}
	if got := b.Elements(); &got[0] != &eb[0] {
		t.Fatal("sharer lost its memoized slice")
	}
}

func TestInternCloneSharing(t *testing.T) {
	p := NewPool(0)
	a := vecOf(1, 70, 200)
	p.Intern(a)
	c := a.Clone()
	if !c.SharesStorageWith(a) {
		t.Fatal("clone of interned set should share storage")
	}
	c.Add(7)
	if a.Has(7) || !a.Interned() {
		t.Fatal("clone mutation leaked into original")
	}
	a.Remove(70)
	if !c.Has(7) || !c.Has(70) || c.Len() != 4 {
		t.Fatalf("original mutation leaked into clone: %v", c.Elements())
	}
}

func TestInternEmptyVector(t *testing.T) {
	p := NewPool(0)
	a := New(wordBits)
	b := vecOf(3)
	b.Remove(3)
	p.Intern(a)
	p.Intern(b)
	if !a.SharesStorageWith(b) {
		t.Fatal("empty vectors should hash-cons together")
	}
	if a.Len() != 0 || a.Min() != -1 {
		t.Fatal("shared empty set misbehaves")
	}
}

// TestInternPoolEviction drives the pool past its entry limit and checks the
// flush releases everything while weakly-held sharers stay fully usable.
func TestInternPoolEviction(t *testing.T) {
	p := NewPool(2)
	a := vecOf(1, 100)
	b := vecOf(2, 100)
	c := vecOf(3, 100)
	p.Intern(a)
	p.Intern(b)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	p.Intern(c) // third distinct content exceeds the limit: full flush
	if p.Len() != 0 {
		t.Fatalf("Len after eviction = %d, want 0", p.Len())
	}
	st := p.Stats()
	if st.Flushes != 1 || st.Evictions != 3 || st.WordBytes != 0 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	// Weak release: evicted entries are no longer canonical but their
	// sharers keep working — reads, equality fast paths, and CoW intact.
	if !a.Interned() || !a.Has(100) || a.Len() != 2 {
		t.Fatal("evicted sharer unusable")
	}
	a2 := a.Clone()
	if !a2.SharesStorageWith(a) {
		t.Fatal("evicted entry should still back the equality fast path")
	}
	a2.Add(7)
	if a.Has(7) {
		t.Fatal("CoW broken after eviction")
	}
	// Re-interning a stale sharer re-canonicalizes (a rehash, not a self-hit)
	// by adopting the same immutable storage — no copy.
	before := p.Stats().Misses
	p.Intern(a)
	st = p.Stats()
	if st.Misses != before+1 || st.SelfHits != 0 || p.Len() != 1 {
		t.Fatalf("stale re-intern stats = %+v", st)
	}
	fresh := vecOf(1, 100)
	p.Intern(fresh)
	if !fresh.SharesStorageWith(a) {
		t.Fatal("re-canonicalized content should share again")
	}
}

func TestInternExplicitFlushIdempotent(t *testing.T) {
	p := NewPool(0)
	p.Flush() // empty flush is a no-op
	if st := p.Stats(); st.Flushes != 0 {
		t.Fatalf("empty flush counted: %+v", st)
	}
	p.Intern(vecOf(1, 99))
	p.Flush()
	p.Flush()
	if st := p.Stats(); st.Flushes != 1 || st.Evictions != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
