package bitset

import (
	"sync/atomic"
)

// Hash-consing for points-to sets. A Pool maps canonical set contents to a
// single shared immutable storage block, so the thousands of equal fixpoint
// sets a solve produces collapse to one words array (and one memoized element
// slice) each. Sharing is transparent to Set's API: a shared set reads like
// any other, and the first mutation that would write through shared storage
// copies it back to private ownership first ("copy-on-write promotion", see
// unshare in bitset.go). On interned sets, equality and subset checks
// degenerate to a pointer comparison on the canonical entry.
//
// Ownership rules:
//
//   - The pool owns an entry's words array and memoized element slice; both
//     are immutable for the entry's lifetime. Every holder of a shared Set
//     aliases them.
//   - A holder may call any mutator at any time: the mutator un-shares first
//     (one words copy), detaches from the entry, and proceeds on private
//     storage. Other holders and the pool are never affected.
//   - Elements() on a shared set returns the canonical memoized slice;
//     callers must treat it as read-only (all solver call sites only iterate).
//
// Concurrency: Intern, Flush, and Len mutate pool structure and must be
// confined to one goroutine at a time — the solver calls them only from
// serial phases (worklist pops, wave level barriers, the post-fixpoint
// sweep). Shared sets themselves may be read from many goroutines (the
// parallel gather phase does), and the entry-side state a reader can touch —
// the memoized element slice and the statistics counters — is atomic, so a
// stray Elements() or copy-on-write promotion from a worker is safe even
// though the pool map is not.

// internEntry is the pool-side canonical representation of one set content.
type internEntry struct {
	pool  *Pool
	gen   uint32 // pool generation at insert; stale after a flush
	hash  uint64
	words []uint64 // canonical storage, immutable; aliased by every holder
	count int
	elems atomic.Pointer[[]int] // memoized Elements(), computed once on demand
}

// elements returns the entry's memoized ascending element slice, computing it
// on first use. Concurrent first calls may race to compute; the first store
// wins and duplicates are dropped, so the result is always consistent.
func (e *internEntry) elements() []int {
	if p := e.elems.Load(); p != nil {
		return *p
	}
	view := Set{words: e.words, count: e.count}
	out := make([]int, 0, e.count)
	view.ForEach(func(x int) bool {
		out = append(out, x)
		return true
	})
	if e.elems.CompareAndSwap(nil, &out) {
		return out
	}
	return *e.elems.Load()
}

// PoolStats is a snapshot of a Pool's counters. All values are cumulative
// except Entries and WordBytes, which describe the current pool contents.
type PoolStats struct {
	Hits       int64 // Intern found an existing entry: storage newly shared
	SelfHits   int64 // Intern on a set already canonical in this pool: no-op
	Misses     int64 // Intern inserted a new entry
	Promotions int64 // copy-on-write promotions: a mutator un-shared a set
	Evictions  int64 // entries dropped by flushes (capacity or explicit)
	Flushes    int64 // times the pool was emptied
	Entries    int   // live entries
	WordBytes  int64 // bytes of canonical word storage currently pooled
	// BytesShared estimates allocation avoided by sharing: on every hit, the
	// holder aliases the canonical words (and element slice, if materialized)
	// instead of owning a private copy.
	BytesShared int64
}

// Pool is a hash-consing pool for vector-mode Sets. Inline sets are below
// the sharing payoff (they already live in the Set header) and pass through
// Intern unchanged. The zero Pool is not usable; construct with NewPool.
type Pool struct {
	limit   int // entry count that triggers a flush; <=0 means unbounded
	gen     uint32
	buckets map[uint64][]*internEntry
	entries int
	wordsB  int64

	hits, selfHits, misses, evictions, flushes int64
	promotions, bytesShared                    atomic.Int64
}

// DefaultPoolLimit bounds a pool's entry count when NewPool is given a
// non-positive limit. Exceeding the bound flushes the whole pool (entries
// are released; live shared sets keep working and simply re-intern on next
// use), which keeps the pool from accumulating every transient set content a
// long fixpoint iteration ever produced. A 10k-node solve uses ~2.4k distinct
// contents, so the default never flushes on today's tiers.
const DefaultPoolLimit = 1 << 15

// NewPool returns an empty pool that flushes when it exceeds limit entries
// (DefaultPoolLimit if limit <= 0).
func NewPool(limit int) *Pool {
	if limit <= 0 {
		limit = DefaultPoolLimit
	}
	return &Pool{limit: limit, buckets: map[uint64][]*internEntry{}}
}

// hashWords hashes a vector set's logical content (FNV-1a over nonzero words
// mixed with their indices), independent of trailing zero words and physical
// capacity, so physically different buffers with equal contents collide.
func hashWords(words []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, w := range words {
		if w == 0 {
			continue
		}
		h = (h ^ uint64(i)) * prime64
		h = (h ^ w) * prime64
	}
	return h
}

// sameContent reports whether the entry's canonical words equal the given
// vector content (which may carry extra trailing zero words).
func (e *internEntry) sameContent(words []uint64, count int) bool {
	if e.count != count {
		return false
	}
	long, short := e.words, words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intern canonicalizes s in the pool and returns s. If an entry with equal
// content exists, s drops its private storage and aliases the canonical
// words; otherwise s's storage is adopted as the new canonical entry. Either
// way s becomes shared: its next mutation will copy-on-write. Inline and nil
// sets are returned unchanged.
func (p *Pool) Intern(s *Set) *Set {
	if s == nil || s.inline() {
		return s
	}
	if e := s.shared; e != nil && e.pool == p && e.gen == p.gen {
		p.selfHits++
		return s
	}
	h := hashWords(s.words)
	for _, e := range p.buckets[h] {
		if e.sameContent(s.words, s.count) {
			p.hits++
			saved := int64(len(e.words)) * 8
			if ep := e.elems.Load(); ep != nil {
				saved += int64(len(*ep)) * 8
			}
			p.bytesShared.Add(saved)
			s.words = e.words
			s.shared = e
			return s
		}
	}
	p.misses++
	e := &internEntry{pool: p, gen: p.gen, hash: h, words: s.words, count: s.count}
	p.buckets[h] = append(p.buckets[h], e)
	p.entries++
	p.wordsB += int64(len(e.words)) * 8
	s.shared = e
	if p.entries > p.limit {
		p.Flush()
	}
	return s
}

// Flush empties the pool, releasing every entry. Sets sharing a released
// entry remain fully usable — reads and copy-on-write promotion only touch
// the entry, never the pool — but they are no longer canonical: the next
// Intern re-hashes them (adopting the same immutable storage, so no copy).
func (p *Pool) Flush() {
	if p.entries == 0 {
		return
	}
	p.evictions += int64(p.entries)
	p.flushes++
	p.gen++
	p.buckets = map[uint64][]*internEntry{}
	p.entries = 0
	p.wordsB = 0
}

// Len returns the number of live entries.
func (p *Pool) Len() int { return p.entries }

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:        p.hits,
		SelfHits:    p.selfHits,
		Misses:      p.misses,
		Promotions:  p.promotions.Load(),
		Evictions:   p.evictions,
		Flushes:     p.flushes,
		Entries:     p.entries,
		WordBytes:   p.wordsB,
		BytesShared: p.bytesShared.Load(),
	}
}

// Interned reports whether s currently shares canonical pool storage (its
// next mutation will copy-on-write).
func (s *Set) Interned() bool { return s.shared != nil }

// SharesStorageWith reports whether s and t alias the same canonical entry.
// This is the pointer-comparison equality fast path: a true result proves
// content equality without touching the words.
func (s *Set) SharesStorageWith(t *Set) bool {
	return t != nil && s.shared != nil && s.shared == t.shared
}

// unshare detaches s from its canonical entry, copying the shared words back
// to private storage so a mutator may write. Mutators call it only once a
// real change is certain, so every promotion the counters report paid for an
// actual write.
func (s *Set) unshare() {
	e := s.shared
	if e == nil {
		return
	}
	nw := make([]uint64, len(s.words))
	copy(nw, s.words)
	s.words = nw
	s.shared = nil
	e.pool.promotions.Add(1)
}
