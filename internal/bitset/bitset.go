// Package bitset provides compact integer sets used as points-to sets by the
// pointer-analysis solver. Node identifiers are small dense integers, so the
// set is backed by a word array indexed by id/64.
//
// The zero value of Set is an empty set ready for use.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a set of non-negative integers backed by a bit vector.
type Set struct {
	words []uint64
	count int // cached cardinality; always kept in sync
}

// New returns an empty set with capacity hint n.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// grow ensures the set can hold element x.
func (s *Set) grow(x int) {
	need := x/wordBits + 1
	if need <= len(s.words) {
		return
	}
	nw := make([]uint64, need+need/2)
	copy(nw, s.words)
	s.words = nw
}

// Add inserts x and reports whether the set changed.
func (s *Set) Add(x int) bool {
	if x < 0 {
		panic(fmt.Sprintf("bitset: negative element %d", x))
	}
	s.grow(x)
	w, b := x/wordBits, uint(x%wordBits)
	if s.words[w]&(1<<b) != 0 {
		return false
	}
	s.words[w] |= 1 << b
	s.count++
	return true
}

// Remove deletes x and reports whether the set changed.
func (s *Set) Remove(x int) bool {
	if x < 0 || x/wordBits >= len(s.words) {
		return false
	}
	w, b := x/wordBits, uint(x%wordBits)
	if s.words[w]&(1<<b) == 0 {
		return false
	}
	s.words[w] &^= 1 << b
	s.count--
	return true
}

// Has reports whether x is in the set.
func (s *Set) Has(x int) bool {
	if x < 0 {
		return false
	}
	w := x / wordBits
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<uint(x%wordBits)) != 0
}

// Len returns the cardinality of the set.
func (s *Set) Len() int { return s.count }

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool { return s.count == 0 }

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	if t == nil || t.count == 0 {
		return false
	}
	if len(t.words) > len(s.words) {
		nw := make([]uint64, len(t.words))
		copy(nw, s.words)
		s.words = nw
	}
	changed := false
	for i, tw := range t.words {
		if tw == 0 {
			continue
		}
		old := s.words[i]
		merged := old | tw
		if merged != old {
			s.words[i] = merged
			s.count += bits.OnesCount64(merged) - bits.OnesCount64(old)
			changed = true
		}
	}
	return changed
}

// DifferenceWith removes every element of t from s.
func (s *Set) DifferenceWith(t *Set) {
	if t == nil {
		return
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		old := s.words[i]
		cleared := old &^ t.words[i]
		if cleared != old {
			s.words[i] = cleared
			s.count -= bits.OnesCount64(old) - bits.OnesCount64(cleared)
		}
	}
}

// IntersectWith keeps only elements present in both s and t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		var tw uint64
		if t != nil && i < len(t.words) {
			tw = t.words[i]
		}
		old := s.words[i]
		kept := old & tw
		if kept != old {
			s.words[i] = kept
			s.count -= bits.OnesCount64(old) - bits.OnesCount64(kept)
		}
	}
}

// Intersects reports whether s and t share any element.
func (s *Set) Intersects(t *Set) bool {
	if t == nil {
		return false
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, sw := range s.words {
		if sw == 0 {
			continue
		}
		var tw uint64
		if t != nil && i < len(t.words) {
			tw = t.words[i]
		}
		if sw&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	if t == nil {
		return s.count == 0
	}
	if s.count != t.count {
		return false
	}
	return s.SubsetOf(t)
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), count: s.count}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// ForEach calls f for each element in ascending order. If f returns false,
// iteration stops.
func (s *Set) ForEach(f func(x int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(i*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Elements returns the elements in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.count)
	s.ForEach(func(x int) bool {
		out = append(out, x)
		return true
	})
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(x int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", x)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
