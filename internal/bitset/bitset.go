// Package bitset provides compact integer sets used as points-to sets by the
// pointer-analysis solver. Node identifiers are small dense integers, so the
// large-set representation is a word array indexed by id/64.
//
// Most points-to sets in a real solve are tiny — singletons and doubletons
// dominate — so Set is a hybrid: up to InlineThreshold elements live in a
// small inline array (no heap allocation beyond the Set itself, no O(max/64)
// word scans), and the set promotes itself to the bit-vector representation
// on the first Add that would exceed the threshold. Promotion is one-way:
// removals never demote a vector back to the inline form.
//
// The zero value of Set is an empty (inline) set ready for use.
//
// Concurrency: a Set carries no locks. Methods that mutate the receiver
// (Add, Remove, UnionWith, UnionDelta, DifferenceWith, IntersectWith, Clear)
// require exclusive access. Methods that only read the receiver and their
// arguments (Has, Len, Empty, ForEach, Elements, Min, Max, SubsetOf, Equal,
// Intersects, Clone, Difference, String) are safe to call from any number of
// goroutines concurrently, provided no goroutine mutates the sets involved
// for the duration — the read-only phases of the parallel wave solver
// (internal/pointsto) rely on exactly this contract, with mutation confined
// to the level barriers.
//
// Sharing: a vector-mode set may be interned in a Pool (intern.go), after
// which its storage is canonical and shared with every other holder of the
// same content. Shared sets keep the exact same API and concurrency
// contract; the only behavioral differences are that mutators transparently
// copy the storage back to private ownership before the first real write
// (copy-on-write promotion) and that Elements returns the canonical memoized
// slice, which callers must not modify.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// InlineThreshold is the maximum cardinality the inline small-set
// representation holds. A set stays inline until the Add that would create
// its (InlineThreshold+1)-th element, at which point it promotes to the
// bit-vector representation and never demotes. The value is pinned by
// TestInlinePromotionPoint; changing it changes allocation behavior but not
// semantics.
const InlineThreshold = 4

// Set is a hybrid set of non-negative integers: an inline sorted array up to
// InlineThreshold elements, a bit vector beyond.
//
// Representation invariant: words == nil means inline mode, where
// small[:count] holds the elements sorted ascending and distinct; words !=
// nil means vector mode, where count caches the vector's cardinality. A
// non-nil shared implies vector mode with words aliasing the pool entry's
// canonical (immutable) storage; any mutator un-shares before writing.
type Set struct {
	small  [InlineThreshold]int32
	words  []uint64
	count  int
	shared *internEntry
}

// New returns an empty set. A positive capacity hint n pre-sizes the
// bit-vector representation for elements in [0, n); n <= 0 (the common case
// for points-to sets, which are usually tiny) starts in inline mode.
func New(n int) *Set {
	if n <= 0 {
		return &Set{}
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// inline reports whether s is in inline mode.
func (s *Set) inline() bool { return s.words == nil }

// promote converts an inline set to vector mode with room for maxElem.
func (s *Set) promote(maxElem int) {
	if s.count > 0 && int(s.small[s.count-1]) > maxElem {
		maxElem = int(s.small[s.count-1])
	}
	words := make([]uint64, maxElem/wordBits+1)
	for i := 0; i < s.count; i++ {
		x := s.small[i]
		words[int(x)/wordBits] |= 1 << uint(int(x)%wordBits)
	}
	s.words = words
}

// grow ensures a vector-mode set can hold element x. Capacity doubles from
// the current word count (respecting whatever New's hint or earlier growth
// already allocated) instead of over-allocating 50% past the needed index,
// so a single large outlier element costs exactly its own words.
func (s *Set) grow(x int) {
	need := x/wordBits + 1
	if need <= len(s.words) {
		return
	}
	newCap := 2 * len(s.words)
	if newCap < need {
		newCap = need
	}
	nw := make([]uint64, newCap)
	copy(nw, s.words)
	s.words = nw
}

// Add inserts x and reports whether the set changed.
func (s *Set) Add(x int) bool {
	if x < 0 {
		panic(fmt.Sprintf("bitset: negative element %d", x))
	}
	if s.inline() {
		i := 0
		for ; i < s.count; i++ {
			if int(s.small[i]) == x {
				return false
			}
			if int(s.small[i]) > x {
				break
			}
		}
		if s.count < InlineThreshold && x <= 1<<31-1 {
			copy(s.small[i+1:s.count+1], s.small[i:s.count])
			s.small[i] = int32(x)
			s.count++
			return true
		}
		s.promote(x)
	}
	w, b := x/wordBits, uint(x%wordBits)
	if w < len(s.words) && s.words[w]&(1<<b) != 0 {
		return false
	}
	s.unshare()
	s.grow(x)
	s.words[w] |= 1 << b
	s.count++
	return true
}

// Remove deletes x and reports whether the set changed.
func (s *Set) Remove(x int) bool {
	if x < 0 {
		return false
	}
	if s.inline() {
		for i := 0; i < s.count; i++ {
			if int(s.small[i]) == x {
				copy(s.small[i:s.count-1], s.small[i+1:s.count])
				s.count--
				return true
			}
		}
		return false
	}
	if x/wordBits >= len(s.words) {
		return false
	}
	w, b := x/wordBits, uint(x%wordBits)
	if s.words[w]&(1<<b) == 0 {
		return false
	}
	s.unshare()
	s.words[w] &^= 1 << b
	s.count--
	return true
}

// Has reports whether x is in the set.
func (s *Set) Has(x int) bool {
	if x < 0 {
		return false
	}
	if s.inline() {
		for i := 0; i < s.count; i++ {
			if int(s.small[i]) == x {
				return true
			}
		}
		return false
	}
	w := x / wordBits
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<uint(x%wordBits)) != 0
}

// Len returns the cardinality of the set.
func (s *Set) Len() int { return s.count }

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool { return s.count == 0 }

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	if t == nil || t.count == 0 {
		return false
	}
	if t.inline() {
		changed := false
		for i := 0; i < t.count; i++ {
			if s.Add(int(t.small[i])) {
				changed = true
			}
		}
		return changed
	}
	if s.inline() {
		s.promote(len(t.words)*wordBits - 1)
	}
	if s.shared != nil {
		// Prove a real change before paying the copy-on-write: sharing the
		// same canonical entry or already covering t means no write at all.
		if s.shared == t.shared || t.SubsetOf(s) {
			return false
		}
		s.unshare()
	}
	if len(t.words) > len(s.words) {
		nw := make([]uint64, len(t.words))
		copy(nw, s.words)
		s.words = nw
	}
	changed := false
	for i, tw := range t.words {
		if tw == 0 {
			continue
		}
		old := s.words[i]
		merged := old | tw
		if merged != old {
			s.words[i] = merged
			s.count += bits.OnesCount64(merged) - bits.OnesCount64(old)
			changed = true
		}
	}
	return changed
}

// UnionDelta adds every element of t to s, records each element newly set in
// s into delta, and returns the number of newly-set bits. It is the solver's
// difference-propagation fast path: one pass computes both the union and the
// delta instead of a UnionWith followed by a set difference. delta may be
// nil, in which case only the union and the changed-bit count remain.
func (s *Set) UnionDelta(t, delta *Set) int {
	if t == nil || t.count == 0 {
		return 0
	}
	added := 0
	if t.inline() || s.inline() {
		// At least one side is small: element-wise insertion is both the
		// simple and the fast path (s stays inline when the union fits).
		record := func(x int) {
			if s.Add(x) {
				if delta != nil {
					delta.Add(x)
				}
				added++
			}
		}
		if t.inline() {
			for i := 0; i < t.count; i++ {
				record(int(t.small[i]))
			}
		} else {
			t.ForEach(func(x int) bool { record(x); return true })
		}
		return added
	}
	if s.shared != nil {
		if s.shared == t.shared || t.SubsetOf(s) {
			return 0
		}
		s.unshare()
	}
	if len(t.words) > len(s.words) {
		nw := make([]uint64, len(t.words))
		copy(nw, s.words)
		s.words = nw
	}
	for i, tw := range t.words {
		if tw == 0 {
			continue
		}
		fresh := tw &^ s.words[i]
		if fresh == 0 {
			continue
		}
		s.words[i] |= tw
		n := bits.OnesCount64(fresh)
		s.count += n
		added += n
		if delta != nil {
			for w := fresh; w != 0; {
				b := bits.TrailingZeros64(w)
				delta.Add(i*wordBits + b)
				w &^= 1 << uint(b)
			}
		}
	}
	return added
}

// DifferenceWith removes every element of t from s.
func (s *Set) DifferenceWith(t *Set) {
	if t == nil || t.count == 0 {
		return
	}
	if s.inline() || t.inline() {
		// Iterate the smaller structure element-wise.
		if t.inline() {
			for i := 0; i < t.count; i++ {
				s.Remove(int(t.small[i]))
			}
			return
		}
		for i := s.count - 1; i >= 0; i-- {
			if t.Has(int(s.small[i])) {
				copy(s.small[i:s.count-1], s.small[i+1:s.count])
				s.count--
			}
		}
		return
	}
	if s.shared != nil {
		if s.shared == t.shared {
			s.Clear()
			return
		}
		if !s.Intersects(t) {
			return
		}
		s.unshare()
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		old := s.words[i]
		cleared := old &^ t.words[i]
		if cleared != old {
			s.words[i] = cleared
			s.count -= bits.OnesCount64(old) - bits.OnesCount64(cleared)
		}
	}
}

// Difference returns a new set holding s \ t without mutating either
// operand. It reads both sets only, so concurrent callers may share s and t
// freely (see the package concurrency note); the parallel solver's gather
// workers use it to stage propagation diffs against live points-to sets. A
// nil t yields a clone of s.
func (s *Set) Difference(t *Set) *Set {
	out := &Set{}
	if s.count == 0 {
		return out
	}
	if t != nil && s.shared != nil && s.shared == t.shared {
		return out
	}
	if t == nil || t.count == 0 {
		return s.Clone()
	}
	if s.inline() || t.inline() {
		s.ForEach(func(x int) bool {
			if !t.Has(x) {
				out.Add(x)
			}
			return true
		})
		return out
	}
	words := make([]uint64, len(s.words))
	n := 0
	for i, sw := range s.words {
		if i < len(t.words) {
			sw &^= t.words[i]
		}
		words[i] = sw
		n += bits.OnesCount64(sw)
	}
	if n == 0 {
		return out
	}
	out.words = words
	out.count = n
	return out
}

// IntersectWith keeps only elements present in both s and t.
func (s *Set) IntersectWith(t *Set) {
	if s.shared != nil {
		if (t != nil && s.shared == t.shared) || s.SubsetOf(t) {
			return
		}
		s.unshare()
	}
	if s.inline() {
		kept := 0
		for i := 0; i < s.count; i++ {
			if t != nil && t.Has(int(s.small[i])) {
				s.small[kept] = s.small[i]
				kept++
			}
		}
		s.count = kept
		return
	}
	if t == nil || t.inline() {
		for i := range s.words {
			w := s.words[i]
			for bw := w; bw != 0; {
				b := bits.TrailingZeros64(bw)
				if t == nil || !t.Has(i*wordBits+b) {
					w &^= 1 << uint(b)
					s.count--
				}
				bw &^= 1 << uint(b)
			}
			s.words[i] = w
		}
		return
	}
	for i := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		old := s.words[i]
		kept := old & tw
		if kept != old {
			s.words[i] = kept
			s.count -= bits.OnesCount64(old) - bits.OnesCount64(kept)
		}
	}
}

// Intersects reports whether s and t share any element.
func (s *Set) Intersects(t *Set) bool {
	if t == nil {
		return false
	}
	if s.shared != nil && s.shared == t.shared {
		return s.count > 0
	}
	if s.inline() {
		for i := 0; i < s.count; i++ {
			if t.Has(int(s.small[i])) {
				return true
			}
		}
		return false
	}
	if t.inline() {
		return t.Intersects(s)
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	if t != nil && s.shared != nil && s.shared == t.shared {
		return true
	}
	if s.inline() {
		for i := 0; i < s.count; i++ {
			if t == nil || !t.Has(int(s.small[i])) {
				return false
			}
		}
		return true
	}
	if t == nil || t.inline() {
		if t == nil {
			return s.count == 0
		}
		if s.count > t.count {
			return false
		}
		ok := true
		s.ForEach(func(x int) bool {
			if !t.Has(x) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	for i, sw := range s.words {
		if sw == 0 {
			continue
		}
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if sw&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements. On sets
// interned in the same Pool this is a pointer comparison on the canonical
// entry — content never gets touched.
func (s *Set) Equal(t *Set) bool {
	if t == nil {
		return s.count == 0
	}
	if s == t || (s.shared != nil && s.shared == t.shared) {
		return true
	}
	if s.count != t.count {
		return false
	}
	return s.SubsetOf(t)
}

// Clone returns an independent copy of s, preserving its representation. A
// shared (interned) set clones for free: the copy aliases the same canonical
// storage, and copy-on-write keeps the two independent under mutation.
func (s *Set) Clone() *Set {
	if s.shared != nil {
		c := *s
		return &c
	}
	c := &Set{small: s.small, count: s.count}
	if s.words != nil {
		c.words = make([]uint64, len(s.words))
		copy(c.words, s.words)
	}
	return c
}

// Clear removes all elements, retaining a vector's capacity (an inline set
// stays inline; a promoted set stays promoted). A shared set detaches from
// its canonical entry with a fresh zero buffer instead of copying storage it
// is about to erase.
func (s *Set) Clear() {
	if s.count == 0 {
		return
	}
	if e := s.shared; e != nil {
		s.words = make([]uint64, len(s.words))
		s.shared = nil
		s.count = 0
		e.pool.promotions.Add(1)
		return
	}
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// ForEach calls f for each element in ascending order. If f returns false,
// iteration stops.
func (s *Set) ForEach(f func(x int) bool) {
	if s.inline() {
		for i := 0; i < s.count; i++ {
			if !f(int(s.small[i])) {
				return
			}
		}
		return
	}
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(i*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Elements returns the elements in ascending order. On a shared (interned)
// set this returns the canonical memoized slice — computed once per pool
// entry and aliased by every holder of the same content — so callers must
// treat the result as read-only. Private sets get a fresh slice as before.
func (s *Set) Elements() []int {
	if e := s.shared; e != nil {
		return e.elements()
	}
	out := make([]int, 0, s.count)
	s.ForEach(func(x int) bool {
		out = append(out, x)
		return true
	})
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	if s.inline() {
		if s.count == 0 {
			return -1
		}
		return int(s.small[0])
	}
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	if s.inline() {
		if s.count == 0 {
			return -1
		}
		return int(s.small[s.count-1])
	}
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(x int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", x)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
