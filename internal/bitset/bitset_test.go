package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(0)
	if s.Has(3) {
		t.Fatal("empty set reports membership")
	}
	if !s.Add(3) {
		t.Fatal("Add of new element returned false")
	}
	if s.Add(3) {
		t.Fatal("Add of existing element returned true")
	}
	if !s.Has(3) || s.Len() != 1 {
		t.Fatalf("set state after Add: has=%v len=%d", s.Has(3), s.Len())
	}
	if !s.Remove(3) {
		t.Fatal("Remove of existing element returned false")
	}
	if s.Remove(3) {
		t.Fatal("Remove of missing element returned true")
	}
	if s.Has(3) || s.Len() != 0 {
		t.Fatalf("set state after Remove: has=%v len=%d", s.Has(3), s.Len())
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestGrowthAcrossWords(t *testing.T) {
	s := New(0)
	elems := []int{0, 63, 64, 127, 128, 1000, 4096}
	for _, e := range elems {
		s.Add(e)
	}
	for _, e := range elems {
		if !s.Has(e) {
			t.Errorf("missing %d", e)
		}
	}
	if s.Len() != len(elems) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(elems))
	}
	got := s.Elements()
	want := append([]int(nil), elems...)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(1)
	a.Add(100)
	b.Add(2)
	b.Add(100)
	b.Add(500)
	if !a.UnionWith(b) {
		t.Fatal("union with new elements reported no change")
	}
	if a.UnionWith(b) {
		t.Fatal("idempotent union reported change")
	}
	for _, e := range []int{1, 2, 100, 500} {
		if !a.Has(e) {
			t.Errorf("union missing %d", e)
		}
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	if a.UnionWith(nil) {
		t.Fatal("union with nil reported change")
	}
}

func TestDifferenceWith(t *testing.T) {
	a, b := New(0), New(0)
	for _, e := range []int{1, 2, 3, 200} {
		a.Add(e)
	}
	b.Add(2)
	b.Add(200)
	b.Add(999) // not in a
	a.DifferenceWith(b)
	if a.Has(2) || a.Has(200) {
		t.Fatal("difference retained removed elements")
	}
	if !a.Has(1) || !a.Has(3) || a.Len() != 2 {
		t.Fatalf("difference wrong: %v", a)
	}
}

func TestIntersectWith(t *testing.T) {
	a, b := New(0), New(0)
	for _, e := range []int{1, 2, 3, 64, 65} {
		a.Add(e)
	}
	for _, e := range []int{2, 65, 1000} {
		b.Add(e)
	}
	a.IntersectWith(b)
	if a.Len() != 2 || !a.Has(2) || !a.Has(65) {
		t.Fatalf("intersect wrong: %v", a)
	}
}

func TestIntersectsAndSubset(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(10)
	a.Add(70)
	b.Add(70)
	if !a.Intersects(b) {
		t.Fatal("Intersects false for overlapping sets")
	}
	if b.Intersects(New(0)) {
		t.Fatal("Intersects true with empty set")
	}
	if !b.SubsetOf(a) {
		t.Fatal("SubsetOf false for subset")
	}
	if a.SubsetOf(b) {
		t.Fatal("SubsetOf true for superset")
	}
	if !New(0).SubsetOf(b) {
		t.Fatal("empty set not subset")
	}
}

func TestEqualClone(t *testing.T) {
	a := New(0)
	for _, e := range []int{5, 6, 900} {
		a.Add(e)
	}
	c := a.Clone()
	if !a.Equal(c) || !c.Equal(a) {
		t.Fatal("clone not equal")
	}
	c.Add(7)
	if a.Equal(c) || a.Has(7) {
		t.Fatal("clone aliases original")
	}
	if !New(0).Equal(nil) {
		t.Fatal("empty set should equal nil")
	}
}

func TestClearMinMax(t *testing.T) {
	s := New(0)
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatal("min/max of empty set")
	}
	s.Add(42)
	s.Add(7)
	s.Add(300)
	if s.Min() != 7 || s.Max() != 300 {
		t.Fatalf("min=%d max=%d", s.Min(), s.Max())
	}
	s.Clear()
	if s.Len() != 0 || s.Has(42) {
		t.Fatal("Clear did not empty set")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.Add(i * 3)
	}
	n := 0
	s.ForEach(func(x int) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early stop visited %d elements, want 4", n)
	}
}

func TestString(t *testing.T) {
	s := New(0)
	if got := s.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	s.Add(1)
	s.Add(5)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: the bitset behaves identically to a reference map-based set under
// random operation sequences.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(0)
		ref := map[int]bool{}
		for _, op := range ops {
			x := int(op % 512)
			switch op % 3 {
			case 0:
				added := s.Add(x)
				if added == ref[x] {
					return false
				}
				ref[x] = true
			case 1:
				removed := s.Remove(x)
				if removed != ref[x] {
					return false
				}
				delete(ref, x)
			case 2:
				if s.Has(x) != ref[x] {
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for x := range ref {
			if !s.Has(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative with respect to membership.
func TestQuickUnionCommutative(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(0), New(0)
		for _, x := range xs {
			a.Add(int(x % 1024))
		}
		for _, y := range ys {
			b.Add(int(y % 1024))
		}
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: A ⊆ A∪B and B ⊆ A∪B; (A∪B)∖B ⊆ A.
func TestQuickUnionDifferenceLaws(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(0), New(0)
		for _, x := range xs {
			a.Add(int(x % 1024))
		}
		for _, y := range ys {
			b.Add(int(y % 1024))
		}
		u := a.Clone()
		u.UnionWith(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		d := u.Clone()
		d.DifferenceWith(b)
		return d.SubsetOf(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionBitset(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := New(0)
	for i := 0; i < 500; i++ {
		src.Add(rng.Intn(8192))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := New(8192)
		dst.UnionWith(src)
	}
}

func BenchmarkUnionMapSet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := map[int]bool{}
	for i := 0; i < 500; i++ {
		src[rng.Intn(8192)] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := make(map[int]bool, len(src))
		for k := range src {
			dst[k] = true
		}
	}
}

// InlineThreshold pin: the hybrid representation stays inline through
// exactly InlineThreshold elements and promotes on the next Add. The
// constant is part of the package's allocation contract (points-to sets are
// overwhelmingly singletons/doubletons), so a change here must be deliberate.
func TestInlinePromotionPoint(t *testing.T) {
	if InlineThreshold != 4 {
		t.Fatalf("InlineThreshold = %d, want 4 (update this pin deliberately)", InlineThreshold)
	}
	s := New(0)
	if !s.inline() {
		t.Fatal("New(0) should start inline")
	}
	for i := 0; i < InlineThreshold; i++ {
		s.Add(i * 100)
		if !s.inline() {
			t.Fatalf("promoted at %d elements, below threshold", i+1)
		}
	}
	s.Add(9999)
	if s.inline() {
		t.Fatal("no promotion past InlineThreshold elements")
	}
	want := []int{0, 100, 200, 300, 9999}
	got := s.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
	// Removing back below the threshold must not demote (one-way promotion).
	for _, x := range want[1:] {
		s.Remove(x)
	}
	if s.inline() {
		t.Fatal("vector demoted to inline after removals")
	}
	if s.Len() != 1 || !s.Has(0) {
		t.Fatalf("post-removal state wrong: %v", s)
	}
}

// New's positive hint selects the vector representation up front.
func TestNewHintIsVector(t *testing.T) {
	s := New(128)
	if s.inline() {
		t.Fatal("New(128) should be vector mode")
	}
	if len(s.words) != 2 {
		t.Fatalf("New(128) allocated %d words, want 2", len(s.words))
	}
}

// grow must not over-allocate past a single large outlier element: capacity
// doubles from the current allocation, and a jump allocates exactly the
// needed words (the old need+need/2 policy added 50% slack on top).
func TestGrowNoOverAllocation(t *testing.T) {
	s := New(64) // 1 word
	s.Add(1_000_000)
	need := 1_000_000/64 + 1
	if len(s.words) != need {
		t.Fatalf("outlier growth allocated %d words, want exactly %d", len(s.words), need)
	}
	// Incremental growth doubles from current capacity (amortized O(1)),
	// honoring the capacity New's hint implied.
	d := New(6400) // 100 words
	d.Add(6400)
	if len(d.words) != 200 {
		t.Fatalf("incremental growth allocated %d words, want 200 (doubling)", len(d.words))
	}
}

func TestUnionDelta(t *testing.T) {
	check := func(t *testing.T, dst, src *Set, wantNew []int) {
		t.Helper()
		before := dst.Clone()
		delta := New(0)
		n := dst.UnionDelta(src, delta)
		if n != len(wantNew) {
			t.Fatalf("UnionDelta returned %d, want %d", n, len(wantNew))
		}
		if got := delta.Elements(); len(got) != len(wantNew) {
			t.Fatalf("delta = %v, want %v", got, wantNew)
		} else {
			for i := range wantNew {
				if got[i] != wantNew[i] {
					t.Fatalf("delta = %v, want %v", got, wantNew)
				}
			}
		}
		// dst must now be the union.
		u := before.Clone()
		u.UnionWith(src)
		if !dst.Equal(u) {
			t.Fatalf("dst = %v, want %v", dst, u)
		}
		// Idempotence: a second UnionDelta adds nothing.
		if again := dst.UnionDelta(src, New(0)); again != 0 {
			t.Fatalf("repeated UnionDelta added %d bits", again)
		}
	}
	mk := func(xs ...int) *Set {
		s := New(0)
		for _, x := range xs {
			s.Add(x)
		}
		return s
	}
	big := func(xs ...int) *Set {
		s := mk(xs...)
		s.Add(70000) // force vector mode
		s.Remove(70000)
		return s
	}
	t.Run("inline-inline", func(t *testing.T) { check(t, mk(1, 2), mk(2, 3), []int{3}) })
	t.Run("inline-vector", func(t *testing.T) { check(t, mk(1), big(1, 64, 500), []int{64, 500}) })
	t.Run("vector-inline", func(t *testing.T) { check(t, big(5, 6), mk(6, 7), []int{7}) })
	t.Run("vector-vector", func(t *testing.T) { check(t, big(0, 63, 64), big(63, 64, 65, 4096), []int{65, 4096}) })
	t.Run("empty-src", func(t *testing.T) { check(t, mk(1), mk(), nil) })
	t.Run("nil-src", func(t *testing.T) {
		s := mk(1)
		if n := s.UnionDelta(nil, New(0)); n != 0 {
			t.Fatalf("UnionDelta(nil) = %d", n)
		}
	})
	t.Run("nil-delta", func(t *testing.T) {
		s := mk(1)
		if n := s.UnionDelta(mk(2, 3), nil); n != 2 || s.Len() != 3 {
			t.Fatalf("nil-delta UnionDelta: n=%d set=%v", n, s)
		}
	})
}

// Property: UnionDelta(t, delta) leaves s equal to UnionWith(t), with delta
// holding exactly the new elements, across representation boundaries.
func TestQuickUnionDeltaMatchesUnion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(0), New(0)
		for _, x := range xs {
			a.Add(int(x % 300))
		}
		for _, y := range ys {
			b.Add(int(y % 300))
		}
		viaUnion := a.Clone()
		viaUnion.UnionWith(b)
		wantDelta := viaUnion.Clone()
		wantDelta.DifferenceWith(a)
		delta := New(0)
		n := a.UnionDelta(b, delta)
		return a.Equal(viaUnion) && delta.Equal(wantDelta) && n == wantDelta.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
