package interp

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Hooks receives instrumentation callbacks during execution. The memory-view
// runtime (internal/memview) implements Hooks to evaluate likely-invariant
// monitors and CFI checks; a nil hook method set (NopHooks) runs the program
// unhardened.
type Hooks interface {
	// PtrAdd fires at instrumented PtrAdd sites with the base pointer value
	// (PA invariant monitors, §4.2).
	PtrAdd(site int, base Value)
	// FieldAddr fires at instrumented FieldAddr sites with the base pointer
	// and the generated field address (PWC invariant monitors, §4.3).
	FieldAddr(site int, base, result Value)
	// CtxCall fires at instrumented direct callsites with the recorded
	// actual arguments (Ctx invariant, §4.4).
	CtxCall(site int, args []Value)
	// CtxCheck fires at precision-critical stores/returns with the current
	// values of the critical parameters.
	CtxCheck(site int, vals []Value)
	// CheckICall authorizes an indirect call under the active memory view;
	// returning false blocks the call (CFI violation).
	CheckICall(site int, target string) bool
}

// NopHooks is the no-instrumentation Hooks implementation.
type NopHooks struct{}

func (NopHooks) PtrAdd(int, Value)           {}
func (NopHooks) FieldAddr(int, Value, Value) {}
func (NopHooks) CtxCall(int, []Value)        {}
func (NopHooks) CtxCheck(int, []Value)       {}
func (NopHooks) CheckICall(int, string) bool { return true }

// Instrumentation selects which sites trigger hooks.
type Instrumentation struct {
	PtrAddSites map[int]bool                  // PtrAdd instruction IDs with PA monitors
	FieldSites  map[int]bool                  // FieldAddr instruction IDs with PWC monitors
	CtxCallArgs map[int][]int                 // callsite instr ID -> actual-argument positions to record
	CtxChecks   map[int][]invariant.CtxSample // store/ret instr ID -> critical-parameter samples
	CheckICalls bool                          // CFI-check all indirect callsites
}

// NumMonitorSites counts distinct instrumented monitor sites (excluding CFI
// checks), for the coverage tables.
func (ins *Instrumentation) NumMonitorSites() int {
	seen := map[int]bool{}
	for s := range ins.PtrAddSites {
		seen[s] = true
	}
	for s := range ins.FieldSites {
		seen[s] = true
	}
	for s := range ins.CtxCallArgs {
		seen[s] = true
	}
	for s := range ins.CtxChecks {
		seen[s] = true
	}
	return len(seen)
}

// Config controls execution.
type Config struct {
	StepLimit     int64 // 0 = default (50M)
	TrackPointsTo bool  // record dynamic points-to observations
	Hooks         Hooks
	Instr         *Instrumentation
	HeapSlots     int // runtime slots for unknown-type mallocs (default 16)
	MaxDepth      int // call-stack depth limit (default 512)
	// Metrics, when non-nil, receives per-run execution telemetry: steps,
	// memory operations, monitor fires per invariant kind, and CFI lookups.
	Metrics *telemetry.Registry
}

// CFIViolation is returned when an indirect call is blocked by the active
// memory view.
type CFIViolation struct {
	Site   int
	Target string
}

func (e *CFIViolation) Error() string {
	return fmt.Sprintf("interp: CFI violation at callsite #%d: target %s not permitted", e.Site, e.Target)
}

// RuntimeError is a memory-safety or resource-limit fault.
type RuntimeError struct {
	Site int
	Msg  string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("interp: #%d: %s", e.Site, e.Msg) }

// Machine executes one module.
type Machine struct {
	mod     *ir.Module
	layouts *ir.Layouts
	cfg     Config
	hooks   Hooks
	instr   *Instrumentation
	funcs   map[string]*cfunc

	globals map[string]*RObj
	trace   *Trace
	inputs  []int64
	inPos   int
	steps   int64
	depth   int
	fires   monitorFires
}

// monitorFires accumulates hook invocations per kind for one Run. Counts are
// kept as plain locals on the machine (no atomics on the hot path) and
// flushed into the telemetry registry when the run finishes.
type monitorFires struct {
	ptrAdd   int64 // PA monitors fired
	field    int64 // PWC monitors fired
	ctxCall  int64 // Ctx callsite recordings
	ctxCheck int64 // Ctx critical-site checks
	cfi      int64 // CFI target lookups
}

// New creates a machine for m.
func New(m *ir.Module, cfg Config) *Machine {
	if cfg.StepLimit == 0 {
		cfg.StepLimit = 50_000_000
	}
	if cfg.HeapSlots == 0 {
		cfg.HeapSlots = 16
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 512
	}
	if cfg.Hooks == nil {
		cfg.Hooks = NopHooks{}
	}
	if cfg.Instr == nil {
		cfg.Instr = &Instrumentation{}
	}
	mc := &Machine{
		mod:     m,
		layouts: ir.NewLayouts(),
		cfg:     cfg,
		hooks:   cfg.Hooks,
		instr:   cfg.Instr,
	}
	mc.funcs = compileModule(m, mc.layouts, mc.instr)
	return mc
}

// Run executes the named entry function on a fresh memory image with the
// given input stream, returning the execution trace. CFI violations and
// runtime faults are reported in Trace.Err (the trace up to the fault is
// valid).
func (mc *Machine) Run(entry string, inputs []int64) *Trace {
	_, finish := mc.cfg.Metrics.StartSpan("interp/run", nil)
	defer finish()
	mc.globals = map[string]*RObj{}
	for _, g := range mc.mod.Globals {
		l := mc.layouts.Of(g.Type)
		mc.globals[g.Name] = &RObj{
			Key:    AbsKey{Kind: AbsGlobal, Name: g.Name},
			Type:   g.Type,
			Slots:  make([]Value, l.RuntimeSize),
			layout: l,
			name:   "@" + g.Name,
		}
	}
	mc.trace = newTrace(mc.mod)
	mc.inputs = inputs
	mc.inPos = 0
	mc.steps = 0
	mc.depth = 0
	mc.fires = monitorFires{}
	f := mc.funcs[entry]
	if f == nil {
		mc.trace.Err = &RuntimeError{Msg: fmt.Sprintf("no entry function %q", entry)}
		return mc.trace
	}
	ret, err := mc.call(f, nil)
	mc.trace.Err = err
	if err == nil && ret.Kind == KindInt {
		mc.trace.Result = ret.Int
	}
	mc.trace.Steps = mc.steps
	mc.flushMetrics()
	return mc.trace
}

// flushMetrics exports one run's execution counts into the telemetry
// registry (no-op without one).
func (mc *Machine) flushMetrics() {
	r := mc.cfg.Metrics
	if r == nil {
		return
	}
	r.Counter("interp/runs").Inc()
	r.Counter("interp/steps").Add(mc.steps)
	r.Histogram("interp/steps-per-run").Observe(mc.steps)
	r.Counter("interp/memops").Add(mc.trace.MemOps)
	r.Counter("interp/monitor/ptradd").Add(mc.fires.ptrAdd)
	r.Counter("interp/monitor/fieldaddr").Add(mc.fires.field)
	r.Counter("interp/monitor/ctxcall").Add(mc.fires.ctxCall)
	r.Counter("interp/monitor/ctxcheck").Add(mc.fires.ctxCheck)
	r.Counter("interp/cfi/lookups").Add(mc.fires.cfi)
}
