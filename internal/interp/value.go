// Package interp executes KIR modules. It provides the runtime substrate the
// paper obtains from native execution of hardened binaries: concrete memory
// with per-object bounds, indirect-call dispatch guarded by CFI checks,
// runtime-monitor hook points, branch coverage accounting, and dynamic
// points-to observation (the "Runtime Observed" series of Figure 1).
package interp

import (
	"fmt"

	"repro/internal/ir"
)

// ValueKind discriminates runtime values.
type ValueKind uint8

// Runtime value kinds.
const (
	KindInt ValueKind = iota // integer (0 doubles as the null pointer)
	KindPtr                  // pointer to a slot of a runtime object
	KindFn                   // function pointer
)

// Value is a runtime value: an integer, a pointer (object + runtime slot
// offset), or a function pointer.
type Value struct {
	Kind ValueKind
	Int  int64
	Obj  *RObj
	Off  int
	Fn   string
}

// IntVal makes an integer value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// PtrVal makes a pointer value.
func PtrVal(obj *RObj, off int) Value { return Value{Kind: KindPtr, Obj: obj, Off: off} }

// FnVal makes a function-pointer value.
func FnVal(name string) Value { return Value{Kind: KindFn, Fn: name} }

// IsNull reports whether v is the null pointer (integer zero).
func (v Value) IsNull() bool { return v.Kind == KindInt && v.Int == 0 }

// Truthy implements condition evaluation: non-zero integers and all pointers
// are true.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.Int != 0
	default:
		return true
	}
}

// Equal implements == on runtime values. Pointers compare by object+offset;
// a pointer equals an integer only if the integer is 0 (null) — and then the
// comparison is false because a valid pointer is never null.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false // includes ptr == 0 (null): always false for live pointers
	}
	switch v.Kind {
	case KindInt:
		return v.Int == w.Int
	case KindPtr:
		return v.Obj == w.Obj && v.Off == w.Off
	default:
		return v.Fn == w.Fn
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindPtr:
		return fmt.Sprintf("&%s+%d", v.Obj.Label(), v.Off)
	default:
		return "&" + v.Fn
	}
}

// AbsKey identifies the abstract (analysis-level) object a runtime object
// corresponds to: globals and functions by name, stack/heap objects by
// allocation-site instruction ID.
type AbsKey struct {
	Kind AbsKind
	Name string // global/function name
	Site int    // allocation instruction ID
}

// AbsKind mirrors the abstract object classes.
type AbsKind uint8

// Abstract object classes for runtime→analysis mapping.
const (
	AbsGlobal AbsKind = iota
	AbsStack
	AbsHeap
	AbsFunc
)

func (k AbsKey) String() string {
	switch k.Kind {
	case AbsGlobal:
		return "@" + k.Name
	case AbsFunc:
		return k.Name + "()"
	case AbsStack:
		return fmt.Sprintf("stack#%d", k.Site)
	default:
		return fmt.Sprintf("heap#%d", k.Site)
	}
}

// RObj is a runtime memory object.
type RObj struct {
	Key    AbsKey
	Type   ir.Type // nil for unknown-type heap objects
	Slots  []Value
	layout *ir.Layout // nil for unknown-type heap objects
	name   string     // diagnostics
}

// Label renders the object for error messages.
func (o *RObj) Label() string {
	if o.name != "" {
		return o.name
	}
	return o.Key.String()
}

// AnalysisSlot maps a runtime slot offset to the analysis slot it belongs to
// (arrays collapse). Unknown-type objects map everything to slot 0.
func (o *RObj) AnalysisSlot(off int) int {
	if o.layout == nil || off < 0 || off >= len(o.layout.RToA) {
		return 0
	}
	return o.layout.RToA[off]
}

// AbsValueKey returns the abstract identity a stored pointer value refers
// to, and ok=false for plain integers.
func AbsValueKey(v Value) (AbsKey, bool) {
	switch v.Kind {
	case KindPtr:
		return v.Obj.Key, true
	case KindFn:
		return AbsKey{Kind: AbsFunc, Name: v.Fn}, true
	}
	return AbsKey{}, false
}
