package interp

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/ir"
)

// The interpreter pre-compiles KIR into an index-based form: registers
// become slots in a flat frame array, block names become indexes, field
// offsets and layouts are resolved once, and instrumentation decisions are
// folded into per-instruction flags. This keeps the hot execution loop free
// of map lookups and string comparisons.

type copcode uint8

const (
	opConst copcode = iota
	opBinOp
	opInput
	opOutput
	opAlloca
	opMalloc
	opAddrGlobal
	opAddrFunc
	opCopy
	opLoad
	opStore
	opFieldAddr
	opIndexAddr
	opPtrAdd
	opCall
	opICall
	opRet
	opJump
	opCondJump
)

// csample is a compiled Ctx monitor sample: register index plus deref flag.
type csample struct {
	reg   int
	deref bool
}

// cinstr is one compiled instruction. Field use varies by opcode:
//
//	dst, a, b — register indexes (-1 when unused)
//	val       — Const literal
//	blkA,blkB — branch targets (block indexes)
//	off       — FieldAddr runtime offset / IndexAddr element size
//	site      — original instruction ID
type cinstr struct {
	op   copcode
	dst  int
	a, b int
	val  int64
	blkA int
	blkB int
	off  int
	site int

	binop   ir.BinOpKind
	ty      ir.Type    // Alloca type; Malloc SizeOf (nil = unknown)
	layout  *ir.Layout // resolved layout for Alloca/typed Malloc
	name    string     // AddrGlobal/AddrFunc/Call target, Alloca var label
	callee  *cfunc     // resolved direct callee
	args    []int      // Call/ICall argument registers
	hooked  bool       // site is instrumented (PtrAdd/FieldAddr monitors)
	samples []csample  // Ctx check samples (Store/Ret sites)
	ctxArgs []int      // Ctx callsite argument positions (Call sites)
}

// cblock is a compiled basic block.
type cblock struct {
	instrs []cinstr
}

// cfunc is a compiled function.
type cfunc struct {
	fn       *ir.Function
	name     string
	nRegs    int
	params   []int // register indexes of the parameters
	blocks   []cblock
	regNames []string // inverse register map (dynamic points-to tracking)
}

// compiler translates one module for one machine configuration.
type compiler struct {
	mod     *ir.Module
	layouts *ir.Layouts
	instr   *Instrumentation
	funcs   map[string]*cfunc
}

func compileModule(mod *ir.Module, layouts *ir.Layouts, instr *Instrumentation) map[string]*cfunc {
	c := &compiler{mod: mod, layouts: layouts, instr: instr, funcs: map[string]*cfunc{}}
	// Create shells first so direct calls can resolve callee pointers.
	for _, f := range mod.Funcs {
		c.funcs[f.Name] = &cfunc{fn: f, name: f.Name}
	}
	for _, f := range mod.Funcs {
		c.compileFunc(f)
	}
	return c.funcs
}

func (c *compiler) compileFunc(f *ir.Function) {
	cf := c.funcs[f.Name]
	regIdx := map[string]int{}
	reg := func(name string) int {
		if name == "" {
			return -1
		}
		if i, ok := regIdx[name]; ok {
			return i
		}
		i := len(regIdx)
		regIdx[name] = i
		return i
	}
	for _, p := range f.Params {
		cf.params = append(cf.params, reg(p))
	}
	blkIdx := map[string]int{}
	for i, b := range f.Blocks {
		blkIdx[b.Name] = i
	}
	cf.blocks = make([]cblock, len(f.Blocks))
	for bi, b := range f.Blocks {
		instrs := make([]cinstr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			instrs = append(instrs, c.compileInstr(in, reg, blkIdx))
		}
		cf.blocks[bi] = cblock{instrs: instrs}
	}
	cf.nRegs = len(regIdx)
	cf.regNames = make([]string, len(regIdx))
	for name, i := range regIdx {
		cf.regNames[i] = name
	}
}

func (c *compiler) compileInstr(in ir.Instr, reg func(string) int, blkIdx map[string]int) cinstr {
	site := ir.InstrID(in)
	ci := cinstr{site: site, dst: -1, a: -1, b: -1}
	switch in := in.(type) {
	case *ir.Const:
		ci.op = opConst
		ci.dst = reg(in.Dest)
		ci.val = in.Val
	case *ir.BinOp:
		ci.op = opBinOp
		ci.dst = reg(in.Dest)
		ci.a = reg(in.A)
		ci.b = reg(in.B)
		ci.binop = in.Op
	case *ir.Input:
		ci.op = opInput
		ci.dst = reg(in.Dest)
	case *ir.Output:
		ci.op = opOutput
		ci.a = reg(in.Src)
	case *ir.Alloca:
		ci.op = opAlloca
		ci.dst = reg(in.Dest)
		ci.ty = in.Ty
		ci.layout = c.layouts.Of(in.Ty)
		ci.name = in.Var
	case *ir.Malloc:
		ci.op = opMalloc
		ci.dst = reg(in.Dest)
		ci.ty = in.SizeOf
		ci.a = reg(in.Size)
		if in.SizeOf != nil {
			ci.layout = c.layouts.Of(in.SizeOf)
		}
	case *ir.AddrGlobal:
		ci.op = opAddrGlobal
		ci.dst = reg(in.Dest)
		ci.name = in.Global
	case *ir.AddrFunc:
		ci.op = opAddrFunc
		ci.dst = reg(in.Dest)
		ci.name = in.Func
	case *ir.Copy:
		ci.op = opCopy
		ci.dst = reg(in.Dest)
		ci.a = reg(in.Src)
	case *ir.Load:
		ci.op = opLoad
		ci.dst = reg(in.Dest)
		ci.a = reg(in.Addr)
	case *ir.Store:
		ci.op = opStore
		ci.a = reg(in.Addr)
		ci.b = reg(in.Src)
		if samples, ok := c.instr.CtxChecks[site]; ok {
			ci.samples = c.compileSamples(samples, reg)
		}
	case *ir.FieldAddr:
		ci.op = opFieldAddr
		ci.dst = reg(in.Dest)
		ci.a = reg(in.Base)
		ci.off = c.layouts.Of(in.Struct).FieldRuntimeOff[in.Field]
		ci.hooked = c.instr.FieldSites[site]
	case *ir.IndexAddr:
		ci.op = opIndexAddr
		ci.dst = reg(in.Dest)
		ci.a = reg(in.Base)
		ci.b = reg(in.Index)
		ci.off = c.layouts.Of(in.Elem).RuntimeSize
	case *ir.PtrAdd:
		ci.op = opPtrAdd
		ci.dst = reg(in.Dest)
		ci.a = reg(in.Base)
		ci.b = reg(in.Off)
		ci.hooked = c.instr.PtrAddSites[site]
	case *ir.Call:
		ci.op = opCall
		ci.dst = reg(in.Dest)
		ci.callee = c.funcs[in.Callee]
		ci.name = in.Callee
		for _, a := range in.Args {
			ci.args = append(ci.args, reg(a))
		}
		if idxs, ok := c.instr.CtxCallArgs[site]; ok {
			ci.hooked = true
			ci.ctxArgs = idxs
		}
	case *ir.ICall:
		ci.op = opICall
		ci.dst = reg(in.Dest)
		ci.a = reg(in.FuncPtr)
		for _, a := range in.Args {
			ci.args = append(ci.args, reg(a))
		}
	case *ir.Ret:
		ci.op = opRet
		ci.a = reg(in.Src)
		if samples, ok := c.instr.CtxChecks[site]; ok {
			ci.samples = c.compileSamples(samples, reg)
		}
	case *ir.Jump:
		ci.op = opJump
		ci.blkA = blkIdx[in.Target]
	case *ir.CondJump:
		ci.op = opCondJump
		ci.a = reg(in.Cond)
		ci.blkA = blkIdx[in.True]
		ci.blkB = blkIdx[in.False]
	default:
		panic(fmt.Sprintf("interp: cannot compile %T", in))
	}
	return ci
}

func (c *compiler) compileSamples(samples []invariant.CtxSample, reg func(string) int) []csample {
	out := make([]csample, len(samples))
	for i, s := range samples {
		out[i] = csample{reg: reg(s.Reg), deref: s.Deref}
	}
	return out
}
