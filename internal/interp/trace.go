package interp

import (
	"sort"

	"repro/internal/ir"
)

// RegPt identifies a register for dynamic points-to observation.
type RegPt struct {
	Fn  string
	Reg string
}

// SlotPt identifies an analysis slot of an abstract object.
type SlotPt struct {
	Obj  AbsKey
	Slot int
}

// branchEdge is one direction of a conditional branch.
type branchEdge struct {
	site  int
	taken bool
}

// Trace collects the observable behaviour of one Run.
type Trace struct {
	Outputs []int64
	Result  int64
	Steps   int64
	Err     error

	// MemOps counts executed loads and stores (the denominator of the
	// paper's monitor-check density figure).
	MemOps int64

	totalBranches int
	branches      map[branchEdge]int // edge -> hit count

	// ICallObserved maps indirect callsites to the function targets that
	// actually executed (the "Runtime Observed" series of Figure 1).
	ICallObserved map[int]map[string]bool

	// Dynamic points-to observations (TrackPointsTo only).
	RegPoints  map[RegPt]map[AbsKey]bool
	SlotPoints map[SlotPt]map[AbsKey]bool

	// monitorsExecuted records which instrumented monitor sites fired.
	monitorsExecuted map[int]bool
}

func newTrace(m *ir.Module) *Trace {
	t := &Trace{
		branches:         map[branchEdge]int{},
		ICallObserved:    map[int]map[string]bool{},
		RegPoints:        map[RegPt]map[AbsKey]bool{},
		SlotPoints:       map[SlotPt]map[AbsKey]bool{},
		monitorsExecuted: map[int]bool{},
	}
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			if _, ok := in.(*ir.CondJump); ok {
				t.totalBranches += 2
			}
		})
	}
	return t
}

func (t *Trace) recordBranch(site int, taken bool) { t.branches[branchEdge{site, taken}]++ }

func (t *Trace) recordICall(site int, target string) {
	m := t.ICallObserved[site]
	if m == nil {
		m = map[string]bool{}
		t.ICallObserved[site] = m
	}
	m[target] = true
}

func (t *Trace) recordReg(fn, reg string, key AbsKey) {
	p := RegPt{fn, reg}
	m := t.RegPoints[p]
	if m == nil {
		m = map[AbsKey]bool{}
		t.RegPoints[p] = m
	}
	m[key] = true
}

func (t *Trace) recordSlot(obj AbsKey, slot int, key AbsKey) {
	p := SlotPt{obj, slot}
	m := t.SlotPoints[p]
	if m == nil {
		m = map[AbsKey]bool{}
		t.SlotPoints[p] = m
	}
	m[key] = true
}

func (t *Trace) recordMonitor(site int) { t.monitorsExecuted[site] = true }

// Merge folds another trace's coverage and observations into t (used to
// aggregate multi-request campaigns).
func (t *Trace) Merge(o *Trace) {
	for e, n := range o.branches {
		t.branches[e] += n
	}
	for site, targets := range o.ICallObserved {
		for tg := range targets {
			t.recordICall(site, tg)
		}
	}
	for p, keys := range o.RegPoints {
		for k := range keys {
			t.recordReg(p.Fn, p.Reg, k)
		}
	}
	for p, keys := range o.SlotPoints {
		for k := range keys {
			t.recordSlot(p.Obj, p.Slot, k)
		}
	}
	for s := range o.monitorsExecuted {
		t.monitorsExecuted[s] = true
	}
	t.Steps += o.Steps
	t.MemOps += o.MemOps
}

// BranchCoverage returns (executed, total) branch edges.
func (t *Trace) BranchCoverage() (executed, total int) {
	return len(t.branches), t.totalBranches
}

// BranchBuckets returns, per executed branch edge, the AFL-style log2 hit
// bucket (1, 2, 3-4, 5-8, ...). Fuzzers use new buckets as a coverage
// signal.
func (t *Trace) BranchBuckets() map[[2]int]int {
	out := make(map[[2]int]int, len(t.branches))
	for e, n := range t.branches {
		b := 0
		for n > 0 {
			n >>= 1
			b++
		}
		k := [2]int{e.site, 0}
		if e.taken {
			k[1] = 1
		}
		out[k] = b
	}
	return out
}

// MonitorsExecuted returns the number of distinct monitor sites that fired.
func (t *Trace) MonitorsExecuted() int { return len(t.monitorsExecuted) }

// ObservedTargets returns the sorted observed targets of an indirect
// callsite.
func (t *Trace) ObservedTargets(site int) []string {
	var out []string
	for tg := range t.ICallObserved[site] {
		out = append(out, tg)
	}
	sort.Strings(out)
	return out
}
