package interp

import (
	"fmt"

	"repro/internal/ir"
)

// frame is one activation record over the compiled register file.
type frame struct {
	cf   *cfunc
	regs []Value
}

func (mc *Machine) set(fr *frame, idx int, v Value) {
	if idx < 0 {
		return
	}
	fr.regs[idx] = v
	if mc.cfg.TrackPointsTo {
		if key, ok := AbsValueKey(v); ok {
			mc.trace.recordReg(fr.cf.name, fr.cf.regNames[idx], key)
		}
	}
}

// call executes a compiled function.
func (mc *Machine) call(cf *cfunc, args []Value) (Value, error) {
	if mc.depth >= mc.cfg.MaxDepth {
		return Value{}, &RuntimeError{Msg: "call-stack depth limit exceeded"}
	}
	mc.depth++
	defer func() { mc.depth-- }()

	fr := &frame{cf: cf, regs: make([]Value, cf.nRegs)}
	for i, p := range cf.params {
		if i < len(args) {
			mc.set(fr, p, args[i])
		}
	}

	blk := 0
	for {
		instrs := cf.blocks[blk].instrs
		for ip := 0; ip < len(instrs); ip++ {
			in := &instrs[ip]
			mc.steps++
			if mc.steps > mc.cfg.StepLimit {
				return Value{}, &RuntimeError{Site: in.site, Msg: "step limit exceeded"}
			}
			switch in.op {
			case opConst:
				mc.set(fr, in.dst, IntVal(in.val))
			case opBinOp:
				v, err := mc.binop(in, fr.regs[in.a], fr.regs[in.b])
				if err != nil {
					return Value{}, err
				}
				mc.set(fr, in.dst, v)
			case opInput:
				var v int64
				if mc.inPos < len(mc.inputs) {
					v = mc.inputs[mc.inPos]
					mc.inPos++
				}
				mc.set(fr, in.dst, IntVal(v))
			case opOutput:
				mc.trace.Outputs = append(mc.trace.Outputs, fr.regs[in.a].Int)
			case opAlloca:
				obj := &RObj{
					Key:    AbsKey{Kind: AbsStack, Site: in.site},
					Type:   in.ty,
					Slots:  make([]Value, in.layout.RuntimeSize),
					layout: in.layout,
					name:   cf.name + "/" + in.name,
				}
				mc.set(fr, in.dst, PtrVal(obj, 0))
			case opMalloc:
				key := AbsKey{Kind: AbsHeap, Site: in.site}
				var obj *RObj
				if in.layout != nil {
					obj = &RObj{Key: key, Type: in.ty, Slots: make([]Value, in.layout.RuntimeSize), layout: in.layout}
				} else {
					slots := mc.cfg.HeapSlots
					if in.a >= 0 {
						if n := fr.regs[in.a].Int; n > 0 && n <= 1<<16 {
							slots = int(n)
						}
					}
					obj = &RObj{Key: key, Slots: make([]Value, slots)}
				}
				mc.set(fr, in.dst, PtrVal(obj, 0))
			case opAddrGlobal:
				mc.set(fr, in.dst, PtrVal(mc.globals[in.name], 0))
			case opAddrFunc:
				mc.set(fr, in.dst, FnVal(in.name))
			case opCopy:
				mc.set(fr, in.dst, fr.regs[in.a])
			case opLoad:
				mc.trace.MemOps++
				addr := fr.regs[in.a]
				if addr.Kind != KindPtr {
					return Value{}, &RuntimeError{Site: in.site, Msg: "load through invalid pointer " + addr.String()}
				}
				if addr.Off < 0 || addr.Off >= len(addr.Obj.Slots) {
					return Value{}, &RuntimeError{Site: in.site, Msg: oobMsg("load", addr)}
				}
				mc.set(fr, in.dst, addr.Obj.Slots[addr.Off])
			case opStore:
				if in.samples != nil {
					mc.fireCtxCheck(fr, in)
				}
				mc.trace.MemOps++
				addr := fr.regs[in.a]
				if addr.Kind != KindPtr {
					return Value{}, &RuntimeError{Site: in.site, Msg: "store through invalid pointer " + addr.String()}
				}
				if addr.Off < 0 || addr.Off >= len(addr.Obj.Slots) {
					return Value{}, &RuntimeError{Site: in.site, Msg: oobMsg("store", addr)}
				}
				v := fr.regs[in.b]
				addr.Obj.Slots[addr.Off] = v
				if mc.cfg.TrackPointsTo {
					if key, ok := AbsValueKey(v); ok {
						mc.trace.recordSlot(addr.Obj.Key, addr.Obj.AnalysisSlot(addr.Off), key)
					}
				}
			case opFieldAddr:
				base := fr.regs[in.a]
				if base.Kind != KindPtr {
					return Value{}, &RuntimeError{Site: in.site, Msg: "field access through non-pointer " + base.String()}
				}
				res := PtrVal(base.Obj, base.Off+in.off)
				if in.hooked {
					mc.trace.recordMonitor(in.site)
					mc.fires.field++
					mc.hooks.FieldAddr(in.site, base, res)
				}
				mc.set(fr, in.dst, res)
			case opIndexAddr:
				base := fr.regs[in.a]
				if base.Kind != KindPtr {
					return Value{}, &RuntimeError{Site: in.site, Msg: "indexing non-pointer " + base.String()}
				}
				mc.set(fr, in.dst, PtrVal(base.Obj, base.Off+int(fr.regs[in.b].Int)*in.off))
			case opPtrAdd:
				base := fr.regs[in.a]
				if base.Kind != KindPtr {
					return Value{}, &RuntimeError{Site: in.site, Msg: "pointer arithmetic on non-pointer " + base.String()}
				}
				if in.hooked {
					mc.trace.recordMonitor(in.site)
					mc.fires.ptrAdd++
					mc.hooks.PtrAdd(in.site, base)
				}
				mc.set(fr, in.dst, PtrVal(base.Obj, base.Off+int(fr.regs[in.b].Int)))
			case opCall:
				args := mc.gatherArgs(fr, in.args)
				if in.hooked {
					mc.trace.recordMonitor(in.site)
					mc.fires.ctxCall++
					rec := make([]Value, 0, len(in.ctxArgs))
					for _, i := range in.ctxArgs {
						if i < len(args) {
							rec = append(rec, args[i])
						}
					}
					mc.hooks.CtxCall(in.site, rec)
				}
				rv, err := mc.call(in.callee, args)
				if err != nil {
					return Value{}, err
				}
				mc.set(fr, in.dst, rv)
			case opICall:
				fv := fr.regs[in.a]
				if fv.Kind != KindFn {
					return Value{}, &RuntimeError{Site: in.site, Msg: "indirect call through non-function value " + fv.String()}
				}
				mc.trace.recordICall(in.site, fv.Fn)
				if mc.instr.CheckICalls {
					mc.fires.cfi++
					if !mc.hooks.CheckICall(in.site, fv.Fn) {
						return Value{}, &CFIViolation{Site: in.site, Target: fv.Fn}
					}
				}
				callee := mc.funcs[fv.Fn]
				if callee == nil {
					return Value{}, &RuntimeError{Site: in.site, Msg: "indirect call to unknown function " + fv.Fn}
				}
				rv, err := mc.call(callee, mc.gatherArgs(fr, in.args))
				if err != nil {
					return Value{}, err
				}
				mc.set(fr, in.dst, rv)
			case opRet:
				if in.samples != nil {
					mc.fireCtxCheck(fr, in)
				}
				if in.a >= 0 {
					return fr.regs[in.a], nil
				}
				return IntVal(0), nil
			case opJump:
				blk = in.blkA
				goto nextBlock
			case opCondJump:
				if fr.regs[in.a].Truthy() {
					mc.trace.recordBranch(in.site, true)
					blk = in.blkA
				} else {
					mc.trace.recordBranch(in.site, false)
					blk = in.blkB
				}
				goto nextBlock
			}
		}
		return Value{}, &RuntimeError{Msg: "fell off end of block in " + cf.name}
	nextBlock:
	}
}

func (mc *Machine) gatherArgs(fr *frame, idxs []int) []Value {
	args := make([]Value, len(idxs))
	for i, a := range idxs {
		args[i] = fr.regs[a]
	}
	return args
}

func oobMsg(op string, addr Value) string {
	return fmt.Sprintf("out-of-bounds %s at %s+%d (size %d)", op, addr.Obj.Label(), addr.Off, len(addr.Obj.Slots))
}

// fireCtxCheck samples the critical parameters' current values and invokes
// the Ctx monitor hook. Deref samples read through the parameter's backing
// stack slot (the register holds the slot address).
func (mc *Machine) fireCtxCheck(fr *frame, in *cinstr) {
	mc.trace.recordMonitor(in.site)
	mc.fires.ctxCheck++
	vals := make([]Value, len(in.samples))
	for i, s := range in.samples {
		v := fr.regs[s.reg]
		if s.deref {
			if v.Kind == KindPtr && v.Off >= 0 && v.Off < len(v.Obj.Slots) {
				v = v.Obj.Slots[v.Off]
			} else {
				v = IntVal(0)
			}
		}
		vals[i] = v
	}
	mc.hooks.CtxCheck(in.site, vals)
}

// binop evaluates arithmetic and comparisons.
func (mc *Machine) binop(in *cinstr, a, b Value) (Value, error) {
	boolVal := func(c bool) Value {
		if c {
			return IntVal(1)
		}
		return IntVal(0)
	}
	switch in.binop {
	case ir.OpEq:
		return boolVal(a.Equal(b)), nil
	case ir.OpNe:
		return boolVal(!a.Equal(b)), nil
	}
	if a.Kind != KindInt || b.Kind != KindInt {
		return Value{}, &RuntimeError{Site: in.site, Msg: fmt.Sprintf("operator %s on non-integers %s, %s", in.binop, a, b)}
	}
	x, y := a.Int, b.Int
	switch in.binop {
	case ir.OpAdd:
		return IntVal(x + y), nil
	case ir.OpSub:
		return IntVal(x - y), nil
	case ir.OpMul:
		return IntVal(x * y), nil
	case ir.OpDiv:
		if y == 0 {
			return Value{}, &RuntimeError{Site: in.site, Msg: "division by zero"}
		}
		return IntVal(x / y), nil
	case ir.OpRem:
		if y == 0 {
			return Value{}, &RuntimeError{Site: in.site, Msg: "remainder by zero"}
		}
		return IntVal(x % y), nil
	case ir.OpLt:
		return boolVal(x < y), nil
	case ir.OpLe:
		return boolVal(x <= y), nil
	case ir.OpGt:
		return boolVal(x > y), nil
	case ir.OpGe:
		return boolVal(x >= y), nil
	case ir.OpAnd:
		return boolVal(x != 0 && y != 0), nil
	case ir.OpOr:
		return boolVal(x != 0 || y != 0), nil
	}
	return Value{}, &RuntimeError{Site: in.site, Msg: "unknown operator " + string(in.binop)}
}
