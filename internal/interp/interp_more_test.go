package interp

import (
	"testing"

	"repro/internal/minic"
)

func TestRunsAreIsolated(t *testing.T) {
	src := `
int counter;
int main() {
  counter = counter + 1;
  return counter;
}
`
	m := minic.MustCompile("iso", src)
	mc := New(m, Config{})
	for i := 0; i < 3; i++ {
		tr := mc.Run("main", nil)
		if tr.Err != nil {
			t.Fatalf("run %d: %v", i, tr.Err)
		}
		if tr.Result != 1 {
			t.Fatalf("run %d: result = %d; globals leaked across runs", i, tr.Result)
		}
	}
}

func TestMissingEntryFunction(t *testing.T) {
	m := minic.MustCompile("x", "int main() { return 0; }")
	tr := New(m, Config{}).Run("nonexistent", nil)
	if tr.Err == nil {
		t.Fatal("missing entry did not error")
	}
}

func TestExtraAndMissingCallArguments(t *testing.T) {
	// Indirect calls are signature-erased: the callee may receive fewer
	// arguments than it declares (missing params default to 0).
	src := `
int two(int* a, int* b) {
  if (b == null) { return 1; }
  return 2;
}
int main() {
  fn f;
  f = &two;
  return f(null);
}
`
	m := minic.MustCompile("args", src)
	tr := New(m, Config{}).Run("main", nil)
	if tr.Err != nil || tr.Result != 1 {
		t.Fatalf("result = %d, err = %v; want 1", tr.Result, tr.Err)
	}
}

func TestBranchBuckets(t *testing.T) {
	src := `
int main() {
  int i;
  int n;
  n = input();
  i = 0;
  while (i < n) {
    i = i + 1;
  }
  return i;
}
`
	m := minic.MustCompile("bb", src)
	short := New(m, Config{}).Run("main", []int64{1})
	long := New(m, Config{}).Run("main", []int64{9})
	sb := short.BranchBuckets()
	lb := long.BranchBuckets()
	if len(sb) == 0 || len(lb) == 0 {
		t.Fatal("no buckets")
	}
	grew := false
	for e, b := range lb {
		if b > sb[e] {
			grew = true
		}
	}
	if !grew {
		t.Error("longer run produced no higher hit bucket")
	}
}

func TestMemOpsCounted(t *testing.T) {
	src := `
int g;
int main() {
  int* p;
  p = &g;
  *p = 1;
  return *p;
}
`
	m := minic.MustCompile("mem", src)
	tr := New(m, Config{}).Run("main", nil)
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	// At least the explicit store+load plus the alloca traffic.
	if tr.MemOps < 2 {
		t.Errorf("MemOps = %d, want >= 2", tr.MemOps)
	}
}

func TestAnalysisSlotMapping(t *testing.T) {
	src := `
struct s { int a; int arr[4]; int* p; }
s g;
int target;
int main() {
  int i;
  i = 0;
  while (i < 4) {
    g.arr[i] = i;
    i = i + 1;
  }
  g.p = &target;
  return 0;
}
`
	m := minic.MustCompile("slots", src)
	tr := New(m, Config{TrackPointsTo: true}).Run("main", nil)
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	// The pointer stored into g.p must be recorded at analysis slot 2
	// (a=0, arr[]=1, p=2), regardless of arr's runtime expansion.
	pt := SlotPt{Obj: AbsKey{Kind: AbsGlobal, Name: "g"}, Slot: 2}
	if !tr.SlotPoints[pt][AbsKey{Kind: AbsGlobal, Name: "target"}] {
		t.Errorf("slot mapping wrong: %v", tr.SlotPoints)
	}
}

func TestDynamicHeapSizing(t *testing.T) {
	// malloc(n) slabs are sized by the runtime argument.
	src := `
int main() {
  int* p;
  p = malloc(100);
  p[30] = 7;
  return p[30];
}
`
	m := minic.MustCompile("hs", src)
	tr := New(m, Config{}).Run("main", nil)
	if tr.Err != nil || tr.Result != 7 {
		t.Fatalf("result = %d, err = %v", tr.Result, tr.Err)
	}
	// Accessing beyond the dynamic size faults.
	src2 := `
int main() {
  int* p;
  p = malloc(8);
  p[30] = 7;
  return 0;
}
`
	m2 := minic.MustCompile("hs2", src2)
	if tr := New(m2, Config{}).Run("main", nil); tr.Err == nil {
		t.Fatal("expected out-of-bounds beyond dynamic size")
	}
	// Non-positive sizes fall back to the configured slab.
	src3 := `
int main() {
  int* p;
  p = malloc(input());
  p[3] = 9;
  return p[3];
}
`
	m3 := minic.MustCompile("hs3", src3)
	if tr := New(m3, Config{HeapSlots: 8}).Run("main", []int64{0}); tr.Err != nil || tr.Result != 9 {
		t.Fatalf("fallback slab: result = %d, err = %v", tr.Result, tr.Err)
	}
}

func TestNegativeIndexFaults(t *testing.T) {
	src := `
int buf[4];
int main() {
  int i;
  i = input();
  return buf[i];
}
`
	m := minic.MustCompile("neg", src)
	tr := New(m, Config{}).Run("main", []int64{-1})
	if tr.Err == nil {
		t.Fatal("negative index did not fault")
	}
}

func TestObservedTargetsSorted(t *testing.T) {
	src := `
int b(int* x) { return 1; }
int a(int* x) { return 2; }
int main() {
  fn f;
  int r;
  int i;
  r = 0;
  i = 0;
  while (i < 2) {
    f = &b;
    if (i == 1) {
      f = &a;
    }
    r = r + f(null);
    i = i + 1;
  }
  return r;
}
`
	m := minic.MustCompile("obs", src)
	tr := New(m, Config{}).Run("main", nil)
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	for site := range tr.ICallObserved {
		got := tr.ObservedTargets(site)
		if len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Errorf("ObservedTargets = %v, want sorted [a b]", got)
		}
	}
}
