package interp

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func run(t *testing.T, src string, inputs []int64) *Trace {
	t.Helper()
	m, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(m, Config{TrackPointsTo: true}).Run("main", inputs)
}

func mustResult(t *testing.T, src string, inputs []int64, want int64) *Trace {
	t.Helper()
	tr := run(t, src, inputs)
	if tr.Err != nil {
		t.Fatalf("run error: %v", tr.Err)
	}
	if tr.Result != want {
		t.Fatalf("result = %d, want %d", tr.Result, want)
	}
	return tr
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
int main() {
  int i;
  int sum;
  i = 0;
  sum = 0;
  while (i < 10) {
    if (i % 2 == 0) {
      sum = sum + i;
    }
    i = i + 1;
  }
  return sum;
}
`
	mustResult(t, src, nil, 20)
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }
`
	mustResult(t, src, nil, 55)
}

func TestPointersAndGlobals(t *testing.T) {
	src := `
int g;
int main() {
  int* p;
  int** q;
  p = &g;
  q = &p;
  **q = 41;
  g = g + 1;
  return *p;
}
`
	mustResult(t, src, nil, 42)
}

func TestStructFieldsAndHeap(t *testing.T) {
	src := `
struct node { int val; node* next; }
int main() {
  node* a;
  node* b;
  a = malloc(sizeof(node));
  b = malloc(sizeof(node));
  a->val = 10;
  a->next = b;
  b->val = 32;
  b->next = null;
  return a->val + a->next->val;
}
`
	mustResult(t, src, nil, 42)
}

func TestArraysAreElementDistinct(t *testing.T) {
	src := `
int table[8];
int main() {
  int i;
  i = 0;
  while (i < 8) {
    table[i] = i * i;
    i = i + 1;
  }
  return table[3] + table[5];
}
`
	mustResult(t, src, nil, 34)
}

func TestFunctionPointerArrayDispatch(t *testing.T) {
	src := `
struct cmd { fn exec; }
cmd table[3];
int op0(int* x) { return 100; }
int op1(int* x) { return 200; }
int op2(int* x) { return 300; }
int main() {
  table[0].exec = &op0;
  table[1].exec = &op1;
  table[2].exec = &op2;
  return table[input()].exec(null);
}
`
	mustResult(t, src, []int64{1}, 200)
	mustResult(t, src, []int64{2}, 300)
}

func TestInputOutput(t *testing.T) {
	src := `
int main() {
  int a;
  int b;
  a = input();
  b = input();
  output(a + b);
  output(a * b);
  return 0;
}
`
	tr := mustResult(t, src, []int64{6, 7}, 0)
	if len(tr.Outputs) != 2 || tr.Outputs[0] != 13 || tr.Outputs[1] != 42 {
		t.Fatalf("outputs = %v", tr.Outputs)
	}
}

func TestInputExhaustionYieldsZero(t *testing.T) {
	src := `int main() { return input() + input(); }`
	mustResult(t, src, []int64{5}, 5)
}

func TestPointerArithmeticRuntime(t *testing.T) {
	src := `
int buf[10];
int main() {
  char* p;
  int i;
  p = buf;
  i = input();
  *(p + i) = 77;
  return buf[i];
}
`
	mustResult(t, src, []int64{4}, 77)
}

func TestStructCopySemantics(t *testing.T) {
	src := `
struct pair { int a; int b; }
int main() {
  pair x;
  pair y;
  x.a = 40;
  x.b = 2;
  y = x;
  x.a = 0;
  return y.a + y.b;
}
`
	mustResult(t, src, nil, 42)
}

func TestNullDereferenceFaults(t *testing.T) {
	src := `
int main() {
  int* p;
  p = null;
  return *p;
}
`
	tr := run(t, src, nil)
	var re *RuntimeError
	if !errors.As(tr.Err, &re) || !strings.Contains(re.Msg, "invalid pointer") {
		t.Fatalf("err = %v, want invalid-pointer fault", tr.Err)
	}
}

func TestOutOfBoundsFaults(t *testing.T) {
	src := `
int buf[4];
int main() {
  char* p;
  p = buf;
  *(p + 99) = 1;
  return 0;
}
`
	tr := run(t, src, nil)
	var re *RuntimeError
	if !errors.As(tr.Err, &re) || !strings.Contains(re.Msg, "out-of-bounds") {
		t.Fatalf("err = %v, want out-of-bounds fault", tr.Err)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	src := `int main() { return 3 / input(); }`
	tr := run(t, src, []int64{0})
	var re *RuntimeError
	if !errors.As(tr.Err, &re) || !strings.Contains(re.Msg, "division by zero") {
		t.Fatalf("err = %v, want division fault", tr.Err)
	}
}

func TestStepLimit(t *testing.T) {
	src := `int main() { while (1) { } return 0; }`
	m := minic.MustCompile("loop", src)
	tr := New(m, Config{StepLimit: 1000}).Run("main", nil)
	var re *RuntimeError
	if !errors.As(tr.Err, &re) || !strings.Contains(re.Msg, "step limit") {
		t.Fatalf("err = %v, want step limit", tr.Err)
	}
}

func TestStackDepthLimit(t *testing.T) {
	src := `
int f(int n) { return f(n + 1); }
int main() { return f(0); }
`
	m := minic.MustCompile("deep", src)
	tr := New(m, Config{MaxDepth: 64}).Run("main", nil)
	var re *RuntimeError
	if !errors.As(tr.Err, &re) || !strings.Contains(re.Msg, "depth limit") {
		t.Fatalf("err = %v, want depth limit", tr.Err)
	}
}

func TestICallThroughNonFunctionFaults(t *testing.T) {
	src := `
int main() {
  fn f;
  f = null;
  return f();
}
`
	tr := run(t, src, nil)
	var re *RuntimeError
	if !errors.As(tr.Err, &re) || !strings.Contains(re.Msg, "non-function") {
		t.Fatalf("err = %v, want non-function fault", tr.Err)
	}
}

func TestBranchCoverage(t *testing.T) {
	src := `
int main() {
  if (input() > 0) {
    return 1;
  }
  return 0;
}
`
	tr := run(t, src, []int64{5})
	exec, total := tr.BranchCoverage()
	if total != 2 {
		t.Fatalf("total branches = %d, want 2", total)
	}
	if exec != 1 {
		t.Fatalf("executed branches = %d, want 1", exec)
	}
	tr2 := run(t, src, []int64{-5})
	tr.Merge(tr2)
	exec, _ = tr.BranchCoverage()
	if exec != 2 {
		t.Fatalf("merged executed branches = %d, want 2", exec)
	}
}

func TestICallObservation(t *testing.T) {
	src := `
struct ops { fn f; }
ops g;
int a(int* x) { return 1; }
int b(int* x) { return 2; }
int main() {
  if (input()) {
    g.f = &a;
  } else {
    g.f = &b;
  }
  return g.f(null);
}
`
	m := minic.MustCompile("icall", src)
	mc := New(m, Config{TrackPointsTo: true})
	tr := mc.Run("main", []int64{1})
	tr.Merge(mc.Run("main", []int64{0}))
	var site int
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			if _, ok := in.(*ir.ICall); ok {
				site = ir.InstrID(in)
			}
		})
	}
	got := tr.ObservedTargets(site)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("observed targets = %v", got)
	}
}

func TestDynamicSlotPoints(t *testing.T) {
	src := `
struct holder { int* p; int* q; }
holder g;
int x;
int y;
int main() {
  g.p = &x;
  g.q = &y;
  return 0;
}
`
	tr := run(t, src, nil)
	gKey := AbsKey{Kind: AbsGlobal, Name: "g"}
	slot0 := tr.SlotPoints[SlotPt{Obj: gKey, Slot: 0}]
	slot1 := tr.SlotPoints[SlotPt{Obj: gKey, Slot: 1}]
	if len(slot0) != 1 || !slot0[AbsKey{Kind: AbsGlobal, Name: "x"}] {
		t.Errorf("slot0 = %v", slot0)
	}
	if len(slot1) != 1 || !slot1[AbsKey{Kind: AbsGlobal, Name: "y"}] {
		t.Errorf("slot1 = %v", slot1)
	}
}

// hook recorder for instrumentation tests.
type recHooks struct {
	ptrAdds   []int
	fields    []int
	ctxCalls  []int
	ctxChecks []int
	icalls    []string
	allow     bool
}

func (h *recHooks) PtrAdd(site int, base Value)         { h.ptrAdds = append(h.ptrAdds, site) }
func (h *recHooks) FieldAddr(site int, base, res Value) { h.fields = append(h.fields, site) }
func (h *recHooks) CtxCall(site int, args []Value)      { h.ctxCalls = append(h.ctxCalls, site) }
func (h *recHooks) CtxCheck(site int, vals []Value)     { h.ctxChecks = append(h.ctxChecks, site) }
func (h *recHooks) CheckICall(site int, tg string) bool {
	h.icalls = append(h.icalls, tg)
	return h.allow
}

func TestHooksFireAtInstrumentedSites(t *testing.T) {
	src := `
struct s { int a; fn f; }
s g;
int buf[4];
int cb(int* x) { return 7; }
int main() {
  char* p;
  int i;
  g.f = &cb;
  p = buf;
  i = input();
  *(p + i) = 1;
  return g.f(null);
}
`
	m := minic.MustCompile("hooks", src)
	var ptrAddSite, fieldSite int
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			switch in.(type) {
			case *ir.PtrAdd:
				ptrAddSite = ir.InstrID(in)
			case *ir.FieldAddr:
				fieldSite = ir.InstrID(in)
			}
		})
	}
	h := &recHooks{allow: true}
	ins := &Instrumentation{
		PtrAddSites: map[int]bool{ptrAddSite: true},
		FieldSites:  map[int]bool{fieldSite: true},
		CheckICalls: true,
	}
	tr := New(m, Config{Hooks: h, Instr: ins}).Run("main", []int64{2})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	if len(h.ptrAdds) != 1 || h.ptrAdds[0] != ptrAddSite {
		t.Errorf("ptradd hooks = %v", h.ptrAdds)
	}
	if len(h.fields) != 1 {
		t.Errorf("field hooks = %v", h.fields)
	}
	if len(h.icalls) != 1 || h.icalls[0] != "cb" {
		t.Errorf("icall hooks = %v", h.icalls)
	}
	if tr.MonitorsExecuted() != 2 {
		t.Errorf("monitors executed = %d, want 2", tr.MonitorsExecuted())
	}
	if ins.NumMonitorSites() != 2 {
		t.Errorf("monitor sites = %d, want 2", ins.NumMonitorSites())
	}
}

func TestCFIBlockDenies(t *testing.T) {
	src := `
int cb(int* x) { return 7; }
int main() {
  fn f;
  f = &cb;
  return f(null);
}
`
	m := minic.MustCompile("cfi", src)
	h := &recHooks{allow: false}
	tr := New(m, Config{Hooks: h, Instr: &Instrumentation{CheckICalls: true}}).Run("main", nil)
	var cv *CFIViolation
	if !errors.As(tr.Err, &cv) || cv.Target != "cb" {
		t.Fatalf("err = %v, want CFI violation on cb", tr.Err)
	}
}

func TestValueSemantics(t *testing.T) {
	o := &RObj{Slots: make([]Value, 2), name: "o"}
	if !IntVal(0).IsNull() || IntVal(1).IsNull() || PtrVal(o, 0).IsNull() {
		t.Error("IsNull wrong")
	}
	if IntVal(0).Truthy() || !IntVal(-1).Truthy() || !PtrVal(o, 1).Truthy() || !FnVal("f").Truthy() {
		t.Error("Truthy wrong")
	}
	if !PtrVal(o, 1).Equal(PtrVal(o, 1)) || PtrVal(o, 1).Equal(PtrVal(o, 0)) {
		t.Error("pointer equality wrong")
	}
	if PtrVal(o, 0).Equal(IntVal(0)) {
		t.Error("live pointer equals null")
	}
	if !FnVal("f").Equal(FnVal("f")) || FnVal("f").Equal(FnVal("g")) {
		t.Error("fn equality wrong")
	}
}
