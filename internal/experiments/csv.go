package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSVs exports the analysis results as CSV files, mirroring the paper's
// artifact output ("CSV files containing the points-to sets and CFI
// policies", Artifact Appendix A.2). Per application it writes:
//
//	pts_<app>.csv     pointer, then one size column per configuration
//	cfi_<app>.csv     callsite, then target count and target list per config
//	table3.csv        the aggregate Table 3 rows
func WriteCSVs(dir string, data []*AppData) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := ConfigNames()

	t3, err := os.Create(filepath.Join(dir, "table3.csv"))
	if err != nil {
		return err
	}
	defer t3.Close()
	t3w := csv.NewWriter(t3)
	header := append([]string{"application", "metric"}, names...)
	if err := t3w.Write(header); err != nil {
		return err
	}
	for _, row := range Table3Data(data) {
		avg := []string{row.App, "avg"}
		max := []string{row.App, "max"}
		for _, n := range names {
			avg = append(avg, fmt.Sprintf("%.2f", row.Avg[n]))
			max = append(max, fmt.Sprintf("%d", row.Max[n]))
		}
		if err := t3w.Write(avg); err != nil {
			return err
		}
		if err := t3w.Write(max); err != nil {
			return err
		}
	}
	t3w.Flush()
	if err := t3w.Error(); err != nil {
		return err
	}

	for _, d := range data {
		if err := writeAppPts(dir, d, names); err != nil {
			return err
		}
		if err := writeAppCFI(dir, d, names); err != nil {
			return err
		}
	}
	return nil
}

func writeAppPts(dir string, d *AppData, names []string) error {
	f, err := os.Create(filepath.Join(dir, "pts_"+d.App.Name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(append([]string{"pointer"}, names...)); err != nil {
		return err
	}
	base := d.Systems["Baseline"]
	pop := base.Population()
	for i, p := range pop {
		label := p.Fn + ":" + p.Reg
		if p.Reg == "" {
			label = "ret(" + p.Fn + ")"
		}
		row := []string{label}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%d", d.Sizes[n][i]))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeAppCFI(dir string, d *AppData, names []string) error {
	f, err := os.Create(filepath.Join(dir, "cfi_"+d.App.Name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"callsite"}
	for _, n := range names {
		header = append(header, n+"_count", n+"_targets")
	}
	if err := w.Write(header); err != nil {
		return err
	}
	base := d.Systems["Baseline"].Harden().Optimistic
	for _, site := range base.Sites {
		row := []string{fmt.Sprintf("%d", site)}
		for _, n := range names {
			p := d.Systems[n].Harden().Optimistic
			targets := p.Targets[site]
			row = append(row, fmt.Sprintf("%d", len(targets)), strings.Join(targets, ";"))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
