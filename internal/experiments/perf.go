package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PerfRow holds one application's throughput measurements (paper Figure 13).
type PerfRow struct {
	App        string
	Throughput map[string]float64 // config -> requests/second
	Overhead   map[string]float64 // config -> slowdown vs Baseline (0.05 = 5%)
	// CheckDensity is monitor checks per memory operation under full
	// Kaleidoscope (the paper reports a 4.78% maximum).
	CheckDensity float64
	// ViolationsObserved counts invariant violations during benchmarking
	// (the paper observes zero).
	ViolationsObserved int
}

// Figure13Data benchmarks every application under every configuration:
// the hardened interpreter executes the request driver, and throughput is
// requests per wall-clock second. The Baseline configuration carries CFI
// checks derived from the imprecise analysis but no monitors; Kaleidoscope
// configurations add their likely-invariant monitors.
func Figure13Data(opt Options) []PerfRow {
	opt = opt.withDefaults()
	var rows []PerfRow
	for _, app := range workload.Apps() {
		row := PerfRow{
			App:        app.Name,
			Throughput: map[string]float64{},
			Overhead:   map[string]float64{},
		}
		m := app.MustModule()
		for _, cfg := range invariant.Ablations() {
			h := core.Analyze(m, cfg).Harden()
			// Warm-up run (allocator and cache effects), then median-of-N.
			h.NewExecution(false).Run("main", app.Requests(opt.PerfRequests/4, opt.Seed))
			var samples []float64
			for r := 0; r < opt.Runs; r++ {
				inputs := app.Requests(opt.PerfRequests, opt.Seed+int64(r))
				e := h.NewExecution(false)
				start := time.Now()
				tr := e.Run("main", inputs)
				elapsed := time.Since(start)
				if tr.Err != nil {
					continue
				}
				row.ViolationsObserved += len(e.Switcher.Violations())
				samples = append(samples, float64(opt.PerfRequests)/elapsed.Seconds())
				if cfg == invariant.All() && r == 0 && tr.MemOps > 0 {
					row.CheckDensity = float64(e.Runtime.ChecksPerformed) / float64(tr.MemOps)
				}
			}
			row.Throughput[cfg.Name()] = median(samples)
		}
		base := row.Throughput["Baseline"]
		for name, tp := range row.Throughput {
			if tp > 0 && base > 0 {
				row.Overhead[name] = base/tp - 1
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// median returns the middle sample (0 for empty input).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// Figure13 renders the throughput comparison.
func Figure13(opt Options) string {
	rows := Figure13Data(opt)
	names := ConfigNames()
	var b strings.Builder
	b.WriteString("Figure 13: Average throughput of the hardened applications (requests/sec)\n")
	t := stats.NewTable(append([]string{"Application"}, append(names, "Kd overhead", "checks/memop")...)...)
	var ovSum float64
	var ovMax float64
	var maxApp string
	for _, r := range rows {
		cells := []string{r.App}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.0f", r.Throughput[n]))
		}
		ov := r.Overhead["Kaleidoscope"]
		ovSum += ov
		if ov > ovMax {
			ovMax = ov
			maxApp = r.App
		}
		cells = append(cells, stats.Pct(ov), stats.Pct(r.CheckDensity))
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "average Kaleidoscope overhead %s, maximum %s (%s); no invariant violations observed\n",
		stats.Pct(ovSum/float64(len(rows))), stats.Pct(ovMax), maxApp)
	return b.String()
}
