package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/invariant"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PerfRow holds one application's throughput measurements (paper Figure 13).
type PerfRow struct {
	App        string
	Throughput map[string]float64 // config -> requests/second
	Overhead   map[string]float64 // config -> slowdown vs Baseline (0.05 = 5%)
	// CheckDensity is monitor checks per memory operation under full
	// Kaleidoscope (the paper reports a 4.78% maximum).
	CheckDensity float64
	// ViolationsObserved counts invariant violations during benchmarking
	// (the paper observes zero).
	ViolationsObserved int
	// Err is set when the app's measurement driver crashed.
	Err error
}

// Figure13Data benchmarks every application under every configuration:
// the hardened interpreter executes the request driver, and throughput is
// requests per wall-clock second. The Baseline configuration carries CFI
// checks derived from the imprecise analysis but no monitors; Kaleidoscope
// configurations add their likely-invariant monitors.
//
// The analyses come from the session cache, but the measurement loops always
// run on a single goroutine — even in a parallel session — because
// concurrent cells would contend for cores and distort each other's
// wall-clock throughput. This is the one artifact whose numbers are not
// byte-reproducible across runs.
func (s *Session) Figure13Data() []PerfRow {
	span, stop := s.phase("experiments/figure13")
	defer stop()
	return perApp(s, 1, "experiments/figure13-app", span, func(app *workload.App) PerfRow {
		row := PerfRow{
			App:        app.Name,
			Throughput: map[string]float64{},
			Overhead:   map[string]float64{},
		}
		for _, cfg := range invariant.Ablations() {
			h := s.System(app, cfg).Harden()
			// Warm-up run (allocator and cache effects), then median-of-N.
			h.NewExecution(false).Run("main", app.Requests(s.Opt.PerfRequests/4, s.Opt.Seed))
			var samples []float64
			for r := 0; r < s.Opt.Runs; r++ {
				inputs := app.Requests(s.Opt.PerfRequests, s.Opt.Seed+int64(r))
				e := h.NewExecution(false)
				start := time.Now()
				tr := e.Run("main", inputs)
				elapsed := time.Since(start)
				if tr.Err != nil {
					continue
				}
				row.ViolationsObserved += len(e.Switcher.Violations())
				samples = append(samples, float64(s.Opt.PerfRequests)/elapsed.Seconds())
				if cfg == invariant.All() && r == 0 && tr.MemOps > 0 {
					row.CheckDensity = float64(e.Runtime.ChecksPerformed) / float64(tr.MemOps)
				}
			}
			row.Throughput[cfg.Name()] = median(samples)
		}
		base := row.Throughput["Baseline"]
		for name, tp := range row.Throughput {
			if tp > 0 && base > 0 {
				row.Overhead[name] = base/tp - 1
			}
		}
		return row
	}, func(app *workload.App, err error) PerfRow {
		return PerfRow{App: app.Name, Err: err}
	})
}

// Figure13Data is the serial convenience form of Session.Figure13Data.
func Figure13Data(opt Options) []PerfRow { return serialSession(opt).Figure13Data() }

// median returns the middle sample (0 for empty input).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// Figure13 renders the throughput comparison.
func (s *Session) Figure13() string {
	rows := s.Figure13Data()
	names := ConfigNames()
	var b strings.Builder
	b.WriteString("Figure 13: Average throughput of the hardened applications (requests/sec)\n")
	t := stats.NewTable(append([]string{"Application"}, append(names, "Kd overhead", "checks/memop")...)...)
	var ovSum float64
	var ovMax float64
	var maxApp string
	measured := 0
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.App, "ERROR: "+r.Err.Error())
			continue
		}
		measured++
		cells := []string{r.App}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.0f", r.Throughput[n]))
		}
		ov := r.Overhead["Kaleidoscope"]
		ovSum += ov
		if ov > ovMax {
			ovMax = ov
			maxApp = r.App
		}
		cells = append(cells, stats.Pct(ov), stats.Pct(r.CheckDensity))
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	if measured > 0 {
		fmt.Fprintf(&b, "average Kaleidoscope overhead %s, maximum %s (%s); no invariant violations observed\n",
			stats.Pct(ovSum/float64(measured)), stats.Pct(ovMax), maxApp)
	}
	return b.String()
}

// Figure13 is the serial convenience form of Session.Figure13.
func Figure13(opt Options) string { return serialSession(opt).Figure13() }
