// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the nine synthetic applications:
//
//	Figure 1  — static vs runtime-observed CFI targets (MbedTLS)
//	Table 2   — application inventory
//	Table 3   — average/maximum points-to set sizes across configurations
//	Figure 10 — box plots of points-to set sizes
//	Figure 11 — average CFI targets per indirect callsite
//	Figure 12 — box plots of CFI targets
//	Figure 13 — throughput of hardened applications
//	Table 4   — branch/monitor coverage under the benchmark drivers
//	Table 5   — branch/monitor coverage under fuzzing
//
// Absolute numbers differ from the paper (the substrate is an interpreter on
// synthetic workloads); the shapes — which policy helps which application,
// where gains are capped, that no invariant fires — are the reproduction
// targets (see EXPERIMENTS.md).
package experiments

import (
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/workload"
)

// Options sizes the experiments; the zero value gives full-size runs.
type Options struct {
	Requests     int   // requests per benchmark run (default 200)
	PerfRequests int   // requests per throughput run (default 4000; larger to beat timer noise)
	Runs         int   // repetitions for throughput averaging (default 3)
	FuzzIters    int   // fuzzing executions per app (default 400)
	Seed         int64 // base RNG seed (default 1)
}

func (o Options) withDefaults() Options {
	if o.Requests == 0 {
		o.Requests = 200
	}
	if o.PerfRequests == 0 {
		o.PerfRequests = 4000
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.FuzzIters == 0 {
		o.FuzzIters = 400
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// AppData holds the per-application analysis results across the eight
// configurations of Table 3.
type AppData struct {
	App     *workload.App
	Systems map[string]*core.System // config name -> analysis
	// Sizes are points-to set sizes over the shared (fallback) population.
	Sizes map[string][]int
	// CFICounts are per-callsite permitted-target counts.
	CFICounts map[string][]int
}

// AnalyzeApp runs all eight configurations on one application. The baseline
// analysis is shared: every System's fallback equals the Baseline system's
// result population-wise (object spaces are deterministic).
func AnalyzeApp(app *workload.App) *AppData {
	d := &AppData{
		App:       app,
		Systems:   map[string]*core.System{},
		Sizes:     map[string][]int{},
		CFICounts: map[string][]int{},
	}
	m := app.MustModule()
	for _, cfg := range invariant.Ablations() {
		s := core.Analyze(m, cfg)
		name := cfg.Name()
		d.Systems[name] = s
		d.Sizes[name] = s.Sizes(s.Optimistic)
		d.CFICounts[name] = s.Harden().Optimistic.TargetCounts()
	}
	return d
}

// ConfigNames returns the eight configuration labels in the paper's column
// order.
func ConfigNames() []string {
	var out []string
	for _, cfg := range invariant.Ablations() {
		out = append(out, cfg.Name())
	}
	return out
}

// AnalyzeAll analyzes every application serially. Batch callers that want
// worker-pool parallelism, telemetry, or analysis reuse across artifacts
// should construct a Session and call its AnalyzeAll instead.
func AnalyzeAll() []*AppData {
	return serialSession(Options{}).AnalyzeAll()
}
