package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fuzzer"
	"repro/internal/invariant"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table2 renders the application inventory (paper Table 2).
func Table2() string {
	t := stats.NewTable("Application", "Description", "LoC (MiniC)")
	for _, app := range workload.Apps() {
		t.AddRow(app.Name, app.Descr, fmt.Sprintf("%d", app.LoC()))
	}
	return "Table 2: Evaluation Applications\n" + t.String()
}

// Table3Row is one application's row of Table 3.
type Table3Row struct {
	App    string
	Avg    map[string]float64 // config -> average points-to set size
	Max    map[string]int     // config -> maximum points-to set size
	Factor float64            // baseline avg / Kaleidoscope avg
}

// Table3Data computes Table 3 for all applications.
func Table3Data(data []*AppData) []Table3Row {
	var rows []Table3Row
	for _, d := range data {
		row := Table3Row{App: d.App.Name, Avg: map[string]float64{}, Max: map[string]int{}}
		for _, name := range ConfigNames() {
			row.Avg[name] = stats.Mean(d.Sizes[name])
			row.Max[name] = stats.Max(d.Sizes[name])
		}
		row.Factor = stats.Factor(row.Avg["Baseline"], row.Avg["Kaleidoscope"])
		rows = append(rows, row)
	}
	return rows
}

// Table3 renders average and maximum points-to set sizes per configuration
// (paper Table 3).
func Table3(data []*AppData) string {
	rows := Table3Data(data)
	names := ConfigNames()
	var b strings.Builder

	b.WriteString("Table 3: Average Points-to Set Size of top-level pointers\n")
	avg := stats.NewTable(append([]string{"Application"}, append(names, "Factor")...)...)
	for _, r := range rows {
		cells := []string{r.App}
		for _, n := range names {
			cells = append(cells, stats.F(r.Avg[n]))
		}
		cells = append(cells, stats.F(r.Factor))
		avg.AddRow(cells...)
	}
	b.WriteString(avg.String())

	b.WriteString("\nTable 3 (cont.): Max Points-to Set Size of top-level pointers\n")
	max := stats.NewTable(append([]string{"Application"}, append(names, "Factor")...)...)
	for _, r := range rows {
		cells := []string{r.App}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%d", r.Max[n]))
		}
		cells = append(cells, stats.F(stats.Factor(float64(r.Max["Baseline"]), float64(r.Max["Kaleidoscope"]))))
		max.AddRow(cells...)
	}
	b.WriteString(max.String())
	return b.String()
}

// CoverageRow is one application's row of Table 4 or 5. Err is set when the
// app's driver crashed (the row renders as an error instead of numbers).
type CoverageRow struct {
	App           string
	BranchTotal   int
	BranchExec    int
	MonitorTotal  int
	MonitorExec   int
	Violations    int
	CFIViolations int
	Err           error
}

// Table4Data runs the CFI benchmark drivers and collects coverage
// (paper Table 4), one application per worker-pool job.
func (s *Session) Table4Data() []CoverageRow {
	span, stop := s.phase("experiments/table4")
	defer stop()
	return perApp(s, s.workers(), "experiments/table4-app", span, func(app *workload.App) CoverageRow {
		h := s.System(app, invariant.All()).Harden()
		e := h.NewExecution(false)
		merged := e.Run("main", app.Requests(s.Opt.Requests, s.Opt.Seed))
		violations := len(e.Switcher.Violations())
		for r := 1; r < s.Opt.Runs; r++ {
			e2 := h.NewExecution(false)
			merged.Merge(e2.Run("main", app.Requests(s.Opt.Requests, s.Opt.Seed+int64(r))))
			violations += len(e2.Switcher.Violations())
		}
		exec, total := merged.BranchCoverage()
		return CoverageRow{
			App:          app.Name,
			BranchTotal:  total,
			BranchExec:   exec,
			MonitorTotal: h.MonitorSites(),
			MonitorExec:  merged.MonitorsExecuted(),
			Violations:   violations,
		}
	}, coverageErrRow)
}

// Table4Data is the serial convenience form of Session.Table4Data.
func Table4Data(opt Options) []CoverageRow { return serialSession(opt).Table4Data() }

// Table5Data runs the fuzzing campaign (paper Table 5), one application per
// worker-pool job.
func (s *Session) Table5Data() []CoverageRow {
	span, stop := s.phase("experiments/table5")
	defer stop()
	return perApp(s, s.workers(), "experiments/table5-app", span, func(app *workload.App) CoverageRow {
		h := s.System(app, invariant.All()).Harden()
		rep := fuzzer.Run(h, "main", app.FuzzSeeds, fuzzer.Config{
			Iterations: s.Opt.FuzzIters,
			Seed:       s.Opt.Seed,
		})
		return CoverageRow{
			App:           app.Name,
			BranchTotal:   rep.BranchTotal,
			BranchExec:    rep.BranchExec,
			MonitorTotal:  rep.MonitorTotal,
			MonitorExec:   rep.MonitorExec,
			Violations:    len(rep.Violations),
			CFIViolations: rep.CFIViolations,
		}
	}, coverageErrRow)
}

// Table5Data is the serial convenience form of Session.Table5Data.
func Table5Data(opt Options) []CoverageRow { return serialSession(opt).Table5Data() }

// coverageErrRow turns a crashed per-app driver into an error row.
func coverageErrRow(app *workload.App, err error) CoverageRow {
	return CoverageRow{App: app.Name, Err: err}
}

// renderCoverage renders Table 4/5-style coverage rows.
func renderCoverage(title string, rows []CoverageRow) string {
	t := stats.NewTable("Application", "Branches Total", "Exec.", "Perc.",
		"Monitors Total", "Exec.", "Perc.", "Invariant Violations")
	var bSum, bTot, mSum, mTot float64
	for _, r := range rows {
		if r.Err != nil {
			// Crashed driver: an error row, excluded from the summary sums.
			t.AddRow(r.App, "-", "-", "-", "-", "-", "-", "ERROR: "+r.Err.Error())
			continue
		}
		bPct, mPct := 0.0, 0.0
		if r.BranchTotal > 0 {
			bPct = float64(r.BranchExec) / float64(r.BranchTotal)
		}
		if r.MonitorTotal > 0 {
			mPct = float64(r.MonitorExec) / float64(r.MonitorTotal)
		}
		bSum += float64(r.BranchExec)
		bTot += float64(r.BranchTotal)
		mSum += float64(r.MonitorExec)
		mTot += float64(r.MonitorTotal)
		t.AddRow(r.App,
			fmt.Sprintf("%d", r.BranchTotal), fmt.Sprintf("%d", r.BranchExec), stats.Pct(bPct),
			fmt.Sprintf("%d", r.MonitorTotal), fmt.Sprintf("%d", r.MonitorExec), stats.Pct(mPct),
			fmt.Sprintf("%d", r.Violations))
	}
	summary := ""
	if bTot > 0 && mTot > 0 {
		summary = fmt.Sprintf("overall: %s of branches, %s of runtime monitors executed\n",
			stats.Pct(bSum/bTot), stats.Pct(mSum/mTot))
	}
	return title + "\n" + t.String() + summary
}

// Table4 renders branch and monitor coverage for the CFI evaluation.
func (s *Session) Table4() string {
	return renderCoverage("Table 4: Branch and runtime monitor coverage for CFI evaluation", s.Table4Data())
}

// Table4 is the serial convenience form of Session.Table4.
func Table4(opt Options) string { return serialSession(opt).Table4() }

// Table5 renders branch and monitor coverage after the fuzzing campaign.
func (s *Session) Table5() string {
	return renderCoverage("Table 5: Coverage for likely-invariant validation through fuzzing", s.Table5Data())
}

// Table5 is the serial convenience form of Session.Table5.
func Table5(opt Options) string { return serialSession(opt).Table5() }
