package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

var small = Options{Requests: 30, Runs: 2, FuzzIters: 40, Seed: 1}

func TestTable2ListsAllApps(t *testing.T) {
	s := Table2()
	for _, name := range []string{"mbedtls", "libtiff", "curl", "lighttpd", "memcached", "libpng", "libxml", "wget", "tinydtls"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table 2 missing %s", name)
		}
	}
}

func TestTable3ShapesHold(t *testing.T) {
	data := AnalyzeAll()
	rows := Table3Data(data)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string]Table3Row{}
	for _, r := range rows {
		byApp[r.App] = r
		// Every app improves under full Kaleidoscope.
		if r.Factor <= 1 {
			t.Errorf("%s: factor %.2f <= 1", r.App, r.Factor)
		}
		// Kaleidoscope is the best (or tied-best) column.
		for _, n := range ConfigNames() {
			if r.Avg["Kaleidoscope"] > r.Avg[n]+1e-9 {
				t.Errorf("%s: Kaleidoscope avg %.2f worse than %s %.2f", r.App, r.Avg["Kaleidoscope"], n, r.Avg[n])
			}
		}
	}
	// Per-paper shapes.
	if byApp["wget"].Max["Baseline"] != byApp["wget"].Max["Kaleidoscope"] {
		t.Error("wget max should be unchanged")
	}
	if byApp["tinydtls"].Max["Baseline"] != byApp["tinydtls"].Max["Kaleidoscope"] {
		t.Error("tinydtls max should be unchanged")
	}
	// MbedTLS-like: the largest factors come from the conjunction apps.
	if byApp["mbedtls"].Factor < byApp["lighttpd"].Factor {
		t.Error("mbedtls factor should exceed lighttpd's")
	}
	if byApp["libpng"].Factor < byApp["curl"].Factor {
		t.Error("libpng factor should exceed curl's")
	}
	// Rendering includes both halves.
	out := Table3(data)
	if !strings.Contains(out, "Average Points-to") || !strings.Contains(out, "Max Points-to") {
		t.Error("Table 3 rendering incomplete")
	}
}

func TestFigure1StaticOverapproximatesRuntime(t *testing.T) {
	d := Figure1Compute(small)
	if len(d.Sites) == 0 {
		t.Fatal("no indirect callsites")
	}
	looser := false
	for i := range d.Sites {
		if d.Static[i] < d.Observed[i] {
			t.Errorf("site %d: static %d < observed %d (unsound)", d.Sites[i], d.Static[i], d.Observed[i])
		}
		if d.Static[i] > d.Observed[i] {
			looser = true
		}
	}
	if !looser {
		t.Error("static analysis not looser than runtime anywhere: no imprecision to show")
	}
	if s := Figure1(small); !strings.Contains(s, "Runtime Observed") {
		t.Error("Figure 1 rendering incomplete")
	}
}

func TestFigures10to12Render(t *testing.T) {
	data := AnalyzeAll()
	f10 := Figure10(data)
	f11 := Figure11(data)
	f12 := Figure12(data)
	for _, s := range []string{f10, f11, f12} {
		if len(s) < 200 {
			t.Errorf("figure rendering too short:\n%s", s)
		}
	}
	if !strings.Contains(f10, "mbedtls") || !strings.Contains(f12, "tinydtls") {
		t.Error("figures missing apps")
	}
	// Figure 11: CFI averages weakly improve for every app.
	avgs := Figure11Data(data)
	for app, row := range avgs {
		if row["Kaleidoscope"] > row["Baseline"]+1e-9 {
			t.Errorf("%s: Kaleidoscope CFI avg %.2f worse than baseline %.2f", app, row["Kaleidoscope"], row["Baseline"])
		}
	}
}

func TestTable4CoverageAndZeroViolations(t *testing.T) {
	rows := Table4Data(small)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%s: %d invariant violations during benchmarking", r.App, r.Violations)
		}
		if r.BranchExec == 0 || r.BranchTotal == 0 {
			t.Errorf("%s: no branch coverage", r.App)
		}
		if r.MonitorExec == 0 {
			t.Errorf("%s: no monitors executed", r.App)
		}
		if r.MonitorExec > r.MonitorTotal {
			t.Errorf("%s: executed %d monitors of %d total", r.App, r.MonitorExec, r.MonitorTotal)
		}
	}
	if s := renderCoverage("x", rows); !strings.Contains(s, "overall") {
		t.Error("coverage rendering incomplete")
	}
}

func TestTable5FuzzingZeroViolations(t *testing.T) {
	rows := Table5Data(small)
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%s: %d invariant violations under fuzzing", r.App, r.Violations)
		}
		if r.CFIViolations != 0 {
			t.Errorf("%s: %d CFI violations under fuzzing", r.App, r.CFIViolations)
		}
		if r.BranchExec == 0 {
			t.Errorf("%s: no coverage", r.App)
		}
	}
}

func TestFigure13ThroughputAndDensity(t *testing.T) {
	rows := Figure13Data(Options{Requests: 60, PerfRequests: 200, Runs: 2, Seed: 1})
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput["Baseline"] <= 0 || r.Throughput["Kaleidoscope"] <= 0 {
			t.Errorf("%s: degenerate throughput %+v", r.App, r.Throughput)
		}
		if r.ViolationsObserved != 0 {
			t.Errorf("%s: violations during benchmarking", r.App)
		}
		if r.CheckDensity < 0 || r.CheckDensity > 0.5 {
			t.Errorf("%s: implausible check density %.3f", r.App, r.CheckDensity)
		}
	}
	if s := Figure13(Options{Requests: 40, PerfRequests: 120, Runs: 1, Seed: 1}); !strings.Contains(s, "overhead") {
		t.Error("Figure 13 rendering incomplete")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Requests == 0 || o.Runs == 0 || o.FuzzIters == 0 || o.Seed == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestConfigNamesOrder(t *testing.T) {
	names := ConfigNames()
	want := []string{"Baseline", "Kd-Ctx", "Kd-PA", "Kd-PWC", "Kd-Ctx-PA", "Kd-Ctx-PWC", "Kd-PA-PWC", "Kaleidoscope"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestFactorHelper(t *testing.T) {
	if stats.Factor(10, 5) != 2 {
		t.Error("factor")
	}
}

func TestExtDebloat(t *testing.T) {
	rows := ExtDebloatData()
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	anyExtra := false
	for _, r := range rows {
		if r.KeepOptimistic > r.KeepFallback {
			t.Errorf("%s: optimistic keeps more than fallback", r.App)
		}
		if r.KeepOptimistic < r.KeepFallback {
			anyExtra = true
		}
	}
	if !anyExtra {
		t.Error("no app shows extra optimistic debloating")
	}
	if s := ExtDebloat(); !strings.Contains(s, "debloating") {
		t.Error("rendering incomplete")
	}
}

func TestExtGraded(t *testing.T) {
	rows := ExtGradedData()
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Levels["Kaleidoscope"] > r.Levels["Baseline"]+1e-9 {
			t.Errorf("%s: full level looser than baseline", r.App)
		}
	}
	if s := ExtGraded(); !strings.Contains(s, "degradation") {
		t.Error("rendering incomplete")
	}
}

func TestExtIncremental(t *testing.T) {
	s := ExtIncremental()
	for _, want := range []string{"1 violation(s), 1 incremental restore(s)", "2 invariants still assumed"} {
		if !strings.Contains(s, want) {
			t.Errorf("incremental demo missing %q:\n%s", want, s)
		}
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	data := AnalyzeAll()[:2] // two apps suffice for the format check
	if err := WriteCSVs(dir, data); err != nil {
		t.Fatalf("WriteCSVs: %v", err)
	}
	for _, name := range []string{"table3.csv", "pts_mbedtls.csv", "cfi_mbedtls.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) < 2 {
			t.Errorf("%s has %d lines", name, len(lines))
		}
		if !strings.Contains(lines[0], "Kaleidoscope") && !strings.Contains(lines[0], "Kaleidoscope_count") {
			t.Errorf("%s header = %q", name, lines[0])
		}
	}
	// pts file has one row per population pointer plus header.
	b, _ := os.ReadFile(filepath.Join(dir, "pts_mbedtls.csv"))
	rows := strings.Count(strings.TrimSpace(string(b)), "\n")
	if want := len(data[0].Systems["Baseline"].Population()); rows != want {
		t.Errorf("pts rows = %d, want %d", rows, want)
	}
}
