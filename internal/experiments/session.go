package experiments

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Session is one evaluation run: sizing options, a worker-pool width, a
// shared per-(application, configuration) analysis cache, and an optional
// telemetry registry. All table/figure drivers hang off a Session; the
// package-level functions are serial single-artifact conveniences that each
// build a throwaway session.
//
// Parallelism contract: every driver fans its matrix out through
// runner.Map, which preserves submission order, and the underlying analyses
// and interpreter runs are pure functions of (app, config, seed) — so a
// parallel session renders byte-identical output to a serial one (asserted
// in internal/runner tests). The one exception is Figure 13, whose cells are
// wall-clock throughput: its measurement loops always run one at a time (on
// one goroutine) so concurrent cells cannot distort each other's timing, and
// its numbers vary run to run regardless of parallelism.
//
// Analysis jobs (pure, known-good) propagate failures as panics; execution
// jobs (Tables 4–5, Figure 13 — which interpret workloads and can
// legitimately fault) recover per-app panics into error rows, so one
// crashing workload cannot take down the batch.
type Session struct {
	Opt      Options
	Parallel int                 // worker-pool width; <= 0 means GOMAXPROCS
	Metrics  *telemetry.Registry // nil disables telemetry
	cache    *runner.Cache
}

// NewSession builds a session. parallel <= 0 selects GOMAXPROCS workers;
// metrics may be nil.
func NewSession(opt Options, parallel int, metrics *telemetry.Registry) *Session {
	return &Session{
		Opt:      opt.withDefaults(),
		Parallel: parallel,
		Metrics:  metrics,
		cache:    runner.NewCache(metrics),
	}
}

// serialSession is the implementation behind the package-level convenience
// functions: one worker, no telemetry.
func serialSession(opt Options) *Session { return NewSession(opt, 1, nil) }

// workers returns the effective worker-pool width.
func (s *Session) workers() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// phase opens one artifact driver's instrumentation: a phase timer plus a
// root span of the same name. The span is handed to the driver's pool jobs
// so their per-job spans nest under the artifact in the trace; the finish
// func closes both. Inert without a registry.
func (s *Session) phase(name string) (*telemetry.Span, func()) {
	stopTimer := s.Metrics.Timer(name).Start()
	span, finishSpan := s.Metrics.StartSpan(name, nil)
	return span, func() {
		finishSpan()
		stopTimer()
	}
}

// System returns the session-cached IGO analysis of app under cfg.
func (s *Session) System(app *workload.App, cfg invariant.Config) *core.System {
	return s.cache.System(app, cfg)
}

// AnalyzeAll analyzes every application under every configuration, fanning
// the 9×8 matrix across the worker pool. Cell failures are programming
// errors (analysis takes no runtime input) and propagate as panics.
func (s *Session) AnalyzeAll() []*AppData {
	span, stop := s.phase("experiments/analyze-all")
	defer stop()
	apps := workload.Apps()
	cfgs := invariant.Ablations()
	type cell struct {
		sys   *core.System
		sizes []int
		cfi   []int
	}
	tr := runner.Trace{Metrics: s.Metrics, Parent: span, Label: "experiments/analyze-cell"}
	res := runner.MapTraced(len(apps)*len(cfgs), s.workers(), tr, func(i int) (cell, error) {
		app, cfg := apps[i/len(cfgs)], cfgs[i%len(cfgs)]
		sys := s.System(app, cfg)
		return cell{
			sys:   sys,
			sizes: sys.Sizes(sys.Optimistic),
			cfi:   sys.Harden().Optimistic.TargetCounts(),
		}, nil
	})
	out := make([]*AppData, len(apps))
	for ai, app := range apps {
		d := &AppData{
			App:       app,
			Systems:   map[string]*core.System{},
			Sizes:     map[string][]int{},
			CFICounts: map[string][]int{},
		}
		for ci, cfg := range cfgs {
			r := res[ai*len(cfgs)+ci]
			if r.Err != nil {
				panic(r.Err)
			}
			name := cfg.Name()
			d.Systems[name] = r.Value.sys
			d.Sizes[name] = r.Value.sizes
			d.CFICounts[name] = r.Value.cfi
		}
		out[ai] = d
	}
	return out
}

// perApp fans one row-producing job per application across the worker pool
// with `workers` goroutines, converting recovered panics into error rows via
// errRow. Per-app job spans (named label) nest under the artifact span.
func perApp[T any](s *Session, workers int, label string, span *telemetry.Span, job func(app *workload.App) T, errRow func(app *workload.App, err error) T) []T {
	apps := workload.Apps()
	tr := runner.Trace{Metrics: s.Metrics, Parent: span, Label: label}
	res := runner.MapTraced(len(apps), workers, tr, func(i int) (T, error) {
		return job(apps[i]), nil
	})
	rows := make([]T, len(apps))
	for i, r := range res {
		if r.Err != nil {
			rows[i] = errRow(apps[i], r.Err)
		} else {
			rows[i] = r.Value
		}
	}
	return rows
}
