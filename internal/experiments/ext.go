package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cfi"
	"repro/internal/core"
	"repro/internal/debloat"
	"repro/internal/invariant"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ExtDebloatRow holds one application's debloating comparison (a §8
// extension experiment, not a paper table).
type ExtDebloatRow struct {
	App            string
	Functions      int
	KeepFallback   int
	KeepOptimistic int
}

// ExtDebloatData computes the callgraph-debloating comparison for every
// application, one app per worker-pool job. Debloating is pure analysis, so
// a failure is a programming error and propagates as a panic.
func (s *Session) ExtDebloatData() []ExtDebloatRow {
	span, stop := s.phase("experiments/ext-debloat")
	defer stop()
	return perApp(s, s.workers(), "experiments/ext-debloat-app", span, func(app *workload.App) ExtDebloatRow {
		rep := debloat.Compute(s.System(app, invariant.All()), "main")
		return ExtDebloatRow{
			App:            app.Name,
			Functions:      rep.Total,
			KeepFallback:   len(rep.KeepFall),
			KeepOptimistic: len(rep.KeepOpt),
		}
	}, func(app *workload.App, err error) ExtDebloatRow { panic(err) })
}

// ExtDebloatData is the serial convenience form of Session.ExtDebloatData.
func ExtDebloatData() []ExtDebloatRow { return serialSession(Options{}).ExtDebloatData() }

// ExtDebloat renders the debloating extension experiment.
func (s *Session) ExtDebloat() string {
	var b strings.Builder
	b.WriteString("Extension (paper §8): callgraph debloating under both memory views\n")
	t := stats.NewTable("Application", "Functions", "Fallback keeps", "Kaleidoscope keeps", "Extra removed")
	for _, r := range s.ExtDebloatData() {
		t.AddRow(r.App,
			fmt.Sprintf("%d", r.Functions),
			fmt.Sprintf("%d (%s)", r.KeepFallback, stats.Pct(float64(r.KeepFallback)/float64(r.Functions))),
			fmt.Sprintf("%d (%s)", r.KeepOptimistic, stats.Pct(float64(r.KeepOptimistic)/float64(r.Functions))),
			fmt.Sprintf("%d", r.KeepFallback-r.KeepOptimistic))
	}
	b.WriteString(t.String())
	b.WriteString("a likely-invariant violation restores access to fallback-kept code (dynamic debloating)\n")
	return b.String()
}

// ExtDebloat is the serial convenience form of Session.ExtDebloat.
func ExtDebloat() string { return serialSession(Options{}).ExtDebloat() }

// ExtGradedRow summarizes graded-fallback CFI tightness per level for one
// application (§8's finer-grained fallback).
type ExtGradedRow struct {
	App    string
	Levels map[string]float64 // config name -> avg CFI targets
}

// ExtGradedData computes per-level CFI tightness, one app per worker-pool
// job. Graded analysis runs its own ablation ladder, so it bypasses the
// session cache; like all pure-analysis drivers, failures panic.
func (s *Session) ExtGradedData() []ExtGradedRow {
	span, stop := s.phase("experiments/ext-graded")
	defer stop()
	return perApp(s, s.workers(), "experiments/ext-graded-app", span, func(app *workload.App) ExtGradedRow {
		g := core.AnalyzeGraded(app.MustModule())
		row := ExtGradedRow{App: app.Name, Levels: map[string]float64{}}
		for name, p := range g.Policies {
			row.Levels[name] = p.AvgTargets()
		}
		return row
	}, func(app *workload.App, err error) ExtGradedRow { panic(err) })
}

// ExtGradedData is the serial convenience form of Session.ExtGradedData.
func ExtGradedData() []ExtGradedRow { return serialSession(Options{}).ExtGradedData() }

// ExtGraded renders the graded-fallback extension experiment: the CFI
// tightness of every degradation level between full Kaleidoscope and the
// fallback.
func (s *Session) ExtGraded() string {
	var b strings.Builder
	b.WriteString("Extension (paper §8): graded fallback — CFI tightness per degradation level\n")
	names := ConfigNames()
	t := stats.NewTable(append([]string{"Application"}, names...)...)
	for _, r := range s.ExtGradedData() {
		cells := []string{r.App}
		for _, n := range names {
			cells = append(cells, stats.F(r.Levels[n]))
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	b.WriteString("one violation degrades a single policy: the system lands on an intermediate\ncolumn instead of falling all the way back to Baseline\n")
	return b.String()
}

// ExtGraded is the serial convenience form of Session.ExtGraded.
func ExtGraded() string { return serialSession(Options{}).ExtGraded() }

// incrementalDemoSrc is a small program with a live PA violation trigger,
// used to demonstrate incremental re-analysis (§8's second alternative).
const incrementalDemoSrc = `
struct dispatcher { fn handler; int* state; }
struct registry { fn on_load; fn on_save; }
dispatcher disp;
registry reg_doc;
registry reg_net;
int buff[16];

int normal_op(int* x) { return 1; }
int rare_op(int* x) { return 2; }
int doc_load(int* x) { return 3; }
int doc_save(int* x) { return 4; }
int net_load(int* x) { return 5; }
int net_save(int* x) { return 6; }

void patch(char* region, fn op, int off) {
  *(region + off) = op;
}

void hooks_set(registry* r, fn lo, fn sa) {
  r->on_load = lo;
  r->on_save = sa;
}

int main() {
  char* region;
  fn op;
  int r;
  disp.handler = &normal_op;
  hooks_set(&reg_doc, doc_load, doc_save);
  hooks_set(&reg_net, net_load, net_save);
  op = &rare_op;
  region = buff;
  if (input()) {
    region = &disp;
  }
  patch(region, op, 0);
  r = disp.handler(null);
  r = r + reg_doc.on_load(null);
  return r + reg_net.on_save(null);
}
`

// ExtIncremental demonstrates restore-on-violation: one PA violation
// triggers an incremental re-analysis that abandons only the PA assumption;
// the Ctx assumptions (and their precision) survive.
func ExtIncremental() string {
	var b strings.Builder
	b.WriteString("Extension (paper §8): incremental re-analysis on violation\n")
	sys, err := core.AnalyzeSource("incremental-demo", incrementalDemoSrc, invariant.All())
	if err != nil {
		return err.Error()
	}
	before := len(sys.Invariants())
	h := sys.Harden()
	fmt.Fprintf(&b, "full optimistic policy: avg %.2f CFI targets/site, %d invariants assumed\n",
		h.Optimistic.AvgTargets(), before)
	fmt.Fprintf(&b, "fallback policy:        avg %.2f CFI targets/site\n", h.Fallback.AvgTargets())

	e := sys.NewIncrementalExecution(false)
	tr := e.Run("main", []int64{1})
	if tr.Err != nil {
		fmt.Fprintf(&b, "run error: %v\n", tr.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "violating run: %d violation(s), %d incremental restore(s)\n",
		len(e.Controller.Violations), e.Controller.Restores)
	refreshed := cfi.PolicyFrom(sys.Optimistic)
	fmt.Fprintf(&b, "restored policy:        avg %.2f CFI targets/site, %d invariants still assumed\n",
		refreshed.AvgTargets(), len(sys.Invariants()))
	b.WriteString("only the violated PA assumption was abandoned; the Ctx assumptions survive,\n")
	b.WriteString("so the restored policy stays tighter than the pre-generated fallback\n")
	return b.String()
}
