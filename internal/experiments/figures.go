package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/invariant"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure1Data holds the per-callsite series of Figure 1: the target counts
// the static (baseline) analysis derives versus what execution observes.
type Figure1Data struct {
	Sites    []int
	Static   []int // baseline analysis target count per callsite
	Observed []int // runtime-observed target count per callsite
}

// Figure1Compute runs the MbedTLS-like workload and compares static CFI
// target counts with runtime-observed targets (paper Figure 1).
func (s *Session) Figure1Compute() *Figure1Data {
	_, stop := s.phase("experiments/figure1")
	defer stop()
	app := workload.MbedTLS()
	h := s.System(app, invariant.Config{}).Harden()
	e := h.NewExecution(true)
	merged := e.Run("main", app.Requests(s.Opt.Requests, s.Opt.Seed))
	for r := 1; r < s.Opt.Runs; r++ {
		merged.Merge(h.NewExecution(true).Run("main", app.Requests(s.Opt.Requests, s.Opt.Seed+int64(r))))
	}
	d := &Figure1Data{}
	sites := h.Fallback.Sites
	sort.Ints(sites)
	for _, site := range sites {
		d.Sites = append(d.Sites, site)
		d.Static = append(d.Static, len(h.Fallback.Targets[site]))
		d.Observed = append(d.Observed, len(merged.ObservedTargets(site)))
	}
	return d
}

// Figure1Compute is the serial convenience form of Session.Figure1Compute.
func Figure1Compute(opt Options) *Figure1Data { return serialSession(opt).Figure1Compute() }

// Figure1 renders the static-vs-observed comparison.
func (s *Session) Figure1() string {
	d := s.Figure1Compute()
	var b strings.Builder
	b.WriteString("Figure 1: Indirect callsite targets for the MbedTLS-like workload\n")
	t := stats.NewTable("Callsite", "Static Analysis", "Runtime Observed")
	for i, site := range d.Sites {
		t.AddRow(fmt.Sprintf("#%d", site), fmt.Sprintf("%d", d.Static[i]), fmt.Sprintf("%d", d.Observed[i]))
	}
	b.WriteString(t.String())
	sSum, oSum := 0, 0
	for i := range d.Sites {
		sSum += d.Static[i]
		oSum += d.Observed[i]
	}
	fmt.Fprintf(&b, "static admits %.1fx more targets than execution observes\n",
		stats.Factor(float64(sSum), float64(oSum)))
	return b.String()
}

// Figure1 is the serial convenience form of Session.Figure1.
func Figure1(opt Options) string { return serialSession(opt).Figure1() }

// boxFigure renders a per-app, per-config ASCII box-plot figure.
func boxFigure(title string, data []*AppData, series func(d *AppData, cfg string) []int) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	names := ConfigNames()
	for _, d := range data {
		axisMax := 1
		for _, n := range names {
			if m := stats.Max(series(d, n)); m > axisMax {
				axisMax = m
			}
		}
		fmt.Fprintf(&b, "%s (axis 0..%d)\n", d.App.Name, axisMax)
		for _, n := range names {
			box := stats.NewBox(series(d, n))
			fmt.Fprintf(&b, "  %-12s |%s| med=%.1f mean=%.2f out=%d\n",
				n, box.Render(float64(axisMax), 44), box.Median, box.Mean, len(box.Outliers))
		}
	}
	return b.String()
}

// Figure10 renders the distribution of points-to set sizes (paper Figure 10).
func Figure10(data []*AppData) string {
	return boxFigure("Figure 10: Points-to set sizes for pointers", data,
		func(d *AppData, cfg string) []int { return d.Sizes[cfg] })
}

// Figure11Data returns average CFI targets per app and configuration.
func Figure11Data(data []*AppData) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, d := range data {
		row := map[string]float64{}
		for _, n := range ConfigNames() {
			row[n] = stats.Mean(d.CFICounts[n])
		}
		out[d.App.Name] = row
	}
	return out
}

// Figure11 renders average CFI targets per indirect callsite (paper Figure 11).
func Figure11(data []*AppData) string {
	names := ConfigNames()
	t := stats.NewTable(append([]string{"Application"}, names...)...)
	avgs := Figure11Data(data)
	for _, d := range data {
		cells := []string{d.App.Name}
		for _, n := range names {
			cells = append(cells, stats.F(avgs[d.App.Name][n]))
		}
		t.AddRow(cells...)
	}
	return "Figure 11: Average CFI targets for indirect callsites\n" + t.String()
}

// Figure12 renders the distribution of CFI targets (paper Figure 12).
func Figure12(data []*AppData) string {
	return boxFigure("Figure 12: CFI targets for indirect callsites", data,
		func(d *AppData, cfg string) []int { return d.CFICounts[cfg] })
}
