// Package faultinject provides deterministic, seeded fault plans for the
// chaos differential harness (internal/chaos). A Plan arms a subset of named
// injection sites; each armed site fires exactly once, on a seed-chosen hit
// number, so a given seed always provokes the same fault at the same logical
// point of the pipeline regardless of wall-clock timing.
//
// Production layers carry an optional *Plan (nil = inert, zero overhead
// beyond a nil check) and call Fire/Err at their injection sites:
//
//   - pointsto: SolverBudget fires per worklist step and aborts the solve as
//     if its step budget were exhausted (typed pointsto.AbortError);
//   - runner: WorkerPanic fires at job start and panics inside the recovered
//     region, exercising panic rows, the panic counter, and the circuit
//     breaker;
//   - memview: SpuriousViolation fires inside a monitor hook and reports a
//     violation that no real invariant breach caused, exercising the secure
//     optimistic→fallback switch path; CorruptRecord mutates one invariant
//     record before runtime construction, exercising record validation
//     (typed memview.CorruptRecordError);
//   - runner cache: CachePoison fails a cache computation, exercising
//     single-flight error invalidation;
//   - persist: PersistWriteFail fails a result-store save before any byte is
//     written (the entry stays memory-only and dirty), PersistTornWrite
//     truncates a record mid-frame as if the process crashed with the rename
//     reordered before the data reached disk, and PersistBitFlip corrupts one
//     stored byte after a successful save — the latter two are discovered at
//     the next load, which must quarantine the record (typed
//     persist.CorruptEntryError) and fall back to a fresh solve.
//
// Every fire is counted into the attached telemetry registry under
// "fault/fired/<site>", so a chaos run's telemetry shows exactly which
// faults actually landed.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Site names one fault-injection point in the pipeline.
type Site string

// The injection sites threaded through the solve/monitor pipeline.
const (
	// SolverBudget aborts a pointer-analysis solve mid-worklist, as if the
	// step budget were exhausted.
	SolverBudget Site = "pointsto/solver-budget"
	// WorkerPanic panics inside a runner.Map job (recovered by the pool).
	WorkerPanic Site = "runner/worker-panic"
	// SpuriousViolation makes a runtime monitor report a violation that no
	// real invariant breach caused.
	SpuriousViolation Site = "memview/spurious-violation"
	// CorruptRecord corrupts one likely-invariant record before the monitor
	// runtime is built from it.
	CorruptRecord Site = "memview/corrupt-record"
	// CachePoison fails an analysis computation inside the single-flight
	// cache.
	CachePoison Site = "runner/cache-poison"
	// PersistWriteFail fails a persistent result-store save before anything
	// is written (as if the disk returned EIO).
	PersistWriteFail Site = "persist/write-fail"
	// PersistTornWrite truncates a persisted record mid-frame, simulating a
	// crash where the rename landed before the data did.
	PersistTornWrite Site = "persist/torn-write"
	// PersistBitFlip flips one byte of a record after a successful save,
	// simulating at-rest media corruption.
	PersistBitFlip Site = "persist/bit-flip"
)

// Sites returns every injection site in deterministic order (the order plan
// derivation consumes seed randomness in).
func Sites() []Site {
	return []Site{SolverBudget, WorkerPanic, SpuriousViolation, CorruptRecord, CachePoison,
		PersistWriteFail, PersistTornWrite, PersistBitFlip}
}

// hitWindow bounds the 1-based hit number an armed site may fire at, chosen
// per site so faults land inside the small paper workloads (e.g. every paper
// app solves in a few hundred worklist steps, and one chaos sweep starts
// under a dozen pool jobs).
var hitWindow = map[Site]int64{
	SolverBudget:      300,
	WorkerPanic:       8,
	SpuriousViolation: 40,
	CorruptRecord:     4,
	CachePoison:       10,
	PersistWriteFail:  4,
	PersistTornWrite:  4,
	PersistBitFlip:    4,
}

// Injected is the typed error surfaced when an injected fault is reported
// through an error path (rather than a panic or a silent state change).
type Injected struct {
	Site Site
	Hit  int64 // 1-based hit number the fault fired at
}

func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (hit %d)", e.Site, e.Hit)
}

// arm is one armed site: fires exactly once, on hit number `at`.
type arm struct {
	at    int64
	hits  atomic.Int64
	fired atomic.Int64
}

// Plan is a seeded fault plan. The zero of *Plan (nil) is inert: every
// method is safe to call and reports no faults. A Plan is safe for
// concurrent use; arming is fixed at construction.
type Plan struct {
	seed    int64
	arms    map[Site]*arm
	metrics *telemetry.Registry // set before concurrent use; nil = uncounted
}

// NewPlan derives a fault plan from seed: each site is armed with
// probability one half at a hit number inside its window, and at least one
// site is always armed (a plan that cannot fire proves nothing).
func NewPlan(seed int64) *Plan {
	r := rand.New(rand.NewSource(seed))
	p := &Plan{seed: seed, arms: map[Site]*arm{}}
	for _, s := range Sites() {
		if r.Intn(2) == 1 {
			p.arms[s] = &arm{at: 1 + r.Int63n(hitWindow[s])}
		}
	}
	if len(p.arms) == 0 {
		s := Sites()[r.Intn(len(Sites()))]
		p.arms[s] = &arm{at: 1 + r.Int63n(hitWindow[s])}
	}
	return p
}

// Explicit arms exactly the given sites, each firing on its first hit. For
// focused tests.
func Explicit(sites ...Site) *Plan {
	p := &Plan{arms: map[Site]*arm{}}
	for _, s := range sites {
		p.arms[s] = &arm{at: 1}
	}
	return p
}

// ExplicitAt arms one site firing on the given 1-based hit number.
func ExplicitAt(site Site, hit int64) *Plan {
	if hit < 1 {
		hit = 1
	}
	return &Plan{arms: map[Site]*arm{site: {at: hit}}}
}

// SetMetrics attaches a telemetry registry; every fire then increments
// "fault/fired/<site>". Must be set before the plan is used concurrently.
func (p *Plan) SetMetrics(r *telemetry.Registry) {
	if p != nil {
		p.metrics = r
	}
}

// Seed returns the seed the plan was derived from (0 for Explicit plans).
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Armed reports whether site can ever fire under this plan.
func (p *Plan) Armed(site Site) bool {
	return p != nil && p.arms[site] != nil
}

// Fire counts one hit at site and reports whether the fault fires — true
// exactly once per armed site, on its seed-chosen hit. Safe on nil plans and
// from concurrent goroutines.
func (p *Plan) Fire(site Site) bool {
	if p == nil {
		return false
	}
	a := p.arms[site]
	if a == nil {
		return false
	}
	if a.hits.Add(1) != a.at {
		return false
	}
	a.fired.Store(a.at)
	if p.metrics != nil {
		p.metrics.Counter("fault/fired/" + string(site)).Inc()
	}
	return true
}

// Err is Fire surfaced as a typed error: *Injected when the fault fires,
// nil otherwise.
func (p *Plan) Err(site Site) error {
	if !p.Fire(site) {
		return nil
	}
	return &Injected{Site: site, Hit: p.arms[site].at}
}

// Fired reports whether site's fault has fired.
func (p *Plan) Fired(site Site) bool {
	return p != nil && p.arms[site] != nil && p.arms[site].fired.Load() != 0
}

// FiredSites lists the sites whose faults have fired, sorted.
func (p *Plan) FiredSites() []Site {
	if p == nil {
		return nil
	}
	var out []Site
	for s, a := range p.arms {
		if a.fired.Load() != 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the plan deterministically: seed plus each armed site with
// its firing hit, in Sites() order.
func (p *Plan) String() string {
	if p == nil {
		return "fault plan: none"
	}
	parts := make([]string, 0, len(p.arms))
	for _, s := range Sites() {
		if a := p.arms[s]; a != nil {
			parts = append(parts, fmt.Sprintf("%s@%d", s, a.at))
		}
	}
	return fmt.Sprintf("fault plan seed=%d: %s", p.seed, strings.Join(parts, ", "))
}
