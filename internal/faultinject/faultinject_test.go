package faultinject

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestNilPlanInert checks every method is safe and inert on a nil plan.
func TestNilPlanInert(t *testing.T) {
	var p *Plan
	if p.Fire(WorkerPanic) || p.Armed(WorkerPanic) || p.Fired(WorkerPanic) {
		t.Error("nil plan reports activity")
	}
	if err := p.Err(CachePoison); err != nil {
		t.Errorf("nil plan Err = %v", err)
	}
	if got := p.FiredSites(); got != nil {
		t.Errorf("nil plan FiredSites = %v", got)
	}
	p.SetMetrics(telemetry.New())
	if p.Seed() != 0 || p.String() != "fault plan: none" {
		t.Errorf("nil plan identity: seed=%d str=%q", p.Seed(), p.String())
	}
}

// TestPlanDeterminism checks same-seed plans arm the same sites at the same
// hits, and behave identically under the same hit sequence.
func TestPlanDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 64; seed++ {
		a, b := NewPlan(seed), NewPlan(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %q != %q", seed, a, b)
		}
		armed := 0
		for _, s := range Sites() {
			if a.Armed(s) != b.Armed(s) {
				t.Fatalf("seed %d: arming mismatch at %s", seed, s)
			}
			if a.Armed(s) {
				armed++
			}
			for hit := 0; hit < 500; hit++ {
				if a.Fire(s) != b.Fire(s) {
					t.Fatalf("seed %d: fire mismatch at %s hit %d", seed, s, hit)
				}
			}
		}
		if armed == 0 {
			t.Fatalf("seed %d: plan arms no site", seed)
		}
	}
}

// TestFireExactlyOnce checks an armed site fires on exactly its chosen hit,
// once, even under concurrent hammering.
func TestFireExactlyOnce(t *testing.T) {
	p := ExplicitAt(SolverBudget, 37)
	var fires int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.Fire(SolverBudget) {
					mu.Lock()
					fires++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fires != 1 {
		t.Fatalf("fired %d times, want exactly 1", fires)
	}
	if !p.Fired(SolverBudget) {
		t.Error("Fired not recorded")
	}
	if got := p.FiredSites(); len(got) != 1 || got[0] != SolverBudget {
		t.Errorf("FiredSites = %v", got)
	}
}

// TestErrTyped checks Err surfaces the fire as a typed *Injected.
func TestErrTyped(t *testing.T) {
	p := Explicit(CachePoison)
	err := p.Err(CachePoison)
	var inj *Injected
	if !errors.As(err, &inj) {
		t.Fatalf("Err = %v, want *Injected", err)
	}
	if inj.Site != CachePoison || inj.Hit != 1 {
		t.Errorf("Injected = %+v", inj)
	}
	if err := p.Err(CachePoison); err != nil {
		t.Errorf("second Err = %v, want nil (single-shot)", err)
	}
	if p.Err(WorkerPanic) != nil {
		t.Error("unarmed site produced an error")
	}
}

// TestMetricsCounters checks fires land in fault/fired/<site> counters.
func TestMetricsCounters(t *testing.T) {
	reg := telemetry.New()
	p := Explicit(WorkerPanic, SpuriousViolation)
	p.SetMetrics(reg)
	p.Fire(WorkerPanic)
	p.Fire(WorkerPanic) // past the single shot: no second count
	p.Fire(SpuriousViolation)
	if got := reg.Counter("fault/fired/" + string(WorkerPanic)).Value(); got != 1 {
		t.Errorf("worker-panic fires = %d, want 1", got)
	}
	if got := reg.Counter("fault/fired/" + string(SpuriousViolation)).Value(); got != 1 {
		t.Errorf("spurious-violation fires = %d, want 1", got)
	}
}

// TestHitWindowsCoverAllSites checks plan derivation has a window for every
// site (a new site without a window would panic NewPlan's Int63n).
func TestHitWindowsCoverAllSites(t *testing.T) {
	for _, s := range Sites() {
		if hitWindow[s] <= 0 {
			t.Errorf("site %s has no hit window", s)
		}
	}
}

// TestSiteInventory pins the registered site list: eight sites, including
// the three persistence faults, in deterministic order. Chaos plans and the
// -fault-list flags of kscope-serve/kscope-bench enumerate exactly this.
func TestSiteInventory(t *testing.T) {
	want := []Site{SolverBudget, WorkerPanic, SpuriousViolation, CorruptRecord,
		CachePoison, PersistWriteFail, PersistTornWrite, PersistBitFlip}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites() = %v, want %d sites", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sites()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
