package core

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/minic"
)

// gradedSrc has two independent invariant-violation triggers: input #1
// drives the PA violation (arithmetic pointer really addresses a struct),
// input #2 drives the Ctx violation (the helper redirects its critical
// argument).
const gradedSrc = `
struct disp { fn handler; int* state; }
struct holder { int n; int** slot; }
disp d1;
holder h1;
holder h2;
holder sneaky;
int* s1[2];
int* s2[2];
int* s3[2];
int buff[16];
int v1;
int v2;

int normal_op(int* x) { return 1; }
int rare_op(int* x) { return 2; }

void patch(char* region, fn op, int off) {
  *(region + off) = op;
}

void insert(holder* b, int* v, int redirect) {
  if (redirect) {
    b = &sneaky;
  }
  b->slot[0] = v;
}

int main() {
  char* region;
  fn op;
  int paTrigger;
  int ctxTrigger;
  paTrigger = input();
  ctxTrigger = input();
  h1.slot = s1;
  h2.slot = s2;
  sneaky.slot = s3;
  d1.handler = &normal_op;
  op = &rare_op;
  region = buff;
  if (paTrigger) {
    region = &d1;
  }
  patch(region, op, 0);
  insert(&h1, &v1, ctxTrigger);
  insert(&h2, &v2, 0);
  return d1.handler(null);
}
`

func gradedSystem(t *testing.T) *GradedSystem {
	t.Helper()
	m, err := minic.Compile("graded", gradedSrc)
	if err != nil {
		t.Fatal(err)
	}
	return AnalyzeGraded(m)
}

func TestGradedCleanRunStaysFull(t *testing.T) {
	g := gradedSystem(t)
	e := g.NewExecution(false)
	tr := e.Run("main", []int64{0, 0})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	if e.Controller.Active() != invariant.All() {
		t.Errorf("clean run degraded to %s", e.Controller.Active().Name())
	}
	if len(e.Controller.Violations()) != 0 {
		t.Errorf("violations: %v", e.Controller.Violations())
	}
	if e.Controller.CFILookups == 0 {
		t.Error("no CFI lookups")
	}
}

func TestGradedSingleViolationDropsOnePolicy(t *testing.T) {
	g := gradedSystem(t)
	e := g.NewExecution(false)
	tr := e.Run("main", []int64{1, 0}) // PA violation only
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	got := e.Controller.Active()
	want := invariant.Config{Ctx: true, PWC: true}
	if got != want {
		t.Fatalf("active config = %s, want %s", got.Name(), want.Name())
	}
	if len(e.Controller.Transitions) != 1 || e.Controller.Transitions[0] != "Kd-Ctx-PWC" {
		t.Errorf("transitions = %v", e.Controller.Transitions)
	}
	// The degraded level still beats the full fallback on CFI tightness.
	full := g.Policies["Kaleidoscope"]
	level := g.Policies["Kd-Ctx-PWC"]
	base := g.Policies["Baseline"]
	if level.AvgTargets() > base.AvgTargets() {
		t.Errorf("degraded level looser than fallback: %.2f > %.2f", level.AvgTargets(), base.AvgTargets())
	}
	_ = full
}

func TestGradedTwoViolationsDropTwoPolicies(t *testing.T) {
	g := gradedSystem(t)
	e := g.NewExecution(false)
	tr := e.Run("main", []int64{1, 1}) // PA and Ctx violations
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	got := e.Controller.Active()
	// Ctx monitors only exist at levels where Ctx is assumed; after the PA
	// drop the active level is Kd-Ctx-PWC, whose Ctx monitor then fires.
	want := invariant.Config{PWC: true}
	if got != want {
		t.Fatalf("active config = %s, want %s (transitions %v)", got.Name(), want.Name(), e.Controller.Transitions)
	}
	if n := len(e.Controller.Violations()); n < 2 {
		t.Errorf("violations = %d, want >= 2", n)
	}
}

func TestGradedSoundnessAfterDegradation(t *testing.T) {
	g := gradedSystem(t)
	e := g.NewExecution(true)
	tr := e.Run("main", []int64{1, 1})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	// The active level's own analysis must be sound for this run (its
	// remaining invariants were not violated).
	active := g.Systems[e.Controller.Active().Name()]
	if bad := SoundnessReport(active.Optimistic, tr); len(bad) != 0 {
		t.Errorf("active level unsound after degradation:\n%v", bad)
	}
	// And the ultimate fallback is of course sound too.
	if bad := SoundnessReport(g.Systems["Baseline"].Optimistic, tr); len(bad) != 0 {
		t.Errorf("fallback unsound:\n%v", bad)
	}
}

func TestGradedRepeatedViolationsAreIdempotent(t *testing.T) {
	g := gradedSystem(t)
	e := g.NewExecution(false)
	// Run the same violating input repeatedly within one execution context.
	for i := 0; i < 3; i++ {
		if tr := e.Run("main", []int64{1, 0}); tr.Err != nil {
			t.Fatalf("run %d: %v", i, tr.Err)
		}
	}
	if got := e.Controller.Active(); got != (invariant.Config{Ctx: true, PWC: true}) {
		t.Errorf("active = %s after repeated PA violations", got.Name())
	}
	if len(e.Controller.Transitions) != 1 {
		t.Errorf("transitions = %v, want a single degradation", e.Controller.Transitions)
	}
}

func TestGradedAnalyzeProducesAllLevels(t *testing.T) {
	g := gradedSystem(t)
	if len(g.Systems) != 8 || len(g.Policies) != 8 {
		t.Fatalf("levels = %d systems, %d policies", len(g.Systems), len(g.Policies))
	}
	for _, cfg := range invariant.Ablations() {
		if g.Systems[cfg.Name()] == nil || g.Policies[cfg.Name()] == nil {
			t.Errorf("missing level %s", cfg.Name())
		}
	}
}
