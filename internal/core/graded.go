package core

import (
	"crypto/rand"
	"encoding/binary"

	"repro/internal/cfi"
	"repro/internal/interp"
	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/memview"
)

// This file implements the finer-grained fallback mechanism sketched in the
// paper's Discussion (§8): instead of one all-or-nothing optimistic→fallback
// switch, the system pre-generates the memory views of every invariant
// configuration and degrades precision one policy at a time. When a PA
// monitor fires, only the PA assumptions are abandoned: the view for the
// remaining {Ctx, PWC} configuration — still far tighter than the fallback —
// is installed, and its own monitors keep running.

// GradedSystem holds the analyses and CFI policies of all eight invariant
// configurations.
type GradedSystem struct {
	Module   *ir.Module
	Systems  map[string]*System     // config name -> analysis
	Policies map[string]*cfi.Policy // config name -> optimistic policy of that config
}

// AnalyzeGraded runs every configuration (the same sweep Table 3 performs)
// and prepares per-level CFI policies.
func AnalyzeGraded(m *ir.Module) *GradedSystem {
	g := &GradedSystem{
		Module:   m,
		Systems:  map[string]*System{},
		Policies: map[string]*cfi.Policy{},
	}
	for _, cfg := range invariant.Ablations() {
		s := Analyze(m, cfg)
		g.Systems[cfg.Name()] = s
		g.Policies[cfg.Name()] = cfi.PolicyFrom(s.Optimistic)
	}
	return g
}

// GradedController implements interp.Hooks: it runs the monitors of the
// currently active level and performs CFI lookups against that level's
// view, degrading one invariant policy per violation through a secret-gated
// transition (mirroring §5's switch integrity).
type GradedController struct {
	g        *GradedSystem
	cur      invariant.Config
	runtimes map[string]*memview.Runtime
	secret   uint64

	violations []memview.Violation
	// Transitions records the sequence of installed configurations.
	Transitions []string
	// CFILookups counts indirect-call policy checks.
	CFILookups int64
}

// Active returns the currently installed configuration.
func (c *GradedController) Active() invariant.Config { return c.cur }

// Violations returns all recorded violations.
func (c *GradedController) Violations() []memview.Violation { return c.violations }

// ChecksPerformed sums monitor checks across all levels that ran.
func (c *GradedController) ChecksPerformed() int64 {
	var n int64
	for _, rt := range c.runtimes {
		n += rt.ChecksPerformed
	}
	return n
}

// OnViolation implements memview.ViolationHandler: drop the violated policy
// from the active configuration and install the corresponding level.
func (c *GradedController) OnViolation(v Violation) { c.degrade(c.secret, v) }

// Violation aliases memview.Violation for the handler signature.
type Violation = memview.Violation

// degrade performs the gated level transition.
func (c *GradedController) degrade(gate uint64, v memview.Violation) {
	if gate != c.secret {
		return // illegitimate entry: refuse, like Switcher.Switch
	}
	c.violations = append(c.violations, v)
	next := c.cur
	switch v.Kind {
	case invariant.PA:
		next.PA = false
	case invariant.PWC:
		next.PWC = false
	case invariant.Ctx:
		next.Ctx = false
	}
	if next == c.cur {
		return // policy already degraded; nothing further to drop
	}
	c.cur = next
	c.Transitions = append(c.Transitions, next.Name())
}

// current returns the active level's monitor runtime.
func (c *GradedController) current() *memview.Runtime { return c.runtimes[c.cur.Name()] }

// PtrAdd forwards to the active level's PA monitors (inactive levels have no
// entry for the site and no-op).
func (c *GradedController) PtrAdd(site int, base interp.Value) { c.current().PtrAdd(site, base) }

// FieldAddr forwards to the active level's PWC monitors.
func (c *GradedController) FieldAddr(site int, base, result interp.Value) {
	c.current().FieldAddr(site, base, result)
}

// CtxCall forwards callsite recording to the active level.
func (c *GradedController) CtxCall(site int, args []interp.Value) { c.current().CtxCall(site, args) }

// CtxCheck forwards the critical-parameter check to the active level.
func (c *GradedController) CtxCheck(site int, vals []interp.Value) { c.current().CtxCheck(site, vals) }

// CheckICall looks the target up in the active level's CFI policy.
func (c *GradedController) CheckICall(site int, target string) bool {
	c.CFILookups++
	return c.g.Policies[c.cur.Name()].Permits(site, target)
}

var _ interp.Hooks = (*GradedController)(nil)

// GradedExecution is a monitored run with graded fallback.
type GradedExecution struct {
	Machine    *interp.Machine
	Controller *GradedController
}

// NewExecution builds a graded execution starting at full Kaleidoscope. The
// interpreter instrumentation is the union of every level's monitor sites,
// so degraded levels find their monitors already in place.
func (g *GradedSystem) NewExecution(track bool) *GradedExecution {
	var b [8]byte
	_, _ = rand.Read(b[:])
	ctrl := &GradedController{
		g:        g,
		cur:      invariant.All(),
		runtimes: map[string]*memview.Runtime{},
		secret:   binary.LittleEndian.Uint64(b[:]) | 1,
	}
	union := &interp.Instrumentation{
		PtrAddSites: map[int]bool{},
		FieldSites:  map[int]bool{},
		CtxCallArgs: map[int][]int{},
		CtxChecks:   map[int][]invariant.CtxSample{},
		CheckICalls: true,
	}
	for name, s := range g.Systems {
		rt, ins := memview.NewRuntimeWithHandler(s.Optimistic, ctrl)
		ctrl.runtimes[name] = rt
		for site := range ins.PtrAddSites {
			union.PtrAddSites[site] = true
		}
		for site := range ins.FieldSites {
			union.FieldSites[site] = true
		}
		for site, args := range ins.CtxCallArgs {
			union.CtxCallArgs[site] = args
		}
		for site, samples := range ins.CtxChecks {
			union.CtxChecks[site] = samples
		}
	}
	mc := interp.New(g.Module, interp.Config{
		Hooks:         ctrl,
		Instr:         union,
		TrackPointsTo: track,
	})
	return &GradedExecution{Machine: mc, Controller: ctrl}
}

// Run executes the entry function under graded monitoring.
func (e *GradedExecution) Run(entry string, inputs []int64) *interp.Trace {
	return e.Machine.Run(entry, inputs)
}
