package core

import (
	"repro/internal/cfi"
	"repro/internal/interp"
	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/memview"
	"repro/internal/pointsto"
)

// Incremental fallback (paper §8, second alternative): instead of switching
// to a pre-generated fallback memory view, an invariant violation triggers
// an incremental re-analysis (pointsto.Result.Restore) that abandons only
// the violated assumption and refreshes the CFI policy and monitors on the
// fly. Precision degrades by exactly one invariant per violation — strictly
// finer-grained than even the graded controller, at the cost of an online
// solver pass.

// IncrementalController implements interp.Hooks with restore-on-violation.
type IncrementalController struct {
	opt     *pointsto.Result
	policy  *cfi.Policy
	runtime *memview.Runtime

	// Violations lists every violation observed, in order.
	Violations []memview.Violation
	// Restores counts successful incremental re-analyses.
	Restores int
	// CFILookups counts indirect-call policy checks.
	CFILookups int64
}

// IncrementalExecution is a monitored run with restore-on-violation.
type IncrementalExecution struct {
	Machine    *interp.Machine
	Controller *IncrementalController
}

// NewIncrementalExecution builds an execution whose violations trigger
// incremental re-analysis. The system's optimistic analysis is mutated by
// restores, so construct a fresh System per execution context when isolation
// matters.
func (s *System) NewIncrementalExecution(track bool) *IncrementalExecution {
	ctrl := &IncrementalController{opt: s.Optimistic}
	ctrl.refresh()
	mc := interp.New(s.Module, interp.Config{
		Hooks:         ctrl,
		Instr:         fullInstrumentation(s.Module, s.Optimistic),
		TrackPointsTo: track,
	})
	return &IncrementalExecution{Machine: mc, Controller: ctrl}
}

// Run executes the entry function under incremental monitoring.
func (e *IncrementalExecution) Run(entry string, inputs []int64) *interp.Trace {
	return e.Machine.Run(entry, inputs)
}

// refresh rebuilds the CFI policy and monitor runtime from the (possibly
// restored) analysis state.
func (c *IncrementalController) refresh() {
	c.policy = cfi.PolicyFrom(c.opt)
	rt, _ := memview.NewRuntimeWithHandler(c.opt, c)
	c.runtime = rt
}

// OnViolation implements memview.ViolationHandler: find the violated
// invariant, restore its constraints incrementally, and refresh the policy
// and monitors.
func (c *IncrementalController) OnViolation(v memview.Violation) {
	c.Violations = append(c.Violations, v)
	for _, rec := range c.opt.Invariants() {
		if rec.Kind != v.Kind {
			continue
		}
		match := rec.Site == v.Site
		if !match && rec.Kind == invariant.PWC {
			for _, s := range rec.CycleFieldSites {
				if s == v.Site {
					match = true
					break
				}
			}
		}
		if !match {
			continue
		}
		if err := c.opt.Restore(rec); err == nil {
			c.Restores++
			c.refresh()
		}
		return
	}
}

// PtrAdd forwards to the current monitor runtime.
func (c *IncrementalController) PtrAdd(site int, base interp.Value) { c.runtime.PtrAdd(site, base) }

// FieldAddr forwards to the current monitor runtime.
func (c *IncrementalController) FieldAddr(site int, base, result interp.Value) {
	c.runtime.FieldAddr(site, base, result)
}

// CtxCall forwards to the current monitor runtime.
func (c *IncrementalController) CtxCall(site int, args []interp.Value) {
	c.runtime.CtxCall(site, args)
}

// CtxCheck forwards to the current monitor runtime.
func (c *IncrementalController) CtxCheck(site int, vals []interp.Value) {
	c.runtime.CtxCheck(site, vals)
}

// CheckICall consults the current (possibly refreshed) CFI policy.
func (c *IncrementalController) CheckICall(site int, target string) bool {
	c.CFILookups++
	return c.policy.Permits(site, target)
}

var _ interp.Hooks = (*IncrementalController)(nil)

// fullInstrumentation instruments every PtrAdd and FieldAddr site plus all
// Ctx sites of the current invariants. Restored analyses may grow PA filter
// sets at sites that previously filtered nothing, so all arithmetic and
// field-access sites must carry hooks from the start (the hooks no-op while
// the runtime has no entry for a site).
func fullInstrumentation(m *ir.Module, opt *pointsto.Result) *interp.Instrumentation {
	ins := &interp.Instrumentation{
		PtrAddSites: map[int]bool{},
		FieldSites:  map[int]bool{},
		CtxCallArgs: map[int][]int{},
		CtxChecks:   map[int][]invariant.CtxSample{},
		CheckICalls: true,
	}
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			switch in.(type) {
			case *ir.PtrAdd:
				ins.PtrAddSites[ir.InstrID(in)] = true
			case *ir.FieldAddr:
				ins.FieldSites[ir.InstrID(in)] = true
			}
		})
	}
	for _, rec := range opt.Invariants() {
		if rec.Kind != invariant.Ctx {
			continue
		}
		ins.CtxChecks[rec.Site] = rec.CtxSamples
		for _, cs := range rec.Callsites {
			ins.CtxCallArgs[cs] = rec.CtxParams
		}
	}
	return ins
}
