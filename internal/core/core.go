// Package core is the Kaleidoscope IGO (invariant-guided optimistic) pointer
// analysis engine — the paper's primary contribution. It orchestrates the
// three stages of Figure 4:
//
//  1. run the standard pointer analysis → the fallback memory view;
//  2. run the analysis assuming the selected likely invariants → the
//     optimistic memory view;
//  3. derive runtime monitors and the secure memory-view switcher so a
//     hardened execution starts optimistic and degrades soundly on
//     invariant violation.
package core

import (
	"context"
	"fmt"

	"repro/internal/cfi"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/memview"
	"repro/internal/minic"
	"repro/internal/pointsto"
	"repro/internal/telemetry"
)

// System is the result of the IGO analysis on one module: the two points-to
// collections plus the invariant/monitor inventory carried by the optimistic
// one.
type System struct {
	Module     *ir.Module
	Config     invariant.Config
	Fallback   *pointsto.Result // stage ① — sound, imprecise
	Optimistic *pointsto.Result // stage ② — precise while the invariants hold
	// Metrics, when non-nil, receives solver and interpreter telemetry from
	// this system and every execution derived from it.
	Metrics *telemetry.Registry
}

// Analyze runs the IGO pointer analysis with the given likely-invariant
// configuration. With no invariants enabled the optimistic result aliases
// the fallback.
func Analyze(m *ir.Module, cfg invariant.Config) *System {
	return AnalyzeWithMetrics(m, cfg, nil)
}

// AnalyzeWithMetrics is Analyze with an attached telemetry registry: the
// fallback and optimistic stages are timed separately, and both solver runs
// report their constraint/worklist/SCC statistics into the registry.
func AnalyzeWithMetrics(m *ir.Module, cfg invariant.Config, metrics *telemetry.Registry) *System {
	return AnalyzeWithFallback(m, cfg, nil, metrics)
}

// AnalyzeWithFallback is AnalyzeWithMetrics with an optionally precomputed
// stage-① result. The fallback analysis is configuration-independent, so
// batch drivers (internal/runner) solve it once per module and share it
// across all optimistic configurations; passing nil computes it here.
func AnalyzeWithFallback(m *ir.Module, cfg invariant.Config, fallback *pointsto.Result, metrics *telemetry.Registry) *System {
	s, err := AnalyzeCtx(context.Background(), m, cfg, AnalyzeOpts{Fallback: fallback, Metrics: metrics})
	if err != nil {
		// Unreachable: without a cancellable context, a budget, or a fault
		// plan, SolveCtx cannot abort.
		panic(err)
	}
	return s
}

// AnalyzeOpts configures AnalyzeCtx. The zero value is a plain unbounded
// analysis.
type AnalyzeOpts struct {
	Fallback *pointsto.Result    // precomputed stage-① result; nil computes it
	Metrics  *telemetry.Registry // telemetry sink (may be nil)
	Budget   pointsto.Budget     // per-stage solver step budget (zero = unlimited)
	Faults   *faultinject.Plan   // fault-injection plan armed on both solver stages
	Parallel int                 // >0 solves both stages with the parallel wave strategy at this many workers
	Intern   bool                // hash-cons points-to sets in both stages (pure allocation hint)
}

// AnalyzeCtx is the cancellable, bounded, fault-injectable analysis entry.
// Each solver stage runs under the context and budget; an aborted stage
// surfaces as a wrapped pointsto.AbortError (errors.Is ErrSolveAborted) and
// the System is not produced — a degraded analysis is an explicit error,
// never a partial result.
func AnalyzeCtx(ctx context.Context, m *ir.Module, cfg invariant.Config, o AnalyzeOpts) (*System, error) {
	metrics := o.Metrics
	s := &System{Module: m, Config: cfg, Metrics: metrics}
	// The root span follows the context: inside a traced request (a serve
	// submission carrying a telemetry.Trace) it attaches there, and every
	// stage/solver span below inherits that destination through its parent
	// handle; otherwise it lands in the registry as before.
	ctx, span, finish := telemetry.StartSpanCtx(ctx, metrics, "core/analyze")
	defer finish()
	fallback := o.Fallback
	if fallback == nil {
		sp, fin := metrics.StartSpan("core/stage/fallback", span)
		stop := metrics.Timer("core/stage/fallback").Start()
		a := pointsto.New(m, invariant.Config{})
		a.SetMetrics(metrics)
		a.SetSpan(sp)
		a.SetFaults(o.Faults)
		if o.Parallel > 0 {
			a.SetParallel(o.Parallel)
		}
		if o.Intern {
			a.SetIntern(true)
		}
		r, err := a.SolveCtx(ctx, o.Budget)
		stop()
		fin()
		if err != nil {
			return nil, fmt.Errorf("fallback stage: %w", err)
		}
		fallback = r
	}
	s.Fallback = fallback
	if cfg.Any() {
		sp, fin := metrics.StartSpan("core/stage/optimistic", span)
		stop := metrics.Timer("core/stage/optimistic").Start()
		a := pointsto.New(m, cfg)
		a.SetMetrics(metrics)
		a.SetSpan(sp)
		a.SetFaults(o.Faults)
		if o.Parallel > 0 {
			a.SetParallel(o.Parallel)
		}
		if o.Intern {
			a.SetIntern(true)
		}
		r, err := a.SolveCtx(ctx, o.Budget)
		stop()
		fin()
		if err != nil {
			return nil, fmt.Errorf("optimistic stage: %w", err)
		}
		s.Optimistic = r
	} else {
		s.Optimistic = s.Fallback
	}
	metrics.Counter("core/analyses").Inc()
	return s, nil
}

// AnalyzeSource compiles MiniC source and runs Analyze.
func AnalyzeSource(name, src string, cfg invariant.Config) (*System, error) {
	m, err := minic.Compile(name, src)
	if err != nil {
		return nil, err
	}
	return Analyze(m, cfg), nil
}

// Invariants returns the likely invariants assumed by the optimistic run.
func (s *System) Invariants() []invariant.Record { return s.Optimistic.Invariants() }

// Population returns the measurement population for precision metrics: every
// top-level pointer with a non-empty fallback points-to set. Using the
// fallback population for all configurations keeps Table 3 columns
// comparable.
func (s *System) Population() []pointsto.PtrRef { return s.Fallback.TopLevelPointers() }

// Sizes returns the points-to set sizes of the population under r.
func (s *System) Sizes(r *pointsto.Result) []int {
	pop := s.Population()
	out := make([]int, len(pop))
	for i, p := range pop {
		out[i] = r.SizeOf(p)
	}
	return out
}

// Hardened is a CFI-instrumented program: both policy views plus everything
// needed to construct monitored executions.
type Hardened struct {
	Sys        *System
	Optimistic *cfi.Policy
	Fallback   *cfi.Policy
}

// Harden derives the CFI policies for both views (stage ③ preparation).
func (s *System) Harden() *Hardened {
	_, finish := s.Metrics.StartSpan("core/instrument", nil)
	defer finish()
	stop := s.Metrics.Timer("core/instrument").Start()
	defer stop()
	return &Hardened{
		Sys:        s,
		Optimistic: cfi.PolicyFrom(s.Optimistic),
		Fallback:   cfi.PolicyFrom(s.Fallback),
	}
}

// Execution is one monitored run context: a fresh switcher (starting on the
// optimistic view), the monitor runtime, and an interpreter wired to both.
type Execution struct {
	Machine  *interp.Machine
	Runtime  *memview.Runtime
	Switcher *memview.Switcher
	Instr    *interp.Instrumentation
}

// NewExecution builds a monitored execution. Each execution has its own
// switcher state, so one invariant violation does not leak across runs. It
// panics on a corrupt invariant record (impossible without fault injection);
// error-aware callers use NewExecutionChecked.
func (h *Hardened) NewExecution(track bool) *Execution {
	e, err := h.NewExecutionChecked(track, nil)
	if err != nil {
		panic(err)
	}
	return e
}

// NewExecutionChecked is NewExecution with fault injection and an error
// path: an armed CorruptRecord fault (or a genuinely corrupt record) is
// caught by monitor-record validation and surfaces as a typed
// *memview.CorruptRecordError; the SpuriousViolation site stays armed inside
// the runtime's monitor hooks for the execution's lifetime.
func (h *Hardened) NewExecutionChecked(track bool, faults *faultinject.Plan) (*Execution, error) {
	sw, secret := memview.NewSwitcher(
		h.Optimistic.View("optimistic"),
		h.Fallback.View("fallback"),
	)
	rt, ins, err := memview.BuildRuntime(h.Sys.Optimistic, memview.RuntimeOpts{
		Switcher: sw,
		Secret:   secret,
		Faults:   faults,
	})
	if err != nil {
		return nil, err
	}
	mc := interp.New(h.Sys.Module, interp.Config{
		Hooks:         rt,
		Instr:         ins,
		TrackPointsTo: track,
		Metrics:       h.Sys.Metrics,
	})
	return &Execution{Machine: mc, Runtime: rt, Switcher: sw, Instr: ins}, nil
}

// MonitorSites returns the number of distinct instrumented monitor sites in
// a hardened execution (the "Total" column of Tables 4 and 5).
func (h *Hardened) MonitorSites() int {
	return h.NewExecution(false).Instr.NumMonitorSites()
}

// Run executes the entry function under monitoring.
func (e *Execution) Run(entry string, inputs []int64) *interp.Trace {
	return e.Machine.Run(entry, inputs)
}

// SoundnessReport compares a dynamic trace against a points-to result and
// returns a description of every dynamic points-to fact absent from the
// static result (empty = the result soundly over-approximates the run).
func SoundnessReport(r *pointsto.Result, tr *interp.Trace) []string {
	var bad []string
	lookup := func(key interp.AbsKey) *pointsto.Object {
		switch key.Kind {
		case interp.AbsGlobal:
			return r.ObjectByGlobal(key.Name)
		case interp.AbsFunc:
			return r.ObjectByFunc(key.Name)
		default:
			return r.ObjectBySite(key.Site)
		}
	}
	for pt, targets := range tr.RegPoints {
		static := map[int]bool{}
		for _, ref := range r.PointsTo(pt.Fn, pt.Reg) {
			static[ref.Obj.Index] = true
		}
		for key := range targets {
			obj := lookup(key)
			if obj == nil || !static[obj.Index] {
				bad = append(bad, fmt.Sprintf("register %s:%s dynamically points to %s, statically absent", pt.Fn, pt.Reg, key))
			}
		}
	}
	for pt, targets := range tr.SlotPoints {
		container := lookup(pt.Obj)
		if container == nil {
			bad = append(bad, fmt.Sprintf("no abstract object for runtime container %s", pt.Obj))
			continue
		}
		static := map[int]bool{}
		for _, ref := range r.SlotPointsTo(container, pt.Slot) {
			static[ref.Obj.Index] = true
		}
		for key := range targets {
			obj := lookup(key)
			if obj == nil || !static[obj.Index] {
				bad = append(bad, fmt.Sprintf("slot %s+%d dynamically points to %s, statically absent", pt.Obj, pt.Slot, key))
			}
		}
	}
	for site, targets := range tr.ICallObserved {
		allowed := map[string]bool{}
		for _, t := range r.CallTargets(site) {
			allowed[t] = true
		}
		for t := range targets {
			if !allowed[t] {
				bad = append(bad, fmt.Sprintf("icall #%d dynamically reached %s, statically absent", site, t))
			}
		}
	}
	return bad
}
