package core

import (
	"errors"
	"testing"

	"repro/internal/interp"
	"repro/internal/invariant"
)

// paViolationSrc violates the PA likely invariant at runtime when the first
// input is non-zero: the arithmetic pointer then really does address a
// struct object, and *(p+i) overwrites its function-pointer field.
const paViolationSrc = `
struct plugin { fn handler; int* data; }
plugin mod;
int buff[16];

int good(int* x) { return 1; }
int evil(int* x) { return 666; }

void smear(char* s, fn v) {
  int i;
  i = input();
  *(s + i) = v;
}

int main() {
  char* p;
  fn e;
  mod.handler = &good;
  e = &evil;
  p = buff;
  if (input()) {
    p = &mod;
  }
  smear(p, e);
  return mod.handler(null);
}
`

func analyzeSrc(t *testing.T, src string, cfg invariant.Config) *System {
	t.Helper()
	s, err := AnalyzeSource("test", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyzeBaselineAliasesFallback(t *testing.T) {
	s := analyzeSrc(t, paViolationSrc, invariant.Config{})
	if s.Optimistic != s.Fallback {
		t.Error("baseline system should alias optimistic to fallback")
	}
	if len(s.Invariants()) != 0 {
		t.Error("baseline assumed invariants")
	}
}

func TestHardenedRunWithoutViolation(t *testing.T) {
	s := analyzeSrc(t, paViolationSrc, invariant.All())
	h := s.Harden()
	e := h.NewExecution(true)
	// input()=0: p stays on buff; offset 3 is a harmless array write.
	tr := e.Run("main", []int64{0, 3})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	if tr.Result != 1 {
		t.Fatalf("result = %d, want 1 (good handler)", tr.Result)
	}
	if e.Switcher.Switched() {
		t.Fatalf("view switched without invariant violation: %v", e.Switcher.Violations())
	}
	if e.Runtime.ChecksPerformed == 0 {
		t.Error("no monitor checks performed")
	}
	if e.Runtime.CFILookups == 0 {
		t.Error("no CFI lookups performed")
	}
	// Optimistic soundness holds on violation-free runs.
	if bad := SoundnessReport(s.Optimistic, tr); len(bad) != 0 {
		t.Errorf("optimistic result unsound on clean run:\n%v", bad)
	}
}

func TestHardenedRunWithViolationSwitchesAndStaysSound(t *testing.T) {
	s := analyzeSrc(t, paViolationSrc, invariant.All())
	h := s.Harden()

	// The optimistic view must be strictly tighter than the fallback on the
	// indirect callsite (evil only reachable per the imprecise analysis).
	site := h.Optimistic.Sites[0]
	if h.Optimistic.Permits(site, "evil") {
		t.Fatalf("optimistic policy permits evil: %v", h.Optimistic.Targets[site])
	}
	if !h.Fallback.Permits(site, "evil") {
		t.Fatalf("fallback policy misses evil: %v", h.Fallback.Targets[site])
	}

	e := h.NewExecution(true)
	// input()=1: p = &mod; offset 0 overwrites mod.handler with evil.
	tr := e.Run("main", []int64{1, 0})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	if !e.Switcher.Switched() {
		t.Fatal("PA violation did not switch the memory view")
	}
	vs := e.Switcher.Violations()
	if len(vs) == 0 || vs[0].Kind != invariant.PA {
		t.Fatalf("violations = %v, want PA", vs)
	}
	// The overwritten handler (evil) executed under the fallback view.
	if tr.Result != 666 {
		t.Fatalf("result = %d, want 666 under fallback view", tr.Result)
	}
	// The fallback result must be sound for this run.
	if bad := SoundnessReport(s.Fallback, tr); len(bad) != 0 {
		t.Errorf("fallback result unsound:\n%v", bad)
	}
}

func TestViolationRunBlockedWithoutSwitch(t *testing.T) {
	// If the memory view were NOT switched (monitors disabled), the tight
	// optimistic policy must block the hijacked call: this demonstrates why
	// the fallback mechanism is required for soundness.
	s := analyzeSrc(t, paViolationSrc, invariant.All())
	h := s.Harden()
	e := h.NewExecution(false)
	// Disable the PA monitor by removing its instrumentation: rebuild an
	// execution whose instrumentation lacks PtrAdd sites.
	mc := interp.New(s.Module, interp.Config{
		Hooks: staticHooks{policy: h.Optimistic.Targets},
		Instr: &interp.Instrumentation{CheckICalls: true},
	})
	tr := mc.Run("main", []int64{1, 0})
	var cv *interp.CFIViolation
	if !errors.As(tr.Err, &cv) || cv.Target != "evil" {
		t.Fatalf("err = %v, want CFI violation on evil", tr.Err)
	}
	_ = e
}

// staticHooks enforces a fixed policy with no view switching.
type staticHooks struct {
	policy map[int][]string
}

func (h staticHooks) PtrAdd(int, interp.Value)                  {}
func (h staticHooks) FieldAddr(int, interp.Value, interp.Value) {}
func (h staticHooks) CtxCall(int, []interp.Value)               {}
func (h staticHooks) CtxCheck(int, []interp.Value)              {}
func (h staticHooks) CheckICall(site int, target string) bool {
	for _, t := range h.policy[site] {
		if t == target {
			return true
		}
	}
	return false
}

// ctxViolationSrc violates the Ctx likely invariant: the helper redirects
// its precision-critical argument before the critical store when input()!=0.
const ctxViolationSrc = `
struct holder { int n; int** slot; }
holder h1;
holder h2;
int* s1[2];
int* s2[2];
int v1;
int v2;
holder sneaky;
int* s3[2];

void insert(holder* b, int* v) {
  if (input()) {
    b = &sneaky;
  }
  b->slot[0] = v;
}

int main() {
  h1.slot = s1;
  h2.slot = s2;
  sneaky.slot = s3;
  insert(&h1, &v1);
  insert(&h2, &v2);
  return 0;
}
`

func TestCtxViolationSwitches(t *testing.T) {
	s := analyzeSrc(t, ctxViolationSrc, invariant.Config{Ctx: true})
	if n := len(s.Invariants()); n == 0 {
		t.Skip("no ctx invariant detected for this pattern")
	}
	h := s.Harden()

	// Clean run: no redirection.
	e := h.NewExecution(true)
	tr := e.Run("main", []int64{0, 0})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	if e.Switcher.Switched() {
		t.Fatalf("clean run switched views: %v", e.Switcher.Violations())
	}
	if bad := SoundnessReport(s.Optimistic, tr); len(bad) != 0 {
		t.Errorf("optimistic unsound on clean run:\n%v", bad)
	}

	// Violating run: the helper redirects b to &sneaky.
	e2 := h.NewExecution(true)
	tr2 := e2.Run("main", []int64{1, 0})
	if tr2.Err != nil {
		t.Fatalf("run: %v", tr2.Err)
	}
	if !e2.Switcher.Switched() {
		t.Fatal("ctx violation did not switch views")
	}
	if vs := e2.Switcher.Violations(); vs[0].Kind != invariant.Ctx {
		t.Fatalf("violations = %v, want Ctx", vs)
	}
	if bad := SoundnessReport(s.Fallback, tr2); len(bad) != 0 {
		t.Errorf("fallback unsound on violating run:\n%v", bad)
	}
}

func TestAblationConfigsAllAnalyze(t *testing.T) {
	for _, cfg := range invariant.Ablations() {
		s := analyzeSrc(t, paViolationSrc, cfg)
		if s.Fallback == nil || s.Optimistic == nil {
			t.Fatalf("%s: missing results", cfg.Name())
		}
		// Population sizes must be comparable across configs.
		if got, want := len(s.Sizes(s.Optimistic)), len(s.Population()); got != want {
			t.Errorf("%s: sizes length %d != population %d", cfg.Name(), got, want)
		}
	}
}

func TestPrecisionMetricsShrink(t *testing.T) {
	s := analyzeSrc(t, paViolationSrc, invariant.All())
	base := s.Sizes(s.Fallback)
	opt := s.Sizes(s.Optimistic)
	var bSum, oSum int
	for i := range base {
		bSum += base[i]
		oSum += opt[i]
		if opt[i] > base[i] {
			t.Errorf("pointer %v: optimistic size %d > baseline %d", s.Population()[i], opt[i], base[i])
		}
	}
	if oSum >= bSum {
		t.Errorf("no precision gain: optimistic %d >= baseline %d", oSum, bSum)
	}
}
