package core

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/minic"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestIncrementalCleanRun(t *testing.T) {
	s := analyzeSrc(t, paViolationSrc, invariant.All())
	before := len(s.Invariants())
	e := s.NewIncrementalExecution(true)
	tr := e.Run("main", []int64{0, 3})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	if e.Controller.Restores != 0 || len(e.Controller.Violations) != 0 {
		t.Fatalf("clean run restored: %+v", e.Controller.Violations)
	}
	if got := len(s.Invariants()); got != before {
		t.Errorf("invariant count changed on clean run: %d -> %d", before, got)
	}
	if bad := SoundnessReport(s.Optimistic, tr); len(bad) != 0 {
		t.Errorf("optimistic unsound on clean run:\n%v", bad)
	}
}

func TestIncrementalRestoreOnViolation(t *testing.T) {
	s := analyzeSrc(t, paViolationSrc, invariant.All())
	before := len(s.Invariants())
	e := s.NewIncrementalExecution(true)
	tr := e.Run("main", []int64{1, 0})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	if e.Controller.Restores != 1 {
		t.Fatalf("restores = %d, want 1 (violations %v)", e.Controller.Restores, e.Controller.Violations)
	}
	if got := len(s.Invariants()); got >= before {
		t.Errorf("invariant count did not shrink: %d -> %d", before, got)
	}
	// The restored analysis must re-admit evil at the callsite, so the
	// hijacked call succeeds under the refreshed (still partly optimistic)
	// policy.
	if tr.Result != 666 {
		t.Fatalf("result = %d, want 666 under restored policy", tr.Result)
	}
	// The restored analysis is sound for this run: the violated assumption
	// is gone and the remaining ones held.
	if bad := SoundnessReport(s.Optimistic, tr); len(bad) != 0 {
		t.Errorf("restored analysis unsound:\n%v", bad)
	}
}

// The incrementally restored solution must lie between the full optimistic
// solution and the fallback: every restored points-to set is a superset of
// the optimistic one and a subset of the fallback one.
func TestIncrementalSolutionBracketedByViews(t *testing.T) {
	m, err := minic.Compile("bracket", paViolationSrc)
	if err != nil {
		t.Fatal(err)
	}
	full := Analyze(m, invariant.All()) // pristine optimistic reference
	s := Analyze(m, invariant.All())    // mutated by the restore below
	fallback := s.Fallback

	recs := s.Optimistic.Invariants()
	var paRec *invariant.Record
	for i := range recs {
		if recs[i].Kind == invariant.PA {
			paRec = &recs[i]
		}
	}
	if paRec == nil {
		t.Fatal("no PA invariant to restore")
	}
	if err := s.Optimistic.Restore(*paRec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, p := range s.Population() {
		if p.Reg == "" {
			continue
		}
		restored := map[string]bool{}
		for _, ref := range s.Optimistic.PointsTo(p.Fn, p.Reg) {
			restored[ref.Obj.Label()] = true
		}
		for _, ref := range full.Optimistic.PointsTo(p.Fn, p.Reg) {
			if !restored[ref.Obj.Label()] {
				t.Errorf("%s:%s lost optimistic target %s after restore", p.Fn, p.Reg, ref.Obj.Label())
			}
		}
		fb := map[string]bool{}
		for _, ref := range fallback.PointsTo(p.Fn, p.Reg) {
			fb[ref.Obj.Label()] = true
		}
		for label := range restored {
			if !fb[label] {
				t.Errorf("%s:%s restored target %s exceeds fallback", p.Fn, p.Reg, label)
			}
		}
	}
	// Restoring the same record twice must fail.
	if err := s.Optimistic.Restore(*paRec); err == nil {
		t.Error("double restore succeeded")
	}
}

func TestIncrementalCtxRestore(t *testing.T) {
	s := analyzeSrc(t, ctxViolationSrc, invariant.Config{Ctx: true})
	if len(s.Invariants()) == 0 {
		t.Skip("no ctx invariants detected")
	}
	e := s.NewIncrementalExecution(true)
	tr := e.Run("main", []int64{1, 0})
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	if e.Controller.Restores != 1 {
		t.Fatalf("restores = %d, want 1 (violations %v)", e.Controller.Restores, e.Controller.Violations)
	}
	if bad := SoundnessReport(s.Optimistic, tr); len(bad) != 0 {
		t.Errorf("restored analysis unsound:\n%v", bad)
	}
}

func TestIncrementalPWCRestoreMatchesBaselineMitigation(t *testing.T) {
	// Use the tinydtls workload (PWC-dominated): restoring its PWC invariant
	// must land at the Kd-less precision for the affected pointers, i.e. the
	// average must move from the Kd-PWC value toward the baseline value.
	app := workload.TinyDTLS()
	m := app.MustModule()
	s := Analyze(m, invariant.Config{PWC: true})
	optAvg := stats.Mean(s.Sizes(s.Optimistic))
	baseAvg := stats.Mean(s.Sizes(s.Fallback))
	var pwcRec *invariant.Record
	recs := s.Optimistic.Invariants()
	for i := range recs {
		if recs[i].Kind == invariant.PWC {
			pwcRec = &recs[i]
		}
	}
	if pwcRec == nil {
		t.Fatal("no PWC invariant")
	}
	if err := s.Optimistic.Restore(*pwcRec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	restoredAvg := stats.Mean(s.Sizes(s.Optimistic))
	if restoredAvg < optAvg {
		t.Errorf("restore increased precision: %.3f -> %.3f", optAvg, restoredAvg)
	}
	if restoredAvg > baseAvg+1e-9 {
		t.Errorf("restore overshot the baseline: %.3f > %.3f", restoredAvg, baseAvg)
	}
	if len(s.Optimistic.Invariants()) != len(recs)-1 {
		t.Errorf("PWC record not dropped: %d -> %d", len(recs), len(s.Optimistic.Invariants()))
	}
}

func TestRestoreRejectsUnknownRecords(t *testing.T) {
	s := analyzeSrc(t, paViolationSrc, invariant.All())
	if err := s.Optimistic.Restore(invariant.Record{Kind: invariant.PA, Site: 99999}); err == nil {
		t.Error("restore of unknown PA site succeeded")
	}
	if err := s.Optimistic.Restore(invariant.Record{Kind: invariant.PWC}); err == nil {
		t.Error("restore of empty PWC record succeeded")
	}
	if err := s.Optimistic.Restore(invariant.Record{Kind: invariant.Ctx, Site: 99999}); err == nil {
		t.Error("restore of unknown Ctx site succeeded")
	}
}
