package chaos

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// testRestartOptions keeps the restart leg fast: one generation pair per
// plan, sequential solves.
func testRestartOptions() Options {
	return Options{Metrics: telemetry.New()}
}

func countOutcomes(rep *RestartReport) map[Outcome]int {
	got := map[Outcome]int{}
	for _, a := range rep.Results {
		got[a.Outcome]++
	}
	return got
}

func hasFired(rep *RestartReport, site faultinject.Site) bool {
	for _, s := range rep.Fired {
		if s == site {
			return true
		}
	}
	return false
}

// TestRestartLegFaultFree pins the happy path: with no faults armed every
// app must be warm-served byte-identically by the restarted generation.
func TestRestartLegFaultFree(t *testing.T) {
	rep, err := RunRestartPlan(faultinject.Explicit(), t.TempDir(), testRestartOptions())
	if err != nil {
		t.Fatalf("RunRestartPlan: %v", err)
	}
	if fails := rep.Failures(); len(fails) > 0 {
		t.Fatalf("unsound results:\n%s", rep.Text())
	}
	for _, a := range rep.Results {
		if a.Outcome != Identical {
			t.Errorf("%s: outcome %v, want Identical\n%s", a.App, a.Outcome, rep.Text())
		}
	}
	if rep.WarmLoaded == 0 {
		t.Errorf("generation B warm-loaded no records\n%s", rep.Text())
	}
	if rep.Quarantined != 0 {
		t.Errorf("fault-free run quarantined %d records\n%s", rep.Quarantined, rep.Text())
	}
}

// TestRestartLegPersistWriteFail: the failed save leaves one entry
// memory-only in generation A; the crash loses it, and generation B must
// transparently re-solve to byte-identical answers (Fallback), with every
// successfully persisted app still warm-served (Identical).
func TestRestartLegPersistWriteFail(t *testing.T) {
	rep, err := RunRestartPlan(faultinject.Explicit(faultinject.PersistWriteFail), t.TempDir(), testRestartOptions())
	if err != nil {
		t.Fatalf("RunRestartPlan: %v", err)
	}
	if fails := rep.Failures(); len(fails) > 0 {
		t.Fatalf("unsound results:\n%s", rep.Text())
	}
	if !hasFired(rep, faultinject.PersistWriteFail) {
		t.Fatalf("write-fail fault never fired\n%s", rep.Text())
	}
	got := countOutcomes(rep)
	if got[Fallback] < 1 {
		t.Errorf("want at least one Fallback (the unsaved record re-solved), got %v\n%s", got, rep.Text())
	}
	if got[Identical] < 1 {
		t.Errorf("want at least one Identical (saves after the fault succeed), got %v\n%s", got, rep.Text())
	}
	if rep.Quarantined != 0 {
		t.Errorf("write-fail leaves nothing on disk to quarantine, got %d\n%s", rep.Quarantined, rep.Text())
	}
}

// TestRestartLegPersistTornWrite: the truncated frame fails its checksum at
// warm-load, so generation B must quarantine it and re-solve (Fallback).
func TestRestartLegPersistTornWrite(t *testing.T) {
	testRestartCorruption(t, faultinject.PersistTornWrite)
}

// TestRestartLegPersistBitFlip: at-rest corruption after a successful save;
// same contract as a torn write — quarantine, counter, fresh solve.
func TestRestartLegPersistBitFlip(t *testing.T) {
	testRestartCorruption(t, faultinject.PersistBitFlip)
}

func testRestartCorruption(t *testing.T, site faultinject.Site) {
	t.Helper()
	o := testRestartOptions()
	rep, err := RunRestartPlan(faultinject.Explicit(site), t.TempDir(), o)
	if err != nil {
		t.Fatalf("RunRestartPlan: %v", err)
	}
	if fails := rep.Failures(); len(fails) > 0 {
		t.Fatalf("unsound results:\n%s", rep.Text())
	}
	if !hasFired(rep, site) {
		t.Fatalf("%s fault never fired\n%s", site, rep.Text())
	}
	if rep.Quarantined < 1 {
		t.Errorf("corrupted record was not quarantined at warm-load\n%s", rep.Text())
	}
	got := countOutcomes(rep)
	if got[Fallback] < 1 {
		t.Errorf("want at least one Fallback (the quarantined record re-solved), got %v\n%s", got, rep.Text())
	}
	if got[Identical] < 1 {
		t.Errorf("want at least one Identical (undamaged records warm-serve), got %v\n%s", got, rep.Text())
	}
	if n := o.Metrics.Counter("chaos/restart/outcome/fallback").Value(); n != int64(got[Fallback]) {
		t.Errorf("outcome counter fallback = %d, want %d", n, got[Fallback])
	}
}

// TestRestartLegSeeded runs a seeded plan end to end: whatever mix of
// solver, monitor, cache, and disk faults the seed arms, the restarted
// daemon must stay inside the Identical/Fallback/TypedError taxonomy.
func TestRestartLegSeeded(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := RunRestart(seed, t.TempDir(), testRestartOptions())
		if err != nil {
			t.Fatalf("seed %d: RunRestart: %v", seed, err)
		}
		if fails := rep.Failures(); len(fails) > 0 {
			t.Errorf("seed %d: unsound results:\n%s", seed, rep.Text())
		}
		if rep.Seed != seed {
			t.Errorf("seed %d: report seed = %d", seed, rep.Seed)
		}
	}
}
