package chaos

// The restart leg extends the differential harness across a daemon
// generation boundary: generation A serves the paper apps through a real
// serve.Server backed by the persistent store with a fault plan armed
// (including the persist/* disk faults), then "crashes" — no drain, no
// dirty flush, the disk keeps exactly what the faults left there — and
// generation B, fault free on the same directory, warm-loads and re-serves.
// The robustness contract is the same taxonomy as the in-process leg, read
// on the wire:
//
//	(a) Identical — generation B answers byte-for-byte what generation A's
//	    cached responses said, straight from the warm-loaded snapshot;
//	(b) Fallback  — the record was lost (write-fail) or quarantined
//	    (torn-write, bit-flip, any corruption), and generation B re-solved:
//	    byte-identical answers except /analyze's cached=false;
//	(c) TypedError — either generation refused with a typed JSON error
//	    (budget, overloaded, internal carrying an injected fault, ...);
//
// anything else — a decode of damaged bytes, a divergent answer, an
// untyped failure — is Unsound and fails the harness.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/workload"
)

// RestartReport is the outcome of one crash/restart differential.
type RestartReport struct {
	Seed        int64
	Plan        string
	Fired       []faultinject.Site
	Results     []AppResult
	WarmLoaded  int64 // records generation B installed from disk
	Quarantined int64 // records generation B quarantined during warm-load
}

// Failures returns the results that violate the robustness contract.
func (r *RestartReport) Failures() []AppResult {
	var out []AppResult
	for _, a := range r.Results {
		if a.Outcome == Unsound {
			out = append(out, a)
		}
	}
	return out
}

// Text renders the report for human consumption.
func (r *RestartReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos restart seed %d: %s\n", r.Seed, r.Plan)
	if len(r.Fired) > 0 {
		parts := make([]string, len(r.Fired))
		for i, s := range r.Fired {
			parts[i] = string(s)
		}
		fmt.Fprintf(&b, "  fired: %s\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "  warm-loaded=%d quarantined=%d\n", r.WarmLoaded, r.Quarantined)
	for _, a := range r.Results {
		fmt.Fprintf(&b, "  %-12s %-11s", a.App, a.Outcome)
		if a.Detail != "" {
			fmt.Fprintf(&b, " %s", a.Detail)
		}
		if a.Err != nil {
			fmt.Fprintf(&b, " (%v)", a.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// restartProbe is one deterministic wire query of an app.
type restartProbe struct {
	path string
	body map[string]any
}

// restartProbes is the query surface compared across the generation
// boundary: the analysis summary, every CFI site's target sets, and the
// invariant inventory — the same snapshot fields a warm load must preserve.
func restartProbes(src string) []restartProbe {
	return []restartProbe{
		{"/analyze", map[string]any{"source": src}},
		{"/cfi-targets", map[string]any{"source": src}},
		{"/invariants", map[string]any{"source": src}},
	}
}

// postJSON drives one request through the in-process daemon.
func postJSON(h http.Handler, path string, v any) (int, []byte) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, nil
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// typedWireError reports whether raw is a well-formed typed JSON error (the
// daemon's contract for every non-2xx), returning it as an error value.
func typedWireError(path string, status int, raw []byte) (error, bool) {
	var body struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &body); err != nil || body.Kind == "" {
		return nil, false
	}
	return fmt.Errorf("%s: %d %s: %s", path, status, body.Kind, body.Error), true
}

// RunRestart derives the fault plan from seed and runs one crash/restart
// differential against the store at dir (which must be empty or absent;
// each run is one daemon lifetime).
func RunRestart(seed int64, dir string, o Options) (*RestartReport, error) {
	rep, err := RunRestartPlan(faultinject.NewPlan(seed), dir, o)
	if err != nil {
		return nil, err
	}
	rep.Seed = seed
	return rep, nil
}

// RunRestartPlan is RunRestart under an explicit plan (the per-site chaos
// tests arm exactly one persist fault each).
func RunRestartPlan(plan *faultinject.Plan, dir string, o Options) (*RestartReport, error) {
	o = o.withDefaults()
	plan.SetMetrics(o.Metrics)
	apps := workload.Apps()
	rep := &RestartReport{Seed: plan.Seed(), Plan: plan.String()}

	// Generation A: fault plan armed, persistent store attached. Tracing
	// off: trace ids live in headers, but the flight recorder is outside
	// this leg's contract.
	genA := serve.New(serve.Config{CacheDir: dir, Faults: plan, Parallel: o.Parallel,
		Intern: o.Intern, DisableTracing: true})
	if err := genA.PersistError(); err != nil {
		return nil, fmt.Errorf("chaos restart: generation A store: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.Timeout)
	defer cancel()
	if err := genA.WaitWarm(ctx); err != nil {
		return nil, fmt.Errorf("chaos restart: generation A warm-load: %w", err)
	}
	refs := make([]restartRef, len(apps))
	for i, app := range apps {
		probes := restartProbes(app.Source)
		refs[i].cold = make([][]byte, len(probes))
		refs[i].warm = make([][]byte, len(probes))
		for pass := 0; pass < 2; pass++ {
			for j, p := range probes {
				status, raw := postJSON(genA, p.path, p.body)
				if status != http.StatusOK {
					if werr, ok := typedWireError(p.path, status, raw); ok {
						refs[i].err = werr
					} else {
						refs[i].unsound = fmt.Sprintf("generation A %s: untyped %d response %q", p.path, status, raw)
					}
					break
				}
				if pass == 0 {
					refs[i].cold[j] = raw
				} else {
					refs[i].warm[j] = raw
				}
			}
			if refs[i].err != nil || refs[i].unsound != "" {
				break
			}
		}
	}
	// Crash: generation A is abandoned mid-life. No BeginDrain, no
	// FlushDirty — a record a persist fault kept off disk stays off disk.
	rep.Fired = plan.FiredSites()

	// Generation B: same store, no faults.
	genB := serve.New(serve.Config{CacheDir: dir, DisableTracing: true})
	if err := genB.PersistError(); err != nil {
		return nil, fmt.Errorf("chaos restart: generation B store: %w", err)
	}
	if err := genB.WaitWarm(ctx); err != nil {
		return nil, fmt.Errorf("chaos restart: generation B warm-load: %w", err)
	}
	rep.WarmLoaded = genB.Metrics().Counter("persist/warm-loaded").Value()
	rep.Quarantined = genB.Metrics().Counter("persist/corrupt-quarantined").Value()

	for i, app := range apps {
		ar := classifyRestart(genB, app, refs[i])
		ar.App = app.Name
		o.Metrics.Counter("chaos/restart/outcome/" + ar.Outcome.String()).Inc()
		rep.Results = append(rep.Results, ar)
	}
	return rep, nil
}

// restartRef is generation A's observed behavior for one app: either its
// reference response bodies, or how it refused.
type restartRef struct {
	err        error    // typed wire error observed on generation A
	unsound    string   // evidence of a contract violation on generation A
	cold, warm [][]byte // per-probe bodies: fresh-solve form, cached form
}

func classifyRestart(genB http.Handler, app *workload.App, ref restartRef) AppResult {
	if ref.unsound != "" {
		return AppResult{Outcome: Unsound, Detail: ref.unsound}
	}
	if ref.err != nil {
		// Generation A never produced this app's artifacts; the contract was
		// already settled (typed refusal) before the restart.
		return AppResult{Outcome: TypedError, Err: ref.err}
	}
	warmIdentical, coldIdentical := true, true
	for j, p := range restartProbes(app.Source) {
		status, raw := postJSON(genB, p.path, p.body)
		if status != http.StatusOK {
			if werr, ok := typedWireError(p.path, status, raw); ok {
				return AppResult{Outcome: TypedError, Err: werr}
			}
			return AppResult{Outcome: Unsound,
				Detail: fmt.Sprintf("generation B %s: untyped %d response %q", p.path, status, raw)}
		}
		if !bytes.Equal(raw, ref.warm[j]) {
			warmIdentical = false
		}
		if !bytes.Equal(raw, ref.cold[j]) {
			coldIdentical = false
		}
	}
	switch {
	case warmIdentical:
		return AppResult{Outcome: Identical, Detail: "warm-served byte-identical across restart"}
	case coldIdentical:
		return AppResult{Outcome: Fallback, Detail: "record lost or quarantined; re-solved byte-identical"}
	default:
		return AppResult{Outcome: Unsound, Detail: "responses diverged across restart"}
	}
}
