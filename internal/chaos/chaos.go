// Package chaos is the differential fault harness: it replays the full
// analyze→harden→execute pipeline over the nine paper apps under a seeded
// fault plan (internal/faultinject) and classifies each app's behavior
// against a fault-free reference run. The invariant it enforces is the
// robustness contract of the whole system:
//
// under ANY fault plan, every app either
//
//	(a) produces byte-identical artifacts to the fault-free run,
//	(b) lands soundly on the fallback view (violations recorded, one switch,
//	    dynamic behavior over-approximated by the fallback analysis), or
//	(c) surfaces an explicit typed error (solver abort, worker panic/timeout,
//	    corrupt record, injected fault, cancellation)
//
// — never a silently wrong result. Anything else is classified Unsound and
// fails the harness (and CI's chaos-smoke job, and `kscope-bench -chaos`).
package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/invariant"
	"repro/internal/memview"
	"repro/internal/pointsto"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Outcome classifies one app's behavior under a fault plan.
type Outcome int

const (
	// Identical: artifacts byte-identical to the fault-free reference (the
	// plan's faults either never reached this app or were absorbed without
	// observable effect).
	Identical Outcome = iota
	// Fallback: a monitor fired (real or injected) and the app degraded
	// soundly — exactly one switch, all violations recorded, and every
	// dynamic fact over-approximated by the fallback analysis.
	Fallback
	// TypedError: the pipeline refused to produce a result, with a typed
	// error identifying the fault.
	TypedError
	// Unsound: anything else — the failure mode the harness exists to catch.
	Unsound
)

func (o Outcome) String() string {
	switch o {
	case Identical:
		return "identical"
	case Fallback:
		return "fallback"
	case TypedError:
		return "typed-error"
	default:
		return "UNSOUND"
	}
}

// Options configures a chaos run. The zero value picks the defaults.
type Options struct {
	Requests int                 // interpreter requests per execution (default 24)
	Runs     int                 // monitored executions per app (default 2)
	Workers  int                 // pool width of one sweep (default 4)
	Timeout  time.Duration       // per-app job timeout (default 2m)
	Parallel int                 // parallel wave solver workers per analysis (0 = sequential)
	Intern   bool                // hash-cons points-to sets during every solve (pure memory hint)
	Metrics  *telemetry.Registry // fault + outcome counters (may be nil)
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 24
	}
	if o.Runs <= 0 {
		o.Runs = 2
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	return o
}

// AppResult is one app's classified behavior under the plan.
type AppResult struct {
	App     string
	Outcome Outcome
	Err     error  // the typed error for TypedError (and Unsound error cases)
	Detail  string // human-readable evidence for the classification
}

// Report is the outcome of one seeded chaos run across all apps.
type Report struct {
	Seed    int64
	Plan    string // the plan's deterministic rendering
	Fired   []faultinject.Site
	Results []AppResult
}

// Failures returns the results that violate the robustness contract.
func (r *Report) Failures() []AppResult {
	var out []AppResult
	for _, a := range r.Results {
		if a.Outcome == Unsound {
			out = append(out, a)
		}
	}
	return out
}

// Text renders the report for human consumption.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed %d: %s\n", r.Seed, r.Plan)
	if len(r.Fired) > 0 {
		parts := make([]string, len(r.Fired))
		for i, s := range r.Fired {
			parts[i] = string(s)
		}
		fmt.Fprintf(&b, "  fired: %s\n", strings.Join(parts, ", "))
	}
	for _, a := range r.Results {
		fmt.Fprintf(&b, "  %-12s %-11s", a.App, a.Outcome)
		if a.Detail != "" {
			fmt.Fprintf(&b, " %s", a.Detail)
		}
		if a.Err != nil {
			fmt.Fprintf(&b, " (%v)", a.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// appArtifact is everything observable about one app's pipeline run,
// rendered canonically for byte comparison.
type appArtifact struct {
	bytes      []byte
	switched   bool
	violations int
	unsound    []string // non-empty: dynamic facts the fallback view misses
}

// Run executes one chaos sweep under the plan derived from seed and
// classifies every app against the fault-free reference. The reference is
// recomputed here; batch callers use RunMatrix to compute it once.
func Run(seed int64, o Options) (*Report, error) {
	o = o.withDefaults()
	ref, err := reference(o)
	if err != nil {
		return nil, err
	}
	return runAgainst(seed, ref, o), nil
}

// RunMatrix executes `plans` chaos sweeps with seeds base, base+1, ... and a
// single shared fault-free reference.
func RunMatrix(base int64, plans int, o Options) ([]*Report, error) {
	o = o.withDefaults()
	ref, err := reference(o)
	if err != nil {
		return nil, err
	}
	out := make([]*Report, 0, plans)
	for i := 0; i < plans; i++ {
		out = append(out, runAgainst(base+int64(i), ref, o))
	}
	return out, nil
}

// reference computes the fault-free artifacts every plan is compared to. A
// reference failure means the harness itself is broken, not the system under
// fault — it is an error, never a classification.
func reference(o Options) ([]runner.Result[appArtifact], error) {
	ref := sweep(nil, o)
	for _, r := range ref {
		if r.Err != nil {
			return nil, fmt.Errorf("chaos: fault-free reference run of %s failed: %w", workload.Apps()[r.Index].Name, r.Err)
		}
	}
	return ref, nil
}

func runAgainst(seed int64, ref []runner.Result[appArtifact], o Options) *Report {
	plan := faultinject.NewPlan(seed)
	plan.SetMetrics(o.Metrics)
	got := sweep(plan, o)
	rep := &Report{Seed: seed, Plan: plan.String()}
	apps := workload.Apps()
	for i := range apps {
		ar := classify(ref[i].Value, got[i])
		ar.App = apps[i].Name
		o.Metrics.Counter("chaos/outcome/" + ar.Outcome.String()).Inc()
		rep.Results = append(rep.Results, ar)
	}
	rep.Fired = plan.FiredSites()
	return rep
}

// sweep runs the full pipeline for every app under one plan (nil = fault
// free), through a fresh single-flight cache and a degradation-equipped
// worker pool.
func sweep(plan *faultinject.Plan, o Options) []runner.Result[appArtifact] {
	cache := runner.NewCache(o.Metrics)
	cache.SetFaults(plan)
	// The parallel wave solver is byte-identical to the sequential one, so
	// applying it to the reference and every fault sweep alike cannot perturb
	// the Identical classification — it only moves where a budget fault lands
	// (a level barrier instead of a worklist pop), which classify already
	// treats as the same typed abort.
	cache.SetParallel(o.Parallel)
	// Same argument for set interning: byte-identical fixpoints mean the
	// chaos matrix exercises the copy-on-write machinery without its
	// classifications being able to shift.
	cache.SetIntern(o.Intern)
	apps := workload.Apps()
	return runner.MapOpts(len(apps), o.Workers, runner.Opts{
		Trace:            runner.Trace{Metrics: o.Metrics, Label: "chaos/app"},
		Timeout:          o.Timeout,
		BreakerThreshold: 3,
		Faults:           plan,
	}, func(i int) (appArtifact, error) {
		return runApp(cache, apps[i], plan, o)
	})
}

// runApp drives analyze→harden→execute for one app and renders the
// canonical artifact.
func runApp(cache *runner.Cache, app *workload.App, plan *faultinject.Plan, o Options) (appArtifact, error) {
	var art appArtifact
	sys, err := cache.SystemCtx(context.Background(), app, invariant.All())
	if err != nil {
		return art, err
	}
	h := sys.Harden()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "app %s\n", app.Name)
	fmt.Fprintf(&buf, "cfi optimistic avg=%.6f max=%d sites=%d\n", h.Optimistic.AvgTargets(), h.Optimistic.MaxTargets(), len(h.Optimistic.Sites))
	fmt.Fprintf(&buf, "cfi fallback   avg=%.6f max=%d sites=%d\n", h.Fallback.AvgTargets(), h.Fallback.MaxTargets(), len(h.Fallback.Sites))
	fmt.Fprintf(&buf, "invariants %d\n", len(sys.Invariants()))
	for run := 0; run < o.Runs; run++ {
		e, err := h.NewExecutionChecked(true, plan)
		if err != nil {
			return art, err
		}
		tr := e.Run("main", app.Requests(o.Requests, int64(run)+1))
		fmt.Fprintf(&buf, "run %d result=%d steps=%d err=%v\n", run, tr.Result, tr.Steps, tr.Err)
		vs := e.Switcher.Violations()
		for _, v := range vs {
			fmt.Fprintf(&buf, "  violation %s\n", v)
		}
		fmt.Fprintf(&buf, "  switched=%v checks=%d cfi-lookups=%d\n",
			e.Switcher.Switched(), e.Runtime.ChecksPerformed, e.Runtime.CFILookups)
		art.violations += len(vs)
		if e.Switcher.Switched() {
			art.switched = true
			// Soundly degraded means the fallback analysis still
			// over-approximates everything this monitored run actually did.
			for _, bad := range core.SoundnessReport(sys.Fallback, tr) {
				art.unsound = append(art.unsound, bad)
			}
		}
	}
	art.bytes = buf.Bytes()
	return art, nil
}

// classify maps one app's observed behavior to an Outcome.
func classify(ref appArtifact, got runner.Result[appArtifact]) AppResult {
	if got.Err != nil {
		if typedError(got.Err) {
			return AppResult{Outcome: TypedError, Err: got.Err}
		}
		return AppResult{Outcome: Unsound, Err: got.Err, Detail: "untyped error"}
	}
	if bytes.Equal(ref.bytes, got.Value.bytes) {
		return AppResult{Outcome: Identical}
	}
	if len(got.Value.unsound) > 0 {
		sort.Strings(got.Value.unsound)
		return AppResult{Outcome: Unsound,
			Detail: fmt.Sprintf("fallback view misses dynamic facts: %s", strings.Join(got.Value.unsound, "; "))}
	}
	if got.Value.switched && got.Value.violations > 0 {
		return AppResult{Outcome: Fallback,
			Detail: fmt.Sprintf("%d violation(s), sound on fallback", got.Value.violations)}
	}
	return AppResult{Outcome: Unsound, Detail: "artifacts diverged without a switch or an error"}
}

// typedError reports whether err belongs to the explicit degradation
// taxonomy: every legitimate failure path in the pipeline produces one of
// these.
func typedError(err error) bool {
	var pe *runner.PanicError
	var te *runner.TimeoutError
	var cre *memview.CorruptRecordError
	var inj *faultinject.Injected
	return errors.Is(err, pointsto.ErrSolveAborted) ||
		errors.As(err, &pe) ||
		errors.As(err, &te) ||
		errors.As(err, &cre) ||
		errors.As(err, &inj) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
