package chaos

import (
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// testOptions keeps individual sweeps small so the 50-plan matrix stays
// within unit-test time.
func testOptions() Options {
	return Options{Requests: 12, Runs: 2, Workers: 4, Metrics: telemetry.New()}
}

// TestChaosDifferential is the acceptance harness: every seeded fault plan,
// across every paper app, must land on an identical / soundly-degraded /
// typed-error outcome — never Unsound. 50 plans normally, 8 under -short
// (the CI chaos-smoke matrix).
func TestChaosDifferential(t *testing.T) {
	plans := 50
	if testing.Short() {
		plans = 8
	}
	reports, err := RunMatrix(1, plans, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != plans {
		t.Fatalf("got %d reports, want %d", len(reports), plans)
	}
	counts := map[Outcome]int{}
	for _, rep := range reports {
		for _, f := range rep.Failures() {
			t.Errorf("seed %d (%s): %s UNSOUND: %s (%v)", rep.Seed, rep.Plan, f.App, f.Detail, f.Err)
		}
		for _, a := range rep.Results {
			counts[a.Outcome]++
		}
	}
	t.Logf("outcomes over %d plans: identical=%d fallback=%d typed-error=%d unsound=%d",
		plans, counts[Identical], counts[Fallback], counts[TypedError], counts[Unsound])
	// The matrix must actually exercise degradation, not just pass vacuously:
	// across this many seeded plans at least one app must have degraded or
	// errored somewhere.
	if counts[Fallback]+counts[TypedError] == 0 {
		t.Error("no plan produced a degraded or errored outcome; fault injection is not reaching the pipeline")
	}
}

// TestChaosParallelDifferential re-runs the acceptance matrix with every
// analysis solved by the parallel wave strategy: the robustness contract —
// identical / soundly-degraded / typed-error, never Unsound — must hold
// unchanged when budget faults abort at level barriers instead of worklist
// pops. Additionally the parallel fault-free reference must be byte-identical
// to the sequential one, pinning the solver's byte-identity through the whole
// harden→execute pipeline, not just the Result fingerprint.
func TestChaosParallelDifferential(t *testing.T) {
	plans := 50
	if testing.Short() {
		plans = 8
	}
	o := testOptions()
	o.Parallel = 8
	seqRef, err := reference(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	parRef, err := reference(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqRef {
		if string(seqRef[i].Value.bytes) != string(parRef[i].Value.bytes) {
			t.Errorf("app %d: parallel-solved artifacts differ from sequential reference", i)
		}
	}
	reports, err := RunMatrix(1, plans, o)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Outcome]int{}
	for _, rep := range reports {
		for _, f := range rep.Failures() {
			t.Errorf("seed %d (%s): %s UNSOUND under parallel solve: %s (%v)", rep.Seed, rep.Plan, f.App, f.Detail, f.Err)
		}
		for _, a := range rep.Results {
			counts[a.Outcome]++
		}
	}
	t.Logf("parallel outcomes over %d plans: identical=%d fallback=%d typed-error=%d unsound=%d",
		plans, counts[Identical], counts[Fallback], counts[TypedError], counts[Unsound])
	if counts[Fallback]+counts[TypedError] == 0 {
		t.Error("no plan produced a degraded or errored outcome; fault injection is not reaching the parallel pipeline")
	}
}

// A nil-fault sweep must be fully identical to itself and report no fired
// sites (determinism of the reference).
func TestChaosFaultFreeIsIdentical(t *testing.T) {
	o := testOptions()
	ref, err := reference(o)
	if err != nil {
		t.Fatal(err)
	}
	again, err := reference(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if string(ref[i].Value.bytes) != string(again[i].Value.bytes) {
			t.Errorf("app %d: fault-free artifacts differ between runs", i)
		}
		if ref[i].Value.switched || ref[i].Value.violations != 0 {
			t.Errorf("app %d: fault-free run switched views (%d violations)", i, ref[i].Value.violations)
		}
	}
}

// Same seed, same classification: a serial chaos run is reproducible end to
// end. (Workers must be 1: with a parallel pool, which app's hook lands a
// site's seed-chosen hit number depends on goroutine interleaving, so only
// the robustness contract — never Unsound — is interleaving-independent.)
func TestChaosRunDeterministic(t *testing.T) {
	o := testOptions()
	o.Workers = 1
	a, err := Run(7, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(7, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan != b.Plan {
		t.Fatalf("plans differ: %q vs %q", a.Plan, b.Plan)
	}
	for i := range a.Results {
		if a.Results[i].Outcome != b.Results[i].Outcome {
			t.Errorf("%s: outcome %v vs %v across identical runs",
				a.Results[i].App, a.Results[i].Outcome, b.Results[i].Outcome)
		}
	}
}

// The report renders every app with its outcome, and outcome counters land
// in telemetry.
func TestChaosReportAndCounters(t *testing.T) {
	o := testOptions()
	rep, err := Run(3, o)
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Text()
	if !strings.Contains(text, "chaos seed 3") {
		t.Errorf("report text missing header:\n%s", text)
	}
	for _, a := range rep.Results {
		if !strings.Contains(text, a.App) {
			t.Errorf("report text missing app %s", a.App)
		}
	}
	total := int64(0)
	for _, oc := range []Outcome{Identical, Fallback, TypedError, Unsound} {
		total += o.Metrics.Counter("chaos/outcome/" + oc.String()).Value()
	}
	if total != int64(len(rep.Results)) {
		t.Errorf("outcome counters sum to %d, want %d", total, len(rep.Results))
	}
}

// An explicitly armed spurious violation must classify as Fallback (soundly
// degraded), proving outcome (b) is reachable and correctly detected.
func TestChaosSpuriousViolationLandsOnFallback(t *testing.T) {
	o := testOptions()
	ref, err := reference(o)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.Explicit(faultinject.SpuriousViolation)
	got := sweep(plan, o)
	fallbacks := 0
	for i := range got {
		ar := classify(ref[i].Value, got[i])
		if ar.Outcome == Unsound {
			t.Errorf("app %d unsound under spurious violation: %s %v", i, ar.Detail, ar.Err)
		}
		if ar.Outcome == Fallback {
			fallbacks++
		}
	}
	if !plan.Fired(faultinject.SpuriousViolation) {
		t.Skip("no app performed a monitored check on hit 1; fault never fired")
	}
	if fallbacks == 0 {
		t.Error("spurious violation fired but no app classified as Fallback")
	}
}

// TestChaosInternDifferential re-runs the acceptance matrix with hash-consed
// set interning on: the robustness contract — identical / soundly-degraded /
// typed-error, never Unsound — must hold when every solve shares canonical
// set storage and mutates through copy-on-write. As with the parallel leg,
// the interned fault-free reference must be byte-identical to the plain one,
// pinning the byte-identity of interned solves through the whole
// harden→execute pipeline.
func TestChaosInternDifferential(t *testing.T) {
	plans := 50
	if testing.Short() {
		plans = 8
	}
	o := testOptions()
	o.Intern = true
	plainRef, err := reference(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	internRef, err := reference(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plainRef {
		if string(plainRef[i].Value.bytes) != string(internRef[i].Value.bytes) {
			t.Errorf("app %d: interned artifacts differ from plain reference", i)
		}
	}
	reports, err := RunMatrix(1, plans, o)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Outcome]int{}
	for _, rep := range reports {
		for _, f := range rep.Failures() {
			t.Errorf("seed %d (%s): %s UNSOUND under interned solve: %s (%v)", rep.Seed, rep.Plan, f.App, f.Detail, f.Err)
		}
		for _, a := range rep.Results {
			counts[a.Outcome]++
		}
	}
	t.Logf("interned outcomes over %d plans: identical=%d fallback=%d typed-error=%d unsound=%d",
		plans, counts[Identical], counts[Fallback], counts[TypedError], counts[Unsound])
	if counts[Fallback]+counts[TypedError] == 0 {
		t.Error("no plan produced a degraded or errored outcome; fault injection is not reaching the interned pipeline")
	}
}
