package workload

import "math/rand"

// Wget returns the downloader-like workload. Its command-line options are
// dispatched through a function-pointer array, so the largest points-to set
// (the merged option-callback slot) is untouchable by any likely invariant —
// Table 3 shows Wget's max column flat at 397 while Kd-PA improves the
// average (6.16 → 3.76).
func Wget() *App {
	return &App{
		Name:   "wget",
		Descr:  "Webpage Downloader",
		Source: wgetSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				out[0] = int64(r.Intn(8))  // option index
				out[1] = int64(r.Intn(36)) // url length
				out[2] = int64(r.Intn(9))  // char seed
			})
		},
		FuzzSeeds: [][]int64{
			{3, 0, 12, 2, 5, 24, 1, 7, 6, 6},
			{1, 6, 30, 4},
		},
	}
}

const wgetSrc = `
// wget-like synthetic workload: option callbacks stored in an array, URL
// rewriting via pointer arithmetic, and a retrieval loop.

struct option {
  int id;
  fn set_opt;
  int* value;
}

struct url_state {
  int scheme;
  fn fetch;
  fn retry;
  int* host_buf;
  int* path_buf;
}

option opt_table[8];
url_state url_http;
url_state url_ftp;

int url_buf[40];
int host_buf[40];
int path_buf[40];

int stat_opts;
int stat_fetches;

// ---- option callbacks: merged by array-index insensitivity ----
int opt_quiet(int* v) { stat_opts = stat_opts + 1; return 1; }
int opt_verbose(int* v) { stat_opts = stat_opts + 1; return 2; }
int opt_tries(int* v) { stat_opts = stat_opts + 1; return 3; }
int opt_output(int* v) { stat_opts = stat_opts + 1; return 4; }
int opt_recursive(int* v) { stat_opts = stat_opts + 1; return 5; }
int opt_level(int* v) { stat_opts = stat_opts + 1; return 6; }
int opt_continue(int* v) { stat_opts = stat_opts + 1; return 7; }
int opt_mirror(int* v) { stat_opts = stat_opts + 1; return 8; }

int http_fetch(int* b) { stat_fetches = stat_fetches + 1; return 10; }
int http_retry(int* b) { return 11; }
int ftp_fetch(int* b) { stat_fetches = stat_fetches + 1; return 12; }
int ftp_retry(int* b) { return 13; }

void options_init() {
  opt_table[0].set_opt = &opt_quiet;
  opt_table[1].set_opt = &opt_verbose;
  opt_table[2].set_opt = &opt_tries;
  opt_table[3].set_opt = &opt_output;
  opt_table[4].set_opt = &opt_recursive;
  opt_table[5].set_opt = &opt_level;
  opt_table[6].set_opt = &opt_continue;
  opt_table[7].set_opt = &opt_mirror;
  opt_table[0].value = url_buf;
  opt_table[1].value = host_buf;
}

// ---- PA channel: URL rewriting with arbitrary arithmetic ----
void url_rewrite(char* dst, char* src, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(dst + i) = *(src + i);
    i = i + 1;
  }
}

void canonicalize(int taint, int len) {
  char* dst;
  char* src;
  dst = path_buf;
  src = url_buf;
  if (taint % 7 == 9) {  // never true
    dst = &url_http;
  }
  if (taint % 5 == 8) {  // never true
    dst = &url_ftp;
  }
  if (taint % 3 == 5) {  // never true
    src = &url_http;
  }
  url_rewrite(dst, src, len);
}

void url_init() {
  url_http.fetch = &http_fetch;
  url_http.retry = &http_retry;
  url_http.host_buf = host_buf;
  url_http.path_buf = path_buf;
  url_ftp.fetch = &ftp_fetch;
  url_ftp.retry = &ftp_retry;
  url_ftp.host_buf = host_buf;
  url_ftp.path_buf = path_buf;
}

int apply_option(int idx, int len) {
  return opt_table[idx % 8].set_opt(opt_table[idx % 8].value);
}

int retrieve(int idx, int len, int fill) {
  int i;
  int r;
  i = 0;
  while (i < len) {
    url_buf[i] = fill + i;
    i = i + 1;
  }
  canonicalize(len, len % 40);
  if (idx % 2 == 0) {
    r = url_http.fetch(url_http.path_buf);
    if (r > 9) {
      r = r + url_http.retry(url_http.host_buf);
    }
  } else {
    r = url_ftp.fetch(url_ftp.path_buf);
  }
  return r;
}

int main() {
  int n;
  int idx;
  int len;
  int fill;
  int req;
  int total;
  options_init();
  url_init();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    idx = input();
    len = input();
    fill = input();
    total = total + apply_option(idx, len);
    total = total + retrieve(idx, len % 40, fill);
    req = req + 1;
  }
  output(total);
  output(stat_opts);
  output(stat_fetches);
  return total;
}
`
