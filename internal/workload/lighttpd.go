package workload

import "math/rand"

// Lighttpd returns the web-server-like workload. Its plugin architecture
// stores callbacks in arrays, and — as §7.2 reports — the array-index
// insensitivity of the baseline analysis forces Kaleidoscope to treat every
// plugin callback as one, muting the CFI gains under every configuration.
// Small Ctx and PA channels still give modest points-to improvements.
func Lighttpd() *App {
	return &App{
		Name:   "lighttpd",
		Descr:  "HTTP Web Server",
		Source: lighttpdSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				out[0] = int64(r.Intn(6))  // plugin index
				out[1] = int64(r.Intn(40)) // uri length
				out[2] = int64(r.Intn(9))  // body seed
			})
		},
		FuzzSeeds: [][]int64{
			{3, 0, 10, 1, 4, 20, 2, 2, 5, 5},
			{1, 5, 30, 8},
		},
	}
}

const lighttpdSrc = `
// lighttpd-like synthetic workload: plugin slots in arrays, per-connection
// state, and header writing via pointer arithmetic.

struct plugin {
  int id;
  fn handle_uri;
  fn handle_request;
  fn handle_close;
  int* data;
}

struct connection {
  int state;
  fn read_handler;
  fn write_handler;
  int* read_queue;
  int* write_queue;
}

plugin plugins[6];
connection conn_a;
connection conn_b;

int read_q[48];
int write_q[48];
int uri_buf[48];
int header_out[48];

int stat_requests;
int stat_closed;

// ---- plugin callbacks (merged by array-index insensitivity) ----
int indexfile_uri(int* b) { stat_requests = stat_requests + 1; return 1; }
int indexfile_req(int* b) { return 2; }
int indexfile_close(int* b) { return 3; }
int staticfile_uri(int* b) { stat_requests = stat_requests + 1; return 4; }
int staticfile_req(int* b) { return 5; }
int staticfile_close(int* b) { return 6; }
int dirlist_uri(int* b) { stat_requests = stat_requests + 1; return 7; }
int dirlist_req(int* b) { return 8; }
int dirlist_close(int* b) { return 9; }
int auth_uri(int* b) { stat_requests = stat_requests + 1; return 10; }
int auth_req(int* b) { return 11; }
int auth_close(int* b) { return 12; }
int cgi_uri(int* b) { stat_requests = stat_requests + 1; return 13; }
int cgi_req(int* b) { return 14; }
int cgi_close(int* b) { return 15; }
int rewrite_uri(int* b) { stat_requests = stat_requests + 1; return 16; }
int rewrite_req(int* b) { return 17; }
int rewrite_close(int* b) { stat_closed = stat_closed + 1; return 18; }

int conn_read(int* b) { return 20; }
int conn_write(int* b) { return 21; }
int conn_read_ssl(int* b) { return 22; }
int conn_write_ssl(int* b) { return 23; }

// ---- plugin registration: array slots share one analysis element ----
void plugin_register(int slot, fn uri_cb, fn req_cb, fn close_cb) {
  plugins[slot].handle_uri = uri_cb;
  plugins[slot].handle_request = req_cb;
  plugins[slot].handle_close = close_cb;
  plugins[slot].id = slot;
}

// ---- Ctx channel: connection setup helper ----
void conn_set_handlers(connection* c, fn rcb, fn wcb) {
  c->read_handler = rcb;
  c->write_handler = wcb;
}

void conn_set_queues(connection* c, int* rq, int* wq) {
  c->read_queue = rq;
  c->write_queue = wq;
}

// ---- PA channel: header writing ----
void http_write_header(char* s, char* src, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(s + i) = *(src + i);
    i = i + 1;
  }
}

void flush_headers(int taint, int len) {
  char* dst;
  dst = header_out;
  if (taint % 7 == 9) {  // never true
    dst = &conn_a;
  }
  if (taint % 5 == 8) {  // never true
    dst = &conn_b;
  }
  http_write_header(dst, uri_buf, len);
}

void server_init() {
  plugin_register(0, indexfile_uri, indexfile_req, indexfile_close);
  plugin_register(1, staticfile_uri, staticfile_req, staticfile_close);
  plugin_register(2, dirlist_uri, dirlist_req, dirlist_close);
  plugin_register(3, auth_uri, auth_req, auth_close);
  plugin_register(4, cgi_uri, cgi_req, cgi_close);
  plugin_register(5, rewrite_uri, rewrite_req, rewrite_close);
  conn_set_handlers(&conn_a, conn_read, conn_write);
  conn_set_handlers(&conn_b, conn_read_ssl, conn_write_ssl);
  conn_set_queues(&conn_a, read_q, write_q);
  conn_set_queues(&conn_b, read_q, write_q);
}

int handle_request(int slot, int len, int fill) {
  int i;
  int r;
  i = 0;
  while (i < len) {
    uri_buf[i] = fill + i;
    i = i + 1;
  }
  r = plugins[slot % 6].handle_uri(uri_buf);
  r = r + plugins[slot % 6].handle_request(read_q);
  r = r + conn_a.read_handler(conn_a.read_queue);
  flush_headers(len, len % 48);
  r = r + conn_a.write_handler(conn_a.write_queue);
  if (fill % 3 == 0) {
    r = r + plugins[slot % 6].handle_close(write_q);
  }
  return r;
}

int main() {
  int n;
  int slot;
  int len;
  int fill;
  int req;
  int total;
  server_init();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    slot = input();
    len = input();
    fill = input();
    total = total + handle_request(slot, len % 48, fill);
    req = req + 1;
  }
  output(total);
  output(stat_requests);
  return total;
}
`
