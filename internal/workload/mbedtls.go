package workload

import "math/rand"

// MbedTLS returns the SSL-library-like workload. It combines the paper's
// three MbedTLS imprecision channels against the same ssl_context objects,
// so that — as in Table 3 — every likely invariant must be enabled together
// before the points-to sets shrink:
//
//   - arbitrary pointer arithmetic in buf_copy may (imprecisely) address the
//     ssl contexts, collapsing their fields at baseline (§2.2, Figure 3);
//   - a shared session-allocation wrapper creates a positive-weight cycle
//     (Figure 7) whose baseline mitigation also collapses the contexts;
//   - ssl_set_bio registers per-context callbacks from several callsites,
//     cross-multiplying every context's callback table at baseline (§4.4).
func MbedTLS() *App {
	return &App{
		Name:   "mbedtls",
		Descr:  "SSL Library",
		Source: mbedtlsSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				out[0] = int64(r.Intn(4))  // op: handshake/read/write/close
				out[1] = int64(r.Intn(48)) // payload length
				out[2] = int64(r.Intn(9))  // payload byte
			})
		},
		FuzzSeeds: [][]int64{
			{2, 0, 8, 3, 1, 16, 5},
			{1, 3, 4, 2},
			{4, 2, 40, 1, 0, 0, 0, 3, 7, 7, 1, 30, 2},
		},
	}
}

const mbedtlsSrc = `
// mbedtls-like synthetic workload: SSL contexts with BIO callbacks,
// arena-allocated sessions, and record-layer buffer copies.

struct ssl_context {
  int state;
  fn f_send;
  fn f_recv;
  fn f_recv_timeout;
  fn f_dbg;
  int* in_buf;
  int* out_buf;
}

struct entropy_context {
  fn f_entropy;
  int accum;
}

struct cipher_suite {
  int id;
  fn enc;
  fn dec;
  fn mac;
  fn setkey;
}

struct session {
  int id;
  int* ticket;
  fn on_close;
  session* next;
}

ssl_context ssl_cli;
ssl_context ssl_srv;
ssl_context ssl_dtls;
ssl_context ssl_bak;
entropy_context entropy;
cipher_suite suite_aes;
cipher_suite suite_chacha;
cipher_suite suite_null;

int net_in[64];
int net_out[64];
int rec_in[64];
int rec_out[64];
int ticket_store[16];

int stat_sent;
int stat_recv;
int stat_closed;

// ---- BIO callbacks ----
int net_send(int* b) {
  stat_sent = stat_sent + 1;
  return 1;
}
int net_recv(int* b) {
  stat_recv = stat_recv + 1;
  return 2;
}
int net_recv_timeout(int* b) { return 3; }
int udp_send(int* b) { return 11; }
int udp_recv(int* b) { return 12; }
int udp_recv_timeout(int* b) { return 13; }
int null_send(int* b) { return 0; }
int null_recv(int* b) { return 0; }
int dbg_log(int* b) { return 4; }
int dbg_null(int* b) { return 0; }
int entropy_poll(int* b) { return 5; }
int entropy_null(int* b) { return 0; }
int close_notify(int* b) {
  stat_closed = stat_closed + 1;
  return 6;
}

// ---- cipher-suite primitives ----
int aes_enc(int* b) { return 21; }
int aes_dec(int* b) { return 22; }
int aes_mac(int* b) { return 23; }
int aes_setkey(int* b) { return 24; }
int chacha_enc(int* b) { return 25; }
int chacha_dec(int* b) { return 26; }
int chacha_mac(int* b) { return 27; }
int chacha_setkey(int* b) { return 28; }
int null_enc(int* b) { return 0; }
int null_dec(int* b) { return 0; }
int null_mac(int* b) { return 0; }
int null_setkey(int* b) { return 0; }

// ---- Channel 1: arbitrary pointer arithmetic (PA, §4.2) ----
// The record layer copies bytes with *(dst+i); statically opaque dead
// branches make dst appear to also address the ssl contexts, which at
// baseline turns the contexts field-insensitive.
void buf_copy(char* dst, char* src, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(dst + i) = *(src + i);
    i = i + 1;
  }
}

void record_flush(int taint, int len) {
  char* dst;
  char* srcp;
  dst = net_out;
  srcp = rec_out;
  if (taint % 7 == 9) {   // never true; statically opaque
    dst = &ssl_cli;
  }
  if (taint % 5 == 8) {   // never true
    dst = &ssl_srv;
  }
  if (taint % 9 == 11) {  // never true
    dst = &ssl_dtls;
  }
  if (taint % 3 == 5) {   // never true
    dst = &ssl_bak;
  }
  if (taint % 17 == 19) { // never true
    srcp = &ssl_srv;
  }
  if (taint % 19 == 21) { // never true
    srcp = &ssl_dtls;
  }
  if (taint % 23 == 25) { // never true
    dst = &suite_aes;
  }
  if (taint % 29 == 31) { // never true
    dst = &suite_chacha;
  }
  if (taint % 31 == 33) { // never true
    srcp = &suite_aes;
  }
  buf_copy(dst, srcp, len);
}

// ---- Channel 2: session arena positive-weight cycle (PWC, §4.3) ----
// One allocation wrapper serves the slot table, the resume slot, and the
// nodes, so the analysis sees a single heap object; storing the ticket
// field's address through the confused resume slot closes a positive-weight
// cycle exactly as in Figure 7. A dead branch threads the ssl contexts into
// the cycle, so the baseline mitigation collapses them too.
// The arena takes an explicit size; §6's interprocedural heap-type
// propagation recovers the session type from the sizeof at the callsites.
void* sess_alloc(int n) {
  return malloc(n);
}

session** sess_table;
int** resume_ptr;
session* sess_head;

void sess_init() {
  sess_table = sess_alloc(sizeof(session));
  resume_ptr = sess_alloc(sizeof(session));
  *sess_table = null;
}

void sess_push(int id, int taint) {
  session* node;
  session* cur;
  int** tick;
  node = sess_alloc(sizeof(session));
  node->id = id;
  node->ticket = ticket_store;
  node->on_close = &close_notify;
  node->next = sess_head;
  sess_head = node;
  *sess_table = node;
  cur = *sess_table;
  if (taint % 11 == 13) {  // never true
    char* confuse;
    confuse = &ssl_cli;
    cur = confuse;
  }
  if (taint % 13 == 17) {  // never true
    char* confuse2;
    confuse2 = &ssl_srv;
    cur = confuse2;
  }
  if (taint % 19 == 23) {  // never true
    char* confuse3;
    confuse3 = &suite_aes;
    cur = confuse3;
  }
  if (taint % 23 == 29) {  // never true
    char* confuse4;
    confuse4 = &suite_chacha;
    cur = confuse4;
  }
  if (taint % 29 == 37) {  // never true
    char* confuse5;
    confuse5 = &suite_null;
    cur = confuse5;
  }
  tick = &cur->ticket;
  *resume_ptr = tick;
}

int sess_sweep() {
  session* cur;
  session* nxt;
  int n;
  n = 0;
  cur = sess_head;
  while (cur != null) {
    nxt = cur->next;
    cur->on_close(cur->ticket);
    cur = nxt;
    n = n + 1;
  }
  sess_head = null;
  return n;
}

// ---- Channel 3: callback registration helpers (Ctx, §4.4) ----
// Called from several sites with different callbacks; analyzed context-
// insensitively this cross-multiplies every context's BIO table.
void ssl_set_bio(ssl_context* c, fn send_cb, fn recv_cb, fn timeout_cb) {
  c->f_send = send_cb;
  c->f_recv = recv_cb;
  c->f_recv_timeout = timeout_cb;
}

void ssl_set_dbg(ssl_context* c, fn dbg_cb) {
  c->f_dbg = dbg_cb;
}

void ssl_set_buffers(ssl_context* c, int* in, int* out) {
  c->in_buf = in;
  c->out_buf = out;
}

void entropy_init(entropy_context* e, fn poll_cb) {
  e->f_entropy = poll_cb;
}

void suite_register(cipher_suite* s, fn e, fn d, fn m, fn k) {
  s->enc = e;
  s->dec = d;
  s->mac = m;
  s->setkey = k;
}

void ssl_setup() {
  ssl_set_bio(&ssl_cli, net_send, net_recv, net_recv_timeout);
  ssl_set_bio(&ssl_srv, net_send, net_recv, net_recv_timeout);
  ssl_set_bio(&ssl_dtls, udp_send, udp_recv, udp_recv_timeout);
  ssl_set_bio(&ssl_bak, null_send, null_recv, null_recv);
  ssl_set_dbg(&ssl_cli, dbg_log);
  ssl_set_dbg(&ssl_srv, dbg_log);
  ssl_set_dbg(&ssl_dtls, dbg_null);
  ssl_set_dbg(&ssl_bak, dbg_null);
  ssl_set_buffers(&ssl_cli, net_in, net_out);
  ssl_set_buffers(&ssl_srv, net_in, net_out);
  ssl_set_buffers(&ssl_dtls, rec_in, rec_out);
  ssl_set_buffers(&ssl_bak, rec_in, rec_out);
  entropy_init(&entropy, entropy_poll);
  entropy_init(&entropy, entropy_null);
  suite_register(&suite_aes, aes_enc, aes_dec, aes_mac, aes_setkey);
  suite_register(&suite_chacha, chacha_enc, chacha_dec, chacha_mac, chacha_setkey);
  suite_register(&suite_null, null_enc, null_dec, null_mac, null_setkey);
  sess_init();
}

cipher_suite* pick_suite(int id) {
  if (id % 3 == 0) {
    return &suite_aes;
  }
  if (id % 3 == 1) {
    return &suite_chacha;
  }
  return &suite_null;
}

int encrypt_record(int id, int len) {
  cipher_suite* s;
  int r;
  s = pick_suite(id);
  r = s->setkey(rec_out);
  r = r + suite_aes.enc(rec_out);
  r = r + suite_aes.mac(rec_out);
  if (id % 3 == 1) {
    r = r + suite_chacha.enc(rec_out);
  }
  return r;
}

// ---- request processing ----
int handshake(int taint) {
  int r;
  r = entropy.f_entropy(null);
  r = r + ssl_cli.f_send(ssl_cli.out_buf);
  r = r + ssl_cli.f_recv(ssl_cli.in_buf);
  sess_push(taint, taint);
  return r;
}

int do_read(int len, int fill) {
  int i;
  i = 0;
  while (i < len) {
    rec_in[i] = fill;
    i = i + 1;
  }
  buf_copy(net_in, rec_in, len);
  return ssl_srv.f_recv_timeout(ssl_srv.in_buf);
}

int do_write(int len, int fill, int taint) {
  int i;
  int r;
  i = 0;
  while (i < len) {
    rec_out[i] = fill + i;
    i = i + 1;
  }
  r = encrypt_record(fill, len);
  record_flush(taint, len);
  return r + ssl_srv.f_send(ssl_srv.out_buf);
}

int do_close() {
  int r;
  r = ssl_dtls.f_send(ssl_dtls.out_buf);
  return r + sess_sweep();
}

// Rare renegotiation path: the benchmark drivers never produce op == 53,
// so these monitors stay cold under Table 4's drivers; a fuzzer can reach
// them (Table 5).
int renegotiate(int taint, int len) {
  char* key;
  int r;
  key = rec_in;
  if (taint % 37 == 41) {  // never true
    key = &ssl_bak;
  }
  buf_copy(key, net_in, len % 24);
  ssl_set_bio(&ssl_bak, net_send, net_recv, net_recv_timeout);
  suite_register(&suite_null, aes_enc, aes_dec, aes_mac, aes_setkey);
  r = ssl_bak.f_send(ssl_bak.out_buf);
  return r + suite_null.enc(rec_in);
}

int main() {
  int n;
  int op;
  int len;
  int fill;
  int req;
  int total;
  ssl_setup();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    op = input();
    len = input();
    fill = input();
    if (op == 53) {
      total = total + renegotiate(len, fill);
    } else if (op % 4 == 0) {
      total = total + handshake(len);
    } else if (op % 4 == 1) {
      total = total + do_read(len % 48, fill);
    } else if (op % 4 == 2) {
      total = total + do_write(len % 48, fill, len);
    } else {
      total = total + do_close();
    }
    req = req + 1;
  }
  output(total);
  output(stat_sent);
  output(stat_recv);
  return total;
}
`
