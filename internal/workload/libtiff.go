package workload

import "math/rand"

// Libtiff returns the TIFF-library-like workload. Its imprecision is
// dominated by arbitrary pointer arithmetic over strip buffers that
// (imprecisely) appears to address the codec descriptors, with a secondary
// context-sensitivity channel in the tag-handler registration helper. As in
// Table 3, Kd-PA alone recovers most of the precision, Kd-Ctx a smaller
// share, and the PWC policy has nothing to act on.
func Libtiff() *App {
	return &App{
		Name:   "libtiff",
		Descr:  "Library for manipulating TIFF files",
		Source: libtiffSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				out[0] = int64(r.Intn(3))  // op: decode/encode/crop
				out[1] = int64(r.Intn(40)) // strip length
				out[2] = int64(r.Intn(7))  // pixel seed
			})
		},
		FuzzSeeds: [][]int64{
			{3, 0, 16, 2, 1, 8, 1, 2, 30, 4},
			{1, 2, 12, 3},
		},
	}
}

const libtiffSrc = `
// libtiff-like synthetic workload: codec descriptors, tag directory, and
// strip copy loops.

struct codec {
  int scheme;
  fn decode_row;
  fn encode_row;
  fn setup;
  int* work;
}

struct tag_entry {
  int id;
  fn read_tag;
  int* value;
}

struct directory {
  int count;
  fn on_load;
  fn on_save;
  int* strips;
}

codec codec_none;
codec codec_lzw;
codec codec_packbits;
directory dir_main;
directory dir_thumb;

int strip_in[48];
int strip_out[48];
int scanline[48];
int tag_values[16];

int stat_rows;
int stat_tags;

// ---- codec callbacks ----
int none_decode(int* b) { stat_rows = stat_rows + 1; return 1; }
int none_encode(int* b) { return 2; }
int none_setup(int* b) { return 3; }
int lzw_decode(int* b) { stat_rows = stat_rows + 1; return 4; }
int lzw_encode(int* b) { return 5; }
int lzw_setup(int* b) { return 6; }
int pb_decode(int* b) { stat_rows = stat_rows + 1; return 7; }
int pb_encode(int* b) { return 8; }
int pb_setup(int* b) { return 9; }
int dir_load(int* b) { return 10; }
int dir_save(int* b) { return 11; }
int thumb_load(int* b) { return 12; }

// ---- Channel 1 (dominant): arbitrary pointer arithmetic (PA) ----
// Strip copies use *(dst+i); dead branches make the pointers appear to
// address the codec descriptors, collapsing them at baseline and merging
// their decode/encode tables.
void strip_copy(char* dst, char* src, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(dst + i) = *(src + i);
    i = i + 1;
  }
}

void strip_flush(int taint, int len) {
  char* dst;
  char* src;
  dst = strip_out;
  src = strip_in;
  if (taint % 7 == 9) {  // never true
    dst = &codec_none;
  }
  if (taint % 5 == 8) {  // never true
    dst = &codec_lzw;
  }
  if (taint % 9 == 11) { // never true
    dst = &codec_packbits;
  }
  if (taint % 3 == 5) {  // never true
    src = &codec_lzw;
  }
  if (taint % 13 == 15) { // never true
    src = &codec_packbits;
  }
  strip_copy(dst, src, len);
}

// ---- Channel 2 (secondary): context-insensitive registration (Ctx) ----
void dir_set_hooks(directory* d, fn load_cb, fn save_cb) {
  d->on_load = load_cb;
  d->on_save = save_cb;
}

void codec_register(codec* c, fn dec, fn enc, fn setup_cb) {
  c->decode_row = dec;
  c->encode_row = enc;
  c->setup = setup_cb;
}

void tiff_init() {
  codec_register(&codec_none, none_decode, none_encode, none_setup);
  codec_register(&codec_lzw, lzw_decode, lzw_encode, lzw_setup);
  codec_register(&codec_packbits, pb_decode, pb_encode, pb_setup);
  dir_set_hooks(&dir_main, dir_load, dir_save);
  dir_set_hooks(&dir_thumb, thumb_load, dir_save);
  codec_none.work = scanline;
  codec_lzw.work = strip_in;
  codec_packbits.work = strip_out;
  dir_main.strips = strip_in;
  dir_thumb.strips = strip_out;
}

// ---- request processing ----
codec* pick_codec(int scheme) {
  if (scheme % 3 == 0) {
    return &codec_none;
  }
  if (scheme % 3 == 1) {
    return &codec_lzw;
  }
  return &codec_packbits;
}

int decode_strip(int scheme, int len, int fill) {
  codec* c;
  int i;
  int r;
  c = pick_codec(scheme);
  i = 0;
  while (i < len) {
    strip_in[i] = fill + i;
    i = i + 1;
  }
  r = c->setup(c->work);
  r = r + c->decode_row(strip_in);
  strip_flush(len, len % 48);
  return r;
}

int encode_strip(int scheme, int len, int fill) {
  codec* c;
  int i;
  c = pick_codec(scheme);
  i = 0;
  while (i < len) {
    scanline[i] = fill * 2 + i;
    i = i + 1;
  }
  strip_copy(strip_out, scanline, len);
  return c->encode_row(strip_out);
}

int crop_pass(int len) {
  int r;
  r = dir_main.on_load(dir_main.strips);
  strip_copy(strip_out, strip_in, len % 48);
  r = r + dir_thumb.on_load(dir_thumb.strips);
  r = r + dir_main.on_save(dir_main.strips);
  return r;
}

// Rare diagnostic path, unreachable under the benchmark drivers (op < 3).
int dump_tags(int taint, int len) {
  char* dst;
  int r;
  dst = scanline;
  if (taint % 23 == 29) {  // never true
    dst = &dir_thumb;
  }
  strip_copy(dst, tag_values, len % 16);
  dir_set_hooks(&dir_thumb, thumb_load, dir_save);
  r = dir_thumb.on_save(dir_thumb.strips);
  return r;
}

int main() {
  int n;
  int op;
  int len;
  int fill;
  int req;
  int total;
  tiff_init();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    op = input();
    len = input();
    fill = input();
    if (op == 47) {
      total = total + dump_tags(len, fill);
    } else if (op % 3 == 0) {
      total = total + decode_strip(len, len % 48, fill);
    } else if (op % 3 == 1) {
      total = total + encode_strip(len, len % 48, fill);
    } else {
      total = total + crop_pass(len);
    }
    req = req + 1;
  }
  output(total);
  output(stat_rows);
  return total;
}
`
