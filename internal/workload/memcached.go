package workload

import "math/rand"

// Memcached returns the key-value-store-like workload. Like MbedTLS it
// combines all three imprecision channels on the connection descriptors, but
// with weaker coupling: single policies buy modest improvements and the full
// combination recovers most of the precision (Table 3: 125.3 → 30.6).
func Memcached() *App {
	return &App{
		Name:   "memcached",
		Descr:  "Key-value Store",
		Source: memcachedSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				// 90:10 get/set mix, as in the paper's memaslap setup.
				if r.Intn(10) == 0 {
					out[0] = 1 // set
				} else {
					out[0] = 0 // get
				}
				out[1] = int64(r.Intn(31)) // key hash
				out[2] = int64(r.Intn(9))  // value seed
			})
		},
		FuzzSeeds: [][]int64{
			{4, 0, 3, 1, 1, 7, 2, 0, 3, 9, 2, 11, 4},
			{1, 1, 30, 6},
		},
	}
}

const memcachedSrc = `
// memcached-like synthetic workload: connection state machine, slab
// allocator, and protocol handlers.

struct conn {
  int state;
  fn try_read;
  fn try_write;
  fn complete;
  int* rbuf;
  int* wbuf;
}

struct item {
  int key;
  int* value;
  fn on_evict;
  item* h_next;
}

conn conn_tcp;
conn conn_udp;
conn conn_unix;

int rbuf_a[32];
int wbuf_a[32];
int rbuf_b[32];
int wbuf_b[32];
int slab_store[32];

int stat_get;
int stat_set;
int stat_evict;

// ---- protocol callbacks ----
int tcp_read(int* b) { return 1; }
int tcp_write(int* b) { return 2; }
int tcp_complete(int* b) { return 3; }
int udp_read(int* b) { return 4; }
int udp_write(int* b) { return 5; }
int udp_complete(int* b) { return 6; }
int unix_read(int* b) { return 7; }
int unix_write(int* b) { return 8; }
int unix_complete(int* b) { return 9; }
int evict_lru(int* b) { stat_evict = stat_evict + 1; return 10; }

// ---- Channel 1: response assembly via pointer arithmetic (PA) ----
void out_copy(char* dst, char* src, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(dst + i) = *(src + i);
    i = i + 1;
  }
}

void assemble_response(int taint, int len) {
  char* dst;
  char* src;
  dst = wbuf_a;
  src = rbuf_a;
  if (taint % 7 == 9) {  // never true
    dst = &conn_tcp;
  }
  if (taint % 5 == 8) {  // never true
    dst = &conn_udp;
  }
  if (taint % 3 == 5) {  // never true
    src = &conn_unix;
  }
  out_copy(dst, src, len);
}

// ---- Channel 2: slab allocator positive-weight cycle (PWC) ----
void* slab_alloc() {
  return malloc(sizeof(item));
}

item** hash_table;
int** lru_hint;
item* lru_head;

void slab_init() {
  hash_table = slab_alloc();
  lru_hint = slab_alloc();
  *hash_table = null;
}

void item_link(int key, int taint) {
  item* it;
  item* cur;
  int** vslot;
  it = slab_alloc();
  it->key = key;
  it->value = slab_store;
  it->on_evict = &evict_lru;
  it->h_next = lru_head;
  lru_head = it;
  *hash_table = it;
  cur = *hash_table;
  if (taint % 11 == 13) {  // never true
    char* confuse;
    confuse = &conn_tcp;
    cur = confuse;
  }
  vslot = &cur->value;
  *lru_hint = vslot;
}

int lru_sweep() {
  item* cur;
  item* nxt;
  int n;
  n = 0;
  cur = lru_head;
  while (cur != null) {
    nxt = cur->h_next;
    cur->on_evict(cur->value);
    cur = nxt;
    n = n + 1;
  }
  lru_head = null;
  return n;
}

// ---- Channel 3: connection event registration (Ctx) ----
void event_set(conn* c, fn rcb, fn wcb, fn ccb) {
  c->try_read = rcb;
  c->try_write = wcb;
  c->complete = ccb;
}

void conn_set_buffers(conn* c, int* rb, int* wb) {
  c->rbuf = rb;
  c->wbuf = wb;
}

void server_init() {
  event_set(&conn_tcp, tcp_read, tcp_write, tcp_complete);
  event_set(&conn_udp, udp_read, udp_write, udp_complete);
  event_set(&conn_unix, unix_read, unix_write, unix_complete);
  conn_set_buffers(&conn_tcp, rbuf_a, wbuf_a);
  conn_set_buffers(&conn_udp, rbuf_b, wbuf_b);
  conn_set_buffers(&conn_unix, rbuf_a, wbuf_b);
  slab_init();
}

int do_get(int key, int fill) {
  int r;
  r = conn_tcp.try_read(conn_tcp.rbuf);
  assemble_response(key, fill % 32);
  r = r + conn_tcp.try_write(conn_tcp.wbuf);
  stat_get = stat_get + 1;
  return r;
}

int do_set(int key, int fill, int taint) {
  int r;
  r = conn_udp.try_read(conn_udp.rbuf);
  item_link(key, taint);
  r = r + conn_udp.complete(conn_udp.wbuf);
  stat_set = stat_set + 1;
  if (stat_set % 8 == 0) {
    r = r + lru_sweep();
  }
  return r;
}

// Rare administrative path (the memaslap-style driver cannot send flush).
int flush_all(int taint) {
  char* dst;
  int r;
  dst = wbuf_b;
  if (taint % 41 == 43) {  // never true
    dst = &conn_unix;
  }
  out_copy(dst, rbuf_b, 8);
  event_set(&conn_unix, unix_read, unix_write, unix_complete);
  r = conn_unix.try_write(conn_unix.wbuf);
  return r + lru_sweep();
}

int main() {
  int n;
  int op;
  int key;
  int fill;
  int req;
  int total;
  server_init();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    op = input();
    key = input();
    fill = input();
    if (op == 61) {
      total = total + flush_all(key);
    } else if (op % 2 == 0) {
      total = total + do_get(key, fill);
    } else {
      total = total + do_set(key, fill, key);
    }
    req = req + 1;
  }
  output(total);
  output(stat_get);
  output(stat_set);
  return total;
}
`
