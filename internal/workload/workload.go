// Package workload provides the nine synthetic applications used to
// reproduce the paper's evaluation (Table 2). Each application is written in
// MiniC and reproduces the imprecision-relevant idioms the paper reports for
// its real counterpart:
//
//   - MbedTLS:   context smearing via *(s+i), heap-wrapper PWCs, and
//     callback-registration helpers — all three invariants must
//     combine for precision (§7.1).
//   - Libtiff:   codec tables polluted mainly through arbitrary arithmetic;
//     a smaller context-sensitivity channel.
//   - Curl:      allocation through function pointers defeats the
//     invariants; gains are capped (§7.2).
//   - Lighttpd:  plugin callbacks in arrays — index insensitivity keeps the
//     sets merged under every configuration (§7.2).
//   - Memcached: conjunction pattern with moderate single-policy wins.
//   - LibPNG:    chunk-handler registry where only the full combination
//     restores precision.
//   - Libxml:    SAX-style handler tables, moderate full-combination win.
//   - Wget:      command-option callbacks in arrays; PA helps the average
//     but the maximum set is untouched.
//   - TinyDTLS:  PWC-dominated; the maximum set is untouched.
//
// Applications run on the interpreter via request drivers; the inputs a
// driver generates never violate the likely invariants, mirroring the
// paper's observation that no invariant fired during benchmarking (§7.2).
package workload

import (
	"math/rand"
	"strings"
	"sync"

	"repro/internal/ir"
	"repro/internal/minic"
)

// App is one synthetic evaluation application.
type App struct {
	Name   string
	Descr  string // free-form description (Table 2)
	Source string // MiniC source
	// Requests generates a driver input stream for n requests.
	Requests func(n int, seed int64) []int64
	// FuzzSeeds are starting corpora for the §7.3 fuzzing campaign.
	FuzzSeeds [][]int64

	once sync.Once
	mod  *ir.Module
	err  error
}

// Module compiles (once) and returns the application's KIR module.
func (a *App) Module() (*ir.Module, error) {
	a.once.Do(func() {
		a.mod, a.err = minic.Compile(a.Name, a.Source)
	})
	return a.mod, a.err
}

// MustModule is Module for contexts where the sources are known-good.
func (a *App) MustModule() *ir.Module {
	m, err := a.Module()
	if err != nil {
		panic(err)
	}
	return m
}

// LoC counts non-blank source lines (Table 2's size column).
func (a *App) LoC() int {
	n := 0
	for _, line := range strings.Split(a.Source, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Apps returns the nine applications in the paper's order (Table 2).
func Apps() []*App {
	return []*App{
		MbedTLS(),
		Libtiff(),
		Curl(),
		Lighttpd(),
		Memcached(),
		LibPNG(),
		Libxml(),
		Wget(),
		TinyDTLS(),
	}
}

// Scaled benchmark family: synthetic programs whose constraint graphs are
// 100-1000x the paper apps' (every paper app solves in under a millisecond,
// far too small to differentiate solver strategies). Unit counts are
// calibrated so the analysis graph lands near the named node count; the
// scaled_test.go node-count test keeps the calibration honest. Sources are
// memoized — the 100k tier is ~150k lines of MiniC.
var (
	scaledOnce sync.Once
	scaledSrcs [3]string
)

func scaledSources() [3]string {
	scaledOnce.Do(func() {
		scaledSrcs[0] = ScaledProgram(1001, 34)
		scaledSrcs[1] = ScaledProgram(1002, 340)
		scaledSrcs[2] = ScaledProgram(1003, 3400)
	})
	return scaledSrcs
}

// ScaledApps returns the scaled solver-benchmark family (randprog-1k/10k/
// 100k, named for approximate constraint-graph node counts). These are
// deliberately NOT part of Apps(): the paper's evaluation matrix, golden
// artifacts, and fuzzing campaign cover exactly the nine Table 2 apps.
func ScaledApps() []*App {
	srcs := scaledSources()
	mk := func(name, descr string, src string) *App {
		return &App{
			Name:   name,
			Descr:  descr,
			Source: src,
			Requests: func(n int, seed int64) []int64 {
				return stdRequests(n, seed, 1, func(r *rand.Rand, out []int64) {
					out[0] = r.Int63n(16)
				})
			},
			FuzzSeeds: [][]int64{{1, 0}},
		}
	}
	return []*App{
		mk("randprog-1k", "scaled synthetic program, ~1k constraint nodes", srcs[0]),
		mk("randprog-10k", "scaled synthetic program, ~10k constraint nodes", srcs[1]),
		mk("randprog-100k", "scaled synthetic program, ~100k constraint nodes", srcs[2]),
	}
}

// AllApps returns the nine paper apps followed by the scaled benchmark
// family.
func AllApps() []*App { return append(Apps(), ScaledApps()...) }

// ByName returns the named application (paper or scaled) or nil.
func ByName(name string) *App {
	for _, a := range AllApps() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// stdRequests builds the common driver shape: a request count followed by
// per-request opcodes and payloads drawn from gen.
func stdRequests(n int, seed int64, perReq int, gen func(r *rand.Rand, out []int64)) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, 0, 1+n*perReq)
	out = append(out, int64(n))
	buf := make([]int64, perReq)
	for i := 0; i < n; i++ {
		gen(r, buf)
		out = append(out, buf...)
	}
	return out
}
