package workload

import "math/rand"

// Curl returns the download-client-like workload. Its defining imprecision
// source matches §7.2's finding for Curl: allocation routines are reached
// through function pointers, so every buffer shares one statically unknown
// heap object that no likely invariant may filter (§6's soundness rule).
// Kd-Ctx and Kd-PA each recover part of the precision, but the full
// configuration gains nothing further — the allocator pattern caps it.
func Curl() *App {
	return &App{
		Name:   "curl",
		Descr:  "Web Downloader",
		Source: curlSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				out[0] = int64(r.Intn(3))  // op: http/ftp/tls transfer
				out[1] = int64(r.Intn(32)) // payload length
				out[2] = int64(r.Intn(9))  // payload seed
			})
		},
		FuzzSeeds: [][]int64{
			{2, 0, 12, 3, 1, 20, 5},
			{1, 2, 6, 1},
		},
	}
}

const curlSrc = `
// curl-like synthetic workload: transfer handlers whose buffers come from a
// pluggable allocator reached through a function pointer.

struct easy_handle {
  int state;
  fn write_cb;
  fn read_cb;
  fn progress_cb;
  int* recv_buf;
  int* send_buf;
}

struct proto_ops {
  int scheme;
  fn connect_op;
  fn transfer_op;
  fn cleanup_op;
}

easy_handle h_http;
easy_handle h_ftp;
proto_ops ops_http;
proto_ops ops_ftp;
proto_ops ops_tls;

fn alloc_fn;
fn free_fn;

int url_buf[32];
int header_buf[32];

int stat_bytes;
int stat_xfers;

// ---- pluggable allocator: the pattern that caps Kaleidoscope on Curl ----
int* curl_malloc(int n) {
  return malloc(n);
}
int* curl_calloc(int n) {
  int* p;
  p = malloc(n);
  return p;
}
int curl_free(int* p) { return 0; }

// ---- transfer callbacks ----
int write_mem(int* b) { stat_bytes = stat_bytes + 1; return 1; }
int write_file(int* b) { stat_bytes = stat_bytes + 1; return 2; }
int read_mem(int* b) { return 3; }
int read_file(int* b) { return 4; }
int prog_noop(int* b) { return 0; }
int prog_meter(int* b) { return 5; }

int http_connect(int* b) { return 10; }
int http_transfer(int* b) { stat_xfers = stat_xfers + 1; return 11; }
int http_cleanup(int* b) { return 12; }
int ftp_connect(int* b) { return 13; }
int ftp_transfer(int* b) { stat_xfers = stat_xfers + 1; return 14; }
int ftp_cleanup(int* b) { return 15; }
int tls_connect(int* b) { return 16; }
int tls_transfer(int* b) { stat_xfers = stat_xfers + 1; return 17; }
int tls_cleanup(int* b) { return 18; }

// ---- Ctx channel: handler configuration helper ----
void easy_setopt(easy_handle* h, fn wcb, fn rcb, fn pcb) {
  h->write_cb = wcb;
  h->read_cb = rcb;
  h->progress_cb = pcb;
}

void ops_register(proto_ops* o, fn conn, fn xfer, fn clean) {
  o->connect_op = conn;
  o->transfer_op = xfer;
  o->cleanup_op = clean;
}

// ---- PA channel: header parsing with arbitrary arithmetic ----
void header_copy(char* dst, char* src, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(dst + i) = *(src + i);
    i = i + 1;
  }
}

void parse_headers(int taint, int len) {
  char* dst;
  dst = header_buf;
  if (taint % 7 == 9) {  // never true
    dst = &h_http;
  }
  if (taint % 5 == 8) {  // never true
    dst = &h_ftp;
  }
  header_copy(dst, url_buf, len);
}

void curl_init() {
  alloc_fn = &curl_malloc;
  free_fn = &curl_free;
  easy_setopt(&h_http, write_mem, read_mem, prog_noop);
  easy_setopt(&h_ftp, write_file, read_file, prog_meter);
  ops_register(&ops_http, http_connect, http_transfer, http_cleanup);
  ops_register(&ops_ftp, ftp_connect, ftp_transfer, ftp_cleanup);
  ops_register(&ops_tls, tls_connect, tls_transfer, tls_cleanup);
}

// Every buffer allocation goes through the allocator function pointer:
// the analysis must resolve alloc_fn before it can distinguish buffers, so
// all of them share the same unknown-type heap object.
int* get_buffer(int len) {
  int* b;
  b = alloc_fn(len);
  return b;
}

proto_ops* pick_ops(int scheme) {
  if (scheme % 3 == 0) {
    return &ops_http;
  }
  if (scheme % 3 == 1) {
    return &ops_ftp;
  }
  return &ops_tls;
}

int fill_buffer(int* buf, int len, int fill) {
  int i;
  i = 0;
  while (i < len % 12) {
    buf[i] = fill + i;
    i = i + 1;
  }
  return i;
}

int http_request(int len, int fill) {
  int* buf;
  int r;
  buf = get_buffer(len);
  fill_buffer(buf, len, fill);
  h_http.recv_buf = buf;
  h_http.send_buf = get_buffer(len);
  r = ops_http.connect_op(h_http.recv_buf);
  r = r + ops_http.transfer_op(buf);
  r = r + h_http.write_cb(h_http.recv_buf);
  r = r + h_http.progress_cb(null);
  parse_headers(len, len % 32);
  r = r + ops_http.cleanup_op(h_http.send_buf);
  free_fn(buf);
  return r;
}

int ftp_request(int len, int fill) {
  int* buf;
  int r;
  buf = get_buffer(len);
  fill_buffer(buf, len, fill);
  h_ftp.recv_buf = buf;
  r = ops_ftp.connect_op(h_ftp.recv_buf);
  r = r + ops_ftp.transfer_op(buf);
  r = r + h_ftp.read_cb(h_ftp.recv_buf);
  r = r + h_ftp.write_cb(buf);
  r = r + ops_ftp.cleanup_op(buf);
  free_fn(buf);
  return r;
}

// The generic path still dispatches through merged handle/ops pointers.
int do_transfer(int scheme, int len, int fill) {
  proto_ops* o;
  easy_handle* h;
  int* buf;
  int r;
  if (scheme % 3 == 0) {
    return http_request(len, fill);
  }
  if (scheme % 3 == 1) {
    return ftp_request(len, fill);
  }
  o = pick_ops(scheme);
  h = &h_http;
  if (scheme % 2 == 1) {
    h = &h_ftp;
  }
  buf = get_buffer(len);
  fill_buffer(buf, len, fill);
  h->recv_buf = buf;
  r = o->connect_op(h->recv_buf);
  r = r + o->transfer_op(buf);
  r = r + h->progress_cb(null);
  parse_headers(len, len % 32);
  r = r + o->cleanup_op(buf);
  free_fn(buf);
  return r;
}

int main() {
  int n;
  int op;
  int len;
  int fill;
  int req;
  int total;
  curl_init();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    op = input();
    len = input();
    fill = input();
    total = total + do_transfer(op, len % 32, fill);
    req = req + 1;
  }
  output(total);
  output(stat_bytes);
  output(stat_xfers);
  return total;
}
`
