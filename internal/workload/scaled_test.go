package workload

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/pointsto"
)

// TestScaledAppsCalibration pins the scaled family's contract: deterministic
// sources, registry separation from the nine paper apps, and constraint
// graphs within 25% of the advertised node counts (the calibration that
// makes BENCH_solver.json rows interpretable).
func TestScaledAppsCalibration(t *testing.T) {
	apps := ScaledApps()
	if len(apps) != 3 {
		t.Fatalf("ScaledApps: got %d apps, want 3", len(apps))
	}
	if len(Apps()) != 9 {
		t.Fatalf("Apps() must stay the nine paper apps, got %d", len(Apps()))
	}
	if len(AllApps()) != 12 {
		t.Fatalf("AllApps: got %d, want 12", len(AllApps()))
	}
	targets := map[string]int{"randprog-1k": 1000, "randprog-10k": 10000, "randprog-100k": 100000}
	for _, app := range apps {
		if ByName(app.Name) == nil {
			t.Errorf("%s: not reachable via ByName", app.Name)
		}
		if app.Source != ScaledApps()[0].Source && app.Name == "randprog-1k" {
			t.Errorf("%s: source not deterministic across calls", app.Name)
		}
		want := targets[app.Name]
		if want >= 100000 {
			// The 100k tier takes seconds to solve; its calibration is
			// exercised by the opt-in solver benchmarks, not the test suite.
			continue
		}
		m, err := app.Module()
		if err != nil {
			t.Fatalf("%s: compile: %v", app.Name, err)
		}
		r := pointsto.New(m, invariant.Config{}).Solve()
		n := r.NodeCount()
		if n < want*3/4 || n > want*5/4 {
			t.Errorf("%s: %d constraint nodes, want within 25%% of %d", app.Name, n, want)
		}
	}
}

// TestScaledProgramDeterministic: same seed and size, same source.
func TestScaledProgramDeterministic(t *testing.T) {
	if ScaledProgram(7, 20) != ScaledProgram(7, 20) {
		t.Fatal("ScaledProgram is not deterministic for a fixed seed")
	}
	if ScaledProgram(7, 20) == ScaledProgram(8, 20) {
		t.Fatal("ScaledProgram ignores its seed")
	}
}
