package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomProgram generates a random but well-formed, terminating MiniC
// program. The generator exercises the pointer-analysis-relevant constructs
// (multi-level pointers, struct fields with function pointers, heap
// allocation, arbitrary arithmetic, indirect calls) while keeping execution
// memory-safe, so generated programs serve as inputs to the soundness
// property tests: every dynamic points-to fact must be covered by the
// fallback analysis.
func RandomProgram(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	g := &progGen{r: r}
	return g.generate()
}

type progGen struct {
	r       *rand.Rand
	b       strings.Builder
	nStruct int
	nGlobal int
	nArr    int
	nFunc   int
}

func (g *progGen) generate() string {
	g.nStruct = 1 + g.r.Intn(3)
	g.nGlobal = 2 + g.r.Intn(4)
	g.nArr = 1 + g.r.Intn(3)
	g.nFunc = 2 + g.r.Intn(4)

	// Struct types: two int* fields and one fn field each.
	for s := 0; s < g.nStruct; s++ {
		fmt.Fprintf(&g.b, "struct S%d { int* fa; int* fb; fn cb; }\n", s)
	}
	for i := 0; i < g.nGlobal; i++ {
		fmt.Fprintf(&g.b, "int g%d;\n", i)
	}
	for i := 0; i < g.nArr; i++ {
		fmt.Fprintf(&g.b, "int arr%d[%d];\n", i, 8+g.r.Intn(8))
	}
	for s := 0; s < g.nStruct; s++ {
		fmt.Fprintf(&g.b, "S%d obj%d;\n", s, s)
	}

	// Leaf callback functions.
	for f := 0; f < g.nFunc; f++ {
		fmt.Fprintf(&g.b, "int cb%d(int* p) { return %d; }\n", f, f+1)
	}

	// A helper that stores its second argument through its first (a Ctx
	// candidate when called from several sites).
	fmt.Fprintf(&g.b, "void put(S0* s, int* v) { s->fa = v; }\n")
	fmt.Fprintf(&g.b, "int* pick(int* p) { return p; }\n")

	g.b.WriteString("int main() {\n")
	g.b.WriteString("  int i;\n  int t;\n  int acc;\n")
	g.b.WriteString("  int* p;\n  int* q;\n  int** pp;\n  char* c;\n  fn f;\n")
	fmt.Fprintf(&g.b, "  S0* hp;\n")
	g.b.WriteString("  acc = 0;\n  p = &g0;\n  q = &g1;\n  pp = &p;\n")
	fmt.Fprintf(&g.b, "  hp = malloc(sizeof(S0));\n")
	fmt.Fprintf(&g.b, "  f = &cb0;\n")

	nStmts := 6 + g.r.Intn(14)
	for i := 0; i < nStmts; i++ {
		g.stmt()
	}

	// A bounded loop with more pointer traffic.
	fmt.Fprintf(&g.b, "  i = 0;\n  while (i < %d) {\n", 2+g.r.Intn(6))
	for j := 0; j < 2+g.r.Intn(3); j++ {
		g.stmt()
	}
	g.b.WriteString("    i = i + 1;\n  }\n")

	g.b.WriteString("  acc = acc + *p + *q + f(p);\n")
	g.b.WriteString("  output(acc);\n  return acc;\n}\n")
	return g.b.String()
}

// ScaledProgram generates a deterministic MiniC program whose constraint
// graph scales linearly with units, for solver benchmarking (the nine paper
// apps all solve in under a millisecond, too small to differentiate solver
// strategies). Each unit is a function full of pointer traffic in the shapes
// the solver optimizations target — local-variable assignment cycles (which
// MiniC compiles to store/load cycles through memory: hybrid-cycle-detection
// fodder), straight copy chains through parameters and returns (offline
// variable-substitution fodder), and a sprinkling of struct callbacks,
// indirect calls, and arbitrary arithmetic so the invariant policies stay
// exercised. main threads a pointer through every unit in runs of chainLen,
// so points-to sets stay bounded while every unit's constraints feed the
// next.
func ScaledProgram(seed int64, units int) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder

	const nShared = 8
	b.WriteString("struct SC { int* fa; int* fb; fn cb; }\n")
	for i := 0; i < nShared; i++ {
		fmt.Fprintf(&b, "int sg%d;\n", i)
	}
	b.WriteString("int sa0[8];\nint sa1[8];\n")
	b.WriteString("SC reg0;\nSC reg1;\nSC reg2;\nSC reg3;\n")
	for f := 0; f < 4; f++ {
		fmt.Fprintf(&b, "int scb%d(int* p) { return %d; }\n", f, f+1)
	}
	b.WriteString("void sput(SC* s, int* v) { s->fa = v; }\n")

	for u := 0; u < units; u++ {
		fmt.Fprintf(&b, "int gu%d;\n", u)
		fmt.Fprintf(&b, "int* unit%d(int* x) {\n", u)
		b.WriteString("  int* a;\n  int* b;\n  int* c;\n  int** s;\n  int t;\n")
		// A memory copy cycle a -> b -> c -> a (flow-insensitive, so no loop
		// needed) plus a double-indirection knot through s.
		b.WriteString("  a = x;\n  b = a;\n  c = b;\n  a = c;\n")
		b.WriteString("  s = &a;\n  *s = b;\n  c = *s;\n")
		fmt.Fprintf(&b, "  b = &gu%d;\n", u)
		switch u % 8 {
		case 0:
			// Callback registration and indirect call through a shared
			// struct registry.
			fmt.Fprintf(&b, "  sput(&reg%d, b);\n", r.Intn(4))
			fmt.Fprintf(&b, "  reg%d.cb = &scb%d;\n", r.Intn(4), r.Intn(4))
			fmt.Fprintf(&b, "  t = reg%d.cb(b);\n", r.Intn(4))
		case 3:
			// Arbitrary arithmetic within array bounds (PA policy traffic).
			fmt.Fprintf(&b, "  c = sa%d;\n  t = input();\n  *(c + t %% 8) = t;\n", r.Intn(2))
			fmt.Fprintf(&b, "  c = &gu%d;\n", u)
		default:
			// Extra copy chain (variable substitution collapses it).
			fmt.Fprintf(&b, "  c = b;\n  b = c;\n  c = &sg%d;\n", r.Intn(nShared))
		}
		b.WriteString("  if (input() % 2 == 0) {\n    c = x;\n  }\n")
		b.WriteString("  return c;\n}\n")
	}

	// The spine: thread a pointer through every unit, restarting the chain
	// every chainLen hops so points-to sets stay bounded.
	const chainLen = 12
	b.WriteString("int main() {\n  int* p;\n")
	fmt.Fprintf(&b, "  p = &sg0;\n")
	for u := 0; u < units; u++ {
		if u > 0 && u%chainLen == 0 {
			fmt.Fprintf(&b, "  p = &sg%d;\n", r.Intn(nShared))
		}
		fmt.Fprintf(&b, "  p = unit%d(p);\n", u)
	}
	b.WriteString("  output(*p);\n  return 0;\n}\n")
	return b.String()
}

// stmt emits one random statement over the fixed variable vocabulary.
func (g *progGen) stmt() {
	switch g.r.Intn(12) {
	case 0:
		fmt.Fprintf(&g.b, "  p = &g%d;\n", g.r.Intn(g.nGlobal))
	case 1:
		fmt.Fprintf(&g.b, "  q = &g%d;\n", g.r.Intn(g.nGlobal))
	case 2:
		g.b.WriteString("  q = *pp;\n")
	case 3:
		g.b.WriteString("  *pp = q;\n")
	case 4:
		fmt.Fprintf(&g.b, "  f = &cb%d;\n", g.r.Intn(g.nFunc))
	case 5:
		fmt.Fprintf(&g.b, "  obj0.cb = &cb%d;\n  acc = acc + obj0.cb(p);\n", g.r.Intn(g.nFunc))
	case 6:
		// Arbitrary arithmetic within array bounds.
		fmt.Fprintf(&g.b, "  c = arr%d;\n  t = input();\n  *(c + t %% 8) = t;\n", g.r.Intn(g.nArr))
	case 7:
		fmt.Fprintf(&g.b, "  put(hp, &g%d);\n", g.r.Intn(g.nGlobal))
	case 8:
		fmt.Fprintf(&g.b, "  put(&obj0, &g%d);\n", g.r.Intn(g.nGlobal))
	case 9:
		g.b.WriteString("  q = pick(p);\n")
	case 10:
		fmt.Fprintf(&g.b, "  hp->fb = &g%d;\n  q = hp->fb;\n", g.r.Intn(g.nGlobal))
	case 11:
		fmt.Fprintf(&g.b, "  if (input() %% 2 == 0) {\n    p = &g%d;\n  } else {\n    p = arr%d;\n  }\n",
			g.r.Intn(g.nGlobal), g.r.Intn(g.nArr))
	}
}
