package workload

import "math/rand"

// LibPNG returns the PNG-library-like workload, built around one chunk-
// handler registry through which nearly every pointer flows. All three
// imprecision channels strike that registry, so — as in Table 3, where
// LibPNG's single-policy columns barely move (17.75 → 17.5) but the full
// combination reaches 1.21 (14.67×) — only full Kaleidoscope restores
// precision.
func LibPNG() *App {
	return &App{
		Name:   "libpng",
		Descr:  "Library for manipulating PNG files",
		Source: libpngSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				out[0] = int64(r.Intn(4))  // chunk kind
				out[1] = int64(r.Intn(24)) // row length
				out[2] = int64(r.Intn(9))  // pixel seed
			})
		},
		FuzzSeeds: [][]int64{
			{3, 0, 8, 2, 2, 16, 1, 1, 4, 4},
			{1, 3, 20, 7},
		},
	}
}

const libpngSrc = `
// libpng-like synthetic workload: a png_struct holding chunk handlers,
// a row-transform pipeline, and a compression-state arena.

struct png_struct {
  int state;
  fn read_ihdr;
  fn read_idat;
  fn read_plte;
  fn read_iend;
  fn read_text;
  fn read_gama;
  fn read_trns;
  fn read_bkgd;
  fn row_fn;
  int* row_buf;
}

struct compression_state {
  int avail;
  int* f1;
  int* f2;
}

png_struct png_reader;
png_struct png_writer;

int row_in[32];
int row_out[32];
int palette[16];

int stat_chunks;
int stat_rows;

// ---- chunk handlers ----
int ihdr_read(int* b) { stat_chunks = stat_chunks + 1; return 1; }
int idat_read(int* b) { stat_chunks = stat_chunks + 1; return 2; }
int plte_read(int* b) { stat_chunks = stat_chunks + 1; return 3; }
int iend_read(int* b) { stat_chunks = stat_chunks + 1; return 4; }
int ihdr_write(int* b) { return 5; }
int idat_write(int* b) { return 6; }
int plte_write(int* b) { return 7; }
int iend_write(int* b) { return 8; }
int row_expand(int* b) { stat_rows = stat_rows + 1; return 9; }
int row_shrink(int* b) { stat_rows = stat_rows + 1; return 10; }
int text_read(int* b) { return 11; }
int gama_read(int* b) { return 12; }
int trns_read(int* b) { return 13; }
int bkgd_read(int* b) { return 14; }
int text_write(int* b) { return 15; }
int gama_write(int* b) { return 16; }
int trns_write(int* b) { return 17; }
int bkgd_write(int* b) { return 18; }

// ---- Channel 1: row transform with arbitrary arithmetic (PA) ----
void row_copy(char* dst, char* src, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(dst + i) = *(src + i);
    i = i + 1;
  }
}

void transform_row(int taint, int len) {
  char* dst;
  char* src;
  dst = row_out;
  src = row_in;
  if (taint % 7 == 9) {  // never true
    dst = &png_reader;
  }
  if (taint % 5 == 8) {  // never true
    dst = &png_writer;
  }
  if (taint % 3 == 5) {  // never true
    src = &png_reader;
  }
  if (taint % 13 == 15) { // never true
    src = &png_writer;
  }
  row_copy(dst, src, len);
}

// ---- Channel 2: compression arena PWC (Figure 7 verbatim) ----
void* png_malloc(int n) {
  return malloc(n);
}

compression_state** zstream;
int** zsave;

void zlib_init() {
  zstream = png_malloc(sizeof(compression_state));
  zsave = png_malloc(sizeof(compression_state));
  *zstream = null;
}

void zlib_claim(int taint) {
  compression_state* zs;
  compression_state* cur;
  int** fslot;
  zs = png_malloc(sizeof(compression_state));
  zs->avail = taint;
  zs->f1 = row_in;
  zs->f2 = row_out;
  *zstream = zs;
  cur = *zstream;
  if (taint % 11 == 13) {  // never true
    char* confuse;
    confuse = &png_reader;
    cur = confuse;
  }
  if (taint % 17 == 19) {  // never true
    char* confuse2;
    confuse2 = &png_writer;
    cur = confuse2;
  }
  fslot = &cur->f2;
  *zsave = fslot;
}

// ---- Channel 3: handler registration helper (Ctx) ----
void png_set_read_fn(png_struct* p, fn ihdr, fn idat, fn plte, fn iend) {
  p->read_ihdr = ihdr;
  p->read_idat = idat;
  p->read_plte = plte;
  p->read_iend = iend;
}

void png_set_row_fn(png_struct* p, fn rf) {
  p->row_fn = rf;
}

void png_set_aux_fn(png_struct* p, fn tx, fn gm, fn tr, fn bk) {
  p->read_text = tx;
  p->read_gama = gm;
  p->read_trns = tr;
  p->read_bkgd = bk;
}

void png_init() {
  png_set_read_fn(&png_reader, ihdr_read, idat_read, plte_read, iend_read);
  png_set_read_fn(&png_writer, ihdr_write, idat_write, plte_write, iend_write);
  png_set_row_fn(&png_reader, row_expand);
  png_set_row_fn(&png_writer, row_shrink);
  png_set_aux_fn(&png_reader, text_read, gama_read, trns_read, bkgd_read);
  png_set_aux_fn(&png_writer, text_write, gama_write, trns_write, bkgd_write);
  png_reader.row_buf = row_in;
  png_writer.row_buf = row_out;
  zlib_init();
}

// ---- request processing: everything flows through the registry ----
int read_chunk(int kind, int len, int fill) {
  int i;
  int r;
  i = 0;
  while (i < len) {
    row_in[i] = fill + i;
    i = i + 1;
  }
  if (kind % 4 == 0) {
    r = png_reader.read_ihdr(png_reader.row_buf);
  } else if (kind % 4 == 1) {
    r = png_reader.read_idat(png_reader.row_buf);
    zlib_claim(len);
    r = r + png_reader.row_fn(row_in);
    transform_row(len, len % 32);
  } else if (kind % 4 == 2) {
    r = png_reader.read_plte(palette);
  } else {
    r = png_reader.read_iend(null);
    r = r + png_reader.read_text(row_in);
    r = r + png_reader.read_gama(palette);
    r = r + png_reader.read_trns(palette);
    r = r + png_reader.read_bkgd(row_in);
  }
  return r;
}

int write_chunk(int kind, int len) {
  int r;
  if (kind % 2 == 0) {
    r = png_writer.read_ihdr(png_writer.row_buf);
  } else {
    r = png_writer.read_idat(png_writer.row_buf);
    r = r + png_writer.row_fn(row_out);
    r = r + png_writer.read_text(row_out);
    r = r + png_writer.read_gama(palette);
    transform_row(len, len % 32);
  }
  return r;
}

int main() {
  int n;
  int kind;
  int len;
  int fill;
  int req;
  int total;
  png_init();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    kind = input();
    len = input();
    fill = input();
    total = total + read_chunk(kind, len % 24, fill);
    if (kind % 3 == 0) {
      total = total + write_chunk(kind, len);
    }
    req = req + 1;
  }
  output(total);
  output(stat_chunks);
  output(stat_rows);
  return total;
}
`
