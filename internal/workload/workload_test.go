package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/stats"
)

func TestAllAppsCompile(t *testing.T) {
	for _, app := range Apps() {
		t.Run(app.Name, func(t *testing.T) {
			m, err := app.Module()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if m.Func("main") == nil {
				t.Fatal("no main function")
			}
			if app.LoC() < 80 {
				t.Errorf("implausibly small source: %d LoC", app.LoC())
			}
			if len(app.FuzzSeeds) == 0 {
				t.Error("no fuzz seeds")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if ByName("mbedtls") == nil {
		t.Error("mbedtls missing")
	}
	if ByName("nope") != nil {
		t.Error("unknown app resolved")
	}
	if got := len(Apps()); got != 9 {
		t.Errorf("apps = %d, want 9", got)
	}
}

// Every hardened app must execute its request driver without faults, CFI
// violations, or likely-invariant violations — the paper's core observation
// (§7.2: "none of the likely invariants were violated at runtime").
func TestAppsRunCleanUnderFullKaleidoscope(t *testing.T) {
	for _, app := range Apps() {
		t.Run(app.Name, func(t *testing.T) {
			s := core.Analyze(app.MustModule(), invariant.All())
			h := s.Harden()
			for seed := int64(1); seed <= 3; seed++ {
				e := h.NewExecution(true)
				tr := e.Run("main", app.Requests(40, seed))
				if tr.Err != nil {
					t.Fatalf("seed %d: %v", seed, tr.Err)
				}
				if e.Switcher.Switched() {
					t.Fatalf("seed %d: invariant violated: %v", seed, e.Switcher.Violations())
				}
				if e.Runtime.CFILookups == 0 {
					t.Errorf("seed %d: no CFI lookups", seed)
				}
				// Optimistic soundness on violation-free runs.
				if bad := core.SoundnessReport(s.Optimistic, tr); len(bad) != 0 {
					t.Errorf("seed %d: optimistic unsound:\n%v", seed, bad)
				}
				if bad := core.SoundnessReport(s.Fallback, tr); len(bad) != 0 {
					t.Errorf("seed %d: fallback unsound:\n%v", seed, bad)
				}
			}
		})
	}
}

// The full configuration must improve the average points-to size on every
// application (Table 3's Factor column is > 1 for all nine).
func TestAppsPrecisionImproves(t *testing.T) {
	for _, app := range Apps() {
		t.Run(app.Name, func(t *testing.T) {
			s := core.Analyze(app.MustModule(), invariant.All())
			base := stats.Mean(s.Sizes(s.Fallback))
			opt := stats.Mean(s.Sizes(s.Optimistic))
			if opt >= base {
				t.Errorf("no improvement: baseline %.2f, kaleidoscope %.2f", base, opt)
			}
		})
	}
}

// Per-app shape assertions from Table 3 / §7.2.
func TestMbedTLSNeedsAllThreeInvariants(t *testing.T) {
	m := MbedTLS().MustModule()
	base := stats.Mean(coreSizes(t, m, invariant.Config{}))
	full := stats.Mean(coreSizes(t, m, invariant.All()))
	for _, cfg := range []invariant.Config{{Ctx: true}, {PA: true}, {PWC: true}} {
		single := stats.Mean(coreSizes(t, m, cfg))
		// Each single policy must recover well under half of the full gain.
		if (base - single) > 0.6*(base-full) {
			t.Errorf("%s alone recovers too much: base %.2f single %.2f full %.2f",
				cfg.Name(), base, single, full)
		}
	}
}

func TestLibtiffPADominant(t *testing.T) {
	m := Libtiff().MustModule()
	base := stats.Mean(coreSizes(t, m, invariant.Config{}))
	pa := stats.Mean(coreSizes(t, m, invariant.Config{PA: true}))
	pwc := stats.Mean(coreSizes(t, m, invariant.Config{PWC: true}))
	full := stats.Mean(coreSizes(t, m, invariant.All()))
	if (base - pa) < 0.7*(base-full) {
		t.Errorf("PA not dominant: base %.2f pa %.2f full %.2f", base, pa, full)
	}
	if pwc != base {
		t.Errorf("PWC unexpectedly changed libtiff: %.2f vs %.2f", pwc, base)
	}
}

func TestCurlFullGainCapped(t *testing.T) {
	m := Curl().MustModule()
	base := stats.Mean(coreSizes(t, m, invariant.Config{}))
	full := stats.Mean(coreSizes(t, m, invariant.All()))
	factor := stats.Factor(base, full)
	if factor > 2.5 {
		t.Errorf("curl factor %.2f too large; allocator pattern should cap it", factor)
	}
	if factor <= 1.05 {
		t.Errorf("curl factor %.2f shows no gain at all", factor)
	}
}

func TestWgetAndTinyDTLSMaxUnchanged(t *testing.T) {
	for _, app := range []*App{Wget(), TinyDTLS()} {
		t.Run(app.Name, func(t *testing.T) {
			m := app.MustModule()
			base := stats.Max(coreSizes(t, m, invariant.Config{}))
			full := stats.Max(coreSizes(t, m, invariant.All()))
			if full != base {
				t.Errorf("max changed: baseline %d, kaleidoscope %d", base, full)
			}
		})
	}
}

func TestTinyDTLSPWCDominant(t *testing.T) {
	m := TinyDTLS().MustModule()
	base := stats.Mean(coreSizes(t, m, invariant.Config{}))
	pwc := stats.Mean(coreSizes(t, m, invariant.Config{PWC: true}))
	full := stats.Mean(coreSizes(t, m, invariant.All()))
	if pwc != full {
		t.Errorf("PWC alone (%.2f) should equal full (%.2f)", pwc, full)
	}
	if pwc >= base {
		t.Errorf("PWC gave no gain: %.2f vs %.2f", pwc, base)
	}
}

func TestLighttpdCFIMuted(t *testing.T) {
	s := core.Analyze(Lighttpd().MustModule(), invariant.All())
	h := s.Harden()
	if h.Optimistic.MaxTargets() != h.Fallback.MaxTargets() {
		t.Errorf("plugin-array merging should keep the max CFI class: opt %d, fb %d",
			h.Optimistic.MaxTargets(), h.Fallback.MaxTargets())
	}
}

func coreSizes(t *testing.T, m *ir.Module, cfg invariant.Config) []int {
	t.Helper()
	s := core.Analyze(m, cfg)
	return s.Sizes(s.Optimistic)
}

// Soundness property over randomly generated programs: on any execution, the
// dynamic points-to relation must be covered by the fallback analysis, and —
// when no monitor fires — by the optimistic analysis too.
func TestRandomProgramSoundness(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := RandomProgram(seed)
		m, err := minic.Compile("rand", src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v\n%s", seed, err, src)
		}
		s := core.Analyze(m, invariant.All())
		h := s.Harden()
		for in := int64(0); in < 3; in++ {
			e := h.NewExecution(true)
			inputs := []int64{in, in * 3, 7 - in, in + 1, 2, 5, 1, 0, 4, 6, 3, 2, 1}
			tr := e.Run("main", inputs)
			if tr.Err != nil {
				// Random programs may fault (e.g. division); the trace up to
				// the fault must still be sound.
				t.Logf("seed %d input %d: fault: %v", seed, in, tr.Err)
			}
			if bad := core.SoundnessReport(s.Fallback, tr); len(bad) != 0 {
				t.Fatalf("seed %d input %d: fallback unsound:\n%v\nprogram:\n%s", seed, in, bad, src)
			}
			if !e.Switcher.Switched() {
				if bad := core.SoundnessReport(s.Optimistic, tr); len(bad) != 0 {
					t.Fatalf("seed %d input %d: optimistic unsound without violation:\n%v\nprogram:\n%s", seed, in, bad, src)
				}
			}
		}
	}
}

func TestRandomProgramsDeterministic(t *testing.T) {
	if RandomProgram(42) != RandomProgram(42) {
		t.Error("generator not deterministic")
	}
	if RandomProgram(1) == RandomProgram(2) {
		t.Error("different seeds produced identical programs")
	}
}
