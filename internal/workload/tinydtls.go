package workload

import "math/rand"

// TinyDTLS returns the datagram-TLS-library-like workload, the smallest of
// the nine. Its imprecision is dominated by a positive-weight cycle in the
// peer-list arena, so Kd-PWC alone captures most of the improvement
// (Table 3: 6.58 → 3.86) while the largest set — a handshake dispatch slot
// merged through an array — stays flat in every configuration.
func TinyDTLS() *App {
	return &App{
		Name:   "tinydtls",
		Descr:  "Library for Datagram Transport Layer Security",
		Source: tinydtlsSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				out[0] = int64(r.Intn(4))  // record type
				out[1] = int64(r.Intn(20)) // payload length
				out[2] = int64(r.Intn(9))  // payload seed
			})
		},
		FuzzSeeds: [][]int64{
			{3, 0, 6, 1, 2, 10, 3, 1, 4, 4},
			{1, 3, 18, 2},
		},
	}
}

const tinydtlsSrc = `
// tinydtls-like synthetic workload: peer list arena and handshake dispatch.

struct peer {
  int epoch;
  int* session;
  fn on_event;
  peer* next;
}

struct handshake_step {
  fn handler;
}

handshake_step steps[4];

int record_buf[24];
int session_store[8];

int stat_records;
int stat_events;

// ---- handshake handlers: merged by array-index insensitivity ----
int hs_hello(int* b) { stat_records = stat_records + 1; return 1; }
int hs_keyexchange(int* b) { stat_records = stat_records + 1; return 2; }
int hs_finished(int* b) { stat_records = stat_records + 1; return 3; }
int hs_alert(int* b) { stat_records = stat_records + 1; return 4; }
int peer_event(int* b) { stat_events = stat_events + 1; return 5; }

void steps_init() {
  steps[0].handler = &hs_hello;
  steps[1].handler = &hs_keyexchange;
  steps[2].handler = &hs_finished;
  steps[3].handler = &hs_alert;
}

// ---- dominant channel: peer arena positive-weight cycle ----
void* peer_alloc() {
  return malloc(sizeof(peer));
}

peer** peer_slot;
int** resume_slot;
peer* peer_head;

void peers_init() {
  peer_slot = peer_alloc();
  resume_slot = peer_alloc();
  *peer_slot = null;
}

void peer_add(int epoch) {
  peer* p;
  peer* cur;
  int** sslot;
  p = peer_alloc();
  p->epoch = epoch;
  p->session = session_store;
  p->on_event = &peer_event;
  p->next = peer_head;
  peer_head = p;
  *peer_slot = p;
  cur = *peer_slot;
  sslot = &cur->session;
  *resume_slot = sslot;
}

int peers_notify() {
  peer* cur;
  peer* nxt;
  int n;
  n = 0;
  cur = peer_head;
  while (cur != null) {
    nxt = cur->next;
    n = n + cur->on_event(cur->session);
    cur = nxt;
  }
  peer_head = null;
  return n;
}

int handle_record(int kind, int len, int fill) {
  int i;
  int r;
  i = 0;
  while (i < len) {
    record_buf[i] = fill + i;
    i = i + 1;
  }
  r = steps[kind % 4].handler(record_buf);
  if (kind % 4 == 0) {
    peer_add(len);
  }
  if (kind % 4 == 3) {
    r = r + peers_notify();
  }
  return r;
}

int main() {
  int n;
  int kind;
  int len;
  int fill;
  int req;
  int total;
  steps_init();
  peers_init();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    kind = input();
    len = input();
    fill = input();
    total = total + handle_record(kind, len % 20, fill);
    req = req + 1;
  }
  output(total);
  output(stat_records);
  output(stat_events);
  return total;
}
`
