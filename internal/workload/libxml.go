package workload

import "math/rand"

// Libxml returns the XML-library-like workload: SAX handler tables struck by
// all three imprecision channels plus a sizeable parsing core whose pointers
// the invariants do not touch, yielding a moderate full-combination factor
// (Table 3: 304 → 87.6, 3.47×) with near-flat single-policy columns.
func Libxml() *App {
	return &App{
		Name:   "libxml",
		Descr:  "Library for manipulating XML files",
		Source: libxmlSrc,
		Requests: func(n int, seed int64) []int64 {
			return stdRequests(n, seed, 3, func(r *rand.Rand, out []int64) {
				out[0] = int64(r.Intn(5))  // event kind
				out[1] = int64(r.Intn(28)) // text length
				out[2] = int64(r.Intn(9))  // char seed
			})
		},
		FuzzSeeds: [][]int64{
			{4, 0, 10, 2, 1, 6, 1, 2, 8, 3, 3, 12, 5},
			{1, 4, 24, 8},
		},
	}
}

const libxmlSrc = `
// libxml-like synthetic workload: SAX handler table, node tree, and
// entity-buffer handling.

struct sax_handler {
  int flags;
  fn start_elem;
  fn end_elem;
  fn characters;
  fn comment;
  int* user_data;
}

struct xml_node {
  int kind;
  xml_node* parent;
  xml_node* next;
  int* content;
}

sax_handler sax_doc;
sax_handler sax_html;
sax_handler sax_push;

int text_buf[40];
int ent_buf[40];
int name_buf[40];

int stat_elems;
int stat_chars;

// ---- SAX callbacks ----
int doc_start(int* b) { stat_elems = stat_elems + 1; return 1; }
int doc_end(int* b) { return 2; }
int doc_chars(int* b) { stat_chars = stat_chars + 1; return 3; }
int doc_comment(int* b) { return 4; }
int html_start(int* b) { stat_elems = stat_elems + 1; return 5; }
int html_end(int* b) { return 6; }
int html_chars(int* b) { stat_chars = stat_chars + 1; return 7; }
int html_comment(int* b) { return 8; }
int push_start(int* b) { stat_elems = stat_elems + 1; return 9; }
int push_end(int* b) { return 10; }
int push_chars(int* b) { return 11; }
int push_comment(int* b) { return 12; }

// ---- Channel 1: entity expansion via pointer arithmetic (PA) ----
void ent_copy(char* dst, char* src, int len) {
  int i;
  i = 0;
  while (i < len) {
    *(dst + i) = *(src + i);
    i = i + 1;
  }
}

void expand_entities(int taint, int len) {
  char* dst;
  char* src;
  dst = ent_buf;
  src = text_buf;
  if (taint % 7 == 9) {  // never true
    dst = &sax_doc;
  }
  if (taint % 5 == 8) {  // never true
    dst = &sax_html;
  }
  if (taint % 3 == 5) {  // never true
    src = &sax_push;
  }
  ent_copy(dst, src, len);
}

// ---- Channel 2: node arena PWC ----
void* node_alloc() {
  return malloc(sizeof(xml_node));
}

xml_node** doc_root;
int** frag_save;

void tree_init() {
  doc_root = node_alloc();
  frag_save = node_alloc();
  *doc_root = null;
}

void node_push(int kind, int taint) {
  xml_node* nd;
  xml_node* cur;
  int** cslot;
  nd = node_alloc();
  nd->kind = kind;
  nd->content = text_buf;
  nd->parent = null;
  nd->next = *doc_root;
  *doc_root = nd;
  cur = *doc_root;
  if (taint % 11 == 13) {  // never true
    char* confuse;
    confuse = &sax_doc;
    cur = confuse;
  }
  cslot = &cur->content;
  *frag_save = cslot;
}

int tree_walk() {
  xml_node* cur;
  int n;
  n = 0;
  cur = *doc_root;
  while (cur != null) {
    n = n + cur->kind;
    cur = cur->next;
  }
  return n;
}

// ---- Channel 3: handler registration (Ctx) ----
void sax_register(sax_handler* h, fn se, fn ee, fn ch, fn cm) {
  h->start_elem = se;
  h->end_elem = ee;
  h->characters = ch;
  h->comment = cm;
}

void sax_set_data(sax_handler* h, int* data) {
  h->user_data = data;
}

void xml_init() {
  sax_register(&sax_doc, doc_start, doc_end, doc_chars, doc_comment);
  sax_register(&sax_html, html_start, html_end, html_chars, html_comment);
  sax_register(&sax_push, push_start, push_end, push_chars, push_comment);
  sax_set_data(&sax_doc, text_buf);
  sax_set_data(&sax_html, ent_buf);
  sax_set_data(&sax_push, name_buf);
  tree_init();
}

// ---- parsing core (invariant-neutral pointer traffic) ----
int scan_name(int len, int fill) {
  int i;
  i = 0;
  while (i < len) {
    name_buf[i] = fill + i;
    i = i + 1;
  }
  return i;
}

int parse_event(int kind, int len, int fill) {
  int r;
  scan_name(len, fill);
  if (kind % 5 == 0) {
    r = sax_doc.start_elem(sax_doc.user_data);
    node_push(kind, len);
  } else if (kind % 5 == 1) {
    r = sax_doc.characters(text_buf);
    expand_entities(len, len % 40);
  } else if (kind % 5 == 2) {
    r = sax_doc.end_elem(sax_doc.user_data);
  } else if (kind % 5 == 3) {
    r = sax_html.start_elem(sax_html.user_data);
    r = r + sax_html.characters(ent_buf);
  } else {
    r = sax_doc.comment(text_buf);
    r = r + tree_walk();
    *doc_root = null;
  }
  return r;
}

// Rare DTD validation path (the driver generates kind < 5 only).
int validate_dtd(int taint, int len) {
  char* dst;
  int r;
  dst = name_buf;
  if (taint % 43 == 47) {  // never true
    dst = &sax_html;
  }
  ent_copy(dst, ent_buf, len % 16);
  sax_register(&sax_push, push_start, push_end, push_chars, push_comment);
  r = sax_push.start_elem(sax_push.user_data);
  return r + tree_walk();
}

int main() {
  int n;
  int kind;
  int len;
  int fill;
  int req;
  int total;
  xml_init();
  n = input();
  req = 0;
  total = 0;
  while (req < n) {
    kind = input();
    len = input();
    fill = input();
    if (kind == 59) {
      total = total + validate_dtd(len, fill);
    } else {
      total = total + parse_event(kind, len % 40, fill);
    }
    req = req + 1;
  }
  output(total);
  output(stat_elems);
  output(stat_chars);
  return total;
}
`
