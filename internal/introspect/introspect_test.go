package introspect

import (
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/minic"
	"repro/internal/pointsto"
)

// A program whose collapsed struct floods a pointer's points-to set with
// objects of several unrelated types.
const floodSrc = `
struct a { int* p; fn f; }
struct b { int* p; fn f; }
struct c { int* p; fn f; }
a ga;
b gb;
c gc;
int buf[8];
int h(int* x) { return 1; }

int main() {
  char* p;
  int i;
  ga.f = &h;
  gb.f = &h;
  gc.f = &h;
  p = buf;
  if (input()) { p = &ga; }
  if (input()) { p = &gb; }
  if (input()) { p = &gc; }
  i = input();
  *(p + i) = 0;
  return 0;
}
`

func runIntrospection(t *testing.T, src string, growth, types int) *Framework {
	t.Helper()
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	fw.GrowthThreshold = growth
	fw.TypeThreshold = types
	a := pointsto.New(m, invariant.Config{})
	a.SetTracer(fw)
	a.Solve()
	return fw
}

func TestFrameworkObservesUpdates(t *testing.T) {
	fw := runIntrospection(t, floodSrc, 1000, 1000)
	if fw.Updates == 0 || fw.ObjectsAdded == 0 {
		t.Fatalf("no updates observed: %+v", fw)
	}
	if len(fw.Alerts()) != 0 {
		t.Fatalf("alerts fired below thresholds: %v", fw.Alerts())
	}
}

func TestTypeDiversityAlert(t *testing.T) {
	fw := runIntrospection(t, floodSrc, 1000, 4)
	var found bool
	for _, a := range fw.Alerts() {
		if a.Kind == TypeDiversityAlert && a.Types >= 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no type-diversity alert; alerts = %v", fw.Alerts())
	}
}

func TestGrowthAlertAndBacktrack(t *testing.T) {
	fw := runIntrospection(t, floodSrc, 4, 1000)
	var derived *Alert
	for i := range fw.Alerts() {
		a := &fw.alerts[i]
		if a.Kind == GrowthAlert {
			if a.Derived {
				derived = a
			}
		}
	}
	if len(fw.Alerts()) == 0 {
		t.Fatal("no growth alerts at threshold 4")
	}
	if derived != nil && len(derived.Origin) == 0 {
		t.Errorf("derived alert lacks origin backtrack: %v", *derived)
	}
}

func TestAlertsDeduplicatedPerNode(t *testing.T) {
	fw := runIntrospection(t, floodSrc, 2, 1000)
	seen := map[string]int{}
	for _, a := range fw.Alerts() {
		if a.Kind == GrowthAlert {
			seen[a.Node]++
		}
	}
	for node, n := range seen {
		if n > 1 {
			t.Errorf("node %s alerted %d times", node, n)
		}
	}
}

func TestCycleCounting(t *testing.T) {
	src := `
int x;
int main() {
  int* p;
  int* q;
  p = &x;
  while (input()) {
    q = p;
    p = q;
  }
  return 0;
}
`
	fw := runIntrospection(t, src, 1000, 1000)
	if fw.Cycles == 0 {
		t.Error("no cycle events observed")
	}
}

func TestReportFormat(t *testing.T) {
	fw := runIntrospection(t, floodSrc, 4, 4)
	rep := fw.Report()
	for _, want := range []string{"introspection:", "alerts", "|pts|="} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
