// Package introspect implements the pointer-analysis introspection framework
// of §4.1: it observes every points-to update during solving, raises alerts
// when an update's growth or type diversity crosses configured thresholds,
// and backtracks derived constraints (up to five levels) to the primitive
// constraints that caused them. The paper used exactly this instrumentation
// on Nginx and a tiny Linux build to choose the three likely-invariant
// policies.
package introspect

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pointsto"
)

// AlertKind classifies introspection alerts.
type AlertKind int

// Alert kinds.
const (
	// GrowthAlert fires when a points-to set crosses the growth threshold.
	GrowthAlert AlertKind = iota
	// TypeDiversityAlert fires when a set accumulates objects of too many
	// unrelated types.
	TypeDiversityAlert
)

func (k AlertKind) String() string {
	if k == GrowthAlert {
		return "growth"
	}
	return "type-diversity"
}

// Alert is one imprecision indication.
type Alert struct {
	Kind    AlertKind
	Node    string // pointer identity
	Total   int    // points-to set size at alert time
	Types   int    // distinct types at alert time
	Site    int    // triggering constraint instruction
	Derived bool   // triggered by a derived constraint
	// Origin is the backtracked chain of constraint sites from the derived
	// constraint toward the primitive constraint (≤5 levels).
	Origin []int
}

func (a Alert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s: |pts|=%d, %d types (constraint #%d", a.Kind, a.Node, a.Total, a.Types, a.Site)
	if a.Derived {
		b.WriteString(", derived")
	}
	b.WriteString(")")
	if len(a.Origin) > 0 {
		fmt.Fprintf(&b, " origin: %v", a.Origin)
	}
	return b.String()
}

// Framework is a pointsto.Tracer that produces alerts. Thresholds follow the
// paper's ranges: growth 100–1000 and type diversity 10–50 depending on
// program size; the defaults suit the synthetic workloads.
type Framework struct {
	// GrowthThreshold alerts when a set's cardinality crosses it (paper:
	// 100–1000; default 100).
	GrowthThreshold int
	// TypeThreshold alerts when a set holds objects of more distinct types
	// (paper: 10–50; default 10).
	TypeThreshold int
	// BacktrackLevels caps origin backtracking (paper and default: 5).
	BacktrackLevels int

	alerts  []Alert
	alerted map[string]bool // node -> already alerted (per kind)

	// Event counters.
	Updates      int // points-to growth events observed
	Cycles       int // cycles detected
	PWCs         int // positive-weight cycles detected
	ObjectsAdded int // total objects added across updates
}

// New returns a framework with the default thresholds.
func New() *Framework {
	return &Framework{
		GrowthThreshold: 100,
		TypeThreshold:   10,
		BacktrackLevels: 5,
		alerted:         map[string]bool{},
	}
}

// Growth implements pointsto.Tracer.
func (fw *Framework) Growth(ev pointsto.GrowthEvent) {
	fw.Updates++
	fw.ObjectsAdded += ev.Added
	if ev.Total >= fw.GrowthThreshold {
		fw.alert(GrowthAlert, ev)
	}
	if ev.Types >= fw.TypeThreshold {
		fw.alert(TypeDiversityAlert, ev)
	}
}

// Cycle implements pointsto.Tracer.
func (fw *Framework) Cycle(size int, pwc bool) {
	fw.Cycles++
	if pwc {
		fw.PWCs++
	}
}

func (fw *Framework) alert(kind AlertKind, ev pointsto.GrowthEvent) {
	key := fmt.Sprintf("%d/%s", kind, ev.Desc)
	if fw.alerted[key] {
		return
	}
	fw.alerted[key] = true
	a := Alert{
		Kind:    kind,
		Node:    ev.Desc,
		Total:   ev.Total,
		Types:   ev.Types,
		Site:    ev.Site,
		Derived: ev.Derived,
	}
	if ev.Derived && ev.Backtrack != nil {
		a.Origin = ev.Backtrack(fw.BacktrackLevels)
	}
	fw.alerts = append(fw.alerts, a)
}

// Alerts returns the raised alerts.
func (fw *Framework) Alerts() []Alert { return fw.alerts }

// Report renders a human-readable introspection report, sorted by set size
// (largest first) — the ranking an analyst reads to pick likely invariants.
func (fw *Framework) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "introspection: %d updates, %d objects added, %d cycles (%d PWC), %d alerts\n",
		fw.Updates, fw.ObjectsAdded, fw.Cycles, fw.PWCs, len(fw.alerts))
	sorted := append([]Alert(nil), fw.alerts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total > sorted[j].Total })
	for _, a := range sorted {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	return b.String()
}
