// Package persist is the crash-safe on-disk result store behind the service
// daemon's warm restarts: a flat directory of framed records keyed by the
// same SHA-256 content identities the in-memory caches use, written so that
// any interrupted or corrupted write degrades to a cache miss — never to a
// wrong answer.
//
// The robustness contract mirrors internal/chaos's in-memory taxonomy,
// extended to disk:
//
//   - a Save is atomic: the record is written to a temp file in the store
//     directory, fsynced, and renamed over the final name, so a crash leaves
//     either the old record, the new record, or a stray temp file (ignored
//     and swept on open) — never a half-written final record;
//   - every record is framed with a magic, a format version, the payload
//     length, and a SHA-256 checksum over the payload; Load verifies all
//     four, so torn writes that beat the atomicity (reordered metadata,
//     lying fsync) and at-rest bit flips are detected, not decoded;
//   - a record that fails verification is moved into the quarantine/
//     subdirectory (preserved for inspection, counted in
//     "persist/corrupt-quarantined") and surfaced as a typed
//     *CorruptEntryError, which callers treat exactly like a miss: re-solve,
//     re-save, keep serving.
//
// The three persist fault-injection sites (internal/faultinject) attack
// each leg of that contract deterministically: persist/write-fail fails a
// Save before any byte is written, persist/torn-write truncates a record
// mid-frame *after* the rename, and persist/bit-flip corrupts one stored
// byte after a successful Save. FuzzPersistRoundTrip generalizes bit-flip to
// arbitrary single-byte corruption at arbitrary offsets.
package persist

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Frame layout: magic | version | payload length | payload SHA-256 | payload.
const (
	magic       = "KSPR"
	version     = 1
	headerBytes = 4 + 4 + 8 + sha256.Size // magic + version + length + checksum
)

// recordExt is the store filename suffix; anything else in the directory
// (temp files, quarantine/, operator notes) is not a record.
const recordExt = ".rec"

// ErrNotExist reports a key with no stored record — the ordinary cache miss,
// as opposed to the corrupt record CorruptEntryError reports.
var ErrNotExist = errors.New("persist: no such record")

// CorruptEntryError is the typed verification failure: the record exists but
// its frame is damaged (bad magic, unknown version, wrong length, checksum
// mismatch). By the time the caller sees it the record has already been
// moved to quarantine/, so retrying the Load yields ErrNotExist and the
// caller's miss path takes over.
type CorruptEntryError struct {
	Key        string
	Path       string // original record path
	Quarantine string // where the damaged record was preserved ("" if the move itself failed)
	Reason     string
}

func (e *CorruptEntryError) Error() string {
	return fmt.Sprintf("persist: corrupt record %s (%s): quarantined to %s", e.Key, e.Reason, e.Quarantine)
}

// keyPattern restricts keys to filename-safe characters so a key maps 1:1 to
// a record name with no escaping (and no traversal).
var keyPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,200}$`)

// Store is a crash-safe key→payload record store rooted at one directory.
// Safe for concurrent use. Create with Open.
type Store struct {
	dir     string
	metrics *telemetry.Registry
	faults  *faultinject.Plan
	mu      sync.Mutex // serializes multi-step file operations (save, quarantine)
}

// Open creates (if needed) the store directory and its quarantine/
// subdirectory, sweeps temp files left by a crashed writer, and returns the
// store. The registry (may be nil) receives the persist/* counters.
func Open(dir string, metrics *telemetry.Registry) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	s := &Store{dir: dir, metrics: metrics}
	// A crashed Save leaves a ".tmp-*" file that never got renamed; it holds
	// nothing the frame protocol vouches for, so sweeping it is safe.
	tmps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	for _, t := range tmps {
		os.Remove(t)
		s.counter("persist/temp-swept").Inc()
	}
	return s, nil
}

// SetFaults arms a fault-injection plan on the store's write path (the
// persist/write-fail, persist/torn-write, and persist/bit-flip sites). Must
// be set before the store is used concurrently.
func (s *Store) SetFaults(p *faultinject.Plan) { s.faults = p }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) counter(name string) *telemetry.Counter {
	if s.metrics == nil {
		return telemetry.New().Counter(name) // throwaway; keeps call sites branch-free
	}
	return s.metrics.Counter(name)
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+recordExt) }

func checkKey(key string) error {
	if !keyPattern.MatchString(key) {
		return fmt.Errorf("persist: invalid key %q (want %s)", key, keyPattern)
	}
	return nil
}

// encode frames a payload: magic | version | length | checksum | payload.
func encode(payload []byte) []byte {
	out := make([]byte, headerBytes+len(payload))
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[4:], version)
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[16:], sum[:])
	copy(out[headerBytes:], payload)
	return out
}

// decode verifies a frame and returns its payload; a non-empty reason means
// the record is corrupt.
func decode(data []byte) (payload []byte, reason string) {
	if len(data) < headerBytes {
		return nil, fmt.Sprintf("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Sprintf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != version {
		return nil, fmt.Sprintf("unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n != uint64(len(data)-headerBytes) {
		return nil, fmt.Sprintf("payload length %d does not match frame (%d bytes after header)", n, len(data)-headerBytes)
	}
	sum := sha256.Sum256(data[headerBytes:])
	if string(sum[:]) != string(data[16:headerBytes]) {
		return nil, "payload checksum mismatch"
	}
	return data[headerBytes:], ""
}

// Save atomically writes key's record: temp file, fsync, rename. On any
// error (including an injected persist/write-fail) nothing replaces a
// previously stored record, and the caller is expected to keep the entry
// dirty in memory and retry (the daemon retries at drain).
func (s *Store) Save(key string, payload []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if err := s.faults.Err(faultinject.PersistWriteFail); err != nil {
		s.counter("persist/save-failures").Inc()
		return fmt.Errorf("persist: save %s: %w", key, err)
	}
	frame := encode(payload)
	// Torn write: keep only a prefix of the frame but let the rename land,
	// simulating a crash where the directory entry hit disk before the data.
	// The Save still "succeeds" — exactly like the real crash it models —
	// and the damage is discovered by the next Load's checksum.
	if s.faults.Fire(faultinject.PersistTornWrite) {
		frame = frame[:headerBytes+len(payload)/2]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeAtomic(s.path(key), frame); err != nil {
		s.counter("persist/save-failures").Inc()
		return fmt.Errorf("persist: save %s: %w", key, err)
	}
	// Bit flip: corrupt one stored byte after the record is durable,
	// simulating at-rest media decay between this save and the next load.
	if s.faults.Fire(faultinject.PersistBitFlip) {
		s.flipByte(s.path(key))
	}
	s.counter("persist/saves").Inc()
	return nil
}

// writeAtomic writes data to path via temp file + fsync + rename.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// flipByte XORs one mid-file byte in place (the bit-flip fault body).
func (s *Store) flipByte(path string) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return
	}
	data[len(data)/2] ^= 0x40
	os.WriteFile(path, data, 0o644)
}

// Load reads and verifies key's record. A missing record is ErrNotExist; a
// damaged one is moved to quarantine/ and returned as *CorruptEntryError —
// never a partial or silently wrong payload.
func (s *Store) Load(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.counter("persist/load-misses").Inc()
		return nil, fmt.Errorf("%w: %s", ErrNotExist, key)
	}
	if err != nil {
		return nil, fmt.Errorf("persist: load %s: %w", key, err)
	}
	payload, reason := decode(data)
	if reason != "" {
		return nil, s.quarantine(key, path, reason)
	}
	s.counter("persist/loads").Inc()
	return payload, nil
}

// Quarantine moves key's record into quarantine/ for a caller-detected
// corruption (e.g. a payload that frames correctly but decodes to an
// inconsistent result) and returns the typed error Load would have.
func (s *Store) Quarantine(key, reason string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	return s.quarantine(key, s.path(key), reason)
}

func (s *Store) quarantine(key, path, reason string) *CorruptEntryError {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst := filepath.Join(s.dir, "quarantine", filepath.Base(path))
	// Never overwrite earlier quarantined evidence: suffix until free.
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.dir, "quarantine", filepath.Base(path)+"."+strconv.Itoa(i))
	}
	e := &CorruptEntryError{Key: key, Path: path, Reason: reason}
	if err := os.Rename(path, dst); err == nil {
		e.Quarantine = dst
	} else {
		// The move failed (e.g. the file vanished); removing is the next best
		// containment — the record must not be loadable again either way.
		os.Remove(path)
	}
	s.counter("persist/corrupt-quarantined").Inc()
	return e
}

// Delete removes key's record (missing records are fine): the disk-side half
// of cache eviction.
func (s *Store) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	err := os.Remove(s.path(key))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("persist: delete %s: %w", key, err)
	}
	if err == nil {
		s.counter("persist/deletes").Inc()
	}
	return nil
}

// Keys lists stored record keys oldest-first (by modification time, ties by
// name) — the FIFO order a bounded warm-load consumes so the store and the
// in-memory admission cache evict coherently.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: scan store: %w", err)
	}
	type rec struct {
		key string
		mod int64
	}
	var recs []rec
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, recordExt) {
			continue
		}
		key := strings.TrimSuffix(name, recordExt)
		if checkKey(key) != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{key: key, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].mod != recs[j].mod {
			return recs[i].mod < recs[j].mod
		}
		return recs[i].key < recs[j].key
	})
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = r.key
	}
	return keys, nil
}

// QuarantinedCount reports how many damaged records quarantine/ holds (the
// runbook's pile-up signal).
func (s *Store) QuarantinedCount() int {
	entries, err := os.ReadDir(filepath.Join(s.dir, "quarantine"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	return n
}
