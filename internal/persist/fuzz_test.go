package persist

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/telemetry"
)

// FuzzPersistRoundTrip is the disk-format robustness fuzzer: for any
// payload, (a) an unmolested record round-trips byte-identically, and (b)
// changing any single stored byte — header, checksum, or payload — must
// yield a typed CorruptEntryError, never a successful decode of different
// bytes. This is the property the quarantine path and the chaos restart leg
// stand on: a damaged record can only ever degrade to a miss.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add([]byte(""), uint32(0), byte(1))
	f.Add([]byte("x"), uint32(0), byte(0x80))
	f.Add([]byte(`{"snapshot":{"objects":6,"regs":[{"fn":"main","optimistic":["@g"]}]}}`), uint32(9), byte(0x01))
	f.Add(bytes.Repeat([]byte{0xAA}, 300), uint32(150), byte(0xFF))
	f.Fuzz(func(t *testing.T, payload []byte, pos uint32, flip byte) {
		s, err := Open(t.TempDir(), telemetry.New())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Save("fuzz.key", payload); err != nil {
			t.Fatal(err)
		}
		got, err := s.Load("fuzz.key")
		if err != nil {
			t.Fatalf("clean load failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("clean round trip diverged: got %d bytes want %d", len(got), len(payload))
		}

		// Corrupt exactly one byte somewhere in the stored frame.
		path := s.path("fuzz.key")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if flip == 0 {
			flip = 1 // XOR by zero is not a corruption
		}
		at := int(pos) % len(data)
		data[at] ^= flip
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		_, err = s.Load("fuzz.key")
		var ce *CorruptEntryError
		if !errors.As(err, &ce) {
			t.Fatalf("byte %d ^ %#x: Load = %v, want CorruptEntryError", at, flip, err)
		}
		if _, err := os.Stat(ce.Quarantine); err != nil {
			t.Fatalf("quarantined record missing: %v", err)
		}
		if _, err := s.Load("fuzz.key"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("corrupt record still loadable after quarantine: %v", err)
		}
	})
}
