package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

func timeFromUnix(sec int64) time.Time { return time.Unix(sec, 0) }

func newStore(t *testing.T) (*Store, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.New()
	s, err := Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func count(reg *telemetry.Registry, name string) int64 { return reg.Counter(name).Value() }

func TestSaveLoadRoundTrip(t *testing.T) {
	s, reg := newStore(t)
	payload := []byte(`{"result":"the canonical answer"}`)
	if err := s.Save("abc123.Baseline", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("abc123.Baseline")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: got %q want %q", got, payload)
	}
	if count(reg, "persist/saves") != 1 || count(reg, "persist/loads") != 1 {
		t.Fatalf("counters: saves=%d loads=%d, want 1/1",
			count(reg, "persist/saves"), count(reg, "persist/loads"))
	}
	// Overwrite is a plain save; the newest payload wins.
	if err := s.Save("abc123.Baseline", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Load("abc123.Baseline"); string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
}

func TestLoadMissingIsErrNotExist(t *testing.T) {
	s, reg := newStore(t)
	if _, err := s.Load("never.saved"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing record: %v, want ErrNotExist", err)
	}
	if count(reg, "persist/load-misses") != 1 {
		t.Fatal("miss not counted")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, _ := newStore(t)
	for _, key := range []string{"", "../escape", "a/b", ".hidden", "sp ace"} {
		if err := s.Save(key, []byte("x")); err == nil {
			t.Errorf("Save accepted invalid key %q", key)
		}
		if _, err := s.Load(key); err == nil || errors.Is(err, ErrNotExist) {
			t.Errorf("Load of invalid key %q: %v, want validation error", key, err)
		}
	}
}

// TestCorruptionQuarantined flips every single byte position of a stored
// record in turn and requires each mutation to be detected as a typed
// CorruptEntryError, moved to quarantine, and to leave the key a plain miss
// afterwards — the "degrade to re-solve, never decode garbage" contract.
func TestCorruptionQuarantined(t *testing.T) {
	payload := []byte("payload-bytes-under-test")
	frameLen := headerBytes + len(payload)
	for pos := 0; pos < frameLen; pos++ {
		s, reg := newStore(t)
		if err := s.Save("key.cfg", payload); err != nil {
			t.Fatal(err)
		}
		path := s.path("key.cfg")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[pos] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = s.Load("key.cfg")
		var ce *CorruptEntryError
		if !errors.As(err, &ce) {
			t.Fatalf("byte %d corrupted: Load = %v, want CorruptEntryError", pos, err)
		}
		if ce.Quarantine == "" {
			t.Fatalf("byte %d: record not quarantined", pos)
		}
		if _, err := os.Stat(ce.Quarantine); err != nil {
			t.Fatalf("byte %d: quarantined file missing: %v", pos, err)
		}
		if count(reg, "persist/corrupt-quarantined") != 1 {
			t.Fatalf("byte %d: quarantine counter = %d", pos, count(reg, "persist/corrupt-quarantined"))
		}
		if s.QuarantinedCount() != 1 {
			t.Fatalf("byte %d: QuarantinedCount = %d", pos, s.QuarantinedCount())
		}
		if _, err := s.Load("key.cfg"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("byte %d: after quarantine Load = %v, want ErrNotExist", pos, err)
		}
	}
}

func TestTruncationQuarantined(t *testing.T) {
	for _, keep := range []int{0, 3, headerBytes - 1, headerBytes, headerBytes + 4} {
		s, _ := newStore(t)
		if err := s.Save("trunc.cfg", []byte("a-payload-longer-than-all-cuts")); err != nil {
			t.Fatal(err)
		}
		path := s.path("trunc.cfg")
		data, _ := os.ReadFile(path)
		if keep > len(data) {
			t.Fatalf("cut %d beyond frame %d", keep, len(data))
		}
		os.WriteFile(path, data[:keep], 0o644)
		_, err := s.Load("trunc.cfg")
		var ce *CorruptEntryError
		if !errors.As(err, &ce) {
			t.Fatalf("truncated to %d bytes: Load = %v, want CorruptEntryError", keep, err)
		}
	}
}

// TestQuarantineNeverOverwrites saves+corrupts the same key twice and
// requires both damaged records to survive side by side in quarantine.
func TestQuarantineNeverOverwrites(t *testing.T) {
	s, _ := newStore(t)
	for i := 0; i < 2; i++ {
		if err := s.Save("dup.cfg", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		data, _ := os.ReadFile(s.path("dup.cfg"))
		data[len(data)-1] ^= 0xFF
		os.WriteFile(s.path("dup.cfg"), data, 0o644)
		if _, err := s.Load("dup.cfg"); err == nil {
			t.Fatal("corrupt record loaded")
		}
	}
	if got := s.QuarantinedCount(); got != 2 {
		t.Fatalf("QuarantinedCount = %d, want 2 (no overwrite)", got)
	}
}

func TestDeleteAndKeysFIFO(t *testing.T) {
	s, reg := newStore(t)
	// Force a deterministic FIFO order via explicit mtimes (same-second
	// saves are common on fast filesystems).
	names := []string{"c.third", "a.first", "b.second"}
	for _, k := range names {
		if err := s.Save(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	base := int64(1700000000)
	for i, k := range []string{"a.first", "b.second", "c.third"} {
		when := base + int64(i)
		if err := os.Chtimes(s.path(k), timeFromUnix(when), timeFromUnix(when)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "a.first" || keys[1] != "b.second" || keys[2] != "c.third" {
		t.Fatalf("Keys() = %v, want oldest-first", keys)
	}
	if err := s.Delete("b.second"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("b.second"); err != nil { // idempotent
		t.Fatalf("second delete: %v", err)
	}
	if count(reg, "persist/deletes") != 1 {
		t.Fatalf("persist/deletes = %d, want 1", count(reg, "persist/deletes"))
	}
	keys, _ = s.Keys()
	if len(keys) != 2 {
		t.Fatalf("after delete Keys() = %v", keys)
	}
	if _, err := s.Load("b.second"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("deleted key loads: %v", err)
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".tmp-crashed"), []byte("half a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-crashed")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("crashed temp file not swept on open")
	}
	if count(reg, "persist/temp-swept") != 1 {
		t.Fatal("sweep not counted")
	}
	keys, _ := s.Keys()
	if len(keys) != 0 {
		t.Fatalf("temp file surfaced as a key: %v", keys)
	}
}

// TestWriteFailFault: the persist/write-fail site fails the save before any
// byte lands; the previous record (if any) survives untouched.
func TestWriteFailFault(t *testing.T) {
	s, reg := newStore(t)
	if err := s.Save("k.cfg", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	plan := faultinject.Explicit(faultinject.PersistWriteFail)
	s.SetFaults(plan)
	err := s.Save("k.cfg", []byte("v2"))
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != faultinject.PersistWriteFail {
		t.Fatalf("Save under write-fail = %v, want injected error", err)
	}
	if count(reg, "persist/save-failures") != 1 {
		t.Fatal("save failure not counted")
	}
	if got, err := s.Load("k.cfg"); err != nil || string(got) != "v1" {
		t.Fatalf("old record damaged by failed save: %q %v", got, err)
	}
	// Single shot: the next save succeeds.
	if err := s.Save("k.cfg", []byte("v2")); err != nil {
		t.Fatal(err)
	}
}

// TestTornWriteFault: the torn write reports success (like the crash it
// models) but the next load must quarantine, never decode a prefix.
func TestTornWriteFault(t *testing.T) {
	s, reg := newStore(t)
	s.SetFaults(faultinject.Explicit(faultinject.PersistTornWrite))
	if err := s.Save("k.cfg", []byte("a payload that will be torn")); err != nil {
		t.Fatalf("torn save must look successful, got %v", err)
	}
	_, err := s.Load("k.cfg")
	var ce *CorruptEntryError
	if !errors.As(err, &ce) {
		t.Fatalf("Load after torn write = %v, want CorruptEntryError", err)
	}
	if count(reg, "persist/corrupt-quarantined") != 1 {
		t.Fatal("torn record not quarantined")
	}
}

// TestBitFlipFault: same story for at-rest corruption after a good save.
func TestBitFlipFault(t *testing.T) {
	s, _ := newStore(t)
	s.SetFaults(faultinject.Explicit(faultinject.PersistBitFlip))
	if err := s.Save("k.cfg", []byte("a payload that will decay")); err != nil {
		t.Fatal(err)
	}
	_, err := s.Load("k.cfg")
	var ce *CorruptEntryError
	if !errors.As(err, &ce) {
		t.Fatalf("Load after bit flip = %v, want CorruptEntryError", err)
	}
	if _, err := s.Load("k.cfg"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("flipped record still present: %v", err)
	}
}

func TestCallerQuarantine(t *testing.T) {
	s, reg := newStore(t)
	if err := s.Save("semantic.cfg", []byte("frames fine, decodes inconsistently")); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine("semantic.cfg", "content hash mismatch"); err == nil {
		t.Fatal("Quarantine returned nil, want typed error")
	} else {
		var ce *CorruptEntryError
		if !errors.As(err, &ce) || ce.Reason != "content hash mismatch" {
			t.Fatalf("Quarantine error = %v", err)
		}
	}
	if count(reg, "persist/corrupt-quarantined") != 1 || s.QuarantinedCount() != 1 {
		t.Fatal("caller-detected corruption not quarantined")
	}
}
