package fuzzer

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/workload"
)

func hardened(t *testing.T, name string) *core.Hardened {
	t.Helper()
	app := workload.ByName(name)
	if app == nil {
		t.Fatalf("no app %s", name)
	}
	return core.Analyze(app.MustModule(), invariant.All()).Harden()
}

func TestCampaignCoversBranchesAndMonitors(t *testing.T) {
	app := workload.ByName("mbedtls")
	h := hardened(t, "mbedtls")
	rep := Run(h, "main", app.FuzzSeeds, Config{Iterations: 120, Seed: 7})
	if rep.Execs < 120 {
		t.Errorf("execs = %d", rep.Execs)
	}
	if rep.BranchCoverage() < 0.3 {
		t.Errorf("branch coverage = %.2f, want >= 0.3", rep.BranchCoverage())
	}
	if rep.MonitorExec == 0 {
		t.Error("no monitors executed")
	}
	if rep.CorpusSize <= len(app.FuzzSeeds) {
		t.Error("corpus never grew: coverage feedback inert")
	}
}

// The paper's headline §7.3 result: across the whole campaign no likely
// invariant is violated.
func TestNoInvariantViolationsAcrossApps(t *testing.T) {
	for _, app := range workload.Apps() {
		t.Run(app.Name, func(t *testing.T) {
			h := hardened(t, app.Name)
			rep := Run(h, "main", app.FuzzSeeds, Config{Iterations: 60, Seed: 3})
			if len(rep.Violations) != 0 {
				t.Errorf("likely invariants violated under fuzzing: %v", rep.Violations)
			}
			if rep.CFIViolations != 0 {
				t.Errorf("CFI violations under fuzzing: %d", rep.CFIViolations)
			}
		})
	}
}

func TestCampaignDeterministic(t *testing.T) {
	app := workload.ByName("tinydtls")
	h := hardened(t, "tinydtls")
	a := Run(h, "main", app.FuzzSeeds, Config{Iterations: 50, Seed: 11})
	b := Run(h, "main", app.FuzzSeeds, Config{Iterations: 50, Seed: 11})
	if a.BranchExec != b.BranchExec || a.CorpusSize != b.CorpusSize || a.Execs != b.Execs {
		t.Errorf("campaign not deterministic: %+v vs %+v", a, b)
	}
}

func TestMutateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	parent := []int64{5, 4, 3, 2, 1}
	for i := 0; i < 500; i++ {
		child := mutate(rng, parent, 16)
		if len(child) == 0 || len(child) > 16 {
			t.Fatalf("mutant length %d out of bounds", len(child))
		}
	}
	if got := mutate(rng, nil, 8); len(got) == 0 {
		t.Error("empty parent produced empty child")
	}
}

func TestRunWithoutSeeds(t *testing.T) {
	h := hardened(t, "wget")
	rep := Run(h, "main", nil, Config{Iterations: 30, Seed: 5})
	if rep.Execs == 0 || rep.BranchTotal == 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
}
