// Package fuzzer implements the likely-invariant validation campaign of
// §7.3: a deterministic coverage-guided mutational fuzzer (standing in for
// AFL++) drives the hardened applications with mutated inputs, accumulates
// branch and monitor coverage, and records whether any likely invariant was
// violated.
package fuzzer

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/memview"
)

// Config controls a fuzzing campaign.
type Config struct {
	Iterations int   // number of executions (default 200)
	Seed       int64 // RNG seed (campaigns are deterministic)
	MaxLen     int   // maximum input length (default 160)
	Requests   int   // request count injected as the first input word (default 12)
}

// Report summarizes a campaign.
type Report struct {
	Execs         int
	CorpusSize    int
	BranchExec    int // distinct branch edges covered
	BranchTotal   int
	MonitorExec   int // distinct monitor sites executed
	MonitorTotal  int
	Violations    []memview.Violation
	Faults        int // runtime faults observed (not CFI)
	CFIViolations int
	NewCovInputs  int // inputs that increased coverage
	MergedTrace   *interp.Trace
}

// BranchCoverage returns the covered branch fraction.
func (r *Report) BranchCoverage() float64 {
	if r.BranchTotal == 0 {
		return 0
	}
	return float64(r.BranchExec) / float64(r.BranchTotal)
}

// MonitorCoverage returns the executed monitor fraction.
func (r *Report) MonitorCoverage() float64 {
	if r.MonitorTotal == 0 {
		return 0
	}
	return float64(r.MonitorExec) / float64(r.MonitorTotal)
}

// Run fuzzes the hardened program's entry function starting from seeds.
func Run(h *core.Hardened, entry string, seeds [][]int64, cfg Config) *Report {
	if cfg.Iterations == 0 {
		cfg.Iterations = 200
	}
	if cfg.MaxLen == 0 {
		cfg.MaxLen = 160
	}
	if cfg.Requests == 0 {
		cfg.Requests = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{}

	corpus := make([][]int64, 0, len(seeds)+32)
	for _, s := range seeds {
		corpus = append(corpus, append([]int64(nil), s...))
	}
	if len(corpus) == 0 {
		corpus = append(corpus, []int64{int64(cfg.Requests), 1, 2, 3})
	}

	var merged *interp.Trace
	// AFL-style coverage map: branch edge -> highest hit-count bucket seen,
	// plus indirect-call target keys.
	buckets := map[[2]int]int{}
	icallCov := map[string]bool{}

	execOne := func(input []int64) bool {
		e := h.NewExecution(false)
		tr := e.Run(entry, input)
		rep.Execs++
		switch tr.Err.(type) {
		case nil:
		case *interp.CFIViolation:
			rep.CFIViolations++
		default:
			rep.Faults++
		}
		rep.Violations = append(rep.Violations, e.Switcher.Violations()...)
		grew := false
		if merged == nil {
			merged = tr
		} else {
			beforeMonitors := merged.MonitorsExecuted()
			merged.Merge(tr)
			if merged.MonitorsExecuted() > beforeMonitors {
				grew = true
			}
		}
		for edge, b := range tr.BranchBuckets() {
			if b > buckets[edge] {
				buckets[edge] = b
				grew = true
			}
		}
		for site, targets := range tr.ICallObserved {
			for t := range targets {
				k := fmt.Sprintf("%d:%s", site, t)
				if !icallCov[k] {
					icallCov[k] = true
					grew = true
				}
			}
		}
		return grew
	}

	// Seed pass.
	for _, s := range corpus {
		execOne(s)
	}

	for i := 0; i < cfg.Iterations; i++ {
		parent := corpus[rng.Intn(len(corpus))]
		child := mutate(rng, parent, cfg.MaxLen)
		if execOne(child) {
			rep.NewCovInputs++
			corpus = append(corpus, child)
		}
	}

	rep.CorpusSize = len(corpus)
	rep.MergedTrace = merged
	rep.BranchExec, rep.BranchTotal = merged.BranchCoverage()
	rep.MonitorExec = merged.MonitorsExecuted()
	rep.MonitorTotal = h.MonitorSites()
	return rep
}

// mutate derives a child input from a parent with AFL-style operations.
func mutate(rng *rand.Rand, parent []int64, maxLen int) []int64 {
	child := append([]int64(nil), parent...)
	if len(child) == 0 {
		child = []int64{1}
	}
	nOps := 1 + rng.Intn(4)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(6) {
		case 0: // point replace
			child[rng.Intn(len(child))] = int64(rng.Intn(64))
		case 1: // arithmetic nudge
			p := rng.Intn(len(child))
			child[p] += int64(rng.Intn(7)) - 3
			if child[p] < 0 {
				child[p] = 0
			}
		case 2: // insert
			if len(child) < maxLen {
				p := rng.Intn(len(child) + 1)
				child = append(child[:p], append([]int64{int64(rng.Intn(48))}, child[p:]...)...)
			}
		case 3: // delete
			if len(child) > 1 {
				p := rng.Intn(len(child))
				child = append(child[:p], child[p+1:]...)
			}
		case 4: // duplicate tail segment
			if len(child) < maxLen-4 && len(child) >= 2 {
				seg := child[len(child)/2:]
				child = append(child, seg...)
			}
		case 5: // interesting values
			vals := []int64{0, 1, 3, 7, 8, 15, 31, 47}
			child[rng.Intn(len(child))] = vals[rng.Intn(len(vals))]
		}
	}
	if len(child) > maxLen {
		child = child[:maxLen]
	}
	return child
}
