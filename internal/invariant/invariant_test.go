package invariant

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		PA:      "pointer-arithmetic",
		PWC:     "positive-weight-cycle",
		Ctx:     "context-sensitivity",
		Kind(9): "invariant.Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConfigNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "Baseline"},
		{Config{Ctx: true}, "Kd-Ctx"},
		{Config{PA: true}, "Kd-PA"},
		{Config{PWC: true}, "Kd-PWC"},
		{Config{Ctx: true, PA: true}, "Kd-Ctx-PA"},
		{Config{Ctx: true, PWC: true}, "Kd-Ctx-PWC"},
		{Config{PA: true, PWC: true}, "Kd-PA-PWC"},
		{All(), "Kaleidoscope"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
}

func TestAny(t *testing.T) {
	if (Config{}).Any() {
		t.Error("zero config Any")
	}
	if !(Config{PWC: true}).Any() || !All().Any() {
		t.Error("non-zero config not Any")
	}
}

func TestAblationsCoverAllCombinations(t *testing.T) {
	abls := Ablations()
	if len(abls) != 8 {
		t.Fatalf("ablations = %d, want 8", len(abls))
	}
	seen := map[string]bool{}
	for _, cfg := range abls {
		name := cfg.Name()
		if seen[name] {
			t.Errorf("duplicate config %s", name)
		}
		seen[name] = true
	}
	if abls[0].Any() {
		t.Error("first ablation must be the baseline")
	}
	if abls[7] != All() {
		t.Error("last ablation must be full Kaleidoscope")
	}
}
