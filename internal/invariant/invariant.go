// Package invariant defines the likely-invariant records produced by the
// optimistic pointer analysis and consumed by the runtime (monitors, memory
// views). The three kinds mirror §4.2–§4.4 of the paper.
package invariant

import "fmt"

// Kind identifies a likely-invariant policy.
type Kind int

// The three likely-invariant policies of the paper.
const (
	// PA: a pointer with an arbitrary offset added accesses array elements
	// only, never fields of a plain struct object (§4.2).
	PA Kind = iota
	// PWC: positive-weight cycles in the constraint graph stem from
	// imprecision and do not occur at runtime (§4.3).
	PWC
	// Ctx: precision-critical arguments are not redirected to other objects
	// inside the called function (§4.4).
	Ctx
)

func (k Kind) String() string {
	switch k {
	case PA:
		return "pointer-arithmetic"
	case PWC:
		return "positive-weight-cycle"
	case Ctx:
		return "context-sensitivity"
	}
	return fmt.Sprintf("invariant.Kind(%d)", int(k))
}

// Config selects which likely-invariant policies the optimistic analysis
// assumes. The zero value is the baseline (no invariants).
type Config struct {
	PA  bool
	PWC bool
	Ctx bool
}

// All returns the full-Kaleidoscope configuration.
func All() Config { return Config{PA: true, PWC: true, Ctx: true} }

// Any reports whether at least one policy is enabled.
func (c Config) Any() bool { return c.PA || c.PWC || c.Ctx }

// Name renders the paper's configuration label (Baseline, Kd-Ctx, ...,
// Kaleidoscope).
func (c Config) Name() string {
	switch {
	case !c.Any():
		return "Baseline"
	case c.PA && c.PWC && c.Ctx:
		return "Kaleidoscope"
	case c.Ctx && c.PA:
		return "Kd-Ctx-PA"
	case c.Ctx && c.PWC:
		return "Kd-Ctx-PWC"
	case c.PA && c.PWC:
		return "Kd-PA-PWC"
	case c.Ctx:
		return "Kd-Ctx"
	case c.PA:
		return "Kd-PA"
	default:
		return "Kd-PWC"
	}
}

// Ablations lists the eight configurations of Table 3 / Figures 10–13, in
// the paper's column order.
func Ablations() []Config {
	return []Config{
		{},
		{Ctx: true},
		{PA: true},
		{PWC: true},
		{Ctx: true, PA: true},
		{Ctx: true, PWC: true},
		{PA: true, PWC: true},
		All(),
	}
}

// Record is one likely invariant assumed by an optimistic analysis run.
type Record struct {
	Kind Kind
	// Site is the primary instruction ID: the PtrAdd for PA, a FieldAddr
	// inside the cycle for PWC, the critical store/return for Ctx.
	Site int
	// FilteredObjs (PA) lists the abstract object IDs optimistically removed
	// from the points-to set of the arithmetic pointer.
	FilteredObjs []int
	// CycleFieldSites (PWC) lists the FieldAddr instruction IDs participating
	// in the positive-weight cycle.
	CycleFieldSites []int
	// Callsites (Ctx) lists the call instruction IDs whose actuals were wired
	// context-sensitively.
	Callsites []int
	// CtxParams (Ctx) lists the precision-critical parameter positions:
	// [base, value] for stores, [param] for returns.
	CtxParams []int
	// CtxSamples (Ctx) tells the monitor how to read the current value of
	// each critical parameter at the check site, aligned with CtxParams.
	CtxSamples []CtxSample
	// Desc is a human-readable summary for reports.
	Desc string
}

// CtxSample tells a Ctx monitor how to observe one critical parameter: read
// register Reg and, if Deref is set, load through it (parameters that are
// assigned in the callee live in a stack slot; Reg then holds the slot
// address).
type CtxSample struct {
	Reg   string
	Deref bool
}

// Monitor is a runtime check site guarding one likely invariant.
type Monitor struct {
	InstrID   int  // the instrumented instruction
	Kind      Kind // which policy the monitor guards
	Invariant int  // index into the analysis' []Record
}
