package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMedianMaxMin(t *testing.T) {
	xs := []int{4, 1, 3, 2}
	if got := Mean(xs); !almost(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
	if got := Median(xs); !almost(got, 2.5) {
		t.Errorf("Median = %v", got)
	}
	if Max(xs) != 4 || Min(xs) != 1 {
		t.Errorf("Max/Min = %d/%d", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-input stats nonzero")
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]int{9, 1, 5}); !almost(got, 5) {
		t.Errorf("Median = %v", got)
	}
}

func TestBoxQuartiles(t *testing.T) {
	// 1..9: Q1=3, median=5, Q3=7 with linear interpolation.
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := NewBox(xs)
	if !almost(b.Q1, 3) || !almost(b.Median, 5) || !almost(b.Q3, 7) {
		t.Errorf("box = %+v", b)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("unexpected outliers %v", b.Outliers)
	}
	if b.LoWhisk != 1 || b.HiWhisk != 9 {
		t.Errorf("whiskers = %v/%v", b.LoWhisk, b.HiWhisk)
	}
}

func TestBoxOutliers(t *testing.T) {
	xs := []int{10, 11, 12, 13, 14, 100}
	b := NewBox(xs)
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v", b.Outliers)
	}
	if b.HiWhisk != 14 {
		t.Errorf("hi whisker = %v, want 14", b.HiWhisk)
	}
}

func TestBoxSingletonAndEmpty(t *testing.T) {
	b := NewBox([]int{7})
	if b.Median != 7 || b.LoWhisk != 7 || b.HiWhisk != 7 {
		t.Errorf("singleton box = %+v", b)
	}
	e := NewBox(nil)
	if e.N != 0 || e.Mean != 0 {
		t.Errorf("empty box = %+v", e)
	}
}

func TestBoxRender(t *testing.T) {
	b := NewBox([]int{1, 2, 3, 4, 5, 50})
	s := b.Render(50, 40)
	if len(s) != 40 {
		t.Fatalf("render width = %d", len(s))
	}
	if !strings.Contains(s, "|") || !strings.Contains(s, "=") || !strings.Contains(s, "o") {
		t.Errorf("render missing glyphs: %q", s)
	}
}

func TestFactor(t *testing.T) {
	if !almost(Factor(10, 2), 5) {
		t.Error("Factor(10,2)")
	}
	if !almost(Factor(0, 0), 1) {
		t.Error("Factor(0,0)")
	}
	if !almost(Factor(8, 0), 8) {
		t.Error("Factor(8,0)")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("App", "Baseline", "Kaleidoscope")
	tb.AddRow("MbedTLS", "304.00", "6.71")
	tb.AddRow("Libtiff", "138.37", "2.91")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "App") || !strings.Contains(lines[0], "Kaleidoscope") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "MbedTLS") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159) != "3.14" {
		t.Errorf("F = %q", F(3.14159))
	}
	if Pct(0.0545) != "5.45%" {
		t.Errorf("Pct = %q", Pct(0.0545))
	}
}

// Property: quartiles are ordered and bounded by min/max.
func TestQuickBoxInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int, len(raw))
		for i, r := range raw {
			xs[i] = int(r)
		}
		b := NewBox(xs)
		sorted := append([]int(nil), xs...)
		sort.Ints(sorted)
		lo, hi := float64(sorted[0]), float64(sorted[len(sorted)-1])
		ordered := b.Q1 <= b.Median && b.Median <= b.Q3
		bounded := b.Q1 >= lo && b.Q3 <= hi
		whisks := b.LoWhisk <= b.Q1+1e-9 && b.HiWhisk >= b.Q3-1e-9 || len(b.Outliers) > 0
		return ordered && bounded && whisks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int, len(raw))
		for i, r := range raw {
			xs[i] = int(r)
		}
		m := Mean(xs)
		return m >= float64(Min(xs))-1e-9 && m <= float64(Max(xs))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
