// Package stats provides the descriptive statistics and rendering used by
// the experiment harness: means, quartiles, IQR outliers, box-plot summaries
// (Figures 10 and 12), and aligned text tables (Tables 2–5).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum (0 for empty input).
func Min(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// quantile returns the q-quantile (0≤q≤1) of sorted data via linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median (0 for empty input).
func Median(xs []int) float64 {
	s := toSortedFloats(xs)
	return quantile(s, 0.5)
}

func toSortedFloats(xs []int) []float64 {
	s := make([]float64, len(xs))
	for i, x := range xs {
		s[i] = float64(x)
	}
	sort.Float64s(s)
	return s
}

// Box is a five-number box-plot summary with IQR outliers (1.5×IQR whisker
// rule, matching matplotlib's default used by the paper's figures).
type Box struct {
	N        int
	Mean     float64
	Q1       float64
	Median   float64
	Q3       float64
	LoWhisk  float64 // smallest point ≥ Q1 − 1.5·IQR
	HiWhisk  float64 // largest point ≤ Q3 + 1.5·IQR
	Outliers []float64
}

// NewBox summarizes xs.
func NewBox(xs []int) Box {
	b := Box{N: len(xs), Mean: Mean(xs)}
	if len(xs) == 0 {
		return b
	}
	s := toSortedFloats(xs)
	b.Q1 = quantile(s, 0.25)
	b.Median = quantile(s, 0.5)
	b.Q3 = quantile(s, 0.75)
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LoWhisk = math.Inf(1)
	b.HiWhisk = math.Inf(-1)
	for _, v := range s {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
			continue
		}
		if v < b.LoWhisk {
			b.LoWhisk = v
		}
		if v > b.HiWhisk {
			b.HiWhisk = v
		}
	}
	if math.IsInf(b.LoWhisk, 1) {
		b.LoWhisk, b.HiWhisk = b.Median, b.Median
	}
	return b
}

// String renders the five-number summary.
func (b Box) String() string {
	return fmt.Sprintf("n=%d mean=%.2f [%.1f | %.1f %.1f %.1f | %.1f] outliers=%d",
		b.N, b.Mean, b.LoWhisk, b.Q1, b.Median, b.Q3, b.HiWhisk, len(b.Outliers))
}

// Render draws an ASCII box plot on a [0,max] axis of the given width.
func (b Box) Render(axisMax float64, width int) string {
	if width < 10 {
		width = 10
	}
	if axisMax <= 0 {
		axisMax = 1
	}
	pos := func(v float64) int {
		p := int(v / axisMax * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := []byte(strings.Repeat(" ", width))
	for i := pos(b.LoWhisk); i <= pos(b.HiWhisk); i++ {
		row[i] = '-'
	}
	for i := pos(b.Q1); i <= pos(b.Q3); i++ {
		row[i] = '='
	}
	row[pos(b.Median)] = '|'
	for _, o := range b.Outliers {
		if row[pos(o)] == ' ' {
			row[pos(o)] = 'o'
		}
	}
	return string(row)
}

// Factor returns base/opt, the paper's improvement factor (∞-safe: returns
// base when opt is zero, 1 when both are zero).
func Factor(base, opt float64) float64 {
	if opt == 0 {
		if base == 0 {
			return 1
		}
		return base
	}
	return base / opt
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < len(t.Headers); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with two decimals (table cells).
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a ratio as a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
