package pointsto

import "repro/internal/telemetry"

// Wave propagation (Pereira and Berlin, CGO'09 — cited by the paper as one
// of the standard Andersen accelerations). Instead of popping worklist nodes
// in arbitrary order, each wave collapses copy cycles, topologically sorts
// the condensed constraint graph, and propagates along the copy/gep edges in
// topological order, so every points-to set is pushed downstream exactly
// once per wave. Results are identical to the worklist solver (asserted by
// tests); only the iteration strategy differs.

// SetWave selects wave propagation as the solving strategy. Must be called
// before Solve.
func (a *Analysis) SetWave(wave bool) { a.wave = wave }

// solveWave runs wave propagation to a fixed point. Wave spans nest under
// the caller's solve span.
func (a *Analysis) solveWave(solveSpan *telemetry.Span) {
	a.ensureWL()
	for {
		a.stats.Waves++
		a.hWLDepth.Observe(int64(len(a.worklist)))
		a.gLiveDepth.Set(int64(len(a.worklist)))
		_, finW := a.metrics.StartSpan("pointsto/round/wave", solveSpan)
		stopW := a.metrics.Timer("pointsto/phase/wave").Start()
		// Collapse copy cycles first so the remaining graph is (nearly) a
		// DAG; PWC handling follows the configured policy.
		changed := a.sccPass()
		order, _ := a.topoOrder()
		// One wave: process every node in topological order. processNode
		// pushes downstream nodes; because we visit in topo order, most of
		// those pushes are handled later in the same wave. Under delta
		// propagation a node with nothing pending is a constant-time visit,
		// so later waves only pay for sets that actually grew.
		for _, n := range order {
			if a.find(n) != n {
				continue
			}
			if a.budgeted && !a.budgetStep() {
				break
			}
			a.inWL[n] = false
			a.processNode(n)
		}
		// Drain any residual work (derived edges may point upstream). An
		// abort above falls through harmlessly: drain re-checks the budget
		// before its first pop.
		a.drain()
		stopW()
		finW()
		if a.abortErr != nil {
			return
		}
		if !changed && !a.sccPass() {
			// One more quiescence check: nothing changed structurally and
			// the worklist is empty.
			if len(a.worklist) == 0 {
				return
			}
		}
	}
}

// topoOrder returns representative nodes in topological order of the
// copy+gep subgraph, grouped into levels: order[starts[i]:starts[i+1]] is
// level i, and every forward copy/gep edge crosses from its level into a
// strictly later one, so the nodes of one level share no forward edges among
// themselves. That independence is what the parallel wave solver fans out
// over (parallel.go); the sequential wave simply walks the flat order, which
// remains a valid topological order. Cycles, if any remain, are broken
// arbitrarily by the DFS finish ordering, which is safe for both consumers:
// the residual drain handles back edges.
func (a *Analysis) topoOrder() (order []int, starts []int) {
	n := len(a.nodes)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	order = make([]int, 0, n)

	// Successors are iterated lazily per frame (ci walks copyTo, gi walks
	// gepTo) instead of materializing a fresh slice per node per wave, and
	// nextSucc skips targets whose raw id is already finished before paying
	// for the union-find resolution.
	type frame struct {
		v      int
		ci, gi int
	}
	nextSucc := func(f *frame) int {
		for copies := a.copyTo[f.v]; f.ci < len(copies); {
			t := int(copies[f.ci])
			f.ci++
			if state[t] == 2 {
				continue
			}
			if w := a.find(t); state[w] != 2 {
				return w
			}
		}
		for geps := a.gepTo[f.v]; f.gi < len(geps); {
			t := int(geps[f.gi].to)
			f.gi++
			if state[t] == 2 {
				continue
			}
			if w := a.find(t); state[w] != 2 {
				return w
			}
		}
		return -1
	}
	for root := 0; root < n; root++ {
		if a.find(root) != root || state[root] != 0 {
			continue
		}
		frames := []frame{{v: root}}
		state[root] = 1
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if w := nextSucc(f); w >= 0 {
				if state[w] == 0 {
					state[w] = 1
					frames = append(frames, frame{v: w})
				}
				continue
			}
			state[f.v] = 2
			order = append(order, f.v)
			frames = frames[:len(frames)-1]
		}
	}
	// Reverse the post-order for a topological order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return a.levelize(order)
}

// levelize partitions a topological order into antichain levels by
// longest-path layering: level(v) = 1 + max(level(pred)) over forward
// predecessors, 0 for roots. Edges that run against the given order (residual
// cycle back edges) are ignored — they cannot be satisfied by any layering
// and are handled by the residual drain, exactly as in the sequential wave.
// The returned order is level-major (levels ascending, DFS order within a
// level, so the whole layout is deterministic) and is itself a topological
// order: a forward edge always lands in a strictly later level.
func (a *Analysis) levelize(topo []int) (order []int, starts []int) {
	pos := make([]int32, len(a.nodes))
	for i, v := range topo {
		pos[v] = int32(i)
	}
	level := make([]int32, len(a.nodes))
	maxLevel := int32(0)
	for _, v := range topo {
		lv := level[v]
		if lv > maxLevel {
			maxLevel = lv
		}
		bump := func(raw int) {
			w := raw
			if int(a.rep[w]) != w {
				w = a.find(w)
			}
			if w != v && pos[w] > pos[v] && level[w] < lv+1 {
				level[w] = lv + 1
			}
		}
		for _, t := range a.copyTo[v] {
			bump(int(t))
		}
		for _, e := range a.gepTo[v] {
			bump(int(e.to))
		}
	}
	// Counting sort by level, preserving the topological order within each
	// level.
	counts := make([]int, maxLevel+2)
	for _, v := range topo {
		counts[level[v]+1]++
	}
	starts = make([]int, maxLevel+2)
	for i := int32(1); i < maxLevel+2; i++ {
		counts[i] += counts[i-1]
		starts[i] = counts[i]
	}
	next := make([]int, maxLevel+1)
	copy(next, starts[:maxLevel+1])
	order = make([]int, len(topo))
	for _, v := range topo {
		order[next[level[v]]] = v
		next[level[v]]++
	}
	return order, starts
}
