package pointsto

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// gepEdge is a weighted Field-Of edge: pts(to) ⊇ {o+off | o ∈ pts(from)}.
type gepEdge struct {
	to       int32
	off      int32
	site     int32 // FieldAddr instruction ID
	collapse bool  // baseline PWC mitigation: objects flowing through lose field sensitivity
	pwcSeen  bool  // this edge has been recorded as part of a PWC
}

// depEdge is a Load or Store constraint endpoint (resolution adds derived
// Copy edges per Table 1).
type depEdge struct {
	other int32 // Load: destination register node; Store: source value node
	site  int32 // the load/store instruction ID
}

// arithEdge is a PtrAdd flow: the destination receives the base's points-to
// set subject to the arbitrary-arithmetic policy (field collapse at baseline,
// struct filtering under the PA invariant).
type arithEdge struct {
	to   int32
	site int32 // PtrAdd instruction ID
}

// icallSite is an indirect callsite awaiting target resolution.
type icallSite struct {
	site      int32 // ICall instruction ID
	fptr      int32 // function-pointer node
	args      []int32
	dest      int32
	connected map[int]bool // object index -> already wired
}

// edgeKey identifies a copy edge for dedupe and origin tracking.
type edgeKey struct{ from, to int32 }

// Origin records why a derived copy edge exists: the load/store constraint
// whose resolution created it (site) and the pointer node whose points-to set
// triggered it.
type Origin struct {
	Site    int // load/store instruction ID (0 for primitive edges)
	Trigger int // pointer node whose pts supplied the object
}

// provKey and provEntry implement derivation provenance for introspection:
// how did object obj get into pts(node)?
type provKey struct {
	node int32
	obj  int32 // object-slot node id
}

type provEntry struct {
	site    int32 // edge/constraint site responsible
	srcNode int32 // node the object flowed from (-1 for Addr-Of)
}

// Stats summarizes one solver run.
type Stats struct {
	Iterations     int // worklist pops
	CopyEdges      int // total copy edges (primitive + derived)
	DerivedEdges   int // derived copy edges added during resolution
	FieldCollapses int // objects turned field-insensitive
	SCCCollapses   int // cycle nodes merged
	SCCPasses      int // cycle-detection sweeps over the constraint graph
	Waves          int // wave-propagation rounds (wave strategy only)
	PWCs           int // positive-weight cycles encountered
	MonitorSites   int // runtime monitors implied by assumed invariants
	DeltaFlushes   int // full-set flushes seeded by new edges / SCC merges / Restore
	BitsPropagated int // pointee bits consumed by processNode visits
	BitsAvoided    int // pointee bits a full re-propagation would have re-consumed
	PrepMerged     int // nodes merged offline by HVN variable substitution
	PrepDeferred   int // offline merges skipped to respect the PWC policy
	HCDCollapses   int // nodes merged online by hybrid cycle detection
	LCDCollapses   int // nodes merged by the lazy-cycle-detection fallback
}

// GrowthEvent describes one points-to set update (§4.1 introspection).
type GrowthEvent struct {
	Node    int    // constraint node that grew
	Desc    string // human-readable node identity
	Added   int    // objects added by this update
	Total   int    // cardinality after the update
	Types   int    // distinct object types now in the set
	Site    int    // constraint instruction responsible (0 = Addr-Of init)
	Derived bool   // update came from a derived constraint
	// Backtrack lazily walks derivation provenance from this update toward
	// primitive constraints, returning up to maxLevels constraint sites
	// (most recent derivation first).
	Backtrack func(maxLevels int) []int
}

// Tracer receives introspection events (§4.1) during solving. All methods
// are called synchronously from the solver.
type Tracer interface {
	// Growth fires when pts(node) gains objects.
	Growth(ev GrowthEvent)
	// Cycle fires when a cycle is detected; pwc marks positive-weight cycles.
	Cycle(size int, pwc bool)
}

// Analysis is one pointer-analysis run over a module: constraint graph,
// solver state, and results.
type Analysis struct {
	mod     *ir.Module
	layouts *ir.Layouts
	cfg     invariant.Config
	tracer  Tracer

	nodes   []node
	rep     []int32
	pts     []*bitset.Set
	delta   []*bitset.Set // per-node pointees added since the node's last processing
	objects []*Object

	copyTo    [][]int32
	gepTo     [][]*gepEdge
	loadTo    [][]depEdge
	storeFrom [][]depEdge
	arithTo   [][]arithEdge
	icallsAt  [][]*icallSite

	copyEdges   map[edgeKey][]Origin // existing copy edges with ≤5 origins
	regNodes    map[regKey]int
	retNodes    map[string]int
	objBySite   map[int]*Object
	objByGlobal map[string]*Object
	objByFunc   map[string]*Object
	icallSites  []*icallSite

	worklist []int32
	inWL     []bool

	// PA policy state: PtrAdd site -> filtered object indexes.
	paFiltered map[int]map[int]bool
	// Ctx policy state, computed by the ctx pre-pass.
	ctxPlan   *ctxPlan
	ctxSkip   map[int]bool // instruction IDs whose generic constraint is skipped
	provs     map[provKey][]provEntry
	traceProv bool

	// Invariant records are kept per kind so they can be rebuilt after an
	// incremental Restore: Ctx records are fixed at build time, PWC records
	// accumulate during solving, and PA records derive from the live
	// paFiltered state.
	ctxRecords []invariant.Record
	pwcList    []invariant.Record
	pwcRecords map[string]bool // dedupe of recorded PWC cycles
	paDisabled map[int]bool    // PtrAdd sites whose PA assumption was restored
	pwcDone    map[int]bool    // PWC field sites already restored to baseline
	naive      bool            // skip copy-cycle collapse (ablation)
	wave       bool            // use wave propagation instead of the plain worklist
	noDelta    bool            // disable difference propagation (differential-oracle ablation)
	deltaMode  uint8           // deltaAuto (resolved at first solve) / deltaOn / deltaOff
	parallel   int             // >1: parallel wave strategy with this many gather workers
	intern     bool            // hash-cons points-to sets in a per-analysis pool
	pool       *bitset.Pool    // lazily created at first resolve when intern is set

	// Offline preprocessing (prep.go / hcd.go): HVN variable substitution and
	// hybrid cycle detection run once, lazily, at the first resolve — after
	// every Set* option but before any propagation. addrFacts records the
	// primitive Addr-Of constraints per node (build-time pts is already
	// polluted by eager copy propagation, so HVN hashing needs the raw facts).
	prep       bool
	prepDone   bool
	addrFacts  map[int32][]int32
	hcdEntries []hcdEntry
	hcdAt      [][]int32        // rep node -> indexes into hcdEntries
	lcdSeen    map[edgeKey]bool // copy edges already probed by the LCD fallback

	stats         Stats
	flushed       Stats               // stats already exported to metrics
	flushedIntern bitset.PoolStats    // intern-pool stats already exported
	metrics       *telemetry.Registry // nil disables telemetry

	// Tracing state. The parent span (if any) nests this analysis's phase
	// spans under the caller's stage span; build timing is captured in New
	// (before a registry can be attached) and exported retroactively on the
	// first flush. Hot-path instruments are resolved once in SetMetrics so
	// per-pop recording is an atomic add — or, with no registry, a nil check.
	parentSpan   *telemetry.Span
	buildStart   time.Time
	buildDur     time.Duration
	buildEmitted bool
	hDeltaSize   *telemetry.Histogram // pointsto/delta/size
	hWLDepth     *telemetry.Histogram // pointsto/worklist/depth
	hPtsSize     *telemetry.Histogram // pointsto/pts/size
	hLevelWidth  *telemetry.Histogram // pointsto/parallel/level-width
	hOccupancy   *telemetry.Histogram // pointsto/parallel/worker-occupancy
	cLivePops    *telemetry.Counter   // pointsto/progress/pops (live, for the watchdog)
	gLiveDepth   *telemetry.Gauge     // pointsto/progress/worklist-depth (live)

	// SolveCtx budget state (budget.go). budgeted gates every per-step check,
	// so an unbounded Solve pays one bool test per pop and nothing else.
	faults    *faultinject.Plan // armed fault-injection plan; nil = inert
	solveCtx  context.Context   // context of the active SolveCtx, nil otherwise
	stepsLeft int64             // >0 steps remaining, <0 exhausted, 0 unlimited
	ctxPolls  int64             // steps since SolveCtx began, for context polling
	budgeted  bool
	abortErr  error // pending *AbortError recorded by budgetStep
}

// SetNaive disables copy-cycle collapse (positive-weight-cycle handling is
// unaffected: PWCs must still be mitigated for termination at baseline).
// This exists for the cycle-elimination ablation benchmark; results are
// identical, only solve cost changes. Must be called before Solve.
func (a *Analysis) SetNaive(naive bool) { a.naive = naive }

// Delta-propagation modes. The default is auto: difference propagation pays
// per-node bookkeeping that only amortizes once sets are re-propagated many
// times, so on graphs below DeltaAutoThreshold nodes the solver silently
// falls back to full re-propagation (BENCH_solver.json showed delta at
// 0.87–0.99x full speed on every sub-millisecond app).
const (
	deltaAuto uint8 = iota
	deltaOn
	deltaOff
)

// DeltaAutoThreshold is the node count below which delta-propagation auto
// mode disables per-node delta bookkeeping.
const DeltaAutoThreshold = 2048

// SetDelta toggles difference (delta) propagation explicitly, overriding the
// default auto mode (see DeltaAutoThreshold). When on, every node tracks the
// pointees added since its last processing, and constraint processing
// consumes only that delta, with new edges, SCC merges, and incremental
// Restores seeding full-set flushes. When off, the solver re-consumes the
// full set on every visit — results are identical (asserted by the
// differential oracle tests); only solve cost changes. Must be called before
// Solve.
func (a *Analysis) SetDelta(on bool) {
	if on {
		a.deltaMode = deltaOn
	} else {
		a.deltaMode = deltaOff
	}
	a.noDelta = !on
}

// SetPrep toggles offline constraint preprocessing (HVN variable substitution
// plus hybrid cycle detection, see prep.go/hcd.go) for this analysis,
// overriding the package default. Results are identical either way — merges
// that could interact with the PWC policy are deferred — only solve cost
// changes. Must be called before Solve.
func (a *Analysis) SetPrep(on bool) { a.prep = on }

// defaultPrep is the package-wide preprocessing default, read by New. It
// exists because pipeline entry points (internal/core) construct analyses
// without exposing solver knobs; tests and benchmarks that need a no-prep
// baseline either call SetPrep on the analysis or flip the default around a
// region with SetDefaultPrep.
var defaultPrep atomic.Bool

func init() { defaultPrep.Store(true) }

// SetDefaultPrep sets the package-wide default for offline constraint
// preprocessing (on unless changed) and returns the previous value, so
// callers can restore it.
func SetDefaultPrep(on bool) bool { return defaultPrep.Swap(on) }

// SetParallel selects the parallel wave strategy for this analysis: each
// wave's topological order is split into independent levels and the nodes of
// a level are gathered across n worker goroutines, with all graph mutation
// applied deterministically at the level barrier (see parallel.go). n == 1
// runs the same phase-separated strategy inline on the solver goroutine;
// n <= 0 restores the sequential strategy selected by SetWave. The final fixpoint is
// byte-identical to the sequential solvers (asserted by the differential
// oracle and golden tests). An installed Tracer forces the sequential wave —
// tracer callbacks are synchronous and order-sensitive. Must be called before
// Solve.
func (a *Analysis) SetParallel(n int) { a.parallel = n }

// defaultParallel is the package-wide parallel-solve default, read by New:
// 0 (the default) solves sequentially, n >= 1 makes every new analysis use
// the parallel wave strategy with n gather workers. It exists for the same
// reason as defaultPrep: pipeline entry points construct analyses without
// exposing solver knobs, so CLI flags (kscope-bench -parallel-solve) and
// byte-identity tests flip the default around a region.
var defaultParallel atomic.Int64

// SetDefaultParallel sets the package-wide parallel-solve default and
// returns the previous value, so callers can restore it.
func SetDefaultParallel(n int) int { return int(defaultParallel.Swap(int64(n))) }

// SetIntern toggles hash-consed points-to-set sharing for this analysis: the
// solver interns fixpoint sets in a per-analysis bitset.Pool, so nodes with
// equal sets share one canonical storage block (and one memoized element
// slice), and re-consuming an unchanged set in full-propagation mode costs no
// allocation at all. Mutations through shared storage copy-on-write, so the
// fixpoint is byte-identical to the un-interned solvers (asserted by the
// differential strategy cube and the golden artifact tests); only allocation
// behavior changes. Interning happens only in the solver's serial phases —
// worklist pops, wave level barriers, and the post-fixpoint sweep — never in
// parallel gather workers, which keeps sharing deterministic under the
// parallel strategy. Must be called before Solve.
func (a *Analysis) SetIntern(on bool) { a.intern = on }

// defaultIntern is the package-wide interning default, read by New. It
// exists for the same reason as defaultPrep and defaultParallel: pipeline
// entry points construct analyses without exposing solver knobs, so CLI
// flags (-intern) and byte-identity tests flip the default around a region.
var defaultIntern atomic.Bool

// SetDefaultIntern sets the package-wide default for hash-consed set
// interning (off unless changed) and returns the previous value, so callers
// can restore it.
func SetDefaultIntern(on bool) bool { return defaultIntern.Swap(on) }

// New builds the constraint graph for m under cfg. Call Solve to run the
// analysis.
func New(m *ir.Module, cfg invariant.Config) *Analysis {
	a := &Analysis{
		mod:         m,
		layouts:     ir.NewLayouts(),
		cfg:         cfg,
		copyEdges:   map[edgeKey][]Origin{},
		regNodes:    map[regKey]int{},
		retNodes:    map[string]int{},
		objBySite:   map[int]*Object{},
		objByGlobal: map[string]*Object{},
		objByFunc:   map[string]*Object{},
		paFiltered:  map[int]map[int]bool{},
		ctxSkip:     map[int]bool{},
		pwcRecords:  map[string]bool{},
		paDisabled:  map[int]bool{},
		pwcDone:     map[int]bool{},
		addrFacts:   map[int32][]int32{},
	}
	a.prep = defaultPrep.Load()
	a.parallel = int(defaultParallel.Load())
	a.intern = defaultIntern.Load()
	a.buildStart = time.Now()
	a.build()
	a.buildDur = time.Since(a.buildStart)
	return a
}

// SetMetrics attaches a telemetry registry; the solver reports constraint
// counts, worklist pops, SCC/wave rounds, per-phase wall time, and
// distribution histograms (delta sizes, fixpoint points-to set sizes,
// worklist depth per round) into it at the end of every Solve (and of every
// incremental re-solve), plus live progress counters for the stall
// watchdog. A nil registry (the default) keeps the solver telemetry-free.
// Must be called before Solve.
func (a *Analysis) SetMetrics(r *telemetry.Registry) {
	a.metrics = r
	a.hDeltaSize = r.Histogram("pointsto/delta/size")
	a.hWLDepth = r.Histogram("pointsto/worklist/depth")
	a.hPtsSize = r.Histogram("pointsto/pts/size")
	a.hLevelWidth = r.Histogram("pointsto/parallel/level-width")
	a.hOccupancy = r.Histogram("pointsto/parallel/worker-occupancy")
	a.cLivePops = r.Counter("pointsto/progress/pops")
	a.gLiveDepth = r.Gauge("pointsto/progress/worklist-depth")
}

// SetSpan nests this analysis's phase spans (build, solve, per-round
// propagate/scc/wave) under parent in the attached registry's span log.
// Optional; without it the phase spans are roots. Must be called before
// Solve.
func (a *Analysis) SetSpan(parent *telemetry.Span) { a.parentSpan = parent }

// SetTracer installs an introspection tracer; it must be called before Solve.
func (a *Analysis) SetTracer(t Tracer) {
	a.tracer = t
	a.traceProv = t != nil
	if a.traceProv {
		a.provs = map[provKey][]provEntry{}
	}
}

// Config returns the invariant configuration of this run.
func (a *Analysis) Config() invariant.Config { return a.cfg }

// Module returns the analyzed module.
func (a *Analysis) Module() *ir.Module { return a.mod }

// push enqueues a node for re-processing.
func (a *Analysis) push(n int) {
	n = a.find(n)
	a.ensureWL()
	if a.inWL[n] {
		return
	}
	a.inWL[n] = true
	a.worklist = append(a.worklist, int32(n))
}

// ensureWL sizes the in-worklist flags to the node count.
func (a *Analysis) ensureWL() {
	for len(a.inWL) < len(a.nodes) {
		a.inWL = append(a.inWL, false)
	}
}

// ptsOf returns the points-to set of the representative of n, allocating it
// on first use.
func (a *Analysis) ptsOf(n int) *bitset.Set {
	n = a.find(n)
	if a.pts[n] == nil {
		a.pts[n] = bitset.New(0)
	}
	return a.pts[n]
}

// deltaOf returns the pending-delta set of representative node n, allocating
// it on first use. Callers must resolve n to its representative first.
func (a *Analysis) deltaOf(n int) *bitset.Set {
	if a.delta[n] == nil {
		a.delta[n] = bitset.New(0)
	}
	return a.delta[n]
}

// seedDelta schedules a full-set flush of n: the node's entire points-to set
// re-enters its delta, so the next processing pushes everything through the
// node's constraints. Required whenever a constraint gains visibility it did
// not have while past bits flowed — a new gep/load/store/arith/icall edge,
// an SCC merge (the survivor inherits edges that never saw its set), or an
// incremental Restore re-admitting constraints.
func (a *Analysis) seedDelta(n int) {
	n = a.find(n)
	if !a.noDelta && a.pts[n] != nil && !a.pts[n].Empty() {
		a.deltaOf(n).UnionWith(a.pts[n])
		a.stats.DeltaFlushes++
	}
	a.push(n)
}

// typeCount returns the number of distinct object types currently in
// pts(n). Introspection-only (O(set) per call).
func (a *Analysis) typeCount(n int) int {
	if a.pts[n] == nil {
		return 0
	}
	seen := map[string]bool{}
	a.pts[n].ForEach(func(o int) bool {
		obj := a.objOfNode(o)
		if obj == nil {
			return true
		}
		name := "<unknown>"
		if obj.Type != nil {
			name = ir.BaseName(obj.Type)
		} else if obj.Kind == ObjFunc {
			name = "<function>"
		}
		seen[name] = true
		return true
	})
	return len(seen)
}

// backtrackFn builds the lazy provenance walker for a growth event.
func (a *Analysis) backtrackFn(n, o int) func(int) []int {
	return func(maxLevels int) []int {
		var sites []int
		cur := int32(a.find(n))
		target := int32(o)
		for level := 0; level < maxLevels; level++ {
			entries := a.provs[provKey{cur, target}]
			if len(entries) == 0 {
				break
			}
			e := entries[len(entries)-1]
			sites = append(sites, int(e.site))
			if e.srcNode < 0 {
				break
			}
			cur = int32(a.find(int(e.srcNode)))
		}
		return sites
	}
}

// emitGrowth dispatches a growth event to the tracer.
func (a *Analysis) emitGrowth(n, added, site, obj int, derived bool) {
	a.tracer.Growth(GrowthEvent{
		Node:      n,
		Desc:      a.describeNode(n),
		Added:     added,
		Total:     a.pts[n].Len(),
		Types:     a.typeCount(n),
		Site:      site,
		Derived:   derived,
		Backtrack: a.backtrackFn(n, obj),
	})
}

// addToPts inserts object-slot node o into pts(n), recording provenance and
// growth events, and enqueues n on change. New pointees also enter the
// node's delta so the next processing propagates exactly them.
func (a *Analysis) addToPts(n, o, site, srcNode int, derived bool) bool {
	n = a.find(n)
	if !a.ptsOf(n).Add(o) {
		return false
	}
	if !a.noDelta {
		a.deltaOf(n).Add(o)
	}
	if a.traceProv {
		k := provKey{int32(n), int32(o)}
		if es := a.provs[k]; len(es) < 5 {
			a.provs[k] = append(es, provEntry{site: int32(site), srcNode: int32(srcNode)})
		}
	}
	if a.tracer != nil {
		a.emitGrowth(n, 1, site, o, derived)
	}
	a.push(n)
	return true
}

// unionPts merges pts(src) into pts(dst) (used by copy propagation when an
// edge is first created and must see the source's full set).
func (a *Analysis) unionPts(dst, src, site int, derived bool) bool {
	src = a.find(src)
	return a.unionSetInto(dst, a.pts[src], src, site, derived)
}

// unionSetInto merges an explicit pointee set into pts(dst), recording the
// newly-added bits in dst's delta (one pass via bitset.UnionDelta), plus
// provenance per added object when tracing. srcNode is the node the set
// flowed from (for self-copy suppression and provenance). This is the copy
// propagation primitive: full-set unions pass pts(src); difference
// propagation passes only src's consumed delta.
func (a *Analysis) unionSetInto(dst int, set *bitset.Set, srcNode, site int, derived bool) bool {
	dst = a.find(dst)
	if dst == srcNode || set == nil || set.Empty() {
		return false
	}
	d := a.ptsOf(dst)
	if a.traceProv {
		added, last := 0, -1
		set.ForEach(func(o int) bool {
			if d.Add(o) {
				if !a.noDelta {
					a.deltaOf(dst).Add(o)
				}
				added++
				last = o
				k := provKey{int32(dst), int32(o)}
				if es := a.provs[k]; len(es) < 5 {
					a.provs[k] = append(es, provEntry{site: int32(site), srcNode: int32(srcNode)})
				}
			}
			return true
		})
		if added == 0 {
			return false
		}
		if a.tracer != nil {
			a.emitGrowth(dst, added, site, last, derived)
		}
		a.push(dst)
		return true
	}
	var into *bitset.Set
	if !a.noDelta {
		into = a.deltaOf(dst)
	}
	added := d.UnionDelta(set, into)
	if added == 0 {
		return false
	}
	if a.tracer != nil {
		a.emitGrowth(dst, added, site, -1, derived)
	}
	a.push(dst)
	return true
}

// addCopy inserts a copy edge from→to. Derived edges record their origin
// (≤5 retained, most recent last). The source's current points-to set is
// propagated immediately.
func (a *Analysis) addCopy(from, to, site, trigger int, derived bool) {
	from, to = a.find(from), a.find(to)
	if from == to {
		return
	}
	k := edgeKey{int32(from), int32(to)}
	if origins, exists := a.copyEdges[k]; exists {
		if derived && len(origins) < 5 {
			a.copyEdges[k] = append(origins, Origin{Site: site, Trigger: trigger})
		}
		return
	}
	a.copyEdges[k] = []Origin{{Site: site, Trigger: trigger}}
	a.copyTo[from] = append(a.copyTo[from], int32(to))
	a.stats.CopyEdges++
	if derived {
		a.stats.DerivedEdges++
	}
	a.unionPts(to, from, site, derived)
}

// addGep inserts a Field-Of edge. The new edge has seen none of pts(from),
// so the node's full set is flushed back into its delta.
func (a *Analysis) addGep(from, to, off, site int) {
	from = a.find(from)
	a.gepTo[from] = append(a.gepTo[from], &gepEdge{to: int32(to), off: int32(off), site: int32(site)})
	a.seedDelta(from)
}

// addLoad registers the Load constraint dest = *addr, flushing addr's set.
func (a *Analysis) addLoad(addr, dest, site int) {
	addr = a.find(addr)
	a.loadTo[addr] = append(a.loadTo[addr], depEdge{other: int32(dest), site: int32(site)})
	a.seedDelta(addr)
}

// addStore registers the Store constraint *addr = src, flushing addr's set.
func (a *Analysis) addStore(addr, src, site int) {
	addr = a.find(addr)
	a.storeFrom[addr] = append(a.storeFrom[addr], depEdge{other: int32(src), site: int32(site)})
	a.seedDelta(addr)
}

// addArith registers the PtrAdd flow dest = base + unknown, flushing base's
// set.
func (a *Analysis) addArith(base, dest, site int) {
	base = a.find(base)
	a.arithTo[base] = append(a.arithTo[base], arithEdge{to: int32(dest), site: int32(site)})
	a.seedDelta(base)
}

// union merges node y into node x for online cycle collapse, counting the
// merge as an SCC collapse. Offline preprocessing and the HCD/LCD paths call
// mergeNodes directly so each mechanism's merges are attributed to its own
// stat.
func (a *Analysis) union(x, y int) {
	if a.mergeNodes(x, y) {
		a.stats.SCCCollapses++
	}
}

// mergeNodes merges node y into node x (resolving both to reps first),
// combining points-to sets and adjacency, and reschedules the survivor. It
// reports whether a merge actually happened. The survivor's delta is
// re-seeded with the merged full set: x's old edges never saw pts(y), y's
// old edges never saw pts(x), and after the merge both edge lists face the
// combined set, so per-edge bookkeeping would be needed to flush anything
// less. Merges are rare relative to propagation, so the full flush is the
// right trade.
func (a *Analysis) mergeNodes(x, y int) bool {
	x, y = a.find(x), a.find(y)
	if x == y {
		return false
	}
	a.rep[y] = int32(x)
	if a.pts[y] != nil {
		a.ptsOf(x).UnionWith(a.pts[y])
		a.pts[y] = nil
	}
	a.delta[y] = nil
	a.copyTo[x] = append(a.copyTo[x], a.copyTo[y]...)
	a.copyTo[y] = nil
	a.gepTo[x] = append(a.gepTo[x], a.gepTo[y]...)
	a.gepTo[y] = nil
	a.loadTo[x] = append(a.loadTo[x], a.loadTo[y]...)
	a.loadTo[y] = nil
	a.storeFrom[x] = append(a.storeFrom[x], a.storeFrom[y]...)
	a.storeFrom[y] = nil
	a.arithTo[x] = append(a.arithTo[x], a.arithTo[y]...)
	a.arithTo[y] = nil
	a.icallsAt[x] = append(a.icallsAt[x], a.icallsAt[y]...)
	a.icallsAt[y] = nil
	if a.hcdAt != nil {
		a.hcdAt[x] = append(a.hcdAt[x], a.hcdAt[y]...)
		a.hcdAt[y] = nil
	}
	a.seedDelta(x)
	return true
}
