package pointsto

import (
	"encoding/binary"
	"sort"
	"time"
)

// Offline constraint preprocessing (Hardekopf & Lin's HVN family): before any
// propagation, hash-value numbering over the copy/Addr-Of subgraph assigns
// every node a pointer-equivalence class, and nodes proven to compute the
// same points-to set are unioned up front, so the online solver never
// propagates through them at all.
//
// A node is *direct* when its points-to set is fully determined by its
// Addr-Of constraints and its incoming copy edges; everything else —
// object-slot nodes, and any node that can gain pointees through loads,
// field/arith derivations, indirect-call wiring, or Restore re-admissions —
// is *indirect* and gets a fresh, unmergeable value number. Two equalities
// drive the merging:
//
//  1. every member of a copy-only cycle has the same set (the classic
//     offline cycle collapse), and
//  2. two direct nodes whose Addr-Of facts and predecessor value numbers
//     coincide have the same set (value numbering proper).
//
// PWC-policy interaction: merging the endpoints of a Field-Of edge group can
// create or destroy positive-weight cycles, which would change the PWC
// invariant records the optimistic analysis emits. So, exactly like the
// optimistic analysis defers PWC collapse, prep defers any merge that would
// cross a Field-Of edge group: copy cycles containing an internal positive
// Field-Of edge are left to the online PWC machinery, and value-number
// merges never include a node with an outgoing Field-Of edge. Deferred
// merges are counted in Stats.PrepDeferred; the differential oracle and the
// kscope-bench golden test assert byte-identical invariant records and
// monitor sites with prep on and off.

// runPrep executes the offline stage: HVN substitution, then the offline
// half of hybrid cycle detection (hcd.go). Called once, lazily, from the
// first resolve — after every Set* option, before any propagation.
func (a *Analysis) runPrep() {
	start := time.Now()
	a.offlineSubstitute()
	a.offlineHCD()
	a.lcdSeen = map[edgeKey]bool{}
	if a.metrics != nil || a.parentSpan != nil {
		a.metrics.RecordSpan("pointsto/prep", a.parentSpan, start, time.Since(start))
	}
}

// offlineSubstitute performs HVN-style offline variable substitution.
func (a *Analysis) offlineSubstitute() {
	n := len(a.nodes)
	indirect := make([]bool, n)
	hasGepOut := make([]bool, n)
	a.markIndirect(indirect, hasGepOut)

	comp, order := a.copySCCs()
	members := make([][]int32, len(order))
	for v := 0; v < n; v++ {
		if c := comp[v]; c >= 0 {
			members[c] = append(members[c], int32(v))
		}
	}
	preds := a.copyPreds(comp)

	// Value numbers per component. Components arrive predecessors-first, so
	// every external predecessor's number is final when a component is
	// hashed. classRep/classGep track, per value number, the surviving node
	// of the first component that produced it and whether any node already
	// in the class has an outgoing Field-Of edge.
	vn := make([]int32, len(order))
	nextVN := int32(0)
	vnByKey := map[string]int32{}
	classRep := map[int32]int32{}
	classGep := map[int32]bool{}

	for _, c := range order {
		ms := members[c]
		anyIndirect, anyGepOut, internalPosGep := false, false, false
		for _, m := range ms {
			if indirect[m] {
				anyIndirect = true
			}
			if hasGepOut[m] {
				anyGepOut = true
			}
			for _, e := range a.gepTo[m] {
				if e.off > 0 && comp[a.find(int(e.to))] == c {
					internalPosGep = true
				}
			}
		}

		// Equality 1: collapse the copy cycle — unless it contains an
		// internal positive Field-Of edge, which makes it a PWC the online
		// policy must see intact.
		if len(ms) > 1 {
			if internalPosGep {
				a.stats.PrepDeferred += len(ms) - 1
			} else {
				if a.tracer != nil {
					a.tracer.Cycle(len(ms), false)
				}
				for _, m := range ms[1:] {
					if a.mergeNodes(int(ms[0]), int(m)) {
						a.stats.PrepMerged++
					}
				}
			}
		}

		// Assign the component's value number.
		if anyIndirect || internalPosGep {
			vn[c] = nextVN
			nextVN++
			continue
		}
		key := a.hvnKey(ms, preds[c], comp, vn, c)
		num, seen := vnByKey[key]
		if !seen {
			vn[c] = nextVN
			vnByKey[key] = nextVN
			classRep[nextVN] = int32(a.find(int(ms[0])))
			classGep[nextVN] = anyGepOut
			nextVN++
			continue
		}
		vn[c] = num
		// Equality 2: this component computes the same set as the class
		// representative — merge, unless either side carries a Field-Of
		// edge group (deferred, like PWC collapse).
		if anyGepOut || classGep[num] {
			classGep[num] = classGep[num] || anyGepOut
			a.stats.PrepDeferred += len(ms)
			continue
		}
		rep := int(classRep[num])
		for _, m := range ms {
			if a.mergeNodes(rep, int(m)) {
				a.stats.PrepMerged++
			}
		}
		classRep[num] = int32(a.find(rep))
	}
}

// markIndirect flags every node whose points-to set can grow through
// anything other than Addr-Of facts and copy edges, plus (separately) every
// node with an outgoing Field-Of edge.
func (a *Analysis) markIndirect(indirect, hasGepOut []bool) {
	for i := range a.nodes {
		if a.nodes[i].kind == nodeObj {
			indirect[i] = true
		}
	}
	for v := range a.nodes {
		for _, e := range a.loadTo[v] {
			indirect[a.find(int(e.other))] = true
		}
		for _, e := range a.gepTo[v] {
			indirect[a.find(int(e.to))] = true
			hasGepOut[a.find(v)] = true
		}
		for _, e := range a.arithTo[v] {
			indirect[a.find(int(e.to))] = true
		}
		for _, s := range a.icallsAt[v] {
			// Target wiring adds copies into formals/dest only as functions
			// are discovered; treat every potential endpoint as indirect.
			for _, arg := range s.args {
				indirect[a.find(int(arg))] = true
			}
			if s.dest >= 0 {
				indirect[a.find(int(s.dest))] = true
			}
		}
	}
	// Formals and returns of address-taken functions gain copy edges when
	// indirect callsites resolve; returns of Ctx-rewritten functions gain
	// their generic constraint back on Restore.
	for _, f := range a.mod.Funcs {
		if !f.AddressTaken {
			continue
		}
		for _, p := range f.Params {
			if id, ok := a.regNodes[regKey{f.Name, p}]; ok {
				indirect[a.find(id)] = true
			}
		}
		if id, ok := a.retNodes[f.Name]; ok {
			indirect[a.find(id)] = true
		}
	}
	for _, cr := range a.ctxPlan.rets {
		if a.ctxSkip[cr.ret.ID] {
			if id, ok := a.retNodes[cr.fn]; ok {
				indirect[a.find(id)] = true
			}
		}
	}
	// Stores rewritten by Ctx are likewise re-admitted on Restore; their
	// address registers already carry load/store edges (kept indirect via
	// seedDelta flushes), but the *source* register feeds a future store, so
	// nothing new: store sources only ever push outward. No extra marking
	// needed beyond the above.
}

// copySCCs computes SCCs of the copy-only offline subgraph over current
// representatives. It returns comp (node -> component id, -1 for non-reps)
// and the component ids in topological (predecessors-first) order.
func (a *Analysis) copySCCs() (comp []int32, order []int32) {
	n := len(a.nodes)
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	next := int32(0)
	ncomp := int32(0)

	type frame struct {
		v int
		i int
	}
	for root := 0; root < n; root++ {
		if a.find(root) != root || index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(a.copyTo[f.v]) {
				w := a.find(int(a.copyTo[f.v][f.i]))
				f.i++
				if w == f.v {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, int32(w))
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				for {
					w := int(stack[len(stack)-1])
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == f.v {
						break
					}
				}
				order = append(order, ncomp)
				ncomp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	// Tarjan emits components in reverse topological order (successors
	// first); reverse for predecessors-first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return comp, order
}

// copyPreds builds, per component, the list of predecessor component ids
// over copy edges (duplicates allowed; hvnKey dedupes).
func (a *Analysis) copyPreds(comp []int32) [][]int32 {
	max := int32(0)
	for _, c := range comp {
		if c+1 > max {
			max = c + 1
		}
	}
	preds := make([][]int32, max)
	for v := range a.nodes {
		cv := comp[v]
		if cv < 0 {
			continue
		}
		for _, t := range a.copyTo[v] {
			ct := comp[a.find(int(t))]
			if ct >= 0 && ct != cv {
				preds[ct] = append(preds[ct], cv)
			}
		}
	}
	return preds
}

// hvnKey encodes a direct component's exact hash-value-numbering identity:
// its sorted Addr-Of object nodes plus its sorted external predecessor value
// numbers. Exact keys (no lossy hashing) mean equal keys imply equal sets.
func (a *Analysis) hvnKey(ms []int32, predComps []int32, comp []int32, vn []int32, c int32) string {
	var facts []int32
	for _, m := range ms {
		facts = append(facts, a.addrFacts[m]...)
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i] < facts[j] })
	var pvns []int32
	for _, pc := range predComps {
		if pc != c {
			pvns = append(pvns, vn[pc])
		}
	}
	sort.Slice(pvns, func(i, j int) bool { return pvns[i] < pvns[j] })
	buf := make([]byte, 0, 4*(len(facts)+len(pvns))+8)
	last := int32(-1)
	for _, f := range facts {
		if f == last {
			continue
		}
		last = f
		buf = binary.AppendVarint(buf, int64(f))
	}
	buf = binary.AppendVarint(buf, -2) // section separator
	last = -1
	for _, p := range pvns {
		if p == last {
			continue
		}
		last = p
		buf = binary.AppendVarint(buf, int64(p))
	}
	return string(buf)
}
