package pointsto

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestInternFixpointSharing solves a scaled module in full-propagation mode
// with interning on and asserts the machinery actually engaged: the pool saw
// hits (equal set contents re-used canonical storage), the fixpoint holds
// distinct nodes sharing one storage block, and copy-on-write promotions
// fired without ever leaking a write (byte-identity is the differential
// oracle's job; this test pins the sharing itself).
func TestInternFixpointSharing(t *testing.T) {
	m := workload.ScaledApps()[0].MustModule() // randprog-1k
	a := New(m, invariant.All())
	a.SetDelta(false)
	a.SetPrep(false)
	a.SetIntern(true)
	a.Solve()

	if a.pool == nil {
		t.Fatal("SetIntern(true) did not create a pool")
	}
	st := a.pool.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("pool never engaged: %+v", st)
	}
	if st.BytesShared == 0 {
		t.Fatalf("no shared bytes estimated: %+v", st)
	}
	interned, sharedPair := 0, false
	for i := range a.pts {
		s := a.pts[i]
		if s == nil || !s.Interned() {
			continue
		}
		interned++
		for j := i + 1; j < len(a.pts) && !sharedPair; j++ {
			if a.pts[j] != nil && s.SharesStorageWith(a.pts[j]) {
				sharedPair = true
			}
		}
	}
	if interned == 0 {
		t.Fatal("no fixpoint set is interned after the post-solve sweep")
	}
	if !sharedPair {
		t.Fatal("no two nodes share canonical storage at the fixpoint")
	}
}

// TestInternOffByDefault pins the knob's default: without SetIntern (or the
// package default), solves must not pay for a pool.
func TestInternOffByDefault(t *testing.T) {
	m := workload.Apps()[0].MustModule()
	a := New(m, invariant.All())
	a.Solve()
	if a.pool != nil || a.intern {
		t.Fatal("interning should be off by default")
	}
	prev := SetDefaultIntern(true)
	defer SetDefaultIntern(prev)
	b := New(m, invariant.All())
	b.Solve()
	if b.pool == nil || !b.intern {
		t.Fatal("SetDefaultIntern(true) should make new analyses intern")
	}
}

// TestInternTelemetry asserts the intern instrumentation flows into an
// attached registry: hit/miss/promotion counters, the pool-size gauge, and
// the shared-bytes-saved estimate.
func TestInternTelemetry(t *testing.T) {
	m := workload.ScaledApps()[0].MustModule()
	reg := telemetry.New()
	a := New(m, invariant.All())
	a.SetDelta(false)
	a.SetPrep(false)
	a.SetIntern(true)
	a.SetMetrics(reg)
	r := a.Solve()

	snap := reg.Snapshot()
	for _, name := range []string{
		"pointsto/intern/hits",
		"pointsto/intern/misses",
		"pointsto/intern/bytes-shared",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0 (counters: %v)", name, snap.Counters)
		}
	}
	if _, ok := snap.Counters["pointsto/intern/promotions"]; !ok {
		t.Error("promotions counter not exported")
	}
	if snap.Gauges["pointsto/intern/pool-entries"] == 0 {
		t.Error("pool-entries gauge not exported")
	}
	if snap.Gauges["pointsto/intern/pool-bytes"] == 0 {
		t.Error("pool-bytes gauge not exported")
	}
	// A second flush (incremental re-solve) must export deltas, not repeat
	// cumulative totals: hits can only grow.
	before := snap.Counters["pointsto/intern/hits"]
	recs := r.Invariants()
	if len(recs) > 0 {
		if err := r.Restore(recs[0]); err != nil {
			t.Fatalf("restore: %v", err)
		}
		after := reg.Snapshot().Counters["pointsto/intern/hits"]
		if after < before {
			t.Errorf("hits counter shrank across flushes: %d -> %d", before, after)
		}
	}
}
