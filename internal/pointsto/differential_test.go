package pointsto

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/workload"
)

// Differential solver oracle: the delta-propagation solver must be
// bit-identical to a full-propagation solve under every combination of
// iteration strategy (worklist, wave), invariant configuration (fallback,
// optimistic), and incremental re-solve (Restore of each assumed invariant).
// "Bit-identical" means the complete observable Result — every top-level
// points-to set, every object-slot content, field-sensitivity flags, CFI
// target sets, and the recorded invariants with their PWC cycle groups —
// renders to the same fingerprint.

// fingerprint serializes everything observable about a Result into a stable
// string. Two results with equal fingerprints are indistinguishable to any
// client of the package.
func fingerprint(r *Result) string {
	var b strings.Builder
	for _, p := range r.TopLevelPointers() {
		fmt.Fprintf(&b, "ptr %s:%s =", p.Fn, p.Reg)
		var refs []ObjRef
		if p.Reg == "" {
			// Return nodes are not directly addressable via PointsTo; SizeOf
			// covers the cardinality and the object-slot section below covers
			// the contents reachable from them.
			fmt.Fprintf(&b, " #%d\n", r.SizeOf(p))
			continue
		}
		refs = r.PointsTo(p.Fn, p.Reg)
		for _, ref := range refs {
			fmt.Fprintf(&b, " %s", ref)
		}
		b.WriteByte('\n')
	}
	for _, o := range r.Objects() {
		fmt.Fprintf(&b, "obj %s size=%d insens=%v\n", o.Label(), o.Size, o.Insens)
		for s := 0; s < o.Size; s++ {
			refs := r.SlotPointsTo(o, s)
			if len(refs) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  slot %d =", s)
			for _, ref := range refs {
				fmt.Fprintf(&b, " %s", ref)
			}
			b.WriteByte('\n')
		}
	}
	for _, site := range r.ICallSites() {
		fmt.Fprintf(&b, "icall %d = %v\n", site, r.CallTargets(site))
	}
	for _, rec := range r.Invariants() {
		fmt.Fprintf(&b, "inv kind=%v site=%d filtered=%v pwc=%v callsites=%v\n",
			rec.Kind, rec.Site, rec.FilteredObjs, rec.CycleFieldSites, rec.Callsites)
	}
	fmt.Fprintf(&b, "monitors=%d\n", len(r.Monitors()))
	return b.String()
}

// solveVariant runs one configuration of the solver over a module and
// returns the Result.
func solveVariant(m *ir.Module, cfg invariant.Config, wave, delta, prep bool) *Result {
	return solveStrategy(m, cfg, wave, 0, delta, prep)
}

// solveStrategy is solveVariant with the full strategy axis: parallel > 0
// selects the parallel wave solver with that many workers (overriding wave).
func solveStrategy(m *ir.Module, cfg invariant.Config, wave bool, parallel int, delta, prep bool) *Result {
	return solveCube(m, cfg, wave, parallel, delta, prep, false)
}

// solveCube is the full configuration cube, including hash-consed set
// interning (SetIntern) as its last axis.
func solveCube(m *ir.Module, cfg invariant.Config, wave bool, parallel int, delta, prep, intern bool) *Result {
	a := New(m, cfg)
	a.SetWave(wave)
	a.SetParallel(parallel)
	a.SetDelta(delta)
	a.SetPrep(prep)
	a.SetIntern(intern)
	return a.Solve()
}

// strategyAxis enumerates every iteration strategy the differential cube
// covers: the plain worklist, sequential wave propagation, and the parallel
// wave solver at 1 (inline), 2, and 8 workers.
var strategyAxis = []struct {
	name     string
	wave     bool
	parallel int
}{
	{"worklist", false, 0},
	{"wave", true, 0},
	{"parallel1", false, 1},
	{"parallel2", false, 2},
	{"parallel8", false, 8},
}

// oracleModules collects every corpus the oracle runs on: the nine synthetic
// workload apps plus the in-package paper-figure fixtures.
func oracleModules(t *testing.T) map[string]*ir.Module {
	t.Helper()
	mods := map[string]*ir.Module{}
	for _, app := range workload.Apps() {
		mods["app/"+app.Name] = app.MustModule()
	}
	for name, src := range map[string]string{
		"figure2": figure2, "figure6": figure6, "figure7": figure7,
		"figure8": figure8, "ctxRet": ctxRetSrc, "icall": icallSrc,
		"heapWrapper": heapWrapperSrc, "cycle": cycleSrc,
	} {
		m, err := minic.Compile(name, src)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		mods["fig/"+name] = m
	}
	return mods
}

// TestDifferentialDeltaOracle asserts that no solver optimization changes
// anything observable: for every module and invariant configuration, every
// point of the {worklist, wave, parallel x {1,2,8 workers}} x {delta on/off}
// x {prep on/off} x {intern on/off} strategy cube fingerprints identically
// to the plain worklist+full+no-prep solve.
func TestDifferentialDeltaOracle(t *testing.T) {
	cfgs := map[string]invariant.Config{
		"fallback":   {},
		"optimistic": invariant.All(),
		"pa-only":    {PA: true},
		"pwc-only":   {PWC: true},
	}
	for name, m := range oracleModules(t) {
		for cfgName, cfg := range cfgs {
			t.Run(name+"/"+cfgName, func(t *testing.T) {
				ref := fingerprint(solveVariant(m, cfg, false, false, false))
				for _, strat := range strategyAxis {
					for _, delta := range []bool{false, true} {
						for _, prep := range []bool{false, true} {
							for _, intern := range []bool{false, true} {
								if strat.name == "worklist" && !delta && !prep && !intern {
									continue // the reference itself
								}
								label := fmt.Sprintf("%s delta=%v prep=%v intern=%v",
									strat.name, delta, prep, intern)
								got := fingerprint(solveCube(m, cfg, strat.wave, strat.parallel, delta, prep, intern))
								if got != ref {
									t.Errorf("%s diverges from worklist+full+no-prep reference:\n%s",
										label, diffLines(ref, got))
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestDifferentialIncrementalOracle asserts that an incremental re-solve
// (Restore of each assumed invariant, one at a time, in order) under delta
// propagation matches the same sequence under full propagation, after every
// individual step.
func TestDifferentialIncrementalOracle(t *testing.T) {
	for name, m := range oracleModules(t) {
		t.Run(name, func(t *testing.T) {
			for _, strat := range strategyAxis {
				for _, intern := range []bool{false, true} {
					// The reference runs full propagation without preprocessing;
					// the candidate enables both delta and prep — and, on the
					// second pass, set interning, so every Restore mutates shared
					// fixpoint sets through the copy-on-write path.
					full := solveStrategy(m, invariant.All(), strat.wave, strat.parallel, false, false)
					delta := solveCube(m, invariant.All(), strat.wave, strat.parallel, true, true, intern)
					if got, want := fingerprint(delta), fingerprint(full); got != want {
						t.Fatalf("%s intern=%v: pre-restore divergence:\n%s", strat.name, intern, diffLines(want, got))
					}
					// Restore records by stable identity, not index: both solves
					// assumed the same invariants (asserted above), so drive both
					// from the full solve's record list.
					recs := full.Invariants()
					for i, rec := range recs {
						if err := full.Restore(rec); err != nil {
							t.Fatalf("%s: full restore %d (%+v): %v", strat.name, i, rec, err)
						}
						if err := delta.Restore(rec); err != nil {
							t.Fatalf("%s intern=%v: delta restore %d (%+v): %v", strat.name, intern, i, rec, err)
						}
						if got, want := fingerprint(delta), fingerprint(full); got != want {
							t.Errorf("%s intern=%v: divergence after restore %d (kind=%v site=%d):\n%s",
								strat.name, intern, i, rec.Kind, rec.Site, diffLines(want, got))
						}
					}
				}
			}
		})
	}
}

// diffLines renders the first few differing lines between two fingerprints,
// keeping failure output readable on large modules.
func diffLines(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw == lg {
			continue
		}
		fmt.Fprintf(&b, "  line %d:\n    want: %s\n    got:  %s\n", i+1, lw, lg)
		if shown++; shown >= 8 {
			b.WriteString("  ...\n")
			break
		}
	}
	if b.Len() == 0 {
		return "  (fingerprints differ only in length)"
	}
	return b.String()
}
