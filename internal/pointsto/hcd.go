package pointsto

// Hybrid cycle detection (Hardekopf & Lin, "The Ant and the Grasshopper"):
// the expensive part of online cycle detection is *finding* cycles that pass
// through memory — a load t = *s and a store *s = t close a copy cycle only
// once the solver learns what s points to. HCD finds those cycles offline on
// a graph that adds a "ref" node *s per dereferenced pointer: a load t = *s
// contributes ref(s) -> t, a store *s = v contributes v -> ref(s), and copy
// edges carry over. Any offline SCC mixing a ref node with regular nodes
// means: as soon as an object o enters pts(s), the online graph closes a
// copy cycle through o and the SCC's regular members. The solver therefore
// collapses them in O(1) at pointee-insertion time (hcdFire), with no graph
// traversal.
//
// Cycles HCD's offline graph cannot predict (they need two levels of
// indirection to materialize) are caught by a lazy-cycle-detection fallback:
// when copy propagation hits an edge whose target already has every pointee
// (a propagation miss), a bounded DFS probes for a copy cycle through that
// edge, once per edge. Whatever both miss still falls to the per-round
// sccPass, which also remains the sole discoverer of positive-weight cycles,
// so PWC records are identical with preprocessing on or off.

// hcdEntry is one offline SCC that mixes ref and regular nodes: when any
// object lands in the points-to set of a node carrying this entry, the
// regular members and the object collapse into target.
type hcdEntry struct {
	target  int32   // surviving node (lowest regular member id)
	members []int32 // regular members, merged into target on first fire
	fired   bool
}

// offlineHCD builds the offline ref graph over current representatives and
// records, per dereferenced pointer, the SCC collapse its future pointees
// will trigger. Runs once, after offlineSubstitute.
func (a *Analysis) offlineHCD() {
	n := len(a.nodes)
	// Ids: [0,n) regular nodes, [n,2n) ref nodes (ref(v) = n+v), built only
	// for reps with load/store constraints.
	adj := make([][]int32, 2*n)
	for v := 0; v < n; v++ {
		if a.find(v) != v {
			continue
		}
		for _, t := range a.copyTo[v] {
			if w := a.find(int(t)); w != v {
				adj[v] = append(adj[v], int32(w))
			}
		}
		for _, e := range a.loadTo[v] {
			adj[n+v] = append(adj[n+v], int32(a.find(int(e.other))))
		}
		for _, e := range a.storeFrom[v] {
			adj[a.find(int(e.other))] = append(adj[a.find(int(e.other))], int32(n+v))
		}
	}
	sccs := sccOf(adj)
	a.hcdAt = make([][]int32, n)
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		var regs, refs []int32
		for _, id := range scc {
			if int(id) < n {
				regs = append(regs, id)
			} else {
				refs = append(refs, id-int32(n))
			}
		}
		if len(regs) == 0 || len(refs) == 0 {
			// Pure copy SCCs were already collapsed by HVN; pure ref SCCs
			// carry no merge by themselves.
			continue
		}
		target := regs[0]
		for _, r := range regs[1:] {
			if r < target {
				target = r
			}
		}
		idx := int32(len(a.hcdEntries))
		a.hcdEntries = append(a.hcdEntries, hcdEntry{target: target, members: regs})
		for _, r := range refs {
			a.hcdAt[r] = append(a.hcdAt[r], idx)
		}
	}
}

// hcdFire runs the recorded offline collapses for node v: every object slot
// in elems (v's pending pointees) closes the offline-predicted cycle, so the
// entry's regular members and the object's rep merge into the entry target.
// Merges reschedule the survivor with a full-set flush (mergeNodes), so no
// derived fact is lost even when v itself is merged away mid-processing.
func (a *Analysis) hcdFire(v int, elems []int) {
	for _, ei := range a.hcdAt[v] {
		e := &a.hcdEntries[ei]
		t := a.find(int(e.target))
		merged := 0
		if !e.fired {
			e.fired = true
			for _, m := range e.members {
				if a.mergeNodes(t, int(m)) {
					a.stats.HCDCollapses++
					merged++
				}
				t = a.find(t)
			}
		}
		for _, o := range elems {
			if a.nodes[o].kind != nodeObj {
				continue
			}
			if a.mergeNodes(t, a.find(o)) {
				a.stats.HCDCollapses++
				merged++
			}
			t = a.find(t)
		}
		if merged > 0 && a.tracer != nil {
			a.tracer.Cycle(merged+1, false)
		}
	}
}

// LCD fallback bounds: one probe per copy edge, each walking at most
// lcdBudget nodes of the condensed copy graph.
const lcdBudget = 256

// lcdProbe is the lazy-cycle-detection fallback: copy propagation from src
// across edge src->dst added nothing, which is how cycle members behave once
// their sets converge. A bounded DFS over copy edges looks for a path back
// from dst to src; on a hit the whole path is one copy cycle and collapses
// immediately instead of waiting for the next whole-graph sccPass. Each edge
// is probed at most once.
func (a *Analysis) lcdProbe(src, dst int) {
	if dst == src {
		return
	}
	k := edgeKey{int32(src), int32(dst)}
	if a.lcdSeen[k] {
		return
	}
	a.lcdSeen[k] = true
	// DFS from dst over representative copy edges, searching for src.
	prev := map[int]int{dst: -1}
	stack := []int{dst}
	budget := lcdBudget
	for len(stack) > 0 && budget > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		budget--
		for _, t := range a.copyTo[v] {
			w := a.find(int(t))
			if w == src {
				// Collapse the cycle src -> dst -> ... -> v -> src.
				merged := 0
				for u := v; u != -1; u = prev[u] {
					if a.mergeNodes(src, u) {
						a.stats.LCDCollapses++
						merged++
					}
					src = a.find(src)
				}
				if merged > 0 && a.tracer != nil {
					a.tracer.Cycle(merged+1, false)
				}
				return
			}
			if _, seen := prev[w]; !seen && w != v {
				prev[w] = v
				stack = append(stack, w)
			}
		}
	}
}

// sccOf computes SCCs of an explicit adjacency list (iterative Tarjan),
// returning only components of size >= 2.
func sccOf(adj [][]int32) [][]int32 {
	n := len(adj)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var sccs [][]int32
	next := int32(0)
	type frame struct {
		v int
		i int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(adj[f.v]) {
				w := int(adj[f.v][f.i])
				f.i++
				if w == f.v {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, int32(w))
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var scc []int32
				for {
					w := int(stack[len(stack)-1])
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, int32(w))
					if w == f.v {
						break
					}
				}
				if len(scc) > 1 {
					sccs = append(sccs, scc)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return sccs
}
