package pointsto

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/ir"
)

// build creates all abstract objects and primitive constraints for the
// module, applying the Ctx policy's constraint rewrites when enabled.
func (a *Analysis) build() {
	// Objects for globals and functions, in module order (the object index
	// space is therefore identical across configurations, which lets memory
	// views and the interpreter share object identities).
	for _, g := range a.mod.Globals {
		a.objByGlobal[g.Name] = a.newObject(ObjGlobal, g.Name, "", 0, g.Type)
	}
	for _, f := range a.mod.Funcs {
		a.objByFunc[f.Name] = a.newObject(ObjFunc, f.Name, "", 0, nil)
	}

	// Ctx pre-pass: find precision-critical arguments (§4.4). The plan is
	// always computed (it is reported by introspection) but constraints are
	// rewritten only under cfg.Ctx.
	a.ctxPlan = detectCtx(a.mod)
	if a.cfg.Ctx {
		for _, cs := range a.ctxPlan.stores {
			a.ctxSkip[cs.store.ID] = true
		}
		for _, cr := range a.ctxPlan.rets {
			a.ctxSkip[cr.ret.ID] = true
		}
	}

	for _, f := range a.mod.Funcs {
		fn := f.Name
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			switch in := in.(type) {
			case *ir.Alloca:
				o := a.newObject(ObjStack, in.Var, fn, in.ID, in.Ty)
				a.objBySite[in.ID] = o
				a.addAddrOf(a.regNode(fn, in.Dest), o.NodeBase, in.ID)
			case *ir.Malloc:
				o := a.newObject(ObjHeap, "heap", fn, in.ID, in.SizeOf)
				a.objBySite[in.ID] = o
				a.addAddrOf(a.regNode(fn, in.Dest), o.NodeBase, in.ID)
			case *ir.AddrGlobal:
				o := a.objByGlobal[in.Global]
				a.addAddrOf(a.regNode(fn, in.Dest), o.NodeBase, in.ID)
			case *ir.AddrFunc:
				o := a.objByFunc[in.Func]
				a.addAddrOf(a.regNode(fn, in.Dest), o.NodeBase, in.ID)
			case *ir.Copy:
				a.addCopy(a.regNode(fn, in.Src), a.regNode(fn, in.Dest), in.ID, -1, false)
			case *ir.Load:
				a.addLoad(a.regNode(fn, in.Addr), a.regNode(fn, in.Dest), in.ID)
			case *ir.Store:
				if !a.ctxSkip[in.ID] {
					a.addStore(a.regNode(fn, in.Addr), a.regNode(fn, in.Src), in.ID)
				}
			case *ir.FieldAddr:
				off := a.layouts.Of(in.Struct).FieldAnalysisOff[in.Field]
				a.addGep(a.regNode(fn, in.Base), a.regNode(fn, in.Dest), off, in.ID)
			case *ir.IndexAddr:
				// Array-index insensitive: the element shares the base's
				// analysis slot.
				a.addCopy(a.regNode(fn, in.Base), a.regNode(fn, in.Dest), in.ID, -1, false)
			case *ir.PtrAdd:
				a.addArith(a.regNode(fn, in.Base), a.regNode(fn, in.Dest), in.ID)
			case *ir.Call:
				a.wireDirectCall(fn, in)
			case *ir.ICall:
				a.wireICallSite(fn, in)
			case *ir.Ret:
				if in.Src != "" && !a.ctxSkip[in.ID] {
					a.addCopy(a.regNode(fn, in.Src), a.retNode(fn), in.ID, -1, false)
				}
			}
		})
	}

	if a.cfg.Ctx {
		a.wireCtxCallsites()
	}
}

// addAddrOf installs the primitive Addr-Of constraint {obj} ⊆ pts(n) and
// records the raw fact for offline HVN hashing: once copy edges propagate
// eagerly at build time, pts(n) no longer distinguishes a node's own Addr-Of
// constraints from inherited ones.
func (a *Analysis) addAddrOf(n, objNode, site int) {
	a.addrFacts[int32(n)] = append(a.addrFacts[int32(n)], int32(objNode))
	a.addToPts(n, objNode, site, -1, false)
}

// wireDirectCall connects actuals to formals and the return node to the
// destination for a direct call.
func (a *Analysis) wireDirectCall(caller string, c *ir.Call) {
	callee := a.mod.Func(c.Callee)
	for i, arg := range c.Args {
		if i >= len(callee.Params) {
			break
		}
		a.addCopy(a.regNode(caller, arg), a.regNode(callee.Name, callee.Params[i]), c.ID, -1, false)
	}
	if c.Dest != "" {
		a.addCopy(a.retNode(callee.Name), a.regNode(caller, c.Dest), c.ID, -1, false)
	}
}

// wireICallSite registers an indirect callsite on its function-pointer node;
// targets are connected during solving as they are discovered.
func (a *Analysis) wireICallSite(caller string, c *ir.ICall) {
	fptr := a.regNode(caller, c.FuncPtr)
	args := make([]int32, len(c.Args))
	for i, arg := range c.Args {
		args[i] = int32(a.regNode(caller, arg))
	}
	dest := int32(-1)
	if c.Dest != "" {
		dest = int32(a.regNode(caller, c.Dest))
	}
	site := &icallSite{
		site:      int32(c.ID),
		fptr:      int32(fptr),
		args:      args,
		dest:      dest,
		connected: map[int]bool{},
	}
	a.icallsAt[a.find(fptr)] = append(a.icallsAt[a.find(fptr)], site)
	a.icallSites = append(a.icallSites, site)
	a.seedDelta(fptr)
}

// wireCtxCallsites rewires precision-critical stores and returns
// context-sensitively: per callsite, a private dummy-node chain reproduces
// the callee's address derivation on the actual arguments, so callsites no
// longer pollute each other through the shared formals (§4.4).
func (a *Analysis) wireCtxCallsites() {
	for _, cs := range a.ctxPlan.stores {
		sites := a.ctxPlan.callsites[cs.fn]
		rec := invariant.Record{
			Kind:       invariant.Ctx,
			Site:       cs.store.ID,
			CtxParams:  []int{cs.baseParam, cs.valParam},
			CtxSamples: []invariant.CtxSample{cs.baseSample, cs.valSample},
			Desc:       fmt.Sprintf("precision-critical store in %s: *(arg%d chain) = arg%d", cs.fn, cs.baseParam, cs.valParam),
		}
		for _, c := range sites {
			if cs.baseParam >= len(c.call.Args) || cs.valParam >= len(c.call.Args) {
				continue
			}
			rec.Callsites = append(rec.Callsites, c.call.ID)
			base := a.applyChain(a.regNode(c.caller, c.call.Args[cs.baseParam]), cs.chain, c.call.ID)
			a.addStore(base, a.regNode(c.caller, c.call.Args[cs.valParam]), c.call.ID)
		}
		a.ctxRecords = append(a.ctxRecords, rec)
	}
	for _, cr := range a.ctxPlan.rets {
		sites := a.ctxPlan.callsites[cr.fn]
		rec := invariant.Record{
			Kind:       invariant.Ctx,
			Site:       cr.ret.ID,
			CtxParams:  []int{cr.param},
			CtxSamples: []invariant.CtxSample{cr.sample},
			Desc:       fmt.Sprintf("precision-critical return in %s: returns arg%d", cr.fn, cr.param),
		}
		for _, c := range sites {
			if cr.param >= len(c.call.Args) || c.call.Dest == "" {
				continue
			}
			rec.Callsites = append(rec.Callsites, c.call.ID)
			v := a.applyChain(a.regNode(c.caller, c.call.Args[cr.param]), cr.chain, c.call.ID)
			a.addCopy(v, a.regNode(c.caller, c.call.Dest), c.call.ID, -1, false)
		}
		a.ctxRecords = append(a.ctxRecords, rec)
	}
}

// applyChain replays an address-derivation chain on a starting node using
// fresh dummy nodes, returning the final node.
func (a *Analysis) applyChain(start int, chain []ctxStep, site int) int {
	n := start
	for _, st := range chain {
		d := a.newNode(node{kind: nodeDummy})
		switch st.kind {
		case stepField:
			a.addGep(n, d, int(st.off), site)
		case stepIndex:
			a.addCopy(n, d, site, -1, false)
		case stepLoad:
			a.addLoad(n, d, site)
		}
		n = d
	}
	return n
}
