package pointsto

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/ir"
)

// Incremental re-analysis (paper §8): instead of switching to a pre-generated
// fallback view when a likely invariant is violated, the points-to solution
// can be updated on the fly. Restore re-admits exactly the constraints the
// violated invariant had optimistically removed and re-runs the (monotone)
// solver from the current fixed point — far cheaper than a fresh solve, and
// the result abandons only the violated assumption.
//
// Soundness note for callers: after a Restore, the remaining invariant set
// (Invariants()) may carry updated PA filter sets, so runtime monitors must
// be rebuilt from the refreshed result before execution continues. The
// incremental execution controller in internal/core does this swap.

// Restore abandons one previously assumed likely invariant, re-admits its
// constraints, and incrementally re-solves. It returns an error if the
// record does not correspond to an assumption of this analysis.
func (r *Result) Restore(rec invariant.Record) error {
	a := r.a
	switch rec.Kind {
	case invariant.PA:
		if a.paFiltered[rec.Site] == nil || a.paDisabled[rec.Site] {
			return fmt.Errorf("pointsto: no active PA assumption at site %d", rec.Site)
		}
		a.paDisabled[rec.Site] = true
		// Reprocess every PtrAdd base feeding this site: the previously
		// filtered struct objects now flow through with baseline handling,
		// so the base's full set is flushed back into its delta.
		for n := range a.arithTo {
			for _, e := range a.arithTo[n] {
				if int(e.site) == rec.Site {
					a.seedDelta(n)
				}
			}
		}
	case invariant.PWC:
		if len(rec.CycleFieldSites) == 0 {
			return fmt.Errorf("pointsto: PWC record without field sites")
		}
		found := false
		sites := map[int]bool{}
		for _, s := range rec.CycleFieldSites {
			sites[s] = true
			if !a.pwcDone[s] {
				found = true
			}
			a.pwcDone[s] = true
		}
		if !found {
			return fmt.Errorf("pointsto: PWC at sites %v already restored", rec.CycleFieldSites)
		}
		// Apply the baseline mitigation to the cycle's Field-Of edges:
		// objects flowing through them lose field sensitivity, now and in
		// the future.
		for n := range a.gepTo {
			touched := false
			for _, e := range a.gepTo[n] {
				if sites[int(e.site)] {
					e.collapse = true
					touched = true
				}
			}
			if !touched {
				continue
			}
			if a.pts[a.find(n)] != nil {
				for _, o := range a.pts[a.find(n)].Elements() {
					if obj := a.objOfNode(o); obj != nil {
						a.makeFieldInsensitive(obj)
					}
				}
			}
			// The re-collapsed Field-Of edges must re-see the full set.
			a.seedDelta(n)
		}
	case invariant.Ctx:
		in := a.mod.InstrByID(rec.Site)
		f := a.mod.FuncOfInstr(rec.Site)
		if in == nil || f == nil || !a.ctxSkip[rec.Site] {
			return fmt.Errorf("pointsto: no Ctx assumption at site %d", rec.Site)
		}
		delete(a.ctxSkip, rec.Site)
		// Re-admit the generic (context-insensitive) constraint the
		// optimistic analysis had skipped. The per-callsite dummy wiring
		// stays: it is now a harmless refinement.
		switch in := in.(type) {
		case *ir.Store:
			a.addStore(a.regNode(f.Name, in.Addr), a.regNode(f.Name, in.Src), in.ID)
		case *ir.Ret:
			a.addCopy(a.regNode(f.Name, in.Src), a.retNode(f.Name), in.ID, -1, false)
		default:
			return fmt.Errorf("pointsto: Ctx site %d is not a store or return", rec.Site)
		}
		// Drop the record: the assumption is no longer held.
		kept := a.ctxRecords[:0]
		for _, cr := range a.ctxRecords {
			if cr.Site != rec.Site {
				kept = append(kept, cr)
			}
		}
		a.ctxRecords = kept
	default:
		return fmt.Errorf("pointsto: unknown invariant kind %v", rec.Kind)
	}
	// Restore re-solves outside any SolveCtx budget, so this cannot abort;
	// the error return is plumbed through for uniformity.
	//
	// The re-solve always runs sequentially, even when the analysis is
	// configured for the parallel wave strategy. Post-restore convergence is
	// path-dependent: re-admitted constraints trigger field-sensitivity
	// collapse cascades whose extent depends on visit order, so different
	// iteration strategies legitimately reach different (all sound) final
	// collapse sets — worklist and wave already differ here. Forcing the
	// sequential strategy keeps a parallel-configured analysis byte-identical
	// to its sequential counterpart across restores; the re-convergence is a
	// small residual solve where fan-out would not pay anyway.
	save := a.parallel
	a.parallel = 0
	err := a.resolve()
	a.parallel = save
	return err
}
