package pointsto

import (
	"repro/internal/invariant"
	"repro/internal/ir"
)

// Context-sensitivity pre-pass (§4.4): a lightweight intraprocedural data
// flow identifies precision-critical arguments — pointer parameters that
// either flow to the function's return value or are stored through an
// address derived from another pointer parameter. Functions whose address is
// taken are excluded: their callsites cannot be statically enumerated, so
// the generic constraints must stay (soundness).

type stepKind uint8

const (
	stepField stepKind = iota // &(p->k): weighted Field-Of
	stepIndex                 // &p[i]: index-insensitive copy
	stepLoad                  // *p
)

// ctxStep is one step of an address/value derivation chain from a parameter.
type ctxStep struct {
	kind stepKind
	off  int32 // analysis-slot field offset for stepField
}

// criticalStore marks "store through arg i's pointee, value = arg j".
type criticalStore struct {
	fn         string
	store      *ir.Store
	baseParam  int
	chain      []ctxStep // derivation from param baseParam to the store address
	valParam   int
	baseSample invariant.CtxSample
	valSample  invariant.CtxSample
}

// criticalRet marks "return value derived from arg i".
type criticalRet struct {
	fn     string
	ret    *ir.Ret
	param  int
	chain  []ctxStep
	sample invariant.CtxSample
}

// callsiteRef is a direct call with its caller.
type callsiteRef struct {
	caller string
	call   *ir.Call
}

// ctxPlan is the result of the pre-pass.
type ctxPlan struct {
	stores    []criticalStore
	rets      []criticalRet
	callsites map[string][]callsiteRef // callee -> direct callsites
}

// detectCtx runs the pre-pass over every function of m.
func detectCtx(m *ir.Module) *ctxPlan {
	plan := &ctxPlan{callsites: map[string][]callsiteRef{}}
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			if c, ok := in.(*ir.Call); ok {
				plan.callsites[c.Callee] = append(plan.callsites[c.Callee], callsiteRef{caller: f.Name, call: c})
			}
		})
	}
	for _, f := range m.Funcs {
		if f.AddressTaken {
			continue
		}
		if len(plan.callsites[f.Name]) < 2 {
			// Context insensitivity only loses precision with multiple
			// calling contexts.
			continue
		}
		detectCtxInFunc(f, plan)
	}
	// Keep only candidates whose callee constraints we can fully replace:
	// deterministic single-definition chains guaranteed by the front-end.
	return plan
}

// detectCtxInFunc scans one function for critical stores and returns.
//
// Parameters that are assigned (or address-taken) inside the function are
// backed by stack slots; the chain walk sees through the slot load and the
// derivation is still attributed to the parameter. That attribution is
// precisely the optimistic part of the Ctx invariant: the parameter may have
// been redirected through its slot by the time the critical store or return
// executes, which the runtime monitor checks by sampling the slot's current
// value (Deref samples).
func detectCtxInFunc(f *ir.Function, plan *ctxPlan) {
	defOf := map[string]ir.Instr{}
	defCount := map[string]int{}
	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		if d := in.Def(); d != "" {
			defOf[d] = in
			defCount[d]++
		}
	})
	paramIdx := map[string]int{}
	for i, p := range f.Params {
		paramIdx[p] = i
	}
	// Backing slots: an alloca whose slot receives a store of the raw
	// parameter register (the front-end prologue pattern).
	slotParam := map[string]int{} // alloca dest register -> param index
	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		st, ok := in.(*ir.Store)
		if !ok {
			return
		}
		i, isParam := paramIdx[st.Src]
		if !isParam {
			return
		}
		if _, isAlloca := defOf[st.Addr].(*ir.Alloca); isAlloca {
			slotParam[st.Addr] = i
		}
	})

	// derive walks the single-definition chain from reg back to a parameter,
	// returning the parameter index, the address-derivation chain, and the
	// monitor sample spec for observing the parameter's current value.
	var derive func(reg string, depth int) (int, []ctxStep, invariant.CtxSample, bool)
	derive = func(reg string, depth int) (int, []ctxStep, invariant.CtxSample, bool) {
		if i, ok := paramIdx[reg]; ok {
			return i, nil, invariant.CtxSample{Reg: reg}, true
		}
		if depth > 8 || defCount[reg] != 1 {
			return 0, nil, invariant.CtxSample{}, false
		}
		switch d := defOf[reg].(type) {
		case *ir.Copy:
			return derive(d.Src, depth+1)
		case *ir.FieldAddr:
			i, chain, smp, ok := derive(d.Base, depth+1)
			if !ok {
				return 0, nil, smp, false
			}
			off := fieldAnalysisOff(d)
			return i, append(chain, ctxStep{kind: stepField, off: int32(off)}), smp, true
		case *ir.IndexAddr:
			i, chain, smp, ok := derive(d.Base, depth+1)
			if !ok {
				return 0, nil, smp, false
			}
			return i, append(chain, ctxStep{kind: stepIndex}), smp, true
		case *ir.Load:
			// Loading the parameter's backing slot yields the (possibly
			// redirected) parameter value: optimistically the callsite
			// actual, monitored via a deref sample.
			if i, ok := slotParam[d.Addr]; ok {
				return i, nil, invariant.CtxSample{Reg: d.Addr, Deref: true}, true
			}
			i, chain, smp, ok := derive(d.Addr, depth+1)
			if !ok {
				return 0, nil, smp, false
			}
			return i, append(chain, ctxStep{kind: stepLoad}), smp, true
		}
		return 0, nil, invariant.CtxSample{}, false
	}

	pointerParam := func(i int) bool { return ir.IsPointerLike(f.ParamTypes[i]) }

	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		switch in := in.(type) {
		case *ir.Store:
			j, vchain, vsmp, vok := derive(in.Src, 0)
			if !vok || len(vchain) != 0 || !pointerParam(j) {
				return
			}
			i, achain, asmp, aok := derive(in.Addr, 0)
			if !aok || !pointerParam(i) || i == j {
				return
			}
			plan.stores = append(plan.stores, criticalStore{
				fn: f.Name, store: in, baseParam: i, chain: achain, valParam: j,
				baseSample: asmp, valSample: vsmp,
			})
		case *ir.Ret:
			if in.Src == "" {
				return
			}
			i, chain, smp, ok := derive(in.Src, 0)
			if !ok || !pointerParam(i) {
				return
			}
			plan.rets = append(plan.rets, criticalRet{fn: f.Name, ret: in, param: i, chain: chain, sample: smp})
		}
	})
}

// fieldAnalysisOff computes the analysis-slot offset of a FieldAddr without
// needing a layout cache (field offsets are small; recompute).
func fieldAnalysisOff(d *ir.FieldAddr) int {
	off := 0
	for k := 0; k < d.Field; k++ {
		off += len(ir.FlattenedFields(d.Struct.Fields[k].Type))
	}
	return off
}
