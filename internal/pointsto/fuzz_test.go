package pointsto

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/minic"
	"repro/internal/workload"
)

// FuzzSolverEquivalence drives the differential oracle from fuzz-generated
// mini-C programs: for a random well-formed module, every iteration strategy
// (worklist, wave), propagation mode (delta, full), and preprocessing mode
// (prep on/off) must produce an identical Result, under the invariant
// configuration selected by cfgBits. The generator (workload.RandomProgram)
// emits the pointer-analysis-relevant constructs — multi-level pointers,
// struct fields holding function pointers, heap wrappers, arbitrary
// arithmetic, indirect calls — so the fuzzer explores solver interleavings
// the hand-written fixtures do not pin down.
func FuzzSolverEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(2), uint8(7))
	f.Add(int64(1337), uint8(1))
	f.Add(int64(-99), uint8(2))
	f.Add(int64(424242), uint8(4))
	// Seed 11 generates a program whose *pp store/load traffic merges nodes
	// in the offline prep stage (a prep-merged cycle), pinning the prep-on
	// variants to corpus coverage from the first run.
	f.Add(int64(11), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, cfgBits uint8) {
		src := workload.RandomProgram(seed)
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("generated program does not compile (seed %d): %v\n%s", seed, err, src)
		}
		cfg := invariant.Config{
			PA:  cfgBits&1 != 0,
			PWC: cfgBits&2 != 0,
			Ctx: cfgBits&4 != 0,
		}
		ref := fingerprint(solveVariant(m, cfg, false, false, false))
		for _, v := range []struct {
			label             string
			wave, delta, prep bool
		}{
			{"worklist+delta", false, true, false},
			{"wave+full", true, false, false},
			{"wave+delta", true, true, false},
			{"worklist+full+prep", false, false, true},
			{"worklist+delta+prep", false, true, true},
			{"wave+delta+prep", true, true, true},
		} {
			if got := fingerprint(solveVariant(m, cfg, v.wave, v.delta, v.prep)); got != ref {
				t.Errorf("seed %d cfg %+v: %s diverges from worklist+full:\n%s",
					seed, cfg, v.label, diffLines(ref, got))
			}
		}
		if t.Failed() {
			t.Logf("program:\n%s", src)
		}
	})
}

// FuzzParallelEquivalence extends the solver-equivalence fuzzing to the
// parallel wave strategy: for a random well-formed module, the parallel
// solver at 1 (inline), 2, and 8 workers — across delta and prep modes —
// must fingerprint identically to the sequential worklist solve. The seed
// corpus mirrors FuzzSolverEquivalence (including the prep-cycle seed 11) so
// the parallel phase machinery is pinned to the same coverage from the first
// run.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(2), uint8(7))
	f.Add(int64(1337), uint8(1))
	f.Add(int64(-99), uint8(2))
	f.Add(int64(424242), uint8(4))
	f.Add(int64(11), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, cfgBits uint8) {
		src := workload.RandomProgram(seed)
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("generated program does not compile (seed %d): %v\n%s", seed, err, src)
		}
		cfg := invariant.Config{
			PA:  cfgBits&1 != 0,
			PWC: cfgBits&2 != 0,
			Ctx: cfgBits&4 != 0,
		}
		ref := fingerprint(solveVariant(m, cfg, false, false, false))
		for _, v := range []struct {
			label       string
			parallel    int
			delta, prep bool
		}{
			{"parallel1+full", 1, false, false},
			{"parallel1+delta+prep", 1, true, true},
			{"parallel2+delta", 2, true, false},
			{"parallel2+full+prep", 2, false, true},
			{"parallel8+delta+prep", 8, true, true},
			{"parallel8+full", 8, false, false},
		} {
			if got := fingerprint(solveStrategy(m, cfg, false, v.parallel, v.delta, v.prep)); got != ref {
				t.Errorf("seed %d cfg %+v: %s diverges from worklist+full:\n%s",
					seed, cfg, v.label, diffLines(ref, got))
			}
		}
		if t.Failed() {
			t.Logf("program:\n%s", src)
		}
	})
}

// FuzzInternEquivalence extends the solver-equivalence fuzzing to hash-consed
// set interning: for a random well-formed module, interned solves across the
// strategy cube — worklist, wave, and parallel, under delta and prep modes —
// must fingerprint identically to the plain un-interned worklist solve, and a
// full Restore sequence on an interned analysis (mutating shared fixpoint
// sets through copy-on-write) must track its un-interned twin step for step.
// The seed corpus mirrors FuzzSolverEquivalence (including the prep-cycle
// seed 11).
func FuzzInternEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(2), uint8(7))
	f.Add(int64(1337), uint8(1))
	f.Add(int64(-99), uint8(2))
	f.Add(int64(424242), uint8(4))
	f.Add(int64(11), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, cfgBits uint8) {
		src := workload.RandomProgram(seed)
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("generated program does not compile (seed %d): %v\n%s", seed, err, src)
		}
		cfg := invariant.Config{
			PA:  cfgBits&1 != 0,
			PWC: cfgBits&2 != 0,
			Ctx: cfgBits&4 != 0,
		}
		ref := fingerprint(solveVariant(m, cfg, false, false, false))
		for _, v := range []struct {
			label       string
			wave        bool
			parallel    int
			delta, prep bool
		}{
			{"worklist+full+intern", false, 0, false, false},
			{"worklist+delta+prep+intern", false, 0, true, true},
			{"wave+full+intern", true, 0, false, false},
			{"wave+delta+prep+intern", true, 0, true, true},
			{"parallel2+full+intern", false, 2, false, false},
			{"parallel8+delta+prep+intern", false, 8, true, true},
		} {
			if got := fingerprint(solveCube(m, cfg, v.wave, v.parallel, v.delta, v.prep, true)); got != ref {
				t.Errorf("seed %d cfg %+v: %s diverges from worklist+full:\n%s",
					seed, cfg, v.label, diffLines(ref, got))
			}
		}
		// Incremental leg: restore every assumed invariant on an interned and
		// an un-interned analysis in lockstep.
		plain := solveVariant(m, invariant.All(), false, true, true)
		interned := solveCube(m, invariant.All(), false, 0, true, true, true)
		for i, rec := range plain.Invariants() {
			if err := plain.Restore(rec); err != nil {
				t.Fatalf("seed %d: plain restore %d: %v", seed, i, err)
			}
			if err := interned.Restore(rec); err != nil {
				t.Fatalf("seed %d: interned restore %d: %v", seed, i, err)
			}
			if got, want := fingerprint(interned), fingerprint(plain); got != want {
				t.Errorf("seed %d: divergence after restore %d (kind=%v site=%d):\n%s",
					seed, i, rec.Kind, rec.Site, diffLines(want, got))
			}
		}
		if t.Failed() {
			t.Logf("program:\n%s", src)
		}
	})
}
