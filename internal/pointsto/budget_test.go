package pointsto

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/invariant"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// These tests compare results via the differential suite's fingerprint
// helper (differential_test.go), which serializes everything observable
// about a Result.

// An exhausted step budget must surface as a typed *AbortError matching
// ErrSolveAborted, with a nil Result — never a partial fixpoint.
func TestBudgetAbortIsTyped(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	reg := telemetry.New()
	a := New(m, invariant.All())
	a.SetMetrics(reg)
	r, err := a.SolveCtx(context.Background(), Budget{MaxSteps: 5})
	if r != nil {
		t.Fatal("aborted solve returned a result")
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("err = %v (%T), want *AbortError", err, err)
	}
	if !errors.Is(err, ErrSolveAborted) {
		t.Errorf("abort does not match ErrSolveAborted: %v", err)
	}
	if ab.Cause != nil {
		t.Errorf("step-budget abort carries cause %v, want none", ab.Cause)
	}
	if got := reg.Counter("pointsto/solve/aborts").Value(); got != 1 {
		t.Errorf("abort counter = %d, want 1", got)
	}
}

// An aborted solve must be resumable: repeatedly re-solving under a small
// step budget has to converge to the byte-identical fixpoint of an
// uninterrupted solve.
func TestBudgetedSolveResumes(t *testing.T) {
	for _, app := range workload.Apps()[:4] {
		t.Run(app.Name, func(t *testing.T) {
			m := app.MustModule()
			want := fingerprint(New(m, invariant.All()).Solve())
			a := New(m, invariant.All())
			aborts := 0
			for {
				r, err := a.SolveCtx(context.Background(), Budget{MaxSteps: 40})
				if err == nil {
					if got := fingerprint(r); got != want {
						t.Fatalf("fixpoint after %d aborted resumes differs from uninterrupted solve", aborts)
					}
					break
				}
				if !errors.Is(err, ErrSolveAborted) {
					t.Fatalf("unexpected error: %v", err)
				}
				aborts++
				if aborts > 10000 {
					t.Fatal("solve never converges under repeated 40-step budgets")
				}
			}
			if aborts == 0 {
				t.Error("solve finished inside the first 40-step budget; test exercised nothing")
			}
		})
	}
}

// A large-enough budget must change nothing: the result is identical to an
// unbounded Solve.
func TestGenerousBudgetIsIdentity(t *testing.T) {
	m := workload.Curl().MustModule()
	want := fingerprint(New(m, invariant.All()).Solve())
	r, err := New(m, invariant.All()).SolveCtx(context.Background(), Budget{MaxSteps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(r) != want {
		t.Fatal("budgeted solve differs from unbounded solve")
	}
}

// A cancelled context must abort the solve with both sentinel matches:
// ErrSolveAborted (ours) and context.Canceled (the cause).
func TestContextCancellationAborts(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := New(m, invariant.All()).SolveCtx(ctx, Budget{})
	if r != nil {
		t.Fatal("cancelled solve returned a result")
	}
	if !errors.Is(err, ErrSolveAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want AbortError wrapping context.Canceled", err)
	}
}

// An injected SolverBudget fault must abort exactly like a real budget
// exhaustion, carrying the *faultinject.Injected cause; because the fault is
// single-shot, a follow-up SolveCtx resumes to the true fixpoint.
func TestInjectedSolverFaultAborts(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	want := fingerprint(New(m, invariant.All()).Solve())
	a := New(m, invariant.All())
	a.SetFaults(faultinject.ExplicitAt(faultinject.SolverBudget, 20))
	r, err := a.SolveCtx(context.Background(), Budget{})
	if r != nil {
		t.Fatal("faulted solve returned a result")
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != faultinject.SolverBudget {
		t.Fatalf("err = %v, want injected %s cause", err, faultinject.SolverBudget)
	}
	if !errors.Is(err, ErrSolveAborted) {
		t.Errorf("injected abort does not match ErrSolveAborted: %v", err)
	}
	r2, err := a.SolveCtx(context.Background(), Budget{})
	if err != nil {
		t.Fatalf("resume after injected fault: %v", err)
	}
	if fingerprint(r2) != want {
		t.Fatal("fixpoint after injected fault differs from clean solve")
	}
}

// The wave strategy obeys the same budget contract as the worklist solver.
func TestWaveSolveBudget(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	clean := New(m, invariant.All())
	clean.SetWave(true)
	want := fingerprint(clean.Solve())
	a := New(m, invariant.All())
	a.SetWave(true)
	if r, err := a.SolveCtx(context.Background(), Budget{MaxSteps: 5}); r != nil || !errors.Is(err, ErrSolveAborted) {
		t.Fatalf("wave budget abort: r=%v err=%v", r, err)
	}
	r, err := a.SolveCtx(context.Background(), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(r) != want {
		t.Fatal("resumed wave fixpoint differs from uninterrupted wave solve")
	}
}
