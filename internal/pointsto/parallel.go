package pointsto

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/telemetry"
)

// Parallel wave propagation. The wave strategy (wave.go) already condenses
// the constraint graph and visits it in topological order; topoOrder
// additionally groups that order into levels with no forward copy/gep edges
// inside a level. The nodes of one level therefore read from earlier levels
// and write only to later ones, which makes their per-node constraint
// evaluation independent — the expensive part of a visit (walking pending
// pointees against every outgoing edge and diffing against target sets) is
// pure set arithmetic over state that nothing else is writing.
//
// solveParallel exploits exactly that: each level runs in three phases.
//
//  1. Snapshot (serial): per level node, charge the step budget, consume the
//     pending delta, and record the node's work set — the same prefix
//     processNode runs, in the same order, so budget accounting and
//     resumability are identical to the sequential wave. A budget abort
//     truncates the level here: the already-charged prefix still flows
//     through gather/apply (a level barrier is the abort point), the rest
//     keeps its delta and worklist entry, and a later resolve resumes.
//  2. Gather (parallel): a bounded worker pool evaluates each snapshotted
//     node's gep and copy edges against its work set, staging the bits each
//     edge would add (already diffed against the target's current set).
//     Workers only read: union-find lookups go through findRead (no path
//     compression), points-to sets are only traversed, and no telemetry or
//     stats state is touched. This phase carries the dominant set-traversal
//     cost of a wave.
//  3. Apply (serial, in level order): staged additions are merged into the
//     target sets with the usual delta bookkeeping, and the rare mutating
//     constraint kinds — HCD firing, field-sensitivity collapse, derived
//     load/store copy edges, pointer arithmetic, indirect-call wiring, LCD
//     probes — replay exactly as processNode would run them. Everything that
//     merges nodes, creates nodes, or edits shared maps happens here, single
//     threaded, in a deterministic order.
//
// Determinism and byte-identity: gather is pure, so its staged output is a
// function of the barrier-state snapshot alone, independent of worker
// scheduling; apply runs in level order, so the whole solve is deterministic
// run to run. Against the sequential solvers the visit interleaving differs,
// but every constraint is monotone over a lattice with unique least fixpoint,
// and the canonical Result views (object slots of a collapsed object all
// resolve to its base) erase representation-level differences — so the
// serialized artifacts are byte-identical, which the differential oracle,
// FuzzParallelEquivalence, and the bench golden test assert.
//
// The tracer path (SetTracer) is synchronous and order-sensitive by contract,
// so an installed tracer falls back to the sequential wave (see resolve).

// parallelGatherMin is the level width below which gather runs inline on the
// solver goroutine: spawning workers for a handful of nodes costs more than
// the set arithmetic being fanned out.
const parallelGatherMin = 8

// gepIntent stages one gep edge's evaluation: the pointee bits the edge adds
// to its target (pre-diffed against the target's gather-time set) and the
// objects the baseline PWC mitigation must collapse before the merge.
type gepIntent struct {
	to       int32
	adds     *bitset.Set
	collapse []*Object
}

// copyIntent stages one copy edge's evaluation: the work bits not yet in the
// target's gather-time set. An empty diff is kept — it is the propagation
// miss that triggers the lazy-cycle-detection probe at apply time.
type copyIntent struct {
	to   int32
	diff *bitset.Set
}

// levelTask is one snapshotted node of a level: its consumed work set plus
// the per-edge intents gather stages for apply.
type levelTask struct {
	n      int
	work   *bitset.Set
	elems  []int
	geps   []gepIntent
	copies []copyIntent
}

// solveParallel runs wave propagation with level-parallel gathering to a
// fixed point. Round structure (sccPass, residual drain, quiescence check)
// mirrors solveWave; only the per-level visit is split into phases.
func (a *Analysis) solveParallel(solveSpan *telemetry.Span) {
	a.ensureWL()
	for {
		a.stats.Waves++
		a.hWLDepth.Observe(int64(len(a.worklist)))
		a.gLiveDepth.Set(int64(len(a.worklist)))
		_, finW := a.metrics.StartSpan("pointsto/round/parallel", solveSpan)
		stopW := a.metrics.Timer("pointsto/phase/parallel").Start()
		changed := a.sccPass()
		order, starts := a.topoOrder()
		for li := 0; li+1 < len(starts); li++ {
			a.runLevel(order[starts[li]:starts[li+1]])
			if a.abortErr != nil {
				break
			}
		}
		// Residual work (derived edges may point upstream) drains
		// sequentially, exactly as in solveWave; after an abort the drain's
		// own budget check makes it a no-op.
		a.drain()
		stopW()
		finW()
		if a.abortErr != nil {
			return
		}
		if !changed && !a.sccPass() {
			if len(a.worklist) == 0 {
				return
			}
		}
	}
}

// runLevel processes one level: serial snapshot, parallel gather, serial
// apply. See the package comment at the top of this file for the phase
// contract.
func (a *Analysis) runLevel(level []int) {
	a.ensureWL()
	a.hLevelWidth.Observe(int64(len(level)))
	tasks := make([]levelTask, 0, len(level))
	for _, n := range level {
		// Visit only queued representatives. Every state change re-queues the
		// nodes it affects (addToPts/unionSetInto push, merges and collapses
		// seed full flushes), so skipping unqueued nodes drops no work — and
		// it keeps budget accounting aligned with the worklist's pops: a
		// resumed solve spends its steps on pending nodes instead of
		// re-walking the whole order, so repeated small budgets always make
		// progress.
		if a.find(n) != n || !a.inWL[n] {
			continue
		}
		if a.budgeted && !a.budgetStep() {
			break // truncate the level; unvisited nodes stay queued
		}
		a.inWL[n] = false
		// Consume the node's pending work — the same accounting prefix as
		// processNode, so step counts and delta stats match the sequential
		// wave visit for visit.
		a.stats.Iterations++
		a.cLivePops.Inc()
		var work *bitset.Set
		if a.noDelta {
			work = a.pts[n]
			if work != nil {
				if a.pool != nil {
					// Intern at the level barrier: the snapshot is serial, so
					// every sharing decision — and the canonical element slice
					// the gather workers will iterate — is fixed before any
					// worker runs. Workers never touch the pool, which keeps
					// sharing deterministic under parallel gathering.
					a.pool.Intern(work)
				}
				size := work.Len()
				a.stats.BitsPropagated += size
				a.hDeltaSize.Observe(int64(size))
			}
		} else {
			work = a.delta[n]
			a.delta[n] = nil
			if work != nil {
				size := work.Len()
				a.stats.BitsPropagated += size
				a.hDeltaSize.Observe(int64(size))
				if a.pts[n] != nil {
					a.stats.BitsAvoided += a.pts[n].Len() - size
				}
			}
		}
		if work == nil || work.Empty() {
			continue
		}
		t := levelTask{n: n, work: work}
		if work.Interned() {
			// Materialize the memoized canonical slice now (free on a pool
			// hit) so gather workers read fully settled entries.
			t.elems = work.Elements()
		}
		tasks = append(tasks, t)
	}
	if len(tasks) == 0 {
		return
	}
	a.gatherLevel(tasks)
	a.applyLevel(tasks)
}

// gatherLevel stages every task's edge evaluations, fanning out across up to
// a.parallel workers when the level is wide enough to pay for them. Workers
// write only into their own task slots; everything else is read-only.
func (a *Analysis) gatherLevel(tasks []levelTask) {
	nw := a.parallel
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw <= 1 || len(tasks) < parallelGatherMin {
		for i := range tasks {
			a.gatherTask(&tasks[i])
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := 0
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(tasks) {
					break
				}
				a.gatherTask(&tasks[i])
				done++
			}
			// Histograms are atomic, so recording occupancy from the worker
			// itself is race-free.
			a.hOccupancy.Observe(int64(done))
		}()
	}
	wg.Wait()
}

// gatherTask evaluates one node's gep and copy edges against its work set,
// staging per-edge additions. Read-only: representative lookups use findRead
// and target sets are only diffed against.
func (a *Analysis) gatherTask(t *levelTask) {
	n := t.n
	if t.elems == nil {
		t.elems = t.work.Elements()
	}
	if geps := a.gepTo[n]; len(geps) > 0 {
		t.geps = make([]gepIntent, 0, len(geps))
		for _, e := range geps {
			gi := gepIntent{to: e.to}
			var adds *bitset.Set
			for _, o := range t.elems {
				if e.collapse {
					// Baseline PWC mitigation: objects flowing through lose
					// field sensitivity, after which every slot resolves to
					// the base. The collapse itself mutates, so it is staged
					// for apply; the post-collapse target is known now.
					obj := a.objOfNode(o)
					if obj == nil {
						continue
					}
					if !obj.Insens {
						gi.collapse = append(gi.collapse, obj)
					}
					if adds == nil {
						adds = bitset.New(0)
					}
					adds.Add(obj.NodeBase)
					continue
				}
				if tgt := a.fieldTarget(o, int(e.off)); tgt >= 0 {
					if adds == nil {
						adds = bitset.New(0)
					}
					adds.Add(tgt)
				}
			}
			if adds != nil {
				if p := a.pts[a.findRead(int(e.to))]; p != nil {
					adds = adds.Difference(p)
				}
			}
			gi.adds = adds
			t.geps = append(t.geps, gi)
		}
	}
	if copies := a.copyTo[n]; len(copies) > 0 {
		t.copies = make([]copyIntent, 0, len(copies))
		for _, raw := range copies {
			w := a.findRead(int(raw))
			if w == n {
				continue
			}
			t.copies = append(t.copies, copyIntent{to: raw, diff: t.work.Difference(a.pts[w])})
		}
	}
}

// applyLevel merges every staged intent and replays the mutating constraint
// kinds, single threaded, in level order — the parallel counterpart of the
// corresponding sections of processNode. Union-find merges, node creation,
// and shared-map writes all happen here.
func (a *Analysis) applyLevel(tasks []levelTask) {
	for ti := range tasks {
		t := &tasks[ti]
		n := t.n
		if a.hcdAt != nil && len(a.hcdAt[n]) > 0 {
			a.hcdFire(n, t.elems)
		}
		for _, gi := range t.geps {
			for _, obj := range gi.collapse {
				a.makeFieldInsensitive(obj)
			}
			a.applyUnion(a.find(int(gi.to)), gi.adds)
		}
		for _, e := range a.loadTo[n] {
			for _, o := range t.elems {
				if a.nodes[o].kind != nodeObj {
					continue
				}
				a.addCopy(a.find(o), int(e.other), int(e.site), n, true)
			}
		}
		for _, e := range a.storeFrom[n] {
			for _, o := range t.elems {
				if a.nodes[o].kind != nodeObj {
					continue
				}
				a.addCopy(int(e.other), a.find(o), int(e.site), n, true)
			}
		}
		for _, e := range a.arithTo[n] {
			a.processArith(n, e, t.elems)
		}
		for _, s := range a.icallsAt[n] {
			a.connectICall(n, s, t.elems)
		}
		src := a.find(n)
		for _, ci := range t.copies {
			dst := a.find(int(ci.to))
			if dst == src {
				continue
			}
			if a.applyUnion(dst, ci.diff) == 0 && a.lcdSeen != nil {
				// Propagation miss — same converged-cycle signal the
				// sequential copy loop probes on.
				a.lcdProbe(src, dst)
				src = a.find(src)
			}
		}
	}
}

// applyUnion merges a staged pointee set into pts(dst), recording fresh bits
// in dst's delta and enqueueing dst on change; it returns the number of bits
// added. This is unionSetInto minus tracer/provenance support — the parallel
// strategy never runs with a tracer installed. dst must be a representative.
func (a *Analysis) applyUnion(dst int, set *bitset.Set) int {
	if set == nil || set.Empty() {
		return 0
	}
	d := a.ptsOf(dst)
	var into *bitset.Set
	if !a.noDelta {
		into = a.deltaOf(dst)
	}
	added := d.UnionDelta(set, into)
	if added > 0 {
		a.push(dst)
	}
	return added
}
