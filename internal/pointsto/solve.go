package pointsto

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/invariant"
	"repro/internal/ir"
)

// Solve runs the inclusion-constraint solver to a fixed point and returns
// the points-to result. Solving alternates worklist propagation with cycle
// detection/collapse until neither changes the graph. Bounded or cancellable
// solving goes through SolveCtx; Solve itself cannot abort (callers that arm
// SolverBudget faults must use SolveCtx).
func (a *Analysis) Solve() *Result {
	r, err := a.SolveCtx(context.Background(), Budget{})
	if err != nil {
		panic(err)
	}
	return r
}

// resolve runs propagation + cycle detection to a fixed point; it is also
// the incremental re-solve entry used by Restore. A non-nil error is always
// an *AbortError from the active budget, and leaves the analysis resumable.
func (a *Analysis) resolve() error {
	if (a.metrics != nil || a.parentSpan != nil) && !a.buildEmitted {
		// Constraint-graph construction ran inside New, before a registry
		// could be attached; export its interval retroactively, once. A
		// trace-attached parent span is a destination too, registry or not.
		a.buildEmitted = true
		a.metrics.RecordSpan("pointsto/build", a.parentSpan, a.buildStart, a.buildDur)
	}
	if !a.prepDone {
		// First resolve: every Set* option is final now. Settle the delta
		// auto mode, then run offline preprocessing (skipped under the naive
		// ablation, whose point is to measure the solver without any cycle
		// elimination).
		a.prepDone = true
		if a.deltaMode == deltaAuto {
			a.noDelta = len(a.nodes) < DeltaAutoThreshold
		}
		if a.intern {
			a.pool = bitset.NewPool(0)
		}
		if a.prep && !a.naive {
			a.runPrep()
		}
	}
	solveSpan, finishSolve := a.metrics.StartSpan("pointsto/solve", a.parentSpan)
	stop := a.metrics.Timer("pointsto/phase/solve").Start()
	if a.parallel > 0 {
		if a.tracer != nil {
			// Tracer callbacks are synchronous and order-sensitive, which the
			// parallel gather phase cannot honor: fall back to the sequential
			// wave (results are identical either way).
			a.solveWave(solveSpan)
		} else {
			a.solveParallel(solveSpan)
		}
	} else if a.wave {
		a.solveWave(solveSpan)
	} else {
		a.ensureWL()
		for {
			// One histogram sample of worklist depth per solver round, plus
			// the live gauge the stall watchdog reads.
			a.hWLDepth.Observe(int64(len(a.worklist)))
			a.gLiveDepth.Set(int64(len(a.worklist)))
			_, finP := a.metrics.StartSpan("pointsto/round/propagate", solveSpan)
			stopP := a.metrics.Timer("pointsto/phase/propagate").Start()
			a.drain()
			stopP()
			finP()
			if a.abortErr != nil {
				break
			}
			_, finS := a.metrics.StartSpan("pointsto/round/scc", solveSpan)
			stopS := a.metrics.Timer("pointsto/phase/scc").Start()
			changed := a.sccPass()
			stopS()
			finS()
			if !changed {
				break
			}
		}
	}
	if a.abortErr != nil {
		// Budget exhausted (or cancelled, or an injected solver fault): stop
		// cleanly without presenting the intermediate state as a fixpoint.
		// The unpopped worklist stays queued, so a later resolve resumes and
		// converges to the identical fixpoint.
		stop()
		finishSolve()
		a.flushMetrics()
		err := a.abortErr
		a.abortErr = nil
		return err
	}
	_, mons := a.invariantRecords()
	a.stats.MonitorSites = len(mons)
	// Flatten the union-find so post-solve readers (Result methods) can
	// resolve representatives without path-compression writes; a finished
	// analysis may then be read from many goroutines concurrently.
	a.flattenReps()
	if a.pool != nil {
		// Post-fixpoint sweep: intern every surviving node's final set, so
		// equal fixpoint sets share one storage block across nodes no matter
		// which propagation strategy produced them (delta and parallel runs
		// intern little during the solve itself). Content is untouched, so
		// results stay byte-identical; an incremental Restore that later
		// mutates a shared set simply copy-on-writes.
		for i := range a.pts {
			if a.pts[i] != nil {
				a.pool.Intern(a.pts[i])
			}
		}
	}
	stop()
	finishSolve()
	a.flushMetrics()
	return nil
}

// flattenReps fully path-compresses every union-find pointer.
func (a *Analysis) flattenReps() {
	for i := range a.rep {
		a.rep[i] = int32(a.find(i))
	}
}

// findRead resolves the representative of x without path compression. After
// flattenReps this is a single hop; it performs no writes, so concurrent
// readers of a finished analysis can share it safely.
func (a *Analysis) findRead(x int) int {
	for a.rep[x] != int32(x) {
		x = int(a.rep[x])
	}
	return x
}

// flushMetrics exports the solver statistics accumulated since the previous
// flush into the attached telemetry registry (no-op without one). Deltas are
// used so incremental re-solves add only their own work.
func (a *Analysis) flushMetrics() {
	if a.metrics == nil {
		return
	}
	d, prev := a.stats, a.flushed
	a.flushed = a.stats
	m := a.metrics
	m.Counter("pointsto/solves").Inc()
	m.Counter("pointsto/worklist/pops").Add(int64(d.Iterations - prev.Iterations))
	m.Counter("pointsto/constraints/copy").Add(int64(d.CopyEdges - prev.CopyEdges))
	m.Counter("pointsto/constraints/derived").Add(int64(d.DerivedEdges - prev.DerivedEdges))
	m.Counter("pointsto/scc/passes").Add(int64(d.SCCPasses - prev.SCCPasses))
	m.Counter("pointsto/scc/collapsed-nodes").Add(int64(d.SCCCollapses - prev.SCCCollapses))
	m.Counter("pointsto/pwc/cycles").Add(int64(d.PWCs - prev.PWCs))
	m.Counter("pointsto/field/collapses").Add(int64(d.FieldCollapses - prev.FieldCollapses))
	m.Counter("pointsto/wave/rounds").Add(int64(d.Waves - prev.Waves))
	m.Counter("pointsto/prep/merged-nodes").Add(int64(d.PrepMerged - prev.PrepMerged))
	m.Counter("pointsto/prep/deferred-merges").Add(int64(d.PrepDeferred - prev.PrepDeferred))
	m.Counter("pointsto/hcd/online-collapses").Add(int64(d.HCDCollapses - prev.HCDCollapses))
	m.Counter("pointsto/lcd/collapsed-nodes").Add(int64(d.LCDCollapses - prev.LCDCollapses))
	m.Counter("pointsto/delta/flushes").Add(int64(d.DeltaFlushes - prev.DeltaFlushes))
	m.Counter("pointsto/delta/bits-propagated").Add(int64(d.BitsPropagated - prev.BitsPropagated))
	m.Counter("pointsto/delta/full-bits-avoided").Add(int64(d.BitsAvoided - prev.BitsAvoided))
	m.Gauge("pointsto/graph/nodes").SetMax(int64(len(a.nodes)))
	m.Gauge("pointsto/graph/objects").SetMax(int64(len(a.objects)))
	if a.pool != nil {
		st, prevI := a.pool.Stats(), a.flushedIntern
		a.flushedIntern = st
		m.Counter("pointsto/intern/hits").Add(st.Hits - prevI.Hits)
		m.Counter("pointsto/intern/self-hits").Add(st.SelfHits - prevI.SelfHits)
		m.Counter("pointsto/intern/misses").Add(st.Misses - prevI.Misses)
		m.Counter("pointsto/intern/promotions").Add(st.Promotions - prevI.Promotions)
		m.Counter("pointsto/intern/evictions").Add(st.Evictions - prevI.Evictions)
		m.Counter("pointsto/intern/bytes-shared").Add(st.BytesShared - prevI.BytesShared)
		m.Gauge("pointsto/intern/pool-entries").Set(int64(st.Entries))
		m.Gauge("pointsto/intern/pool-bytes").SetMax(st.WordBytes)
	}
	// Distribution of points-to set sizes at this fixpoint, over
	// representative nodes with non-empty sets (reps are flattened by now).
	for i := range a.nodes {
		if int(a.rep[i]) == i && a.pts[i] != nil && !a.pts[i].Empty() {
			a.hPtsSize.Observe(int64(a.pts[i].Len()))
		}
	}
}

// drain processes the worklist to exhaustion, or until the active budget
// aborts it. The budget check runs before the pop, so the node the abort
// lands on stays queued for a resumed solve.
func (a *Analysis) drain() {
	for len(a.worklist) > 0 {
		if a.budgeted && !a.budgetStep() {
			return
		}
		raw := int(a.worklist[len(a.worklist)-1])
		a.worklist = a.worklist[:len(a.worklist)-1]
		a.inWL[raw] = false
		n := a.find(raw)
		if n != raw && a.inWL[n] {
			continue
		}
		a.processNode(n)
	}
}

// processNode applies every outgoing constraint of n to its pending pointee
// delta — the set of pointees added since n was last processed (the full set
// on the node's first visit, or after a seedDelta flush). Disabling delta
// propagation (SetDelta(false)) re-consumes the full set on every visit; the
// results are identical because every constraint here is monotone and
// idempotent per pointee, so re-deriving from old pointees only re-adds
// facts that are already present.
func (a *Analysis) processNode(n int) {
	a.stats.Iterations++
	a.cLivePops.Inc()
	a.ensureWL()
	var work *bitset.Set
	if a.noDelta {
		work = a.pts[n]
		if work != nil {
			if a.pool != nil {
				// Re-canonicalize at the pop (a serial point). Full-mode pops
				// re-consume the whole set, and most pops see content the pool
				// has already seen — a hit hands back the canonical storage
				// whose memoized element slice makes the Elements call below
				// allocation-free.
				a.pool.Intern(work)
			}
			size := work.Len()
			a.stats.BitsPropagated += size
			a.hDeltaSize.Observe(int64(size))
		}
	} else {
		work = a.delta[n]
		a.delta[n] = nil
		if work != nil {
			size := work.Len()
			a.stats.BitsPropagated += size
			a.hDeltaSize.Observe(int64(size))
			if a.pts[n] != nil {
				a.stats.BitsAvoided += a.pts[n].Len() - size
			}
		}
	}
	if work == nil || work.Empty() {
		// Nothing pending: every edge has already consumed the node's full
		// set (new edges seed a flush before pushing the node here).
		return
	}
	elems := work.Elements()
	if a.hcdAt != nil && len(a.hcdAt[n]) > 0 {
		// Hybrid cycle detection: new pointees of n close offline-predicted
		// copy cycles; collapse them now, in O(members), instead of waiting
		// for the next whole-graph sccPass. This may merge n itself away —
		// safe, because the merge moves n's adjacency to the survivor and
		// re-seeds it with the combined full set, so the (now empty) edge
		// lists below simply have nothing left to do.
		a.hcdFire(n, elems)
	}
	for _, e := range a.gepTo[n] {
		to := a.find(int(e.to))
		for _, o := range elems {
			if e.collapse {
				if obj := a.objOfNode(o); obj != nil && !obj.Insens {
					a.makeFieldInsensitive(obj)
				}
			}
			if t := a.fieldTarget(o, int(e.off)); t >= 0 {
				a.addToPts(to, t, int(e.site), n, true)
			}
		}
	}
	for _, e := range a.loadTo[n] {
		for _, o := range elems {
			if a.nodes[o].kind != nodeObj {
				continue
			}
			a.addCopy(a.find(o), int(e.other), int(e.site), n, true)
		}
	}
	for _, e := range a.storeFrom[n] {
		for _, o := range elems {
			if a.nodes[o].kind != nodeObj {
				continue
			}
			a.addCopy(int(e.other), a.find(o), int(e.site), n, true)
		}
	}
	for _, e := range a.arithTo[n] {
		a.processArith(n, e, elems)
	}
	for _, s := range a.icallsAt[n] {
		a.connectICall(n, s, elems)
	}
	for _, to := range a.copyTo[n] {
		if !a.unionSetInto(int(to), work, n, 0, false) && a.lcdSeen != nil {
			// Propagation miss: the target already had every pending pointee,
			// the signature of a converged copy cycle. Probe lazily for one.
			a.lcdProbe(n, a.find(int(to)))
		}
	}
}

// processArith applies the arbitrary-pointer-arithmetic policy (§4.2) to one
// PtrAdd edge. Baseline: struct objects flowing through lose field
// sensitivity. Optimistic (PA): plain struct objects of known type are
// filtered out entirely and recorded as likely-invariant subjects; unknown-
// type heap objects are never filtered (§6 soundness rule).
func (a *Analysis) processArith(n int, e arithEdge, elems []int) {
	to := a.find(int(e.to))
	site := int(e.site)
	for _, o := range elems {
		obj := a.objOfNode(o)
		if obj == nil {
			continue
		}
		switch {
		case a.cfg.PA && !a.paDisabled[site] && obj.Type != nil && ir.IsStruct(obj.Type):
			m := a.paFiltered[site]
			if m == nil {
				m = map[int]bool{}
				a.paFiltered[site] = m
			}
			m[obj.Index] = true
		case obj.Size == 1:
			a.addToPts(to, o, site, n, true)
		default:
			a.makeFieldInsensitive(obj)
			a.addToPts(to, obj.NodeBase, site, n, true)
		}
	}
}

// connectICall wires newly discovered function targets of an indirect
// callsite: actuals to formals, return value to the call destination.
func (a *Analysis) connectICall(n int, s *icallSite, elems []int) {
	for _, o := range elems {
		obj := a.objOfNode(o)
		if obj == nil || obj.Kind != ObjFunc || s.connected[obj.Index] {
			continue
		}
		s.connected[obj.Index] = true
		callee := a.mod.Func(obj.Name)
		if callee == nil {
			continue
		}
		for i, argN := range s.args {
			if i >= len(callee.Params) {
				break
			}
			a.addCopy(int(argN), a.regNode(callee.Name, callee.Params[i]), int(s.site), n, true)
		}
		if s.dest >= 0 {
			a.addCopy(a.retNode(callee.Name), int(s.dest), int(s.site), n, true)
		}
	}
}

// sccPass runs cycle detection over the copy+gep subgraph and handles each
// cycle: copy-only cycles collapse into a single node; positive-weight
// cycles (PWCs) are treated per policy — baseline converts them per Pearce
// (targets lose field sensitivity, then collapse), the PWC likely invariant
// records them and defers any collapse (§4.3). Returns whether the graph
// changed (requiring another propagation round).
func (a *Analysis) sccPass() bool {
	a.stats.SCCPasses++
	sccs := a.tarjan()
	changed := false
	for _, scc := range sccs {
		inSCC := map[int]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		// Collect internal positive gep edges.
		var positive []*gepEdge
		for _, n := range scc {
			for _, e := range a.gepTo[n] {
				if e.off > 0 && inSCC[a.find(int(e.to))] {
					positive = append(positive, e)
				}
			}
		}
		if len(scc) == 1 && len(positive) == 0 {
			continue
		}
		if len(positive) == 0 {
			if a.naive {
				continue // ablation: leave copy cycles to plain propagation
			}
			// Simple copy cycle: safe to collapse.
			if a.tracer != nil {
				a.tracer.Cycle(len(scc), false)
			}
			for _, n := range scc[1:] {
				a.union(scc[0], n)
			}
			changed = true
			continue
		}
		// Positive-weight cycle.
		unseen := false
		for _, e := range positive {
			if !e.pwcSeen {
				unseen = true
				e.pwcSeen = true
			}
		}
		if unseen {
			a.stats.PWCs++
			if a.tracer != nil {
				a.tracer.Cycle(len(scc), true)
			}
		}
		if a.cfg.PWC {
			if unseen {
				a.recordPWC(positive)
			}
			continue // defer: no collapse, no field-sensitivity loss
		}
		if !unseen {
			continue // already mitigated
		}
		// Baseline mitigation (Pearce): objects flowing into the Field-Of
		// edges of the cycle lose field sensitivity — now and in the future
		// (collapse flag) — and the cycle merges into one node.
		for _, e := range positive {
			e.collapse = true
		}
		for _, n := range scc {
			if a.pts[n] == nil {
				continue
			}
			for _, o := range a.pts[n].Elements() {
				if obj := a.objOfNode(o); obj != nil {
					a.makeFieldInsensitive(obj)
				}
			}
		}
		for _, n := range scc[1:] {
			a.union(scc[0], n)
		}
		changed = true
	}
	return changed
}

// recordPWC emits the PWC likely-invariant record and one monitor per
// Field-Of instruction in the cycle.
func (a *Analysis) recordPWC(positive []*gepEdge) {
	sites := map[int]bool{}
	for _, e := range positive {
		sites[int(e.site)] = true
	}
	var sorted []int
	for s := range sites {
		sorted = append(sorted, s)
	}
	sort.Ints(sorted)
	key := fmt.Sprint(sorted)
	if a.pwcRecords[key] {
		return
	}
	a.pwcRecords[key] = true
	var parts []string
	for _, s := range sorted {
		parts = append(parts, fmt.Sprintf("#%d", s))
	}
	rec := invariant.Record{
		Kind:            invariant.PWC,
		Site:            sorted[0],
		CycleFieldSites: sorted,
		Desc:            "positive-weight cycle through field accesses " + strings.Join(parts, ", "),
	}
	a.pwcList = append(a.pwcList, rec)
}

// invariantRecords derives the current invariant and monitor lists: Ctx
// records fixed at build time, PWC records found during solving (minus
// restored ones), and PA records from the live filtering state. Indexes in
// the monitor list refer to the returned record slice.
func (a *Analysis) invariantRecords() ([]invariant.Record, []invariant.Monitor) {
	var recs []invariant.Record
	var mons []invariant.Monitor
	for _, rec := range a.ctxRecords {
		mons = append(mons, invariant.Monitor{InstrID: rec.Site, Kind: invariant.Ctx, Invariant: len(recs)})
		recs = append(recs, rec)
	}
	for _, rec := range a.pwcList {
		restored := true
		for _, s := range rec.CycleFieldSites {
			if !a.pwcDone[s] {
				restored = false
				break
			}
		}
		if restored {
			continue
		}
		for _, s := range rec.CycleFieldSites {
			mons = append(mons, invariant.Monitor{InstrID: s, Kind: invariant.PWC, Invariant: len(recs)})
		}
		recs = append(recs, rec)
	}
	var sites []int
	for s := range a.paFiltered {
		if !a.paDisabled[s] {
			sites = append(sites, s)
		}
	}
	sort.Ints(sites)
	for _, site := range sites {
		var objs []int
		for oi := range a.paFiltered[site] {
			objs = append(objs, oi)
		}
		sort.Ints(objs)
		var names []string
		for _, oi := range objs {
			names = append(names, a.objects[oi].Label())
		}
		mons = append(mons, invariant.Monitor{InstrID: site, Kind: invariant.PA, Invariant: len(recs)})
		recs = append(recs, invariant.Record{
			Kind:         invariant.PA,
			Site:         site,
			FilteredObjs: objs,
			Desc:         "arbitrary arithmetic never addresses struct objects " + strings.Join(names, ", "),
		})
	}
	return recs, mons
}

// tarjan computes strongly connected components of the copy+gep subgraph
// over representative nodes (iterative Tarjan). Components are returned in
// reverse topological order; order is irrelevant to callers.
func (a *Analysis) tarjan() [][]int {
	n := len(a.nodes)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var sccs [][]int
	next := int32(0)

	succ := func(v int) []int {
		var out []int
		for _, t := range a.copyTo[v] {
			out = append(out, a.find(int(t)))
		}
		for _, e := range a.gepTo[v] {
			out = append(out, a.find(int(e.to)))
		}
		return out
	}

	type frame struct {
		v     int
		succs []int
		i     int
	}
	for root := 0; root < n; root++ {
		if a.find(root) != root || index[root] != -1 {
			continue
		}
		frames := []frame{{v: root, succs: succ(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if w == f.v {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, int32(w))
					onStack[w] = true
					frames = append(frames, frame{v: w, succs: succ(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var scc []int
				for {
					w := int(stack[len(stack)-1])
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.v {
						break
					}
				}
				if len(scc) > 1 || a.hasSelfGep(scc[0]) {
					sccs = append(sccs, scc)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return sccs
}

// hasSelfGep reports whether v has a positive-weight gep self-loop (a PWC
// that collapsed onto a single node).
func (a *Analysis) hasSelfGep(v int) bool {
	for _, e := range a.gepTo[v] {
		if e.off > 0 && a.find(int(e.to)) == v {
			return true
		}
	}
	return false
}
