package pointsto

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/minic"
)

func analyze(t *testing.T, src string, cfg invariant.Config) *Result {
	t.Helper()
	m, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(m, cfg).Solve()
}

func objNames(refs []ObjRef) []string {
	var out []string
	for _, r := range refs {
		out = append(out, r.Obj.Label())
	}
	return out
}

func hasObj(refs []ObjRef, label string) bool {
	for _, r := range refs {
		if r.Obj.Label() == label {
			return true
		}
	}
	return false
}

// Figure 2 of the paper: p = &o; q = &p; r = *q  =>  PTS(r) = {o}.
const figure2 = `
int o;
int main() {
  int* p;
  int** q;
  int* r;
  p = &o;
  q = &p;
  r = *q;
  return *r;
}
`

func TestFigure2BasicResolution(t *testing.T) {
	r := analyze(t, figure2, invariant.Config{})
	// r is alloca-backed; find the register points-to through the variable's
	// slot: locate alloca object for r and inspect its slot content.
	var rObj *Object
	for _, o := range r.Objects() {
		if o.Kind == ObjStack && o.Name == "r" {
			rObj = o
		}
	}
	if rObj == nil {
		t.Fatal("no stack object for r")
	}
	refs := r.SlotPointsTo(rObj, 0)
	if len(refs) != 1 || refs[0].Obj.Label() != "@o" {
		t.Fatalf("PTS(r) = %v, want {@o}", objNames(refs))
	}
}

// Field sensitivity: stores to distinct fields stay distinct.
const fieldSensSrc = `
struct pair { int* a; int* b; }
int x;
int y;
pair g;
int main() {
  int* ra;
  int* rb;
  g.a = &x;
  g.b = &y;
  ra = g.a;
  rb = g.b;
  return 0;
}
`

func TestFieldSensitivity(t *testing.T) {
	r := analyze(t, fieldSensSrc, invariant.Config{})
	g := r.ObjectByGlobal("g")
	if g == nil || g.Size != 2 {
		t.Fatalf("g object = %+v", g)
	}
	a := r.SlotPointsTo(g, 0)
	b := r.SlotPointsTo(g, 1)
	if len(a) != 1 || a[0].Obj.Label() != "@x" {
		t.Errorf("PTS(g.a) = %v, want {@x}", objNames(a))
	}
	if len(b) != 1 || b[0].Obj.Label() != "@y" {
		t.Errorf("PTS(g.b) = %v, want {@y}", objNames(b))
	}
}

// Copy cycles collapse without losing precision.
const cycleSrc = `
int x;
int main() {
  int* p;
  int* q;
  int* r;
  p = &x;
  while (input()) {
    q = p;
    r = q;
    p = r;
  }
  return *p;
}
`

func TestCopyCycleCollapse(t *testing.T) {
	r := analyze(t, cycleSrc, invariant.Config{})
	st := r.Stats()
	if st.SCCCollapses+st.PrepMerged+st.HCDCollapses+st.LCDCollapses == 0 {
		t.Error("no cycle collapse recorded for a copy cycle (by any mechanism)")
	}
	var pObj *Object
	for _, o := range r.Objects() {
		if o.Kind == ObjStack && o.Name == "p" {
			pObj = o
		}
	}
	refs := r.SlotPointsTo(pObj, 0)
	if len(refs) != 1 || refs[0].Obj.Label() != "@x" {
		t.Fatalf("PTS(p) = %v, want {@x}", objNames(refs))
	}
}

// Figure 6 of the paper: arbitrary pointer arithmetic over a pointer that
// (imprecisely) also points to struct objects.
const figure6 = `
struct plugin { int* data; fn handle_uri; fn handle_request; }
plugin mod_auth;
plugin mod_cgi;
int buff[1024];

int auth_handler(int* x) { return 1; }
int auth_req_handler(int* x) { return 2; }
int cgi_handler(int* x) { return 3; }
int cgi_req_handler(int* x) { return 4; }

void register_plugins() {
  mod_auth.handle_uri = &auth_handler;
  mod_auth.handle_request = &auth_req_handler;
  mod_cgi.handle_uri = &cgi_handler;
  mod_cgi.handle_request = &cgi_req_handler;
}

void http_write_header(char* s, char* src) {
  int i;
  i = input();
  *(s + i) = *(src + i);
}

int main() {
  char* p;
  register_plugins();
  p = buff;
  if (input()) {
    p = &mod_auth;
  }
  if (input() > 2) {
    p = &mod_cgi;
  }
  http_write_header(p, buff);
  return mod_auth.handle_uri(buff);
}
`

func TestFigure6ArbitraryArithmeticBaseline(t *testing.T) {
	r := analyze(t, figure6, invariant.Config{})
	modAuth := r.ObjectByGlobal("mod_auth")
	modCgi := r.ObjectByGlobal("mod_cgi")
	if !modAuth.Insens || !modCgi.Insens {
		t.Error("baseline should turn plugin objects field-insensitive under *(s+i)")
	}
	// Field insensitivity pollutes the indirect call: both handlers become
	// possible targets of mod_auth.handle_uri.
	sites := r.ICallSites()
	if len(sites) != 1 {
		t.Fatalf("icall sites = %v", sites)
	}
	targets := r.CallTargets(sites[0])
	if len(targets) != 2 {
		t.Fatalf("baseline CFI targets = %v, want both handlers", targets)
	}
	if len(r.Invariants()) != 0 {
		t.Errorf("baseline recorded invariants: %v", r.Invariants())
	}
}

func TestFigure6ArbitraryArithmeticOptimistic(t *testing.T) {
	r := analyze(t, figure6, invariant.Config{PA: true})
	modAuth := r.ObjectByGlobal("mod_auth")
	modCgi := r.ObjectByGlobal("mod_cgi")
	if modAuth.Insens || modCgi.Insens {
		t.Error("PA invariant should preserve field sensitivity of plugin objects")
	}
	sites := r.ICallSites()
	targets := r.CallTargets(sites[0])
	if len(targets) != 1 || targets[0] != "auth_handler" {
		t.Fatalf("optimistic CFI targets = %v, want [auth_handler]", targets)
	}
	// The PA invariant must be recorded with the filtered struct objects.
	var pa []invariant.Record
	for _, rec := range r.Invariants() {
		if rec.Kind == invariant.PA {
			pa = append(pa, rec)
		}
	}
	if len(pa) == 0 {
		t.Fatal("no PA invariant recorded")
	}
	filtered := map[int]bool{}
	for _, rec := range pa {
		for _, oi := range rec.FilteredObjs {
			filtered[oi] = true
		}
	}
	if !filtered[modAuth.Index] || !filtered[modCgi.Index] {
		t.Errorf("filtered objects %v missing plugin objects (%d, %d)", filtered, modAuth.Index, modCgi.Index)
	}
	if len(r.Monitors()) == 0 {
		t.Error("no monitors recorded for PA invariants")
	}
}

// The PA invariant must never filter unknown-type heap objects (§6).
const unknownHeapSrc = `
struct blob { int* f1; fn cb; }
int one(int* x) { return 1; }
int main() {
  char* p;
  int i;
  p = malloc(128);
  i = input();
  *(p + i) = 7;
  return 0;
}
`

func TestUnknownHeapNeverFiltered(t *testing.T) {
	r := analyze(t, unknownHeapSrc, invariant.All())
	for _, rec := range r.Invariants() {
		if rec.Kind == invariant.PA && len(rec.FilteredObjs) > 0 {
			t.Errorf("PA filtered objects despite unknown heap type: %+v", rec)
		}
	}
	// The arithmetic destination must still include the heap object.
	found := false
	for _, o := range r.Objects() {
		if o.Kind == ObjHeap && o.Insens {
			found = true
		}
	}
	if !found {
		t.Error("unknown-type heap object missing or not collapsed")
	}
}

// Figure 7 of the paper: heap imprecision creates a positive weight cycle.
const figure7 = `
struct compression_state { int* f1; int* f2; }
int sentinel1;
int sentinel2;

void* png_malloc() {
  return malloc(sizeof(compression_state));
}

int main() {
  compression_state** s1;
  int** q;
  compression_state* s2;
  int* b;
  compression_state* fresh;
  s1 = png_malloc();
  q = png_malloc();
  fresh = malloc(sizeof(compression_state));
  fresh->f1 = &sentinel1;
  *s1 = fresh;
  while (input()) {
    s2 = *s1;
    b = &s2->f2;
    *q = b;
  }
  return 0;
}
`

func TestFigure7PWCBaseline(t *testing.T) {
	r := analyze(t, figure7, invariant.Config{})
	if r.Stats().PWCs == 0 {
		t.Fatal("no PWC detected in the Figure 7 pattern")
	}
	// Baseline mitigation: the heap compression_state objects lose field
	// sensitivity, so f1's contents leak into f2 reads.
	var freshObj *Object
	for _, o := range r.Objects() {
		if o.Kind == ObjHeap && o.Fn == "main" && o.Type != nil && ir.BaseName(o.Type) == "compression_state" {
			freshObj = o
		}
	}
	if freshObj == nil {
		t.Fatal("fresh heap object not found")
	}
	if !freshObj.Insens {
		t.Error("baseline PWC handling should collapse the heap object")
	}
	if hasSentinelLeak := hasObj(r.SlotPointsTo(freshObj, 0), "@sentinel1"); !hasSentinelLeak {
		t.Error("collapsed object should conflate f1/f2 contents")
	}
}

func TestFigure7PWCOptimistic(t *testing.T) {
	r := analyze(t, figure7, invariant.Config{PWC: true})
	if r.Stats().PWCs == 0 {
		t.Fatal("no PWC detected")
	}
	var recs []invariant.Record
	for _, rec := range r.Invariants() {
		if rec.Kind == invariant.PWC {
			recs = append(recs, rec)
		}
	}
	if len(recs) == 0 {
		t.Fatal("no PWC invariant recorded")
	}
	if len(recs[0].CycleFieldSites) == 0 {
		t.Error("PWC record lists no field-access sites")
	}
	// Optimistic: the typed heap object keeps field sensitivity.
	for _, o := range r.Objects() {
		if o.Kind == ObjHeap && o.Fn == "main" && o.Type != nil && ir.BaseName(o.Type) == "compression_state" && o.Insens {
			t.Errorf("object %s lost field sensitivity despite PWC invariant", o.Label())
		}
	}
}

// Figure 8 of the paper: context insensitivity pollutes per-callsite
// callback registration.
const figure8 = `
struct ev_base { int count; int** cbs; }
ev_base global_base;
ev_base evdns_base;
int* slots1[4];
int* slots2[4];
int cb1;
int cb2;

void ev_queue_insert(ev_base* b, int* cb) {
  b->cbs[0] = cb;
}

int main() {
  int* got;
  global_base.cbs = slots1;
  evdns_base.cbs = slots2;
  ev_queue_insert(&global_base, &cb1);
  ev_queue_insert(&evdns_base, &cb2);
  got = global_base.cbs[0];
  return *got;
}
`

func TestFigure8CtxBaseline(t *testing.T) {
	r := analyze(t, figure8, invariant.Config{})
	s1 := r.ObjectByGlobal("slots1")
	refs := r.SlotPointsTo(s1, 0)
	if !hasObj(refs, "@cb1") || !hasObj(refs, "@cb2") {
		t.Fatalf("baseline PTS(slots1[0]) = %v, want cross-product {cb1, cb2}", objNames(refs))
	}
	stores, _ := r.CtxCandidates()
	if stores != 1 {
		t.Errorf("ctx candidate stores = %d, want 1", stores)
	}
}

func TestFigure8CtxOptimistic(t *testing.T) {
	r := analyze(t, figure8, invariant.Config{Ctx: true})
	s1 := r.ObjectByGlobal("slots1")
	s2 := r.ObjectByGlobal("slots2")
	refs1 := r.SlotPointsTo(s1, 0)
	refs2 := r.SlotPointsTo(s2, 0)
	if len(refs1) != 1 || refs1[0].Obj.Label() != "@cb1" {
		t.Errorf("PTS(slots1[0]) = %v, want {@cb1}", objNames(refs1))
	}
	if len(refs2) != 1 || refs2[0].Obj.Label() != "@cb2" {
		t.Errorf("PTS(slots2[0]) = %v, want {@cb2}", objNames(refs2))
	}
	var ctx []invariant.Record
	for _, rec := range r.Invariants() {
		if rec.Kind == invariant.Ctx {
			ctx = append(ctx, rec)
		}
	}
	if len(ctx) != 1 || len(ctx[0].Callsites) != 2 {
		t.Fatalf("ctx invariants = %+v, want 1 record with 2 callsites", ctx)
	}
}

// Context-sensitive return flow: an identity-style helper called from two
// sites must not mix its callers' results under the Ctx invariant.
const ctxRetSrc = `
int a;
int b;
int* pass_through(int* p) {
  return p;
}
int main() {
  int* x;
  int* y;
  x = pass_through(&a);
  y = pass_through(&b);
  return 0;
}
`

func TestCtxReturnFlow(t *testing.T) {
	base := analyze(t, ctxRetSrc, invariant.Config{})
	var xObj, yObj *Object
	for _, o := range base.Objects() {
		if o.Kind == ObjStack && o.Name == "x" {
			xObj = o
		}
		if o.Kind == ObjStack && o.Name == "y" {
			yObj = o
		}
	}
	if got := base.SlotPointsTo(xObj, 0); len(got) != 2 {
		t.Fatalf("baseline PTS(x) = %v, want both", objNames(got))
	}
	opt := analyze(t, ctxRetSrc, invariant.Config{Ctx: true})
	xObj, yObj = nil, nil
	for _, o := range opt.Objects() {
		if o.Kind == ObjStack && o.Name == "x" {
			xObj = o
		}
		if o.Kind == ObjStack && o.Name == "y" {
			yObj = o
		}
	}
	gx := opt.SlotPointsTo(xObj, 0)
	gy := opt.SlotPointsTo(yObj, 0)
	if len(gx) != 1 || gx[0].Obj.Label() != "@a" {
		t.Errorf("optimistic PTS(x) = %v, want {@a}", objNames(gx))
	}
	if len(gy) != 1 || gy[0].Obj.Label() != "@b" {
		t.Errorf("optimistic PTS(y) = %v, want {@b}", objNames(gy))
	}
}

// Address-taken functions are excluded from Ctx rewriting (their indirect
// callsites cannot be enumerated statically).
const ctxAddrTakenSrc = `
int a;
int b;
int* pick(int* p) { return p; }
int main() {
  fn f;
  int* x;
  int* y;
  f = &pick;
  x = pick(&a);
  y = pick(&b);
  x = f(&a);
  return 0;
}
`

func TestCtxSkipsAddressTakenFunctions(t *testing.T) {
	r := analyze(t, ctxAddrTakenSrc, invariant.Config{Ctx: true})
	for _, rec := range r.Invariants() {
		if rec.Kind == invariant.Ctx {
			t.Fatalf("ctx invariant recorded for address-taken function: %+v", rec)
		}
	}
}

// Indirect call targets resolve through stored function pointers.
const icallSrc = `
struct ops { fn open; fn close; }
ops g;
int do_open(int* x) { return 1; }
int do_close(int* x) { return 2; }
int unused(int* x) { return 3; }
int main() {
  g.open = &do_open;
  g.close = &do_close;
  return g.open(null);
}
`

func TestICallTargets(t *testing.T) {
	r := analyze(t, icallSrc, invariant.Config{})
	sites := r.ICallSites()
	if len(sites) != 1 {
		t.Fatalf("icall sites = %v", sites)
	}
	targets := r.CallTargets(sites[0])
	if len(targets) != 1 || targets[0] != "do_open" {
		t.Fatalf("targets = %v, want [do_open]", targets)
	}
}

// Indirect callee receives argument flow.
const icallArgSrc = `
int target;
int* sink;
int cb(int* p) {
  sink = p;
  return 0;
}
int main() {
  fn f;
  f = &cb;
  f(&target);
  return 0;
}
`

func TestICallArgumentFlow(t *testing.T) {
	r := analyze(t, icallArgSrc, invariant.Config{})
	sink := r.ObjectByGlobal("sink")
	refs := r.SlotPointsTo(sink, 0)
	if len(refs) != 1 || refs[0].Obj.Label() != "@target" {
		t.Fatalf("PTS(sink) = %v, want {@target}", objNames(refs))
	}
}

// Property: for every top-level pointer, the optimistic points-to set is a
// subset of the baseline set (optimism only removes derivations).
func TestOptimisticSubsetOfBaseline(t *testing.T) {
	srcs := map[string]string{
		"figure6": figure6, "figure7": figure7, "figure8": figure8,
		"ctxRet": ctxRetSrc, "icall": icallSrc,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			base := analyze(t, src, invariant.Config{})
			opt := analyze(t, src, invariant.All())
			for _, p := range base.TopLevelPointers() {
				baseRefs := map[string]bool{}
				var refs []ObjRef
				if p.Reg == "" {
					continue
				}
				refs = base.PointsTo(p.Fn, p.Reg)
				for _, ref := range refs {
					baseRefs[ref.Obj.Label()] = true
				}
				for _, ref := range opt.PointsTo(p.Fn, p.Reg) {
					if !baseRefs[ref.Obj.Label()] {
						t.Errorf("%s:%s optimistic target %s absent from baseline", p.Fn, p.Reg, ref.Obj.Label())
					}
				}
			}
		})
	}
}

// The average points-to size must shrink (or stay equal) under full
// Kaleidoscope on the imprecision-heavy fixtures.
func TestPrecisionImproves(t *testing.T) {
	for name, src := range map[string]string{"figure6": figure6, "figure8": figure8} {
		t.Run(name, func(t *testing.T) {
			base := analyze(t, src, invariant.Config{})
			opt := analyze(t, src, invariant.All())
			var bSum, oSum int
			for _, p := range base.TopLevelPointers() {
				bSum += base.SizeOf(p)
				oSum += opt.SizeOf(p)
			}
			if oSum > bSum {
				t.Errorf("optimistic total pts size %d > baseline %d", oSum, bSum)
			}
			if oSum == bSum {
				t.Errorf("no precision improvement on %s (both %d)", name, bSum)
			}
		})
	}
}

func TestStatsAndNodeCount(t *testing.T) {
	r := analyze(t, figure6, invariant.Config{})
	st := r.Stats()
	if st.Iterations == 0 || st.CopyEdges == 0 {
		t.Errorf("implausible stats: %+v", st)
	}
	if r.NodeCount() == 0 {
		t.Error("no nodes")
	}
}

// §6 heap-type propagation end-to-end: an allocation wrapper whose callers
// all pass sizeof(T) yields a typed, field-sensitive heap object that the PA
// invariant may filter; a wrapper with mixed sizes stays unknown and is
// never filtered.
const heapWrapperSrc = `
struct conn { fn handler; int* buf; }
int scratch[16];
int h1(int* x) { return 1; }

void* xalloc(int n) {
  return malloc(n);
}

void smear(char* p, int i) {
  *(p + i) = 0;
}

int main() {
  conn* c;
  char* p;
  c = xalloc(sizeof(conn));
  c->handler = &h1;
  p = scratch;
  if (input() % 7 == 9) {
    p = c;
  }
  smear(p, input() % 16);
  return c->handler(c->buf);
}
`

func TestHeapTypePropagationEnablesPAFiltering(t *testing.T) {
	r := analyze(t, heapWrapperSrc, invariant.Config{PA: true})
	// The wrapper-allocated conn object must be typed...
	var heapObj *Object
	for _, o := range r.Objects() {
		if o.Kind == ObjHeap {
			heapObj = o
		}
	}
	if heapObj == nil {
		t.Fatal("no heap object")
	}
	if heapObj.Type == nil || ir.BaseName(heapObj.Type) != "conn" {
		t.Fatalf("heap object type = %v, want conn", heapObj.Type)
	}
	if heapObj.Size != 2 {
		t.Fatalf("heap object size = %d, want 2 (field-sensitive)", heapObj.Size)
	}
	// ...and therefore filterable by the PA invariant.
	filtered := false
	for _, rec := range r.Invariants() {
		if rec.Kind == invariant.PA {
			for _, oi := range rec.FilteredObjs {
				if oi == heapObj.Index {
					filtered = true
				}
			}
		}
	}
	if !filtered {
		t.Error("typed heap object was not PA-filtered")
	}
}

const mixedWrapperSrc = `
struct a1 { fn f; int* p; }
struct a2 { int* q; fn g; int pad; }
int scratch[16];
int h1(int* x) { return 1; }

void* xalloc(int n) {
  return malloc(n);
}

void smear(char* p, int i) {
  *(p + i) = 0;
}

int main() {
  a1* x;
  a2* y;
  char* p;
  x = xalloc(sizeof(a1));
  y = xalloc(sizeof(a2));
  x->f = &h1;
  p = scratch;
  if (input() % 7 == 9) {
    p = x;
  }
  smear(p, input() % 16);
  return x->f(null);
}
`

func TestMixedWrapperNeverFiltered(t *testing.T) {
	r := analyze(t, mixedWrapperSrc, invariant.All())
	for _, o := range r.Objects() {
		if o.Kind == ObjHeap && o.Type != nil {
			t.Fatalf("mixed wrapper heap object got typed: %v", o.Type)
		}
	}
	for _, rec := range r.Invariants() {
		if rec.Kind == invariant.PA && len(rec.FilteredObjs) > 0 {
			for _, oi := range rec.FilteredObjs {
				if r.Objects()[oi].Kind == ObjHeap {
					t.Fatalf("unknown-type heap object filtered: %+v", rec)
				}
			}
		}
	}
}
