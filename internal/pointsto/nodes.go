// Package pointsto implements a field-sensitive, flow- and context-
// insensitive Andersen's inclusion-based pointer analysis over KIR, following
// the constraint model of Table 1 in the paper (Addr-Of, Copy, Load, Store,
// Field-Of), with online cycle detection and collapse, positive-weight-cycle
// handling per Pearce et al., and the paper's three optimistic
// likely-invariant policies (PA, PWC, Ctx) layered on top.
//
// One Analysis run produces one points-to collection; the IGO engine
// (internal/core) runs it twice — baseline and optimistic — to produce the
// fallback and optimistic memory views.
package pointsto

import (
	"fmt"

	"repro/internal/ir"
)

// ObjKind classifies abstract objects by allocation class.
type ObjKind int

// Abstract object classes.
const (
	ObjGlobal ObjKind = iota
	ObjStack
	ObjHeap
	ObjFunc
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjStack:
		return "stack"
	case ObjHeap:
		return "heap"
	case ObjFunc:
		return "func"
	}
	return fmt.Sprintf("ObjKind(%d)", int(k))
}

// Object is an abstract memory object (allocation site). Field-sensitive
// objects occupy Size consecutive slot nodes starting at NodeBase; slot k
// corresponds to FlattenedFields(Type)[k].
type Object struct {
	Index    int // position in Analysis.Objects()
	NodeBase int // node ID of slot 0
	Size     int // number of analysis slots
	Kind     ObjKind
	Name     string  // global/function name, or alloca variable name
	Site     int     // allocation instruction ID (0 for globals/functions)
	Fn       string  // containing function for stack/heap objects
	Type     ir.Type // nil for unknown-type heap objects
	Insens   bool    // true once the object has lost field sensitivity
}

// Label renders a stable human-readable identity for reports.
func (o *Object) Label() string {
	switch o.Kind {
	case ObjGlobal:
		return "@" + o.Name
	case ObjFunc:
		return o.Name + "()"
	case ObjStack:
		return fmt.Sprintf("%s/%s#%d", o.Fn, o.Name, o.Site)
	default:
		return fmt.Sprintf("heap@%s#%d", o.Fn, o.Site)
	}
}

type nodeKind uint8

const (
	nodeReg   nodeKind = iota // a register (top-level pointer variable)
	nodeRet                   // a function's return-value node
	nodeObj                   // one slot of an abstract object
	nodeDummy                 // per-callsite dummy node for Ctx wiring
)

// node is one vertex of the constraint graph.
type node struct {
	kind nodeKind
	fn   string // nodeReg/nodeRet: owning function
	reg  string // nodeReg: register name
	obj  int32  // nodeObj: object index
	slot int32  // nodeObj: slot within the object
}

func (a *Analysis) describeNode(id int) string {
	n := a.nodes[id]
	switch n.kind {
	case nodeReg:
		return fmt.Sprintf("%s:%s", n.fn, n.reg)
	case nodeRet:
		return fmt.Sprintf("ret(%s)", n.fn)
	case nodeObj:
		o := a.objects[n.obj]
		if o.Size == 1 || n.slot == 0 {
			return o.Label()
		}
		if o.Type != nil {
			flat := ir.FlattenedFields(o.Type)
			if int(n.slot) < len(flat) {
				return o.Label() + "." + flat[n.slot].Path
			}
		}
		return fmt.Sprintf("%s+%d", o.Label(), n.slot)
	default:
		return fmt.Sprintf("dummy%d", id)
	}
}

// find resolves the union-find representative of node x with path
// compression.
func (a *Analysis) find(x int) int {
	for a.rep[x] != int32(x) {
		a.rep[x] = a.rep[a.rep[x]]
		x = int(a.rep[x])
	}
	return x
}

// newNode appends a node and its empty points-to set.
func (a *Analysis) newNode(n node) int {
	id := len(a.nodes)
	a.nodes = append(a.nodes, n)
	a.rep = append(a.rep, int32(id))
	a.pts = append(a.pts, nil)
	a.delta = append(a.delta, nil)
	a.copyTo = append(a.copyTo, nil)
	a.gepTo = append(a.gepTo, nil)
	a.loadTo = append(a.loadTo, nil)
	a.storeFrom = append(a.storeFrom, nil)
	a.arithTo = append(a.arithTo, nil)
	a.icallsAt = append(a.icallsAt, nil)
	if a.hcdAt != nil {
		a.hcdAt = append(a.hcdAt, nil)
	}
	return id
}

type regKey struct{ fn, reg string }

// regNode returns (creating on demand) the node for register reg of fn.
func (a *Analysis) regNode(fn, reg string) int {
	k := regKey{fn, reg}
	if id, ok := a.regNodes[k]; ok {
		return id
	}
	id := a.newNode(node{kind: nodeReg, fn: fn, reg: reg})
	a.regNodes[k] = id
	return id
}

// retNode returns (creating on demand) the return-value node of fn.
func (a *Analysis) retNode(fn string) int {
	if id, ok := a.retNodes[fn]; ok {
		return id
	}
	id := a.newNode(node{kind: nodeRet, fn: fn})
	a.retNodes[fn] = id
	return id
}

// newObject creates an abstract object with the given layout and returns it.
func (a *Analysis) newObject(kind ObjKind, name, fn string, site int, t ir.Type) *Object {
	size := 1
	if t != nil {
		size = a.layouts.Of(t).AnalysisSize
	}
	o := &Object{
		Index: len(a.objects),
		Kind:  kind,
		Name:  name,
		Fn:    fn,
		Site:  site,
		Type:  t,
		Size:  size,
	}
	o.NodeBase = len(a.nodes)
	for s := 0; s < size; s++ {
		a.newNode(node{kind: nodeObj, obj: int32(o.Index), slot: int32(s)})
	}
	a.objects = append(a.objects, o)
	if t == nil && kind == ObjHeap {
		// Unknown-type heap objects are modeled as a single collapsed slot:
		// any field access resolves to the base (sound, imprecise), and §6's
		// rule says the PA invariant never filters them.
		o.Insens = true
	}
	return o
}

// objOfNode returns the Object that node id (an object slot node) belongs to,
// or nil for non-object nodes.
func (a *Analysis) objOfNode(id int) *Object {
	n := a.nodes[id]
	if n.kind != nodeObj {
		return nil
	}
	return a.objects[n.obj]
}

// fieldTarget resolves Pearce-style weighted propagation: the node denoting
// slot (node's slot + off) of the same object, or -1 when the access runs off
// the object (out-of-bounds derivations are dropped, as in SVF). For
// field-insensitive objects the base node stands for every slot.
//
// The returned id is the CONCRETE object-slot node (never a union-find
// representative): points-to sets always hold concrete object identities so
// cycle collapse cannot conflate distinct objects in reported results.
// Content propagation still flows through representatives (addCopy/unionPts
// resolve reps internally).
func (a *Analysis) fieldTarget(objNode, off int) int {
	n := a.nodes[objNode]
	if n.kind != nodeObj {
		return -1
	}
	o := a.objects[n.obj]
	if o.Insens {
		return o.NodeBase
	}
	t := int(n.slot) + off
	if t < 0 || t >= o.Size {
		return -1
	}
	return o.NodeBase + t
}

// makeFieldInsensitive merges every slot node of o into its base node.
func (a *Analysis) makeFieldInsensitive(o *Object) {
	if o.Insens {
		return
	}
	o.Insens = true
	a.stats.FieldCollapses++
	base := o.NodeBase
	for s := 1; s < o.Size; s++ {
		a.union(base, base+s)
	}
	a.reseedSlotHolders(o)
}

// reseedSlotHolders reschedules every node whose points-to set already holds
// a slot of o. Collapsing changes how those pointees resolve — fieldTarget
// now maps every slot to the base, and the slot reps were just merged — so
// constraints that consumed them before the collapse must re-derive through
// the new resolution. Collapses are rare (FieldCollapses stat), so the full
// node scan is the right trade; without it, the post-collapse fixed point
// depends on the iteration strategy (wave revisits every node and heals,
// the worklist does not).
func (a *Analysis) reseedSlotHolders(o *Object) {
	if o.Size <= 1 {
		return
	}
	for n := range a.nodes {
		if a.find(n) != n || a.pts[n] == nil {
			continue
		}
		for s := 0; s < o.Size; s++ {
			if a.pts[n].Has(o.NodeBase + s) {
				a.seedDelta(n)
				break
			}
		}
	}
}
