package pointsto

import (
	"context"
	"errors"
	"testing"

	"repro/internal/invariant"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestTopoOrderLevels pins the level contract topoOrder guarantees to the
// parallel solver: order is a permutation of the representative nodes, starts
// brackets it into contiguous levels, and every forward copy/gep edge whose
// endpoints both appear in the order crosses from its level into a strictly
// later one — so the nodes of one level share no forward edges among
// themselves.
func TestTopoOrderLevels(t *testing.T) {
	for _, app := range workload.Apps()[:6] {
		t.Run(app.Name, func(t *testing.T) {
			a := New(app.MustModule(), invariant.All())
			a.sccPass()
			order, starts := a.topoOrder()

			reps := 0
			for n := range a.nodes {
				if a.find(n) == n {
					reps++
				}
			}
			if len(order) != reps {
				t.Fatalf("order has %d nodes, want %d representatives", len(order), reps)
			}
			if len(starts) < 2 || starts[0] != 0 || starts[len(starts)-1] != len(order) {
				t.Fatalf("starts = %v does not bracket order of %d nodes", starts, len(order))
			}
			levelOf := map[int]int{}
			pos := map[int]int{}
			for li := 0; li+1 < len(starts); li++ {
				if starts[li] >= starts[li+1] {
					t.Fatalf("level %d is empty (starts %v)", li, starts)
				}
				for _, n := range order[starts[li]:starts[li+1]] {
					if _, dup := levelOf[n]; dup {
						t.Fatalf("node %d appears twice in order", n)
					}
					levelOf[n] = li
				}
			}
			for i, n := range order {
				pos[n] = i
			}
			for _, v := range order {
				check := func(raw int) {
					w := a.find(raw)
					// Back edges (residual cycles broken by the DFS) are
					// exempt: levels only order the forward subgraph.
					if w == v || pos[w] <= pos[v] {
						return
					}
					if levelOf[w] <= levelOf[v] {
						t.Fatalf("forward edge %d(level %d) -> %d(level %d) does not cross levels",
							v, levelOf[v], w, levelOf[w])
					}
				}
				for _, to := range a.copyTo[v] {
					check(int(to))
				}
				for _, e := range a.gepTo[v] {
					check(int(e.to))
				}
			}
		})
	}
}

// TestParallelDeterminism asserts run-to-run determinism of the parallel
// strategy: gather is pure and apply is ordered, so worker scheduling must
// not leak into the result.
func TestParallelDeterminism(t *testing.T) {
	for _, app := range workload.Apps()[:4] {
		t.Run(app.Name, func(t *testing.T) {
			m := app.MustModule()
			ref := fingerprint(solveStrategy(m, invariant.All(), false, 8, true, true))
			for run := 1; run < 5; run++ {
				if got := fingerprint(solveStrategy(m, invariant.All(), false, 8, true, true)); got != ref {
					t.Fatalf("run %d differs from run 0:\n%s", run, diffLines(ref, got))
				}
			}
		})
	}
}

// The parallel strategy obeys the same budget contract as the sequential
// solvers: a typed abort at a level barrier, never a partial result, and a
// resumed solve converging to the byte-identical fixpoint.
func TestParallelSolveBudget(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	clean := New(m, invariant.All())
	clean.SetParallel(4)
	want := fingerprint(clean.Solve())
	a := New(m, invariant.All())
	a.SetParallel(4)
	if r, err := a.SolveCtx(context.Background(), Budget{MaxSteps: 5}); r != nil || !errors.Is(err, ErrSolveAborted) {
		t.Fatalf("parallel budget abort: r=%v err=%v", r, err)
	}
	r, err := a.SolveCtx(context.Background(), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(r) != want {
		t.Fatal("resumed parallel fixpoint differs from uninterrupted parallel solve")
	}
}

// TestParallelBudgetedResumes drives the parallel strategy through many
// abort/resume cycles, as TestBudgetedSolveResumes does for the worklist, and
// additionally requires the converged fixpoint to match the sequential one.
func TestParallelBudgetedResumes(t *testing.T) {
	for _, app := range workload.Apps()[:4] {
		t.Run(app.Name, func(t *testing.T) {
			m := app.MustModule()
			want := fingerprint(New(m, invariant.All()).Solve())
			a := New(m, invariant.All())
			a.SetParallel(8)
			aborts := 0
			for {
				r, err := a.SolveCtx(context.Background(), Budget{MaxSteps: 40})
				if err == nil {
					if got := fingerprint(r); got != want {
						t.Fatalf("fixpoint after %d aborted resumes differs from sequential solve:\n%s",
							aborts, diffLines(want, got))
					}
					break
				}
				if !errors.Is(err, ErrSolveAborted) {
					t.Fatalf("unexpected error: %v", err)
				}
				aborts++
				if aborts > 10000 {
					t.Fatal("solve never converges under repeated 40-step budgets")
				}
			}
			if aborts == 0 {
				t.Error("solve finished inside the first 40-step budget; test exercised nothing")
			}
		})
	}
}

// TestParallelTelemetry asserts the fan-out instrumentation: level-width
// samples are recorded for every level of every wave, the round spans use the
// parallel name, and — on a module wide enough to spawn workers — worker
// occupancy is observed. Concurrent snapshot reads while the solve runs lock
// down the registry's race-safety from solver goroutines (run under -race by
// the race-parallel make target).
func TestParallelTelemetry(t *testing.T) {
	m := workload.ScaledApps()[0].MustModule() // randprog-1k: wide levels
	reg := telemetry.New()
	a := New(m, invariant.All())
	a.SetParallel(8)
	a.SetMetrics(reg)

	done := make(chan struct{})
	go func() {
		// Poll snapshots concurrently with the solve: every counter,
		// histogram, and gauge the solver workers touch must be safe to read
		// mid-flight.
		for {
			select {
			case <-done:
				close(done)
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	a.Solve()
	done <- struct{}{}
	<-done

	if got := reg.Histogram("pointsto/parallel/level-width").Count(); got == 0 {
		t.Error("no level-width samples recorded")
	}
	if got := reg.Histogram("pointsto/parallel/worker-occupancy").Count(); got == 0 {
		t.Error("no worker-occupancy samples recorded; levels never spawned workers")
	}
	snap := reg.Snapshot()
	foundRound := false
	for _, s := range snap.Spans {
		if s.Name == "pointsto/round/parallel" {
			foundRound = true
			break
		}
	}
	if !foundRound {
		t.Error("no pointsto/round/parallel spans recorded")
	}
}

// TestParallelTracerFallsBack pins the tracer contract: an installed tracer
// forces the sequential wave (tracer callbacks are synchronous and
// order-sensitive), and the traced events still arrive.
func TestParallelTracerFallsBack(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	want := fingerprint(solveStrategy(m, invariant.All(), false, 4, true, true))
	a := New(m, invariant.All())
	a.SetParallel(4)
	a.SetDelta(true)
	a.SetPrep(true)
	tr := &countingTracer{}
	a.SetTracer(tr)
	if got := fingerprint(a.Solve()); got != want {
		t.Fatalf("traced parallel-configured solve diverges:\n%s", diffLines(want, got))
	}
	if tr.growth == 0 {
		t.Error("tracer received no growth events from the fallback solve")
	}
}

type countingTracer struct {
	growth int
	cycles int
}

func (c *countingTracer) Growth(GrowthEvent) { c.growth++ }
func (c *countingTracer) Cycle(int, bool)    { c.cycles++ }
