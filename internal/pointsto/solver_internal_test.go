package pointsto

import (
	"fmt"
	"testing"

	"repro/internal/invariant"
	"repro/internal/minic"
	"repro/internal/workload"
)

// Determinism: two runs over the same module must produce identical results
// (object order, points-to sets, invariants, callsite targets).
func TestSolveDeterministic(t *testing.T) {
	for _, app := range workload.Apps()[:4] {
		t.Run(app.Name, func(t *testing.T) {
			m := app.MustModule()
			r1 := New(m, invariant.All()).Solve()
			r2 := New(m, invariant.All()).Solve()
			if len(r1.Objects()) != len(r2.Objects()) {
				t.Fatalf("object counts differ: %d vs %d", len(r1.Objects()), len(r2.Objects()))
			}
			for i, o := range r1.Objects() {
				if o.Label() != r2.Objects()[i].Label() || o.Insens != r2.Objects()[i].Insens {
					t.Fatalf("object %d differs: %s/%v vs %s/%v", i,
						o.Label(), o.Insens, r2.Objects()[i].Label(), r2.Objects()[i].Insens)
				}
			}
			for _, p := range r1.TopLevelPointers() {
				if p.Reg == "" {
					continue
				}
				a := fmt.Sprint(r1.PointsTo(p.Fn, p.Reg))
				b := fmt.Sprint(r2.PointsTo(p.Fn, p.Reg))
				if a != b {
					t.Fatalf("%s:%s differs:\n%s\nvs\n%s", p.Fn, p.Reg, a, b)
				}
			}
			if fmt.Sprint(r1.Invariants()) != fmt.Sprint(r2.Invariants()) {
				t.Fatal("invariant lists differ")
			}
			for _, site := range r1.ICallSites() {
				if fmt.Sprint(r1.CallTargets(site)) != fmt.Sprint(r2.CallTargets(site)) {
					t.Fatalf("targets at %d differ", site)
				}
			}
		})
	}
}

// The cycle-elimination ablation: disabling copy-cycle collapse must not
// change any points-to result, only the solve cost.
func TestNaiveSolverMatchesCollapsing(t *testing.T) {
	for _, app := range workload.Apps() {
		t.Run(app.Name, func(t *testing.T) {
			m := app.MustModule()
			for _, cfg := range []invariant.Config{{}, invariant.All()} {
				fast := New(m, cfg).Solve()
				slow := New(m, cfg)
				slow.SetNaive(true)
				slowR := slow.Solve()
				for _, p := range fast.TopLevelPointers() {
					if p.Reg == "" {
						continue
					}
					a := fmt.Sprint(fast.PointsTo(p.Fn, p.Reg))
					b := fmt.Sprint(slowR.PointsTo(p.Fn, p.Reg))
					if a != b {
						t.Fatalf("%s (%s): %s:%s differs:\nfast %s\nnaive %s",
							app.Name, cfg.Name(), p.Fn, p.Reg, a, b)
					}
				}
				for _, site := range fast.ICallSites() {
					if fmt.Sprint(fast.CallTargets(site)) != fmt.Sprint(slowR.CallTargets(site)) {
						t.Fatalf("%s: icall %d differs", app.Name, site)
					}
				}
			}
		})
	}
}

// Pearce field saturation: out-of-bounds field derivations are dropped, so
// deep gep chains terminate even with the PWC invariant (no collapse).
func TestPWCDeferralTerminates(t *testing.T) {
	// A direct self-referential positive cycle: p = &(p->next)-style flow via
	// memory. The solver must converge (bounded by struct size).
	src := `
struct node { int v; node* next; int* data; }
void* arena() { return malloc(sizeof(node)); }
int main() {
  node* p;
  node** slot;
  node* q;
  node** conf;
  slot = arena();
  conf = arena();
  p = arena();
  *slot = p;
  while (input()) {
    q = *slot;
    conf = &q->next;
    *slot = *conf;
  }
  return 0;
}
`
	m, err := minic.Compile("pwc-term", src)
	if err != nil {
		t.Fatal(err)
	}
	r := New(m, invariant.Config{PWC: true}).Solve()
	if r.Stats().Iterations > 100000 {
		t.Fatalf("suspiciously many iterations: %d", r.Stats().Iterations)
	}
}

// Union-find invariants after solving: find is idempotent, reps are roots.
func TestUnionFindConsistency(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	a := New(m, invariant.Config{})
	a.Solve()
	for i := range a.nodes {
		r := a.find(i)
		if a.find(r) != r {
			t.Fatalf("rep of %d is not a root", i)
		}
	}
}

// Field-insensitive objects report slot 0 for every element.
func TestInsensSlotCanonicalization(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	r := New(m, invariant.Config{}).Solve()
	insensSeen := false
	for _, o := range r.Objects() {
		if !o.Insens || o.Size <= 1 {
			continue
		}
		insensSeen = true
		for s := 0; s < o.Size; s++ {
			for _, ref := range r.SlotPointsTo(o, s) {
				if ref.Obj.Insens && ref.Slot != 0 {
					t.Fatalf("insens object %s reported at slot %d", ref.Obj.Label(), ref.Slot)
				}
			}
		}
	}
	if !insensSeen {
		t.Skip("no collapsed multi-slot objects in baseline mbedtls")
	}
}

// Stats sanity across all workloads and configs.
func TestStatsSanity(t *testing.T) {
	for _, app := range workload.Apps() {
		m := app.MustModule()
		for _, cfg := range invariant.Ablations() {
			r := New(m, cfg).Solve()
			st := r.Stats()
			if st.Iterations <= 0 || st.CopyEdges <= 0 {
				t.Errorf("%s/%s: degenerate stats %+v", app.Name, cfg.Name(), st)
			}
			if cfg.PWC && st.FieldCollapses > 0 {
				// PWC deferral avoids collapses UNLESS the PA channel (off
				// here only when !cfg.PA) collapsed arrays-of-structs or
				// unknown-size effects; full config may still collapse via
				// non-filterable objects.
				continue
			}
			if len(r.Monitors()) != st.MonitorSites {
				t.Errorf("%s/%s: monitor count mismatch: %d vs %d",
					app.Name, cfg.Name(), len(r.Monitors()), st.MonitorSites)
			}
		}
	}
}

// The measurement population is identical across configurations (required
// for Table 3 comparability).
func TestPopulationStableAcrossConfigs(t *testing.T) {
	m := workload.Libxml().MustModule()
	base := New(m, invariant.Config{}).Solve()
	pop := base.TopLevelPointers()
	distinctObjs := func(r *Result, p PtrRef) map[string]bool {
		out := map[string]bool{}
		if p.Reg == "" {
			return out
		}
		for _, ref := range r.PointsTo(p.Fn, p.Reg) {
			out[ref.Obj.Label()] = true
		}
		return out
	}
	for _, cfg := range invariant.Ablations()[1:] {
		r := New(m, cfg).Solve()
		for _, p := range pop {
			// Object-level subset: optimism only removes objects. (Slot-level
			// counts may grow under PWC deferral, which keeps distinct field
			// elements that the baseline collapse merges.)
			b := distinctObjs(base, p)
			for label := range distinctObjs(r, p) {
				if !b[label] {
					t.Errorf("%s: %v gained object %s under %s", m.Name, p, label, cfg.Name())
				}
			}
		}
	}
}

// Wave propagation must produce identical results to the worklist solver on
// every workload and configuration.
func TestWaveSolverMatchesWorklist(t *testing.T) {
	for _, app := range workload.Apps() {
		t.Run(app.Name, func(t *testing.T) {
			m := app.MustModule()
			for _, cfg := range []invariant.Config{{}, invariant.All()} {
				wl := New(m, cfg).Solve()
				wv := New(m, cfg)
				wv.SetWave(true)
				wvR := wv.Solve()
				for _, p := range wl.TopLevelPointers() {
					if p.Reg == "" {
						continue
					}
					a := fmt.Sprint(wl.PointsTo(p.Fn, p.Reg))
					b := fmt.Sprint(wvR.PointsTo(p.Fn, p.Reg))
					if a != b {
						t.Fatalf("%s (%s): %s:%s differs:\nworklist %s\nwave %s",
							app.Name, cfg.Name(), p.Fn, p.Reg, a, b)
					}
				}
				for _, site := range wl.ICallSites() {
					if fmt.Sprint(wl.CallTargets(site)) != fmt.Sprint(wvR.CallTargets(site)) {
						t.Fatalf("%s (%s): icall %d differs", app.Name, cfg.Name(), site)
					}
				}
				if fmt.Sprint(wl.Invariants()) != fmt.Sprint(wvR.Invariants()) {
					t.Fatalf("%s (%s): invariants differ", app.Name, cfg.Name())
				}
			}
		})
	}
}
