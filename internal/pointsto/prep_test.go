package pointsto

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/minic"
	"repro/internal/workload"
)

func prepSolve(t *testing.T, src string, cfg invariant.Config, prep bool) (*Result, Stats) {
	t.Helper()
	m, err := minic.Compile("prep", src)
	if err != nil {
		t.Fatal(err)
	}
	a := New(m, cfg)
	a.SetPrep(prep)
	r := a.Solve()
	return r, r.Stats()
}

// Register-level copy chains (direct call parameter/return wiring) are the
// HVN substitution target: pick2/pick3 thread a pointer through several
// pointer-equivalent registers.
const chainSrc = `
int x;
int y;
int* pick2(int* p) { return p; }
int* pick3(int* p) { return pick2(p); }
int main() {
  int* a;
  int* b;
  a = &x;
  if (input() % 2 == 0) { a = &y; }
  b = pick3(a);
  a = pick3(b);
  return *a + *b;
}
`

func TestPrepMergesEquivalentNodes(t *testing.T) {
	rOn, sOn := prepSolve(t, chainSrc, invariant.Config{}, true)
	rOff, _ := prepSolve(t, chainSrc, invariant.Config{}, false)
	if sOn.PrepMerged+sOn.HCDCollapses == 0 {
		t.Errorf("prep found nothing to merge offline: %+v", sOn)
	}
	assertSameResult(t, rOff, rOn)
}

// MiniC locals live in memory, so the mutual assignment of p and q below is
// a copy cycle through loads and stores — invisible to offline value
// numbering over registers, but predicted exactly by the offline HCD ref
// graph and collapsed online in O(1) when the stack objects arrive.
const hcdSrc = `
int x;
int main() {
  int* p;
  int* q;
  p = &x;
  while (input()) {
    q = p;
    p = q;
  }
  return *p;
}
`

func TestHCDCollapsesMemoryCycle(t *testing.T) {
	rOn, sOn := prepSolve(t, hcdSrc, invariant.Config{}, true)
	rOff, _ := prepSolve(t, hcdSrc, invariant.Config{}, false)
	if sOn.HCDCollapses == 0 {
		t.Errorf("no online HCD collapses on a memory cycle: %+v", sOn)
	}
	assertSameResult(t, rOff, rOn)
}

// TestPrepRespectsPWCPolicy: on a PWC-heavy app (mbedtls's heap wrappers),
// prep must defer merges that would cross Field-Of edge groups
// (PrepDeferred > 0) so the optimistic policy sees every positive-weight
// cycle intact, and the invariant records must be identical with prep on
// and off under every configuration.
func TestPrepRespectsPWCPolicy(t *testing.T) {
	src := workload.MbedTLS().Source
	for _, cfg := range []invariant.Config{{}, {PWC: true}, {PA: true, PWC: true, Ctx: true}} {
		rOn, sOn := prepSolve(t, src, cfg, true)
		rOff, sOff := prepSolve(t, src, cfg, false)
		if sOn.PrepDeferred == 0 {
			t.Errorf("cfg %+v: prep deferred no merges on a PWC-heavy app", cfg)
		}
		if cfg.PWC && (sOn.PWCs == 0 || sOn.PWCs != sOff.PWCs) {
			t.Errorf("cfg %+v: PWC count diverged: prep %d, no-prep %d", cfg, sOn.PWCs, sOff.PWCs)
		}
		assertSameResult(t, rOff, rOn)
		recsOn := rOn.Invariants()
		recsOff := rOff.Invariants()
		if len(recsOn) != len(recsOff) {
			t.Errorf("cfg %+v: %d invariant records with prep, %d without", cfg, len(recsOn), len(recsOff))
		}
	}
}

// assertSameResult compares the externally observable fixpoints of two runs
// via the differential-oracle fingerprint.
func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	fw, fg := fingerprint(want), fingerprint(got)
	if fw != fg {
		t.Errorf("results diverge:\n%s", diffLines(fw, fg))
	}
}

// TestDeltaAutoMode: below the threshold, auto mode must disable delta
// bookkeeping; an explicit SetDelta(true) overrides it.
func TestDeltaAutoMode(t *testing.T) {
	m, err := minic.Compile("auto", chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	auto := New(m, invariant.Config{})
	auto.Solve()
	if !auto.noDelta {
		t.Errorf("auto mode kept delta bookkeeping on a %d-node graph (threshold %d)",
			len(auto.nodes), DeltaAutoThreshold)
	}
	forced := New(m, invariant.Config{})
	forced.SetDelta(true)
	forced.Solve()
	if forced.noDelta {
		t.Error("SetDelta(true) did not override auto mode")
	}
	off := New(m, invariant.Config{})
	off.SetDelta(false)
	off.Solve()
	if !off.noDelta {
		t.Error("SetDelta(false) did not disable delta")
	}
}

// TestSetDefaultPrep: the package default gates New, and restoring it works.
func TestSetDefaultPrep(t *testing.T) {
	m, err := minic.Compile("dflt", chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetDefaultPrep(false)
	defer SetDefaultPrep(prev)
	a := New(m, invariant.Config{})
	a.Solve()
	if st := a.stats; st.PrepMerged+st.HCDCollapses+st.LCDCollapses != 0 {
		t.Errorf("SetDefaultPrep(false) run still preprocessed: %+v", st)
	}
	SetDefaultPrep(true)
	b := New(m, invariant.Config{})
	b.Solve()
	if st := b.stats; st.PrepMerged+st.HCDCollapses == 0 {
		t.Errorf("SetDefaultPrep(true) run did not preprocess: %+v", st)
	}
}
