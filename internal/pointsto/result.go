package pointsto

import (
	"sort"

	"repro/internal/invariant"
	"repro/internal/ir"
)

// PtrRef names a top-level pointer (a register or return-value node).
type PtrRef struct {
	Fn  string
	Reg string // "" for the function's return node
}

// ObjRef names one element of a points-to set: an abstract object plus the
// analysis slot within it (0 for the base or single-slot objects).
type ObjRef struct {
	Obj  *Object
	Slot int
}

// Result is an immutable view over a finished Analysis.
type Result struct {
	a *Analysis
}

func newResult(a *Analysis) *Result { return &Result{a: a} }

// Config returns the invariant configuration the result was computed under.
func (r *Result) Config() invariant.Config { return r.a.cfg }

// Module returns the analyzed module.
func (r *Result) Module() *ir.Module { return r.a.mod }

// Stats returns solver statistics.
func (r *Result) Stats() Stats { return r.a.stats }

// Invariants returns the likely invariants currently assumed by this
// analysis (empty for the baseline; shrinks after Restore calls).
func (r *Result) Invariants() []invariant.Record {
	recs, _ := r.a.invariantRecords()
	return recs
}

// Monitors returns the runtime monitor sites implied by the invariants.
func (r *Result) Monitors() []invariant.Monitor {
	_, mons := r.a.invariantRecords()
	return mons
}

// Objects returns all abstract objects in deterministic order.
func (r *Result) Objects() []*Object { return r.a.objects }

// ObjectBySite returns the abstract object allocated at instruction id
// (alloca or malloc sites), or nil.
func (r *Result) ObjectBySite(id int) *Object { return r.a.objBySite[id] }

// ObjectByGlobal returns the abstract object of a global, or nil.
func (r *Result) ObjectByGlobal(name string) *Object { return r.a.objByGlobal[name] }

// ObjectByFunc returns the abstract object of a function, or nil.
func (r *Result) ObjectByFunc(name string) *Object { return r.a.objByFunc[name] }

// canonicalRefs converts a raw points-to set into deduplicated ObjRefs.
// Elements are always concrete object-slot node ids; slots of objects that
// lost field sensitivity collapse onto slot 0. Representative lookups use
// the read-only find so a finished Result can serve concurrent readers.
//
// Serialization must never depend on set representation: this reads the set
// only through ForEach (never Elements, whose backing slice an interned set
// shares with other holders) and builds fresh, independently sorted output,
// so inline, bit-vector, and hash-consed shared sets all render identically
// — the golden -intern leg in cmd/kscope-bench pins this byte for byte.
func (r *Result) canonicalRefs(ptsNode int) []ObjRef {
	a := r.a
	n := a.findRead(ptsNode)
	if a.pts[n] == nil {
		return nil
	}
	seen := map[int64]bool{}
	var out []ObjRef
	a.pts[n].ForEach(func(o int) bool {
		nn := a.nodes[o]
		if nn.kind != nodeObj {
			return true
		}
		obj := a.objects[nn.obj]
		slot := int(nn.slot)
		if obj.Insens {
			slot = 0
		}
		key := int64(obj.Index)<<32 | int64(slot)
		if seen[key] {
			return true
		}
		seen[key] = true
		out = append(out, ObjRef{Obj: obj, Slot: slot})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.Index != out[j].Obj.Index {
			return out[i].Obj.Index < out[j].Obj.Index
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// PointsTo returns the canonical points-to set of register reg in function
// fn.
func (r *Result) PointsTo(fn, reg string) []ObjRef {
	id, ok := r.a.regNodes[regKey{fn, reg}]
	if !ok {
		return nil
	}
	return r.canonicalRefs(id)
}

// PointsToSize returns the canonical points-to set size of a register.
func (r *Result) PointsToSize(fn, reg string) int { return len(r.PointsTo(fn, reg)) }

// SlotPointsTo returns the points-to set stored in slot of object obj (what
// a load through that field would yield).
func (r *Result) SlotPointsTo(obj *Object, slot int) []ObjRef {
	if obj.Insens || slot >= obj.Size {
		slot = 0
	}
	return r.canonicalRefs(obj.NodeBase + slot)
}

// PointsToContains reports whether the points-to set of (fn, reg) includes
// any slot of object target.
func (r *Result) PointsToContains(fn, reg string, target *Object) bool {
	for _, ref := range r.PointsTo(fn, reg) {
		if ref.Obj == target {
			return true
		}
	}
	return false
}

// TopLevelPointers enumerates every register and return-value node with a
// non-empty points-to set, in deterministic order. This is the population
// whose set sizes Table 3 reports.
func (r *Result) TopLevelPointers() []PtrRef {
	var out []PtrRef
	for k, id := range r.a.regNodes {
		if len(r.canonicalRefs(id)) > 0 {
			out = append(out, PtrRef{Fn: k.fn, Reg: k.reg})
		}
	}
	for fn, id := range r.a.retNodes {
		if len(r.canonicalRefs(id)) > 0 {
			out = append(out, PtrRef{Fn: fn})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Reg < out[j].Reg
	})
	return out
}

// ReturnPointsTo returns the canonical points-to set of fn's return-value
// node (the PtrRef with an empty Reg), or nil if fn has none.
func (r *Result) ReturnPointsTo(fn string) []ObjRef {
	id, ok := r.a.retNodes[fn]
	if !ok {
		return nil
	}
	return r.canonicalRefs(id)
}

// SizeOf returns the canonical points-to set size of a PtrRef.
func (r *Result) SizeOf(p PtrRef) int {
	if p.Reg == "" {
		id, ok := r.a.retNodes[p.Fn]
		if !ok {
			return 0
		}
		return len(r.canonicalRefs(id))
	}
	return len(r.PointsTo(p.Fn, p.Reg))
}

// ICallSites returns the instruction IDs of all indirect callsites.
func (r *Result) ICallSites() []int {
	var out []int
	for _, s := range r.a.icallSites {
		out = append(out, int(s.site))
	}
	sort.Ints(out)
	return out
}

// CallTargets returns the function names this analysis permits at the given
// indirect callsite, sorted. This is the CFI target set for the site.
func (r *Result) CallTargets(site int) []string {
	for _, s := range r.a.icallSites {
		if int(s.site) != site {
			continue
		}
		var out []string
		for _, ref := range r.canonicalRefs(int(s.fptr)) {
			if ref.Obj.Kind == ObjFunc {
				out = append(out, ref.Obj.Name)
			}
		}
		sort.Strings(out)
		return out
	}
	return nil
}

// PAFilteredAt returns the object indexes the PA invariant filtered at a
// PtrAdd site (empty at baseline).
func (r *Result) PAFilteredAt(site int) []int {
	var out []int
	for oi := range r.a.paFiltered[site] {
		out = append(out, oi)
	}
	sort.Ints(out)
	return out
}

// CtxCandidates reports how many precision-critical stores and returns the
// pre-pass found (independent of whether the Ctx policy was enabled).
func (r *Result) CtxCandidates() (stores, rets int) {
	return len(r.a.ctxPlan.stores), len(r.a.ctxPlan.rets)
}

// Provenance returns up to five recorded derivations explaining how object
// slot node obj entered pts(node of fn:reg); available only when a tracer
// was installed before Solve.
func (r *Result) Provenance(fn, reg string, obj *Object, slot int) []Origin {
	id, ok := r.a.regNodes[regKey{fn, reg}]
	if !ok || r.a.provs == nil {
		return nil
	}
	entries := r.a.provs[provKey{int32(r.a.findRead(id)), int32(obj.NodeBase + slot)}]
	var out []Origin
	for _, e := range entries {
		out = append(out, Origin{Site: int(e.site), Trigger: int(e.srcNode)})
	}
	return out
}

// Backtrack walks derivation provenance from (fn, reg, obj) toward primitive
// constraints, up to five levels (§4.1), returning the constraint sites
// encountered (most recent derivation first).
func (r *Result) Backtrack(fn, reg string, obj *Object) []int {
	a := r.a
	if a.provs == nil {
		return nil
	}
	id, ok := a.regNodes[regKey{fn, reg}]
	if !ok {
		return nil
	}
	var sites []int
	cur := int32(a.findRead(id))
	target := int32(obj.NodeBase)
	for level := 0; level < 5; level++ {
		entries := a.provs[provKey{cur, target}]
		if len(entries) == 0 {
			break
		}
		e := entries[len(entries)-1]
		sites = append(sites, int(e.site))
		if e.srcNode < 0 {
			break // primitive Addr-Of
		}
		cur = int32(a.findRead(int(e.srcNode)))
	}
	return sites
}

// NodeCount returns the number of constraint-graph nodes (diagnostics).
func (r *Result) NodeCount() int { return len(r.a.nodes) }

// DescribeObject renders an ObjRef for reports.
func (ref ObjRef) String() string {
	label := ref.Obj.Label()
	if ref.Obj.Type == nil || ref.Obj.Size == 1 || ref.Slot == 0 {
		return label
	}
	flat := ir.FlattenedFields(ref.Obj.Type)
	if ref.Slot < len(flat) {
		return label + "." + flat[ref.Slot].Path
	}
	return label
}
