package pointsto

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/faultinject"
)

// Budget bounds one SolveCtx call. The zero value is unlimited.
type Budget struct {
	// MaxSteps is the maximum number of solver steps (worklist pops / wave
	// visits) the solve may consume; 0 means unlimited. When the budget runs
	// out the solve aborts with a typed *AbortError — never a partial result
	// presented as complete.
	MaxSteps int64
}

// ErrSolveAborted is the sentinel matched (via errors.Is) by every SolveCtx
// abort, whatever its cause: step budget, context cancellation/deadline, or
// an injected fault.
var ErrSolveAborted = errors.New("pointsto: solve aborted")

// AbortError is the typed error returned when SolveCtx aborts. The analysis
// is left in a consistent (monotone, resumable) intermediate state: a later
// SolveCtx with a larger budget continues from where the abort happened and
// reaches the identical fixpoint (asserted by tests).
type AbortError struct {
	Steps  int64  // solver steps consumed before the abort
	Reason string // what exhausted the budget
	Cause  error  // context error or injected fault, when applicable
}

func (e *AbortError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("pointsto: solve aborted after %d steps: %s: %v", e.Steps, e.Reason, e.Cause)
	}
	return fmt.Sprintf("pointsto: solve aborted after %d steps: %s", e.Steps, e.Reason)
}

// Is makes every AbortError match ErrSolveAborted.
func (e *AbortError) Is(target error) bool { return target == ErrSolveAborted }

// Unwrap exposes the underlying context or injection error.
func (e *AbortError) Unwrap() error { return e.Cause }

// SetFaults arms a fault-injection plan on this analysis: an armed
// SolverBudget site aborts the solve mid-worklist exactly as a real budget
// exhaustion would. Callers that arm faults must use SolveCtx (Solve treats
// any abort as a programming error). Must be called before Solve/SolveCtx.
func (a *Analysis) SetFaults(p *faultinject.Plan) { a.faults = p }

// SolveCtx runs the solver to a fixed point under a context and a step
// budget. On success it returns the finished Result. On budget exhaustion,
// context cancellation/deadline, or an injected solver fault it returns a
// nil Result and a typed *AbortError (errors.Is ErrSolveAborted): a bounded
// solve never passes off partial points-to sets as a fixpoint. The aborted
// analysis keeps its pending worklist, so calling SolveCtx again with a
// larger budget resumes and converges to the identical fixpoint.
func (a *Analysis) SolveCtx(ctx context.Context, b Budget) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	a.solveCtx = ctx
	a.stepsLeft = b.MaxSteps // 0 = unlimited
	a.budgeted = b.MaxSteps > 0 || ctx.Done() != nil || a.faults.Armed(faultinject.SolverBudget)
	a.abortErr = nil
	err := a.resolve()
	a.solveCtx, a.budgeted, a.stepsLeft = nil, false, 0
	if err != nil {
		if a.metrics != nil {
			a.metrics.Counter("pointsto/solve/aborts").Inc()
		}
		return nil, err
	}
	return newResult(a), nil
}

// budgetStep accounts one solver step against the active budget, returning
// false (and recording the abort) when the solve must stop before taking the
// step. Called only when a.budgeted is set, so unbudgeted solves pay nothing.
func (a *Analysis) budgetStep() bool {
	if a.abortErr != nil {
		return false
	}
	if err := a.faults.Err(faultinject.SolverBudget); err != nil {
		a.abortErr = &AbortError{Steps: int64(a.stats.Iterations), Reason: "injected budget-exhaustion fault", Cause: err}
		return false
	}
	if a.stepsLeft > 0 {
		a.stepsLeft--
		if a.stepsLeft == 0 {
			a.stepsLeft = -1 // distinguish "exhausted" from "unlimited"
		}
	} else if a.stepsLeft < 0 {
		a.abortErr = &AbortError{Steps: int64(a.stats.Iterations), Reason: "step budget exhausted"}
		return false
	}
	// Poll the context every 64 steps: often enough that cancellation lands
	// promptly, rare enough to stay off the per-pop hot path.
	a.ctxPolls++
	if a.ctxPolls&63 == 0 && a.solveCtx.Done() != nil {
		select {
		case <-a.solveCtx.Done():
			a.abortErr = &AbortError{Steps: int64(a.stats.Iterations), Reason: "context done", Cause: a.solveCtx.Err()}
			return false
		default:
		}
	}
	return true
}
