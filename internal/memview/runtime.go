package memview

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/invariant"
	"repro/internal/pointsto"
)

// slotAddr identifies a concrete runtime address (object + runtime slot).
type slotAddr struct {
	obj *interp.RObj
	off int
}

// ViolationHandler reacts to a detected likely-invariant violation. The
// default handler performs the secure optimistic→fallback switch; the graded
// controller (§8's finer-grained fallback) degrades one policy at a time.
type ViolationHandler interface {
	OnViolation(v Violation)
}

// switchHandler is the default two-view handler.
type switchHandler struct {
	sw     *Switcher
	secret uint64
}

func (h *switchHandler) OnViolation(v Violation) {
	// The monitor is legitimate switcher-entry code, so it holds the gate
	// secret (the stack-secret push of §5).
	_ = h.sw.Switch(h.secret, v)
}

// Runtime implements interp.Hooks: it evaluates the likely-invariant
// monitors emitted by the optimistic analysis and performs CFI target
// lookups against the active memory view, reporting violations to its
// handler (by default: the secure gate switch).
type Runtime struct {
	sw      *Switcher
	handler ViolationHandler
	faults  *faultinject.Plan // SpuriousViolation fires inside monitor hooks

	paFiltered  map[int]map[interp.AbsKey]bool // PtrAdd site -> filtered objects
	pwcGroups   map[int][]int                  // FieldAddr site -> invariant indexes
	pwcGen      map[int]map[slotAddr]bool      // invariant index -> generated field addresses
	ctxCallInv  map[int]int                    // callsite -> invariant index
	ctxCheckInv map[int]int                    // store/ret site -> invariant index
	ctxRecorded map[int][]interp.Value         // invariant index -> last recorded actuals

	// ChecksPerformed counts monitor checks (not CFI lookups), for the
	// check-density figure (§7.2).
	ChecksPerformed int64
	// CFILookups counts indirect-call policy checks.
	CFILookups int64
}

// AbsKeyOf maps an analysis object to its runtime abstract identity.
func AbsKeyOf(o *pointsto.Object) interp.AbsKey {
	switch o.Kind {
	case pointsto.ObjGlobal:
		return interp.AbsKey{Kind: interp.AbsGlobal, Name: o.Name}
	case pointsto.ObjFunc:
		return interp.AbsKey{Kind: interp.AbsFunc, Name: o.Name}
	case pointsto.ObjStack:
		return interp.AbsKey{Kind: interp.AbsStack, Site: o.Site}
	default:
		return interp.AbsKey{Kind: interp.AbsHeap, Site: o.Site}
	}
}

// CorruptRecordError reports an invariant record that failed validation
// while the monitor runtime was being built from it. Building refuses the
// whole runtime: a monitor wired from a corrupt record could silently watch
// the wrong site, which is exactly the failure mode the validation exists to
// exclude.
type CorruptRecordError struct {
	Index  int // position in the result's invariant list
	Kind   invariant.Kind
	Reason string
}

func (e *CorruptRecordError) Error() string {
	return fmt.Sprintf("memview: corrupt %s invariant record %d: %s", e.Kind, e.Index, e.Reason)
}

// RuntimeOpts configures BuildRuntime. Exactly one of Handler or Switcher
// must be set: a Switcher (plus its Secret) gets the default secure-switch
// handler and enables CheckICall; a custom Handler (graded controller)
// performs its own lookups.
type RuntimeOpts struct {
	Handler  ViolationHandler
	Switcher *Switcher
	Secret   uint64
	// Faults optionally arms fault injection: SpuriousViolation fires inside
	// a monitor hook (reporting a violation no real breach caused), and
	// CorruptRecord mutates one invariant record before wiring — which
	// validation must then catch as a *CorruptRecordError.
	Faults *faultinject.Plan
}

// NewRuntime builds the monitor runtime and the matching interpreter
// instrumentation from the optimistic analysis result, with the default
// secure-switch violation handler. It panics on a corrupt invariant record;
// error-aware callers use BuildRuntime.
func NewRuntime(opt *pointsto.Result, sw *Switcher, secret uint64) (*Runtime, *interp.Instrumentation) {
	rt, ins, err := BuildRuntime(opt, RuntimeOpts{Switcher: sw, Secret: secret})
	if err != nil {
		panic(err)
	}
	return rt, ins
}

// NewRuntimeWithHandler builds the monitor runtime with a custom violation
// handler and no attached switcher; CheckICall is only usable when a
// switcher is attached (the graded controller performs its own lookups).
// It panics on a corrupt invariant record; error-aware callers use
// BuildRuntime.
func NewRuntimeWithHandler(opt *pointsto.Result, h ViolationHandler) (*Runtime, *interp.Instrumentation) {
	rt, ins, err := BuildRuntime(opt, RuntimeOpts{Handler: h})
	if err != nil {
		panic(err)
	}
	return rt, ins
}

// BuildRuntime builds the monitor runtime and interpreter instrumentation
// from the optimistic analysis result. Every invariant record is validated
// before any monitor is wired from it; a record that fails validation —
// whether from an injected CorruptRecord fault or a real defect upstream —
// surfaces as a typed *CorruptRecordError and no runtime is produced.
func BuildRuntime(opt *pointsto.Result, o RuntimeOpts) (*Runtime, *interp.Instrumentation, error) {
	h := o.Handler
	if h == nil {
		h = &switchHandler{sw: o.Switcher, secret: o.Secret}
	}
	rt := &Runtime{
		sw:          o.Switcher,
		handler:     h,
		faults:      o.Faults,
		paFiltered:  map[int]map[interp.AbsKey]bool{},
		pwcGroups:   map[int][]int{},
		pwcGen:      map[int]map[slotAddr]bool{},
		ctxCallInv:  map[int]int{},
		ctxCheckInv: map[int]int{},
		ctxRecorded: map[int][]interp.Value{},
	}
	ins := &interp.Instrumentation{
		PtrAddSites: map[int]bool{},
		FieldSites:  map[int]bool{},
		CtxCallArgs: map[int][]int{},
		CtxChecks:   map[int][]invariant.CtxSample{},
		CheckICalls: true,
	}
	objs := opt.Objects()
	recs := corruptRecords(opt.Invariants(), o.Faults)
	for idx, rec := range recs {
		if reason := validateRecord(rec, len(objs)); reason != "" {
			return nil, nil, &CorruptRecordError{Index: idx, Kind: rec.Kind, Reason: reason}
		}
		switch rec.Kind {
		case invariant.PA:
			ins.PtrAddSites[rec.Site] = true
			filtered := map[interp.AbsKey]bool{}
			for _, oi := range rec.FilteredObjs {
				filtered[AbsKeyOf(objs[oi])] = true
			}
			rt.paFiltered[rec.Site] = filtered
		case invariant.PWC:
			for _, site := range rec.CycleFieldSites {
				ins.FieldSites[site] = true
				rt.pwcGroups[site] = append(rt.pwcGroups[site], idx)
			}
			rt.pwcGen[idx] = map[slotAddr]bool{}
		case invariant.Ctx:
			ins.CtxChecks[rec.Site] = rec.CtxSamples
			rt.ctxCheckInv[rec.Site] = idx
			for _, cs := range rec.Callsites {
				ins.CtxCallArgs[cs] = rec.CtxParams
				rt.ctxCallInv[cs] = idx
			}
		}
	}
	return rt, ins, nil
}

// validateRecord checks the structural integrity of one invariant record
// against the result it came from; "" means valid.
func validateRecord(rec invariant.Record, numObjs int) string {
	if rec.Site < 0 {
		return fmt.Sprintf("negative monitor site %d", rec.Site)
	}
	switch rec.Kind {
	case invariant.PA:
		for _, oi := range rec.FilteredObjs {
			if oi < 0 || oi >= numObjs {
				return fmt.Sprintf("filtered object index %d outside [0,%d)", oi, numObjs)
			}
		}
	case invariant.PWC:
		if len(rec.CycleFieldSites) == 0 {
			return "positive-weight cycle with no field sites"
		}
		for _, s := range rec.CycleFieldSites {
			if s < 0 {
				return fmt.Sprintf("negative cycle field site %d", s)
			}
		}
	case invariant.Ctx:
		if len(rec.CtxParams) != len(rec.CtxSamples) {
			return fmt.Sprintf("%d critical params but %d samples", len(rec.CtxParams), len(rec.CtxSamples))
		}
		for _, cs := range rec.Callsites {
			if cs < 0 {
				return fmt.Sprintf("negative callsite %d", cs)
			}
		}
	default:
		return fmt.Sprintf("unknown invariant kind %v", rec.Kind)
	}
	return ""
}

// corruptRecords applies an armed CorruptRecord fault: the record whose
// sequence hit the fault fires on has its monitor site driven out of range,
// in a copy — the analysis result itself is never mutated.
func corruptRecords(recs []invariant.Record, plan *faultinject.Plan) []invariant.Record {
	if !plan.Armed(faultinject.CorruptRecord) || len(recs) == 0 {
		return recs
	}
	out := make([]invariant.Record, len(recs))
	copy(out, recs)
	for i := range out {
		if plan.Fire(faultinject.CorruptRecord) {
			out[i].Site = -(out[i].Site + 1)
		}
	}
	return out
}

// violate reports the violation to the handler.
func (rt *Runtime) violate(kind invariant.Kind, site int, detail string) {
	rt.handler.OnViolation(Violation{Kind: kind, Site: site, Detail: detail})
}

// injectSpurious fires the SpuriousViolation fault site: when armed and due,
// the monitor reports a violation that no real invariant breach caused. The
// system must degrade exactly as for a real violation — land soundly on the
// fallback view — which the chaos harness asserts.
func (rt *Runtime) injectSpurious(kind invariant.Kind, site int) {
	if rt.faults.Fire(faultinject.SpuriousViolation) {
		rt.violate(kind, site, "injected spurious monitor violation (faultinject)")
	}
}

// PtrAdd checks the PA invariant: the arithmetic base pointer must not refer
// to any optimistically filtered struct object.
func (rt *Runtime) PtrAdd(site int, base interp.Value) {
	rt.ChecksPerformed++
	rt.injectSpurious(invariant.PA, site)
	if base.Kind != interp.KindPtr {
		return
	}
	if rt.paFiltered[site][base.Obj.Key] {
		rt.violate(invariant.PA, site, fmt.Sprintf("arithmetic pointer refers to filtered object %s", base.Obj.Key))
	}
}

// FieldAddr checks the PWC invariant: a field address generated by a cycle
// member must not be reused as the base of a nested field access in the same
// cycle (§4.3).
func (rt *Runtime) FieldAddr(site int, base, result interp.Value) {
	rt.ChecksPerformed++
	rt.injectSpurious(invariant.PWC, site)
	for _, g := range rt.pwcGroups[site] {
		gen := rt.pwcGen[g]
		if base.Kind == interp.KindPtr && gen[slotAddr{base.Obj, base.Off}] {
			rt.violate(invariant.PWC, site, "field address reused as base pointer: positive-weight cycle formed")
		}
		if result.Kind == interp.KindPtr {
			gen[slotAddr{result.Obj, result.Off}] = true
		}
	}
}

// CtxCall records the actual critical arguments at an instrumented callsite.
func (rt *Runtime) CtxCall(site int, args []interp.Value) {
	rt.ChecksPerformed++
	if inv, ok := rt.ctxCallInv[site]; ok {
		rt.ctxRecorded[inv] = args
	}
}

// CtxCheck verifies that the critical parameters still hold the values
// recorded at the callsite when the critical store/return executes.
func (rt *Runtime) CtxCheck(site int, vals []interp.Value) {
	rt.ChecksPerformed++
	rt.injectSpurious(invariant.Ctx, site)
	inv, ok := rt.ctxCheckInv[site]
	if !ok {
		return
	}
	rec := rt.ctxRecorded[inv]
	if rec == nil {
		return
	}
	for i := range vals {
		if i < len(rec) && !vals[i].Equal(rec[i]) {
			rt.violate(invariant.Ctx, site, fmt.Sprintf("critical argument %d was redirected inside the callee", i))
			return
		}
	}
}

// CheckICall performs the CFI target lookup against the active memory view.
func (rt *Runtime) CheckICall(site int, target string) bool {
	rt.CFILookups++
	return rt.sw.Active().Permits(site, target)
}

var _ interp.Hooks = (*Runtime)(nil)
