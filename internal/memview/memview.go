// Package memview implements Invariant-Guided Memory Views (§3, §5): the
// optimistic and fallback views produced by the IGO analysis, the secure
// view switcher, and the runtime monitors that detect likely-invariant
// violations and trigger the switch.
package memview

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/invariant"
)

// View is one memory view: for the CFI use case, the set of permitted
// function targets per indirect callsite.
type View struct {
	Name    string
	Targets map[int]map[string]bool // icall instruction ID -> allowed functions
}

// NewView builds a view from per-site target lists.
func NewView(name string, targets map[int][]string) *View {
	v := &View{Name: name, Targets: map[int]map[string]bool{}}
	for site, fns := range targets {
		m := make(map[string]bool, len(fns))
		for _, f := range fns {
			m[f] = true
		}
		v.Targets[site] = m
	}
	return v
}

// Permits reports whether the view allows target at the callsite.
func (v *View) Permits(site int, target string) bool { return v.Targets[site][target] }

// AvgTargets returns the mean number of permitted targets per callsite.
func (v *View) AvgTargets() float64 {
	if len(v.Targets) == 0 {
		return 0
	}
	sum := 0
	for _, t := range v.Targets {
		sum += len(t)
	}
	return float64(sum) / float64(len(v.Targets))
}

// Violation records a likely-invariant violation observed at runtime.
type Violation struct {
	Kind   invariant.Kind
	Site   int    // instruction where the monitor fired
	Detail string // human-readable description
}

func (v Violation) String() string {
	return fmt.Sprintf("%s invariant violated at #%d: %s", v.Kind, v.Site, v.Detail)
}

// ErrBadGate is returned when the switcher is entered without the secret
// (an illegitimate jump into the MV switch code, §5).
var ErrBadGate = fmt.Errorf("memview: secure gate check failed: invalid secret")

// Switcher holds the two memory views and performs the secure, one-way
// optimistic→fallback switch. Legitimate callers must present the 64-bit
// secret issued at construction, modeling the stack-secret gate of §5.
//
// A Switcher is safe for concurrent use: monitors may fire from multiple
// goroutines, and a violation storm produces exactly one view transition
// while every violation is still recorded (Switch is one-way idempotent).
type Switcher struct {
	optimistic *View
	fallback   *View
	secret     uint64

	mu         sync.Mutex
	active     *View
	violations []Violation
	badGates   int64
}

// NewSwitcher creates a switcher starting on the optimistic view and returns
// it together with the gate secret that legitimate monitor code must
// present.
func NewSwitcher(optimistic, fallback *View) (*Switcher, uint64) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The gate secret only defends the simulated switch path; fall back
		// to a fixed pattern rather than failing the run.
		binary.LittleEndian.PutUint64(b[:], 0x6b616c656964_6f73)
	}
	secret := binary.LittleEndian.Uint64(b[:]) | 1 // never zero
	s := &Switcher{optimistic: optimistic, fallback: fallback, active: optimistic, secret: secret}
	return s, secret
}

// Active returns the currently installed view.
func (s *Switcher) Active() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Switched reports whether the fallback view is installed.
func (s *Switcher) Switched() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active == s.fallback
}

// Violations returns a copy of the recorded invariant violations, in the
// order the switcher accepted them.
func (s *Switcher) Violations() []Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Violation, len(s.violations))
	copy(out, s.violations)
	return out
}

// BadGateAttempts returns how many Switch calls presented a wrong secret.
func (s *Switcher) BadGateAttempts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.badGates
}

// Switch installs the fallback view. The caller must present the gate
// secret; a wrong secret is rejected with ErrBadGate (and counted as an
// attempted illegitimate entry). Switch is one-way and idempotent: however
// many violations race in, the view transitions optimistic→fallback exactly
// once and never back, and every accepted violation is recorded.
func (s *Switcher) Switch(gate uint64, v Violation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gate != s.secret {
		s.badGates++
		return ErrBadGate
	}
	s.violations = append(s.violations, v)
	s.active = s.fallback
	return nil
}
