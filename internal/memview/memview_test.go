package memview

import (
	"testing"

	"repro/internal/invariant"
)

func twoViews() (*View, *View) {
	opt := NewView("optimistic", map[int][]string{
		1: {"good"},
		2: {"a", "b"},
	})
	fb := NewView("fallback", map[int][]string{
		1: {"good", "evil"},
		2: {"a", "b", "c"},
	})
	return opt, fb
}

func TestViewPermits(t *testing.T) {
	opt, _ := twoViews()
	if !opt.Permits(1, "good") {
		t.Error("optimistic denies good")
	}
	if opt.Permits(1, "evil") {
		t.Error("optimistic permits evil")
	}
	if opt.Permits(99, "good") {
		t.Error("unknown site permitted")
	}
}

func TestViewAvgTargets(t *testing.T) {
	opt, fb := twoViews()
	if got := opt.AvgTargets(); got != 1.5 {
		t.Errorf("optimistic avg = %v, want 1.5", got)
	}
	if got := fb.AvgTargets(); got != 2.5 {
		t.Errorf("fallback avg = %v, want 2.5", got)
	}
	if got := NewView("empty", nil).AvgTargets(); got != 0 {
		t.Errorf("empty avg = %v", got)
	}
}

func TestSwitcherLifecycle(t *testing.T) {
	opt, fb := twoViews()
	sw, secret := NewSwitcher(opt, fb)
	if secret == 0 {
		t.Fatal("zero gate secret")
	}
	if sw.Active() != opt || sw.Switched() {
		t.Fatal("switcher must start on the optimistic view")
	}
	v := Violation{Kind: invariant.PA, Site: 42, Detail: "test"}
	if err := sw.Switch(secret, v); err != nil {
		t.Fatalf("legitimate switch rejected: %v", err)
	}
	if sw.Active() != fb || !sw.Switched() {
		t.Fatal("switch did not install fallback view")
	}
	if got := sw.Violations(); len(got) != 1 || got[0].Site != 42 {
		t.Fatalf("violations = %v", got)
	}
}

func TestSwitcherSecureGateRejectsBadSecret(t *testing.T) {
	opt, fb := twoViews()
	sw, secret := NewSwitcher(opt, fb)
	if err := sw.Switch(secret+1, Violation{}); err != ErrBadGate {
		t.Fatalf("bad-gate switch error = %v, want ErrBadGate", err)
	}
	if sw.Switched() {
		t.Fatal("illegitimate entry switched the view")
	}
	if len(sw.Violations()) != 0 {
		t.Fatal("illegitimate entry recorded a violation")
	}
}

func TestSecretsDiffer(t *testing.T) {
	opt, fb := twoViews()
	_, s1 := NewSwitcher(opt, fb)
	_, s2 := NewSwitcher(opt, fb)
	if s1 == s2 {
		t.Error("two switchers share a gate secret")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: invariant.PWC, Site: 7, Detail: "cycle formed"}
	if s := v.String(); s == "" || len(s) < 10 {
		t.Errorf("violation string = %q", s)
	}
}
