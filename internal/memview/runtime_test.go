package memview

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/invariant"
	"repro/internal/minic"
	"repro/internal/pointsto"
)

const rtSrc = `
struct plugin { fn handler; int* data; }
plugin mod;
int buff[16];
int cb(int* x) { return 1; }
void smear(char* s, int i) {
  *(s + i) = 0;
}
int main() {
  char* p;
  mod.handler = &cb;
  p = buff;
  if (input() % 7 == 9) {
    p = &mod;
  }
  smear(p, 0);
  return mod.handler(null);
}
`

func optimisticResult(t *testing.T) *pointsto.Result {
	t.Helper()
	m, err := minic.Compile("rt", rtSrc)
	if err != nil {
		t.Fatal(err)
	}
	return pointsto.New(m, invariant.All()).Solve()
}

func TestAbsKeyOf(t *testing.T) {
	r := optimisticResult(t)
	g := r.ObjectByGlobal("mod")
	if key := AbsKeyOf(g); key.Kind != interp.AbsGlobal || key.Name != "mod" {
		t.Errorf("global key = %+v", key)
	}
	f := r.ObjectByFunc("cb")
	if key := AbsKeyOf(f); key.Kind != interp.AbsFunc || key.Name != "cb" {
		t.Errorf("func key = %+v", key)
	}
	for _, o := range r.Objects() {
		if o.Kind == pointsto.ObjStack {
			if key := AbsKeyOf(o); key.Kind != interp.AbsStack || key.Site != o.Site {
				t.Errorf("stack key = %+v for %s", key, o.Label())
			}
		}
	}
}

// recorder collects violations without switching anything.
type recorder struct{ got []Violation }

func (r *recorder) OnViolation(v Violation) { r.got = append(r.got, v) }

func TestPAMonitorFiresOnlyForFilteredObjects(t *testing.T) {
	r := optimisticResult(t)
	rec := &recorder{}
	rt, ins := NewRuntimeWithHandler(r, rec)
	var paSite int
	for s := range ins.PtrAddSites {
		paSite = s
	}
	if paSite == 0 {
		t.Fatal("no PA monitor site")
	}
	mod := &interp.RObj{Key: interp.AbsKey{Kind: interp.AbsGlobal, Name: "mod"}, Slots: make([]interp.Value, 2)}
	buff := &interp.RObj{Key: interp.AbsKey{Kind: interp.AbsGlobal, Name: "buff"}, Slots: make([]interp.Value, 16)}

	rt.PtrAdd(paSite, interp.PtrVal(buff, 0))
	if len(rec.got) != 0 {
		t.Fatalf("benign base fired: %v", rec.got)
	}
	rt.PtrAdd(paSite, interp.IntVal(0))
	if len(rec.got) != 0 {
		t.Fatalf("null base fired: %v", rec.got)
	}
	rt.PtrAdd(paSite, interp.PtrVal(mod, 0))
	if len(rec.got) != 1 || rec.got[0].Kind != invariant.PA {
		t.Fatalf("filtered base did not fire: %v", rec.got)
	}
	if rt.ChecksPerformed != 3 {
		t.Errorf("checks = %d, want 3", rt.ChecksPerformed)
	}
}

func TestPWCMonitorDetectsAddressReuse(t *testing.T) {
	// Build a runtime with a synthetic PWC invariant.
	m, err := minic.Compile("rt", rtSrc)
	if err != nil {
		t.Fatal(err)
	}
	r := pointsto.New(m, invariant.All()).Solve()
	_ = r
	// Use a hand-rolled runtime state through the public hook methods: fake
	// the invariant by constructing a result with a PWC is hard here, so
	// drive the real mbedtls-like fixture instead.
	src := `
struct cs { int* f1; int* f2; }
void* arena(int n) { return malloc(n); }
int main() {
  cs** s1;
  int** q;
  cs* s2;
  int* b;
  cs* fresh;
  s1 = arena(sizeof(cs));
  q = arena(sizeof(cs));
  fresh = arena(sizeof(cs));
  *s1 = fresh;
  while (input()) {
    s2 = *s1;
    b = &s2->f2;
    *q = b;
  }
  return 0;
}
`
	m2, err := minic.Compile("pwc", src)
	if err != nil {
		t.Fatal(err)
	}
	r2 := pointsto.New(m2, invariant.Config{PWC: true}).Solve()
	rec := &recorder{}
	rt, ins := NewRuntimeWithHandler(r2, rec)
	var site int
	for s := range ins.FieldSites {
		site = s
	}
	if site == 0 {
		t.Skip("no PWC monitor in fixture")
	}
	obj := &interp.RObj{Key: interp.AbsKey{Kind: interp.AbsHeap, Site: 1}, Slots: make([]interp.Value, 2)}
	base := interp.PtrVal(obj, 0)
	generated := interp.PtrVal(obj, 1)
	// First access: base is fresh, records `generated`.
	rt.FieldAddr(site, base, generated)
	if len(rec.got) != 0 {
		t.Fatalf("fresh base fired: %v", rec.got)
	}
	// Reuse of the generated address as base: the PWC materializes.
	rt.FieldAddr(site, generated, interp.PtrVal(obj, 2))
	if len(rec.got) != 1 || rec.got[0].Kind != invariant.PWC {
		t.Fatalf("address reuse did not fire: %v", rec.got)
	}
}

func TestCtxMonitorComparesRecordedActuals(t *testing.T) {
	src := `
struct holder { int n; int** slot; }
holder h1;
holder h2;
int* s1[2];
int* s2[2];
int v1;
int v2;
void insert(holder* b, int* v) {
  b->slot[0] = v;
}
int main() {
  h1.slot = s1;
  h2.slot = s2;
  insert(&h1, &v1);
  insert(&h2, &v2);
  return 0;
}
`
	m, err := minic.Compile("ctx", src)
	if err != nil {
		t.Fatal(err)
	}
	r := pointsto.New(m, invariant.Config{Ctx: true}).Solve()
	rec := &recorder{}
	rt, ins := NewRuntimeWithHandler(r, rec)
	var callSite, checkSite int
	for s := range ins.CtxCallArgs {
		callSite = s
	}
	for s := range ins.CtxChecks {
		checkSite = s
	}
	if callSite == 0 || checkSite == 0 {
		t.Fatal("ctx sites missing")
	}
	h1 := &interp.RObj{Key: interp.AbsKey{Kind: interp.AbsGlobal, Name: "h1"}, Slots: make([]interp.Value, 2)}
	v1 := &interp.RObj{Key: interp.AbsKey{Kind: interp.AbsGlobal, Name: "v1"}, Slots: make([]interp.Value, 1)}
	sneaky := &interp.RObj{Key: interp.AbsKey{Kind: interp.AbsGlobal, Name: "sneaky"}, Slots: make([]interp.Value, 2)}

	args := []interp.Value{interp.PtrVal(h1, 0), interp.PtrVal(v1, 0)}
	rt.CtxCall(callSite, args)
	rt.CtxCheck(checkSite, args) // matches: no violation
	if len(rec.got) != 0 {
		t.Fatalf("matching check fired: %v", rec.got)
	}
	rt.CtxCheck(checkSite, []interp.Value{interp.PtrVal(sneaky, 0), interp.PtrVal(v1, 0)})
	if len(rec.got) != 1 || rec.got[0].Kind != invariant.Ctx {
		t.Fatalf("redirected argument did not fire: %v", rec.got)
	}
}
