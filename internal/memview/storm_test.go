package memview

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/workload"
)

// A storm of concurrent legitimate violations must produce exactly one view
// transition while recording every violation (run under -race: this is also
// the regression test for the unguarded-switcher data race).
func TestSwitcherViolationStorm(t *testing.T) {
	opt, fb := twoViews()
	sw, secret := NewSwitcher(opt, fb)
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			err := sw.Switch(secret, Violation{Kind: invariant.PA, Site: g, Detail: "storm"})
			if err != nil {
				t.Errorf("goroutine %d: legitimate switch rejected: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if !sw.Switched() || sw.Active() != fb {
		t.Fatal("storm did not land on the fallback view")
	}
	got := sw.Violations()
	if len(got) != goroutines {
		t.Fatalf("recorded %d violations, want %d (all of them)", len(got), goroutines)
	}
	seen := map[int]bool{}
	for _, v := range got {
		seen[v.Site] = true
	}
	if len(seen) != goroutines {
		t.Fatalf("violations lost or duplicated: %d distinct sites", len(seen))
	}
}

// Concurrent bad-gate attempts during a storm are all rejected and counted,
// and never flip the view.
func TestSwitcherConcurrentBadGates(t *testing.T) {
	opt, fb := twoViews()
	sw, secret := NewSwitcher(opt, fb)
	const attempts = 16
	var wg sync.WaitGroup
	for g := 0; g < attempts; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sw.Switch(secret^0xdead, Violation{}); !errors.Is(err, ErrBadGate) {
				t.Errorf("bad gate accepted: %v", err)
			}
		}()
	}
	wg.Wait()
	if sw.Switched() {
		t.Fatal("illegitimate entries switched the view")
	}
	if got := sw.BadGateAttempts(); got != attempts {
		t.Errorf("BadGateAttempts = %d, want %d", got, attempts)
	}
	if len(sw.Violations()) != 0 {
		t.Error("illegitimate entries recorded violations")
	}
}

// An injected CorruptRecord fault must be caught by record validation as a
// typed *CorruptRecordError — building the runtime refuses rather than
// wiring a monitor from a bad record.
func TestBuildRuntimeRejectsCorruptRecord(t *testing.T) {
	opt := workload.MbedTLS().MustModule()
	r := pointsto.New(opt, invariant.All()).Solve()
	if len(r.Invariants()) == 0 {
		t.Fatal("workload records no invariants; corrupt-record path untestable")
	}
	sw, secret := NewSwitcher(NewView("o", nil), NewView("f", nil))
	plan := faultinject.Explicit(faultinject.CorruptRecord)
	rt, ins, err := BuildRuntime(r, RuntimeOpts{Switcher: sw, Secret: secret, Faults: plan})
	if rt != nil || ins != nil {
		t.Fatal("corrupt record still produced a runtime")
	}
	var cre *CorruptRecordError
	if !errors.As(err, &cre) {
		t.Fatalf("err = %v, want *CorruptRecordError", err)
	}
	if cre.Reason == "" {
		t.Error("corrupt record error carries no reason")
	}
	// Clean build from the same (unmutated) result must still succeed: the
	// corruption happened in a copy.
	if _, _, err := BuildRuntime(r, RuntimeOpts{Switcher: sw, Secret: secret}); err != nil {
		t.Fatalf("clean rebuild failed: %v", err)
	}
}

// Structural validation catches each per-kind corruption class.
func TestValidateRecord(t *testing.T) {
	cases := []struct {
		name string
		rec  invariant.Record
		ok   bool
	}{
		{"pa-valid", invariant.Record{Kind: invariant.PA, Site: 3, FilteredObjs: []int{0, 4}}, true},
		{"pa-object-out-of-range", invariant.Record{Kind: invariant.PA, Site: 3, FilteredObjs: []int{5}}, false},
		{"pa-negative-object", invariant.Record{Kind: invariant.PA, Site: 3, FilteredObjs: []int{-1}}, false},
		{"negative-site", invariant.Record{Kind: invariant.PA, Site: -4}, false},
		{"pwc-valid", invariant.Record{Kind: invariant.PWC, Site: 1, CycleFieldSites: []int{1, 2}}, true},
		{"pwc-empty-cycle", invariant.Record{Kind: invariant.PWC, Site: 1}, false},
		{"pwc-negative-field-site", invariant.Record{Kind: invariant.PWC, Site: 1, CycleFieldSites: []int{-2}}, false},
		{"ctx-valid", invariant.Record{Kind: invariant.Ctx, Site: 2, CtxParams: []int{0}, CtxSamples: []invariant.CtxSample{{}}}, true},
		{"ctx-misaligned-samples", invariant.Record{Kind: invariant.Ctx, Site: 2, CtxParams: []int{0, 1}, CtxSamples: []invariant.CtxSample{{}}}, false},
		{"ctx-negative-callsite", invariant.Record{Kind: invariant.Ctx, Site: 2, Callsites: []int{-7}}, false},
		{"unknown-kind", invariant.Record{Kind: invariant.Kind(99), Site: 0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reason := validateRecord(tc.rec, 5)
			if tc.ok && reason != "" {
				t.Errorf("valid record rejected: %s", reason)
			}
			if !tc.ok && reason == "" {
				t.Error("corrupt record accepted")
			}
		})
	}
}

// A spurious-violation fault inside a monitor hook must degrade the system
// exactly like a real violation: one switch, violation recorded with the
// injected detail.
func TestInjectedSpuriousViolationSwitches(t *testing.T) {
	m := workload.MbedTLS().MustModule()
	r := pointsto.New(m, invariant.All()).Solve()
	sw, secret := NewSwitcher(NewView("o", nil), NewView("f", nil))
	plan := faultinject.Explicit(faultinject.SpuriousViolation)
	rt, _, err := BuildRuntime(r, RuntimeOpts{Switcher: sw, Secret: secret, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Drive one monitored check; the armed fault fires on the first hit.
	rt.PtrAdd(7, interp.Value{})
	if !sw.Switched() {
		t.Fatal("spurious violation did not switch the view")
	}
	got := sw.Violations()
	if len(got) != 1 || got[0].Site != 7 {
		t.Fatalf("violations = %v", got)
	}
	if want := "injected spurious monitor violation"; len(got[0].Detail) < len(want) {
		t.Errorf("detail = %q", got[0].Detail)
	}
	if !plan.Fired(faultinject.SpuriousViolation) {
		t.Error("plan does not record the fire")
	}
}
