package ir

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func sslStruct() *StructType {
	return &StructType{
		Name: "ssl_context",
		Fields: []Field{
			{Name: "f_send", Type: Fn},
			{Name: "f_recv", Type: Fn},
			{Name: "buf", Type: &ArrayType{Elem: Int, Len: 8}},
			{Name: "peer", Type: PointerTo(Int)},
		},
	}
}

func TestNumSlots(t *testing.T) {
	st := sslStruct()
	cases := []struct {
		t    Type
		want int
	}{
		{Int, 1},
		{PointerTo(Int), 1},
		{Fn, 1},
		{st, 1 + 1 + 8 + 1},
		{&ArrayType{Elem: st, Len: 3}, 33},
		{&StructType{Name: "empty"}, 1},
	}
	for _, c := range cases {
		if got := NumSlots(c.t); got != c.want {
			t.Errorf("NumSlots(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestFlattenedFields(t *testing.T) {
	st := sslStruct()
	flat := FlattenedFields(st)
	// arrays collapse to a single slot for the analysis
	if len(flat) != 4 {
		t.Fatalf("flattened slots = %d, want 4: %+v", len(flat), flat)
	}
	if flat[0].Path != "f_send" || flat[2].Path != "buf[]" || flat[3].Path != "peer" {
		t.Errorf("paths = %v %v %v %v", flat[0].Path, flat[1].Path, flat[2].Path, flat[3].Path)
	}
	if _, ok := flat[0].Type.(FuncType); !ok {
		t.Errorf("f_send slot type = %s", flat[0].Type)
	}
}

func TestFlattenedNestedStruct(t *testing.T) {
	inner := &StructType{Name: "inner", Fields: []Field{
		{Name: "a", Type: Int},
		{Name: "fp", Type: Fn},
	}}
	outer := &StructType{Name: "outer", Fields: []Field{
		{Name: "x", Type: PointerTo(Int)},
		{Name: "in", Type: inner},
	}}
	flat := FlattenedFields(outer)
	if len(flat) != 3 {
		t.Fatalf("flattened slots = %d, want 3", len(flat))
	}
	if flat[1].Path != "in.a" || flat[2].Path != "in.fp" {
		t.Errorf("nested paths = %q, %q", flat[1].Path, flat[2].Path)
	}
}

func TestLayoutStruct(t *testing.T) {
	st := sslStruct()
	l := NewLayouts().Of(st)
	if l.RuntimeSize != 11 {
		t.Errorf("RuntimeSize = %d, want 11", l.RuntimeSize)
	}
	if l.AnalysisSize != 4 {
		t.Errorf("AnalysisSize = %d, want 4", l.AnalysisSize)
	}
	wantROff := []int{0, 1, 2, 10}
	wantAOff := []int{0, 1, 2, 3}
	for k := range st.Fields {
		if l.FieldRuntimeOff[k] != wantROff[k] {
			t.Errorf("FieldRuntimeOff[%d] = %d, want %d", k, l.FieldRuntimeOff[k], wantROff[k])
		}
		if l.FieldAnalysisOff[k] != wantAOff[k] {
			t.Errorf("FieldAnalysisOff[%d] = %d, want %d", k, l.FieldAnalysisOff[k], wantAOff[k])
		}
	}
	// all 8 array slots map onto analysis slot 2
	for r := 2; r < 10; r++ {
		if l.RToA[r] != 2 {
			t.Errorf("RToA[%d] = %d, want 2", r, l.RToA[r])
		}
	}
	if l.RToA[0] != 0 || l.RToA[1] != 1 || l.RToA[10] != 3 {
		t.Errorf("scalar RToA mapping wrong: %v", l.RToA)
	}
}

func TestLayoutArrayOfStructs(t *testing.T) {
	st := &StructType{Name: "pair", Fields: []Field{
		{Name: "p", Type: PointerTo(Int)},
		{Name: "q", Type: PointerTo(Int)},
	}}
	arr := &ArrayType{Elem: st, Len: 4}
	l := NewLayouts().Of(arr)
	if l.RuntimeSize != 8 || l.AnalysisSize != 2 {
		t.Fatalf("sizes = %d/%d, want 8/2", l.RuntimeSize, l.AnalysisSize)
	}
	for i := 0; i < 4; i++ {
		if l.RToA[2*i] != 0 || l.RToA[2*i+1] != 1 {
			t.Errorf("element %d maps to %d/%d", i, l.RToA[2*i], l.RToA[2*i+1])
		}
	}
}

func TestTypeEqual(t *testing.T) {
	a := sslStruct()
	b := sslStruct()
	if !TypeEqual(a, b) {
		t.Error("same-named structs unequal")
	}
	if TypeEqual(PointerTo(Int), PointerTo(PointerTo(Int))) {
		t.Error("int* equals int**")
	}
	if !TypeEqual(PointerTo(a), PointerTo(b)) {
		t.Error("struct pointers unequal")
	}
	if TypeEqual(Int, Fn) {
		t.Error("int equals fn")
	}
	if !TypeEqual(&ArrayType{Elem: Int, Len: 3}, &ArrayType{Elem: Int, Len: 3}) {
		t.Error("identical arrays unequal")
	}
	if TypeEqual(&ArrayType{Elem: Int, Len: 3}, &ArrayType{Elem: Int, Len: 4}) {
		t.Error("different-length arrays equal")
	}
}

// buildTinyModule constructs:
//
//	global @o : int
//	func target() -> int { ret 1 }
//	func main() -> int {
//	  p = &@o ; q = alloca int* ; store q, p ; r = load q
//	  f = &target ; x = icall f()
//	  ret x
//	}
func buildTinyModule(t *testing.T) *Module {
	t.Helper()
	m := NewModule("tiny")
	m.AddGlobal("o", Int)

	tb := NewFuncBuilder("target", nil, nil, Int)
	one := tb.Const(1)
	tb.Ret(one)
	m.AddFunc(tb.F)

	b := NewFuncBuilder("main", nil, nil, Int)
	p := b.Temp()
	b.Emit(&AddrGlobal{Dest: p, Global: "o"})
	q := b.Alloca("q", PointerTo(Int))
	b.Store(q, p)
	b.Load(q)
	f := b.Temp()
	b.Emit(&AddrFunc{Dest: f, Func: "target"})
	x := b.Temp()
	b.Emit(&ICall{Dest: x, FuncPtr: f})
	b.Ret(x)
	m.AddFunc(b.F)

	if err := m.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return m
}

func TestFinalizeAssignsIDsAndAddressTaken(t *testing.T) {
	m := buildTinyModule(t)
	if !m.Func("target").AddressTaken {
		t.Error("target not marked address-taken")
	}
	if m.Func("main").AddressTaken {
		t.Error("main wrongly address-taken")
	}
	seen := map[int]bool{}
	for _, f := range m.Funcs {
		f.Instrs(func(_ *Block, in Instr) {
			id := in.base().ID
			if id == 0 {
				t.Errorf("instruction %q has no ID", in)
			}
			if seen[id] {
				t.Errorf("duplicate instruction ID %d", id)
			}
			seen[id] = true
			if m.InstrByID(id) != in {
				t.Errorf("InstrByID(%d) mismatch", id)
			}
		})
	}
	if got := m.AddressTakenFuncs(); len(got) != 1 || got[0] != "target" {
		t.Errorf("AddressTakenFuncs = %v", got)
	}
}

func TestValidateRejectsMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := &Function{Name: "f", Blocks: []*Block{{Name: "entry"}}}
	m.AddFunc(f)
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("Finalize err = %v, want terminator error", err)
	}
}

func TestValidateRejectsUndefinedRegister(t *testing.T) {
	m := NewModule("bad")
	b := NewFuncBuilder("f", nil, nil, nil)
	b.Emit(&Copy{Dest: "%x", Src: "%nope"})
	b.Emit(&Ret{})
	m.AddFunc(b.F)
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "undefined register") {
		t.Fatalf("Finalize err = %v, want undefined register error", err)
	}
}

func TestValidateRejectsUnknownCallee(t *testing.T) {
	m := NewModule("bad")
	b := NewFuncBuilder("f", nil, nil, nil)
	b.Emit(&Call{Callee: "ghost"})
	b.Emit(&Ret{})
	m.AddFunc(b.F)
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("Finalize err = %v, want unknown function error", err)
	}
}

func TestValidateRejectsBadFieldIndex(t *testing.T) {
	st := &StructType{Name: "s", Fields: []Field{{Name: "a", Type: Int}}}
	m := NewModule("bad")
	m.Structs["s"] = st
	b := NewFuncBuilder("f", []string{"%p"}, []Type{PointerTo(st)}, nil)
	b.Emit(&FieldAddr{Dest: "%x", Base: "%p", Struct: st, Field: 3})
	b.Emit(&Ret{})
	m.AddFunc(b.F)
	err := m.Finalize()
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Finalize err = %v, want field range error", err)
	}
}

func TestValidateRejectsDuplicateFunction(t *testing.T) {
	m := NewModule("bad")
	for i := 0; i < 2; i++ {
		b := NewFuncBuilder("dup", nil, nil, nil)
		b.Emit(&Ret{})
		m.AddFunc(b.F)
	}
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Fatalf("Finalize err = %v, want duplicate error", err)
	}
}

func TestValidateRejectsJumpToUnknownBlock(t *testing.T) {
	m := NewModule("bad")
	b := NewFuncBuilder("f", nil, nil, nil)
	b.Jump("nowhere")
	m.AddFunc(b.F)
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "unknown block") {
		t.Fatalf("Finalize err = %v, want unknown block error", err)
	}
}

func TestModuleString(t *testing.T) {
	m := buildTinyModule(t)
	s := m.String()
	for _, want := range []string{"module tiny", "global @o : int", "func main()", "icall", "= &target"} {
		if !strings.Contains(s, want) {
			t.Errorf("module printout missing %q:\n%s", want, s)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	st := &StructType{Name: "s", Fields: []Field{{Name: "fp", Type: Fn}}}
	cases := []struct {
		in   Instr
		want string
	}{
		{&Const{Dest: "%a", Val: 7}, "%a = const 7"},
		{&BinOp{Dest: "%c", Op: OpAdd, A: "%a", B: "%b"}, "%c = %a + %b"},
		{&Load{Dest: "%v", Addr: "%p"}, "%v = load %p"},
		{&Store{Addr: "%p", Src: "%v"}, "store %p, %v"},
		{&FieldAddr{Dest: "%f", Base: "%p", Struct: st, Field: 0}, "%f = &%p->fp"},
		{&PtrAdd{Dest: "%d", Base: "%p", Off: "%i"}, "%d = %p +p %i"},
		{&Malloc{Dest: "%h", SizeOf: st}, "%h = malloc sizeof(struct s)"},
		{&Malloc{Dest: "%h"}, "%h = malloc ?"},
		{&Ret{}, "ret"},
		{&Ret{Src: "%x"}, "ret %x"},
		{&Jump{Target: "loop"}, "jmp loop"},
		{&CondJump{Cond: "%c", True: "a", False: "b"}, "br %c, a, b"},
		{&ICall{Dest: "%r", FuncPtr: "%f", Args: []string{"%x"}}, "%r = icall %f(%x)"},
		{&Call{Callee: "g", Args: []string{"%x", "%y"}}, "call g(%x, %y)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBuilderBlocksAndTemps(t *testing.T) {
	b := NewFuncBuilder("f", []string{"%p"}, []Type{PointerTo(Int)}, nil)
	if b.Cur().Name != "entry" {
		t.Fatalf("entry block = %q", b.Cur().Name)
	}
	t1, t2 := b.Temp(), b.Temp()
	if t1 == t2 {
		t.Error("Temp returned duplicate names")
	}
	loop := b.NewBlock("loop")
	again := b.NewBlock("loop")
	if loop.Name == again.Name {
		t.Error("NewBlock returned duplicate block names")
	}
	if b.Cur() != again {
		t.Error("NewBlock did not select the new block")
	}
	b.SetBlock(loop)
	if b.Terminated() {
		t.Error("empty block reported terminated")
	}
	b.Jump(again.Name)
	if !b.Terminated() {
		t.Error("block with jump not terminated")
	}
}

// Property: runtime-to-analysis slot mapping is total and within bounds for
// randomly shaped nested types.
func TestQuickLayoutMapping(t *testing.T) {
	buildType := func(seed int64) Type {
		r := rand.New(rand.NewSource(seed))
		var mk func(depth int) Type
		mk = func(depth int) Type {
			if depth >= 3 {
				return Int
			}
			switch r.Intn(5) {
			case 0:
				return Int
			case 1:
				return PointerTo(mk(depth + 1))
			case 2:
				return Fn
			case 3:
				return &ArrayType{Elem: mk(depth + 1), Len: 1 + r.Intn(5)}
			default:
				n := 1 + r.Intn(4)
				st := &StructType{Name: fmt.Sprintf("s%d_%d", seed, depth)}
				for i := 0; i < n; i++ {
					st.Fields = append(st.Fields, Field{Name: fmt.Sprintf("f%d", i), Type: mk(depth + 1)})
				}
				return st
			}
		}
		return mk(0)
	}
	ls := NewLayouts()
	for seed := int64(0); seed < 200; seed++ {
		ty := buildType(seed)
		l := ls.Of(ty)
		if l.RuntimeSize != NumSlots(ty) {
			t.Fatalf("seed %d: RuntimeSize %d != NumSlots %d for %s", seed, l.RuntimeSize, NumSlots(ty), ty)
		}
		if l.AnalysisSize != len(FlattenedFields(ty)) {
			t.Fatalf("seed %d: AnalysisSize %d != flattened %d", seed, l.AnalysisSize, len(FlattenedFields(ty)))
		}
		if len(l.RToA) != l.RuntimeSize {
			t.Fatalf("seed %d: RToA length %d != runtime size %d", seed, len(l.RToA), l.RuntimeSize)
		}
		covered := make([]bool, l.AnalysisSize)
		for r, a := range l.RToA {
			if a < 0 || a >= l.AnalysisSize {
				t.Fatalf("seed %d: RToA[%d] = %d out of range %d", seed, r, a, l.AnalysisSize)
			}
			covered[a] = true
		}
		for a, ok := range covered {
			if !ok {
				t.Fatalf("seed %d: analysis slot %d unreachable from runtime slots (%s)", seed, a, ty)
			}
		}
		if st, ok := ty.(*StructType); ok && len(st.Fields) > 0 {
			if l.FieldRuntimeOff[0] != 0 || l.FieldAnalysisOff[0] != 0 {
				t.Fatalf("seed %d: first field offsets nonzero", seed)
			}
			for k := 1; k < len(st.Fields); k++ {
				if l.FieldRuntimeOff[k] <= l.FieldRuntimeOff[k-1] {
					t.Fatalf("seed %d: runtime offsets not increasing", seed)
				}
			}
		}
	}
}
