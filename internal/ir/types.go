// Package ir defines KIR, a small typed intermediate representation modeled
// after the subset of LLVM IR that inclusion-based pointer analysis consumes:
// address-taken objects (globals, stack allocations, heap allocations,
// functions), loads, stores, copies, field addressing, arbitrary pointer
// arithmetic, and direct/indirect calls.
//
// KIR programs are produced by the minic front-end (or constructed directly)
// and consumed by the constraint builder, the solver, and the interpreter.
package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all KIR types.
type Type interface {
	String() string
	isType()
}

// IntType is the sole scalar type (covers C's int/char/void in MiniC).
type IntType struct{}

func (IntType) isType()        {}
func (IntType) String() string { return "int" }

// Int is the canonical IntType instance.
var Int = IntType{}

// PointerType is a pointer to Elem.
type PointerType struct {
	Elem Type
}

func (*PointerType) isType() {}

func (p *PointerType) String() string { return p.Elem.String() + "*" }

// PointerTo returns the pointer type with element type t.
func PointerTo(t Type) *PointerType { return &PointerType{Elem: t} }

// FuncType is the type of a function pointer. KIR function pointers are
// signature-erased, matching the paper's points-to-based (not type-based) CFI.
type FuncType struct{}

func (FuncType) isType()        {}
func (FuncType) String() string { return "fn" }

// Fn is the canonical FuncType instance.
var Fn = FuncType{}

// Field is a named member of a struct type.
type Field struct {
	Name string
	Type Type
}

// StructType is a named aggregate.
type StructType struct {
	Name   string
	Fields []Field
}

func (*StructType) isType() {}

func (s *StructType) String() string { return "struct " + s.Name }

// FieldIndex returns the index of the named field, or -1.
func (s *StructType) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// ArrayType is a fixed-length array of Elem.
type ArrayType struct {
	Elem Type
	Len  int
}

func (*ArrayType) isType() {}

func (a *ArrayType) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }

// NumSlots returns the number of flattened scalar slots a value of type t
// occupies in the interpreter memory model and in the field-sensitive object
// layout. Structs flatten recursively; arrays contribute their element slots
// once per element for the interpreter, but the pointer analysis collapses
// array elements (array-index insensitivity, as in the paper's baseline).
func NumSlots(t Type) int {
	switch t := t.(type) {
	case IntType, *PointerType, FuncType:
		return 1
	case *StructType:
		n := 0
		for _, f := range t.Fields {
			n += NumSlots(f.Type)
		}
		if n == 0 {
			return 1
		}
		return n
	case *ArrayType:
		return t.Len * NumSlots(t.Elem)
	default:
		panic(fmt.Sprintf("ir: unknown type %T", t))
	}
}

// FlattenedFields returns one entry per analysis-visible slot of type t,
// collapsing arrays to a single element (index-insensitive). The returned
// slice describes the layout used by field-sensitive points-to objects: entry
// i holds the scalar type and a dotted path for diagnostics.
func FlattenedFields(t Type) []FlatField {
	var out []FlatField
	flatten(t, "", &out)
	return out
}

// FlatField describes one analysis slot of a flattened aggregate.
type FlatField struct {
	Path string // dotted path, e.g. "ctx.f_send"
	Type Type   // scalar type at this slot
}

func flatten(t Type, prefix string, out *[]FlatField) {
	switch t := t.(type) {
	case IntType, *PointerType, FuncType:
		*out = append(*out, FlatField{Path: prefix, Type: t})
	case *StructType:
		if len(t.Fields) == 0 {
			*out = append(*out, FlatField{Path: prefix, Type: Int})
			return
		}
		for _, f := range t.Fields {
			p := f.Name
			if prefix != "" {
				p = prefix + "." + f.Name
			}
			flatten(f.Type, p, out)
		}
	case *ArrayType:
		// Arrays are index-insensitive for the analysis: a single element
		// stands for all of them.
		p := prefix + "[]"
		flatten(t.Elem, p, out)
	default:
		panic(fmt.Sprintf("ir: unknown type %T", t))
	}
}

// TypeEqual reports structural equality of two types (structs by name).
func TypeEqual(a, b Type) bool {
	switch a := a.(type) {
	case IntType:
		_, ok := b.(IntType)
		return ok
	case FuncType:
		_, ok := b.(FuncType)
		return ok
	case *PointerType:
		bp, ok := b.(*PointerType)
		return ok && TypeEqual(a.Elem, bp.Elem)
	case *StructType:
		bs, ok := b.(*StructType)
		return ok && a.Name == bs.Name
	case *ArrayType:
		ba, ok := b.(*ArrayType)
		return ok && a.Len == ba.Len && TypeEqual(a.Elem, ba.Elem)
	}
	return false
}

// IsPointerLike reports whether values of t can hold an address (pointer or
// function pointer).
func IsPointerLike(t Type) bool {
	switch t.(type) {
	case *PointerType, FuncType:
		return true
	}
	return false
}

// IsStruct reports whether t is a (non-array) struct type.
func IsStruct(t Type) bool {
	_, ok := t.(*StructType)
	return ok
}

// IsArray reports whether t is an array type.
func IsArray(t Type) bool {
	_, ok := t.(*ArrayType)
	return ok
}

// BaseName renders a type for terse diagnostics ("plugin", "int*", ...).
func BaseName(t Type) string {
	if s, ok := t.(*StructType); ok {
		return s.Name
	}
	return t.String()
}

// typeList renders parameter lists.
func typeList(ts []Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}
