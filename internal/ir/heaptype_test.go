package ir

import "testing"

// buildWrapperModule constructs:
//
//	func alloc(n int) -> int* { h = malloc n ; ret h }
//	func main() { a = const sizeof(S) ; x = call alloc(a) ; ... }
func buildWrapperModule(t *testing.T, callerConsts []*Const) *Module {
	t.Helper()
	m := NewModule("wrap")

	ab := NewFuncBuilder("alloc", []string{"%n"}, []Type{Int}, PointerTo(Int))
	h := ab.Temp()
	ab.Emit(&Malloc{Dest: h, Size: "%n"})
	ab.Ret(h)
	m.AddFunc(ab.F)

	b := NewFuncBuilder("main", nil, nil, Int)
	for _, c := range callerConsts {
		c.Dest = b.Temp()
		b.Emit(c)
		x := b.Temp()
		b.Emit(&Call{Dest: x, Callee: "alloc", Args: []string{c.Dest}})
	}
	b.Ret(b.Const(0))
	m.AddFunc(b.F)
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func mallocIn(m *Module, fn string) *Malloc {
	var out *Malloc
	m.Func(fn).Instrs(func(_ *Block, in Instr) {
		if mal, ok := in.(*Malloc); ok {
			out = mal
		}
	})
	return out
}

func TestPropagateHeapTypesThroughWrapper(t *testing.T) {
	st := &StructType{Name: "sess", Fields: []Field{{Name: "a", Type: Int}, {Name: "fp", Type: Fn}}}
	m := buildWrapperModule(t, []*Const{
		{Val: int64(NumSlots(st)), SizeOfType: st},
		{Val: int64(NumSlots(st)), SizeOfType: st},
	})
	PropagateHeapTypes(m)
	mal := mallocIn(m, "alloc")
	if mal.SizeOf == nil || BaseName(mal.SizeOf) != "sess" {
		t.Fatalf("wrapper malloc type = %v, want sess", mal.SizeOf)
	}
}

func TestPropagateHeapTypesMixedCallersStayUnknown(t *testing.T) {
	s1 := &StructType{Name: "a1", Fields: []Field{{Name: "x", Type: Int}}}
	s2 := &StructType{Name: "a2", Fields: []Field{{Name: "y", Type: Fn}}}
	m := buildWrapperModule(t, []*Const{
		{Val: int64(NumSlots(s1)), SizeOfType: s1},
		{Val: int64(NumSlots(s2)), SizeOfType: s2},
	})
	PropagateHeapTypes(m)
	if mal := mallocIn(m, "alloc"); mal.SizeOf != nil {
		t.Fatalf("mixed-type wrapper got typed: %v", mal.SizeOf)
	}
}

func TestPropagateHeapTypesPlainSizeStaysUnknown(t *testing.T) {
	m := buildWrapperModule(t, []*Const{{Val: 64}}) // no sizeof metadata
	PropagateHeapTypes(m)
	if mal := mallocIn(m, "alloc"); mal.SizeOf != nil {
		t.Fatalf("untyped size got typed: %v", mal.SizeOf)
	}
}

func TestPropagateHeapTypesAddressTakenWrapperStaysUnknown(t *testing.T) {
	st := &StructType{Name: "s", Fields: []Field{{Name: "x", Type: Int}}}
	m := buildWrapperModule(t, []*Const{{Val: int64(NumSlots(st)), SizeOfType: st}})
	// Take the wrapper's address: indirect callers are invisible, so the
	// propagation must refuse.
	mainF := m.Func("main")
	entry := mainF.Entry()
	af := &AddrFunc{Dest: "%taken", Func: "alloc"}
	entry.Instrs = append([]Instr{af}, entry.Instrs...)
	m2 := NewModule("rebuilt")
	m2.Funcs = m.Funcs
	m2.Globals = m.Globals
	if err := m2.Finalize(); err != nil {
		t.Fatal(err)
	}
	PropagateHeapTypes(m2)
	if mal := mallocIn(m2, "alloc"); mal.SizeOf != nil {
		t.Fatalf("address-taken wrapper got typed: %v", mal.SizeOf)
	}
}

func TestPropagateHeapTypesDirectConst(t *testing.T) {
	st := &StructType{Name: "d", Fields: []Field{{Name: "x", Type: Int}}}
	m := NewModule("direct")
	b := NewFuncBuilder("main", nil, nil, Int)
	c := b.Temp()
	b.Emit(&Const{Dest: c, Val: 1, SizeOfType: st})
	cp := b.Temp()
	b.Emit(&Copy{Dest: cp, Src: c})
	h := b.Temp()
	b.Emit(&Malloc{Dest: h, Size: cp})
	b.Ret(b.Const(0))
	m.AddFunc(b.F)
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	PropagateHeapTypes(m)
	if mal := mallocIn(m, "main"); mal.SizeOf == nil || BaseName(mal.SizeOf) != "d" {
		t.Fatalf("copy-chained sizeof not recovered: %v", mallocIn(m, "main").SizeOf)
	}
}
