package ir

// Layout describes how a type maps onto memory slots in the two models used
// by this repository:
//
//   - the runtime model (interpreter): arrays are fully expanded, every
//     scalar gets its own slot;
//   - the analysis model (points-to objects): arrays are collapsed to a
//     single element (array-index insensitivity, as in the paper's baseline
//     SVF/Andersen configuration), so an object has one analysis slot per
//     FlattenedFields entry.
//
// RToA maps a runtime slot to its analysis slot, which is how runtime
// monitors and dynamic points-to observation relate concrete addresses to
// analysis field objects.
type Layout struct {
	Type         Type
	RuntimeSize  int
	AnalysisSize int
	RToA         []int
	// FieldRuntimeOff[k] / FieldAnalysisOff[k] give the slot offsets of
	// field k when Type is a struct.
	FieldRuntimeOff  []int
	FieldAnalysisOff []int
	Flat             []FlatField // analysis slots, for diagnostics
}

// Layouts caches Layout values per type.
type Layouts struct {
	cache map[Type]*Layout
}

// NewLayouts returns an empty layout cache.
func NewLayouts() *Layouts { return &Layouts{cache: map[Type]*Layout{}} }

// Of computes (or returns cached) layout for t.
func (ls *Layouts) Of(t Type) *Layout {
	if l, ok := ls.cache[t]; ok {
		return l
	}
	l := ls.compute(t)
	ls.cache[t] = l
	return l
}

func (ls *Layouts) compute(t Type) *Layout {
	l := &Layout{Type: t, Flat: FlattenedFields(t)}
	l.AnalysisSize = len(l.Flat)
	switch t := t.(type) {
	case IntType, *PointerType, FuncType:
		l.RuntimeSize = 1
		l.RToA = []int{0}
	case *StructType:
		if len(t.Fields) == 0 {
			l.RuntimeSize = 1
			l.RToA = []int{0}
			return l
		}
		l.FieldRuntimeOff = make([]int, len(t.Fields))
		l.FieldAnalysisOff = make([]int, len(t.Fields))
		rOff, aOff := 0, 0
		for k, f := range t.Fields {
			l.FieldRuntimeOff[k] = rOff
			l.FieldAnalysisOff[k] = aOff
			sub := ls.Of(f.Type)
			for _, a := range sub.RToA {
				l.RToA = append(l.RToA, aOff+a)
			}
			rOff += sub.RuntimeSize
			aOff += sub.AnalysisSize
		}
		l.RuntimeSize = rOff
	case *ArrayType:
		sub := ls.Of(t.Elem)
		l.RuntimeSize = t.Len * sub.RuntimeSize
		l.RToA = make([]int, 0, l.RuntimeSize)
		for i := 0; i < t.Len; i++ {
			// every element maps onto the same collapsed analysis slots
			l.RToA = append(l.RToA, sub.RToA...)
		}
		if t.Len == 0 {
			l.RuntimeSize = 1
			l.RToA = []int{0}
		}
	}
	return l
}
