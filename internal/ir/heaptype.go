package ir

// PropagateHeapTypes implements the paper's §6 heap-type detection: sizeof
// expressions are lowered to constants that retain their type as metadata
// (Const.SizeOfType), and an interprocedural pass propagates that metadata
// to dynamic allocation sites. A `malloc(n)` whose size derives from a
// sizeof(T) constant — directly, through copies, or through a parameter
// whose every direct callsite passes sizeof(T) — is typed as T. If the type
// cannot be determined (mixed types, unknown flows, address-taken wrappers),
// the site stays untyped and the PA invariant never filters its objects
// (§6's soundness rule).
//
// Call after module construction (before or after Finalize); it only fills
// Malloc.SizeOf fields in place.
func PropagateHeapTypes(m *Module) {
	p := &heapTypeProp{
		m:      m,
		defs:   map[string]map[string]Instr{},
		sites:  map[string][]*callRef{},
		memo:   map[string]Type{},
		failed: map[string]bool{},
	}
	for _, f := range m.Funcs {
		defs := map[string]Instr{}
		f.Instrs(func(_ *Block, in Instr) {
			if d := in.Def(); d != "" {
				defs[d] = in
			}
			if c, ok := in.(*Call); ok {
				p.sites[c.Callee] = append(p.sites[c.Callee], &callRef{caller: f.Name, call: c})
			}
		})
		p.defs[f.Name] = defs
	}
	for _, f := range m.Funcs {
		f.Instrs(func(_ *Block, in Instr) {
			mal, ok := in.(*Malloc)
			if !ok || mal.SizeOf != nil || mal.Size == "" {
				return
			}
			if t := p.resolve(f.Name, mal.Size, 0); t != nil {
				mal.SizeOf = t
			}
		})
	}
}

type callRef struct {
	caller string
	call   *Call
}

type heapTypeProp struct {
	m      *Module
	defs   map[string]map[string]Instr
	sites  map[string][]*callRef
	memo   map[string]Type
	failed map[string]bool
}

// resolve walks the definition chain of (fn, reg) toward a sizeof-tagged
// constant, crossing at most three wrapper levels through parameters.
func (p *heapTypeProp) resolve(fn, reg string, depth int) Type {
	if depth > 3 {
		return nil
	}
	key := fn + "\x00" + reg
	if t, ok := p.memo[key]; ok {
		return t
	}
	if p.failed[key] {
		return nil
	}
	// Break recursion cycles conservatively.
	p.failed[key] = true
	t := p.resolveUncached(fn, reg, depth)
	if t != nil {
		delete(p.failed, key)
		p.memo[key] = t
	}
	return t
}

func (p *heapTypeProp) resolveUncached(fn, reg string, depth int) Type {
	f := p.m.Func(fn)
	if f == nil {
		return nil
	}
	for i, param := range f.Params {
		if param != reg {
			continue
		}
		// Parameter: every direct callsite must pass the same sizeof type.
		// Address-taken functions may also be called indirectly, with
		// arguments this pass cannot see — stay unknown.
		if f.AddressTaken {
			return nil
		}
		sites := p.sites[fn]
		if len(sites) == 0 {
			return nil
		}
		var agreed Type
		for _, s := range sites {
			if i >= len(s.call.Args) {
				return nil
			}
			t := p.resolve(s.caller, s.call.Args[i], depth+1)
			if t == nil {
				return nil
			}
			if agreed == nil {
				agreed = t
			} else if !TypeEqual(agreed, t) {
				return nil
			}
		}
		return agreed
	}
	switch d := p.defs[fn][reg].(type) {
	case *Const:
		return d.SizeOfType
	case *Copy:
		return p.resolve(fn, d.Src, depth)
	}
	return nil
}
