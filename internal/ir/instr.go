package ir

import (
	"fmt"
	"strings"
)

// Instr is a KIR instruction. Instructions that produce a value name the
// destination register via Def; registers are function-local string names.
type Instr interface {
	// Def returns the register defined by this instruction, or "".
	Def() string
	// Uses returns the registers read by this instruction.
	Uses() []string
	// String renders the instruction in KIR assembly syntax.
	String() string
	// base returns the embedded instruction header.
	base() *InstrBase
}

// InstrBase carries identity and position shared by all instructions. ID is
// assigned module-wide by Module.Finalize and is the stable handle used by
// invariants, monitors and CFI callsite policies.
type InstrBase struct {
	ID  int // unique within the module after Finalize; 0 before
	Pos int // source line for diagnostics (0 if synthetic)
}

func (b *InstrBase) base() *InstrBase { return b }

// InstrID returns the module-unique ID of an instruction (0 before
// Module.Finalize).
func InstrID(in Instr) int { return in.base().ID }

// InstrPos returns the source line recorded for an instruction.
func InstrPos(in Instr) int { return in.base().Pos }

// BinOpKind enumerates interpreter arithmetic/comparison operators.
type BinOpKind string

// Binary operators understood by the interpreter.
const (
	OpAdd BinOpKind = "+"
	OpSub BinOpKind = "-"
	OpMul BinOpKind = "*"
	OpDiv BinOpKind = "/"
	OpRem BinOpKind = "%"
	OpLt  BinOpKind = "<"
	OpLe  BinOpKind = "<="
	OpGt  BinOpKind = ">"
	OpGe  BinOpKind = ">="
	OpEq  BinOpKind = "=="
	OpNe  BinOpKind = "!="
	OpAnd BinOpKind = "&&"
	OpOr  BinOpKind = "||"
)

// Const materializes an integer constant: dest = val. When the constant was
// lowered from a sizeof(T) expression, SizeOfType retains T — the metadata
// the paper's modified Clang front-end preserves (§6) so heap-type detection
// can see through allocation wrappers.
type Const struct {
	InstrBase
	Dest       string
	Val        int64
	SizeOfType Type // non-nil when lowered from sizeof(T)
}

func (i *Const) Def() string    { return i.Dest }
func (i *Const) Uses() []string { return nil }
func (i *Const) String() string {
	if i.SizeOfType != nil {
		return fmt.Sprintf("%s = const %d ; sizeof(%s)", i.Dest, i.Val, i.SizeOfType)
	}
	return fmt.Sprintf("%s = const %d", i.Dest, i.Val)
}

// BinOp computes dest = a op b on integers.
type BinOp struct {
	InstrBase
	Dest string
	Op   BinOpKind
	A, B string
}

func (i *BinOp) Def() string    { return i.Dest }
func (i *BinOp) Uses() []string { return []string{i.A, i.B} }
func (i *BinOp) String() string { return fmt.Sprintf("%s = %s %s %s", i.Dest, i.A, i.Op, i.B) }

// Input reads the next value from the execution driver's input stream.
// Statically unknowable values (the paper's "difficult to determine
// statically", e.g. the i in *(p+i)) are modeled with Input.
type Input struct {
	InstrBase
	Dest string
}

func (i *Input) Def() string    { return i.Dest }
func (i *Input) Uses() []string { return nil }
func (i *Input) String() string { return i.Dest + " = input" }

// Output appends a value to the execution trace (driver-visible effect).
type Output struct {
	InstrBase
	Src string
}

func (i *Output) Def() string    { return "" }
func (i *Output) Uses() []string { return []string{i.Src} }
func (i *Output) String() string { return "output " + i.Src }

// Alloca creates a fresh stack object of type Ty: dest = &obj.
type Alloca struct {
	InstrBase
	Dest string
	Ty   Type
	Var  string // source-level variable name, for diagnostics
}

func (i *Alloca) Def() string    { return i.Dest }
func (i *Alloca) Uses() []string { return nil }
func (i *Alloca) String() string {
	return fmt.Sprintf("%s = alloca %s ; %s", i.Dest, i.Ty, i.Var)
}

// AddrGlobal takes the address of a module global: dest = &g.
type AddrGlobal struct {
	InstrBase
	Dest   string
	Global string
}

func (i *AddrGlobal) Def() string    { return i.Dest }
func (i *AddrGlobal) Uses() []string { return nil }
func (i *AddrGlobal) String() string { return fmt.Sprintf("%s = &@%s", i.Dest, i.Global) }

// AddrFunc takes the address of a function: dest = &f. Marks f address-taken.
type AddrFunc struct {
	InstrBase
	Dest string
	Func string
}

func (i *AddrFunc) Def() string    { return i.Dest }
func (i *AddrFunc) Uses() []string { return nil }
func (i *AddrFunc) String() string { return fmt.Sprintf("%s = &%s", i.Dest, i.Func) }

// Copy is a register move: dest = src.
type Copy struct {
	InstrBase
	Dest, Src string
}

func (i *Copy) Def() string    { return i.Dest }
func (i *Copy) Uses() []string { return []string{i.Src} }
func (i *Copy) String() string { return fmt.Sprintf("%s = %s", i.Dest, i.Src) }

// Load is an indirect read: dest = *addr.
type Load struct {
	InstrBase
	Dest, Addr string
}

func (i *Load) Def() string    { return i.Dest }
func (i *Load) Uses() []string { return []string{i.Addr} }
func (i *Load) String() string { return fmt.Sprintf("%s = load %s", i.Dest, i.Addr) }

// Store is an indirect write: *addr = src.
type Store struct {
	InstrBase
	Addr, Src string
}

func (i *Store) Def() string    { return "" }
func (i *Store) Uses() []string { return []string{i.Addr, i.Src} }
func (i *Store) String() string { return fmt.Sprintf("store %s, %s", i.Addr, i.Src) }

// FieldAddr computes a field address: dest = &(base->field) where base points
// to a value of Struct type. This is the Field-Of constraint of Table 1.
type FieldAddr struct {
	InstrBase
	Dest   string
	Base   string
	Struct *StructType
	Field  int // index into Struct.Fields
}

func (i *FieldAddr) Def() string    { return i.Dest }
func (i *FieldAddr) Uses() []string { return []string{i.Base} }
func (i *FieldAddr) String() string {
	return fmt.Sprintf("%s = &%s->%s", i.Dest, i.Base, i.Struct.Fields[i.Field].Name)
}

// IndexAddr computes an array-element address: dest = &base[idx]. The
// analysis is array-index insensitive, so IndexAddr propagates the base
// object unchanged; the interpreter uses idx for real element addressing.
type IndexAddr struct {
	InstrBase
	Dest  string
	Base  string
	Index string
	Elem  Type // element type of the array being indexed
}

func (i *IndexAddr) Def() string    { return i.Dest }
func (i *IndexAddr) Uses() []string { return []string{i.Base, i.Index} }
func (i *IndexAddr) String() string { return fmt.Sprintf("%s = &%s[%s]", i.Dest, i.Base, i.Index) }

// PtrAdd is arbitrary pointer arithmetic: dest = base + off, where off is a
// register holding a statically unknown slot offset. This is the construct
// the PA likely invariant targets (§4.2).
type PtrAdd struct {
	InstrBase
	Dest, Base, Off string
}

func (i *PtrAdd) Def() string    { return i.Dest }
func (i *PtrAdd) Uses() []string { return []string{i.Base, i.Off} }
func (i *PtrAdd) String() string { return fmt.Sprintf("%s = %s +p %s", i.Dest, i.Base, i.Off) }

// Call is a direct call: dest = callee(args...). Dest may be "".
type Call struct {
	InstrBase
	Dest   string
	Callee string
	Args   []string
}

func (i *Call) Def() string    { return i.Dest }
func (i *Call) Uses() []string { return i.Args }
func (i *Call) String() string {
	s := fmt.Sprintf("call %s(%s)", i.Callee, strings.Join(i.Args, ", "))
	if i.Dest != "" {
		s = i.Dest + " = " + s
	}
	return s
}

// ICall is an indirect call through a function-pointer register. Each ICall
// is a CFI-protected indirect callsite.
type ICall struct {
	InstrBase
	Dest    string
	FuncPtr string
	Args    []string
}

func (i *ICall) Def() string { return i.Dest }
func (i *ICall) Uses() []string {
	return append([]string{i.FuncPtr}, i.Args...)
}
func (i *ICall) String() string {
	s := fmt.Sprintf("icall %s(%s)", i.FuncPtr, strings.Join(i.Args, ", "))
	if i.Dest != "" {
		s = i.Dest + " = " + s
	}
	return s
}

// Malloc allocates a heap object: dest = malloc(sizeof SizeOf). SizeOf is
// the type named at the allocation site (the paper's retained sizeof
// metadata, §6). When SizeOf is nil the size comes from the Size register;
// the analysis then tries to recover the type interprocedurally from
// sizeof-tagged constants (§6's heap-type propagation), and if that fails
// the object's type stays unknown and the PA invariant never filters it
// (§6's soundness rule).
type Malloc struct {
	InstrBase
	Dest   string
	SizeOf Type   // may be nil: type not named at the allocation site
	Size   string // size register for dynamic allocations ("" when SizeOf set)
}

func (i *Malloc) Def() string { return i.Dest }
func (i *Malloc) Uses() []string {
	if i.Size == "" {
		return nil
	}
	return []string{i.Size}
}
func (i *Malloc) String() string {
	switch {
	case i.SizeOf != nil:
		return fmt.Sprintf("%s = malloc sizeof(%s)", i.Dest, i.SizeOf)
	case i.Size != "":
		return fmt.Sprintf("%s = malloc %s", i.Dest, i.Size)
	default:
		return fmt.Sprintf("%s = malloc ?", i.Dest)
	}
}

// Ret returns from the function. Src may be "" for void returns.
type Ret struct {
	InstrBase
	Src string
}

func (i *Ret) Def() string { return "" }
func (i *Ret) Uses() []string {
	if i.Src == "" {
		return nil
	}
	return []string{i.Src}
}
func (i *Ret) String() string {
	if i.Src == "" {
		return "ret"
	}
	return "ret " + i.Src
}

// Jump is an unconditional branch to a block.
type Jump struct {
	InstrBase
	Target string
}

func (i *Jump) Def() string    { return "" }
func (i *Jump) Uses() []string { return nil }
func (i *Jump) String() string { return "jmp " + i.Target }

// CondJump branches on cond != 0.
type CondJump struct {
	InstrBase
	Cond        string
	True, False string
}

func (i *CondJump) Def() string    { return "" }
func (i *CondJump) Uses() []string { return []string{i.Cond} }
func (i *CondJump) String() string {
	return fmt.Sprintf("br %s, %s, %s", i.Cond, i.True, i.False)
}

// IsTerminator reports whether in ends a basic block.
func IsTerminator(in Instr) bool {
	switch in.(type) {
	case *Ret, *Jump, *CondJump:
		return true
	}
	return false
}
