package ir

import "fmt"

// FuncBuilder incrementally constructs a Function. It manages fresh register
// names and the current insertion block, which keeps front-end lowering and
// test fixtures terse.
type FuncBuilder struct {
	F       *Function
	cur     *Block
	tmpSeq  int
	blkSeq  int
	curLine int
}

// NewFuncBuilder starts a function with the given signature. An entry block
// is created and selected.
func NewFuncBuilder(name string, params []string, paramTypes []Type, ret Type) *FuncBuilder {
	f := &Function{Name: name, Params: params, ParamTypes: paramTypes, RetType: ret}
	b := &FuncBuilder{F: f}
	b.NewBlock("entry")
	return b
}

// SetLine records the source line attached to subsequently emitted
// instructions.
func (b *FuncBuilder) SetLine(line int) { b.curLine = line }

// Temp returns a fresh register name.
func (b *FuncBuilder) Temp() string {
	b.tmpSeq++
	return fmt.Sprintf("%%t%d", b.tmpSeq)
}

// NewBlock appends a block with a unique name derived from hint and selects
// it as the insertion point.
func (b *FuncBuilder) NewBlock(hint string) *Block {
	name := hint
	if b.F.Block(name) != nil {
		b.blkSeq++
		name = fmt.Sprintf("%s.%d", hint, b.blkSeq)
	}
	blk := &Block{Name: name}
	b.F.Blocks = append(b.F.Blocks, blk)
	b.cur = blk
	return blk
}

// NewBlockLinked appends a block like NewBlock and, if the previously
// current block lacks a terminator, emits a jump from it to the new block.
func (b *FuncBuilder) NewBlockLinked(hint string) *Block {
	prev := b.cur
	blk := b.NewBlock(hint)
	if prev.Terminator() == nil {
		prev.Instrs = append(prev.Instrs, &Jump{Target: blk.Name})
	}
	return blk
}

// SetBlock selects blk as the insertion point.
func (b *FuncBuilder) SetBlock(blk *Block) { b.cur = blk }

// Cur returns the current insertion block.
func (b *FuncBuilder) Cur() *Block { return b.cur }

// Emit appends an instruction to the current block.
func (b *FuncBuilder) Emit(in Instr) Instr {
	in.base().Pos = b.curLine
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

// Terminated reports whether the current block already ends in a terminator.
func (b *FuncBuilder) Terminated() bool { return b.cur.Terminator() != nil }

// Const emits dest = const v into a fresh temp and returns the temp.
func (b *FuncBuilder) Const(v int64) string {
	t := b.Temp()
	b.Emit(&Const{Dest: t, Val: v})
	return t
}

// Alloca emits a stack allocation and returns the address register.
func (b *FuncBuilder) Alloca(varName string, ty Type) string {
	t := b.Temp()
	b.Emit(&Alloca{Dest: t, Ty: ty, Var: varName})
	return t
}

// Load emits dest = *addr and returns dest.
func (b *FuncBuilder) Load(addr string) string {
	t := b.Temp()
	b.Emit(&Load{Dest: t, Addr: addr})
	return t
}

// Store emits *addr = src.
func (b *FuncBuilder) Store(addr, src string) { b.Emit(&Store{Addr: addr, Src: src}) }

// FieldAddr emits dest = &(base->field k) and returns dest.
func (b *FuncBuilder) FieldAddr(base string, st *StructType, k int) string {
	t := b.Temp()
	b.Emit(&FieldAddr{Dest: t, Base: base, Struct: st, Field: k})
	return t
}

// Ret emits a return.
func (b *FuncBuilder) Ret(src string) { b.Emit(&Ret{Src: src}) }

// Jump emits an unconditional branch.
func (b *FuncBuilder) Jump(target string) { b.Emit(&Jump{Target: target}) }

// CondJump emits a conditional branch.
func (b *FuncBuilder) CondJump(cond, t, f string) {
	b.Emit(&CondJump{Cond: cond, True: t, False: f})
}
