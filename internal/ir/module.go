package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Global is a module-level object. All access is by address (AddrGlobal),
// mirroring LLVM globals.
type Global struct {
	Name string
	Type Type
}

// Block is a basic block: a label and a straight-line instruction list ending
// in a terminator.
type Block struct {
	Name   string
	Instrs []Instr
}

// Terminator returns the block's final instruction, or nil if absent.
func (b *Block) Terminator() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if IsTerminator(last) {
		return last
	}
	return nil
}

// Function is a KIR function. Params are register names holding arguments.
type Function struct {
	Name         string
	Params       []string
	ParamTypes   []Type
	RetType      Type // nil means void
	Blocks       []*Block
	AddressTaken bool // set by Finalize: the function's address is taken somewhere
}

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// Block returns the named block, or nil.
func (f *Function) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Instrs iterates over all instructions in block order.
func (f *Function) Instrs(visit func(b *Block, in Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(b, in)
		}
	}
}

// Module is a whole KIR program.
type Module struct {
	Name    string
	Structs map[string]*StructType
	Globals []*Global
	Funcs   []*Function

	funcIndex   map[string]*Function
	globalIndex map[string]*Global
	instrByID   map[int]Instr
	instrFunc   map[int]*Function
	nextID      int
	finalized   bool
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:    name,
		Structs: map[string]*StructType{},
	}
}

// AddGlobal registers a global object.
func (m *Module) AddGlobal(name string, t Type) *Global {
	g := &Global{Name: name, Type: t}
	m.Globals = append(m.Globals, g)
	return g
}

// AddFunc registers a function.
func (m *Module) AddFunc(f *Function) { m.Funcs = append(m.Funcs, f) }

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Function {
	if m.funcIndex != nil {
		return m.funcIndex[name]
	}
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global {
	if m.globalIndex != nil {
		return m.globalIndex[name]
	}
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// InstrByID returns the instruction with the given Finalize-assigned ID.
func (m *Module) InstrByID(id int) Instr { return m.instrByID[id] }

// FuncOfInstr returns the function containing the instruction with id.
func (m *Module) FuncOfInstr(id int) *Function { return m.instrFunc[id] }

// NumInstrs returns the number of instructions in the module (post-Finalize).
func (m *Module) NumInstrs() int { return m.nextID - 1 }

// Finalize assigns module-unique instruction IDs, builds lookup indexes, and
// computes address-taken facts. It must be called once construction is done
// and before analysis or execution.
func (m *Module) Finalize() error {
	if m.finalized {
		return nil
	}
	m.funcIndex = map[string]*Function{}
	m.globalIndex = map[string]*Global{}
	m.instrByID = map[int]Instr{}
	m.instrFunc = map[int]*Function{}
	m.nextID = 1
	for _, g := range m.Globals {
		if _, dup := m.globalIndex[g.Name]; dup {
			return fmt.Errorf("ir: duplicate global %q", g.Name)
		}
		m.globalIndex[g.Name] = g
	}
	for _, f := range m.Funcs {
		if _, dup := m.funcIndex[f.Name]; dup {
			return fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		m.funcIndex[f.Name] = f
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				in.base().ID = m.nextID
				m.instrByID[m.nextID] = in
				m.instrFunc[m.nextID] = f
				m.nextID++
				if af, ok := in.(*AddrFunc); ok {
					tgt := m.funcIndex[af.Func]
					if tgt == nil {
						return fmt.Errorf("ir: %s: address of unknown function %q", f.Name, af.Func)
					}
					tgt.AddressTaken = true
				}
			}
		}
	}
	m.finalized = true
	return m.Validate()
}

// Validate checks structural well-formedness: blocks end in terminators,
// referenced blocks/globals/functions exist, registers are defined before
// use within a function (conservatively: defined somewhere in the function),
// and field indices are in range.
func (m *Module) Validate() error {
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %s has no blocks", f.Name)
		}
		if len(f.Params) != len(f.ParamTypes) {
			return fmt.Errorf("ir: function %s: %d params, %d param types", f.Name, len(f.Params), len(f.ParamTypes))
		}
		blocks := map[string]bool{}
		for _, b := range f.Blocks {
			if blocks[b.Name] {
				return fmt.Errorf("ir: %s: duplicate block %q", f.Name, b.Name)
			}
			blocks[b.Name] = true
		}
		defined := map[string]bool{}
		for _, p := range f.Params {
			defined[p] = true
		}
		f.Instrs(func(_ *Block, in Instr) {
			if d := in.Def(); d != "" {
				defined[d] = true
			}
		})
		var err error
		for _, b := range f.Blocks {
			if b.Terminator() == nil {
				return fmt.Errorf("ir: %s/%s: block does not end in a terminator", f.Name, b.Name)
			}
			for pos, in := range b.Instrs {
				if IsTerminator(in) && pos != len(b.Instrs)-1 {
					return fmt.Errorf("ir: %s/%s: terminator %q not at block end", f.Name, b.Name, in)
				}
				for _, u := range in.Uses() {
					if !defined[u] {
						return fmt.Errorf("ir: %s/%s: use of undefined register %q in %q", f.Name, b.Name, u, in)
					}
				}
				switch in := in.(type) {
				case *AddrGlobal:
					if m.Global(in.Global) == nil {
						err = fmt.Errorf("ir: %s: unknown global %q", f.Name, in.Global)
					}
				case *AddrFunc:
					if m.Func(in.Func) == nil {
						err = fmt.Errorf("ir: %s: unknown function %q", f.Name, in.Func)
					}
				case *Call:
					if m.Func(in.Callee) == nil {
						err = fmt.Errorf("ir: %s: call to unknown function %q", f.Name, in.Callee)
					}
				case *FieldAddr:
					if in.Field < 0 || in.Field >= len(in.Struct.Fields) {
						err = fmt.Errorf("ir: %s: field index %d out of range for %s", f.Name, in.Field, in.Struct.Name)
					}
				case *Jump:
					if !blocks[in.Target] {
						err = fmt.Errorf("ir: %s: jump to unknown block %q", f.Name, in.Target)
					}
				case *CondJump:
					if !blocks[in.True] || !blocks[in.False] {
						err = fmt.Errorf("ir: %s: branch to unknown block (%q/%q)", f.Name, in.True, in.False)
					}
				}
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// AddressTakenFuncs returns the names of all address-taken functions, sorted.
func (m *Module) AddressTakenFuncs() []string {
	var out []string
	for _, f := range m.Funcs {
		if f.AddressTaken {
			out = append(out, f.Name)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the whole module in KIR assembly syntax.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	names := make([]string, 0, len(m.Structs))
	for n := range m.Structs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := m.Structs[n]
		fmt.Fprintf(&b, "struct %s {", n)
		for i, fl := range st.Fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, " %s %s", fl.Type, fl.Name)
		}
		b.WriteString(" }\n")
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global @%s : %s\n", g.Name, g.Type)
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(&b, "\nfunc %s(%s)", f.Name, typeList(f.ParamTypes))
		if f.RetType != nil {
			fmt.Fprintf(&b, " -> %s", f.RetType)
		}
		b.WriteString(" {\n")
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Name)
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", in)
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}
