// Package minic implements a small C-like front-end that lowers source text
// to KIR (internal/ir). MiniC covers the subset of C that drives pointer
// analysis and the paper's imprecision idioms: structs with function-pointer
// fields, multi-level pointers, arbitrary pointer arithmetic (*(p+i)),
// heap allocation via malloc(sizeof(T)), function pointers and indirect
// calls, arrays, and ordinary control flow.
package minic

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokPunct   // ( ) { } [ ] ; , . -> & * + - / % = == != < <= > >= ! && ||
	tokKeyword // struct global if else while return int char void fn malloc sizeof input output null
)

var keywords = map[string]bool{
	"struct": true, "if": true, "else": true, "while": true, "for": true,
	"break": true, "continue": true, "return": true,
	"int": true, "char": true, "void": true, "fn": true,
	"malloc": true, "sizeof": true, "input": true, "output": true, "null": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a front-end diagnostic with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src, returning all tokens (terminated by tokEOF).
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
				l.pos++
			}
			text := l.src[start:l.pos]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokInt, text: l.src[start:l.pos], line: l.line})
		default:
			p, err := l.punct()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokPunct, text: p, line: l.line})
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			l.pos += 2
			for l.pos < len(l.src) && !strings.HasPrefix(l.src[l.pos:], "*/") {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

var twoCharPuncts = []string{"->", "==", "!=", "<=", ">=", "&&", "||"}

func (l *lexer) punct() (string, error) {
	rest := l.src[l.pos:]
	for _, p := range twoCharPuncts {
		if strings.HasPrefix(rest, p) {
			l.pos += 2
			return p, nil
		}
	}
	c := l.src[l.pos]
	if strings.ContainsRune("(){}[];,.&*+-/%=<>!", rune(c)) {
		l.pos++
		return string(c), nil
	}
	return "", errf(l.line, "unexpected character %q", c)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }
