package minic

import (
	"repro/internal/ir"
)

// lowerExpr lowers an expression in value (rvalue) position.
func (fl *fnLowerer) lowerExpr(e expr) (val, error) {
	switch e := e.(type) {
	case *intLit:
		t := fl.b.Temp()
		fl.b.Emit(&ir.Const{Dest: t, Val: e.Val})
		return val{reg: t, ty: ir.Int}, nil
	case *nullLit:
		return val{reg: fl.b.Const(0), ty: nil}, nil
	case *inputExpr:
		t := fl.b.Temp()
		fl.b.Emit(&ir.Input{Dest: t})
		return val{reg: t, ty: ir.Int}, nil
	case *outputExpr:
		v, err := fl.lowerExpr(e.X)
		if err != nil {
			return val{}, err
		}
		fl.b.Emit(&ir.Output{Src: v.reg})
		return val{reg: v.reg, ty: ir.Int}, nil
	case *mallocExpr:
		return fl.lowerMalloc(e)
	case *sizeofExpr:
		ty, err := fl.resolveType(e.TS, -1)
		if err != nil {
			return val{}, err
		}
		if ty == nil {
			return val{}, errf(e.Line, "sizeof(void)")
		}
		t := fl.b.Temp()
		fl.b.Emit(&ir.Const{Dest: t, Val: int64(ir.NumSlots(ty)), SizeOfType: ty})
		return val{reg: t, ty: ir.Int}, nil
	case *identExpr:
		return fl.lowerIdentValue(e)
	case *unaryExpr:
		return fl.lowerUnary(e)
	case *binaryExpr:
		return fl.lowerBinary(e)
	case *fieldExpr, *indexExpr:
		l, err := fl.lowerAddr(e)
		if err != nil {
			return val{}, err
		}
		return fl.loadLoc(l, e.exprLine())
	case *callExpr:
		v, err := fl.lowerCall(e)
		if err != nil {
			return val{}, err
		}
		if v.ty == nil && v.reg == "" {
			return val{}, errf(e.Line, "void call used as a value")
		}
		return v, nil
	}
	return val{}, errf(e.exprLine(), "internal: unknown expression %T", e)
}

// lowerExprAllowVoid lowers an expression-statement expression; void calls
// are permitted.
func (fl *fnLowerer) lowerExprAllowVoid(e expr) (val, error) {
	if ce, ok := e.(*callExpr); ok {
		return fl.lowerCall(ce)
	}
	return fl.lowerExpr(e)
}

// loadLoc materializes the rvalue stored at l. Array-typed storage decays to
// a pointer to its first element; struct-typed storage is not loadable.
func (fl *fnLowerer) loadLoc(l loc, line int) (val, error) {
	switch t := l.ty.(type) {
	case *ir.ArrayType:
		return val{reg: l.addr, ty: ir.PointerTo(t.Elem)}, nil
	case *ir.StructType:
		return val{}, errf(line, "cannot use struct %s as a value; take a field or its address", t.Name)
	default:
		return val{reg: fl.b.Load(l.addr), ty: l.ty}, nil
	}
}

func (fl *fnLowerer) lowerIdentValue(e *identExpr) (val, error) {
	if v := fl.lookup(e.Name); v != nil {
		if v.reg != "" {
			return val{reg: v.reg, ty: v.ty}, nil
		}
		return fl.loadLoc(loc{addr: v.addr, ty: v.ty}, e.Line)
	}
	if gt, ok := fl.globals[e.Name]; ok {
		t := fl.b.Temp()
		fl.b.Emit(&ir.AddrGlobal{Dest: t, Global: e.Name})
		return fl.loadLoc(loc{addr: t, ty: gt}, e.Line)
	}
	if _, ok := fl.funcs[e.Name]; ok {
		t := fl.b.Temp()
		fl.b.Emit(&ir.AddrFunc{Dest: t, Func: e.Name})
		return val{reg: t, ty: ir.Fn}, nil
	}
	return val{}, errf(e.Line, "undefined name %q", e.Name)
}

func (fl *fnLowerer) lowerMalloc(e *mallocExpr) (val, error) {
	t := fl.b.Temp()
	if e.SizeOf != nil {
		ty, err := fl.resolveType(*e.SizeOf, -1)
		if err != nil {
			return val{}, err
		}
		if ty == nil {
			return val{}, errf(e.Line, "malloc(sizeof(void))")
		}
		fl.b.Emit(&ir.Malloc{Dest: t, SizeOf: ty})
		return val{reg: t, ty: ir.PointerTo(ty)}, nil
	}
	// Dynamic-size allocation: the type is not named at this site; the
	// analysis may still recover it from sizeof-tagged constants (§6).
	sz, err := fl.lowerIntOperand(e.Size, e.Line)
	if err != nil {
		return val{}, err
	}
	fl.b.Emit(&ir.Malloc{Dest: t, Size: sz.reg})
	return val{reg: t, ty: ir.PointerTo(ir.Int)}, nil
}

func (fl *fnLowerer) lowerUnary(e *unaryExpr) (val, error) {
	switch e.Op {
	case "&":
		if id, ok := e.X.(*identExpr); ok && fl.lookup(id.Name) == nil {
			if _, isGlobal := fl.globals[id.Name]; !isGlobal {
				if _, isFunc := fl.funcs[id.Name]; isFunc {
					t := fl.b.Temp()
					fl.b.Emit(&ir.AddrFunc{Dest: t, Func: id.Name})
					return val{reg: t, ty: ir.Fn}, nil
				}
			}
		}
		l, err := fl.lowerAddr(e.X)
		if err != nil {
			return val{}, err
		}
		if at, ok := l.ty.(*ir.ArrayType); ok {
			// &arr decays like arr.
			return val{reg: l.addr, ty: ir.PointerTo(at.Elem)}, nil
		}
		return val{reg: l.addr, ty: ir.PointerTo(l.ty)}, nil
	case "*":
		v, err := fl.lowerExpr(e.X)
		if err != nil {
			return val{}, err
		}
		pt, ok := v.ty.(*ir.PointerType)
		if !ok {
			return val{}, errf(e.Line, "cannot dereference non-pointer %s", typeName(v.ty))
		}
		return fl.loadLoc(loc{addr: v.reg, ty: pt.Elem}, e.Line)
	case "-":
		v, err := fl.lowerIntOperand(e.X, e.Line)
		if err != nil {
			return val{}, err
		}
		t := fl.b.Temp()
		fl.b.Emit(&ir.BinOp{Dest: t, Op: ir.OpSub, A: fl.b.Const(0), B: v.reg})
		return val{reg: t, ty: ir.Int}, nil
	case "!":
		v, err := fl.lowerExpr(e.X)
		if err != nil {
			return val{}, err
		}
		t := fl.b.Temp()
		fl.b.Emit(&ir.BinOp{Dest: t, Op: ir.OpEq, A: v.reg, B: fl.b.Const(0)})
		return val{reg: t, ty: ir.Int}, nil
	}
	return val{}, errf(e.Line, "internal: unknown unary %q", e.Op)
}

func (fl *fnLowerer) lowerIntOperand(e expr, line int) (val, error) {
	v, err := fl.lowerExpr(e)
	if err != nil {
		return val{}, err
	}
	if v.ty == nil {
		return val{reg: v.reg, ty: ir.Int}, nil
	}
	if _, ok := v.ty.(ir.IntType); !ok {
		return val{}, errf(line, "operand must be integer, got %s", typeName(v.ty))
	}
	return v, nil
}

func (fl *fnLowerer) lowerBinary(e *binaryExpr) (val, error) {
	switch e.Op {
	case "&&", "||":
		return fl.lowerShortCircuit(e)
	}
	x, err := fl.lowerExpr(e.X)
	if err != nil {
		return val{}, err
	}
	// Pointer arithmetic: ptr + int / ptr - int lowers to PtrAdd, the
	// arbitrary-arithmetic construct targeted by the PA likely invariant.
	if xp, ok := x.ty.(*ir.PointerType); ok && (e.Op == "+" || e.Op == "-") {
		y, err := fl.lowerIntOperand(e.Y, e.Line)
		if err != nil {
			return val{}, err
		}
		off := y.reg
		if e.Op == "-" {
			n := fl.b.Temp()
			fl.b.Emit(&ir.BinOp{Dest: n, Op: ir.OpSub, A: fl.b.Const(0), B: y.reg})
			off = n
		}
		t := fl.b.Temp()
		fl.b.Emit(&ir.PtrAdd{Dest: t, Base: x.reg, Off: off})
		return val{reg: t, ty: xp}, nil
	}
	y, err := fl.lowerExpr(e.Y)
	if err != nil {
		return val{}, err
	}
	if e.Op == "==" || e.Op == "!=" {
		// Equality works on integers, pointers, and null.
		t := fl.b.Temp()
		fl.b.Emit(&ir.BinOp{Dest: t, Op: ir.BinOpKind(e.Op), A: x.reg, B: y.reg})
		return val{reg: t, ty: ir.Int}, nil
	}
	for _, v := range []val{x, y} {
		if v.ty != nil {
			if _, ok := v.ty.(ir.IntType); !ok {
				return val{}, errf(e.Line, "operator %q requires integers, got %s", e.Op, typeName(v.ty))
			}
		}
	}
	t := fl.b.Temp()
	fl.b.Emit(&ir.BinOp{Dest: t, Op: ir.BinOpKind(e.Op), A: x.reg, B: y.reg})
	return val{reg: t, ty: ir.Int}, nil
}

// lowerShortCircuit lowers && and || with proper short-circuit evaluation
// via a stack slot (MiniC has no SSA phis).
func (fl *fnLowerer) lowerShortCircuit(e *binaryExpr) (val, error) {
	slot := fl.b.Alloca("$sc", ir.Int)
	lhs, err := fl.lowerCond(e.X)
	if err != nil {
		return val{}, err
	}
	condBlk := fl.b.Cur()
	rhsBlk := fl.b.NewBlock("sc.rhs")
	rhs, err := fl.lowerCond(e.Y)
	if err != nil {
		return val{}, err
	}
	fl.b.Store(slot, rhs)
	rhsEnd := fl.b.Cur()
	shortBlk := fl.b.NewBlock("sc.short")
	var short int64
	if e.Op == "||" {
		short = 1
	}
	fl.b.Store(slot, fl.b.Const(short))
	join := fl.b.NewBlock("sc.join")
	fl.b.SetBlock(condBlk)
	if e.Op == "&&" {
		fl.b.CondJump(lhs, rhsBlk.Name, shortBlk.Name)
	} else {
		fl.b.CondJump(lhs, shortBlk.Name, rhsBlk.Name)
	}
	fl.b.SetBlock(rhsEnd)
	fl.b.Jump(join.Name)
	fl.b.SetBlock(shortBlk)
	fl.b.Jump(join.Name)
	fl.b.SetBlock(join)
	return val{reg: fl.b.Load(slot), ty: ir.Int}, nil
}

// lowerAddr lowers an expression in lvalue position, yielding the address.
func (fl *fnLowerer) lowerAddr(e expr) (loc, error) {
	switch e := e.(type) {
	case *identExpr:
		if v := fl.lookup(e.Name); v != nil {
			if v.addr == "" {
				return loc{}, errf(e.Line, "internal: parameter %q has no storage slot", e.Name)
			}
			return loc{addr: v.addr, ty: v.ty}, nil
		}
		if gt, ok := fl.globals[e.Name]; ok {
			t := fl.b.Temp()
			fl.b.Emit(&ir.AddrGlobal{Dest: t, Global: e.Name})
			return loc{addr: t, ty: gt}, nil
		}
		return loc{}, errf(e.Line, "cannot take address of %q", e.Name)
	case *unaryExpr:
		if e.Op != "*" {
			return loc{}, errf(e.Line, "expression is not addressable")
		}
		v, err := fl.lowerExpr(e.X)
		if err != nil {
			return loc{}, err
		}
		pt, ok := v.ty.(*ir.PointerType)
		if !ok {
			return loc{}, errf(e.Line, "cannot dereference non-pointer %s", typeName(v.ty))
		}
		return loc{addr: v.reg, ty: pt.Elem}, nil
	case *fieldExpr:
		var base loc
		if e.Arrow {
			v, err := fl.lowerExpr(e.X)
			if err != nil {
				return loc{}, err
			}
			pt, ok := v.ty.(*ir.PointerType)
			if !ok {
				return loc{}, errf(e.Line, "-> on non-pointer %s", typeName(v.ty))
			}
			base = loc{addr: v.reg, ty: pt.Elem}
		} else {
			b, err := fl.lowerAddr(e.X)
			if err != nil {
				return loc{}, err
			}
			base = b
		}
		st, ok := base.ty.(*ir.StructType)
		if !ok {
			return loc{}, errf(e.Line, "field access on non-struct %s", typeName(base.ty))
		}
		k := st.FieldIndex(e.Name)
		if k < 0 {
			return loc{}, errf(e.Line, "struct %s has no field %q", st.Name, e.Name)
		}
		return loc{addr: fl.b.FieldAddr(base.addr, st, k), ty: st.Fields[k].Type}, nil
	case *indexExpr:
		return fl.lowerIndexAddr(e)
	}
	return loc{}, errf(e.exprLine(), "expression is not addressable")
}

func (fl *fnLowerer) lowerIndexAddr(e *indexExpr) (loc, error) {
	// Indexing works on arrays (by lvalue) and on pointers (by rvalue).
	var elem ir.Type
	var baseReg string
	if l, err := fl.tryLowerArrayAddr(e.X); err != nil {
		return loc{}, err
	} else if l != nil {
		elem = l.ty.(*ir.ArrayType).Elem
		baseReg = l.addr
	} else {
		v, err := fl.lowerExpr(e.X)
		if err != nil {
			return loc{}, err
		}
		pt, ok := v.ty.(*ir.PointerType)
		if !ok {
			return loc{}, errf(e.Line, "cannot index non-array, non-pointer %s", typeName(v.ty))
		}
		elem = pt.Elem
		baseReg = v.reg
	}
	idx, err := fl.lowerIntOperand(e.Index, e.Line)
	if err != nil {
		return loc{}, err
	}
	t := fl.b.Temp()
	fl.b.Emit(&ir.IndexAddr{Dest: t, Base: baseReg, Index: idx.reg, Elem: elem})
	return loc{addr: t, ty: elem}, nil
}

// tryLowerArrayAddr returns the lvalue of e if e denotes array-typed storage,
// nil otherwise (without emitting code for the miss... the probe is
// syntactic: identifiers and field accesses only).
func (fl *fnLowerer) tryLowerArrayAddr(e expr) (*loc, error) {
	switch x := e.(type) {
	case *identExpr:
		if v := fl.lookup(x.Name); v != nil {
			if ir.IsArray(v.ty) {
				l, err := fl.lowerAddr(e)
				if err != nil {
					return nil, err
				}
				return &l, nil
			}
			return nil, nil
		}
		if gt, ok := fl.globals[x.Name]; ok && ir.IsArray(gt) {
			l, err := fl.lowerAddr(e)
			if err != nil {
				return nil, err
			}
			return &l, nil
		}
	case *fieldExpr:
		ty, err := fl.staticFieldType(x)
		if err != nil || ty == nil || !ir.IsArray(ty) {
			return nil, nil
		}
		l, err := fl.lowerAddr(e)
		if err != nil {
			return nil, err
		}
		return &l, nil
	}
	return nil, nil
}

// staticFieldType resolves the type of a field expression without emitting
// IR, or nil if it cannot be determined syntactically.
func (fl *fnLowerer) staticFieldType(e *fieldExpr) (ir.Type, error) {
	bt := fl.staticExprType(e.X)
	if bt == nil {
		return nil, nil
	}
	if e.Arrow {
		pt, ok := bt.(*ir.PointerType)
		if !ok {
			return nil, nil
		}
		bt = pt.Elem
	}
	st, ok := bt.(*ir.StructType)
	if !ok {
		return nil, nil
	}
	k := st.FieldIndex(e.Name)
	if k < 0 {
		return nil, nil
	}
	return st.Fields[k].Type, nil
}

// staticExprType gives a best-effort static type for simple expressions.
func (fl *fnLowerer) staticExprType(e expr) ir.Type {
	switch e := e.(type) {
	case *identExpr:
		if v := fl.lookup(e.Name); v != nil {
			return v.ty
		}
		if gt, ok := fl.globals[e.Name]; ok {
			return gt
		}
	case *fieldExpr:
		t, _ := fl.staticFieldType(e)
		return t
	}
	return nil
}

func (fl *fnLowerer) lowerCall(e *callExpr) (val, error) {
	// Direct call: callee is an identifier naming a function not shadowed by
	// a local variable.
	if id, ok := e.Callee.(*identExpr); ok && fl.lookup(id.Name) == nil {
		if fd, isFunc := fl.funcs[id.Name]; isFunc {
			return fl.lowerDirectCall(e, fd)
		}
	}
	// Indirect call through a fn-typed expression.
	cv, err := fl.lowerExpr(e.Callee)
	if err != nil {
		return val{}, err
	}
	if cv.ty != nil {
		if _, ok := cv.ty.(ir.FuncType); !ok {
			return val{}, errf(e.Line, "called expression has type %s, not fn", typeName(cv.ty))
		}
	}
	args, err := fl.lowerArgs(e.Args)
	if err != nil {
		return val{}, err
	}
	t := fl.b.Temp()
	fl.b.Emit(&ir.ICall{Dest: t, FuncPtr: cv.reg, Args: args})
	// Indirect calls are signature-erased, so their results are untyped
	// (assignable into any storage), like the null literal.
	return val{reg: t, ty: nil}, nil
}

func (fl *fnLowerer) lowerDirectCall(e *callExpr, fd *funcDecl) (val, error) {
	if len(e.Args) != len(fd.Params) {
		return val{}, errf(e.Line, "call to %s with %d args, want %d", fd.Name, len(e.Args), len(fd.Params))
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		av, err := fl.lowerExpr(a)
		if err != nil {
			return val{}, err
		}
		pt, err := fl.resolveType(fd.Params[i].Type, -1)
		if err != nil {
			return val{}, err
		}
		if err := fl.checkAssignable(pt, av, a.exprLine()); err != nil {
			return val{}, err
		}
		args[i] = av.reg
	}
	ret, err := fl.resolveType(fd.Ret, -1)
	if err != nil {
		return val{}, err
	}
	dest := ""
	if ret != nil {
		dest = fl.b.Temp()
	}
	fl.b.Emit(&ir.Call{Dest: dest, Callee: fd.Name, Args: args})
	return val{reg: dest, ty: ret}, nil
}

func (fl *fnLowerer) lowerArgs(args []expr) ([]string, error) {
	out := make([]string, len(args))
	for i, a := range args {
		av, err := fl.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		out[i] = av.reg
	}
	return out, nil
}

func typeName(t ir.Type) string {
	if t == nil {
		return "null"
	}
	return t.String()
}
