package minic

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return m
}

func compileErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := Compile("test", src)
	if err == nil {
		t.Fatalf("Compile succeeded, want error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

// countInstr counts instructions of the same dynamic type as proto.
func countInstr[T ir.Instr](m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			if _, ok := in.(T); ok {
				n++
			}
		})
	}
	return n
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("int x; // comment\n/* block\ncomment */ x = x -> y && 12;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"int", "x", ";", "x", "=", "x", "->", "y", "&&", "12", ";"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
}

func TestLexRejectsBadChar(t *testing.T) {
	if _, err := lex("int x @ y;"); err == nil {
		t.Fatal("lex accepted '@'")
	}
}

func TestLexTracksLines(t *testing.T) {
	toks, err := lex("int x;\n\nint y;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].text != "int" || toks[3].line != 3 {
		t.Fatalf("token %v at line %d, want 'int' at 3", toks[3].text, toks[3].line)
	}
}

const mbedSnippet = `
struct ssl_ctx {
  fn f_send;
  fn f_recv;
  int* peer;
}

ssl_ctx global_ssl;
int scratch[16];

int net_send(int* c) { return 1; }
int net_recv(int* c) { return 2; }

void setup() {
  global_ssl.f_send = &net_send;
  global_ssl.f_recv = net_recv;
}

int main() {
  int x;
  setup();
  x = global_ssl.f_send(scratch);
  return x;
}
`

func TestCompileMbedSnippet(t *testing.T) {
	m := compile(t, mbedSnippet)
	if len(m.Funcs) != 4 {
		t.Fatalf("functions = %d, want 4", len(m.Funcs))
	}
	st := m.Structs["ssl_ctx"]
	if st == nil || len(st.Fields) != 3 {
		t.Fatalf("ssl_ctx struct = %+v", st)
	}
	if !m.Func("net_send").AddressTaken || !m.Func("net_recv").AddressTaken {
		t.Error("callbacks not address-taken")
	}
	if m.Func("setup").AddressTaken {
		t.Error("setup wrongly address-taken")
	}
	if n := countInstr[*ir.ICall](m); n != 1 {
		t.Errorf("icalls = %d, want 1", n)
	}
	if n := countInstr[*ir.FieldAddr](m); n != 3 {
		t.Errorf("fieldaddrs = %d, want 3", n)
	}
}

func TestCompilePointerArithmetic(t *testing.T) {
	src := `
struct plugin { int* data; fn handler; }
plugin mod_auth;
int buff[64];

void write_header(char* s, char* src) {
  int i;
  i = input();
  *(s + i) = *(src + i);
}

int main() {
  write_header(buff, buff);
  return 0;
}
`
	m := compile(t, src)
	if n := countInstr[*ir.PtrAdd](m); n != 2 {
		t.Errorf("ptradds = %d, want 2", n)
	}
	if n := countInstr[*ir.IndexAddr](m); n != 0 {
		t.Errorf("indexaddrs = %d, want 0", n)
	}
}

func TestCompileArrayIndexingIsNotArbitraryArithmetic(t *testing.T) {
	src := `
int table[8];
int main() {
  int i;
  i = input();
  table[i] = 7;
  return table[i];
}
`
	m := compile(t, src)
	if n := countInstr[*ir.PtrAdd](m); n != 0 {
		t.Errorf("ptradds = %d, want 0", n)
	}
	if n := countInstr[*ir.IndexAddr](m); n != 2 {
		t.Errorf("indexaddrs = %d, want 2", n)
	}
}

func TestCompileMallocSizeof(t *testing.T) {
	src := `
struct state { int* f1; int* f2; }
int main() {
  state* s;
  int* q;
  s = malloc(sizeof(state));
  q = malloc(64);
  return 0;
}
`
	m := compile(t, src)
	var typed, untyped int
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			if mal, ok := in.(*ir.Malloc); ok {
				if mal.SizeOf != nil {
					typed++
					if ir.BaseName(mal.SizeOf) != "state" {
						t.Errorf("sizeof type = %s", mal.SizeOf)
					}
				} else {
					untyped++
				}
			}
		})
	}
	if typed != 1 || untyped != 1 {
		t.Errorf("mallocs typed=%d untyped=%d, want 1/1", typed, untyped)
	}
}

func TestCompileControlFlow(t *testing.T) {
	src := `
int main() {
  int i;
  int sum;
  i = 0;
  sum = 0;
  while (i < 10) {
    if (i % 2 == 0) {
      sum = sum + i;
    } else {
      sum = sum - 1;
    }
    i = i + 1;
  }
  return sum;
}
`
	m := compile(t, src)
	f := m.Func("main")
	if len(f.Blocks) < 6 {
		t.Errorf("blocks = %d, want >= 6", len(f.Blocks))
	}
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			t.Errorf("block %s lacks terminator", b.Name)
		}
	}
}

func TestCompileShortCircuit(t *testing.T) {
	src := `
int main() {
  int* p;
  p = null;
  if (p != null && *p > 0) {
    return 1;
  }
  return 0;
}
`
	m := compile(t, src)
	// The dereference *p must be in a block only reachable when p != null.
	f := m.Func("main")
	var loadBlk string
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Load); ok && strings.HasPrefix(b.Name, "sc.rhs") {
				loadBlk = b.Name
			}
		}
	}
	if loadBlk == "" {
		t.Error("dereference not confined to short-circuit rhs block")
	}
}

func TestCompileIndirectCallThroughField(t *testing.T) {
	src := `
struct ops { fn open; fn close; }
int do_open(int* x) { return 1; }
int main() {
  ops o;
  o.open = &do_open;
  return o.open(null);
}
`
	m := compile(t, src)
	if n := countInstr[*ir.ICall](m); n != 1 {
		t.Errorf("icalls = %d, want 1", n)
	}
}

func TestCompileMultiLevelPointers(t *testing.T) {
	src := `
int o;
int main() {
  int* p;
  int** q;
  int* r;
  p = &o;
  q = &p;
  r = *q;
  return *r;
}
`
	m := compile(t, src)
	if m.Func("main") == nil {
		t.Fatal("main missing")
	}
	if n := countInstr[*ir.Load](m); n < 3 {
		t.Errorf("loads = %d, want >= 3", n)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown type", `foo x; int main() { return 0; }`, "unknown type"},
		{"unknown var", `int main() { return zz; }`, "undefined name"},
		{"bad field", `struct s { int a; } int main() { s v; v.b = 1; return 0; }`, "no field"},
		{"deref int", `int main() { int x; x = 1; return *x; }`, "dereference non-pointer"},
		{"void var", `int main() { void v; return 0; }`, "void type"},
		{"dup struct", `struct s { int a; } struct s { int b; } int main() { return 0; }`, "duplicate struct"},
		{"dup func", `int f() { return 0; } int f() { return 1; } int main() { return 0; }`, "duplicate function"},
		{"dup global", `int g; int g; int main() { return 0; }`, "duplicate global"},
		{"arg count", `int f(int a) { return a; } int main() { return f(1, 2); }`, "2 args, want 1"},
		{"assign struct ptr", `struct a { int x; } struct b { int y; } int main() { a* p; b* q; p = null; q = p; return 0; }`, "cannot assign"},
		{"void return value", `void f() { return 3; } int main() { return 0; }`, "void function"},
		{"missing return value", `int f() { return; } int main() { return 0; }`, "missing return value"},
		{"call non-fn", `int main() { int x; x = 1; return x(); }`, "not fn"},
		{"self struct", `struct s { s inner; } int main() { return 0; }`, "contains itself"},
		{"lt on pointers", `int g; int main() { int* p; p = &g; if (p < p) { return 1; } return 0; }`, "requires integers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { compileErr(t, c.src, c.want) })
	}
}

func TestCompileFnFieldArrays(t *testing.T) {
	src := `
struct cmd { fn exec; }
cmd table[4];
int run_a(int* x) { return 1; }
int run_b(int* x) { return 2; }
int main() {
  int i;
  table[0].exec = &run_a;
  table[1].exec = &run_b;
  i = input();
  return table[i].exec(null);
}
`
	m := compile(t, src)
	if n := countInstr[*ir.ICall](m); n != 1 {
		t.Errorf("icalls = %d, want 1", n)
	}
	if n := countInstr[*ir.IndexAddr](m); n != 3 {
		t.Errorf("indexaddrs = %d, want 3", n)
	}
}

func TestCompileNestedIfElseChain(t *testing.T) {
	src := `
int classify(int x) {
  if (x < 0) {
    return 0;
  } else if (x == 0) {
    return 1;
  } else {
    return 2;
  }
}
int main() { return classify(input()); }
`
	m := compile(t, src)
	if m.Func("classify") == nil {
		t.Fatal("classify missing")
	}
}

func TestParamAssignmentGetsSlot(t *testing.T) {
	src := `
int g;
int f(int* p) {
  p = &g;
  return *p;
}
int main() { return f(null); }
`
	m := compile(t, src)
	// p is assigned, so it must be backed by an alloca in f.
	found := false
	m.Func("f").Instrs(func(_ *ir.Block, in ir.Instr) {
		if a, ok := in.(*ir.Alloca); ok && a.Var == "p" {
			found = true
		}
	})
	if !found {
		t.Error("assigned parameter p not alloca-backed")
	}
}

func TestStructCopyAssignment(t *testing.T) {
	src := `
struct pair { int a; int b; }
int main() {
  pair x;
  pair y;
  x.a = 1;
  x.b = 2;
  y = x;
  return y.a + y.b;
}
`
	m := compile(t, src)
	// struct copy lowers to per-field load/store: 2 fields -> at least 2
	// stores beyond the two literal field assignments.
	if n := countInstr[*ir.Store](m); n < 4 {
		t.Errorf("stores = %d, want >= 4", n)
	}
}
