package minic

import (
	"repro/internal/ir"
)

// Compile parses and lowers MiniC source to a finalized KIR module.
func Compile(name, src string) (*ir.Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	prog, err := parseProgram(toks)
	if err != nil {
		return nil, err
	}
	lw := &lowerer{
		mod:     ir.NewModule(name),
		funcs:   map[string]*funcDecl{},
		globals: map[string]ir.Type{},
	}
	if err := lw.run(prog); err != nil {
		return nil, err
	}
	if err := lw.mod.Finalize(); err != nil {
		return nil, err
	}
	// §6: propagate sizeof type metadata to dynamic allocation sites.
	ir.PropagateHeapTypes(lw.mod)
	return lw.mod, nil
}

// MustCompile is Compile that panics on error; for fixtures and workloads.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

type lowerer struct {
	mod     *ir.Module
	funcs   map[string]*funcDecl
	globals map[string]ir.Type
}

// varInfo describes a name visible in the current scope.
type varInfo struct {
	addr string  // register holding the variable's address ("" for direct params)
	reg  string  // register holding the value directly (unallocated params)
	ty   ir.Type // declared type
}

// fnLowerer lowers one function body.
type fnLowerer struct {
	*lowerer
	b      *ir.FuncBuilder
	fd     *funcDecl
	ret    ir.Type
	scopes []map[string]*varInfo
	loops  []loopCtx // enclosing loops, innermost last
}

// loopCtx names the jump targets break and continue lower to.
type loopCtx struct {
	breakBlk    string
	continueBlk string
}

func (lw *lowerer) run(prog *program) error {
	// Pass 1: struct shells (to allow pointer-typed forward references).
	for _, sd := range prog.Structs {
		if _, dup := lw.mod.Structs[sd.Name]; dup {
			return errf(sd.Line, "duplicate struct %q", sd.Name)
		}
		lw.mod.Structs[sd.Name] = &ir.StructType{Name: sd.Name}
	}
	// Pass 2: struct fields.
	for _, sd := range prog.Structs {
		st := lw.mod.Structs[sd.Name]
		for _, f := range sd.Fields {
			ft, err := lw.resolveType(f.Type, f.ArrayLen)
			if err != nil {
				return err
			}
			if ft == nil {
				return errf(f.Line, "field %q has void type", f.Name)
			}
			if inner, ok := ft.(*ir.StructType); ok && inner == st {
				return errf(f.Line, "struct %s directly contains itself", sd.Name)
			}
			if st.FieldIndex(f.Name) >= 0 {
				return errf(f.Line, "duplicate field %q in struct %s", f.Name, sd.Name)
			}
			st.Fields = append(st.Fields, ir.Field{Name: f.Name, Type: ft})
		}
	}
	// Pass 3: globals.
	for _, g := range prog.Globals {
		gt, err := lw.resolveType(g.Type, g.ArrayLen)
		if err != nil {
			return err
		}
		if gt == nil {
			return errf(g.Line, "global %q has void type", g.Name)
		}
		if _, dup := lw.globals[g.Name]; dup {
			return errf(g.Line, "duplicate global %q", g.Name)
		}
		lw.globals[g.Name] = gt
		lw.mod.AddGlobal(g.Name, gt)
	}
	// Pass 4: function signatures.
	for _, fd := range prog.Funcs {
		if _, dup := lw.funcs[fd.Name]; dup {
			return errf(fd.Line, "duplicate function %q", fd.Name)
		}
		lw.funcs[fd.Name] = fd
	}
	// Pass 5: function bodies.
	for _, fd := range prog.Funcs {
		if err := lw.lowerFunc(fd); err != nil {
			return err
		}
	}
	return nil
}

// resolveType maps a syntactic type spec (plus optional array length) to an
// ir.Type. Returns nil for plain void.
func (lw *lowerer) resolveType(ts typeSpec, arrayLen int) (ir.Type, error) {
	var base ir.Type
	switch ts.Base {
	case "int", "char":
		base = ir.Int
	case "void":
		if ts.Ptr == 0 {
			if arrayLen >= 0 {
				return nil, errf(ts.Line, "array of void")
			}
			return nil, nil
		}
		base = ir.Int // void* is modeled as int*
	case "fn":
		base = ir.Fn
	default:
		st, ok := lw.mod.Structs[ts.Base]
		if !ok {
			return nil, errf(ts.Line, "unknown type %q", ts.Base)
		}
		base = st
	}
	t := base
	for i := 0; i < ts.Ptr; i++ {
		t = ir.PointerTo(t)
	}
	if arrayLen >= 0 {
		t = &ir.ArrayType{Elem: t, Len: arrayLen}
	}
	return t, nil
}

func (lw *lowerer) lowerFunc(fd *funcDecl) error {
	ret, err := lw.resolveType(fd.Ret, -1)
	if err != nil {
		return err
	}
	params := make([]string, len(fd.Params))
	ptypes := make([]ir.Type, len(fd.Params))
	for i, p := range fd.Params {
		pt, err := lw.resolveType(p.Type, -1)
		if err != nil {
			return err
		}
		if pt == nil || ir.IsStruct(pt) || ir.IsArray(pt) {
			return errf(p.Line, "parameter %q must have scalar or pointer type", p.Name)
		}
		params[i] = "%" + p.Name
		ptypes[i] = pt
	}
	fl := &fnLowerer{
		lowerer: lw,
		b:       ir.NewFuncBuilder(fd.Name, params, ptypes, ret),
		fd:      fd,
		ret:     ret,
	}
	fl.pushScope()
	mutated := paramsNeedingSlots(fd)
	for i, p := range fd.Params {
		info := &varInfo{ty: ptypes[i]}
		if mutated[p.Name] {
			info.addr = fl.b.Alloca(p.Name, ptypes[i])
			fl.b.Store(info.addr, params[i])
		} else {
			info.reg = params[i]
		}
		if fl.scopes[0][p.Name] != nil {
			return errf(p.Line, "duplicate parameter %q", p.Name)
		}
		fl.scopes[0][p.Name] = info
	}
	if err := fl.lowerStmts(fd.Body); err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.emitDefaultReturn()
	}
	lw.mod.AddFunc(fl.b.F)
	return nil
}

func (fl *fnLowerer) emitDefaultReturn() {
	if fl.ret == nil {
		fl.b.Ret("")
		return
	}
	fl.b.Ret(fl.b.Const(0))
}

func (fl *fnLowerer) pushScope() { fl.scopes = append(fl.scopes, map[string]*varInfo{}) }
func (fl *fnLowerer) popScope()  { fl.scopes = fl.scopes[:len(fl.scopes)-1] }

func (fl *fnLowerer) lookup(name string) *varInfo {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if v := fl.scopes[i][name]; v != nil {
			return v
		}
	}
	return nil
}

// paramsNeedingSlots returns the set of parameter names that are assigned or
// have their address taken anywhere in the body; those are backed by allocas.
func paramsNeedingSlots(fd *funcDecl) map[string]bool {
	names := map[string]bool{}
	for _, p := range fd.Params {
		names[p.Name] = false
	}
	var walkStmts func(ss []stmt)
	var walkExpr func(e expr)
	markIdent := func(e expr) {
		if id, ok := e.(*identExpr); ok {
			if _, isParam := names[id.Name]; isParam {
				names[id.Name] = true
			}
		}
	}
	walkExpr = func(e expr) {
		switch e := e.(type) {
		case *unaryExpr:
			if e.Op == "&" {
				markIdent(e.X)
			}
			walkExpr(e.X)
		case *binaryExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *fieldExpr:
			walkExpr(e.X)
		case *indexExpr:
			walkExpr(e.X)
			walkExpr(e.Index)
		case *callExpr:
			walkExpr(e.Callee)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *outputExpr:
			walkExpr(e.X)
		case *mallocExpr:
			if e.Size != nil {
				walkExpr(e.Size)
			}
		}
	}
	walkStmts = func(ss []stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *declStmt:
				if s.Decl.Init != nil {
					walkExpr(s.Decl.Init)
				}
			case *assignStmt:
				markIdent(s.LHS)
				walkExpr(s.LHS)
				walkExpr(s.RHS)
			case *exprStmt:
				walkExpr(s.E)
			case *ifStmt:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *whileStmt:
				walkExpr(s.Cond)
				walkStmts(s.Body)
			case *forStmt:
				if s.Init != nil {
					walkStmts([]stmt{s.Init})
				}
				if s.Cond != nil {
					walkExpr(s.Cond)
				}
				if s.Post != nil {
					walkStmts([]stmt{s.Post})
				}
				walkStmts(s.Body)
			case *returnStmt:
				if s.Value != nil {
					walkExpr(s.Value)
				}
			}
		}
	}
	walkStmts(fd.Body)
	out := map[string]bool{}
	for n, m := range names {
		if m {
			out[n] = true
		}
	}
	return out
}

// val is a lowered rvalue: a register plus its MiniC static type. A nil type
// marks the null literal, assignable to any pointer.
type val struct {
	reg string
	ty  ir.Type
}

// loc is a lowered lvalue: the register holding the address plus the type of
// the addressed storage.
type loc struct {
	addr string
	ty   ir.Type
}

func (fl *fnLowerer) lowerStmts(ss []stmt) error {
	fl.pushScope()
	defer fl.popScope()
	for _, s := range ss {
		if fl.b.Terminated() {
			// Unreachable code after return: keep lowering into a dead block
			// so diagnostics still fire, but control never reaches it.
			fl.b.NewBlock("dead")
		}
		if err := fl.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fl *fnLowerer) lowerStmt(s stmt) error {
	fl.b.SetLine(s.stmtLine())
	switch s := s.(type) {
	case *declStmt:
		return fl.lowerDecl(s.Decl)
	case *assignStmt:
		return fl.lowerAssign(s)
	case *exprStmt:
		_, err := fl.lowerExprAllowVoid(s.E)
		return err
	case *returnStmt:
		return fl.lowerReturn(s)
	case *ifStmt:
		return fl.lowerIf(s)
	case *whileStmt:
		return fl.lowerWhile(s)
	case *forStmt:
		return fl.lowerFor(s)
	case *breakStmt:
		if len(fl.loops) == 0 {
			return errf(s.Line, "break outside a loop")
		}
		fl.b.Jump(fl.loops[len(fl.loops)-1].breakBlk)
		return nil
	case *continueStmt:
		if len(fl.loops) == 0 {
			return errf(s.Line, "continue outside a loop")
		}
		fl.b.Jump(fl.loops[len(fl.loops)-1].continueBlk)
		return nil
	}
	return errf(s.stmtLine(), "internal: unknown statement %T", s)
}

func (fl *fnLowerer) lowerDecl(d *varDecl) error {
	t, err := fl.resolveType(d.Type, d.ArrayLen)
	if err != nil {
		return err
	}
	if t == nil {
		return errf(d.Line, "variable %q has void type", d.Name)
	}
	if fl.scopes[len(fl.scopes)-1][d.Name] != nil {
		return errf(d.Line, "duplicate variable %q in scope", d.Name)
	}
	addr := fl.b.Alloca(d.Name, t)
	fl.scopes[len(fl.scopes)-1][d.Name] = &varInfo{addr: addr, ty: t}
	if d.Init != nil {
		v, err := fl.lowerExpr(d.Init)
		if err != nil {
			return err
		}
		if err := fl.checkAssignable(t, v, d.Line); err != nil {
			return err
		}
		fl.b.Store(addr, v.reg)
	}
	return nil
}

func (fl *fnLowerer) lowerAssign(s *assignStmt) error {
	// Direct (unallocated) params cannot appear as assignment targets: the
	// pre-scan allocates slots for any assigned param, so lowerAddr succeeds.
	l, err := fl.lowerAddr(s.LHS)
	if err != nil {
		return err
	}
	if ir.IsArray(l.ty) {
		return errf(s.Line, "cannot assign to array")
	}
	if ir.IsStruct(l.ty) {
		return fl.lowerStructCopy(s, l)
	}
	v, err := fl.lowerExpr(s.RHS)
	if err != nil {
		return err
	}
	if err := fl.checkAssignable(l.ty, v, s.Line); err != nil {
		return err
	}
	fl.b.Store(l.addr, v.reg)
	return nil
}

// lowerStructCopy lowers "*dst = *src" style whole-struct assignment as a
// field-by-field copy, matching how Clang lowers small struct assignments.
func (fl *fnLowerer) lowerStructCopy(s *assignStmt, dst loc) error {
	src, err := fl.lowerAddr(s.RHS)
	if err != nil {
		return err
	}
	st, ok := dst.ty.(*ir.StructType)
	if !ok || !ir.TypeEqual(dst.ty, src.ty) {
		return errf(s.Line, "struct assignment requires matching struct types")
	}
	for k, f := range st.Fields {
		if ir.IsArray(f.Type) || ir.IsStruct(f.Type) {
			continue // nested aggregates are not copied by MiniC assignment
		}
		df := fl.b.FieldAddr(dst.addr, st, k)
		sf := fl.b.FieldAddr(src.addr, st, k)
		fl.b.Store(df, fl.b.Load(sf))
	}
	return nil
}

func (fl *fnLowerer) lowerReturn(s *returnStmt) error {
	if s.Value == nil {
		if fl.ret != nil {
			return errf(s.Line, "missing return value in %s", fl.fd.Name)
		}
		fl.b.Ret("")
		return nil
	}
	if fl.ret == nil {
		return errf(s.Line, "void function %s returns a value", fl.fd.Name)
	}
	v, err := fl.lowerExpr(s.Value)
	if err != nil {
		return err
	}
	if err := fl.checkAssignable(fl.ret, v, s.Line); err != nil {
		return err
	}
	fl.b.Ret(v.reg)
	return nil
}

func (fl *fnLowerer) lowerIf(s *ifStmt) error {
	cond, err := fl.lowerCond(s.Cond)
	if err != nil {
		return err
	}
	condBlk := fl.b.Cur()
	thenBlk := fl.b.NewBlock("if.then")
	if err := fl.lowerStmts(s.Then); err != nil {
		return err
	}
	thenEnd := fl.b.Cur()
	var elseBlk, elseEnd *ir.Block
	if len(s.Else) > 0 {
		elseBlk = fl.b.NewBlock("if.else")
		if err := fl.lowerStmts(s.Else); err != nil {
			return err
		}
		elseEnd = fl.b.Cur()
	}
	join := fl.b.NewBlock("if.join")
	fl.b.SetBlock(condBlk)
	if elseBlk != nil {
		fl.b.CondJump(cond, thenBlk.Name, elseBlk.Name)
	} else {
		fl.b.CondJump(cond, thenBlk.Name, join.Name)
	}
	if thenEnd.Terminator() == nil {
		fl.b.SetBlock(thenEnd)
		fl.b.Jump(join.Name)
	}
	if elseEnd != nil && elseEnd.Terminator() == nil {
		fl.b.SetBlock(elseEnd)
		fl.b.Jump(join.Name)
	}
	fl.b.SetBlock(join)
	return nil
}

func (fl *fnLowerer) lowerWhile(s *whileStmt) error {
	head := fl.b.NewBlockLinked("while.head")
	cond, err := fl.lowerCond(s.Cond)
	if err != nil {
		return err
	}
	headEnd := fl.b.Cur()
	// Create the exit block up front so break can target it; it is moved to
	// the insertion point at the end.
	body := fl.b.NewBlock("while.body")
	exitName := body.Name + ".exit"
	fl.loops = append(fl.loops, loopCtx{breakBlk: exitName, continueBlk: head.Name})
	err = fl.lowerStmts(s.Body)
	fl.loops = fl.loops[:len(fl.loops)-1]
	if err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Jump(head.Name)
	}
	exit := fl.b.NewBlock(exitName)
	if exit.Name != exitName {
		return errf(s.Line, "internal: loop exit block name clash")
	}
	fl.b.SetBlock(headEnd)
	fl.b.CondJump(cond, body.Name, exit.Name)
	fl.b.SetBlock(exit)
	return nil
}

// lowerFor lowers for(init; cond; post) with break jumping to the exit and
// continue jumping to the post block.
func (fl *fnLowerer) lowerFor(s *forStmt) error {
	fl.pushScope() // init declarations scope to the loop
	defer fl.popScope()
	if s.Init != nil {
		if err := fl.lowerStmt(s.Init); err != nil {
			return err
		}
	}
	head := fl.b.NewBlockLinked("for.head")
	cond := ""
	if s.Cond != nil {
		c, err := fl.lowerCond(s.Cond)
		if err != nil {
			return err
		}
		cond = c
	}
	headEnd := fl.b.Cur()
	body := fl.b.NewBlock("for.body")
	postName := body.Name + ".post"
	exitName := body.Name + ".exit"
	fl.loops = append(fl.loops, loopCtx{breakBlk: exitName, continueBlk: postName})
	err := fl.lowerStmts(s.Body)
	fl.loops = fl.loops[:len(fl.loops)-1]
	if err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Jump(postName)
	}
	post := fl.b.NewBlock(postName)
	if post.Name != postName {
		return errf(s.Line, "internal: loop post block name clash")
	}
	if s.Post != nil {
		if err := fl.lowerStmt(s.Post); err != nil {
			return err
		}
	}
	if !fl.b.Terminated() {
		fl.b.Jump(head.Name)
	}
	exit := fl.b.NewBlock(exitName)
	if exit.Name != exitName {
		return errf(s.Line, "internal: loop exit block name clash")
	}
	fl.b.SetBlock(headEnd)
	if cond == "" {
		fl.b.Jump(body.Name)
	} else {
		fl.b.CondJump(cond, body.Name, exit.Name)
	}
	fl.b.SetBlock(exit)
	return nil
}

// lowerCond lowers a boolean context expression to an int register
// (pointers test non-null).
func (fl *fnLowerer) lowerCond(e expr) (string, error) {
	v, err := fl.lowerExpr(e)
	if err != nil {
		return "", err
	}
	if v.ty == nil || ir.IsPointerLike(v.ty) {
		t := fl.b.Temp()
		fl.b.Emit(&ir.BinOp{Dest: t, Op: ir.OpNe, A: v.reg, B: fl.b.Const(0)})
		return t, nil
	}
	return v.reg, nil
}

// checkAssignable verifies v can be stored into storage of type dst.
// Pointer compatibility is C-flavored but lenient: generic pointers
// (int*/char*/void*) interconvert with any pointer type, matching the casts
// real C code uses around memcpy-style helpers.
func (fl *fnLowerer) checkAssignable(dst ir.Type, v val, line int) error {
	src := v.ty
	if src == nil { // null literal (or integer 0 constant)
		return nil
	}
	if ir.TypeEqual(dst, src) {
		return nil
	}
	_, dstInt := dst.(ir.IntType)
	_, srcInt := src.(ir.IntType)
	if dstInt && srcInt {
		return nil
	}
	// Storing a pointer or function pointer through a generic char*/int*
	// location models the casts real C code uses; permitted, like C.
	if dstInt && ir.IsPointerLike(src) {
		return nil
	}
	dp, dstPtr := dst.(*ir.PointerType)
	sp, srcPtr := src.(*ir.PointerType)
	if dstPtr && srcPtr {
		if isGenericPtr(dp) || isGenericPtr(sp) {
			return nil
		}
		return errf(line, "cannot assign %s to %s", src, dst)
	}
	return errf(line, "cannot assign %s to %s", src, dst)
}

// isGenericPtr reports whether p is int*/char*/void* (all model as int*).
func isGenericPtr(p *ir.PointerType) bool {
	_, ok := p.Elem.(ir.IntType)
	return ok
}
