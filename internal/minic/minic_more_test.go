package minic

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// runProgram compiles and executes, returning the result value.
func runProgram(t *testing.T, src string, inputs []int64) int64 {
	t.Helper()
	m, err := Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr := interp.New(m, interp.Config{}).Run("main", inputs)
	if tr.Err != nil {
		t.Fatalf("run: %v", tr.Err)
	}
	return tr.Result
}

func TestUnaryOperators(t *testing.T) {
	src := `
int main() {
  int a;
  int b;
  a = 5;
  b = -a;
  if (!b) { return 99; }
  if (!(a == 5)) { return 98; }
  return b + 10;
}
`
	if got := runProgram(t, src, nil); got != 5 {
		t.Errorf("result = %d, want 5", got)
	}
}

func TestPointerComparisons(t *testing.T) {
	src := `
int g1;
int g2;
int main() {
  int* p;
  int* q;
  p = &g1;
  q = &g1;
  if (p != q) { return 1; }
  q = &g2;
  if (p == q) { return 2; }
  if (p == null) { return 3; }
  p = null;
  if (p != null) { return 4; }
  return 0;
}
`
	if got := runProgram(t, src, nil); got != 0 {
		t.Errorf("result = %d, want 0", got)
	}
}

func TestNestedStructAccess(t *testing.T) {
	src := `
struct inner { int x; int* p; }
struct outer { int tag; inner in; }
int g;
int main() {
  outer o;
  o.tag = 7;
  o.in.x = 30;
  o.in.p = &g;
  g = 5;
  return o.tag + o.in.x + *(o.in.p);
}
`
	if got := runProgram(t, src, nil); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestArrowChains(t *testing.T) {
	src := `
struct node { int v; node* next; }
int main() {
  node a;
  node b;
  a.v = 40;
  a.next = &b;
  b.v = 2;
  b.next = null;
  return a.v + a.next->v;
}
`
	if got := runProgram(t, src, nil); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	src := `
int count;
int bump() {
  count = count + 1;
  return 1;
}
int main() {
  int r;
  r = 0 && bump();
  r = r + (1 || bump());
  return count * 10 + r;
}
`
	// Neither bump() should run: 0&&... short-circuits, 1||... short-circuits.
	if got := runProgram(t, src, nil); got != 1 {
		t.Errorf("result = %d, want 1 (count must stay 0)", got)
	}
}

func TestElseIfChainsExecute(t *testing.T) {
	src := `
int classify(int x) {
  if (x < 0) {
    return 1;
  } else if (x == 0) {
    return 2;
  } else if (x < 10) {
    return 3;
  } else {
    return 4;
  }
}
int main() {
  return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}
`
	if got := runProgram(t, src, nil); got != 1234 {
		t.Errorf("result = %d, want 1234", got)
	}
}

func TestMallocWithDynamicSizeEvaluatesArgs(t *testing.T) {
	src := `
int calls;
int size() {
  calls = calls + 1;
  return 8;
}
int main() {
  int* p;
  p = malloc(size());
  p[0] = 5;
  return calls * 10 + p[0];
}
`
	if got := runProgram(t, src, nil); got != 15 {
		t.Errorf("result = %d, want 15", got)
	}
}

func TestVarDeclWithInitializer(t *testing.T) {
	src := `
int main() {
  int a = 40;
  int b = a + 2;
  return b;
}
`
	if got := runProgram(t, src, nil); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestScopesShadowing(t *testing.T) {
	src := `
int main() {
  int x;
  x = 1;
  if (x) {
    int x;
    x = 99;
  }
  return x;
}
`
	if got := runProgram(t, src, nil); got != 1 {
		t.Errorf("result = %d, want 1 (inner x must shadow)", got)
	}
}

func TestGlobalArrayDecayAsArgument(t *testing.T) {
	src := `
int buf[8];
int sum3(int* p) { return p[0] + p[1] + p[2]; }
int main() {
  buf[0] = 10;
  buf[1] = 12;
  buf[2] = 20;
  return sum3(buf);
}
`
	if got := runProgram(t, src, nil); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestStructFieldArrayIndexing(t *testing.T) {
	src := `
struct holder { int id; int vals[4]; }
holder g;
int main() {
  int i;
  i = 0;
  while (i < 4) {
    g.vals[i] = i * 10;
    i = i + 1;
  }
  return g.vals[1] + g.vals[3];
}
`
	if got := runProgram(t, src, nil); got != 40 {
		t.Errorf("result = %d, want 40", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"missing semicolon", `int main() { int x x = 1; return x; }`, "expected"},
		{"unterminated block", `int main() { return 0;`, "unexpected end of file"},
		{"bad array length", `int a[x]; int main() { return 0; }`, "array length"},
		{"zero array", `int a[0]; int main() { return 0; }`, "invalid array length"},
		{"bad char", "int main() { return 1 $ 2; }", "unexpected character"},
		{"missing paren", `int main() { if (1 { return 0; } return 1; }`, "expected"},
		{"global init", `int g = 3; int main() { return g; }`, "initializers are not supported"},
		{"field init", `struct s { int a = 1; } int main() { return 0; }`, "not allowed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t", c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error with %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q missing %q", err, c.want)
			}
		})
	}
}

func TestTypeCheckErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"index non-array", `int main() { int x; x = 1; return x[0]; }`, "index"},
		{"dot on pointer", `struct s { int a; } int main() { s v; s* p; p = &v; return p.a; }`, "non-struct"},
		{"arrow on value", `struct s { int a; } int main() { s v; return v->a; }`, "as a value"},
		{"address of literal", `int main() { int* p; p = &5; return 0; }`, "not addressable"},
		{"assign to array", `int a[4]; int b[4]; int main() { a = b; return 0; }`, "cannot assign to array"},
		{"dup param", `int f(int a, int a) { return a; } int main() { return f(1, 2); }`, "duplicate parameter"},
		{"dup local", `int main() { int x; int x; return 0; }`, "duplicate variable"},
		{"struct param", `struct s { int a; } int f(s v) { return 0; } int main() { return 0; }`, "scalar or pointer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t", c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error with %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q missing %q", err, c.want)
			}
		})
	}
}

func TestMustCompilePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("bad", "not a program")
}

func TestCompiledModuleValidates(t *testing.T) {
	m := MustCompile("v", mbedSnippet)
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// All instructions carry IDs and positions.
	for _, f := range m.Funcs {
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			if ir.InstrID(in) == 0 {
				t.Errorf("instruction %q has no ID", in)
			}
		})
	}
}

func TestForLoop(t *testing.T) {
	src := `
int main() {
  int sum;
  int i;
  sum = 0;
  for (i = 0; i < 10; i = i + 1) {
    sum = sum + i;
  }
  return sum;
}
`
	if got := runProgram(t, src, nil); got != 45 {
		t.Errorf("result = %d, want 45", got)
	}
}

func TestForLoopWithDeclInit(t *testing.T) {
	src := `
int main() {
  int sum;
  sum = 0;
  for (int i = 1; i <= 4; i = i + 1) {
    sum = sum + i;
  }
  return sum;
}
`
	if got := runProgram(t, src, nil); got != 10 {
		t.Errorf("result = %d, want 10", got)
	}
}

func TestBreakAndContinue(t *testing.T) {
	src := `
int main() {
  int sum;
  int i;
  sum = 0;
  for (i = 0; i < 100; i = i + 1) {
    if (i % 2 == 1) {
      continue;
    }
    if (i >= 10) {
      break;
    }
    sum = sum + i;
  }
  return sum * 100 + i;
}
`
	// evens 0..8 sum to 20; loop broke at i == 10.
	if got := runProgram(t, src, nil); got != 2010 {
		t.Errorf("result = %d, want 2010", got)
	}
}

func TestBreakInWhile(t *testing.T) {
	src := `
int main() {
  int i;
  i = 0;
  while (1) {
    i = i + 1;
    if (i == 7) {
      break;
    }
  }
  return i;
}
`
	if got := runProgram(t, src, nil); got != 7 {
		t.Errorf("result = %d, want 7", got)
	}
}

func TestNestedLoopBreakTargetsInnermost(t *testing.T) {
	src := `
int main() {
  int total;
  int i;
  int j;
  total = 0;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 10; j = j + 1) {
      if (j == 2) {
        break;
      }
      total = total + 1;
    }
  }
  return total;
}
`
	if got := runProgram(t, src, nil); got != 6 {
		t.Errorf("result = %d, want 6", got)
	}
}

func TestInfiniteForWithBreak(t *testing.T) {
	src := `
int main() {
  int n;
  n = 0;
  for (;;) {
    n = n + 1;
    if (n > 4) {
      break;
    }
  }
  return n;
}
`
	if got := runProgram(t, src, nil); got != 5 {
		t.Errorf("result = %d, want 5", got)
	}
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	compileErr(t, `int main() { break; return 0; }`, "break outside")
	compileErr(t, `int main() { continue; return 0; }`, "continue outside")
}

func TestContinueSkipsToPost(t *testing.T) {
	// continue must execute the post clause (i increments) or the loop would
	// never terminate.
	src := `
int main() {
  int i;
  int visits;
  visits = 0;
  for (i = 0; i < 5; i = i + 1) {
    continue;
  }
  return i + visits;
}
`
	if got := runProgram(t, src, nil); got != 5 {
		t.Errorf("result = %d, want 5", got)
	}
}
