package minic

// The MiniC abstract syntax tree. Types on expressions are resolved during
// lowering, not parsing, so the AST stores only syntactic type specs.

// typeSpec is a parsed type: a base name ("int", "char", "void", "fn", or a
// struct name) plus a pointer depth, e.g. "char**" is {Base: "char", Ptr: 2}.
type typeSpec struct {
	Base string
	Ptr  int
	Line int
}

type program struct {
	Structs []*structDecl
	Globals []*varDecl
	Funcs   []*funcDecl
}

type structDecl struct {
	Name   string
	Fields []*varDecl
	Line   int
}

// varDecl is a global, local, or field declaration. ArrayLen < 0 means not an
// array.
type varDecl struct {
	Type     typeSpec
	Name     string
	ArrayLen int
	Init     expr // optional initializer (locals only)
	Line     int
}

type funcDecl struct {
	Ret    typeSpec
	Name   string
	Params []*varDecl
	Body   []stmt
	Line   int
}

// Statements.
type stmt interface{ stmtLine() int }

type declStmt struct{ Decl *varDecl }

func (s *declStmt) stmtLine() int { return s.Decl.Line }

type assignStmt struct {
	LHS  expr
	RHS  expr
	Line int
}

func (s *assignStmt) stmtLine() int { return s.Line }

type exprStmt struct {
	E    expr
	Line int
}

func (s *exprStmt) stmtLine() int { return s.Line }

type ifStmt struct {
	Cond       expr
	Then, Else []stmt
	Line       int
}

func (s *ifStmt) stmtLine() int { return s.Line }

type whileStmt struct {
	Cond expr
	Body []stmt
	Line int
}

func (s *whileStmt) stmtLine() int { return s.Line }

type forStmt struct {
	Init stmt // optional
	Cond expr // optional
	Post stmt // optional (assignment or expression)
	Body []stmt
	Line int
}

func (s *forStmt) stmtLine() int { return s.Line }

type breakStmt struct{ Line int }

func (s *breakStmt) stmtLine() int { return s.Line }

type continueStmt struct{ Line int }

func (s *continueStmt) stmtLine() int { return s.Line }

type returnStmt struct {
	Value expr // may be nil
	Line  int
}

func (s *returnStmt) stmtLine() int { return s.Line }

// Expressions.
type expr interface{ exprLine() int }

type intLit struct {
	Val  int64
	Line int
}

func (e *intLit) exprLine() int { return e.Line }

type nullLit struct{ Line int }

func (e *nullLit) exprLine() int { return e.Line }

type identExpr struct {
	Name string
	Line int
}

func (e *identExpr) exprLine() int { return e.Line }

type unaryExpr struct {
	Op   string // "&", "*", "-", "!"
	X    expr
	Line int
}

func (e *unaryExpr) exprLine() int { return e.Line }

type binaryExpr struct {
	Op   string
	X, Y expr
	Line int
}

func (e *binaryExpr) exprLine() int { return e.Line }

type fieldExpr struct {
	X     expr
	Name  string
	Arrow bool // true for ->, false for .
	Line  int
}

func (e *fieldExpr) exprLine() int { return e.Line }

type indexExpr struct {
	X, Index expr
	Line     int
}

func (e *indexExpr) exprLine() int { return e.Line }

type callExpr struct {
	Callee expr
	Args   []expr
	Line   int
}

func (e *callExpr) exprLine() int { return e.Line }

type mallocExpr struct {
	SizeOf *typeSpec // nil: malloc(n) with unknown type
	Size   expr      // set when SizeOf is nil
	Line   int
}

func (e *mallocExpr) exprLine() int { return e.Line }

type sizeofExpr struct {
	TS   typeSpec
	Line int
}

func (e *sizeofExpr) exprLine() int { return e.Line }

type inputExpr struct{ Line int }

func (e *inputExpr) exprLine() int { return e.Line }

type outputExpr struct {
	X    expr
	Line int
}

func (e *outputExpr) exprLine() int { return e.Line }
