package minic

import "strconv"

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && t.text == text
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, errf(p.cur().line, "expected %q, found %s", text, p.cur())
	}
	return p.next(), nil
}

// atTypeStart reports whether the current token can begin a type spec
// followed by a declarator (used to disambiguate decls from expressions).
func (p *parser) atTypeStart() bool {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "int", "char", "void", "fn", "struct":
			return true
		}
		return false
	}
	// "Name ident" is a struct-typed declaration; "Name(" or "Name =" is not.
	return t.kind == tokIdent && (p.peek().kind == tokIdent || (p.peek().kind == tokPunct && p.peek().text == "*"))
}

func (p *parser) parseTypeSpec() (typeSpec, error) {
	t := p.cur()
	ts := typeSpec{Line: t.line}
	switch {
	case t.kind == tokKeyword && (t.text == "int" || t.text == "char" || t.text == "void" || t.text == "fn"):
		ts.Base = t.text
		p.next()
	case t.kind == tokKeyword && t.text == "struct":
		p.next()
		name := p.cur()
		if name.kind != tokIdent {
			return ts, errf(name.line, "expected struct name, found %s", name)
		}
		ts.Base = name.text
		p.next()
	case t.kind == tokIdent:
		ts.Base = t.text
		p.next()
	default:
		return ts, errf(t.line, "expected type, found %s", t)
	}
	for p.accept(tokPunct, "*") {
		ts.Ptr++
	}
	return ts, nil
}

// parseProgram parses a whole translation unit.
func parseProgram(toks []token) (*program, error) {
	p := &parser{toks: toks}
	prog := &program{}
	for p.cur().kind != tokEOF {
		if p.at(tokKeyword, "struct") && p.peek().kind == tokIdent && p.toks[min(p.pos+2, len(p.toks)-1)].text == "{" {
			sd, err := p.parseStructDecl()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, sd)
			continue
		}
		ts, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		name := p.cur()
		if name.kind != tokIdent {
			return nil, errf(name.line, "expected declaration name, found %s", name)
		}
		p.next()
		if p.at(tokPunct, "(") {
			fd, err := p.parseFuncRest(ts, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fd)
		} else {
			vd, err := p.parseVarRest(ts, name)
			if err != nil {
				return nil, err
			}
			if vd.Init != nil {
				return nil, errf(vd.Line, "global %q: initializers are not supported on globals", vd.Name)
			}
			prog.Globals = append(prog.Globals, vd)
		}
	}
	return prog, nil
}

func (p *parser) parseStructDecl() (*structDecl, error) {
	kw, _ := p.expect(tokKeyword, "struct")
	name := p.next()
	sd := &structDecl{Name: name.text, Line: kw.line}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, "}") {
		ts, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		fname := p.cur()
		if fname.kind != tokIdent {
			return nil, errf(fname.line, "expected field name, found %s", fname)
		}
		p.next()
		fd, err := p.parseVarRest(ts, fname)
		if err != nil {
			return nil, err
		}
		if fd.Init != nil {
			return nil, errf(fd.Line, "field %q: initializers not allowed", fd.Name)
		}
		sd.Fields = append(sd.Fields, fd)
	}
	p.accept(tokPunct, ";")
	return sd, nil
}

// parseVarRest parses the declarator tail after "type name": optional array
// length, optional initializer, then ";".
func (p *parser) parseVarRest(ts typeSpec, name token) (*varDecl, error) {
	vd := &varDecl{Type: ts, Name: name.text, ArrayLen: -1, Line: name.line}
	if p.accept(tokPunct, "[") {
		n := p.cur()
		if n.kind != tokInt {
			return nil, errf(n.line, "expected array length, found %s", n)
		}
		p.next()
		ln, err := strconv.Atoi(n.text)
		if err != nil || ln <= 0 {
			return nil, errf(n.line, "invalid array length %q", n.text)
		}
		vd.ArrayLen = ln
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokPunct, "=") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = e
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *parser) parseFuncRest(ret typeSpec, name token) (*funcDecl, error) {
	fd := &funcDecl{Ret: ret, Name: name.text, Line: name.line}
	p.expect(tokPunct, "(")
	if !p.accept(tokPunct, ")") {
		for {
			ts, err := p.parseTypeSpec()
			if err != nil {
				return nil, err
			}
			pn := p.cur()
			if pn.kind != tokIdent {
				return nil, errf(pn.line, "expected parameter name, found %s", pn)
			}
			p.next()
			fd.Params = append(fd.Params, &varDecl{Type: ts, Name: pn.text, ArrayLen: -1, Line: pn.line})
			if p.accept(tokPunct, ")") {
				break
			}
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) parseBlock() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.accept(tokPunct, "}") {
		if p.cur().kind == tokEOF {
			return nil, errf(p.cur().line, "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokKeyword, "if"):
		return p.parseIf()
	case p.at(tokKeyword, "while"):
		return p.parseWhile()
	case p.at(tokKeyword, "for"):
		return p.parseFor()
	case p.at(tokKeyword, "break"):
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &breakStmt{Line: t.line}, nil
	case p.at(tokKeyword, "continue"):
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &continueStmt{Line: t.line}, nil
	case p.at(tokKeyword, "return"):
		p.next()
		rs := &returnStmt{Line: t.line}
		if !p.at(tokPunct, ";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = e
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return rs, nil
	case p.atTypeStart():
		ts, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		name := p.cur()
		if name.kind != tokIdent {
			return nil, errf(name.line, "expected variable name, found %s", name)
		}
		p.next()
		vd, err := p.parseVarRest(ts, name)
		if err != nil {
			return nil, err
		}
		return &declStmt{Decl: vd}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(tokPunct, "=") {
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &assignStmt{LHS: e, RHS: rhs, Line: t.line}, nil
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &exprStmt{E: e, Line: t.line}, nil
	}
}

func (p *parser) parseIf() (stmt, error) {
	kw := p.next() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	is := &ifStmt{Cond: cond, Then: then, Line: kw.line}
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			is.Else = []stmt{elif}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			is.Else = els
		}
	}
	return is, nil
}

// parseFor parses C-style for loops: for (init; cond; post) { ... } where
// each header clause is optional. Init is a declaration, assignment, or
// expression; post is an assignment or expression (no trailing semicolon).
func (p *parser) parseFor() (stmt, error) {
	kw := p.next() // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fs := &forStmt{Line: kw.line}
	if !p.accept(tokPunct, ";") {
		init, err := p.parseStmt() // consumes the ';'
		if err != nil {
			return nil, err
		}
		switch init.(type) {
		case *declStmt, *assignStmt, *exprStmt:
		default:
			return nil, errf(kw.line, "invalid for-loop initializer")
		}
		fs.Init = init
	}
	if !p.accept(tokPunct, ";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if !p.at(tokPunct, ")") {
		post, err := p.parseForPost()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// parseForPost parses the post clause: an assignment or expression without a
// trailing semicolon.
func (p *parser) parseForPost() (stmt, error) {
	t := p.cur()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "=") {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &assignStmt{LHS: e, RHS: rhs, Line: t.line}, nil
	}
	return &exprStmt{E: e, Line: t.line}, nil
}

func (p *parser) parseWhile() (stmt, error) {
	kw := p.next() // while
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &whileStmt{Cond: cond, Body: body, Line: kw.line}, nil
}

// Expression parsing: precedence climbing.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) parseExpr() (expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{Op: t.text, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "&" || t.text == "*" || t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(tokPunct, "."):
			name := p.cur()
			if name.kind != tokIdent {
				return nil, errf(name.line, "expected field name, found %s", name)
			}
			p.next()
			e = &fieldExpr{X: e, Name: name.text, Line: t.line}
		case p.accept(tokPunct, "->"):
			name := p.cur()
			if name.kind != tokIdent {
				return nil, errf(name.line, "expected field name, found %s", name)
			}
			p.next()
			e = &fieldExpr{X: e, Name: name.text, Arrow: true, Line: t.line}
		case p.accept(tokPunct, "["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			e = &indexExpr{X: e, Index: idx, Line: t.line}
		case p.accept(tokPunct, "("):
			ce := &callExpr{Callee: e, Line: t.line}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					ce.Args = append(ce.Args, a)
					if p.accept(tokPunct, ")") {
						break
					}
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			e = ce
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.line, "invalid integer %q", t.text)
		}
		return &intLit{Val: v, Line: t.line}, nil
	case t.kind == tokIdent:
		p.next()
		return &identExpr{Name: t.text, Line: t.line}, nil
	case p.accept(tokPunct, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tokKeyword, "null"):
		p.next()
		return &nullLit{Line: t.line}, nil
	case p.at(tokKeyword, "sizeof"):
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		ts, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &sizeofExpr{TS: ts, Line: t.line}, nil
	case p.at(tokKeyword, "input"):
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &inputExpr{Line: t.line}, nil
	case p.at(tokKeyword, "output"):
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &outputExpr{X: x, Line: t.line}, nil
	case p.at(tokKeyword, "malloc"):
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		me := &mallocExpr{Line: t.line}
		if p.at(tokKeyword, "sizeof") {
			p.next()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			ts, err := p.parseTypeSpec()
			if err != nil {
				return nil, err
			}
			me.SizeOf = &ts
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		} else {
			sz, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			me.Size = sz
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return me, nil
	}
	return nil, errf(t.line, "unexpected token %s", t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
