// Package cfi generates forward-edge control-flow-integrity policies from
// pointer-analysis results (the paper's case study, §5). A policy assigns
// every indirect callsite the set of functions its function pointer may
// target according to one analysis; the optimistic and fallback policies
// become the two memory views.
package cfi

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memview"
	"repro/internal/pointsto"
)

// Policy is a CFI policy: permitted function targets per indirect callsite.
type Policy struct {
	Sites   []int            // indirect callsite instruction IDs, sorted
	Targets map[int][]string // per-site permitted functions, sorted
	// AddressTaken is the number of address-taken functions (the size of
	// the coarsest possible equivalence class).
	AddressTaken int
}

// PolicyFrom derives the CFI policy implied by a points-to result.
func PolicyFrom(r *pointsto.Result) *Policy {
	p := &Policy{Targets: map[int][]string{}}
	p.Sites = r.ICallSites()
	for _, site := range p.Sites {
		p.Targets[site] = r.CallTargets(site)
	}
	p.AddressTaken = len(r.Module().AddressTakenFuncs())
	return p
}

// View converts the policy into a memory view.
func (p *Policy) View(name string) *memview.View {
	return memview.NewView(name, p.Targets)
}

// TargetCounts returns the number of permitted targets per callsite, in
// callsite order (the series behind Figures 1, 11 and 12).
func (p *Policy) TargetCounts() []int {
	out := make([]int, len(p.Sites))
	for i, s := range p.Sites {
		out[i] = len(p.Targets[s])
	}
	return out
}

// AvgTargets returns the mean number of permitted targets per callsite
// (Figure 11's metric).
func (p *Policy) AvgTargets() float64 {
	counts := p.TargetCounts()
	if len(counts) == 0 {
		return 0
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	return float64(sum) / float64(len(counts))
}

// MaxTargets returns the largest per-callsite target count.
func (p *Policy) MaxTargets() int {
	max := 0
	for _, c := range p.TargetCounts() {
		if c > max {
			max = c
		}
	}
	return max
}

// Permits reports whether the policy allows target at site.
func (p *Policy) Permits(site int, target string) bool {
	for _, t := range p.Targets[site] {
		if t == target {
			return true
		}
	}
	return false
}

// Describe renders the policy for reports.
func (p *Policy) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CFI policy: %d indirect callsites, %d address-taken functions, avg %.2f targets/site\n",
		len(p.Sites), p.AddressTaken, p.AvgTargets())
	for _, site := range p.Sites {
		ts := append([]string(nil), p.Targets[site]...)
		sort.Strings(ts)
		fmt.Fprintf(&b, "  callsite #%d -> {%s}\n", site, strings.Join(ts, ", "))
	}
	return b.String()
}
