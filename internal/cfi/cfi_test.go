package cfi

import (
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/minic"
	"repro/internal/pointsto"
)

const src = `
struct ops { fn open; fn close; }
ops g;
int do_open(int* x) { return 1; }
int do_close(int* x) { return 2; }
int unused(int* x) { return 3; }
int main() {
  fn extra;
  int r;
  extra = &unused;
  g.open = &do_open;
  g.close = &do_close;
  r = g.open(null);
  r = r + g.close(null);
  return r;
}
`

func policy(t *testing.T) *Policy {
	t.Helper()
	m, err := minic.Compile("cfi", src)
	if err != nil {
		t.Fatal(err)
	}
	return PolicyFrom(pointsto.New(m, invariant.Config{}).Solve())
}

func TestPolicyFrom(t *testing.T) {
	p := policy(t)
	if len(p.Sites) != 2 {
		t.Fatalf("sites = %v", p.Sites)
	}
	if p.AddressTaken != 3 {
		t.Errorf("address-taken = %d, want 3", p.AddressTaken)
	}
	if !p.Permits(p.Sites[0], "do_open") {
		t.Errorf("site 0 denies do_open: %v", p.Targets[p.Sites[0]])
	}
	if p.Permits(p.Sites[0], "unused") {
		t.Error("site 0 permits unused")
	}
	if p.Permits(9999, "do_open") {
		t.Error("unknown site permits")
	}
}

func TestPolicyStats(t *testing.T) {
	p := policy(t)
	counts := p.TargetCounts()
	if len(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if p.AvgTargets() != 1 {
		t.Errorf("avg = %v, want 1 (field-sensitive precision)", p.AvgTargets())
	}
	if p.MaxTargets() != 1 {
		t.Errorf("max = %v", p.MaxTargets())
	}
	empty := &Policy{Targets: map[int][]string{}}
	if empty.AvgTargets() != 0 || empty.MaxTargets() != 0 {
		t.Error("empty policy stats nonzero")
	}
}

func TestPolicyView(t *testing.T) {
	p := policy(t)
	v := p.View("optimistic")
	if v.Name != "optimistic" {
		t.Errorf("view name = %q", v.Name)
	}
	for _, site := range p.Sites {
		for _, fn := range p.Targets[site] {
			if !v.Permits(site, fn) {
				t.Errorf("view denies %s at %d", fn, site)
			}
		}
		if v.Permits(site, "unused") {
			t.Errorf("view permits unused at %d", site)
		}
	}
}

func TestDescribe(t *testing.T) {
	p := policy(t)
	d := p.Describe()
	for _, want := range []string{"indirect callsites", "do_open", "do_close", "address-taken"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}
