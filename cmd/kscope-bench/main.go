// Command kscope-bench regenerates the paper's evaluation tables and
// figures on the nine synthetic applications.
//
// Usage:
//
//	kscope-bench -all
//	kscope-bench -table 3 -fig 11 -fig 13
//	kscope-bench -table 5 -fuzz 1000
//	kscope-bench -all -trace trace.json -metrics-json run.json
//	kscope-bench -all -compare-metrics baseline.json -regress-threshold 0.1
//
// Flags:
//
//	-all               regenerate everything
//	-table N           regenerate table N (2, 3, 4, 5); repeatable
//	-fig N             regenerate figure N (1, 10, 11, 12, 13); repeatable
//	-requests N        requests per benchmark run (default 200)
//	-runs N            repetitions for throughput (default 3)
//	-fuzz N            fuzzing executions per application (default 400)
//	-seed N            base RNG seed (default 1)
//	-parallel N        worker-pool width (0 = GOMAXPROCS, 1 = serial)
//	-parallel-solve N  solve every analysis with the parallel wave solver at
//	                   N workers (0 = sequential); artifacts stay
//	                   byte-identical to a sequential run
//	-intern            hash-cons points-to sets during every solve (shared
//	                   storage with copy-on-write promotion); a pure memory
//	                   and allocation optimization — artifacts stay
//	                   byte-identical, which the golden tests pin
//	-metrics           print a solver/interpreter telemetry snapshot on stderr
//	-metrics-json F    write the telemetry snapshot as JSON to F
//	-trace F           write a Chrome trace-event JSON span trace to F
//	                   (open in Perfetto or chrome://tracing)
//	-compare-metrics B load a baseline — a prior -metrics-json export, or a
//	                   live kscope-serve /metricsz endpoint when B is an
//	                   http(s) URL — and print per-instrument deltas; exit 1
//	                   if a watched instrument regresses past
//	                   -regress-threshold
//	-watch NAME        instrument to regression-check (repeatable; default
//	                   pointsto/worklist/pops, pointsto/delta/bits-propagated)
//	-regress-threshold fraction of allowed growth for watched instruments
//	                   (default 0.10)
//	-watchdog D        report a stall diagnosis on stderr if the solver makes
//	                   no progress for duration D (0 = off)
//	-chaos N           run the fault-injection differential harness with base
//	                   seed N instead of rendering artifacts; exit 1 if any
//	                   app lands on an unsound outcome (0 = off)
//	-chaos-plans N     number of consecutive seeded fault plans for -chaos
//	                   (default 8)
//	-chaos-restart     with -chaos, also run each plan through the restart
//	                   leg: serve the apps through an in-process daemon with
//	                   a persistent result store and the faults armed
//	                   (including the persist/* disk faults), crash it
//	                   without flushing, restart fault-free on the same
//	                   store, and require byte-identical answers or a typed
//	                   error across the generation boundary
//	-fault-list        print every fault-injection site and exit
//	-cpuprofile F      write a runtime/pprof CPU profile to F
//	-memprofile F      write a runtime/pprof heap profile to F
//
// All telemetry goes to stderr or to files; stdout carries only the rendered
// artifacts, which stay byte-identical for every -parallel, -parallel-solve,
// and -intern value and with telemetry on or off (Figure 13's wall-clock throughput numbers are the
// only run-to-run variation, and they vary at -parallel 1 too).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/pointsto"
	"repro/internal/telemetry"
)

// intList collects repeatable integer flags.
type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }

func (l *intList) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

// defaultWatch is the regression watch list when no -watch flag is given:
// the two counters that track total solver effort.
var defaultWatch = []string{"pointsto/worklist/pops", "pointsto/delta/bits-propagated"}

func main() { os.Exit(run()) }

// run is main with an exit code, so deferred profile/telemetry writers
// execute before the process exits.
func run() int {
	var tables, figs intList
	all := flag.Bool("all", false, "regenerate every table and figure")
	requests := flag.Int("requests", 0, "requests per benchmark run")
	runs := flag.Int("runs", 0, "repetitions for throughput averaging")
	fuzz := flag.Int("fuzz", 0, "fuzzing executions per application")
	seed := flag.Int64("seed", 0, "base RNG seed")
	csvDir := flag.String("csv", "", "also export points-to sets and CFI policies as CSV into this directory")
	parallel := flag.Int("parallel", 1, "worker-pool width (0 = GOMAXPROCS)")
	parallelSolve := flag.Int("parallel-solve", 0, "parallel wave solver workers per analysis (0 = sequential)")
	intern := flag.Bool("intern", false, "hash-cons points-to sets during every solve (pure memory optimization)")
	metrics := flag.Bool("metrics", false, "print a telemetry snapshot on stderr after the run")
	metricsJSON := flag.String("metrics-json", "", "write the telemetry snapshot as JSON to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the pipeline spans")
	comparePath := flag.String("compare-metrics", "", "compare this run against a baseline: a -metrics-json file or a live /metricsz URL")
	threshold := flag.Float64("regress-threshold", 0.10, "allowed fractional growth of watched instruments")
	watchdog := flag.Duration("watchdog", 0, "stall-report window for the solver progress watchdog (0 = off)")
	chaosSeed := flag.Int64("chaos", 0, "run the chaos differential harness with this base seed (0 = off)")
	chaosPlans := flag.Int("chaos-plans", 8, "number of seeded fault plans for -chaos")
	chaosRestart := flag.Bool("chaos-restart", false, "with -chaos, also run each plan's crash/restart leg against a persistent store")
	faultList := flag.Bool("fault-list", false, "print every fault-injection site and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	var exts, watch stringList
	flag.Var(&tables, "table", "table number to regenerate (repeatable)")
	flag.Var(&figs, "fig", "figure number to regenerate (repeatable)")
	flag.Var(&exts, "ext", "extension experiment: debloat, graded (repeatable)")
	flag.Var(&watch, "watch", "instrument name to regression-check (repeatable)")
	flag.Parse()

	if *faultList {
		for _, s := range faultinject.Sites() {
			fmt.Println(s)
		}
		return 0
	}

	// The parallel wave solver is a pure execution hint — every artifact is
	// byte-identical to a sequential run — so it is a process-wide default
	// rather than an Options field threaded through the pipeline.
	if *parallelSolve > 0 {
		pointsto.SetDefaultParallel(*parallelSolve)
	}
	// Likewise set interning: byte-identical artifacts (the golden tests run
	// one leg with this default flipped on), so a process-wide default
	// suffices.
	if *intern {
		pointsto.SetDefaultIntern(true)
	}

	opt := experiments.Options{
		Requests:  *requests,
		Runs:      *runs,
		FuzzIters: *fuzz,
		Seed:      *seed,
	}
	if *all {
		tables = intList{2, 3, 4, 5}
		figs = intList{1, 10, 11, 12, 13}
		exts = stringList{"debloat", "graded", "incremental"}
	}
	if len(tables) == 0 && len(figs) == 0 && len(exts) == 0 && *csvDir == "" && *chaosSeed == 0 {
		flag.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kscope-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kscope-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// One session for the whole run: all artifacts share its worker pool and
	// its per-(app, config) analysis cache, and report into one registry.
	// Any telemetry consumer (snapshot, trace, comparison, watchdog) needs
	// the registry attached; with none requested it stays nil and the whole
	// pipeline runs instrumentation-free.
	var reg *telemetry.Registry
	if *metrics || *metricsJSON != "" || *tracePath != "" || *comparePath != "" || *watchdog > 0 {
		reg = telemetry.New()
	}
	if *watchdog > 0 {
		wd := telemetry.NewWatchdog(reg, *watchdog/8, *watchdog,
			[]string{"pointsto/progress/pops", "interp/runs", "runner/job-latency-ns"},
			func(s telemetry.Stall) { fmt.Fprint(os.Stderr, s.Text()) })
		defer wd.Stop()
	}
	if *chaosSeed != 0 {
		code := runChaos(*chaosSeed, *chaosPlans, *chaosRestart, opt, *parallel, reg)
		if reg != nil {
			snap := reg.Snapshot()
			if *metrics {
				fmt.Fprint(os.Stderr, snap.Text())
			}
			if err := exportSnapshot(snap, *metricsJSON, *tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "kscope-bench: %v\n", err)
				return 1
			}
		}
		return code
	}

	sess := experiments.NewSession(opt, *parallel, reg)

	out, err := renderArtifacts(sess, tables, figs, exts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kscope-bench: %v\n", err)
		return 2
	}
	if *csvDir != "" {
		if err := experiments.WriteCSVs(*csvDir, sess.AnalyzeAll()); err != nil {
			fmt.Fprintf(os.Stderr, "kscope-bench: csv export: %v\n", err)
			return 1
		}
		fmt.Printf("CSV results written to %s\n", *csvDir)
	}
	fmt.Println(strings.Join(out, "\n"))

	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "kscope-bench: memprofile: %v\n", err)
			return 1
		}
	}
	if reg == nil {
		return 0
	}
	snap := reg.Snapshot()
	if *metrics {
		fmt.Fprint(os.Stderr, snap.Text())
	}
	if err := exportSnapshot(snap, *metricsJSON, *tracePath); err != nil {
		fmt.Fprintf(os.Stderr, "kscope-bench: %v\n", err)
		return 1
	}
	if *comparePath != "" {
		watchList := []string(watch)
		if len(watchList) == 0 {
			watchList = defaultWatch
		}
		regressed, err := compareAgainst(snap, *comparePath, watchList, *threshold, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kscope-bench: compare-metrics: %v\n", err)
			return 1
		}
		if regressed {
			return 1
		}
	}
	return 0
}

// runChaos drives the fault-injection differential harness over `plans`
// consecutive seeds, printing one report per plan. The exit code is 1 when
// any app under any plan violates the robustness contract (an Unsound
// classification), mirroring the chaos-smoke CI gate.
func runChaos(seed int64, plans int, restart bool, opt experiments.Options, parallel int, reg *telemetry.Registry) int {
	reports, err := chaos.RunMatrix(seed, plans, chaos.Options{
		Requests: opt.Requests,
		Runs:     opt.Runs,
		Workers:  parallel,
		Metrics:  reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kscope-bench: chaos: %v\n", err)
		return 1
	}
	failures := 0
	for _, rep := range reports {
		fmt.Print(rep.Text())
		failures += len(rep.Failures())
	}
	fmt.Printf("chaos: %d plan(s), %d unsound outcome(s)\n", len(reports), failures)
	if restart {
		for i := 0; i < plans; i++ {
			dir, err := os.MkdirTemp("", "kscope-chaos-restart-")
			if err != nil {
				fmt.Fprintf(os.Stderr, "kscope-bench: chaos restart: %v\n", err)
				return 1
			}
			rep, err := chaos.RunRestart(seed+int64(i), dir, chaos.Options{Metrics: reg})
			os.RemoveAll(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kscope-bench: chaos restart: %v\n", err)
				return 1
			}
			fmt.Print(rep.Text())
			failures += len(rep.Failures())
		}
		fmt.Printf("chaos restart: %d plan(s), %d unsound outcome(s) total\n", plans, failures)
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// writeHeapProfile GCs (for up-to-date allocation stats) and writes the
// heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// stringList collects repeatable string flags.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}
