// Command kscope-bench regenerates the paper's evaluation tables and
// figures on the nine synthetic applications.
//
// Usage:
//
//	kscope-bench -all
//	kscope-bench -table 3 -fig 11 -fig 13
//	kscope-bench -table 5 -fuzz 1000
//
// Flags:
//
//	-all           regenerate everything
//	-table N       regenerate table N (2, 3, 4, 5); repeatable
//	-fig N         regenerate figure N (1, 10, 11, 12, 13); repeatable
//	-requests N    requests per benchmark run (default 200)
//	-runs N        repetitions for throughput (default 3)
//	-fuzz N        fuzzing executions per application (default 400)
//	-seed N        base RNG seed (default 1)
//	-parallel N    worker-pool width (0 = GOMAXPROCS, 1 = serial)
//	-metrics       print a solver/interpreter telemetry snapshot on stderr
//
// Output is byte-identical for every -parallel value (Figure 13's wall-clock
// throughput numbers are the only run-to-run variation, and they vary at
// -parallel 1 too).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// intList collects repeatable integer flags.
type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }

func (l *intList) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var tables, figs intList
	all := flag.Bool("all", false, "regenerate every table and figure")
	requests := flag.Int("requests", 0, "requests per benchmark run")
	runs := flag.Int("runs", 0, "repetitions for throughput averaging")
	fuzz := flag.Int("fuzz", 0, "fuzzing executions per application")
	seed := flag.Int64("seed", 0, "base RNG seed")
	csvDir := flag.String("csv", "", "also export points-to sets and CFI policies as CSV into this directory")
	parallel := flag.Int("parallel", 1, "worker-pool width (0 = GOMAXPROCS)")
	metrics := flag.Bool("metrics", false, "print a telemetry snapshot on stderr after the run")
	var exts stringList
	flag.Var(&tables, "table", "table number to regenerate (repeatable)")
	flag.Var(&figs, "fig", "figure number to regenerate (repeatable)")
	flag.Var(&exts, "ext", "extension experiment: debloat, graded (repeatable)")
	flag.Parse()

	opt := experiments.Options{
		Requests:  *requests,
		Runs:      *runs,
		FuzzIters: *fuzz,
		Seed:      *seed,
	}
	if *all {
		tables = intList{2, 3, 4, 5}
		figs = intList{1, 10, 11, 12, 13}
		exts = stringList{"debloat", "graded", "incremental"}
	}
	if len(tables) == 0 && len(figs) == 0 && len(exts) == 0 && *csvDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	// One session for the whole run: all artifacts share its worker pool and
	// its per-(app, config) analysis cache, and report into one registry.
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.New()
	}
	sess := experiments.NewSession(opt, *parallel, reg)

	out, err := renderArtifacts(sess, tables, figs, exts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kscope-bench: %v\n", err)
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := experiments.WriteCSVs(*csvDir, sess.AnalyzeAll()); err != nil {
			fmt.Fprintf(os.Stderr, "kscope-bench: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("CSV results written to %s\n", *csvDir)
	}
	fmt.Println(strings.Join(out, "\n"))
	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Snapshot().Text())
	}
}

// stringList collects repeatable string flags.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}
